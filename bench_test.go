// Benchmarks regenerating the paper's tables and figures (run with
// `go test -bench=. -benchmem`). Each BenchmarkFigure*/BenchmarkPlanChoice
// target drives the same harness as cmd/benchrunner; the remaining
// benchmarks measure the core mechanisms the paper's design choices trade
// off (statistics lookup under each summarization, cache service paths,
// plan enumeration, evaluation).
package hermes_test

import (
	"fmt"
	"testing"
	"time"

	"hermes/internal/cim"
	"hermes/internal/core"
	"hermes/internal/dcsm"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/engine"
	"hermes/internal/experiments"
	"hermes/internal/lang"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
	"hermes/internal/workload"
)

// --- Figures -------------------------------------------------------------

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PlanChoice(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Tables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure2()
	}
}

func BenchmarkFigure3Summarize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------------

func BenchmarkAblationSummarization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSummarization(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRecency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRecency(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCachePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCachePolicy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParallelPartial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationParallelPartial(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- DCSM estimation latency: detail vs summaries -------------------------

// trainDB loads n records for a 3-argument call.
func trainDB(b *testing.B, n int, raw bool) *dcsm.DB {
	b.Helper()
	db := dcsm.New(dcsm.Config{AllowRawAggregation: raw}, nil)
	for i := 0; i < n; i++ {
		db.Observe(domain.Measurement{
			Call: domain.Call{Domain: "d", Function: "f", Args: []term.Value{
				term.Str("rope"), term.Int(int64(i % 40)), term.Int(int64(i%40 + 30)),
			}},
			Cost:     domain.CostVector{TFirst: time.Millisecond, TAll: 2 * time.Millisecond, Card: 5},
			Complete: true,
		})
	}
	return db
}

var benchPattern = domain.Pattern{Domain: "d", Function: "f", Args: []domain.PatternArg{
	domain.Const(term.Str("rope")), domain.Const(term.Int(7)), domain.Bound,
}}

// BenchmarkDCSMLookupRaw measures estimation that must aggregate the raw
// cost vector database (the "expensive aggregation" of §6.2).
func BenchmarkDCSMLookupRaw(b *testing.B) {
	db := trainDB(b, 2000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Cost(benchPattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCSMLookupLossless measures estimation from lossless summary
// tables.
func BenchmarkDCSMLookupLossless(b *testing.B) {
	db := trainDB(b, 2000, false)
	if _, err := db.SummarizeLossless("d", "f", 3); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Summarize("d", "f", 3, []int{0, 1}); err != nil {
		b.Fatal(err)
	}
	db.DropDetail("d", "f", 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Cost(benchPattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCSMLookupLossy measures estimation from the single-row fully
// lossy table.
func BenchmarkDCSMLookupLossy(b *testing.B) {
	db := trainDB(b, 2000, false)
	if _, err := db.SummarizeFullyLossy("d", "f", 3); err != nil {
		b.Fatal(err)
	}
	db.DropDetail("d", "f", 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Cost(benchPattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummarize measures building a lossless summary from 2000
// records.
func BenchmarkSummarize(b *testing.B) {
	db := trainDB(b, 2000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SummarizeLossless("d", "f", 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- CIM service paths -----------------------------------------------------

func benchCIM(b *testing.B) (*cim.Manager, *domaintest.Domain) {
	b.Helper()
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			out := make([]term.Value, 16)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := cim.New(reg, cim.Config{ParallelActual: true})
	inv, err := lang.ParseInvariant("V1 <= V2 => d:f(V2) >= d:f(V1).")
	if err != nil {
		b.Fatal(err)
	}
	m.AddInvariant(inv)
	return m, d
}

func BenchmarkCIMExactHit(b *testing.B) {
	m, _ := benchCIM(b)
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	resp, err := m.CallThrough(ctx, domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(5)}})
	if err != nil {
		b.Fatal(err)
	}
	domain.Collect(resp.Stream)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := m.CallThrough(ctx, domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(5)}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := domain.Collect(resp.Stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCIMPartialHit(b *testing.B) {
	m, _ := benchCIM(b)
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	seed := domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(1)}}
	prefix := []term.Value{term.Int(0), term.Int(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-seed so every iteration takes the partial path (a completed
		// iteration stores the full answer set, which would turn the next
		// call into an exact hit).
		b.StopTimer()
		m.Clear()
		m.Store(seed, prefix, true, domain.CostVector{})
		b.StartTimer()
		resp, err := m.CallThrough(ctx, domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(9)}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := domain.Collect(resp.Stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCIMPartialLookupLargeCache measures invariant matching against
// a cache holding many entries of the same function — the linear scan the
// relevance dispatch cannot avoid, and the reason scan cost matters.
func BenchmarkCIMPartialLookupLargeCache(b *testing.B) {
	m, _ := benchCIM(b)
	for i := 0; i < 500; i++ {
		m.Store(domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(int64(i))}},
			[]term.Value{term.Int(int64(i))}, true, domain.CostVector{})
	}
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := m.CallThrough(ctx, domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(10_000)}})
		if err != nil {
			b.Fatal(err)
		}
		resp.Stream.Close()
	}
}

// BenchmarkInvariantMatch measures a cache probe against growing
// invariant inventories, discrimination index vs the LinearMatching
// full scan: the indexed probe stays ~O(bucket) while the linear scan
// grows O(N). The hit probe is served via an equality invariant the
// linear scan only reaches after every synthetic invariant; the miss
// probe matches nothing (the linear worst case).
func BenchmarkInvariantMatch(b *testing.B) {
	hit := domain.Call{Domain: "d", Function: "g", Args: []term.Value{term.Str("a")}}
	miss := domain.Call{Domain: "d", Function: "nomatch", Args: []term.Value{term.Str("a")}}
	for _, n := range []int{1, 100, 10000} {
		for _, linear := range []bool{false, true} {
			cfg := cim.Config{ParallelActual: true, LinearMatching: linear}
			m := cim.New(nil, cfg)
			for i := 0; i < n; i++ {
				inv, err := lang.ParseInvariant(fmt.Sprintf("true => syn%d:lookup%d(X) = syn%d:probe%d(X).", i%7, i, i%7, i))
				if err != nil {
					b.Fatal(err)
				}
				m.AddInvariant(inv)
			}
			inv, err := lang.ParseInvariant("true => d:f(X) = d:g(X).")
			if err != nil {
				b.Fatal(err)
			}
			m.AddInvariant(inv)
			m.Store(domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Str("a")}},
				[]term.Value{term.Str("x")}, true, domain.CostVector{})
			mode := "indexed"
			if linear {
				mode = "linear"
			}
			b.Run(fmt.Sprintf("invs=%d/%s/hit", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if src, _ := m.Probe(hit); src != cim.SourceCacheEquality {
						b.Fatalf("probe served %v, want equality hit", src)
					}
				}
			})
			b.Run(fmt.Sprintf("invs=%d/%s/miss", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if src, _ := m.Probe(miss); src != cim.SourceActual {
						b.Fatalf("probe served %v, want actual", src)
					}
				}
			})
		}
	}
}

func BenchmarkCIMProbe(b *testing.B) {
	m, _ := benchCIM(b)
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	resp, _ := m.CallThrough(ctx, domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(1)}})
	domain.Collect(resp.Stream)
	call := domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(9)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Probe(call)
	}
}

// --- rewriter + engine ------------------------------------------------------

const benchM1 = `
	access_equivalent('p', 2).
	access_equivalent('q', 2).
	m(A, C) :- p(A, B), q(B, C).
	p(A, B) :- in($ans, d1:p_ff()), =($ans.1, A), =($ans.2, B).
	p(A, B) :- in(B, d1:p_bf(A)).
	p(A, B) :- in($x, d1:p_bb(A, B)).
	q(B, C) :- in($ans, d2:q_ff()), =($ans.1, B), =($ans.2, C).
	q(B, C) :- in(C, d2:q_bf(B)).
`

func BenchmarkRewriterPlans(b *testing.B) {
	prog, err := lang.ParseProgram(benchM1)
	if err != nil {
		b.Fatal(err)
	}
	q, err := lang.ParseQuery("?- m('a', C).")
	if err != nil {
		b.Fatal(err)
	}
	rw := rewrite.New(prog, rewrite.Config{}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rw.Plans(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lang.ParseProgram(benchM1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederationQuery runs an optimized mixed query over a randomized
// federation through the entire stack (rewriter, estimator, CIM, engine).
func BenchmarkFederationQuery(b *testing.B) {
	store, rel := workload.Federation(workload.DefaultFederation())
	sys := core.NewSystem(core.Options{})
	sys.Register(store)
	sys.Register(rel)
	if err := sys.LoadProgram(`
		objs(V, F, L, O) :- in(O, avis:frames_to_objects(V, F, L)).
		row(T, K, V) :- in(P, rel:all(T)), =(P.k, K), =(P.v, V).
	`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.QueryAll("?- objs('video01', 10, 90, O) & row('table01', K, V) & V > 500."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelFanout measures the real-time overhead of the parallel
// operator pipeline on a 4-way independent-subgoal query: spool producers,
// the scheduler, and the vtime-deterministic merge all run for every
// iteration (the virtual clock makes the simulated latencies free, so the
// benchmark isolates the machinery itself).
func BenchmarkParallelFanout(b *testing.B) {
	d := domaintest.New("d")
	for _, fn := range []string{"s1", "s2", "s3", "s4"} {
		d.Define(fn, domaintest.Func{Arity: 0, PerCall: 50 * time.Millisecond,
			Fn: func([]term.Value) ([]term.Value, error) {
				out := make([]term.Value, 8)
				for i := range out {
					out[i] = term.Int(int64(i))
				}
				return out, nil
			}})
	}
	reg := domain.NewRegistry()
	reg.Register(d)
	eng := engine.New(reg, nil, engine.Config{MaxDepth: 8}, nil)
	prog, _ := lang.ParseProgram(
		`f(A, B, C, D) :- in(A, d:s1()) & in(B, d:s2()) & in(C, d:s3()) & in(D, d:s4()).`)
	q, _ := lang.ParseQuery("?- f(A, B, C, D).")
	rw := rewrite.New(prog, rewrite.Config{}, reg)
	plans, err := rw.Plans(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := domain.NewCtx(vclock.NewVirtual(0))
		ctx.Sched = domain.NewSched(4)
		cur, err := eng.ExecutePlan(ctx, plans[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := engine.CollectAll(cur); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineJoin(b *testing.B) {
	d := domaintest.New("d")
	d.Define("gen", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			out := make([]term.Value, 64)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	d.Define("next", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return []term.Value{term.Int(int64(args[0].(term.Int)) + 1)}, nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	eng := engine.New(reg, nil, engine.Config{MaxDepth: 8}, nil)
	prog, _ := lang.ParseProgram(`v(X, Y) :- in(X, d:gen()), in(Y, d:next(X)).`)
	q, _ := lang.ParseQuery("?- v(X, Y).")
	rw := rewrite.New(prog, rewrite.Config{}, reg)
	plans, err := rw.Plans(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plans[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := engine.CollectAll(cur); err != nil {
			b.Fatal(err)
		}
	}
}
