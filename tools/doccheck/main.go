// Command doccheck verifies that the documentation matches the tree: every
// repo-relative path the docs mention must exist, every markdown link
// target must resolve, every CLI flag the docs attribute to one of
// this repo's binaries must actually be defined by a command under cmd/,
// and README's hermesd flag table must stay in two-way sync with the
// flags cmd/hermesd actually defines. CI runs it so README/docs drift
// fails the build instead of rotting.
//
// Usage: go run ./tools/doccheck [-root dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// docFiles are the documents whose references are checked. Meta files
// (ROADMAP, CHANGES, PAPERS, SNIPPETS, ISSUE) intentionally reference
// external material and are exempt.
var docFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/*.md"}

var (
	// pathRe matches repo-relative path mentions anywhere in a document.
	pathRe = regexp.MustCompile(`(?:\./)?(?:cmd|internal|docs|examples|tools)/[A-Za-z0-9_.\-*/]+`)
	// inlineCode matches `...` spans (flag checks run only inside these).
	inlineCode = regexp.MustCompile("`([^`\n]+)`")
	// linkRe matches markdown link targets.
	linkRe = regexp.MustCompile(`\]\(([^)]+)\)`)
	// flagDefRe extracts flag names from cmd/*/*.go sources.
	flagDefRe = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Float64|Duration|Func|Var|TextVar)\("([a-z][a-z0-9-]*)"`)
	// flagUseRe extracts -flag mentions from a code span.
	flagUseRe = regexp.MustCompile(`(?:^|\s)-([a-z][a-z0-9-]*)`)
	// binaryRe decides whether a code span is a command line of one of
	// this repo's binaries (and not, say, curl or go test).
	binaryRe = regexp.MustCompile(`(?:^|[ /])(?:hermes|hermesd|benchrunner|doccheck)\b`)
	// symbolRe strips a Go symbol qualifier: internal/core.System → internal/core.
	symbolRe = regexp.MustCompile(`^(.*?)\.[A-Z].*$`)
	// tableFlagRe matches a README flag-table row's flag cell: | `-memo` | ...
	tableFlagRe = regexp.MustCompile("^\\|\\s*`-([a-z][a-z0-9-]*)`\\s*\\|")
	// metricDefRe extracts metric family names from cmd/hermesd's
	// pre-registration (Counter/Gauge/Histogram instantiations and
	// SetHelp-only families).
	metricDefRe = regexp.MustCompile(`(?:Counter|Gauge|Histogram|SetHelp)\("(hermes_[a-z0-9_]+)"`)
	// tableMetricRe matches an OBSERVABILITY.md metric-table row's name
	// cell: | `hermes_queries_total` | ...
	tableMetricRe = regexp.MustCompile("^\\|\\s*`(hermes_[a-z0-9_]+)`")
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	flags, err := definedFlags(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}

	var problems []string
	for _, pattern := range docFiles {
		matches, err := filepath.Glob(filepath.Join(*root, pattern))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, file := range matches {
			p, err := checkFile(*root, file, flags)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doccheck:", err)
				os.Exit(2)
			}
			problems = append(problems, p...)
		}
	}
	p, err := checkFlagSync(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	problems = append(problems, p...)
	p, err = checkMetricsSync(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	problems = append(problems, p...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doccheck: %d broken reference(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: all documentation references resolve")
}

// definedFlags collects every flag name defined by the commands under
// cmd/ and tools/, so docs can mention any binary's flags.
func definedFlags(root string) (map[string]bool, error) {
	flags := map[string]bool{}
	for _, pattern := range []string{"cmd/*/*.go", "tools/*/*.go"} {
		srcs, err := filepath.Glob(filepath.Join(root, pattern))
		if err != nil {
			return nil, err
		}
		for _, src := range srcs {
			data, err := os.ReadFile(src)
			if err != nil {
				return nil, err
			}
			for _, m := range flagDefRe.FindAllStringSubmatch(string(data), -1) {
				flags[m[1]] = true
			}
		}
	}
	return flags, nil
}

// checkFlagSync keeps README's hermesd flag table and cmd/hermesd's flag
// definitions in two-way sync: a flag defined by the server but missing
// from the table is undocumented, and a table row whose flag the server
// no longer defines is stale. (Rows for flags of other binaries would be
// caught here too — the table is hermesd's.)
func checkFlagSync(root string) ([]string, error) {
	defined := map[string]bool{}
	srcs, err := filepath.Glob(filepath.Join(root, "cmd/hermesd/*.go"))
	if err != nil {
		return nil, err
	}
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			return nil, err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(data), -1) {
			defined[m[1]] = true
		}
	}

	data, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return nil, err
	}
	var problems []string
	documented := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		m := tableFlagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		documented[m[1]] = true
		if !defined[m[1]] {
			problems = append(problems, fmt.Sprintf(
				"README.md:%d: flag table row %q names a flag cmd/hermesd does not define", i+1, "-"+m[1]))
		}
	}
	var missing []string
	for f := range defined {
		if !documented[f] {
			missing = append(missing, "-"+f)
		}
	}
	sort.Strings(missing)
	for _, f := range missing {
		problems = append(problems, fmt.Sprintf(
			"README.md: cmd/hermesd flag %q is missing from the flag table", f))
	}
	sort.Strings(problems)
	return problems, nil
}

// checkMetricsSync keeps docs/OBSERVABILITY.md's metric table and
// cmd/hermesd's metric pre-registration in two-way sync: a hermes_*
// family the server registers (or names via SetHelp) but the table omits
// is undocumented, and a table row naming a family the server no longer
// registers is stale.
func checkMetricsSync(root string) ([]string, error) {
	defined := map[string]bool{}
	srcs, err := filepath.Glob(filepath.Join(root, "cmd/hermesd/*.go"))
	if err != nil {
		return nil, err
	}
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			return nil, err
		}
		for _, m := range metricDefRe.FindAllStringSubmatch(string(data), -1) {
			defined[m[1]] = true
		}
	}

	data, err := os.ReadFile(filepath.Join(root, "docs/OBSERVABILITY.md"))
	if err != nil {
		return nil, err
	}
	var problems []string
	documented := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		m := tableMetricRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		documented[m[1]] = true
		if !defined[m[1]] {
			problems = append(problems, fmt.Sprintf(
				"docs/OBSERVABILITY.md:%d: metric table row %q names a family cmd/hermesd does not register", i+1, m[1]))
		}
	}
	var missing []string
	for f := range defined {
		if !documented[f] {
			missing = append(missing, f)
		}
	}
	sort.Strings(missing)
	for _, f := range missing {
		problems = append(problems, fmt.Sprintf(
			"docs/OBSERVABILITY.md: cmd/hermesd metric %q is missing from the metric table", f))
	}
	sort.Strings(problems)
	return problems, nil
}

func checkFile(root, file string, flags map[string]bool) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, file)
	if err != nil {
		rel = file
	}
	var problems []string
	report := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s:%d: %s", rel, line, fmt.Sprintf(format, args...)))
	}

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		n := i + 1
		// Path mentions, anywhere on the line (prose, tables, diagrams).
		for _, tok := range pathRe.FindAllString(line, -1) {
			if !pathExists(root, tok) {
				report(n, "path %q does not exist", tok)
			}
		}
		// Markdown link targets (relative only).
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := strings.SplitN(m[1], "#", 2)[0]
			if target == "" || strings.Contains(target, "://") {
				continue
			}
			if !pathExists(root, target) && !pathExists(filepath.Dir(file), target) {
				report(n, "link target %q does not exist", target)
			}
		}
		// Flag mentions inside code spans attributed to our binaries.
		for _, m := range inlineCode.FindAllStringSubmatch(line, -1) {
			span := m[1]
			if bare := strings.TrimPrefix(span, "-"); span != bare &&
				flagUseRe.MatchString(" "+span) && !strings.ContainsAny(span, " \t") {
				if !flags[bare] {
					report(n, "flag %q is not defined by any command", span)
				}
				continue
			}
			if !binaryRe.MatchString(span) || strings.Contains(span, "go test") {
				continue
			}
			for _, fm := range flagUseRe.FindAllStringSubmatch(span, -1) {
				if !flags[fm[1]] {
					report(n, "flag %q (in %q) is not defined by any command", "-"+fm[1], span)
				}
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// pathExists reports whether a documented path resolves in the tree,
// tolerating the forms docs use: a trailing glob (`internal/domains/*`),
// a Go symbol qualifier (`internal/core.System`), and trailing sentence
// punctuation picked up by the matcher.
func pathExists(root, tok string) bool {
	tok = strings.TrimPrefix(tok, "./")
	tok = strings.TrimRight(tok, ".,;:")
	tok = strings.TrimSuffix(tok, "/*")
	tok = strings.TrimSuffix(tok, "/")
	if tok == "" {
		return false
	}
	if _, err := os.Stat(filepath.Join(root, tok)); err == nil {
		return true
	}
	if m := symbolRe.FindStringSubmatch(tok); m != nil {
		if _, err := os.Stat(filepath.Join(root, m[1])); err == nil {
			return true
		}
	}
	return false
}
