// Package workload generates deterministic, realistically skewed query and
// call workloads for the experiment harness and benchmarks: video
// frame-range call streams with exact repeats and containment structure
// (so caches and invariants have something to exploit), and randomized
// federations for scale tests.
package workload

import (
	"fmt"
	"math/rand"

	"hermes/internal/domain"
	"hermes/internal/domains/avis"
	"hermes/internal/domains/relation"
	"hermes/internal/term"
)

// FrameRangeConfig tunes a frame-range call stream.
type FrameRangeConfig struct {
	// Video is the queried video name.
	Video string
	// Frames is the video's frame count.
	Frames int
	// N is the stream length.
	N int
	// RepeatFrac is the fraction of calls that exactly repeat an earlier
	// call (exact cache hits).
	RepeatFrac float64
	// NarrowFrac is the fraction of calls that are sub-ranges of an
	// earlier call (equality/partial invariant opportunities — note that a
	// cached narrower call serves the *wider* query partially, and a wider
	// cached call serves nothing without a filter, so the stream emits
	// widening sequences too).
	NarrowFrac float64
	// Seed drives the generator.
	Seed int64
}

// DefaultFrameRanges is a medium-skew configuration over "rope".
func DefaultFrameRanges(n int) FrameRangeConfig {
	return FrameRangeConfig{Video: "rope", Frames: 160, N: n, RepeatFrac: 0.3, NarrowFrac: 0.3, Seed: 42}
}

// FrameRanges generates the call stream.
func FrameRanges(cfg FrameRangeConfig) []domain.Call {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mk := func(f, l int) domain.Call {
		if f < 0 {
			f = 0
		}
		if l >= cfg.Frames {
			l = cfg.Frames - 1
		}
		if l < f {
			f, l = l, f
		}
		return domain.Call{Domain: "avis", Function: "frames_to_objects",
			Args: []term.Value{term.Str(cfg.Video), term.Int(int64(f)), term.Int(int64(l))}}
	}
	var out []domain.Call
	fresh := func() domain.Call {
		f := rng.Intn(cfg.Frames * 3 / 4)
		w := 5 + rng.Intn(cfg.Frames/3)
		return mk(f, f+w)
	}
	for len(out) < cfg.N {
		r := rng.Float64()
		switch {
		case r < cfg.RepeatFrac && len(out) > 0:
			out = append(out, out[rng.Intn(len(out))])
		case r < cfg.RepeatFrac+cfg.NarrowFrac && len(out) > 0:
			// Widen an earlier call slightly: the cached call is then a
			// contained sub-range of this one (a partial-invariant hit).
			prev := out[rng.Intn(len(out))]
			f := int(prev.Args[1].(term.Int))
			l := int(prev.Args[2].(term.Int))
			out = append(out, mk(f-rng.Intn(6), l+rng.Intn(10)))
		default:
			out = append(out, fresh())
		}
	}
	return out
}

// FederationConfig tunes a randomized federation.
type FederationConfig struct {
	Videos     int
	FramesMin  int
	FramesMax  int
	ObjectsMax int
	Tables     int
	RowsMax    int
	Seed       int64
}

// DefaultFederation is a mid-size federation.
func DefaultFederation() FederationConfig {
	return FederationConfig{Videos: 4, FramesMin: 200, FramesMax: 1500, ObjectsMax: 60,
		Tables: 3, RowsMax: 300, Seed: 99}
}

// Federation builds an AVIS store and a relational database with
// deterministic random content. Video names are video00.., table names
// table00.. with columns (k string, v int).
func Federation(cfg FederationConfig) (*avis.Store, *relation.DB) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	store := avis.New("avis")
	for i := 0; i < cfg.Videos; i++ {
		frames := cfg.FramesMin + rng.Intn(cfg.FramesMax-cfg.FramesMin+1)
		objects := 5 + rng.Intn(cfg.ObjectsMax)
		avis.Generate(store, fmt.Sprintf("video%02d", i), frames, objects, rng.Int63())
	}
	db := relation.New("rel")
	for i := 0; i < cfg.Tables; i++ {
		tbl := db.MustCreateTable(relation.Schema{
			Name: fmt.Sprintf("table%02d", i),
			Cols: []relation.Column{
				{Name: "k", Type: relation.TString},
				{Name: "v", Type: relation.TInt},
			},
		})
		rows := 10 + rng.Intn(cfg.RowsMax)
		for r := 0; r < rows; r++ {
			tbl.MustInsert(term.Str(fmt.Sprintf("k%03d", rng.Intn(rows))), term.Int(int64(rng.Intn(1000))))
		}
	}
	return store, db
}
