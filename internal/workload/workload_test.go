package workload

import (
	"testing"

	"hermes/internal/term"
)

func TestFrameRangesDeterministic(t *testing.T) {
	a := FrameRanges(DefaultFrameRanges(100))
	b := FrameRanges(DefaultFrameRanges(100))
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("call %d differs", i)
		}
	}
}

func TestFrameRangesValidBounds(t *testing.T) {
	cfg := DefaultFrameRanges(500)
	for i, c := range FrameRanges(cfg) {
		f := int64(c.Args[1].(term.Int))
		l := int64(c.Args[2].(term.Int))
		if f < 0 || l >= int64(cfg.Frames) || f > l {
			t.Fatalf("call %d out of bounds: [%d,%d]", i, f, l)
		}
	}
}

func TestFrameRangesHaveRepeats(t *testing.T) {
	calls := FrameRanges(DefaultFrameRanges(300))
	seen := map[string]int{}
	for _, c := range calls {
		seen[c.Key()]++
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats += n - 1
		}
	}
	if repeats < 30 {
		t.Errorf("only %d repeated calls in 300; skew missing", repeats)
	}
	if len(seen) < 50 {
		t.Errorf("only %d distinct calls; too degenerate", len(seen))
	}
}

func TestFederationDeterministicAndSized(t *testing.T) {
	cfg := DefaultFederation()
	s1, db1 := Federation(cfg)
	s2, _ := Federation(cfg)
	for i := 0; i < cfg.Videos; i++ {
		name := []string{"video00", "video01", "video02", "video03"}[i]
		v1, ok1 := s1.Video(name)
		v2, ok2 := s2.Video(name)
		if !ok1 || !ok2 {
			t.Fatalf("video %s missing", name)
		}
		if v1.Frames != v2.Frames || len(v1.Objects()) != len(v2.Objects()) {
			t.Fatalf("video %s differs between runs", name)
		}
	}
	for i := 0; i < cfg.Tables; i++ {
		name := []string{"table00", "table01", "table02"}[i]
		tbl, ok := db1.Table(name)
		if !ok || tbl.Len() < 10 {
			t.Fatalf("table %s missing or too small", name)
		}
	}
}
