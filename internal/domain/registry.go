package domain

import (
	"fmt"
	"sync"
)

// Registry routes domain calls to registered domains. It is the mediator's
// view of the federation; the CIM and the netsim wrappers are themselves
// registered as domains or wrap entries here.
type Registry struct {
	mu      sync.RWMutex
	domains map[string]Domain
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{domains: make(map[string]Domain)}
}

// Register adds a domain. Registering a name twice replaces the previous
// entry (used to interpose wrappers such as the CIM or the netsim).
func (r *Registry) Register(d Domain) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.domains[d.Name()] = d
}

// Get returns the domain registered under name.
func (r *Registry) Get(name string) (Domain, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.domains[name]
	return d, ok
}

// Names returns the registered domain names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.domains))
	for n := range r.domains {
		out = append(out, n)
	}
	return out
}

// Call routes a ground call to its domain. A cancelled or past-deadline
// ctx aborts before the call is issued.
func (r *Registry) Call(ctx *Ctx, c Call) (Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, ok := r.Get(c.Domain)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDomain, c.Domain)
	}
	return d.Call(ctx, c.Function, c.Args)
}

// listFunctions resolves a domain's function listing, preferring the
// fallible FunctionsErr when the domain provides it.
func listFunctions(d Domain) ([]FuncSpec, error) {
	if fl, ok := d.(FunctionLister); ok {
		return fl.FunctionsErr()
	}
	return d.Functions(), nil
}

// HasFunction reports whether domain dom exports function fn with the given
// arity (arity < 0 matches any). An unobtainable listing (unreachable
// remote source) reports false: the function cannot be confirmed.
func (r *Registry) HasFunction(dom, fn string, arity int) bool {
	d, ok := r.Get(dom)
	if !ok {
		return false
	}
	specs, err := listFunctions(d)
	if err != nil {
		return false
	}
	for _, spec := range specs {
		if spec.Name == fn && (arity < 0 || spec.Arity == arity) {
			return true
		}
	}
	return false
}

// CheckCall verifies a call resolves to a known domain function. When the
// domain's listing cannot be obtained the error surfaces as-is (wrapping
// ErrUnavailable for remote sources) rather than the misleading — and
// non-retryable — ErrUnknownFunction.
func (r *Registry) CheckCall(c Call) error {
	d, ok := r.Get(c.Domain)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDomain, c.Domain)
	}
	specs, err := listFunctions(d)
	if err != nil {
		return fmt.Errorf("list functions of %q: %w", c.Domain, err)
	}
	for _, spec := range specs {
		if spec.Name == c.Function && spec.Arity == len(c.Args) {
			return nil
		}
	}
	return fmt.Errorf("%w: %s:%s/%d", ErrUnknownFunction, c.Domain, c.Function, len(c.Args))
}
