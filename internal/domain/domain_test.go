package domain

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/term"
	"hermes/internal/vclock"
)

func TestCallKeyCanonical(t *testing.T) {
	a := Call{Domain: "d", Function: "f", Args: []term.Value{term.Str("x"), term.Int(1)}}
	b := Call{Domain: "d", Function: "f", Args: []term.Value{term.Str("x"), term.Int(1)}}
	if a.Key() != b.Key() {
		t.Error("identical calls should share a key")
	}
	c := Call{Domain: "d", Function: "f", Args: []term.Value{term.Str("x"), term.Int(2)}}
	if a.Key() == c.Key() {
		t.Error("different args, same key")
	}
	d := Call{Domain: "d2", Function: "f", Args: a.Args}
	if a.Key() == d.Key() {
		t.Error("different domain, same key")
	}
}

func TestCallString(t *testing.T) {
	c := Call{Domain: "avis", Function: "frames_to_objects",
		Args: []term.Value{term.Str("rope"), term.Int(4), term.Int(47)}}
	if got := c.String(); got != "avis:frames_to_objects('rope', 4, 47)" {
		t.Errorf("String = %q", got)
	}
}

func TestPatternOfAndRelax(t *testing.T) {
	c := Call{Domain: "d", Function: "f", Args: []term.Value{term.Str("a"), term.Int(2)}}
	p := PatternOf(c)
	if p.KnownCount() != 2 || p.Mask() != 0b11 {
		t.Errorf("pattern = %v mask=%b", p, p.Mask())
	}
	r := p.Relax(0)
	if r.KnownCount() != 1 || r.Mask() != 0b10 {
		t.Errorf("relaxed = %v mask=%b", r, r.Mask())
	}
	if p.Mask() != 0b11 {
		t.Error("Relax mutated the original")
	}
	if r.String() != "d:f($b, 2)" {
		t.Errorf("relaxed string = %q", r.String())
	}
	if p.Key() == r.Key() {
		t.Error("relaxation must change the key")
	}
}

func TestRegistryRouting(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Get("x"); ok {
		t.Error("empty registry Get should fail")
	}
	_, err := reg.Call(NewCtx(nil), Call{Domain: "x", Function: "f"})
	if !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("err = %v", err)
	}
	if reg.HasFunction("x", "f", 0) {
		t.Error("HasFunction on unknown domain")
	}
}

func TestCollectAndSliceStream(t *testing.T) {
	s := NewSliceStream([]term.Value{term.Int(1), term.Int(2)})
	vals, err := Collect(s)
	if err != nil || len(vals) != 2 {
		t.Fatalf("collect = %v, %v", vals, err)
	}
	// Closed stream stops.
	s2 := NewSliceStream([]term.Value{term.Int(1), term.Int(2)})
	s2.Next()
	s2.Close()
	if _, ok, _ := s2.Next(); ok {
		t.Error("closed stream yielded")
	}
}

func TestTimedSliceStreamChargesClock(t *testing.T) {
	clk := vclock.NewVirtual(0)
	s := NewTimedSliceStream([]term.Value{term.Int(1), term.Int(2)}, clk,
		func(term.Value) time.Duration { return 10 * time.Millisecond })
	s.Next()
	if clk.Now() != 10*time.Millisecond {
		t.Errorf("after one answer: %v", clk.Now())
	}
	Collect(s)
	if clk.Now() != 20*time.Millisecond {
		t.Errorf("after all answers: %v", clk.Now())
	}
}

func TestConcatStream(t *testing.T) {
	s := NewConcatStream(
		NewSliceStream([]term.Value{term.Int(1)}),
		NewSliceStream(nil),
		NewSliceStream([]term.Value{term.Int(2), term.Int(3)}),
	)
	vals, err := Collect(s)
	if err != nil || len(vals) != 3 {
		t.Fatalf("concat = %v, %v", vals, err)
	}
}

func TestDedupStream(t *testing.T) {
	seed := map[string]struct{}{term.Int(1).Key(): {}}
	inner := NewSliceStream([]term.Value{term.Int(1), term.Int(2), term.Int(2), term.Int(3)})
	s := NewDedupStream(inner, seed)
	vals, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || !term.Equal(vals[0], term.Int(2)) || !term.Equal(vals[1], term.Int(3)) {
		t.Errorf("dedup = %v", vals)
	}
}

func TestDedupStreamProbeCost(t *testing.T) {
	clk := vclock.NewVirtual(0)
	inner := NewSliceStream([]term.Value{term.Int(1), term.Int(2)})
	s := NewDedupStream(inner, nil).WithProbeCost(clk, 5*time.Millisecond)
	Collect(s)
	if clk.Now() != 10*time.Millisecond {
		t.Errorf("probe cost = %v, want 10ms", clk.Now())
	}
}

func TestMeasuredStreamComplete(t *testing.T) {
	clk := vclock.NewVirtual(0)
	inner := NewTimedSliceStream([]term.Value{term.Str("abcd"), term.Str("ef")}, clk,
		func(term.Value) time.Duration { return 100 * time.Millisecond })
	var got Measurement
	call := Call{Domain: "d", Function: "f"}
	ms := NewMeasuredStream(inner, clk, call, func(m Measurement) { got = m })
	if _, err := Collect(ms); err != nil {
		t.Fatal(err)
	}
	if !got.Complete {
		t.Error("drained stream should measure complete")
	}
	if got.Cost.TFirst != 100*time.Millisecond || got.Cost.TAll != 200*time.Millisecond {
		t.Errorf("cost = %v", got.Cost)
	}
	if got.Cost.Card != 2 || got.Bytes != 6 {
		t.Errorf("card=%v bytes=%d", got.Cost.Card, got.Bytes)
	}
}

func TestMeasuredStreamEarlyClose(t *testing.T) {
	clk := vclock.NewVirtual(0)
	inner := NewSliceStream([]term.Value{term.Int(1), term.Int(2), term.Int(3)})
	var got Measurement
	fired := 0
	ms := NewMeasuredStream(inner, clk, Call{}, func(m Measurement) { got = m; fired++ })
	ms.Next()
	ms.Close()
	ms.Close() // second close must not re-fire
	if fired != 1 {
		t.Fatalf("onDone fired %d times", fired)
	}
	if got.Complete {
		t.Error("early close should measure incomplete")
	}
	if got.Cost.Card != 1 {
		t.Errorf("card = %v", got.Cost.Card)
	}
}

func TestMeasuredStreamAtExplicitStart(t *testing.T) {
	clk := vclock.NewVirtual(1 * time.Second)
	inner := NewSliceStream([]term.Value{term.Int(1)})
	var got Measurement
	// The call was issued 400ms ago (per-call cost already charged).
	ms := NewMeasuredStreamAt(inner, clk, Call{}, 600*time.Millisecond, func(m Measurement) { got = m })
	Collect(ms)
	if got.Cost.TAll != 400*time.Millisecond {
		t.Errorf("TAll = %v, want 400ms", got.Cost.TAll)
	}
}

func TestCostVectorString(t *testing.T) {
	cv := CostVector{TFirst: 300 * time.Millisecond, TAll: 1021 * time.Millisecond, Card: 6}
	if got := cv.String(); got != "[Tf=300ms Ta=1021ms Card=6.00]" {
		t.Errorf("String = %q", got)
	}
}

// Property: pattern keys distinguish any two patterns differing in one
// argument's knownness.
func TestPatternKeyKnownness(t *testing.T) {
	f := func(x int64) bool {
		p := Pattern{Domain: "d", Function: "f", Args: []PatternArg{Const(term.Int(x))}}
		return p.Key() != p.Relax(0).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCtxForkIndependentClock(t *testing.T) {
	ctx := NewCtx(vclock.NewVirtual(0))
	fork := ctx.Fork()
	fork.Clock.Sleep(time.Second)
	if ctx.Clock.Now() != 0 {
		t.Error("fork advanced the parent clock")
	}
	ctx.Clock.Join(fork.Clock)
	if ctx.Clock.Now() != time.Second {
		t.Error("join failed")
	}
}
