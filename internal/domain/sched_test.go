package domain

import (
	"sync"
	"testing"
)

func TestSchedBasics(t *testing.T) {
	s := NewSched(4)
	if s.Limit() != 4 {
		t.Fatalf("Limit = %d, want 4", s.Limit())
	}
	if got := s.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d, want 2", got)
	}
	if got := s.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) = %d, want 1 (budget exhausted)", got)
	}
	if got := s.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire(1) = %d, want 0", got)
	}
	s.Release(3)
	if got := s.TryAcquire(4); got != 3 {
		t.Fatalf("after release TryAcquire(4) = %d, want 3", got)
	}
}

func TestSchedNilAndSequential(t *testing.T) {
	var s *Sched
	if s.TryAcquire(3) != 0 || s.Limit() != 0 || s.Lease() != nil {
		t.Fatal("nil scheduler must grant nothing")
	}
	s.Release(2) // must not panic
	seq := NewSched(1)
	if got := seq.TryAcquire(1); got != 0 {
		t.Fatalf("limit-1 scheduler granted %d extra lanes", got)
	}
}

// TestSchedOverReleaseClamped is the regression test for the budget
// inflation bug: releasing more lanes than were acquired (a double release
// or a release on an error path) must not let TryAcquire exceed the
// configured parallelism budget.
func TestSchedOverReleaseClamped(t *testing.T) {
	s := NewSched(3) // 2 acquirable extra lanes
	if got := s.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d, want 2", got)
	}
	s.Release(2)
	s.Release(2) // double release: must be ignored
	if got := s.TryAcquire(10); got != 2 {
		t.Fatalf("after double release TryAcquire(10) = %d, want 2 (budget %d)", got, s.Limit())
	}
	s.Release(100) // over-release while 2 are outstanding: restores exactly 2
	if got := s.TryAcquire(10); got != 2 {
		t.Fatalf("after over-release TryAcquire(10) = %d, want 2", got)
	}

	// Release of lanes never acquired on a fresh scheduler.
	fresh := NewSched(2)
	fresh.Release(7)
	if got := fresh.TryAcquire(10); got != 1 {
		t.Fatalf("fresh over-released scheduler granted %d, want 1", got)
	}
}

// countingLease records pool traffic so the tests can assert a leased
// scheduler never returns more to the pool than it leased.
type countingLease struct {
	mu       sync.Mutex
	grant    int // how many TryLease may still grant
	leased   int
	returned int
}

func (l *countingLease) TryLease(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > l.grant {
		n = l.grant
	}
	l.grant -= n
	l.leased += n
	return n
}

func (l *countingLease) Return(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.grant += n
	l.returned += n
}

func TestLeasedSchedPoolBound(t *testing.T) {
	lease := &countingLease{grant: 1}
	s := NewLeasedSched(4, lease) // local budget 3, pool grants only 1
	if got := s.TryAcquire(3); got != 1 {
		t.Fatalf("TryAcquire(3) = %d, want 1 (pool-bounded)", got)
	}
	if got := s.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire(1) with drained pool = %d, want 0", got)
	}
	s.Release(1)
	if lease.returned != 1 {
		t.Fatalf("pool saw %d returns, want 1", lease.returned)
	}
	// Over-release must not inflate the pool either.
	s.Release(5)
	if lease.returned != 1 {
		t.Fatalf("over-release leaked %d lanes to the pool, want 1 total", lease.returned)
	}
	if s.Lease() != LaneLease(lease) {
		t.Fatal("Lease() accessor lost the pool lease")
	}
}

func TestLeasedSchedLocalBudgetStillCaps(t *testing.T) {
	lease := &countingLease{grant: 100}
	s := NewLeasedSched(3, lease) // local budget 2 binds before the pool
	if got := s.TryAcquire(10); got != 2 {
		t.Fatalf("TryAcquire(10) = %d, want 2 (local cap)", got)
	}
	if lease.leased != 2 {
		t.Fatalf("pool leased %d, want 2", lease.leased)
	}
}

func TestSchedConcurrentAcquireRelease(t *testing.T) {
	s := NewSched(8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if got := s.TryAcquire(3); got > 0 {
					s.Release(got)
				}
			}
		}()
	}
	wg.Wait()
	if got := s.TryAcquire(100); got != 7 {
		t.Fatalf("after churn TryAcquire(100) = %d, want 7", got)
	}
}
