// Package domain defines the abstraction the mediator uses to talk to
// external software packages and databases ("domains" in HERMES
// terminology): ground calls, call patterns with unknown-but-bound ($b)
// arguments, streaming answer sets, cost vectors, the Domain interface, and
// a registry that routes calls.
package domain

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"hermes/internal/obs"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// Errors reported by domain routing and execution.
var (
	// ErrUnknownDomain reports a call to an unregistered domain.
	ErrUnknownDomain = errors.New("unknown domain")
	// ErrUnknownFunction reports a call to a function the domain does not
	// export.
	ErrUnknownFunction = errors.New("unknown function")
	// ErrUnavailable reports that a (remote) source is temporarily
	// unreachable. The CIM may still serve such calls from cache.
	ErrUnavailable = errors.New("source temporarily unavailable")
	// ErrDeadlineExceeded reports that the execution clock passed the
	// query deadline carried by the Ctx. It is distinct from
	// context.DeadlineExceeded, which is measured against wall time.
	ErrDeadlineExceeded = errors.New("query deadline exceeded")
	// ErrOverloaded reports that the mediator shed the request before any
	// source saw it: the server-wide admission pool was saturated. Shed
	// sites wrap it together with ErrUnavailable so unavailability-aware
	// layers (the CIM's degrade-to-cache fallback) handle it, but the
	// resilience wrapper recognizes it specially and fails fast instead of
	// retrying — retrying into an overloaded server only deepens the
	// overload.
	ErrOverloaded = errors.New("server overloaded")
)

// IsOverloaded reports whether an error is an admission-control shed: the
// mediator refused the work before contacting any source. Callers should
// fail fast (or serve from cache) rather than retry immediately.
func IsOverloaded(err error) bool {
	return errors.Is(err, ErrOverloaded)
}

// Call is a ground domain call: domain:function(arg1, ..., argN). Per the
// paper all domain calls are ground when executed.
type Call struct {
	Domain   string
	Function string
	Args     []term.Value
}

// Key returns a canonical encoding of the call, used as the unique index of
// cache entries and statistics records.
func (c Call) Key() string {
	var b strings.Builder
	b.WriteString(c.Domain)
	b.WriteByte(':')
	b.WriteString(c.Function)
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Key())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the call in source syntax.
func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Domain + ":" + c.Function + "(" + strings.Join(parts, ", ") + ")"
}

// PatternArg is one argument of a call pattern: either a known constant or
// the special symbol $b ("bound, but value not known yet").
type PatternArg struct {
	Known bool
	Val   term.Value
}

// Const builds a known-constant pattern argument.
func Const(v term.Value) PatternArg { return PatternArg{Known: true, Val: v} }

// Bound is the $b pattern argument.
var Bound = PatternArg{}

// String renders the argument ("$b" when unknown).
func (a PatternArg) String() string {
	if !a.Known {
		return "$b"
	}
	return a.Val.String()
}

// Pattern is a domain call pattern: the argument of DCSM:cost. A pattern
// with all arguments known describes a concrete call; $b arguments stand
// for values that will be bound at run time but are unknown at planning
// time.
type Pattern struct {
	Domain   string
	Function string
	Args     []PatternArg
}

// PatternOf returns the fully-known pattern describing a ground call.
func PatternOf(c Call) Pattern {
	args := make([]PatternArg, len(c.Args))
	for i, v := range c.Args {
		args[i] = Const(v)
	}
	return Pattern{Domain: c.Domain, Function: c.Function, Args: args}
}

// Key returns a canonical encoding of the pattern.
func (p Pattern) Key() string {
	var b strings.Builder
	b.WriteString(p.Domain)
	b.WriteByte(':')
	b.WriteString(p.Function)
	b.WriteByte('(')
	for i, a := range p.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if a.Known {
			b.WriteString(a.Val.Key())
		} else {
			b.WriteString("$b")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the pattern in DCSM syntax, e.g. "d:f(5, $b)".
func (p Pattern) String() string {
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return p.Domain + ":" + p.Function + "(" + strings.Join(parts, ", ") + ")"
}

// Mask returns the bitmask of known argument positions (bit i set when
// argument i is a known constant).
func (p Pattern) Mask() uint64 {
	var m uint64
	for i, a := range p.Args {
		if a.Known {
			m |= 1 << uint(i)
		}
	}
	return m
}

// KnownCount returns how many arguments are known constants.
func (p Pattern) KnownCount() int {
	n := 0
	for _, a := range p.Args {
		if a.Known {
			n++
		}
	}
	return n
}

// Relax returns a copy of the pattern with argument position i generalized
// to $b.
func (p Pattern) Relax(i int) Pattern {
	args := make([]PatternArg, len(p.Args))
	copy(args, p.Args)
	args[i] = Bound
	return Pattern{Domain: p.Domain, Function: p.Function, Args: args}
}

// CostVector is the paper's [Tf, Ta, Card] cost estimate: estimated time to
// first answer, time to all answers, and answer-set cardinality.
type CostVector struct {
	TFirst time.Duration
	TAll   time.Duration
	Card   float64
}

// String renders the vector the way the experiments report it.
func (cv CostVector) String() string {
	return fmt.Sprintf("[Tf=%s Ta=%s Card=%.2f]",
		vclock.Millis(cv.TFirst)+"ms", vclock.Millis(cv.TAll)+"ms", cv.Card)
}

// FuncSpec describes one function exported by a domain.
type FuncSpec struct {
	Name  string
	Arity int
	Doc   string
}

// Ctx carries per-execution state into domain calls: the clock against
// which simulated latencies and measurements accrue, an optional standard
// context for cancellation, and an optional query deadline measured on the
// execution clock.
type Ctx struct {
	Clock vclock.Clock
	// Context, when non-nil, carries cancellation from the caller. Long
	// call paths (registry routing, the engine's evaluation loops, remote
	// dials) check it and abort early when it is done.
	Context context.Context
	// Deadline, when nonzero, is the execution-clock reading past which
	// the query must not run: Err reports ErrDeadlineExceeded once
	// Clock.Now() reaches it. Measuring the deadline on the execution
	// clock keeps simulated runs deterministic — a wall-time deadline
	// would depend on host speed.
	Deadline time.Duration
	// Span, when non-nil, is the trace span covering this execution
	// scope. Layers on the call path (CIM, resilience wrapper, remote
	// client) annotate it with outcome tags; Span methods are nil-safe,
	// so they need no tracing-enabled check.
	Span *obs.Span
	// Sched, when non-nil, is the per-query parallelism budget the
	// engine's parallel operators draw evaluation lanes from. Nil means
	// strictly sequential evaluation.
	Sched *Sched
	// CallNote, when non-nil, observes every domain call issued under this
	// context: the call's key and whether it was served degraded (from
	// cache while the source was down). The memo cache installs it to
	// record a fill's contributing inputs. Must be safe for concurrent
	// calls — parallel branches share the hook.
	CallNote func(callKey string, degraded bool)
	// MemoPath is the set of memo keys currently being filled on this
	// evaluation path. A recursive subgoal that re-enters its own fill
	// must bypass the memo (it would otherwise wait on itself); the
	// engine checks OnMemoPath before probing.
	MemoPath map[string]bool
	// Replans, when non-nil, is the query-wide mid-query re-plan budget
	// shared by every branch (forks alias the same counter). The engine's
	// branch watchdog must Take from it before abandoning a lane's body
	// order, which bounds re-planning per query no matter how many lanes
	// blow their estimates.
	Replans *ReplanBudget
	// TraceID, when nonempty, identifies the federated trace this
	// execution belongs to. The remote client propagates it on call frames
	// (minting one at the origin hop); the remote server adopts the
	// caller's ID so every node's serve spans stitch into one tree.
	TraceID string
	// TraceDepth counts mount hops from the trace origin. Each remote call
	// sends TraceDepth+1; a server refuses to emit trace subtrees past its
	// depth limit, which bounds mount cycles.
	TraceDepth int
}

// ReplanBudget bounds how many mid-query re-plans a query may perform.
// It is shared across concurrently-forked contexts; Take is safe for
// concurrent use.
type ReplanBudget struct {
	mu   sync.Mutex
	left int
}

// NewReplanBudget returns a budget allowing n re-plans.
func NewReplanBudget(n int) *ReplanBudget { return &ReplanBudget{left: n} }

// Take consumes one re-plan if any remain, reporting whether it did. A
// nil budget always refuses — the watchdog is disarmed.
func (b *ReplanBudget) Take() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.left <= 0 {
		return false
	}
	b.left--
	return true
}

// NewCtx returns a context over the given clock. A nil clock gets a fresh
// virtual clock.
func NewCtx(c vclock.Clock) *Ctx {
	if c == nil {
		c = vclock.NewVirtual(0)
	}
	return &Ctx{Clock: c}
}

// Fork returns a context on a forked clock, for modelling concurrent
// activity. Cancellation and the deadline propagate to the fork.
func (c *Ctx) Fork() *Ctx {
	return &Ctx{
		Clock:      c.Clock.Fork(),
		Context:    c.Context,
		Deadline:   c.Deadline,
		Span:       c.Span,
		Sched:      c.Sched,
		CallNote:   c.CallNote,
		MemoPath:   c.MemoPath,
		Replans:    c.Replans,
		TraceID:    c.TraceID,
		TraceDepth: c.TraceDepth,
	}
}

// WithCallNote returns a copy of the Ctx whose domain calls are observed
// by fn (chaining with any existing hook is the caller's concern).
func (c *Ctx) WithCallNote(fn func(callKey string, degraded bool)) *Ctx {
	out := *c
	out.CallNote = fn
	return &out
}

// WithMemoPath returns a copy of the Ctx with key added to the set of
// in-progress memo fills on this path. The map is copied on extension so
// sibling branches never see each other's fills.
func (c *Ctx) WithMemoPath(key string) *Ctx {
	out := *c
	out.MemoPath = make(map[string]bool, len(c.MemoPath)+1)
	for k := range c.MemoPath {
		out.MemoPath[k] = true
	}
	out.MemoPath[key] = true
	return &out
}

// OnMemoPath reports whether key is already being filled on this
// evaluation path (recursion through the same memoized subgoal).
func (c *Ctx) OnMemoPath(key string) bool { return c.MemoPath[key] }

// WithContext returns a copy of the Ctx carrying gc for cancellation.
func (c *Ctx) WithContext(gc context.Context) *Ctx {
	out := *c
	out.Context = gc
	return &out
}

// WithDeadline returns a copy of the Ctx whose query deadline is the
// absolute clock reading d (0 clears it).
func (c *Ctx) WithDeadline(d time.Duration) *Ctx {
	out := *c
	out.Deadline = d
	return &out
}

// WithSpan returns a copy of the Ctx scoped to trace span s, so call-path
// layers annotate the right node of the query's span tree.
func (c *Ctx) WithSpan(s *obs.Span) *Ctx {
	out := *c
	out.Span = s
	return &out
}

// Err reports why the execution should stop: the cancellation context's
// error, or ErrDeadlineExceeded when the clock passed the query deadline.
// It returns nil while the execution may continue.
func (c *Ctx) Err() error {
	if c.Context != nil {
		if err := c.Context.Err(); err != nil {
			return err
		}
	}
	if c.Deadline > 0 && c.Clock.Now() >= c.Deadline {
		return fmt.Errorf("%w (clock %s past deadline %s)",
			ErrDeadlineExceeded, c.Clock.Now(), c.Deadline)
	}
	return nil
}

// Remaining returns the clock time left before the query deadline.
// ok=false means no deadline is set (infinite budget).
func (c *Ctx) Remaining() (time.Duration, bool) {
	if c.Deadline <= 0 {
		return 0, false
	}
	left := c.Deadline - c.Clock.Now()
	if left < 0 {
		left = 0
	}
	return left, true
}

// Stream is a pull-based answer stream. Next returns the next answer, or
// ok=false at end of stream. Close releases resources; it is safe to call
// Close before exhaustion (interactive mode stops running source calls).
type Stream interface {
	Next() (v term.Value, ok bool, err error)
	Close() error
}

// Domain is an external package or database integrated by the mediator.
type Domain interface {
	// Name returns the domain identifier used in rules (e.g. "avis").
	Name() string
	// Functions lists the functions the domain exports.
	Functions() []FuncSpec
	// Call executes a function on ground arguments, returning a stream of
	// answers. Implementations advance ctx.Clock by their compute and
	// transfer costs.
	Call(ctx *Ctx, fn string, args []term.Value) (Stream, error)
}

// FunctionLister is an optional interface for domains whose function
// listing can itself fail — a remote source whose server is unreachable
// has an unknown listing, not an empty one. Callers that would otherwise
// misread an empty listing as "function-less" (registry validation, plan
// enumeration) should prefer this interface when the domain provides it.
type FunctionLister interface {
	// FunctionsErr lists the exported functions, or reports why the
	// listing could not be obtained (typically wrapping ErrUnavailable,
	// which is retryable).
	FunctionsErr() ([]FuncSpec, error)
}

// IsRetryable reports whether an error is transient: retrying the call
// later may succeed. Unavailability (network partitions, outages, open
// circuit breakers wrap ErrUnavailable) is retryable; semantic errors
// (unknown domain or function, type errors) are not.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrUnavailable)
}

// Estimator is an optional interface for domains that ship a native cost
// model (e.g. a relational source with catalog statistics). The DCSM uses
// it in preference to cached statistics, filling in any missing components
// from the statistics cache (§6).
type Estimator interface {
	// EstimateCost returns a cost estimate for a call pattern. ok=false
	// means the domain has no estimate for this pattern. missing reports
	// vector components the domain could not estimate (any of "tf", "ta",
	// "card").
	EstimateCost(p Pattern) (cv CostVector, missing []string, ok bool)
}
