package domain

import (
	"time"

	"hermes/internal/term"
	"hermes/internal/vclock"
)

// SliceStream streams a pre-materialized answer slice. An optional
// per-answer delay charges the clock for transfer/compute per tuple, which
// is how simulated domains model time-to-first-answer vs time-to-all.
type SliceStream struct {
	vals     []term.Value
	idx      int
	clock    vclock.Clock
	perTuple func(term.Value) time.Duration
	closed   bool
}

// NewSliceStream returns a stream over vals with no time cost.
func NewSliceStream(vals []term.Value) *SliceStream {
	return &SliceStream{vals: vals}
}

// NewTimedSliceStream returns a stream over vals that advances clock by
// perTuple(v) before yielding each answer.
func NewTimedSliceStream(vals []term.Value, clock vclock.Clock, perTuple func(term.Value) time.Duration) *SliceStream {
	return &SliceStream{vals: vals, clock: clock, perTuple: perTuple}
}

// Next yields the next answer.
func (s *SliceStream) Next() (term.Value, bool, error) {
	if s.closed || s.idx >= len(s.vals) {
		return nil, false, nil
	}
	v := s.vals[s.idx]
	s.idx++
	if s.clock != nil && s.perTuple != nil {
		s.clock.Sleep(s.perTuple(v))
	}
	return v, true, nil
}

// Close stops the stream.
func (s *SliceStream) Close() error {
	s.closed = true
	return nil
}

// Collect drains a stream into a slice and closes it.
func Collect(s Stream) ([]term.Value, error) {
	defer s.Close()
	var out []term.Value
	for {
		v, ok, err := s.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}

// FuncStream adapts a pull function to a Stream.
type FuncStream struct {
	fn     func() (term.Value, bool, error)
	closer func() error
}

// NewFuncStream wraps fn (and an optional closer) as a Stream.
func NewFuncStream(fn func() (term.Value, bool, error), closer func() error) *FuncStream {
	return &FuncStream{fn: fn, closer: closer}
}

// Next pulls the next answer from the function.
func (s *FuncStream) Next() (term.Value, bool, error) { return s.fn() }

// Close invokes the closer, if any.
func (s *FuncStream) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer()
}

// ConcatStream yields all answers of each member stream in order.
type ConcatStream struct {
	streams []Stream
	idx     int
}

// NewConcatStream concatenates streams.
func NewConcatStream(streams ...Stream) *ConcatStream {
	return &ConcatStream{streams: streams}
}

// Next yields from the current member stream, advancing on exhaustion.
func (s *ConcatStream) Next() (term.Value, bool, error) {
	for s.idx < len(s.streams) {
		v, ok, err := s.streams[s.idx].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return v, true, nil
		}
		s.idx++
	}
	return nil, false, nil
}

// Close closes all member streams, returning the first error.
func (s *ConcatStream) Close() error {
	var first error
	for _, m := range s.streams {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DedupStream suppresses answers already seen (by canonical key). Seed keys
// may be provided, e.g. the cached partial answers a CIM subset-invariant
// already delivered.
type DedupStream struct {
	inner Stream
	seen  map[string]struct{}
	// PerProbe charges the clock for each duplicate check; the paper notes
	// that CIM "must keep the answers from the cache in memory and compare
	// them with the answers from the actual call", a measurable overhead.
	clock    vclock.Clock
	perProbe time.Duration
}

// NewDedupStream wraps inner, suppressing values whose keys are in seed or
// were already emitted.
func NewDedupStream(inner Stream, seed map[string]struct{}) *DedupStream {
	seen := make(map[string]struct{}, len(seed))
	for k := range seed {
		seen[k] = struct{}{}
	}
	return &DedupStream{inner: inner, seen: seen}
}

// WithProbeCost makes each membership probe advance clock by d.
func (s *DedupStream) WithProbeCost(clock vclock.Clock, d time.Duration) *DedupStream {
	s.clock = clock
	s.perProbe = d
	return s
}

// Next yields the next not-yet-seen answer.
func (s *DedupStream) Next() (term.Value, bool, error) {
	for {
		v, ok, err := s.inner.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if s.clock != nil && s.perProbe > 0 {
			s.clock.Sleep(s.perProbe)
		}
		k := v.Key()
		if _, dup := s.seen[k]; dup {
			continue
		}
		s.seen[k] = struct{}{}
		return v, true, nil
	}
}

// Close closes the inner stream.
func (s *DedupStream) Close() error { return s.inner.Close() }

// Measurement is the observed cost of one executed call: the raw material
// of the DCSM statistics cache.
type Measurement struct {
	Call Call
	Cost CostVector
	// Complete is false when the stream was closed before exhaustion (e.g.
	// pruning, or the user stopped an interactive query), in which case TAll
	// and Card understate the true values and must not be recorded as
	// all-answer statistics.
	Complete bool
	// Bytes is the total transferred answer size.
	Bytes int
}

// MeasuredStream observes a stream against a clock, producing a Measurement
// when the stream ends (or is closed early).
//
// Time attribution matters under pipelined execution: an outer join
// operand's stream stays open while inner literals run, so "clock reading
// at exhaustion minus start" would charge the whole join's work to this one
// call. MeasuredStream instead accumulates only the time that elapses
// *inside* its own Next calls, plus the call setup time (between issuing
// the call and the stream's creation) — the cost the source itself is
// responsible for.
type MeasuredStream struct {
	inner    Stream
	clock    vclock.Clock
	call     Call
	setup    time.Duration // call issue -> stream creation
	acc      time.Duration // time spent inside Next
	first    time.Duration
	gotFirst bool
	count    int
	bytes    int
	done     bool
	onDone   func(Measurement)
}

// NewMeasuredStream wraps inner; onDone receives the measurement exactly
// once, when the stream is exhausted or closed. Measurement starts at the
// clock's current reading; use NewMeasuredStreamAt when the call was issued
// earlier (per-call costs accrue before the stream exists and must count).
func NewMeasuredStream(inner Stream, clock vclock.Clock, call Call, onDone func(Measurement)) *MeasuredStream {
	return NewMeasuredStreamAt(inner, clock, call, clock.Now(), onDone)
}

// NewMeasuredStreamAt is NewMeasuredStream with an explicit call-issue
// reading.
func NewMeasuredStreamAt(inner Stream, clock vclock.Clock, call Call, start time.Duration, onDone func(Measurement)) *MeasuredStream {
	return &MeasuredStream{inner: inner, clock: clock, call: call, setup: clock.Now() - start, onDone: onDone}
}

// Next forwards to the inner stream, recording first-answer time and
// cardinality.
func (s *MeasuredStream) Next() (term.Value, bool, error) {
	t0 := s.clock.Now()
	v, ok, err := s.inner.Next()
	s.acc += s.clock.Now() - t0
	if err != nil {
		return v, ok, err
	}
	if ok {
		if !s.gotFirst {
			s.gotFirst = true
			s.first = s.setup + s.acc
		}
		s.count++
		s.bytes += term.SizeBytes(v)
		return v, true, nil
	}
	s.finish(true)
	return nil, false, nil
}

// Close closes the inner stream and finalizes the measurement as
// incomplete if the stream had not ended.
func (s *MeasuredStream) Close() error {
	err := s.inner.Close()
	s.finish(false)
	return err
}

func (s *MeasuredStream) finish(complete bool) {
	if s.done {
		return
	}
	s.done = true
	tf := s.first
	if !s.gotFirst {
		tf = s.setup + s.acc
	}
	m := Measurement{
		Call: s.call,
		Cost: CostVector{
			TFirst: tf,
			TAll:   s.setup + s.acc,
			Card:   float64(s.count),
		},
		Complete: complete,
		Bytes:    s.bytes,
	}
	if s.onDone != nil {
		s.onDone(m)
	}
}
