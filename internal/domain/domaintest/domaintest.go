// Package domaintest provides a scriptable in-memory domain for tests and
// examples: each function is a Go closure over ground arguments, with
// configurable per-call and per-answer costs charged to the execution
// clock.
package domaintest

import (
	"fmt"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// Func is one scriptable source function.
type Func struct {
	Arity int
	// Fn computes the answer set. A nil error and nil slice is an empty
	// answer set.
	Fn func(args []term.Value) ([]term.Value, error)
	// PerCall is charged when the function is invoked.
	PerCall time.Duration
	// PerAnswer is charged as each answer is streamed.
	PerAnswer time.Duration
}

// Domain is a scriptable domain.
type Domain struct {
	name  string
	funcs map[string]Func
	// mu guards Calls: parallel query branches invoke the domain
	// concurrently. Read Calls directly only after execution finished.
	mu sync.Mutex
	// Calls records every invocation, in order.
	Calls []domain.Call
}

// New creates an empty scriptable domain.
func New(name string) *Domain {
	return &Domain{name: name, funcs: make(map[string]Func)}
}

// Define registers a function.
func (d *Domain) Define(name string, f Func) *Domain {
	d.funcs[name] = f
	return d
}

// DefineTable registers a zero-cost function returning fixed answers for
// specific argument lists, keyed by the ground call. Unknown argument
// lists return empty answer sets.
func (d *Domain) DefineTable(name string, arity int, table map[string][]term.Value) *Domain {
	return d.Define(name, Func{
		Arity: arity,
		Fn: func(args []term.Value) ([]term.Value, error) {
			c := domain.Call{Domain: d.name, Function: name, Args: args}
			return table[c.Key()], nil
		},
	})
}

// Key builds the lookup key DefineTable uses for an argument list.
func (d *Domain) Key(fn string, args ...term.Value) string {
	return domain.Call{Domain: d.name, Function: fn, Args: args}.Key()
}

// CallCount returns how many times fn was invoked.
func (d *Domain) CallCount(fn string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.Calls {
		if c.Function == fn {
			n++
		}
	}
	return n
}

// Name implements domain.Domain.
func (d *Domain) Name() string { return d.name }

// Functions implements domain.Domain.
func (d *Domain) Functions() []domain.FuncSpec {
	var out []domain.FuncSpec
	for n, f := range d.funcs {
		out = append(out, domain.FuncSpec{Name: n, Arity: f.Arity})
	}
	return out
}

// Call implements domain.Domain.
func (d *Domain) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	f, ok := d.funcs[fn]
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, d.name, fn)
	}
	if len(args) != f.Arity {
		return nil, fmt.Errorf("%s:%s/%d called with %d args", d.name, fn, f.Arity, len(args))
	}
	d.mu.Lock()
	d.Calls = append(d.Calls, domain.Call{Domain: d.name, Function: fn, Args: args})
	d.mu.Unlock()
	ctx.Clock.Sleep(f.PerCall)
	vals, err := f.Fn(args)
	if err != nil {
		return nil, err
	}
	per := f.PerAnswer
	return domain.NewTimedSliceStream(vals, ctx.Clock, func(term.Value) time.Duration { return per }), nil
}

// Meter wraps a domain and measures source-observed concurrency: how many
// calls are open — Call entered, answer stream neither exhausted nor
// closed — at each moment, with a lifetime high-water mark. Admission
// tests wrap every source in a Meter and assert Peak never exceeds the
// pool capacity, no matter how many sessions ran.
type Meter struct {
	inner domain.Domain

	mu    sync.Mutex
	cur   int
	peak  int
	total int
}

// Metered wraps d in a concurrency meter.
func Metered(d domain.Domain) *Meter { return &Meter{inner: d} }

// Name implements domain.Domain.
func (m *Meter) Name() string { return m.inner.Name() }

// Functions implements domain.Domain.
func (m *Meter) Functions() []domain.FuncSpec { return m.inner.Functions() }

// Inner returns the wrapped domain, composing with the registry's
// unwrap-chain walks.
func (m *Meter) Inner() domain.Domain { return m.inner }

// Call implements domain.Domain, counting the call as open until its
// stream is exhausted, errors, or is closed.
func (m *Meter) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	m.mu.Lock()
	m.cur++
	m.total++
	if m.cur > m.peak {
		m.peak = m.cur
	}
	m.mu.Unlock()
	s, err := m.inner.Call(ctx, fn, args)
	if err != nil {
		m.release()
		return nil, err
	}
	return &meteredStream{inner: s, m: m}, nil
}

func (m *Meter) release() {
	m.mu.Lock()
	m.cur--
	m.mu.Unlock()
}

// Current returns how many calls are open right now.
func (m *Meter) Current() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Peak returns the lifetime high-water mark of concurrently open calls.
func (m *Meter) Peak() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Total returns how many calls were issued in total.
func (m *Meter) Total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

type meteredStream struct {
	inner domain.Stream
	m     *Meter
	done  bool
}

func (s *meteredStream) finish() {
	if !s.done {
		s.done = true
		s.m.release()
	}
}

func (s *meteredStream) Next() (term.Value, bool, error) {
	v, ok, err := s.inner.Next()
	if err != nil || !ok {
		s.finish()
	}
	return v, ok, err
}

func (s *meteredStream) Close() error {
	err := s.inner.Close()
	s.finish()
	return err
}
