// Package domaintest provides a scriptable in-memory domain for tests and
// examples: each function is a Go closure over ground arguments, with
// configurable per-call and per-answer costs charged to the execution
// clock.
package domaintest

import (
	"fmt"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// Func is one scriptable source function.
type Func struct {
	Arity int
	// Fn computes the answer set. A nil error and nil slice is an empty
	// answer set.
	Fn func(args []term.Value) ([]term.Value, error)
	// PerCall is charged when the function is invoked.
	PerCall time.Duration
	// PerAnswer is charged as each answer is streamed.
	PerAnswer time.Duration
}

// Domain is a scriptable domain.
type Domain struct {
	name  string
	funcs map[string]Func
	// mu guards Calls: parallel query branches invoke the domain
	// concurrently. Read Calls directly only after execution finished.
	mu sync.Mutex
	// Calls records every invocation, in order.
	Calls []domain.Call
}

// New creates an empty scriptable domain.
func New(name string) *Domain {
	return &Domain{name: name, funcs: make(map[string]Func)}
}

// Define registers a function.
func (d *Domain) Define(name string, f Func) *Domain {
	d.funcs[name] = f
	return d
}

// DefineTable registers a zero-cost function returning fixed answers for
// specific argument lists, keyed by the ground call. Unknown argument
// lists return empty answer sets.
func (d *Domain) DefineTable(name string, arity int, table map[string][]term.Value) *Domain {
	return d.Define(name, Func{
		Arity: arity,
		Fn: func(args []term.Value) ([]term.Value, error) {
			c := domain.Call{Domain: d.name, Function: name, Args: args}
			return table[c.Key()], nil
		},
	})
}

// Key builds the lookup key DefineTable uses for an argument list.
func (d *Domain) Key(fn string, args ...term.Value) string {
	return domain.Call{Domain: d.name, Function: fn, Args: args}.Key()
}

// CallCount returns how many times fn was invoked.
func (d *Domain) CallCount(fn string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.Calls {
		if c.Function == fn {
			n++
		}
	}
	return n
}

// Name implements domain.Domain.
func (d *Domain) Name() string { return d.name }

// Functions implements domain.Domain.
func (d *Domain) Functions() []domain.FuncSpec {
	var out []domain.FuncSpec
	for n, f := range d.funcs {
		out = append(out, domain.FuncSpec{Name: n, Arity: f.Arity})
	}
	return out
}

// Call implements domain.Domain.
func (d *Domain) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	f, ok := d.funcs[fn]
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, d.name, fn)
	}
	if len(args) != f.Arity {
		return nil, fmt.Errorf("%s:%s/%d called with %d args", d.name, fn, f.Arity, len(args))
	}
	d.mu.Lock()
	d.Calls = append(d.Calls, domain.Call{Domain: d.name, Function: fn, Args: args})
	d.mu.Unlock()
	ctx.Clock.Sleep(f.PerCall)
	vals, err := f.Fn(args)
	if err != nil {
		return nil, err
	}
	per := f.PerAnswer
	return domain.NewTimedSliceStream(vals, ctx.Clock, func(term.Value) time.Duration { return per }), nil
}
