package domain

import "sync/atomic"

// Sched is the per-query parallelism budget: a bounded semaphore of
// "extra" evaluation lanes beyond the query's own thread. A query with
// Parallelism = P holds one implicit lane and may acquire up to P-1 extra
// ones; parallel operators (the engine's rule unions and independent
// sibling stages) try to acquire lanes at launch and fall back to
// sequential evaluation when none are free, so nested parallelism degrades
// gracefully instead of deadlocking.
//
// All methods are safe on a nil receiver (nil = sequential execution,
// nothing ever acquired), which is how engine contexts built outside the
// mediator behave.
type Sched struct {
	limit int
	free  atomic.Int64
}

// NewSched returns a scheduler allowing `limit` concurrent lanes in total
// (one implicit + limit-1 acquirable). limit < 2 yields a scheduler that
// never grants an extra lane.
func NewSched(limit int) *Sched {
	s := &Sched{limit: limit}
	if limit > 1 {
		s.free.Store(int64(limit - 1))
	}
	return s
}

// TryAcquire attempts to take up to n extra lanes without blocking and
// returns how many it got (possibly 0). Never blocking is what makes
// nested parallel operators safe: a starved operator runs sequentially.
func (s *Sched) TryAcquire(n int) int {
	if s == nil || n <= 0 {
		return 0
	}
	for {
		free := s.free.Load()
		if free <= 0 {
			return 0
		}
		take := int64(n)
		if take > free {
			take = free
		}
		if s.free.CompareAndSwap(free, free-take) {
			return int(take)
		}
	}
}

// Release returns n extra lanes to the budget.
func (s *Sched) Release(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.free.Add(int64(n))
}

// Limit returns the total lane budget (0 on a nil scheduler).
func (s *Sched) Limit() int {
	if s == nil {
		return 0
	}
	return s.limit
}
