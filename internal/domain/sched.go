package domain

import "sync"

// LaneLease is a session's claim on a server-wide admission pool. A leased
// Sched forwards every extra-lane acquisition through it, so the pool — not
// the per-query budget alone — bounds how many evaluation lanes (and hence
// in-flight source calls) exist across all concurrent queries. The
// implementation lives in internal/admission; this interface keeps the
// dependency pointing pool → domain, never the reverse.
//
// TryLease must never block (lane acquisition degrades to sequential
// evaluation, it never waits), and Return must tolerate being handed back
// at most what was leased — the Sched clamps before calling it.
type LaneLease interface {
	// TryLease grants up to n extra lanes, returning how many (possibly 0).
	TryLease(n int) int
	// Return gives n extra lanes back to the pool.
	Return(n int)
}

// Sched is the per-query parallelism budget: a bounded semaphore of
// "extra" evaluation lanes beyond the query's own thread. A query with
// Parallelism = P holds one implicit lane and may acquire up to P-1 extra
// ones; parallel operators (the engine's rule unions and independent
// sibling stages) try to acquire lanes at launch and fall back to
// sequential evaluation when none are free, so nested parallelism degrades
// gracefully instead of deadlocking.
//
// A Sched built with NewLeasedSched is the lower tier of the two-tier
// scheduler: its local budget still caps intra-query parallelism, but
// every extra lane must also be granted by the session's LaneLease on the
// server-wide admission pool. Acquisition stays non-blocking end to end —
// a pool that grants nothing simply means sequential evaluation.
//
// All methods are safe on a nil receiver (nil = sequential execution,
// nothing ever acquired), which is how engine contexts built outside the
// mediator behave.
type Sched struct {
	mu    sync.Mutex
	limit int
	free  int
	lease LaneLease
}

// NewSched returns a scheduler allowing `limit` concurrent lanes in total
// (one implicit + limit-1 acquirable). limit < 2 yields a scheduler that
// never grants an extra lane.
func NewSched(limit int) *Sched {
	s := &Sched{limit: limit}
	if limit > 1 {
		s.free = limit - 1
	}
	return s
}

// NewLeasedSched returns a scheduler whose extra lanes are additionally
// leased from a server-wide admission pool. A nil lease is equivalent to
// NewSched.
func NewLeasedSched(limit int, lease LaneLease) *Sched {
	s := NewSched(limit)
	s.lease = lease
	return s
}

// TryAcquire attempts to take up to n extra lanes without blocking and
// returns how many it got (possibly 0). Never blocking is what makes
// nested parallel operators safe: a starved operator runs sequentially.
func (s *Sched) TryAcquire(n int) int {
	if s == nil || n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	take := n
	if take > s.free {
		take = s.free
	}
	if take <= 0 {
		return 0
	}
	if s.lease != nil {
		take = s.lease.TryLease(take)
		if take <= 0 {
			return 0
		}
	}
	s.free -= take
	return take
}

// Release returns n extra lanes to the budget. Releases are clamped to
// what is actually outstanding: a double release (or a release of lanes
// never acquired, on an error path) must not inflate the budget past
// limit-1 — and, on a leased scheduler, must not hand the admission pool
// tokens it never granted.
func (s *Sched) Release(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	give := n
	if max := s.limit - 1; s.free+give > max {
		give = max - s.free
	}
	if give > 0 {
		s.free += give
	}
	lease := s.lease
	s.mu.Unlock()
	if lease != nil && give > 0 {
		lease.Return(give)
	}
}

// Limit returns the total lane budget (0 on a nil scheduler).
func (s *Sched) Limit() int {
	if s == nil {
		return 0
	}
	return s.limit
}

// Lease returns the admission-pool lease the scheduler draws extra lanes
// from (nil for a free-standing scheduler or a nil receiver).
func (s *Sched) Lease() LaneLease {
	if s == nil {
		return nil
	}
	return s.lease
}
