package core_test

import (
	"fmt"
	"log"

	"hermes/internal/core"
	"hermes/internal/domains/relation"
	"hermes/internal/term"
)

// Example shows the complete lifecycle: register a source, load a mediator
// program, run an optimized query, and observe the cache at work.
func Example() {
	db := relation.New("db")
	crew := db.MustCreateTable(relation.Schema{Name: "crew", Cols: []relation.Column{
		{Name: "name", Type: relation.TString},
		{Name: "ship", Type: relation.TString},
	}})
	crew.MustInsert(term.Str("ripley"), term.Str("nostromo"))
	crew.MustInsert(term.Str("dallas"), term.Str("nostromo"))
	crew.MustInsert(term.Str("bowman"), term.Str("discovery"))

	sys := core.NewSystem(core.Options{})
	sys.Register(db)
	if err := sys.LoadProgram(`
		serves_on(Name, Ship) :-
		    in(P, db:all('crew')), =(P.name, Name), =(P.ship, Ship).
	`); err != nil {
		log.Fatal(err)
	}
	answers, _, err := sys.QueryAll("?- serves_on(N, 'nostromo').")
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		fmt.Println(a)
	}
	// Run it again: the cache absorbs the source call.
	if _, _, err := sys.QueryAll("?- serves_on(N, 'nostromo')."); err != nil {
		log.Fatal(err)
	}
	st := sys.CIM.Stats()
	fmt.Printf("cache: %d hit(s), %d miss(es)\n", st.ExactHits, st.Misses)
	// Output:
	// {N='ripley'}
	// {N='dallas'}
	// cache: 1 hit(s), 1 miss(es)
}

// ExampleSystem_Optimize shows plan selection between two access paths
// after the statistics cache has observed their costs.
func ExampleSystem_Optimize() {
	db := relation.New("db")
	t := db.MustCreateTable(relation.Schema{Name: "items", Cols: []relation.Column{
		{Name: "sku", Type: relation.TString},
		{Name: "qty", Type: relation.TInt},
	}})
	for i := 0; i < 100; i++ {
		t.MustInsert(term.Str(fmt.Sprintf("sku%03d", i)), term.Int(int64(i)))
	}
	sys := core.NewSystem(core.Options{})
	sys.Register(db)
	if err := sys.LoadProgram(`
		item(S, Q) :- in(P, db:all('items')), =(P.sku, S), =(P.qty, Q).
	`); err != nil {
		log.Fatal(err)
	}
	// With a constant SKU, the rewriter pushes the selection into the
	// source: db:equal replaces the full scan.
	plan, _, err := sys.Optimize("?- item('sku042', Q).", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Query.Rule.Body[0])
	// Output:
	// item('sku042', Q)
}
