package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"hermes/internal/cim"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/domains/spatial"
	"hermes/internal/engine"
	"hermes/internal/netsim"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/workload"
)

// answerSet canonicalizes a result list for cross-plan comparison.
func answerSet(answers []engine.Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = a.String()
	}
	sort.Strings(out)
	return out
}

// TestPlanEquivalenceOverRandomData: every plan the rewriter emits for a
// join query over a randomized federation computes the same answer bag.
func TestPlanEquivalenceOverRandomData(t *testing.T) {
	cfg := workload.DefaultFederation()
	cfg.RowsMax = 40
	_, rel := workload.Federation(cfg)
	sys := NewSystem(Options{})
	sys.Register(rel)
	if err := sys.LoadProgram(`
		entry(K, V) :- in(P, rel:all('table00')), =(P.k, K), =(P.v, V).
		pair(K, V1, V2) :- entry(K, V1), entry(K, V2), V1 < V2.
	`); err != nil {
		t.Fatal(err)
	}
	plans, err := sys.Plans("?- pair(K, A, B).")
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("want multiple plans, got %d", len(plans))
	}
	var want []string
	for i, p := range plans {
		sys.CIM.Clear()
		cur, err := sys.Execute(p)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		answers, _, err := engine.CollectAll(cur)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		got := answerSet(answers)
		if i == 0 {
			want = got
			if len(want) == 0 {
				t.Fatal("query returned nothing; test data degenerate")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("plan %d: %d answers, plan 0 had %d\n%s", i, len(got), len(want), p)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("plan %d answer %d: %s != %s", i, j, got[j], want[j])
			}
		}
	}
}

// TestOptimizerChoosesCIMRoutingWhenCached: with routing enumeration on,
// the estimator should route a cached expensive call through the CIM, and
// the same call through the source while the cache is cold.
func TestOptimizerChoosesCIMRoutingWhenCached(t *testing.T) {
	d := domaintest.New("slow")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 8 * time.Second,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Str("x"), term.Str("y")}, nil
		}})
	sys := NewSystem(Options{
		Rewrite: &rewrite.Config{EnumerateRouting: true, CIMDomains: map[string]bool{}},
	})
	sys.Register(d)
	if err := sys.LoadProgram(`v(X) :- in(X, slow:f(1)).`); err != nil {
		t.Fatal(err)
	}
	// Warm statistics so the direct plan has a realistic (expensive) cost.
	if err := sys.WarmStatistics([]domain.Call{
		{Domain: "slow", Function: "f", Args: []term.Value{term.Int(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	routeOf := func(p *rewrite.Plan) rewrite.Route {
		rules := p.Rules[rewrite.PredKey{Pred: "v", Adorn: "f"}]
		return rules[0].RouteInOrder(0)
	}
	// Cold cache: either route costs the actual call; after priming the
	// cache, the CIM route must win.
	if err := sys.PrimeCache([]domain.Call{
		{Domain: "slow", Function: "f", Args: []term.Value{term.Int(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	plan, cv, err := sys.Optimize("?- v(X).", false)
	if err != nil {
		t.Fatal(err)
	}
	if routeOf(plan) != rewrite.RouteCIM {
		t.Errorf("optimizer did not route the cached call via CIM:\n%s (cost %v)", plan, cv)
	}
	if cv.TAll > time.Second {
		t.Errorf("CIM-routed estimate = %v, want cache-serve cost", cv.TAll)
	}
}

// TestSpatialInvariantEndToEnd drives the paper's §4 spatial example
// through the whole system: program + invariant text, optimizer, engine,
// CIM.
func TestSpatialInvariantEndToEnd(t *testing.T) {
	s := spatial.New("spatial")
	var pts []spatial.Point
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			pts = append(pts, spatial.Point{ID: fmt.Sprintf("p%02d%02d", i, j),
				X: float64(i * 11), Y: float64(j * 11)})
		}
	}
	s.MustAddFile("points", pts)
	sys := NewSystem(Options{})
	sys.Register(netsim.Wrap(s, netsim.USAEast))
	if err := sys.LoadProgram(`
		near(X, Y, D, P) :- in(P, spatial:range('points', X, Y, D)).
		% All points lie in a 100x100 square: any query wider than the
		% diagonal equals the clamped query.
		D > 142 => spatial:range('points', X, Y, D) = spatial:range('points', X, Y, 142).
	`); err != nil {
		t.Fatal(err)
	}
	// Prime with the clamped query.
	prime, _, err := sys.QueryAll("?- near(50, 50, 142, P).")
	if err != nil {
		t.Fatal(err)
	}
	if len(prime) != 100 {
		t.Fatalf("clamped query = %d answers", len(prime))
	}
	// A query with a huge radius is answered from cache via the invariant.
	answers, metrics, err := sys.QueryAll("?- near(50, 50, 9000, P).")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 100 {
		t.Fatalf("wide query = %d answers", len(answers))
	}
	if st := sys.CIM.Stats(); st.EqualityHits != 1 {
		t.Errorf("equality hits = %d, want 1 (%+v)", st.EqualityHits, st)
	}
	if metrics.TAll > 2*time.Second {
		t.Errorf("cache-served query took %v", metrics.TAll)
	}
}

// TestSystemPersistenceRoundTrip: save the cache and statistics, rebuild
// the system, load, and keep answering without source calls.
func TestSystemPersistenceRoundTrip(t *testing.T) {
	build := func() (*System, *domaintest.Domain) {
		d := domaintest.New("d")
		d.Define("f", domaintest.Func{Arity: 1, PerCall: time.Second,
			Fn: func(args []term.Value) ([]term.Value, error) {
				return []term.Value{args[0], term.Str("extra")}, nil
			}})
		sys := NewSystem(Options{})
		sys.Register(d)
		if err := sys.LoadProgram(`v(X, Y) :- in(Y, d:f(X)).`); err != nil {
			t.Fatal(err)
		}
		return sys, d
	}
	sys1, _ := build()
	if _, _, err := sys1.QueryAll("?- v(7, Y)."); err != nil {
		t.Fatal(err)
	}
	var cacheBuf, statsBuf bytes.Buffer
	if err := sys1.CIM.Save(&cacheBuf); err != nil {
		t.Fatal(err)
	}
	if err := sys1.DCSM.Save(&statsBuf); err != nil {
		t.Fatal(err)
	}

	sys2, d2 := build()
	if err := sys2.CIM.Load(&cacheBuf); err != nil {
		t.Fatal(err)
	}
	if err := sys2.DCSM.Load(&statsBuf); err != nil {
		t.Fatal(err)
	}
	answers, _, err := sys2.QueryAll("?- v(7, Y).")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
	if n := d2.CallCount("f"); n != 0 {
		t.Errorf("reloaded system called the source %d times", n)
	}
	// Statistics survived too: the estimator knows the call's cost.
	cv, err := sys2.DCSM.Cost(domain.Pattern{Domain: "d", Function: "f",
		Args: []domain.PatternArg{domain.Const(term.Int(7))}})
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll < time.Second {
		t.Errorf("reloaded stats Ta = %v, want ≥1s", cv.TAll)
	}
}

// TestInvalidInvariantRejected: LoadProgram must reject ill-formed
// invariants (free condition variables).
func TestInvalidInvariantRejected(t *testing.T) {
	sys := NewSystem(Options{})
	err := sys.LoadProgram("Z > 3 => d:f(X) = d:g(X).")
	if err == nil {
		t.Error("free condition variable should be rejected")
	}
}

// TestCIMConfigThroughOptions: a custom CIM config takes effect.
func TestCIMConfigThroughOptions(t *testing.T) {
	ccfg := cim.DefaultConfig()
	ccfg.MaxEntries = 1
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return []term.Value{args[0]}, nil
		}})
	sys := NewSystem(Options{CIM: &ccfg})
	sys.Register(d)
	if err := sys.PrimeCache([]domain.Call{
		{Domain: "d", Function: "f", Args: []term.Value{term.Int(1)}},
		{Domain: "d", Function: "f", Args: []term.Value{term.Int(2)}},
	}); err != nil {
		t.Fatal(err)
	}
	if sys.CIM.Len() != 1 {
		t.Errorf("MaxEntries ignored: %d entries", sys.CIM.Len())
	}
}

// TestDisableCIM: with the CIM off, repeated queries always call the
// source.
func TestDisableCIM(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Int(1)}, nil
		}})
	sys := NewSystem(Options{DisableCIM: true})
	sys.Register(d)
	if err := sys.LoadProgram(`v(X) :- in(X, d:f()).`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := sys.QueryAll("?- v(X)."); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.CallCount("f"); n != 3 {
		t.Errorf("source called %d times, want 3", n)
	}
	if sys.CIM != nil {
		t.Error("CIM should be nil when disabled")
	}
}
