package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/netsim"
	"hermes/internal/term"
)

// TestConcurrentQueries runs many queries against one System from parallel
// goroutines (run under -race in CI): the CIM, DCSM and registry must be
// safe for concurrent use and every query must see correct answers.
func TestConcurrentQueries(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			n := int64(args[0].(term.Int))
			out := make([]term.Value, n%5+1)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	sys := NewSystem(Options{})
	sys.Register(d)
	if err := sys.LoadProgram(`v(N, X) :- in(X, d:f(N)).`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				n := (g + i) % 7
				q := fmt.Sprintf("?- v(%d, X).", n)
				answers, _, err := sys.QueryAll(q)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", q, err)
					return
				}
				if len(answers) != n%5+1 {
					errs <- fmt.Errorf("%s: %d answers, want %d", q, len(answers), n%5+1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := sys.CIM.Stats(); st.ExactHits == 0 {
		t.Errorf("concurrent run never hit the cache: %+v", st)
	}
}

// TestNetsimWrappedEstimatorRegistered: Register must find a native cost
// estimator even when the domain sits behind a netsim host.
func TestNetsimWrappedEstimatorRegistered(t *testing.T) {
	est := &fakeEstimator{}
	host := netsim.Wrap(est, netsim.Local)
	sys := NewSystem(Options{})
	sys.Register(host)
	cv, err := sys.DCSM.Cost(domain.Pattern{Domain: "fake", Function: "f"})
	if err != nil {
		t.Fatalf("native estimator not wired through netsim: %v", err)
	}
	if cv.Card != 77 {
		t.Errorf("cv = %v", cv)
	}
}

type fakeEstimator struct{}

func (f *fakeEstimator) Name() string                 { return "fake" }
func (f *fakeEstimator) Functions() []domain.FuncSpec { return []domain.FuncSpec{{Name: "f"}} }
func (f *fakeEstimator) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	return domain.NewSliceStream(nil), nil
}
func (f *fakeEstimator) EstimateCost(p domain.Pattern) (domain.CostVector, []string, bool) {
	return domain.CostVector{Card: 77}, nil, true
}
