package core

import (
	"bytes"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/term"
)

func facadeSystem(t *testing.T) (*System, *domaintest.Domain) {
	t.Helper()
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 100 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return []term.Value{args[0]}, nil
		}})
	sys := NewSystem(Options{})
	sys.Register(d)
	if err := sys.LoadProgram(`v(X, Y) :- in(Y, d:f(X)).`); err != nil {
		t.Fatal(err)
	}
	return sys, d
}

func TestPlanCostFacade(t *testing.T) {
	sys, _ := facadeSystem(t)
	if err := sys.WarmStatistics([]domain.Call{
		{Domain: "d", Function: "f", Args: []term.Value{term.Int(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	sys.RouteThroughCIM("d", false)
	plans, err := sys.Plans("?- v(1, Y).")
	if err != nil {
		t.Fatal(err)
	}
	cv, err := sys.PlanCost(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll < 100*time.Millisecond {
		t.Errorf("PlanCost = %v", cv)
	}
}

func TestElapsedAdvances(t *testing.T) {
	sys, _ := facadeSystem(t)
	before := sys.Elapsed()
	if _, _, err := sys.QueryAll("?- v(1, Y)."); err != nil {
		t.Fatal(err)
	}
	if sys.Elapsed() <= before {
		t.Error("Elapsed did not advance")
	}
}

func TestSaveLoadStateFacade(t *testing.T) {
	sys, _ := facadeSystem(t)
	if _, _, err := sys.QueryAll("?- v(2, Y)."); err != nil {
		t.Fatal(err)
	}
	var cache, stats bytes.Buffer
	if err := sys.SaveState(&cache, &stats); err != nil {
		t.Fatal(err)
	}
	sys2, d2 := facadeSystem(t)
	if err := sys2.LoadState(&cache, &stats); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys2.QueryAll("?- v(2, Y)."); err != nil {
		t.Fatal(err)
	}
	if d2.CallCount("f") != 0 {
		t.Error("restored state did not serve from cache")
	}
	// Nil writers/readers are skipped without error.
	if err := sys.SaveState(nil, nil); err != nil {
		t.Errorf("SaveState(nil, nil): %v", err)
	}
	if err := sys2.LoadState(nil, nil); err != nil {
		t.Errorf("LoadState(nil, nil): %v", err)
	}
}

func TestSaveStateWithoutCIM(t *testing.T) {
	sys := NewSystem(Options{DisableCIM: true})
	var stats bytes.Buffer
	if err := sys.SaveState(nil, &stats); err != nil {
		t.Errorf("stats-only save with CIM disabled: %v", err)
	}
}

func TestPrimeCacheErrors(t *testing.T) {
	sys := NewSystem(Options{DisableCIM: true})
	if err := sys.PrimeCache(nil); err == nil {
		t.Error("PrimeCache with CIM disabled should error")
	}
	sys2, _ := facadeSystem(t)
	err := sys2.PrimeCache([]domain.Call{{Domain: "nosuch", Function: "f"}})
	if err == nil {
		t.Error("PrimeCache with unknown domain should error")
	}
}

func TestAutoTuneStatisticsFacade(t *testing.T) {
	sys, _ := facadeSystem(t)
	if err := sys.WarmStatistics([]domain.Call{
		{Domain: "d", Function: "f", Args: []term.Value{term.Int(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	p := domain.Pattern{Domain: "d", Function: "f",
		Args: []domain.PatternArg{domain.Const(term.Int(1))}}
	for i := 0; i < 4; i++ {
		if _, err := sys.DCSM.Cost(p); err != nil {
			t.Fatal(err)
		}
	}
	created, _, err := sys.AutoTuneStatistics(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 1 {
		t.Errorf("created = %v", created)
	}
}

func TestWarmStatisticsErrorPath(t *testing.T) {
	sys, _ := facadeSystem(t)
	err := sys.WarmStatistics([]domain.Call{{Domain: "nosuch", Function: "g"}})
	if err == nil {
		t.Error("warming an unknown domain should error")
	}
}
