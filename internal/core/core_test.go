package core

import (
	"sort"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/engine"
	"hermes/internal/term"
)

// buildM1 wires the paper's running example (M1): two source domains d1
// (relation p) and d2 (relation q) with per-binding-pattern access
// functions, and the mediator m(A,C) :- p(A,B), q(B,C).
//
// p = {(a,b1), (a,b2), (c,b3)}; q = {(b1,c1), (b1,c2), (b2,c3)}.
func buildM1(t *testing.T) (*System, *domaintest.Domain, *domaintest.Domain) {
	t.Helper()
	pRel := [][2]string{{"a", "b1"}, {"a", "b2"}, {"c", "b3"}}
	qRel := [][2]string{{"b1", "c1"}, {"b1", "c2"}, {"b2", "c3"}}

	d1 := domaintest.New("d1")
	d1.Define("p_ff", domaintest.Func{Arity: 0, PerCall: 100 * time.Millisecond, PerAnswer: 10 * time.Millisecond,
		Fn: func([]term.Value) ([]term.Value, error) {
			var out []term.Value
			for _, r := range pRel {
				out = append(out, term.Tuple{term.Str(r[0]), term.Str(r[1])})
			}
			return out, nil
		}})
	d1.Define("p_bf", domaintest.Func{Arity: 1, PerCall: 40 * time.Millisecond, PerAnswer: 5 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			var out []term.Value
			for _, r := range pRel {
				if term.Equal(term.Str(r[0]), args[0]) {
					out = append(out, term.Str(r[1]))
				}
			}
			return out, nil
		}})
	d1.Define("p_bb", domaintest.Func{Arity: 2, PerCall: 20 * time.Millisecond, PerAnswer: 2 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			for _, r := range pRel {
				if term.Equal(term.Str(r[0]), args[0]) && term.Equal(term.Str(r[1]), args[1]) {
					return []term.Value{term.Tuple{args[0], args[1]}}, nil
				}
			}
			return nil, nil
		}})

	d2 := domaintest.New("d2")
	d2.Define("q_ff", domaintest.Func{Arity: 0, PerCall: 150 * time.Millisecond, PerAnswer: 10 * time.Millisecond,
		Fn: func([]term.Value) ([]term.Value, error) {
			var out []term.Value
			for _, r := range qRel {
				out = append(out, term.Tuple{term.Str(r[0]), term.Str(r[1])})
			}
			return out, nil
		}})
	d2.Define("q_bf", domaintest.Func{Arity: 1, PerCall: 50 * time.Millisecond, PerAnswer: 5 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			var out []term.Value
			for _, r := range qRel {
				if term.Equal(term.Str(r[0]), args[0]) {
					out = append(out, term.Str(r[1]))
				}
			}
			return out, nil
		}})

	sys := NewSystem(Options{})
	sys.Register(d1)
	sys.Register(d2)
	if err := sys.LoadProgram(`
		access_equivalent('p', 2).
		access_equivalent('q', 2).
		m(A, C) :- p(A, B), q(B, C).
		p(A, B) :- in($ans, d1:p_ff()), =($ans.1, A), =($ans.2, B).
		p(A, B) :- in(B, d1:p_bf(A)).
		p(A, B) :- in($x, d1:p_bb(A, B)).
		q(B, C) :- in($ans, d2:q_ff()), =($ans.1, B), =($ans.2, C).
		q(B, C) :- in(C, d2:q_bf(B)).
	`); err != nil {
		t.Fatal(err)
	}
	return sys, d1, d2
}

func answerValues(answers []engine.Answer, v string) []string {
	var out []string
	for _, a := range answers {
		for i, name := range a.Vars {
			if name == v {
				out = append(out, a.Vals[i].String())
			}
		}
	}
	sort.Strings(out)
	return out
}

func TestM1QueryAllAnswers(t *testing.T) {
	sys, _, _ := buildM1(t)
	answers, metrics, err := sys.QueryAll("?- m('a', C).")
	if err != nil {
		t.Fatal(err)
	}
	got := answerValues(answers, "C")
	want := []string{"'c1'", "'c2'", "'c3'"}
	if len(got) != len(want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answers = %v, want %v", got, want)
		}
	}
	if !metrics.Complete || metrics.Answers != 3 {
		t.Errorf("metrics = %+v", metrics)
	}
	if metrics.TAll <= 0 || metrics.TFirst <= 0 || metrics.TFirst > metrics.TAll {
		t.Errorf("timing metrics inconsistent: %+v", metrics)
	}
}

func TestM1PlanEnumerationIncludesBothJoinOrders(t *testing.T) {
	sys, _, _ := buildM1(t)
	plans, err := sys.Plans("?- m('a', C).")
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("plans = %d, want at least 2 (P8 and P12 shapes)", len(plans))
	}
	// At least one plan must evaluate p before q (P8) and one q before p
	// (P12).
	var sawPQ, sawQP bool
	for _, p := range plans {
		body := p.Query.BodyInOrder()
		_ = body
		for key := range p.Rules {
			if key.Pred == "q" && key.Adorn == "ff" {
				sawQP = true
			}
			if key.Pred == "p" && key.Adorn == "bf" {
				sawPQ = true
			}
		}
	}
	if !sawPQ || !sawQP {
		t.Errorf("plan space misses a join order: sawPQ=%v sawQP=%v", sawPQ, sawQP)
	}
}

func TestM1EveryPlanComputesSameAnswers(t *testing.T) {
	sys, _, _ := buildM1(t)
	// Disable the CIM's influence across plans by clearing between runs.
	plans, err := sys.Plans("?- m('a', C).")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"'c1'", "'c2'", "'c3'"}
	for i, p := range plans {
		if sys.CIM != nil {
			sys.CIM.Clear()
		}
		cur, err := sys.Execute(p)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		answers, _, err := engine.CollectAll(cur)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		got := answerValues(answers, "C")
		if len(got) != len(want) {
			t.Fatalf("plan %d answers = %v, want %v\nplan:\n%s", i, got, want, p)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("plan %d answers = %v, want %v\nplan:\n%s", i, got, want, p)
			}
		}
	}
}

func TestOptimizerPrefersCheaperPlanAfterWarmup(t *testing.T) {
	sys, _, _ := buildM1(t)
	// Train statistics: run the calls both plans need.
	warm := []domain.Call{
		{Domain: "d1", Function: "p_bf", Args: []term.Value{term.Str("a")}},
		{Domain: "d1", Function: "p_bf", Args: []term.Value{term.Str("c")}},
		{Domain: "d2", Function: "q_bf", Args: []term.Value{term.Str("b1")}},
		{Domain: "d2", Function: "q_bf", Args: []term.Value{term.Str("b2")}},
		{Domain: "d2", Function: "q_ff", Args: nil},
		{Domain: "d1", Function: "p_ff", Args: nil},
		{Domain: "d1", Function: "p_bb", Args: []term.Value{term.Str("a"), term.Str("b1")}},
	}
	if err := sys.WarmStatistics(warm); err != nil {
		t.Fatal(err)
	}
	// Route nothing through the CIM so the comparison is pure source cost.
	sys.RouteThroughCIM("d1", false)
	sys.RouteThroughCIM("d2", false)
	plan, cv, err := sys.Optimize("?- m('a', C).", false)
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll <= 0 {
		t.Errorf("estimated cost = %v", cv)
	}
	// The chosen plan should start from p^bf (selective: A='a') rather than
	// scanning q_ff (150ms + per-tuple) for every binding.
	usesPbf := false
	for key := range plan.Rules {
		if key.Pred == "p" && key.Adorn == "bf" {
			usesPbf = true
		}
	}
	if !usesPbf {
		t.Errorf("optimizer picked an unexpected plan:\n%s (cost %v)", plan, cv)
	}
}

func TestSecondQueryHitsCacheAndIsFaster(t *testing.T) {
	sys, d1, d2 := buildM1(t)
	plan, _, err := sys.Optimize("?- m('a', C).", false)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	_, m1, err := engine.CollectAll(cur)
	if err != nil {
		t.Fatal(err)
	}
	callsAfterFirst := len(d1.Calls) + len(d2.Calls)
	cur2, err := sys.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := engine.CollectAll(cur2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d1.Calls) + len(d2.Calls); got != callsAfterFirst {
		t.Errorf("second run issued %d new source calls, want 0", got-callsAfterFirst)
	}
	if m2.TAll >= m1.TAll {
		t.Errorf("cached run not faster: first=%v second=%v", m1.TAll, m2.TAll)
	}
	stats := sys.CIM.Stats()
	if stats.ExactHits == 0 {
		t.Errorf("no exact cache hits recorded: %+v", stats)
	}
}

func TestInteractiveFirstAnswersStopEarly(t *testing.T) {
	sys, _, _ := buildM1(t)
	plan, _, err := sys.Optimize("?- m('a', C).", true)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	answers, metrics, err := engine.CollectFirst(cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(answers))
	}
	if metrics.Complete {
		t.Error("interactive stop should leave metrics incomplete")
	}
}

func TestQueryWithComparisonFilter(t *testing.T) {
	sys, _, _ := buildM1(t)
	answers, _, err := sys.QueryAll("?- m('a', C) & C != 'c2'.")
	if err != nil {
		t.Fatal(err)
	}
	got := answerValues(answers, "C")
	if len(got) != 2 || got[0] != "'c1'" || got[1] != "'c3'" {
		t.Errorf("answers = %v, want [c1 c3]", got)
	}
}

func TestUnknownPredicateError(t *testing.T) {
	sys, _, _ := buildM1(t)
	if _, _, err := sys.QueryAll("?- nosuch(X)."); err == nil {
		t.Error("query on unknown predicate should fail")
	}
}

func TestUnknownDomainError(t *testing.T) {
	sys, _, _ := buildM1(t)
	sys.RouteThroughCIM("nodomain", false)
	if _, _, err := sys.QueryAll("?- in(X, nodomain:f())."); err == nil {
		t.Error("query on unknown domain should fail")
	}
}
