package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hermes/internal/engine"
	"hermes/internal/netsim"
	"hermes/internal/workload"
)

// TestFederationStress runs a batch of random queries over a randomized
// federation through the full stack — rewriter, estimator, CIM, engine —
// asserting nothing errors, answers stay deterministic across a replay,
// and the cache keeps every rerun consistent with its first run.
func TestFederationStress(t *testing.T) {
	buildSys := func() *System {
		store, rel := workload.Federation(workload.DefaultFederation())
		sys := NewSystem(Options{})
		sys.Register(netsim.Wrap(store, netsim.USAEast))
		sys.Register(rel)
		if err := sys.LoadProgram(`
			objs(V, F, L, O) :- in(O, avis:frames_to_objects(V, F, L)).
			row(T, K, V) :- in(P, rel:all(T)), =(P.k, K), =(P.v, V).
			big(T, K, V) :- in(P, rel:select_gt(T, 'v', 500)), =(P.k, K), =(P.v, V).
			% Containment invariant for the video ranges.
			F1 <= G1 & G2 <= F2 => avis:frames_to_objects(V, F1, F2) >= avis:frames_to_objects(V, G1, G2).
		`); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	queries := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		var out []string
		for i := 0; i < 40; i++ {
			switch rng.Intn(3) {
			case 0:
				v := fmt.Sprintf("video%02d", rng.Intn(4))
				f := rng.Intn(150)
				out = append(out, fmt.Sprintf("?- objs('%s', %d, %d, O).", v, f, f+10+rng.Intn(80)))
			case 1:
				tbl := fmt.Sprintf("table%02d", rng.Intn(3))
				out = append(out, fmt.Sprintf("?- row('%s', K, V) & V > %d.", tbl, rng.Intn(900)))
			default:
				tbl := fmt.Sprintf("table%02d", rng.Intn(3))
				out = append(out, fmt.Sprintf("?- big('%s', K, V).", tbl))
			}
		}
		return out
	}

	run := func(sys *System) []string {
		var results []string
		for _, q := range queries(5) {
			answers, metrics, err := sys.QueryAll(q)
			if err != nil {
				t.Fatalf("query %s: %v", q, err)
			}
			if !metrics.Complete {
				t.Fatalf("query %s: incomplete metrics", q)
			}
			results = append(results, fmt.Sprintf("%s -> %v", q, answerSet(answers)))
		}
		return results
	}

	sys1 := buildSys()
	r1 := run(sys1)
	// Replay on a fresh system: byte-identical results.
	sys2 := buildSys()
	r2 := run(sys2)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replay diverged at query %d:\n%s\nvs\n%s", i, r1[i], r2[i])
		}
	}
	// Second pass on the warm system: identical answers again (cache
	// consistency), and the cache must have been exercised.
	r3 := run(sys1)
	for i := range r1 {
		if r1[i] != r3[i] {
			t.Fatalf("warm rerun diverged at query %d:\n%s\nvs\n%s", i, r1[i], r3[i])
		}
	}
	st := sys1.CIM.Stats()
	if st.ExactHits+st.PartialHits == 0 {
		t.Errorf("stress run never hit the cache: %+v", st)
	}
	// Statistics accumulated for the optimizer.
	if sys1.DCSM.Storage().RawRecords == 0 {
		t.Error("no statistics recorded")
	}
}

// TestInteractiveStress: pulling small batches and closing early across
// many queries never errors or leaks inconsistent state.
func TestInteractiveStress(t *testing.T) {
	store, rel := workload.Federation(workload.DefaultFederation())
	sys := NewSystem(Options{})
	sys.Register(netsim.Wrap(store, netsim.USAEast))
	sys.Register(rel)
	if err := sys.LoadProgram(`
		objs(V, F, L, O) :- in(O, avis:frames_to_objects(V, F, L)).
	`); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		v := fmt.Sprintf("video%02d", rng.Intn(4))
		f := rng.Intn(100)
		q := fmt.Sprintf("?- objs('%s', %d, %d, O).", v, f, f+40)
		plan, _, err := sys.Optimize(q, true)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := sys.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.CollectFirst(cur, 1+rng.Intn(4)); err != nil {
			t.Fatalf("query %s: %v", q, err)
		}
	}
	// Incomplete cached entries must never be served as complete.
	st := sys.CIM.Stats()
	if st.StoredEntries == 0 {
		t.Error("interactive runs stored nothing")
	}
}
