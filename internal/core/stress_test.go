package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hermes/internal/cim"
	"hermes/internal/dcsm"
	"hermes/internal/domain"
	"hermes/internal/engine"
	"hermes/internal/faultinject"
	"hermes/internal/lang"
	"hermes/internal/netsim"
	"hermes/internal/resilience"
	"hermes/internal/term"
	"hermes/internal/vclock"
	"hermes/internal/workload"
)

// TestFederationStress runs a batch of random queries over a randomized
// federation through the full stack — rewriter, estimator, CIM, engine —
// asserting nothing errors, answers stay deterministic across a replay,
// and the cache keeps every rerun consistent with its first run.
func TestFederationStress(t *testing.T) {
	buildSys := func() *System {
		store, rel := workload.Federation(workload.DefaultFederation())
		sys := NewSystem(Options{})
		sys.Register(netsim.Wrap(store, netsim.USAEast))
		sys.Register(rel)
		if err := sys.LoadProgram(`
			objs(V, F, L, O) :- in(O, avis:frames_to_objects(V, F, L)).
			row(T, K, V) :- in(P, rel:all(T)), =(P.k, K), =(P.v, V).
			big(T, K, V) :- in(P, rel:select_gt(T, 'v', 500)), =(P.k, K), =(P.v, V).
			% Containment invariant for the video ranges.
			F1 <= G1 & G2 <= F2 => avis:frames_to_objects(V, F1, F2) >= avis:frames_to_objects(V, G1, G2).
		`); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	queries := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		var out []string
		for i := 0; i < 40; i++ {
			switch rng.Intn(3) {
			case 0:
				v := fmt.Sprintf("video%02d", rng.Intn(4))
				f := rng.Intn(150)
				out = append(out, fmt.Sprintf("?- objs('%s', %d, %d, O).", v, f, f+10+rng.Intn(80)))
			case 1:
				tbl := fmt.Sprintf("table%02d", rng.Intn(3))
				out = append(out, fmt.Sprintf("?- row('%s', K, V) & V > %d.", tbl, rng.Intn(900)))
			default:
				tbl := fmt.Sprintf("table%02d", rng.Intn(3))
				out = append(out, fmt.Sprintf("?- big('%s', K, V).", tbl))
			}
		}
		return out
	}

	run := func(sys *System) []string {
		var results []string
		for _, q := range queries(5) {
			answers, metrics, err := sys.QueryAll(q)
			if err != nil {
				t.Fatalf("query %s: %v", q, err)
			}
			if !metrics.Complete {
				t.Fatalf("query %s: incomplete metrics", q)
			}
			results = append(results, fmt.Sprintf("%s -> %v", q, answerSet(answers)))
		}
		return results
	}

	sys1 := buildSys()
	r1 := run(sys1)
	// Replay on a fresh system: byte-identical results.
	sys2 := buildSys()
	r2 := run(sys2)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replay diverged at query %d:\n%s\nvs\n%s", i, r1[i], r2[i])
		}
	}
	// Second pass on the warm system: identical answers again (cache
	// consistency), and the cache must have been exercised.
	r3 := run(sys1)
	for i := range r1 {
		if r1[i] != r3[i] {
			t.Fatalf("warm rerun diverged at query %d:\n%s\nvs\n%s", i, r1[i], r3[i])
		}
	}
	st := sys1.CIM.Stats()
	if st.ExactHits+st.PartialHits == 0 {
		t.Errorf("stress run never hit the cache: %+v", st)
	}
	// Statistics accumulated for the optimizer.
	if sys1.DCSM.Storage().RawRecords == 0 {
		t.Error("no statistics recorded")
	}
}

// TestInteractiveStress: pulling small batches and closing early across
// many queries never errors or leaks inconsistent state.
func TestInteractiveStress(t *testing.T) {
	store, rel := workload.Federation(workload.DefaultFederation())
	sys := NewSystem(Options{})
	sys.Register(netsim.Wrap(store, netsim.USAEast))
	sys.Register(rel)
	if err := sys.LoadProgram(`
		objs(V, F, L, O) :- in(O, avis:frames_to_objects(V, F, L)).
	`); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		v := fmt.Sprintf("video%02d", rng.Intn(4))
		f := rng.Intn(100)
		q := fmt.Sprintf("?- objs('%s', %d, %d, O).", v, f, f+40)
		plan, _, err := sys.Optimize(q, true)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := sys.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.CollectFirst(cur, 1+rng.Intn(4)); err != nil {
			t.Fatalf("query %s: %v", q, err)
		}
	}
	// Incomplete cached entries must never be served as complete.
	st := sys.CIM.Stats()
	if st.StoredEntries == 0 {
		t.Error("interactive runs stored nothing")
	}
}

// TestConcurrentResilienceStress hammers the shared mutable state from
// many goroutines at once — CIM insert/lookup/degrade, DCSM record and
// estimate, resilience breaker trips, half-open probes and recoveries,
// fault-injector bookkeeping — and lets the race detector (go test -race)
// referee. Semantic checks are limited to soundness invariants that hold
// under any interleaving.
func TestConcurrentResilienceStress(t *testing.T) {
	store, _ := workload.Federation(workload.DefaultFederation())
	inj := faultinject.Wrap(store, faultinject.Config{
		Seed:         21,
		ErrorRate:    0.30,
		TruncateRate: 0.20,
		FailLatency:  time.Millisecond,
	})
	pol := resilience.Policy{
		MaxAttempts:  2,
		BackoffBase:  time.Millisecond,
		BackoffCap:   4 * time.Millisecond,
		Seed:         7,
		ResumeStream: true,
		MaxResumes:   1,
		// A low threshold and short open timeout keep the breaker cycling
		// through trips, probes and recoveries for the whole run.
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenTimeout: 20 * time.Millisecond},
	}
	wrapper := resilience.Wrap(inj, pol)
	reg := domain.NewRegistry()
	reg.Register(wrapper)

	sharedClk := vclock.NewVirtual(0)
	db := dcsm.New(dcsm.DefaultConfig(), sharedClk.Now)
	m := cim.New(reg, cim.Config{ParallelActual: true, FallbackOnUnavailable: true})
	m.SetMeasurementObserver(db.Observe)
	inv, err := lang.ParseInvariant(
		"F1 <= G1 & G2 <= F2 => avis:frames_to_objects(V, F1, F2) >= avis:frames_to_objects(V, G1, G2).")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(inv); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			ctx := domain.NewCtx(vclock.NewVirtual(0))
			for i := 0; i < iters; i++ {
				// A small call space, so concurrent workers repeat and
				// contain each other's ranges: exact and partial hits race
				// with inserts.
				f := rng.Intn(6) * 10
				l := f + 20 + rng.Intn(3)*10
				c := domain.Call{Domain: "avis", Function: "frames_to_objects",
					Args: []term.Value{term.Str(fmt.Sprintf("video%02d", rng.Intn(4))),
						term.Int(int64(f)), term.Int(int64(l))}}
				resp, err := m.CallThrough(ctx, c)
				if err != nil {
					// Unavailable with an empty cache is legitimate; anything
					// else is a bug.
					if !domain.IsRetryable(err) {
						errs <- fmt.Errorf("worker %d call %s: %v", g, c, err)
						return
					}
					continue
				}
				vals, err := domain.Collect(resp.Stream)
				if err != nil && !domain.IsRetryable(err) {
					errs <- fmt.Errorf("worker %d drain %s: %v", g, c, err)
					return
				}
				// No interleaving may produce duplicate answers in one
				// response.
				seen := map[string]bool{}
				for _, v := range vals {
					k := v.Key()
					if seen[k] {
						errs <- fmt.Errorf("worker %d call %s: duplicate answer %s", g, c, k)
						return
					}
					seen[k] = true
				}
				// Concurrent DCSM estimates and breaker reads while others
				// write.
				if i%3 == 0 {
					db.Cost(domain.PatternOf(c))
					wrapper.Breaker().State(ctx.Clock.Now())
					wrapper.Metrics()
				}
				sharedClk.Sleep(time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The run must actually have exercised the interesting machinery.
	bm := wrapper.Breaker().Metrics()
	if bm.Trips == 0 {
		t.Errorf("breaker never tripped under 30%% failures: %+v", bm)
	}
	st := m.Stats()
	if st.StoredEntries == 0 || st.ExactHits+st.PartialHits == 0 {
		t.Errorf("cache not exercised: %+v", st)
	}
	if db.Storage().RawRecords == 0 {
		t.Error("no statistics recorded under concurrency")
	}
	if len(inj.Events()) == 0 {
		t.Error("no faults injected")
	}
}
