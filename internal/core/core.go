// Package core assembles the mediator system of the paper: the rule
// program, the source domains, the cache and invariant manager (CIM), the
// domain cost and statistics module (DCSM), the rule rewriter, the rule
// cost estimator, and the execution engine — wired together exactly as in
// the paper's Figure 1. It is the public API of this library: construct a
// System, register domains, load a mediator program (rules + invariants),
// and run queries; the optimizer rewrites each query into candidate plans,
// prices them against cached statistics, and executes the cheapest.
package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hermes/internal/admission"
	"hermes/internal/cim"
	"hermes/internal/dcsm"
	"hermes/internal/domain"
	"hermes/internal/engine"
	"hermes/internal/estimate"
	"hermes/internal/lang"
	"hermes/internal/memo"
	"hermes/internal/obs"
	"hermes/internal/resilience"
	"hermes/internal/rewrite"
	"hermes/internal/vclock"
)

// Options configure a System. The zero value gives a virtual clock, an
// enabled CIM with default costs, a statistics-cache DCSM, and
// paper-faithful rewriter/estimator/engine settings.
type Options struct {
	// Clock is the execution clock (nil: fresh virtual clock).
	Clock vclock.Clock
	// DisableCIM removes the cache and invariant manager entirely (the
	// paper's "no cache, no invariants" configuration).
	DisableCIM bool
	// CIM configures the cache and invariant manager.
	CIM *cim.Config
	// DCSM configures the statistics module.
	DCSM *dcsm.Config
	// Engine configures the run-time query processor.
	Engine *engine.Config
	// Rewrite configures plan enumeration. CIMDomains defaults to routing
	// every registered domain through the CIM when the CIM is enabled and
	// the field is nil.
	Rewrite *rewrite.Config
	// Estimate configures the rule cost estimator.
	Estimate *estimate.Config
	// Resilience, when set, wraps every registered domain in a resilient
	// call layer: per-call deadlines, bounded retry with deterministic
	// backoff, and a per-domain circuit breaker. Combined with the CIM's
	// FallbackOnUnavailable, a down source degrades to cached answers
	// instead of failing the query.
	Resilience *resilience.Policy
	// QueryDeadline, when nonzero, gives every query that much execution
	// clock from its start; past it, evaluation stops with
	// domain.ErrDeadlineExceeded. Retries and backoff respect the budget.
	QueryDeadline time.Duration
	// Obs, when set, threads an observer through every layer: the engine,
	// CIM, DCSM, resilience wrappers and remote clients all update its
	// metrics registry, and QueryTraced builds span trees in its tracer.
	// The engine's per-call cost estimates (EXPLAIN's est column) are wired
	// to the DCSM automatically unless Engine.EstimateCall is set.
	Obs *obs.Observer
	// Parallelism bounds how many operator branches one query may run
	// concurrently: parallel rule unions, prefetched independent source
	// calls. <= 0 defaults to runtime.GOMAXPROCS(0); 1 disables intra-query
	// parallelism (strictly sequential evaluation, byte-identical to the
	// pre-parallel engine). On a virtual clock parallel execution stays
	// deterministic (answers merge in virtual-time order); on a wall clock
	// union answers arrive in completion order.
	Parallelism int
	// MaxInflightCalls, when positive, bounds evaluation lanes — and hence
	// in-flight source calls — server-wide across every concurrent query
	// session, via a shared admission pool. Parallelism still caps each
	// query individually; the pool caps their sum, with weighted fair
	// sharing so no session can starve the others. 0 means unbounded
	// (no pool): each session gets a free-standing scheduler.
	MaxInflightCalls int
	// ShedPolicy selects what happens to a session arriving at a saturated
	// pool: admission.PolicyWait queues it FIFO (the default),
	// admission.PolicyShed rejects it immediately with a fast error
	// wrapping domain.ErrOverloaded. Ignored without MaxInflightCalls.
	ShedPolicy admission.Policy
	// AdmissionQueue bounds the PolicyWait queue; arrivals beyond it are
	// shed even under PolicyWait. 0 means unbounded.
	AdmissionQueue int
	// Memo, when set, enables the rule-level memo cache: intermediate IDB
	// relations are cached by (rule set, adornment, binding pattern) and
	// replayed instead of re-expanded, with benefit-driven admission and
	// eviction, and invalidation driven by the CIM (a contributing domain
	// call refreshed, evicted, or served degraded drops the relation).
	// Nil disables memoization. Use memo.DefaultConfig() for the defaults.
	// When memoization is on, plan costing prices subgoals whose memo
	// entry is currently resident at their replay cost, so α-equivalent
	// repeat queries pick orders that reuse warm entries.
	Memo *memo.Config
	// CalInflateQuantile, when > 0 (and an Observer is set), turns on
	// calibration-inflated plan costing: every call's estimated time is
	// multiplied by this quantile of the observed q-error distribution
	// for its (domain, function). Use a pessimistic quantile (0.9): the
	// inflated cost is then a worst-plausible-case cost, and minimizing
	// it picks robust plans exactly when the calibration grade is rough.
	// 0 keeps the calibration-blind costing of earlier releases.
	CalInflateQuantile float64
	// ColdStartInflation is the factor applied to calls whose function
	// has no q-error observations at all (only meaningful with
	// CalInflateQuantile > 0). Values <= 1 leave cold calls uninflated.
	// Functions with even one observation use their observed quantile
	// instead — see obs.Calibration.PlanGrade's cold/thin distinction.
	ColdStartInflation float64
	// ReplanFactor, when > 1, arms the engine's mid-query branch
	// watchdog: a parallel union lane whose elapsed cost exceeds
	// ReplanFactor times its estimate abandons its body order for a
	// cheaper one from the rewriter (bounded to one re-plan per query,
	// span-tagged replan=1).
	ReplanFactor float64
}

// System is a mediator instance.
type System struct {
	Registry *domain.Registry
	Program  *lang.Program
	CIM      *cim.Manager // nil when disabled
	Memo     *memo.Cache  // nil when rule-level memoization is off
	DCSM     *dcsm.DB
	Clock    vclock.Clock
	// Obs is the observer threaded through the layers (nil when the system
	// was built without one; all uses are nil-safe).
	Obs *obs.Observer
	// Admission is the server-wide lane pool bounding in-flight source
	// calls across all sessions (nil when the system was built without
	// Options.MaxInflightCalls; sessions then use free-standing
	// schedulers).
	Admission *admission.Pool

	engine        *engine.Engine
	rewriteCfg    rewrite.Config
	estimator     *estimate.Estimator
	cimAll        bool // route all domains through the CIM unless configured
	resilience    *resilience.Policy
	wrappers      map[string]*resilience.Wrapper
	queryDeadline time.Duration
	parallelism   int
}

// NewSystem builds a system from options.
func NewSystem(opts Options) *System {
	clk := opts.Clock
	if clk == nil {
		clk = vclock.NewVirtual(0)
	}
	s := &System{
		Registry:      domain.NewRegistry(),
		Program:       &lang.Program{},
		Clock:         clk,
		Obs:           opts.Obs,
		resilience:    opts.Resilience,
		wrappers:      map[string]*resilience.Wrapper{},
		queryDeadline: opts.QueryDeadline,
		parallelism:   opts.Parallelism,
	}
	// Normalize here, in one place, for every entry point (library callers,
	// hermesd flags, experiments): zero and negative both mean "default".
	// A raw negative used to slip through and yield a scheduler that could
	// never grant lanes while the docs promised GOMAXPROCS.
	if s.parallelism <= 0 {
		s.parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.MaxInflightCalls > 0 {
		s.Admission = admission.NewPool(admission.Config{
			MaxInflight: opts.MaxInflightCalls,
			Policy:      opts.ShedPolicy,
			MaxQueue:    opts.AdmissionQueue,
		})
		s.Admission.SetObserver(opts.Obs)
	}
	dcfg := dcsm.DefaultConfig()
	if opts.DCSM != nil {
		dcfg = *opts.DCSM
	}
	s.DCSM = dcsm.New(dcfg, clk.Now)
	s.DCSM.SetObserver(s.Obs)
	// Every completed source measurement feeds the DCSM; with an observer
	// installed it first grades the estimate the planner would have used
	// against the measured actual (the calibration tracker). Both routes —
	// direct engine calls and CIM cache misses — converge here, and
	// cache-served or single-flight-shared streams never produce a
	// measurement, so they cannot pollute the q-error distributions.
	observe := s.DCSM.Observe
	if s.Obs != nil {
		observe = func(m domain.Measurement) {
			s.calibrate(m)
			s.DCSM.Observe(m)
		}
	}

	if !opts.DisableCIM {
		ccfg := cim.DefaultConfig()
		if opts.CIM != nil {
			ccfg = *opts.CIM
		}
		s.CIM = cim.New(s.Registry, ccfg)
		s.CIM.SetMeasurementObserver(observe)
		s.CIM.SetObserver(s.Obs)
		if s.Obs != nil {
			// Price what each cache hit avoided (the savings ledger) with
			// the same DCSM estimate the planner would have used. Gated on
			// the observer like EstimateCall: the probe updates DCSM access
			// statistics, which AutoTune reads.
			s.CIM.SetCostModel(func(p domain.Pattern) (domain.CostVector, bool) {
				cv, err := s.DCSM.Cost(p)
				return cv, err == nil
			})
		}
	}

	ecfg := engine.DefaultConfig()
	if opts.Engine != nil {
		ecfg = *opts.Engine
	}
	if ecfg.Obs == nil {
		ecfg.Obs = s.Obs
	}
	if ecfg.EstimateCall == nil && s.Obs != nil {
		// Price each call as it is issued so EXPLAIN shows est vs actual.
		// Gated on the observer: the probe updates DCSM access statistics,
		// which AutoTune reads, so it only runs when someone is watching.
		ecfg.EstimateCall = func(c domain.Call, _ rewrite.Route) (domain.CostVector, bool) {
			cv, err := s.DCSM.Cost(domain.PatternOf(c))
			return cv, err == nil
		}
	}
	if ecfg.EstimateRule == nil && s.parallelism > 1 {
		// Rank a union predicate's rules cheapest-estimated-Tf-first before
		// launching them in parallel. Only wired when parallelism is on: the
		// estimate probes the DCSM (whose access statistics AutoTune reads),
		// and sequential runs never consult it.
		ecfg.EstimateRule = func(plan *rewrite.Plan, pr *rewrite.PlanRule, bound map[string]bool) (domain.CostVector, bool) {
			cv, err := s.estimator.RuleCost(plan, pr, bound)
			return cv, err == nil
		}
	}
	if opts.ReplanFactor > 1 {
		ecfg.ReplanFactor = opts.ReplanFactor
		if ecfg.Replan == nil {
			ecfg.Replan = s.replanRule
		}
	}
	s.engine = engine.New(s.Registry, s.CIM, ecfg, observe)

	if opts.Memo != nil {
		mc := memo.New(*opts.Memo)
		mc.SetObserver(s.Obs)
		if s.CIM != nil {
			// Memo hits share the CIM's savings ledger (the "(memo)"
			// bucket), and CIM invalidations — refresh, eviction, degraded
			// serve — drop the memo relations built from those answers.
			mc.SetSavingsHook(s.CIM.CreditMemo)
			s.CIM.SetOnInvalidate(mc.InvalidateInput)
		}
		s.engine.SetMemo(mc)
		s.Memo = mc
	}

	s.rewriteCfg = rewrite.Config{PushSelections: true}
	if opts.Rewrite != nil {
		s.rewriteCfg = *opts.Rewrite
	}
	if s.rewriteCfg.CIMDomains == nil {
		s.rewriteCfg.CIMDomains = map[string]bool{}
		s.cimAll = s.CIM != nil && opts.Rewrite == nil
	}
	if opts.Rewrite == nil && s.CIM != nil {
		// Default rewriter config: let routing enumeration (if ever
		// enabled) consult the invariant index so only calls an invariant
		// covers branch between direct and CIM routes. Callers supplying
		// their own Rewrite config keep full control of the plan space.
		s.rewriteCfg.InvariantCoverage = s.CIM.InvariantCoverage
	}

	escfg := estimate.DefaultConfig()
	if opts.Estimate != nil {
		escfg = *opts.Estimate
	}
	var cacheModel estimate.CacheModel
	if s.CIM != nil {
		cacheModel = s.CIM
	}
	s.estimator = estimate.New(s.DCSM, cacheModel, escfg)
	if s.Memo != nil {
		// Memo-aware costing: subgoals whose memo entry is resident are
		// priced at their replay cost, so repeat queries pick orders that
		// reuse warm entries (cache management and optimization together).
		s.estimator.SetMemo(s.Memo)
	}
	if opts.CalInflateQuantile > 0 && s.Obs != nil {
		s.estimator.SetCalibration(s.Obs.Calibration, opts.CalInflateQuantile, opts.ColdStartInflation)
	}
	return s
}

// replanRule is the engine watchdog's re-entry into the rewriter: given
// a plan rule whose actual cost blew past its estimate and the variables
// bound so far, enumerate the body's alternative permissible orders and
// return the cheapest different one by estimated all-answers time. The
// estimate runs against the *current* DCSM, calibration, and memo state,
// so what was cheapest at initial planning time need not win here.
func (s *System) replanRule(plan *rewrite.Plan, pr *rewrite.PlanRule, bound map[string]bool) (*rewrite.PlanRule, domain.CostVector, bool) {
	rw := rewrite.New(s.Program, s.rewriteCfg, s.Registry)
	var best *rewrite.PlanRule
	var bestCV domain.CostVector
	for _, alt := range rw.Reorder(pr, bound) {
		if sameOrder(alt.Order, pr.Order) {
			continue
		}
		cv, err := s.estimator.RuleCost(plan, alt, bound)
		if err != nil {
			continue
		}
		if best == nil || cv.TAll < bestCV.TAll {
			best, bestCV = alt, cv
		}
	}
	if best == nil {
		return nil, domain.CostVector{}, false
	}
	return best, bestCV, true
}

func sameOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Register adds a source domain to the federation. If the domain ships a
// native cost estimator it is connected to the DCSM. When the system was
// built without an explicit rewrite configuration and the CIM is enabled,
// the domain's calls are routed through the CIM. With a resilience policy
// configured, the domain is placed behind a resilient call wrapper.
func (s *System) Register(d domain.Domain) {
	if s.resilience != nil {
		w := resilience.Wrap(d, *s.resilience)
		s.wrappers[d.Name()] = w
		d = w
	}
	s.Registry.Register(d)
	if s.cimAll {
		s.rewriteCfg.CIMDomains[d.Name()] = true
	}
	// Estimators and observable layers may sit behind wrapper layers
	// (resilience, netsim): walk the unwrap chain, connecting every layer
	// that participates.
	type unwrapper interface{ Inner() domain.Domain }
	type observable interface{ SetObserver(*obs.Observer) }
	// actualsSink matches the remote client (without importing
	// internal/remote): a mounted peer that reports each served call's
	// [Tf,Ta,Card] actual back across the wire in its trace subtree.
	type actualsSink interface {
		SetActualsHook(func(domain.Call, obs.Cost))
	}
	foundEst := false
	for probe := d; probe != nil; {
		if est, ok := probe.(domain.Estimator); ok && !foundEst {
			s.DCSM.RegisterEstimator(d.Name(), est)
			foundEst = true
		}
		if o, ok := probe.(observable); ok && s.Obs != nil {
			o.SetObserver(s.Obs)
		}
		if a, ok := probe.(actualsSink); ok && s.Obs != nil {
			a.SetActualsHook(s.calibrateRemote)
		}
		u, ok := probe.(unwrapper)
		if !ok {
			break
		}
		probe = u.Inner()
	}
}

// Resilience returns the resilient wrapper interposed for a domain, when
// the system was built with a resilience policy (metrics, breaker state).
func (s *System) Resilience(dom string) (*resilience.Wrapper, bool) {
	w, ok := s.wrappers[dom]
	return w, ok
}

// RouteThroughCIM sets whether a domain's calls go through the CIM.
func (s *System) RouteThroughCIM(dom string, via bool) {
	if s.rewriteCfg.CIMDomains == nil {
		s.rewriteCfg.CIMDomains = map[string]bool{}
	}
	s.rewriteCfg.CIMDomains[dom] = via
}

// LoadProgram parses mediator source and adds its rules and invariants.
func (s *System) LoadProgram(src string) error {
	prog, err := lang.ParseProgram(src)
	if err != nil {
		return fmt.Errorf("core: parse program: %w", err)
	}
	s.Program.Rules = append(s.Program.Rules, prog.Rules...)
	for _, inv := range prog.Invariants {
		s.Program.Invariants = append(s.Program.Invariants, inv)
		if s.CIM != nil {
			if err := s.CIM.AddInvariant(inv); err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
	}
	return nil
}

// Ctx returns a fresh execution context over the system clock. A
// configured query deadline is armed relative to the current reading, and
// the context carries a fresh per-query scheduler bounding intra-query
// parallelism.
//
// Ctx bypasses the admission pool: its scheduler is free-standing, so
// calls made through it are not counted against MaxInflightCalls. It is
// the right entry point for sequential embedding (one query at a time,
// the pre-admission behaviour) and for maintenance traffic
// (WarmStatistics, PrimeCache) that must not be shed; concurrent serving
// paths should admit sessions with AdmitCtx instead.
func (s *System) Ctx() *domain.Ctx {
	ctx := domain.NewCtx(s.Clock)
	if s.queryDeadline > 0 {
		ctx.Deadline = s.Clock.Now() + s.queryDeadline
	}
	ctx.Sched = domain.NewSched(s.parallelism)
	return ctx
}

// AdmitCtx admits a query session of the given weight (≤ 0 means 1) into
// the server-wide admission pool and returns its execution context plus a
// release function that MUST be called when the session ends (it returns
// the session's lanes to the pool and folds its clock back into the
// system clock). The context runs on a fork of the system clock, so
// concurrent sessions accrue virtual time independently, and its
// scheduler leases every extra lane from the pool — Options.Parallelism
// still caps the session individually, the pool caps all sessions
// together.
//
// Saturation behaviour follows Options.ShedPolicy: under PolicyWait the
// call blocks until a lane frees (gc, when non-nil, can abandon the
// wait), with the wait charged to the session's clock in virtual time;
// under PolicyShed it fails fast with an error wrapping
// domain.ErrOverloaded — no source ever sees the request.
//
// Without a configured pool (Options.MaxInflightCalls == 0), AdmitCtx
// still forks the clock and arms the deadline but uses a free-standing
// scheduler and never fails.
func (s *System) AdmitCtx(gc context.Context, weight int) (*domain.Ctx, func(), error) {
	clk := s.Clock.Fork()
	ctx := domain.NewCtx(clk)
	ctx.Context = gc
	if s.queryDeadline > 0 {
		ctx.Deadline = clk.Now() + s.queryDeadline
	}
	if s.Admission == nil {
		ctx.Sched = domain.NewSched(s.parallelism)
		return ctx, func() { s.Clock.Join(clk) }, nil
	}
	var cancel <-chan struct{}
	if gc != nil {
		cancel = gc.Done()
	}
	lease, err := s.Admission.Admit(weight, clk.Now, cancel)
	if err != nil {
		if gc != nil && gc.Err() != nil {
			return nil, nil, gc.Err()
		}
		return nil, nil, err
	}
	// A queued session's lane freed at GrantedAt on another session's
	// clock: advance ours to it, so waiting for admission costs this
	// session virtual time exactly like waiting on a slow source.
	vclock.AdvanceTo(clk, lease.GrantedAt())
	ctx.Sched = domain.NewLeasedSched(s.parallelism, lease)
	release := func() {
		lease.Close()
		s.Clock.Join(clk)
	}
	return ctx, release, nil
}

// Plans parses a query and returns the rewriter's candidate plans.
func (s *System) Plans(query string) ([]*rewrite.Plan, error) {
	q, err := lang.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("core: parse query: %w", err)
	}
	return s.PlansFor(q)
}

// PlansFor returns the candidate plans of a parsed query.
func (s *System) PlansFor(q *lang.Query) ([]*rewrite.Plan, error) {
	rw := rewrite.New(s.Program, s.rewriteCfg, s.Registry)
	return rw.Plans(q)
}

// PlanCost prices a plan with the rule cost estimator.
func (s *System) PlanCost(p *rewrite.Plan) (domain.CostVector, error) {
	cv, _, err := s.estimator.PlanCost(p)
	return cv, err
}

// Optimize rewrites the query and returns the cheapest plan by estimated
// all-answers time (or first-answer time when interactive).
func (s *System) Optimize(query string, interactive bool) (*rewrite.Plan, domain.CostVector, error) {
	plans, err := s.Plans(query)
	if err != nil {
		return nil, domain.CostVector{}, err
	}
	best, cv, detail, err := s.estimator.BestDetail(plans, interactive)
	if err == nil && detail.Inflated+detail.ColdInflated > 0 {
		s.Obs.Counter("hermes_plan_inflation_applied_total").Inc()
	}
	return best, cv, err
}

// Execute runs a plan, returning a cursor over the answers.
func (s *System) Execute(p *rewrite.Plan) (*engine.Cursor, error) {
	return s.engine.ExecutePlan(s.Ctx(), p)
}

// ExecuteCtx runs a plan under a caller-supplied execution context, for
// per-query cancellation or deadlines differing from the system default.
func (s *System) ExecuteCtx(ctx *domain.Ctx, p *rewrite.Plan) (*engine.Cursor, error) {
	return s.engine.ExecutePlan(ctx, p)
}

// Query optimizes and executes in one step (all-answers ranking).
func (s *System) Query(query string) (*engine.Cursor, error) {
	plan, _, err := s.Optimize(query, false)
	if err != nil {
		return nil, err
	}
	return s.Execute(plan)
}

// QueryTraced optimizes and executes a query under a root trace span
// covering the whole pipeline: a rewrite child span (candidate plan
// count), a plan-choice child span (chosen index, plan, estimated cost),
// then one child span per domain call added by the engine. The span tree
// finalizes — and publishes to the tracer — when the cursor is drained or
// closed; render it with obs.Explain(cursor.Span().Snapshot()). Without a
// configured observer this is Query with per-plan estimation ranking.
func (s *System) QueryTraced(query string, interactive bool) (*engine.Cursor, error) {
	return s.QueryTracedCtx(s.Ctx(), query, interactive)
}

// QueryTracedCtx is QueryTraced under a caller-supplied execution context
// — typically one from AdmitCtx, so the whole optimize-and-execute
// pipeline runs on the admitted session's clock and scheduler. When the
// context's scheduler leases lanes from the admission pool, the root span
// is tagged with the session's admission wait.
func (s *System) QueryTracedCtx(ctx *domain.Ctx, query string, interactive bool) (*engine.Cursor, error) {
	root := s.Obs.StartQuery(strings.TrimSpace(query), ctx.Clock.Now())
	if lease, ok := ctx.Sched.Lease().(*admission.Lease); ok {
		root.SetTag("admission.wait_ms", vclock.Millis(lease.Waited()))
	}

	rw := root.Child("rewrite", ctx.Clock.Now())
	plans, err := s.Plans(query)
	if err != nil {
		rw.SetTag("error", err.Error())
		rw.End(ctx.Clock.Now())
		root.End(ctx.Clock.Now())
		return nil, err
	}
	rw.SetTag("plans", strconv.Itoa(len(plans)))
	rw.End(ctx.Clock.Now())

	pc := root.Child("plan-choice", ctx.Clock.Now())
	best, cv, detail, err := s.estimator.BestDetail(plans, interactive)
	if err != nil {
		pc.SetTag("error", err.Error())
		pc.End(ctx.Clock.Now())
		root.End(ctx.Clock.Now())
		return nil, err
	}
	for i, p := range plans {
		if p == best {
			pc.SetTag("chosen", strconv.Itoa(i+1))
		}
	}
	pc.SetTag("plan", planLine(best))
	pc.SetEstimate(obs.Cost{TFirst: cv.TFirst, TAll: cv.TAll, Card: cv.Card})
	if detail.Inflated+detail.ColdInflated > 0 {
		// The winning estimate carries q-error (or cold-start) inflation:
		// record the largest factor applied to any of its calls.
		pc.SetTag("cal.inflate", fmt.Sprintf("%.2f", detail.MaxInflation))
		s.Obs.Counter("hermes_plan_inflation_applied_total").Inc()
	}
	if detail.MemoHits > 0 {
		pc.SetTag("memo.est_hits", strconv.Itoa(detail.MemoHits))
	}
	if s.Obs != nil && s.Obs.Calibration != nil {
		// Was the winning plan ranked on trustworthy numbers? Grade the
		// cost-model calibration of every function the plan can call.
		grade, worst := s.Obs.Calibration.PlanGrade(planFunctions(best))
		pc.SetTag("calibration", grade)
		if grade != "cold" {
			pc.SetTag("calibration.qerr", fmt.Sprintf("%.2f", worst))
		}
	}
	pc.End(ctx.Clock.Now())

	return s.engine.ExecutePlan(ctx.WithSpan(root), best)
}

// calibrate grades the DCSM's estimate for a call against its measured
// actual, feeding the per-function q-error distributions. It runs just
// before the measurement enters the statistics database, so the estimate
// is exactly what the planner would have priced this call at. Incomplete
// measurements (streams closed early by pruning) carry no usable Ta or
// Card and are skipped, as are cold functions with nothing to grade.
func (s *System) calibrate(m domain.Measurement) {
	if !m.Complete {
		return
	}
	cv, err := s.DCSM.Cost(domain.PatternOf(m.Call))
	if err != nil {
		return
	}
	s.Obs.ObserveCalibration(m.Call.Domain, m.Call.Function,
		obs.Cost{TFirst: cv.TFirst, TAll: cv.TAll, Card: cv.Card},
		obs.Cost{TFirst: m.Cost.TFirst, TAll: m.Cost.TAll, Card: m.Cost.Card})
}

// calibrateRemote feeds a mounted peer's reported actual cost for one
// served call into the caller's calibration, graded against what this
// node's DCSM would have priced the call at. The engine's own measurement
// of the same call includes wire time; the peer's actual is the served
// subtree's compute alone, so together they bound the true cross-hop cost.
// Cold patterns (no estimate yet) are skipped — there is nothing to grade.
func (s *System) calibrateRemote(c domain.Call, actual obs.Cost) {
	cv, err := s.DCSM.Cost(domain.PatternOf(c))
	if err != nil {
		return
	}
	s.Obs.ObserveCalibration(c.Domain, c.Function,
		obs.Cost{TFirst: cv.TFirst, TAll: cv.TAll, Card: cv.Card}, actual)
}

// planFunctions collects the distinct (domain, function) pairs of every
// in() literal reachable in a plan, for calibration grading.
func planFunctions(p *rewrite.Plan) [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	addRule := func(pr *rewrite.PlanRule) {
		if pr == nil || pr.Rule == nil {
			return
		}
		for _, lit := range pr.Rule.Body {
			ic, ok := lit.(*lang.InCall)
			if !ok {
				continue
			}
			df := [2]string{ic.Call.Domain, ic.Call.Function}
			if !seen[df] {
				seen[df] = true
				out = append(out, df)
			}
		}
	}
	addRule(p.Query)
	for _, prs := range p.Rules {
		for _, pr := range prs {
			addRule(pr)
		}
	}
	return out
}

// planLine is a plan's one-line query rendering, used in plan-choice tags.
func planLine(p *rewrite.Plan) string {
	line := p.String()
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	return line
}

// QueryAll optimizes, executes and drains a query.
func (s *System) QueryAll(query string) ([]engine.Answer, engine.Metrics, error) {
	cur, err := s.Query(query)
	if err != nil {
		return nil, engine.Metrics{}, err
	}
	return engine.CollectAll(cur)
}

// WarmStatistics trains the DCSM by running a set of ground calls directly
// against the sources (outside any query), the way the paper's cost vector
// database accumulated ~20 instantiations per call before the Figure 6
// experiment.
func (s *System) WarmStatistics(calls []domain.Call) error {
	for _, c := range calls {
		ctx := s.Ctx()
		start := ctx.Clock.Now()
		inner, err := s.Registry.Call(ctx, c)
		if err != nil {
			return fmt.Errorf("core: warm %s: %w", c, err)
		}
		ms := domain.NewMeasuredStreamAt(inner, ctx.Clock, c, start, s.DCSM.Observe)
		if _, err := domain.Collect(ms); err != nil {
			return fmt.Errorf("core: warm %s: %w", c, err)
		}
	}
	return nil
}

// PrimeCache runs ground calls through the CIM so their results are
// cached, the way the paper primed its caches before the timed Figure 5
// runs. It is an error if the CIM is disabled.
func (s *System) PrimeCache(calls []domain.Call) error {
	if s.CIM == nil {
		return fmt.Errorf("core: PrimeCache: CIM is disabled")
	}
	for _, c := range calls {
		resp, err := s.CIM.CallThrough(s.Ctx(), c)
		if err != nil {
			return fmt.Errorf("core: prime %s: %w", c, err)
		}
		if _, err := domain.Collect(resp.Stream); err != nil {
			return fmt.Errorf("core: prime %s: %w", c, err)
		}
	}
	return nil
}

// Elapsed returns the current clock reading; convenient for reporting.
func (s *System) Elapsed() time.Duration { return s.Clock.Now() }

// SaveState persists the result cache and the statistics cache.
func (s *System) SaveState(cache, stats io.Writer) error {
	if s.CIM != nil && cache != nil {
		if err := s.CIM.Save(cache); err != nil {
			return err
		}
	}
	if stats != nil {
		return s.DCSM.Save(stats)
	}
	return nil
}

// LoadState restores the result cache and the statistics cache. Nil
// readers are skipped.
func (s *System) LoadState(cache, stats io.Reader) error {
	if s.CIM != nil && cache != nil {
		if err := s.CIM.Load(cache); err != nil {
			return err
		}
	}
	if stats != nil {
		return s.DCSM.Load(stats)
	}
	return nil
}

// AutoTuneStatistics applies the DCSM's access-pattern policy (§6.2.2):
// materialize summary tables for lookup shapes that repeatedly needed raw
// aggregation, drop tables that went unused.
func (s *System) AutoTuneStatistics(createThreshold, keepThreshold int) (created, dropped []string, err error) {
	return s.DCSM.AutoTune(createThreshold, keepThreshold)
}
