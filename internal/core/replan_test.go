package core

import (
	"sort"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/engine"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// claimedDomain wraps a scriptable domain with a fixed native cost model:
// the DCSM prefers native estimates over its statistics, so a wrong claim
// here misleads the optimizer no matter what the measurements say.
type claimedDomain struct {
	*domaintest.Domain
	claims map[string]domain.CostVector
}

func (d *claimedDomain) EstimateCost(p domain.Pattern) (domain.CostVector, []string, bool) {
	cv, ok := d.claims[p.Function]
	return cv, nil, ok
}

// replanDomain builds the watchdog scenario: ok() is honestly priced,
// lie() claims ~10ms but takes 2s, and oth()/oth2() serve the union's
// second, honestly-priced rule.
func replanDomain() *claimedDomain {
	vals := func(vs ...string) func([]term.Value) ([]term.Value, error) {
		out := make([]term.Value, len(vs))
		for i, v := range vs {
			out[i] = term.Str(v)
		}
		return func([]term.Value) ([]term.Value, error) { return out, nil }
	}
	d := domaintest.New("d")
	d.Define("lie", domaintest.Func{Arity: 0, PerCall: 2 * time.Second, PerAnswer: time.Millisecond, Fn: vals("l1", "l2")})
	d.Define("ok", domaintest.Func{Arity: 0, PerCall: 100 * time.Millisecond, PerAnswer: time.Millisecond, Fn: vals("o1", "o2")})
	d.Define("oth", domaintest.Func{Arity: 0, PerCall: 50 * time.Millisecond, PerAnswer: time.Millisecond, Fn: vals("t1")})
	d.Define("oth2", domaintest.Func{Arity: 0, PerCall: 50 * time.Millisecond, PerAnswer: time.Millisecond, Fn: vals("t2")})
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return &claimedDomain{Domain: d, claims: map[string]domain.CostVector{
		"lie":  {TFirst: ms(5), TAll: ms(10), Card: 2},
		"ok":   {TFirst: ms(50), TAll: ms(100), Card: 2},
		"oth":  {TFirst: ms(50), TAll: ms(50), Card: 1},
		"oth2": {TFirst: ms(50), TAll: ms(50), Card: 1},
	}}
}

const replanProgram = `
	u(X, Y) :- in(X, d:ok()) & in(Y, d:lie()).
	u(X, Y) :- in(X, d:oth()) & in(Y, d:oth2()).
`

// replanSystem wires the scenario at the given watchdog factor (0 = off).
// Parallelism 2 lets the union's two rules run as parallel lanes, which
// is where the watchdog lives.
func replanSystem(factor float64) (*System, *obs.Observer) {
	o := obs.NewObserver()
	sys := NewSystem(Options{Obs: o, DisableCIM: true, Parallelism: 2, ReplanFactor: factor})
	sys.Register(replanDomain())
	if err := sys.LoadProgram(replanProgram); err != nil {
		panic(err)
	}
	return sys, o
}

// runReplanQuery drains the union query and returns its sorted answer
// multiset plus the root span snapshot.
func runReplanQuery(t *testing.T, sys *System) ([]string, obs.SpanData) {
	t.Helper()
	cur, err := sys.QueryTraced("?- u(A, B).", false)
	if err != nil {
		t.Fatal(err)
	}
	answers, _, err := engine.CollectAll(cur)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(answers))
	for i, a := range answers {
		parts := make([]string, len(a.Vals))
		for j, v := range a.Vals {
			parts[j] = v.Key()
		}
		keys[i] = strings.Join(parts, "|")
	}
	sort.Strings(keys)
	return keys, cur.Span().Snapshot()
}

// findTag searches a span tree for a tag value.
func findTag(d obs.SpanData, key string) (string, bool) {
	if v, ok := d.Tags[key]; ok {
		return v, true
	}
	for _, c := range d.Children {
		if v, ok := findTag(c, key); ok {
			return v, true
		}
	}
	return "", false
}

// TestMidQueryReplan: the lying native estimator makes the optimizer
// believe the ok->lie order costs ~120ms when it actually takes seconds.
// With the watchdog armed, the losing lane must re-plan exactly once (the
// re-planned order blows its estimate too, but the query-wide budget is
// one), tag its span replan=1, and deliver exactly the answer multiset of
// a watchdog-free run. Everything runs on the virtual clock, so the
// behaviour is deterministic.
func TestMidQueryReplan(t *testing.T) {
	baseSys, baseObs := replanSystem(0)
	baseline, baseSnap := runReplanQuery(t, baseSys)
	if n := baseObs.Counter("hermes_plan_replans_total").Value(); n != 0 {
		t.Fatalf("watchdog-free run re-planned %d times", n)
	}
	if _, ok := findTag(baseSnap, "replan"); ok {
		t.Fatal("watchdog-free run tagged a replan span")
	}
	if len(baseline) != 5 {
		t.Fatalf("baseline answers = %d, want 5 (%v)", len(baseline), baseline)
	}

	sys, o := replanSystem(3)
	got, snap := runReplanQuery(t, sys)
	if n := o.Counter("hermes_plan_replans_total").Value(); n != 1 {
		t.Errorf("hermes_plan_replans_total = %d, want exactly 1", n)
	}
	if v, ok := findTag(snap, "replan"); !ok || v != "1" {
		t.Errorf("replan tag = %q (found %v), want \"1\"", v, ok)
	}
	if len(got) != len(baseline) {
		t.Fatalf("answers = %d, want %d", len(got), len(baseline))
	}
	for i := range got {
		if got[i] != baseline[i] {
			t.Fatalf("answer multiset diverged at %d: %q vs %q\nreplan: %v\nbase:   %v",
				i, got[i], baseline[i], got, baseline)
		}
	}
}
