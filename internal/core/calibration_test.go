package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/engine"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// sumSavedTags walks a span tree adding up every cim.saved_ms tag.
func sumSavedTags(d obs.SpanData, t *testing.T) float64 {
	t.Helper()
	total := 0.0
	if v, ok := d.Tags["cim.saved_ms"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bad cim.saved_ms tag %q: %v", v, err)
		}
		total += f
	}
	for _, c := range d.Children {
		total += sumSavedTags(c, t)
	}
	return total
}

// TestSavingsLedgerMatchesSpans is the acceptance check for the savings
// ledger: over a workload with exact and equality-invariant hits, the
// per-invariant saved-ms totals must sum to the span-level avoided cost
// tagged on the traces.
func TestSavingsLedgerMatchesSpans(t *testing.T) {
	o := obs.NewObserver()
	d := domaintest.New("d")
	answers := func([]term.Value) ([]term.Value, error) {
		return []term.Value{term.Str("a"), term.Str("b")}, nil
	}
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 120 * time.Millisecond, PerAnswer: time.Millisecond, Fn: answers})
	d.Define("g", domaintest.Func{Arity: 1, PerCall: 80 * time.Millisecond, PerAnswer: time.Millisecond, Fn: answers})
	sys := NewSystem(Options{Obs: o})
	sys.Register(d)
	if err := sys.LoadProgram(`
vf(X) :- in(X, d:f(1)).
vg(X) :- in(X, d:g(1)).
true => d:f(A) = d:g(A).
`); err != nil {
		t.Fatal(err)
	}

	for _, q := range []string{
		"?- vf(X).", // miss: fills the cache and the DCSM
		"?- vf(X).", // exact hit: DCSM-priced savings
		"?- vg(X).", // equality-invariant hit off f's entry
		"?- vg(X).", // exact hit (g cached by now? no — equality serves, nothing stored) or another invariant hit
	} {
		cur, err := sys.QueryTraced(q, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.CollectAll(cur); err != nil {
			t.Fatal(err)
		}
	}

	led := sys.CIM.Ledger()
	if led.Total <= 0 {
		t.Fatal("no savings recorded")
	}
	var invSum time.Duration
	for _, r := range led.Invariants {
		invSum += r.Saved
	}
	if invSum != led.Total {
		t.Fatalf("per-invariant sums %v != ledger total %v", invSum, led.Total)
	}

	spanSum := 0.0
	for _, root := range o.Tracer.Recent() {
		spanSum += sumSavedTags(root, t)
	}
	ledMS := float64(led.Total) / float64(time.Millisecond)
	if math.Abs(spanSum-ledMS) > 1.0 {
		t.Errorf("span-level saved %.2fms, ledger total %.2fms", spanSum, ledMS)
	}

	// The equality invariant must appear as its own attribution row.
	invKey := "true => d:f(A) = d:g(A)."
	found := false
	for _, r := range led.Invariants {
		if r.Key == invKey && r.Hits >= 1 && r.Saved > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no credited row for %q: %+v", invKey, led.Invariants)
	}
	if v := o.Metrics.Counter("hermes_cim_saved_ms_total").Value(); v <= 0 {
		t.Errorf("hermes_cim_saved_ms_total = %d", v)
	}
	if v := o.Metrics.Counter("hermes_cim_invariant_hits_total", "invariant", invKey).Value(); v < 1 {
		t.Errorf("hermes_cim_invariant_hits_total = %d", v)
	}
}

// TestPlanChoiceCalibrationTag: the plan-choice span reports whether the
// chosen plan was ranked on trustworthy cost numbers — "cold" before the
// DCSM has evidence, "trusted" once repeated direct calls show the
// estimates track the measurements.
func TestPlanChoiceCalibrationTag(t *testing.T) {
	o := obs.NewObserver()
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 10 * time.Millisecond, PerAnswer: time.Millisecond,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Str("a"), term.Str("b")}, nil
		}})
	// CIM disabled so every run issues a real measured source call.
	sys := NewSystem(Options{Obs: o, DisableCIM: true, Parallelism: 1})
	sys.Register(d)
	if err := sys.LoadProgram(`v(X) :- in(X, d:f(1)).`); err != nil {
		t.Fatal(err)
	}

	planTag := func() string {
		t.Helper()
		cur, err := sys.QueryTraced("?- v(X).", false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.CollectAll(cur); err != nil {
			t.Fatal(err)
		}
		snap := cur.Span().Snapshot()
		for _, c := range snap.Children {
			if c.Name == "plan-choice" {
				return c.Tags["calibration"]
			}
		}
		t.Fatalf("no plan-choice span in %+v", snap)
		return ""
	}

	if tag := planTag(); tag != "cold" {
		t.Errorf("first run calibration = %q, want cold", tag)
	}
	// Runs 2..4 carry estimates and feed three calibration points.
	for i := 0; i < 3; i++ {
		planTag()
	}
	if tag := planTag(); tag != "trusted" {
		rows := o.Calibration.Summary()
		t.Errorf("warm calibration = %q, want trusted (rows %+v)", tag, rows)
	}
}

// downableDomain fails every call with a wrapped domain.ErrUnavailable
// while down, mimicking what the resilience layer reports for a dead
// source.
type downableDomain struct {
	domain.Domain
	down bool
}

func (d *downableDomain) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	if d.down {
		return nil, fmt.Errorf("retries exhausted: %w", domain.ErrUnavailable)
	}
	return d.Domain.Call(ctx, fn, args)
}

// TestExplainDegradedPartialIntegration drives a real degraded partial
// serve end to end and checks EXPLAIN renders the serving decision:
// cim=partial with the matched invariant, and degraded=true once the
// completing source call fails.
func TestExplainDegradedPartialIntegration(t *testing.T) {
	o := obs.NewObserver()
	d := domaintest.New("src")
	d.Define("range", domaintest.Func{Arity: 2, PerCall: 20 * time.Millisecond, PerAnswer: time.Millisecond,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Str("x"), term.Str("y")}, nil
		}})
	src := &downableDomain{Domain: d}
	sys := NewSystem(Options{Obs: o})
	sys.Register(src)
	if err := sys.LoadProgram(`
r(F, L, X) :- in(X, src:range(F, L)).
F1 <= G1 & G2 <= F2 => src:range(F1, F2) >= src:range(G1, G2).
`); err != nil {
		t.Fatal(err)
	}

	run := func(q string) string {
		t.Helper()
		cur, err := sys.QueryTraced(q, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.CollectAll(cur); err != nil {
			t.Fatal(err)
		}
		return obs.Explain(cur.Span().Snapshot())
	}

	run("?- r(10, 20, X).") // prime the narrow range
	src.down = true
	text := run("?- r(0, 90, X).") // partial hit, completion fails, degrades

	for _, want := range []string{
		"cim=partial",
		"invariant=F1 <= G1 & G2 <= F2 => src:range(F1, F2) >= src:range(G1, G2).",
		"serving=src:range(10, 20)",
		"degraded=true",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, text)
		}
	}
	// A degraded partial serve earns hit credit but no savings.
	if led := sys.CIM.Ledger(); led.Total != 0 || len(led.Invariants) == 0 {
		t.Errorf("ledger after degraded partial = %+v", led)
	}
}
