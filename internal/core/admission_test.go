package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"hermes/internal/admission"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/engine"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// admissionProgram is a 4-way union: one query tries to take up to three
// extra lanes, so concurrent sessions contend for the pool.
const admissionProgram = `
	u(S) :- in(S, src:get('a')).
	u(S) :- in(S, src:get('b')).
	u(S) :- in(S, src:get('c')).
	u(S) :- in(S, src:get('d')).
`

// admissionSource builds the metered test source: get/1 returns one
// answer per call after 100ms of simulated latency.
func admissionSource() (*domaintest.Domain, *domaintest.Meter) {
	d := domaintest.New("src")
	d.Define("get", domaintest.Func{Arity: 1, PerCall: 100 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return []term.Value{args[0]}, nil
		}})
	return d, domaintest.Metered(d)
}

// TestParallelismNormalized is the regression test for -parallelism 0 and
// negative values: both must normalize to GOMAXPROCS in core.NewSystem,
// never reach domain.NewSched raw (a raw 0 yields a scheduler that can
// never grant a lane while the docs promise GOMAXPROCS).
func TestParallelismNormalized(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	for _, p := range []int{0, -1, -100} {
		sys := NewSystem(Options{Parallelism: p})
		if got := sys.Ctx().Sched.Limit(); got != want {
			t.Errorf("Parallelism %d: scheduler limit = %d, want GOMAXPROCS (%d)", p, got, want)
		}
	}
	sys := NewSystem(Options{Parallelism: 3})
	if got := sys.Ctx().Sched.Limit(); got != 3 {
		t.Errorf("explicit Parallelism 3: limit = %d", got)
	}
}

// TestAdmitCtxWithoutPool: a system built without MaxInflightCalls admits
// every session on a free-standing scheduler and never fails.
func TestAdmitCtxWithoutPool(t *testing.T) {
	sys := NewSystem(Options{Parallelism: 2, QueryDeadline: time.Minute})
	ctx, release, err := sys.AdmitCtx(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Sched.Limit() != 2 || ctx.Sched.Lease() != nil {
		t.Fatalf("unmanaged session: limit=%d lease=%v", ctx.Sched.Limit(), ctx.Sched.Lease())
	}
	if ctx.Deadline != time.Minute {
		t.Fatalf("deadline = %s", ctx.Deadline)
	}
	ctx.Clock.Sleep(7 * time.Second)
	release()
	if sys.Clock.Now() != 7*time.Second {
		t.Fatalf("release did not join session clock: system at %s", sys.Clock.Now())
	}
}

// TestAdmissionBoundsConcurrentSessions is the acceptance test: 8
// concurrent sessions against a pool of 4 lanes. The metered source must
// never see more than 4 concurrent calls, every session must complete
// with the full answer set (no starvation), and the pool must drain back
// to zero occupancy.
func TestAdmissionBoundsConcurrentSessions(t *testing.T) {
	const (
		sessions = 8
		maxLanes = 4
	)
	_, meter := admissionSource()
	o := obs.NewObserver()
	sys := NewSystem(Options{
		DisableCIM:       true,
		Parallelism:      4,
		MaxInflightCalls: maxLanes,
		Obs:              o,
	})
	sys.Register(meter)
	if err := sys.LoadProgram(admissionProgram); err != nil {
		t.Fatal(err)
	}
	plans, err := sys.Plans("?- u(S).")
	if err != nil || len(plans) == 0 {
		t.Fatalf("plans: %v, %v", plans, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, release, err := sys.AdmitCtx(context.Background(), 1)
			if err != nil {
				errs <- fmt.Errorf("session %d: admit: %w", i, err)
				return
			}
			defer release()
			cur, err := sys.ExecuteCtx(ctx, plans[0])
			if err != nil {
				errs <- fmt.Errorf("session %d: execute: %w", i, err)
				return
			}
			answers, _, err := engine.CollectAll(cur)
			if err != nil {
				errs <- fmt.Errorf("session %d: collect: %w", i, err)
				return
			}
			if len(answers) != 4 {
				errs <- fmt.Errorf("session %d starved: %d answers, want 4", i, len(answers))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := meter.Peak(); got > maxLanes {
		t.Errorf("source observed %d concurrent calls, bound is %d", got, maxLanes)
	}
	if got := meter.Total(); got != sessions*4 {
		t.Errorf("source saw %d calls, want %d", got, sessions*4)
	}
	st := sys.Admission.Stats()
	if st.Peak > maxLanes {
		t.Errorf("pool peak %d exceeds capacity %d", st.Peak, maxLanes)
	}
	if st.Occupancy != 0 || st.Waiting != 0 {
		t.Errorf("pool not drained: %+v", st)
	}
	if st.Shed != 0 {
		t.Errorf("wait policy shed %d sessions", st.Shed)
	}
	if got := o.Gauge("hermes_admission_inflight_lanes").Value(); got != 0 {
		t.Errorf("inflight gauge = %v after drain", got)
	}
	if got := o.Gauge("hermes_admission_peak_lanes").Value(); got > maxLanes {
		t.Errorf("peak gauge %v exceeds capacity", got)
	}
}

// TestAdmissionShedFailsFast: under PolicyShed a session arriving at a
// saturated pool fails with ErrOverloaded before any source call and
// without consuming any virtual time — it must not time out at a source.
func TestAdmissionShedFailsFast(t *testing.T) {
	_, meter := admissionSource()
	sys := NewSystem(Options{
		DisableCIM:       true,
		Parallelism:      2,
		MaxInflightCalls: 1,
		ShedPolicy:       admission.PolicyShed,
	})
	sys.Register(meter)

	_, release, err := sys.AdmitCtx(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	callsBefore := meter.Total()
	before := sys.Clock.Now()
	if _, _, err := sys.AdmitCtx(context.Background(), 1); !domain.IsOverloaded(err) {
		t.Fatalf("second admit: err = %v, want ErrOverloaded", err)
	}
	if meter.Total() != callsBefore {
		t.Error("shed session reached the source")
	}
	if sys.Clock.Now() != before {
		t.Errorf("shed consumed %s of virtual time", sys.Clock.Now()-before)
	}
	if st := sys.Admission.Stats(); st.Shed != 1 {
		t.Errorf("stats = %+v, want Shed=1", st)
	}
	release()
	ctx, release2, err := sys.AdmitCtx(context.Background(), 1)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if ctx.Sched.Lease() == nil {
		t.Error("admitted session has no pool lease")
	}
	release2()
}

// TestAdmitCtxWaitChargesVirtualTime: a session queued under PolicyWait
// is granted its lane at the virtual-clock reading where the lane
// actually freed, so waiting for admission costs virtual time exactly
// like waiting on a slow source.
func TestAdmitCtxWaitChargesVirtualTime(t *testing.T) {
	sys := NewSystem(Options{
		DisableCIM:       true,
		Parallelism:      1,
		MaxInflightCalls: 1,
	})
	ctxA, releaseA, err := sys.AdmitCtx(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		now  time.Duration
		wait time.Duration
	}
	done := make(chan res, 1)
	go func() {
		ctxB, releaseB, err := sys.AdmitCtx(context.Background(), 1)
		if err != nil {
			panic(err)
		}
		defer releaseB()
		lease := ctxB.Sched.Lease().(*admission.Lease)
		done <- res{now: ctxB.Clock.Now(), wait: lease.Waited()}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sys.Admission.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("session B never queued")
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Session A runs for 250ms of virtual time, then finishes.
	ctxA.Clock.Sleep(250 * time.Millisecond)
	releaseA()

	r := <-done
	if r.now < 250*time.Millisecond {
		t.Errorf("session B clock = %s after waiting, want >= 250ms", r.now)
	}
	if r.wait < 250*time.Millisecond {
		t.Errorf("session B recorded wait = %s, want >= 250ms", r.wait)
	}
}

// TestAdmitCtxAbandonedByCancellation: cancelling the Go context while
// queued unblocks AdmitCtx with the context's error and the pool stays
// consistent.
func TestAdmitCtxAbandonedByCancellation(t *testing.T) {
	sys := NewSystem(Options{
		DisableCIM:       true,
		Parallelism:      1,
		MaxInflightCalls: 1,
	})
	_, releaseA, err := sys.AdmitCtx(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	gc, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := sys.AdmitCtx(gc, 1)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sys.Admission.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("session never queued")
		}
		time.Sleep(200 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("abandoned admit: err = %v, want context.Canceled", err)
	}
	releaseA()
	if st := sys.Admission.Stats(); st.Occupancy != 0 || st.Waiting != 0 {
		t.Fatalf("pool inconsistent after abandoned wait: %+v", st)
	}
}
