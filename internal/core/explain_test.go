package core

import (
	"strings"
	"testing"
	"time"

	"hermes/internal/domain/domaintest"
	"hermes/internal/engine"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// TestQueryTracedExplain runs the full traced pipeline twice and checks
// the rendered EXPLAIN tree: root query span, rewrite and plan-choice
// children, and a call span that reports cim=exact with both estimated
// and actual cost vectors on the warm run.
func TestQueryTracedExplain(t *testing.T) {
	o := obs.NewObserver()
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 10 * time.Millisecond, PerAnswer: time.Millisecond,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Str("a"), term.Str("b")}, nil
		}})
	sys := NewSystem(Options{Obs: o})
	sys.Register(d)
	if err := sys.LoadProgram(`v(X) :- in(X, d:f(1)).`); err != nil {
		t.Fatal(err)
	}

	run := func() *engine.Cursor {
		t.Helper()
		cur, err := sys.QueryTraced("?- v(X).", false)
		if err != nil {
			t.Fatal(err)
		}
		answers, _, err := engine.CollectAll(cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) != 2 {
			t.Fatalf("answers = %d, want 2", len(answers))
		}
		return cur
	}
	run()        // cold: miss, measured into the DCSM
	cur := run() // warm: cache-exact, estimate now available

	text := obs.Explain(cur.Span().Snapshot())
	for _, want := range []string{
		"?- v(X).",    // root span named after the query
		"rewrite",     // rewriter child
		"plan-choice", // optimizer child
		"call d:f(1)", // per-subgoal call span
		"cim=exact",   // CIM serving outcome on the warm run
		"est=[",       // DCSM estimate attached to the call
		"actual=[",    // measured [Tf, Ta, Card]
		"complete=true",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}

	if started, finished := o.Tracer.Counts(); started != 2 || finished != 2 {
		t.Errorf("tracer counts = %d started, %d finished, want 2/2", started, finished)
	}
	if v := o.Counter("hermes_cim_lookups_total", "outcome", "exact").Value(); v != 1 {
		t.Errorf("exact-hit counter = %d, want 1", v)
	}
	if v := o.Counter("hermes_cim_lookups_total", "outcome", "miss").Value(); v != 1 {
		t.Errorf("miss counter = %d, want 1", v)
	}
	if v := o.Counter("hermes_queries_total").Value(); v != 2 {
		t.Errorf("query counter = %d, want 2", v)
	}
}
