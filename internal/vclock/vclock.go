// Package vclock provides the clock abstraction used by every timed
// component of the mediator: the execution engine, the network simulation,
// the cache and invariant manager, and the statistics module.
//
// Experiments in the paper measure wall-clock times of calls to sources
// distributed across the Internet. This reproduction replaces the live
// Internet with a deterministic simulation; simulated latencies advance a
// virtual clock instead of blocking a real one, so a "48 second" query to a
// site in Italy costs nothing real. A wall-clock implementation is provided
// for runs against genuinely remote (TCP) sources.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the time source threaded through the engine and the domains.
//
// Sleep advances the clock by d: a virtual clock increments a counter, a
// wall clock really sleeps. Fork creates an independent child clock starting
// at the current reading, used to model concurrent activities (for example
// the CIM answering from cache while the actual source call proceeds in
// parallel); Join folds the child readings back by taking the maximum.
type Clock interface {
	// Now returns the current reading.
	Now() time.Duration
	// Sleep advances the clock by d. Negative d is a no-op.
	Sleep(d time.Duration)
	// Fork returns a child clock whose reading starts at Now().
	Fork() Clock
	// Join advances this clock to the largest reading among itself and the
	// given clocks. Joining a clock that is not a child of this one is
	// allowed; only the readings matter.
	Join(children ...Clock)
}

// Virtual is a deterministic simulated clock. The zero value reads 0 and is
// ready to use. Virtual is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtual returns a virtual clock reading start.
func NewVirtual(start time.Duration) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current virtual reading.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the virtual clock by d without blocking.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now += d
	v.mu.Unlock()
}

// Fork returns a new virtual clock starting at the current reading.
func (v *Virtual) Fork() Clock {
	return NewVirtual(v.Now())
}

// Join advances the clock to the maximum reading among itself and children.
func (v *Virtual) Join(children ...Clock) {
	max := v.Now()
	for _, c := range children {
		if n := c.Now(); n > max {
			max = n
		}
	}
	v.mu.Lock()
	if max > v.now {
		v.now = max
	}
	v.mu.Unlock()
}

// Wall is a real-time clock: Sleep blocks, Now reports elapsed time since
// the clock (or its root ancestor) was created.
type Wall struct {
	start time.Time
}

// NewWall returns a wall clock whose reading starts at zero now.
func NewWall() *Wall {
	return &Wall{start: time.Now()}
}

// Now returns the elapsed real time since the clock was created.
func (w *Wall) Now() time.Duration { return time.Since(w.start) }

// Sleep blocks for d.
func (w *Wall) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Fork returns a clock sharing this clock's epoch: concurrent activities
// measured against real time naturally overlap, so the child is the same
// epoch and Join is a no-op beyond reading time.
func (w *Wall) Fork() Clock { return &Wall{start: w.start} }

// Join is a no-op for wall clocks; real time already advanced.
func (w *Wall) Join(children ...Clock) {}

// RealTime marks Wall clocks: their readings track real elapsed time, so
// arrival order across goroutines is already meaningful and deterministic
// merges are unnecessary. See IsReal.
func (w *Wall) RealTime() bool { return true }

// IsReal reports whether a clock's readings track real elapsed time (a
// Wall clock or a wrapper exposing RealTime). Virtual clocks are
// deterministic: parallel operators merge their branches by simulated
// timestamp so runs stay reproducible; real-time clocks merge by arrival.
func IsReal(c Clock) bool {
	r, ok := c.(interface{ RealTime() bool })
	return ok && r.RealTime()
}

// AdvanceTo advances c to the absolute reading t, sleeping the difference.
// It is a no-op when c already reads t or later. Parallel consumers use it
// to account for waiting on a branch whose (forked) clock is ahead.
func AdvanceTo(c Clock, t time.Duration) {
	if d := t - c.Now(); d > 0 {
		c.Sleep(d)
	}
}

// Stopwatch measures an interval on any Clock.
type Stopwatch struct {
	clock Clock
	start time.Duration
}

// StartStopwatch begins measuring on c.
func StartStopwatch(c Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Millis formats a duration the way the paper reports times: integral
// milliseconds.
func Millis(d time.Duration) string {
	return fmt.Sprintf("%d", d.Milliseconds())
}
