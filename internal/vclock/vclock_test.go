package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualBasics(t *testing.T) {
	v := NewVirtual(0)
	if v.Now() != 0 {
		t.Errorf("initial = %v", v.Now())
	}
	v.Sleep(100 * time.Millisecond)
	if v.Now() != 100*time.Millisecond {
		t.Errorf("after sleep = %v", v.Now())
	}
	v.Sleep(-5 * time.Millisecond)
	if v.Now() != 100*time.Millisecond {
		t.Errorf("negative sleep advanced the clock: %v", v.Now())
	}
}

func TestVirtualZeroValueUsable(t *testing.T) {
	var v Virtual
	v.Sleep(time.Second)
	if v.Now() != time.Second {
		t.Errorf("zero-value clock = %v", v.Now())
	}
}

func TestForkAndJoin(t *testing.T) {
	v := NewVirtual(10 * time.Millisecond)
	f := v.Fork()
	if f.Now() != 10*time.Millisecond {
		t.Errorf("fork start = %v", f.Now())
	}
	// Parent and child advance independently.
	v.Sleep(5 * time.Millisecond)
	f.Sleep(100 * time.Millisecond)
	if v.Now() != 15*time.Millisecond {
		t.Errorf("parent = %v", v.Now())
	}
	v.Join(f)
	if v.Now() != 110*time.Millisecond {
		t.Errorf("after join = %v, want max(15, 110)ms", v.Now())
	}
	// Joining a slower child must not rewind.
	s := v.Fork()
	v.Sleep(50 * time.Millisecond)
	v.Join(s)
	if v.Now() != 160*time.Millisecond {
		t.Errorf("join rewound the clock: %v", v.Now())
	}
}

func TestJoinMultiple(t *testing.T) {
	v := NewVirtual(0)
	a, b, c := v.Fork(), v.Fork(), v.Fork()
	a.Sleep(10 * time.Millisecond)
	b.Sleep(30 * time.Millisecond)
	c.Sleep(20 * time.Millisecond)
	v.Join(a, b, c)
	if v.Now() != 30*time.Millisecond {
		t.Errorf("join = %v, want 30ms", v.Now())
	}
}

func TestVirtualConcurrency(t *testing.T) {
	v := NewVirtual(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Sleep(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if v.Now() != 8*1000*time.Microsecond {
		t.Errorf("concurrent sleeps = %v, want 8ms", v.Now())
	}
}

func TestWallClock(t *testing.T) {
	w := NewWall()
	before := w.Now()
	w.Sleep(2 * time.Millisecond)
	after := w.Now()
	if after-before < 2*time.Millisecond {
		t.Errorf("wall sleep too short: %v", after-before)
	}
	f := w.Fork()
	if f.Now() < after {
		t.Errorf("wall fork shares epoch; Now = %v < %v", f.Now(), after)
	}
	w.Join(f) // must be a no-op, not panic
}

func TestStopwatch(t *testing.T) {
	v := NewVirtual(time.Second)
	sw := StartStopwatch(v)
	v.Sleep(250 * time.Millisecond)
	if sw.Elapsed() != 250*time.Millisecond {
		t.Errorf("elapsed = %v", sw.Elapsed())
	}
}

func TestMillis(t *testing.T) {
	if s := Millis(2581 * time.Millisecond); s != "2581" {
		t.Errorf("Millis = %q", s)
	}
}

// Property: sleeps accumulate additively.
func TestSleepAdditive(t *testing.T) {
	f := func(a, b uint16) bool {
		v := NewVirtual(0)
		v.Sleep(time.Duration(a))
		v.Sleep(time.Duration(b))
		return v.Now() == time.Duration(a)+time.Duration(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Join is idempotent and monotone.
func TestJoinMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		v := NewVirtual(time.Duration(a))
		c := NewVirtual(time.Duration(b))
		v.Join(c)
		first := v.Now()
		v.Join(c)
		return v.Now() == first && first >= time.Duration(a) && first >= time.Duration(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
