// Package estimate implements the rule cost estimator of the paper (§7):
// it associates a cost vector [Tf, Ta, Card] with every plan produced by
// the rule rewriter, combining per-call estimates obtained from the DCSM
// under the pipelined nested-loops execution model with no duplicate
// elimination:
//
//	Ta(body)   = Σ_i  Ta_i · Π_{j<i} Card_j
//	Tf(body)   = Σ_i  Tf_i
//	Card(body) = Π_i  Card_i
//
// Plan-time-known constants propagate through head unification (the
// pattern d1:p_bf(a)); values bound only at run time become $b. Calls
// routed through the CIM are costed against the cache's current contents
// (exact/equality hits cost a cache serve; partial hits overlap the actual
// call; misses add the lookup overhead).
package estimate

import (
	"fmt"
	"time"

	"hermes/internal/cim"
	"hermes/internal/dcsm"
	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/memo"
	"hermes/internal/rewrite"
	"hermes/internal/term"
)

// maxDepth bounds recursive predicate costing.
const maxDepth = 32

// CacheModel exposes the CIM state the estimator needs; implemented by
// *cim.Manager.
type CacheModel interface {
	// Probe reports, without side effects, how the CIM would serve a ground
	// call right now and how many answers the cache would contribute.
	Probe(c domain.Call) (cim.Source, int)
	// CostModel returns the CIM's serve-cost parameters.
	CostModel() cim.CostModel
}

// Calibration exposes the observed q-error distribution the estimator
// inflates by; implemented by *obs.Calibration. n == 0 means the
// (domain, function) has never been observed.
type Calibration interface {
	QErrQuantile(dom, fn string, q float64) (qerr float64, n int64)
}

// MemoModel exposes the memo-cache state the estimator needs to price a
// subgoal at its replay cost; implemented by *memo.Cache.
type MemoModel interface {
	// EstimateServe reports whether the key is currently serveable and how
	// many tuples a replay would emit, without perturbing cache stats.
	EstimateServe(key string) (tuples int, ok bool)
	// LookupCost / PerTupleCost are the clock costs the engine charges on
	// the serve path.
	LookupCost() time.Duration
	PerTupleCost() time.Duration
}

// Config tunes the estimator.
type Config struct {
	// DefaultCost is assumed for calls with no statistics and no native
	// estimator, so that planning can proceed on cold systems; Err from
	// PlanCost reports how many literals fell back to it.
	DefaultCost domain.CostVector
	// ComparisonSelectivity scales cardinality per filtering comparison.
	// The paper's estimator uses 1 (comparisons are ignored); values < 1
	// are an extension.
	ComparisonSelectivity float64
}

// DefaultConfig matches the paper's estimator.
func DefaultConfig() Config {
	return Config{
		DefaultCost:           domain.CostVector{TFirst: 500 * time.Millisecond, TAll: 2 * time.Second, Card: 10},
		ComparisonSelectivity: 1,
	}
}

// Estimator costs plans.
type Estimator struct {
	db    *dcsm.DB
	cache CacheModel // nil when no CIM is deployed
	cfg   Config

	// cal, when set, turns on calibration-inflated costing: every call's
	// time components are multiplied by the calQuantile q-error observed
	// for its (domain, function), or by coldInflate when the function has
	// never been observed. Because the inflation quantile is pessimistic
	// (p90, not the median), the inflated cost *is* a worst-plausible-case
	// cost — so ranking plans by minimum inflated cost is exactly the
	// robust (minimize worst case) plan choice the rough grade calls for.
	cal         Calibration
	calQuantile float64
	coldInflate float64
	// memo, when set, prices subgoals whose memo key is currently
	// resident at their replay cost instead of their source cost, so
	// α-equivalent repeat queries pick orders that reuse warm entries.
	memo MemoModel
}

// New builds an estimator over the DCSM. cache may be nil.
func New(db *dcsm.DB, cache CacheModel, cfg Config) *Estimator {
	if cfg.ComparisonSelectivity <= 0 {
		cfg.ComparisonSelectivity = 1
	}
	return &Estimator{db: db, cache: cache, cfg: cfg}
}

// SetCalibration enables calibration-inflated costing. quantile selects
// the q-error quantile read per (domain, function) — pessimistic values
// (0.9) make the ranking robust rather than optimistic. coldInflate is
// the factor applied to functions with no observations at all; values
// <= 1 disable cold-start inflation. A nil cal turns inflation off.
func (e *Estimator) SetCalibration(cal Calibration, quantile, coldInflate float64) {
	if quantile <= 0 || quantile >= 1 {
		quantile = 0.9
	}
	e.cal, e.calQuantile, e.coldInflate = cal, quantile, coldInflate
}

// SetMemo enables memo-residency-aware costing.
func (e *Estimator) SetMemo(m MemoModel) { e.memo = m }

// CostDetail reports how a plan's estimate was put together, beyond the
// cost vector itself.
type CostDetail struct {
	// Defaulted counts literals with no statistics that used
	// Config.DefaultCost.
	Defaulted int
	// Inflated counts calls whose cost was inflated by an observed
	// q-error factor > 1; ColdInflated counts calls that took the
	// cold-start factor instead.
	Inflated     int
	ColdInflated int
	// MaxInflation is the largest factor applied to any single call (1
	// when nothing was inflated).
	MaxInflation float64
	// MemoHits counts subgoals priced at their memo replay cost.
	MemoHits int
}

// PlanCost estimates the cost vector of executing a plan in all-answers
// mode. defaulted reports how many literals had no statistics and used
// Config.DefaultCost.
func (e *Estimator) PlanCost(p *rewrite.Plan) (cv domain.CostVector, defaulted int, err error) {
	cv, d, err := e.PlanCostDetail(p)
	return cv, d.Defaulted, err
}

// PlanCostDetail is PlanCost plus the full accounting of inflation and
// memo-residency adjustments.
func (e *Estimator) PlanCostDetail(p *rewrite.Plan) (cv domain.CostVector, d CostDetail, err error) {
	st := &costState{est: e, plan: p, maxInflation: 1}
	cv, err = st.costPlanRule(p.Query, term.Subst{}, map[string]bool{}, 0)
	return cv, st.detail(), err
}

// RuleCost estimates the cost vector of one plan rule body given the set
// of head variables bound at call time. The engine's parallel union uses
// it to launch the alternatives of a union predicate
// cheapest-estimated-Tf-first, so the earliest expected first answer is
// also the earliest launched.
func (e *Estimator) RuleCost(p *rewrite.Plan, pr *rewrite.PlanRule, bound map[string]bool) (domain.CostVector, error) {
	st := &costState{est: e, plan: p, maxInflation: 1}
	if bound == nil {
		bound = map[string]bool{}
	}
	return st.costPlanRule(pr, term.Subst{}, bound, 0)
}

// Best ranks plans by estimated all-answers time and returns the winner
// with its cost. byFirstAnswer ranks by time-to-first-answer instead
// (interactive mode).
func (e *Estimator) Best(plans []*rewrite.Plan, byFirstAnswer bool) (*rewrite.Plan, domain.CostVector, error) {
	p, cv, _, err := e.BestDetail(plans, byFirstAnswer)
	return p, cv, err
}

// BestDetail is Best plus the winner's CostDetail. When calibration
// inflation is enabled the ranking minimizes the *inflated* cost, i.e.
// the worst-plausible-case cost under the observed q-error tail, which
// makes the choice robust exactly when the numbers are rough.
func (e *Estimator) BestDetail(plans []*rewrite.Plan, byFirstAnswer bool) (*rewrite.Plan, domain.CostVector, CostDetail, error) {
	if len(plans) == 0 {
		return nil, domain.CostVector{}, CostDetail{}, fmt.Errorf("estimate: no plans to rank")
	}
	var best *rewrite.Plan
	var bestCV domain.CostVector
	var bestD CostDetail
	for _, p := range plans {
		cv, d, err := e.PlanCostDetail(p)
		if err != nil {
			return nil, domain.CostVector{}, CostDetail{}, err
		}
		better := best == nil
		if !better {
			if byFirstAnswer {
				better = cv.TFirst < bestCV.TFirst
			} else {
				better = cv.TAll < bestCV.TAll
			}
		}
		if better {
			best, bestCV, bestD = p, cv, d
		}
	}
	return best, bestCV, bestD, nil
}

// costState threads plan context and fallback accounting.
type costState struct {
	est          *Estimator
	plan         *rewrite.Plan
	defaulted    int
	inflated     int
	coldInflated int
	maxInflation float64
	memoHits     int
}

func (st *costState) detail() CostDetail {
	return CostDetail{
		Defaulted:    st.defaulted,
		Inflated:     st.inflated,
		ColdInflated: st.coldInflated,
		MaxInflation: st.maxInflation,
		MemoHits:     st.memoHits,
	}
}

// inflate scales a call's time components by the observed pessimistic
// q-error for its function, or by the cold-start factor when the
// function has never been observed. Cardinality is left alone: the Ta
// q-error already folds cardinality misestimates into time, and scaling
// Card would double-count them through the nested-loop multiplier.
func (st *costState) inflate(cv domain.CostVector, dom, fn string) domain.CostVector {
	e := st.est
	if e.cal == nil {
		return cv
	}
	q, n := e.cal.QErrQuantile(dom, fn, e.calQuantile)
	factor := 1.0
	switch {
	case n == 0:
		if e.coldInflate > 1 {
			factor = e.coldInflate
			st.coldInflated++
		}
	case q > 1:
		factor = q
		st.inflated++
	}
	if factor == 1 {
		return cv
	}
	if factor > st.maxInflation {
		st.maxInflation = factor
	}
	cv.TFirst = time.Duration(float64(cv.TFirst) * factor)
	cv.TAll = time.Duration(float64(cv.TAll) * factor)
	return cv
}

// costPlanRule costs one plan rule body under the plan-time-known constant
// substitution and runtime-bound variable set of its head.
func (st *costState) costPlanRule(pr *rewrite.PlanRule, known term.Subst, bound map[string]bool, depth int) (domain.CostVector, error) {
	if depth > maxDepth {
		return domain.CostVector{}, fmt.Errorf("estimate: recursion deeper than %d while costing %s", maxDepth, pr.Rule.Head.Pred)
	}
	known = known.Clone()
	bound = cloneBound(bound)
	total := domain.CostVector{Card: 1}
	mult := 1.0 // Π Card_j over already-costed literals
	for i, bi := range pr.Order {
		lit := pr.Rule.Body[bi]
		var cv domain.CostVector
		var err error
		switch l := lit.(type) {
		case *lang.InCall:
			cv, err = st.costInCall(l, pr.RouteInOrder(i), known, bound)
			if err != nil {
				return domain.CostVector{}, err
			}
			if l.Out.IsVar() && !bound[l.Out.Var] {
				bound[l.Out.Var] = true
			} else if cv.Card > 1 {
				// Membership test: at most one continuation per probe.
				cv.Card = 1
			}
		case *lang.Atom:
			cv, err = st.costAtom(l, known, bound, depth)
			if err != nil {
				return domain.CostVector{}, err
			}
			for _, t := range l.Args {
				if t.IsVar() && !bound[t.Var] {
					bound[t.Var] = true
				}
			}
		case *lang.Comparison:
			cv = domain.CostVector{Card: 1}
			if l.Op == term.OpEQ {
				st.propagateEquality(l, known, bound)
			}
			if isFilter(l, bound) {
				cv.Card = st.est.cfg.ComparisonSelectivity
			}
		}
		total.TFirst += cv.TFirst
		total.TAll += time.Duration(mult * float64(cv.TAll))
		mult *= cv.Card
		if mult < 0 {
			mult = 0
		}
	}
	total.Card = mult
	return total, nil
}

func cloneBound(b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(b))
	for k, v := range b {
		if v {
			out[k] = true
		}
	}
	return out
}

// propagateEquality records X = const (either orientation) as a plan-time
// known binding.
func (st *costState) propagateEquality(c *lang.Comparison, known term.Subst, bound map[string]bool) {
	bindIfConst := func(v, other term.Term) {
		if !v.IsVar() || bound[v.Var] {
			return
		}
		if other.IsConst() {
			known[v.Var] = other.Const
		} else if other.Var != "" && len(other.Path) == 0 {
			if val, ok := known[other.Var]; ok {
				known[v.Var] = val
			}
		}
		bound[v.Var] = true
	}
	bindIfConst(c.Left, c.Right)
	bindIfConst(c.Right, c.Left)
}

// isFilter reports whether a comparison filters already-bound values
// rather than producing a binding.
func isFilter(c *lang.Comparison, bound map[string]bool) bool {
	groundOrKnown := func(t term.Term) bool {
		return t.IsConst() || bound[t.Var]
	}
	if c.Op != term.OpEQ {
		return true
	}
	return groundOrKnown(c.Left) && groundOrKnown(c.Right)
}

// callPattern converts an in() call template into a DCSM pattern: constant
// terms and plan-time-known variables become constants, runtime-bound
// variables become $b.
func callPattern(ct *lang.CallTemplate, known term.Subst) domain.Pattern {
	args := make([]domain.PatternArg, len(ct.Args))
	for i, t := range ct.Args {
		switch {
		case t.IsConst():
			args[i] = domain.Const(t.Const)
		case len(t.Path) == 0:
			if v, ok := known[t.Var]; ok {
				args[i] = domain.Const(v)
			} else {
				args[i] = domain.Bound
			}
		default:
			// A path selection from a known record could be resolved, but
			// the conservative choice is $b.
			if v, err := known.Eval(t); err == nil {
				args[i] = domain.Const(v)
			} else {
				args[i] = domain.Bound
			}
		}
	}
	return domain.Pattern{Domain: ct.Domain, Function: ct.Function, Args: args}
}

// costInCall estimates one in() literal via the DCSM, adjusting for CIM
// routing.
func (st *costState) costInCall(l *lang.InCall, route rewrite.Route, known term.Subst, bound map[string]bool) (domain.CostVector, error) {
	p := callPattern(&l.Call, known)
	actual, err := st.est.db.Cost(p)
	if err != nil {
		// No statistics: assume the default cost. (For CIM-routed calls a
		// cache probe below may still refine hits to their serve cost.)
		actual = st.est.cfg.DefaultCost
		st.defaulted++
	}
	// Calibration inflation applies to the source-call cost only: a CIM
	// exact/equality hit below replaces it with a serve cost, which is a
	// local replay whose price the estimator knows exactly.
	actual = st.inflate(actual, l.Call.Domain, l.Call.Function)
	if route != rewrite.RouteCIM || st.est.cache == nil {
		return actual, nil
	}
	cm := st.est.cache.CostModel()
	// The CIM decision is only precise for fully-known patterns; otherwise
	// assume a miss and charge the lookup overhead.
	call, ground := groundCall(p)
	if !ground {
		actual.TFirst += cm.Lookup
		actual.TAll += cm.Lookup
		return actual, nil
	}
	src, n := st.est.cache.Probe(call)
	serve := func(k int) domain.CostVector {
		return domain.CostVector{
			TFirst: cm.Lookup + cm.PerAnswer,
			TAll:   cm.Lookup + time.Duration(k)*cm.PerAnswer,
			Card:   float64(k),
		}
	}
	switch src {
	case cim.SourceCacheExact, cim.SourceCacheEquality:
		return serve(n), nil
	case cim.SourceCachePartial:
		cached := serve(n)
		ta := cached.TAll + time.Duration(actual.Card)*cm.DedupProbe
		if actual.TAll > ta {
			ta = actual.TAll // parallel actual call dominates
		}
		return domain.CostVector{TFirst: cached.TFirst, TAll: ta, Card: actual.Card}, nil
	default: // miss
		actual.TFirst += cm.Lookup
		actual.TAll += cm.Lookup
		return actual, nil
	}
}

// groundCall converts a fully-known pattern to a ground call.
func groundCall(p domain.Pattern) (domain.Call, bool) {
	args := make([]term.Value, len(p.Args))
	for i, a := range p.Args {
		if !a.Known {
			return domain.Call{}, false
		}
		args[i] = a.Val
	}
	return domain.Call{Domain: p.Domain, Function: p.Function, Args: args}, true
}

// costAtom costs an IDB predicate occurrence: the plan's rules for its
// (pred, adornment) are costed recursively and combined by summing times
// and cardinalities (§7 step 2); the first answer comes from the first
// rule.
func (st *costState) costAtom(a *lang.Atom, known term.Subst, bound map[string]bool, depth int) (domain.CostVector, error) {
	adorn := adornmentOf(a, bound, known)
	key := rewrite.PredKey{Pred: a.Pred, Adorn: adorn}
	rules, ok := st.plan.Rules[key]
	if !ok || len(rules) == 0 {
		return domain.CostVector{}, fmt.Errorf("estimate: plan has no rules for %s", key)
	}
	if cv, hit := st.memoServeCost(a, adorn, known, bound); hit {
		st.memoHits++
		return cv, nil
	}
	var total domain.CostVector
	for ri, pr := range rules {
		subKnown, subBound := headBindings(a, pr.Rule, known, bound)
		cv, err := st.costPlanRule(pr, subKnown, subBound, depth+1)
		if err != nil {
			return domain.CostVector{}, err
		}
		if ri == 0 {
			total.TFirst = cv.TFirst
		}
		total.TAll += cv.TAll
		total.Card += cv.Card
	}
	return total, nil
}

// memoServeCost prices an IDB subgoal occurrence at its memo replay cost
// when its memo key is currently resident. The key is the plan-time
// mirror of the engine's runtime key: constants and plan-time-known
// variables become bound positions, free variables stay free (the
// engine's α-renaming makes the names irrelevant). A position that is
// runtime-bound but whose value is not known at plan time makes the
// runtime key unknowable, so the subgoal is conservatively priced at
// source cost; likewise attribute-path arguments, which the engine
// refuses to memoize.
func (st *costState) memoServeCost(a *lang.Atom, adorn rewrite.Adornment, known term.Subst, bound map[string]bool) (domain.CostVector, bool) {
	m := st.est.memo
	if m == nil {
		return domain.CostVector{}, false
	}
	args := make([]memo.KeyArg, len(a.Args))
	for i, t := range a.Args {
		switch {
		case t.IsConst():
			args[i] = memo.KeyArg{Bound: true, ValueKey: t.Const.Key()}
		case len(t.Path) > 0:
			return domain.CostVector{}, false
		default:
			if v, ok := known[t.Var]; ok {
				args[i] = memo.KeyArg{Bound: true, ValueKey: v.Key()}
			} else if bound[t.Var] {
				return domain.CostVector{}, false
			} else {
				args[i] = memo.KeyArg{Var: t.Var}
			}
		}
	}
	key := memo.KeyOf(st.plan.Fingerprint(), a.Pred, string(adorn), args)
	n, ok := m.EstimateServe(key)
	if !ok {
		return domain.CostVector{}, false
	}
	lookup, per := m.LookupCost(), m.PerTupleCost()
	return domain.CostVector{
		TFirst: lookup + per,
		TAll:   lookup + time.Duration(n)*per,
		Card:   float64(n),
	}, true
}

// adornmentOf computes an atom's adornment: bound where the argument is a
// constant or a bound variable.
func adornmentOf(a *lang.Atom, bound map[string]bool, known term.Subst) rewrite.Adornment {
	b := make([]byte, len(a.Args))
	for i, t := range a.Args {
		if t.IsConst() || bound[t.Var] {
			b[i] = 'b'
		} else {
			b[i] = 'f'
		}
	}
	_ = known
	return rewrite.Adornment(b)
}

// headBindings unifies an atom occurrence with a rule head at plan time:
// constants (literal or known) flow into head variables; runtime-bound
// arguments mark head variables bound.
func headBindings(a *lang.Atom, r *lang.Rule, known term.Subst, bound map[string]bool) (term.Subst, map[string]bool) {
	subKnown := term.Subst{}
	subBound := map[string]bool{}
	for i, arg := range a.Args {
		if i >= len(r.Head.Args) {
			break
		}
		h := r.Head.Args[i]
		if !h.IsVar() {
			continue
		}
		switch {
		case arg.IsConst():
			subKnown[h.Var] = arg.Const
			subBound[h.Var] = true
		case arg.Var != "" && bound[arg.Var]:
			if v, ok := known[arg.Var]; ok && len(arg.Path) == 0 {
				subKnown[h.Var] = v
			}
			subBound[h.Var] = true
		}
	}
	return subKnown, subBound
}
