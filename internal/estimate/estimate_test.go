package estimate

import (
	"testing"
	"time"

	"hermes/internal/cim"
	"hermes/internal/dcsm"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

const m1Source = `
	access_equivalent('p', 2).
	access_equivalent('q', 2).
	m(A, C) :- p(A, B), q(B, C).
	p(A, B) :- in(B, d1:p_bf(A)).
	p(A, B) :- in($x, d1:p_bb(A, B)).
	q(B, C) :- in($ans, d2:q_ff()), =($ans.1, B), =($ans.2, C).
	q(B, C) :- in(C, d2:q_bf(B)).
`

func obs(db *dcsm.DB, dom, fn string, args []term.Value, tfMs, taMs int, card float64) {
	db.Observe(domain.Measurement{
		Call: domain.Call{Domain: dom, Function: fn, Args: args},
		Cost: domain.CostVector{
			TFirst: time.Duration(tfMs) * time.Millisecond,
			TAll:   time.Duration(taMs) * time.Millisecond,
			Card:   card,
		},
		Complete: true,
	})
}

// loadStats loads statistics matching the paper's §7 example quantities:
//
//	Ta(d1:p_bf(a)) = 2100ms, Card = 2
//	Ta(d2:q_bf($b)) = 950ms
//	Ta(d2:q_ff())  = 3050ms, Card = 3
//	Ta(d1:p_bb(a,$b)) = 510ms
func loadStats(db *dcsm.DB) {
	obs(db, "d1", "p_bf", []term.Value{term.Str("a")}, 300, 2000, 2)
	obs(db, "d1", "p_bf", []term.Value{term.Str("a")}, 320, 2200, 2)
	obs(db, "d2", "q_bf", []term.Value{term.Str("b1")}, 200, 900, 2)
	obs(db, "d2", "q_bf", []term.Value{term.Str("b2")}, 220, 1000, 1)
	obs(db, "d2", "q_ff", nil, 500, 3000, 3)
	obs(db, "d2", "q_ff", nil, 520, 3100, 3)
	obs(db, "d1", "p_bb", []term.Value{term.Str("a"), term.Str("b1")}, 150, 500, 1)
	obs(db, "d1", "p_bb", []term.Value{term.Str("a"), term.Str("b2")}, 160, 520, 1)
}

func plansFor(t *testing.T, src, query string) []*rewrite.Plan {
	t.Helper()
	prog, err := lang.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := lang.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	rw := rewrite.New(prog, rewrite.Config{}, nil)
	plans, err := rw.Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

// findPlan returns the plan containing all the given substrings.
func findPlan(t *testing.T, plans []*rewrite.Plan, subs ...string) *rewrite.Plan {
	t.Helper()
	for _, p := range plans {
		s := p.String()
		ok := true
		for _, sub := range subs {
			if !containsStr(s, sub) {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	t.Fatalf("no plan matches %v among %d plans", subs, len(plans))
	return nil
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPaperSection7Formulas checks the paper's formulas (1) and (2)
// numerically.
//
// (P8):  Ta = Ta(p_bf(a)) + Card(p_bf(a)) · Ta(q_bf($b))
//
//	= 2100 + 2·950 = 4000 ms
//
// (P12): Ta = Ta(q_ff()) + Card(q_ff()) · Ta(p_bb(a,$b))
//
//	= 3050 + 3·510 = 4580 ms
func TestPaperSection7Formulas(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	loadStats(db)
	est := New(db, nil, DefaultConfig())
	plans := plansFor(t, m1Source, "?- m('a', C).")

	p8 := findPlan(t, plans, "d1:p_bf(A)", "d2:q_bf(B)")
	cv8, defaulted, err := est.PlanCost(p8)
	if err != nil {
		t.Fatal(err)
	}
	if defaulted != 0 {
		t.Errorf("P8 used %d default costs", defaulted)
	}
	if cv8.TAll != 4000*time.Millisecond {
		t.Errorf("Ta(P8) = %v, want 4000ms", cv8.TAll)
	}
	// Tf(P8) = Tf(p_bf(a)) + Tf(q_bf($b)) = 310 + 210 = 520ms.
	if cv8.TFirst != 520*time.Millisecond {
		t.Errorf("Tf(P8) = %v, want 520ms", cv8.TFirst)
	}
	// Card(P8) = 2 · 1.5 = 3.
	if cv8.Card != 3 {
		t.Errorf("Card(P8) = %v, want 3", cv8.Card)
	}

	p12 := findPlan(t, plans, "d2:q_ff()", "d1:p_bb(A, B)")
	cv12, _, err := est.PlanCost(p12)
	if err != nil {
		t.Fatal(err)
	}
	if cv12.TAll != 4580*time.Millisecond {
		t.Errorf("Ta(P12) = %v, want 4580ms", cv12.TAll)
	}
	// The estimator must rank P8 over P12 for all-answers.
	best, bestCV, err := est.Best(plans, false)
	if err != nil {
		t.Fatal(err)
	}
	if bestCV.TAll > cv8.TAll {
		t.Errorf("best plan cost %v exceeds P8's %v:\n%s", bestCV.TAll, cv8.TAll, best)
	}
}

func TestMembershipCallCardClamped(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	// p_enum('a') enumerates 7 answers, but when its output variable is
	// already bound the literal is a membership test contributing at most
	// one continuation per probe.
	obs(db, "d1", "p_enum", []term.Value{term.Str("a")}, 100, 500, 7)
	obs(db, "d2", "q_ff", nil, 500, 3000, 3)
	est := New(db, nil, DefaultConfig())
	plans := plansFor(t, `
		m(C) :- q(B, C), p(B).
		p(B) :- in(B, d1:p_enum('a')).
		q(B, C) :- in($ans, d2:q_ff()), =($ans.1, B), =($ans.2, C).
	`, "?- m(C).")
	p := findPlan(t, plans, "q(B, C) & p(B)")
	cv, _, err := est.PlanCost(p)
	if err != nil {
		t.Fatal(err)
	}
	// Card must be bounded by q_ff's 3, not multiplied by 7.
	if cv.Card > 3 {
		t.Errorf("Card = %v; membership call multiplicity not clamped", cv.Card)
	}
	// Ta = Ta(q_ff) + 3·Ta(p_enum) = 3000 + 3·500 = 4500ms.
	if cv.TAll != 4500*time.Millisecond {
		t.Errorf("Ta = %v, want 4500ms", cv.TAll)
	}
}

func TestDefaultCostCountsFallbacks(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	est := New(db, nil, DefaultConfig())
	plans := plansFor(t, `v(X) :- in(X, d:f()).`, "?- v(X).")
	_, defaulted, err := est.PlanCost(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if defaulted != 1 {
		t.Errorf("defaulted = %d, want 1", defaulted)
	}
}

func TestCIMAwareCostingExactHit(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 5 * time.Second,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Str("a"), term.Str("b")}, nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	ccfg := cim.DefaultConfig()
	mgr := cim.New(reg, ccfg)
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "f", []term.Value{term.Int(1)}, 5000, 5000, 2)
	est := New(db, mgr, DefaultConfig())

	prog, _ := lang.ParseProgram(`v(X) :- in(X, d:f(1)).`)
	q, _ := lang.ParseQuery("?- v(X).")
	rw := rewrite.New(prog, rewrite.Config{CIMDomains: map[string]bool{"d": true}}, nil)
	plans, err := rw.Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	// Cold cache: CIM-routed estimate ≈ actual + lookup.
	cvCold, _, err := est.PlanCost(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cvCold.TAll < 5*time.Second {
		t.Errorf("cold CIM estimate = %v, want ≥ 5s", cvCold.TAll)
	}
	// Warm the cache.
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	resp, err := mgr.CallThrough(ctx, domain.Call{Domain: "d", Function: "f", Args: []term.Value{term.Int(1)}})
	if err != nil {
		t.Fatal(err)
	}
	domain.Collect(resp.Stream)
	cvWarm, _, err := est.PlanCost(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cvWarm.TAll >= time.Second {
		t.Errorf("warm CIM estimate = %v, want cache-serve cost", cvWarm.TAll)
	}
	if cvWarm.Card != 2 {
		t.Errorf("warm Card = %v, want cached cardinality 2", cvWarm.Card)
	}
}

func TestBestByFirstAnswer(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	// fastfirst: slow overall, quick first answer. fastall: the reverse.
	obs(db, "d", "fastfirst", nil, 10, 10000, 5)
	obs(db, "d", "fastall", nil, 3000, 3000, 5)
	est := New(db, nil, DefaultConfig())
	plans := plansFor(t, `
		access_equivalent('v', 1).
		v(X) :- in(X, d:fastfirst()).
		v(X) :- in(X, d:fastall()).
	`, "?- v(X).")
	bestAll, cvAll, err := est.Best(plans, false)
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(bestAll.String(), "fastall") {
		t.Errorf("all-answers mode picked %s (cost %v)", bestAll, cvAll)
	}
	bestFirst, cvFirst, err := est.Best(plans, true)
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(bestFirst.String(), "fastfirst") {
		t.Errorf("interactive mode picked %s (cost %v)", bestFirst, cvFirst)
	}
}

func TestComparisonSelectivityExtension(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "f", nil, 100, 1000, 10)
	obs(db, "d", "g", nil, 100, 1000, 1)
	cfg := DefaultConfig()
	cfg.ComparisonSelectivity = 0.5
	est := New(db, nil, cfg)
	plans := plansFor(t, `
		v(X, Y) :- in(X, d:f()), X != 'z', in(Y, d:g()).
	`, "?- v(X, Y).")
	// Find the ordering where the filter sits between f and g.
	p := findPlan(t, plans, "in(X, d:f()) & X != 'z' & in(Y, d:g())")
	cv, _, err := est.PlanCost(p)
	if err != nil {
		t.Fatal(err)
	}
	// Ta = 1000 + 10·0.5·1000 = 6000ms with selectivity 0.5.
	if cv.TAll != 6000*time.Millisecond {
		t.Errorf("Ta = %v, want 6000ms", cv.TAll)
	}
	if cv.Card != 5 {
		t.Errorf("Card = %v, want 5", cv.Card)
	}
}

func TestEmptyPlanListError(t *testing.T) {
	est := New(dcsm.New(dcsm.DefaultConfig(), nil), nil, DefaultConfig())
	if _, _, err := est.Best(nil, false); err == nil {
		t.Error("Best(nil) should error")
	}
}
