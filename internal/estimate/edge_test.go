package estimate

import (
	"strings"
	"testing"
	"time"

	"hermes/internal/cim"
	"hermes/internal/dcsm"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/rewrite"
	"hermes/internal/term"
)

// TestCIMRoutedNonGroundPatternAddsLookup: for a call whose arguments are
// only known to be bound, the CIM decision cannot be probed; the estimate
// is the actual cost plus the cache lookup overhead.
func TestCIMRoutedNonGroundPatternAddsLookup(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func([]term.Value) ([]term.Value, error) { return nil, nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	ccfg := cim.DefaultConfig()
	ccfg.LookupCost = 100 * time.Millisecond
	mgr := cim.New(reg, ccfg)
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "f", []term.Value{term.Int(1)}, 500, 500, 1)
	est := New(db, mgr, DefaultConfig())

	plans := plansForWithCfg(t, `
		v(X, Y) :- in(X, d:gen()), in(Y, d:f(X)).
		w(Y) :- in(Y, d:gen()).
	`, "?- v(X, Y).", rewrite.Config{CIMDomains: map[string]bool{"d": true}})
	obs(db, "d", "gen", nil, 100, 100, 1)
	p := findPlan(t, plans, "d:gen()", "d:f(X)")
	cv, _, err := est.PlanCost(p)
	if err != nil {
		t.Fatal(err)
	}
	// gen: ground (probe says miss) -> 100 + lookup 100; f($b): non-ground
	// -> 500 + lookup 100. Total Ta = 200 + 1·600 = 800ms.
	if cv.TAll != 800*time.Millisecond {
		t.Errorf("Ta = %v, want 800ms", cv.TAll)
	}
}

func plansForWithCfg(t *testing.T, src, query string, cfg rewrite.Config) []*rewrite.Plan {
	t.Helper()
	prog, err := lang.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := lang.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := rewrite.New(prog, cfg, nil).Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

// TestRecursiveCostingDepthError: costing a self-referencing plan reports
// the depth guard instead of hanging.
func TestRecursiveCostingDepthError(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "edge", []term.Value{term.Str("a")}, 10, 10, 1)
	est := New(db, nil, DefaultConfig())
	plans := plansFor(t, `
		walk(X, Y) :- in(Y, d:edge(X)).
		walk(X, Y) :- walk(X, Z), in(Y, d:edge(Z)).
	`, "?- walk('a', Y).")
	var recursive *rewrite.Plan
	for _, p := range plans {
		if len(p.Rules[rewrite.PredKey{Pred: "walk", Adorn: "bf"}]) == 2 {
			recursive = p
			break
		}
	}
	if recursive == nil {
		t.Skip("no self-referencing plan generated")
	}
	_, _, err := est.PlanCost(recursive)
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("err = %v, want recursion depth error", err)
	}
}

// TestPlanMissingAdornmentError: costing an atom whose (pred, adornment)
// the plan lacks is a clear error.
func TestPlanMissingAdornmentError(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	est := New(db, nil, DefaultConfig())
	plans := plansFor(t, `v(X) :- in(X, d:f()).`, "?- v(X).")
	p := plans[0]
	// Sabotage: remove the rules.
	for k := range p.Rules {
		delete(p.Rules, k)
	}
	if _, _, err := est.PlanCost(p); err == nil {
		t.Error("missing adornment should error")
	}
}

// TestFirstAnswerFromFirstRule: an atom's Tf comes from its first rule.
func TestFirstAnswerFromFirstRule(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "fast", nil, 10, 100, 1)
	obs(db, "d", "slow", nil, 5000, 9000, 1)
	est := New(db, nil, DefaultConfig())
	plans := plansFor(t, `
		v(X) :- in(X, d:fast()).
		v(X) :- in(X, d:slow()).
	`, "?- v(X).")
	cv, _, err := est.PlanCost(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cv.TFirst != 10*time.Millisecond {
		t.Errorf("Tf = %v, want first rule's 10ms", cv.TFirst)
	}
	// Ta and Card sum over the union's rules.
	if cv.TAll != 9100*time.Millisecond || cv.Card != 2 {
		t.Errorf("Ta=%v Card=%v", cv.TAll, cv.Card)
	}
}
