package estimate

import (
	"testing"
	"time"

	"hermes/internal/dcsm"
	"hermes/internal/domain"
	"hermes/internal/memo"
	obs2 "hermes/internal/obs"
	"hermes/internal/term"
)

// calCost builds an obs.Cost with the given Ta in milliseconds.
func calCost(taMs int) obs2.Cost {
	return obs2.Cost{TAll: time.Duration(taMs) * time.Millisecond, Card: 1}
}

// singleCallEstimator builds an estimator over stats for one d:f() call
// with Ta = 1000ms, Card = 1.
func singleCallEstimator(t *testing.T) (*Estimator, *dcsm.DB) {
	t.Helper()
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "f", nil, 100, 1000, 1)
	return New(db, nil, DefaultConfig()), db
}

// TestInflationColdPath: a never-observed function takes the cold-start
// factor, and the detail counts it.
func TestInflationColdPath(t *testing.T) {
	est, _ := singleCallEstimator(t)
	plans := plansFor(t, `v(X) :- in(X, d:f()).`, "?- v(X).")
	cal := obs2.NewCalibration()
	est.SetCalibration(cal, 0.9, 2.5)

	cv, d, err := est.PlanCostDetail(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll != 2500*time.Millisecond {
		t.Errorf("cold TAll = %v, want 2500ms (1000 x 2.5)", cv.TAll)
	}
	if d.ColdInflated != 1 || d.Inflated != 0 || d.MaxInflation != 2.5 {
		t.Errorf("cold detail = %+v", d)
	}
	if cv.Card != 1 {
		t.Errorf("inflation must not touch Card: got %v", cv.Card)
	}
}

// TestInflationThinPath: a function with a single *accurate* observation
// must not take cold-start inflation — its evidence says q-error 1.
func TestInflationThinPath(t *testing.T) {
	est, _ := singleCallEstimator(t)
	plans := plansFor(t, `v(X) :- in(X, d:f()).`, "?- v(X).")
	cal := obs2.NewCalibration()
	cal.Observe("d", "f", calCost(1000), calCost(1000))
	est.SetCalibration(cal, 0.9, 2.5)

	cv, d, err := est.PlanCostDetail(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll != 1000*time.Millisecond {
		t.Errorf("thin-accurate TAll = %v, want uninflated 1000ms", cv.TAll)
	}
	if d.ColdInflated != 0 || d.Inflated != 0 {
		t.Errorf("thin-accurate detail = %+v", d)
	}
}

// TestInflationRoughPath: consistently-wrong observations inflate by the
// observed factor.
func TestInflationRoughPath(t *testing.T) {
	est, _ := singleCallEstimator(t)
	plans := plansFor(t, `v(X) :- in(X, d:f()).`, "?- v(X).")
	cal := obs2.NewCalibration()
	for i := 0; i < obs2.CalMinSamples; i++ {
		cal.Observe("d", "f", calCost(1000), calCost(4000)) // q-error 4
	}
	est.SetCalibration(cal, 0.9, 2.5)

	cv, d, err := est.PlanCostDetail(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll != 4000*time.Millisecond {
		t.Errorf("rough TAll = %v, want 4000ms (1000 x q-err 4)", cv.TAll)
	}
	if d.Inflated != 1 || d.ColdInflated != 0 || d.MaxInflation != 4 {
		t.Errorf("rough detail = %+v", d)
	}
}

// TestInflationQuantileDivergence: with a mostly-accurate history and a
// fat tail, the median sees nothing while p90 inflates — the reason the
// planner reads a pessimistic quantile.
func TestInflationQuantileDivergence(t *testing.T) {
	plans := plansFor(t, `v(X) :- in(X, d:f()).`, "?- v(X).")
	cal := obs2.NewCalibration()
	for i := 0; i < 8; i++ {
		cal.Observe("d", "f", calCost(1000), calCost(1000))
	}
	cal.Observe("d", "f", calCost(1000), calCost(16000))
	cal.Observe("d", "f", calCost(1000), calCost(16000))

	estMedian, _ := singleCallEstimator(t)
	estMedian.SetCalibration(cal, 0.5, 1)
	cvMed, _, err := estMedian.PlanCostDetail(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	estP90, _ := singleCallEstimator(t)
	estP90.SetCalibration(cal, 0.9, 1)
	cvP90, d, err := estP90.PlanCostDetail(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if cvMed.TAll != 1000*time.Millisecond {
		t.Errorf("median-quantile TAll = %v, want 1000ms", cvMed.TAll)
	}
	if cvP90.TAll != 16000*time.Millisecond {
		t.Errorf("p90-quantile TAll = %v, want 16000ms", cvP90.TAll)
	}
	if d.MaxInflation != 16 {
		t.Errorf("p90 detail = %+v", d)
	}
}

// TestInflationFlipsPlanChoice: the robust ranking prefers an honestly-
// priced 2s plan over a "500ms" plan whose estimates historically blow
// up 10x.
func TestInflationFlipsPlanChoice(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "spiky", nil, 50, 500, 1)
	obs(db, "d", "honest", nil, 200, 2000, 1)
	src := `
		access_equivalent('v', 1).
		v(X) :- in(X, d:spiky()).
		v(X) :- in(X, d:honest()).
	`
	plans := plansFor(t, src, "?- v(X).")

	blind := New(db, nil, DefaultConfig())
	p, _, err := blind.Best(plans, false)
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(p.String(), "spiky") {
		t.Fatalf("blind ranking should pick the optimistic plan, got %s", p)
	}

	cal := obs2.NewCalibration()
	for i := 0; i < obs2.CalMinSamples; i++ {
		cal.Observe("d", "spiky", calCost(500), calCost(5000))
		cal.Observe("d", "honest", calCost(2000), calCost(2000))
	}
	robust := New(db, nil, DefaultConfig())
	robust.SetCalibration(cal, 0.9, 1.5)
	p, cv, d, err := robust.BestDetail(plans, false)
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(p.String(), "honest") {
		t.Errorf("robust ranking picked %s (cost %v, detail %+v)", p, cv, d)
	}
}

// TestMemoResidencyDiscount: a subgoal whose memo key is resident is
// priced at its replay cost, and the discount disappears when the entry
// is degraded.
func TestMemoResidencyDiscount(t *testing.T) {
	db := dcsm.New(dcsm.DefaultConfig(), nil)
	obs(db, "d", "f", nil, 100, 1000, 3)
	plans := plansFor(t, `v(X) :- in(X, d:f()).`, "?- v(X).")
	p := plans[0]

	mc := memo.New(memo.DefaultConfig())
	est := New(db, nil, DefaultConfig())
	est.SetMemo(mc)

	// Cold memo: source cost.
	cv, d, err := est.PlanCostDetail(p)
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll != 1000*time.Millisecond || d.MemoHits != 0 {
		t.Fatalf("cold memo TAll = %v, detail %+v", cv.TAll, d)
	}

	// Seed the exact entry the query's top-level v^f occurrence probes.
	key := memo.KeyOf(p.Fingerprint(), "v", "f", []memo.KeyArg{{Var: "X"}})
	res := mc.Probe(key)
	if res.Rec == nil {
		t.Fatalf("probe did not open a recording: %+v", res)
	}
	for i := 0; i < 3; i++ {
		res.Rec.Add([]term.Value{term.Int(int64(i))}, time.Duration(i)*time.Millisecond)
	}
	res.Rec.Commit(3*time.Millisecond, domain.CostVector{TAll: time.Second, Card: 3})
	if _, ok := mc.EstimateServe(key); !ok {
		t.Fatal("seeded entry not serveable")
	}

	cv, d, err = est.PlanCostDetail(p)
	if err != nil {
		t.Fatal(err)
	}
	wantTa := mc.LookupCost() + 3*mc.PerTupleCost()
	if cv.TAll != wantTa || cv.Card != 3 {
		t.Errorf("warm memo cost = %+v, want TAll %v Card 3", cv, wantTa)
	}
	if d.MemoHits != 1 {
		t.Errorf("warm memo detail = %+v", d)
	}
	if cv.TFirst != mc.LookupCost()+mc.PerTupleCost() {
		t.Errorf("warm memo TFirst = %v", cv.TFirst)
	}

	// A degraded entry (fill recorded while a source was down) must not
	// discount: the engine would not serve it either.
	mc2 := memo.New(memo.DefaultConfig())
	res2 := mc2.Probe(key)
	res2.Rec.Note("d|f", true) // degraded input
	res2.Rec.Add([]term.Value{term.Int(0)}, 0)
	res2.Rec.Commit(time.Millisecond, domain.CostVector{TAll: time.Second, Card: 1})
	if mc2.Serveable(key) {
		t.Fatal("degraded entry should not be serveable")
	}
	est.SetMemo(mc2)
	cv, d, err = est.PlanCostDetail(p)
	if err != nil {
		t.Fatal(err)
	}
	if cv.TAll != 1000*time.Millisecond || d.MemoHits != 0 {
		t.Errorf("degraded entry still discounted: %+v detail %+v", cv, d)
	}
}
