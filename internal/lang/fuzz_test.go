package lang

import (
	"testing"
)

// FuzzParseProgram: the parser must never panic, and anything it accepts
// must render to text it accepts again.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"p(X).",
		"m(A, C) :- p(A, B), q(B, C).",
		"p(A, B) :- in($ans, d1:p_ff()), =($ans.1, A), =($ans.2, B).",
		"Dist > 142 => spatial:range('map1', X, Y, Dist) = spatial:range('points', X, Y, 142).",
		"V1 <= V2 => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1).",
		"q(142).",
		"v(Y) :- X = 'k', in(Y, d:f(X)).",
		"p('unterminated",
		"p(A :- q(A).",
		"% comment only",
		"?-",
		"=>",
		"p(1.5e3, -2, true, false, 'str', X.a.b).",
		"\x00\x01\x02",
		"p(((((",
		"a :- b & c & d & e.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := prog.String()
		prog2, err := ParseProgram(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, rendered, err)
		}
		if prog2.String() != rendered {
			t.Fatalf("rendering not a fixpoint:\n%q\n%q", rendered, prog2.String())
		}
	})
}

// FuzzParseQuery mirrors FuzzParseProgram for queries.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{
		"?- m('a', C).",
		"?- in(O, avis:frames_to_objects('rope', 4, 47)) & O != 'chest'.",
		"m(X)",
		"?- .",
		"?- X.",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		rendered := q.String()
		if _, err := ParseQuery(rendered); err != nil {
			t.Fatalf("accepted %q but rejected rendering %q: %v", src, rendered, err)
		}
	})
}
