package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tokEOF     tokenKind = iota
	tokIdent             // lowercase identifier: predicate, domain, function, symbol constant
	tokVar               // variable, possibly with attribute path: X, $ans.1, P.name
	tokString            // quoted string constant
	tokInt               // integer literal
	tokFloat             // float literal
	tokLParen            // (
	tokRParen            // )
	tokComma             // ,
	tokAmp               // &
	tokColon             // :
	tokDot               // . (statement terminator)
	tokIf                // :-
	tokQuery             // ?-
	tokImplies           // =>
	tokRelOp             // = != <> < <= > >= =<
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAmp:
		return "'&'"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokIf:
		return "':-'"
	case tokQuery:
		return "'?-'"
	case tokImplies:
		return "'=>'"
	case tokRelOp:
		return "comparison operator"
	}
	return "token"
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer tokenizes mediator language source.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(off int) rune {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isVarStart(r rune) bool {
	return unicode.IsUpper(r) || r == '_' || r == '$'
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '%' || r == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// next scans the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if lx.pos >= len(lx.src) {
		return mk(tokEOF, ""), nil
	}
	r := lx.peek()
	switch {
	case r == '(':
		lx.advance()
		return mk(tokLParen, "("), nil
	case r == ')':
		lx.advance()
		return mk(tokRParen, ")"), nil
	case r == ',':
		lx.advance()
		return mk(tokComma, ","), nil
	case r == '&':
		lx.advance()
		return mk(tokAmp, "&"), nil
	case r == '?' && lx.peekAt(1) == '-':
		lx.advance()
		lx.advance()
		return mk(tokQuery, "?-"), nil
	case r == ':':
		lx.advance()
		if lx.peek() == '-' {
			lx.advance()
			return mk(tokIf, ":-"), nil
		}
		return mk(tokColon, ":"), nil
	case r == '.':
		lx.advance()
		return mk(tokDot, "."), nil
	case r == '=' || r == '!' || r == '<' || r == '>':
		return lx.scanOperator(mk)
	case r == '\'' || r == '"':
		return lx.scanString(mk)
	case unicode.IsDigit(r) || (r == '-' && unicode.IsDigit(lx.peekAt(1))):
		return lx.scanNumber(mk)
	case isIdentStart(r):
		return lx.scanWord(mk)
	}
	return token{}, lx.errorf(line, col, "unexpected character %q", r)
}

func (lx *lexer) scanOperator(mk func(tokenKind, string) token) (token, error) {
	r := lx.advance()
	two := string(r)
	if n := lx.peek(); n == '=' || n == '>' || n == '<' {
		two += string(n)
	}
	switch two {
	case "=>":
		lx.advance()
		return mk(tokImplies, "=>"), nil
	case "==", "!=", "<>", "<=", ">=", "=<":
		lx.advance()
		return mk(tokRelOp, two), nil
	}
	switch r {
	case '=', '<', '>':
		return mk(tokRelOp, string(r)), nil
	}
	return token{}, lx.errorf(mk(0, "").line, mk(0, "").col, "unexpected character %q", r)
}

func (lx *lexer) scanString(mk func(tokenKind, string) token) (token, error) {
	quote := lx.advance()
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			t := mk(tokString, "")
			return token{}, lx.errorf(t.line, t.col, "unterminated string")
		}
		r := lx.advance()
		if r == quote {
			break
		}
		if r == '\\' && lx.pos < len(lx.src) {
			esc := lx.advance()
			switch esc {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			default:
				b.WriteRune(esc)
			}
			continue
		}
		b.WriteRune(r)
	}
	return mk(tokString, b.String()), nil
}

func (lx *lexer) scanNumber(mk func(tokenKind, string) token) (token, error) {
	var b strings.Builder
	if lx.peek() == '-' {
		b.WriteRune(lx.advance())
	}
	for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
		b.WriteRune(lx.advance())
	}
	isFloat := false
	// A '.' is part of the number only when followed by a digit; otherwise it
	// is the statement terminator (e.g. "q(142)." ).
	if lx.peek() == '.' && unicode.IsDigit(lx.peekAt(1)) {
		isFloat = true
		b.WriteRune(lx.advance())
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			b.WriteRune(lx.advance())
		}
	}
	// An exponent may follow either form ("1.5e3", "1e+06") when a digit
	// (optionally signed) comes after the 'e'.
	if e := lx.peek(); e == 'e' || e == 'E' {
		n1, n2 := lx.peekAt(1), lx.peekAt(2)
		if unicode.IsDigit(n1) || ((n1 == '+' || n1 == '-') && unicode.IsDigit(n2)) {
			isFloat = true
			b.WriteRune(lx.advance()) // e
			if lx.peek() == '+' || lx.peek() == '-' {
				b.WriteRune(lx.advance())
			}
			for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
				b.WriteRune(lx.advance())
			}
		}
	}
	if isFloat {
		return mk(tokFloat, b.String()), nil
	}
	return mk(tokInt, b.String()), nil
}

// scanWord scans identifiers and variables. Variables may carry an
// attribute path: the lexer folds "P.name" or "$ans.1" into a single tokVar
// whose text contains the dots, disambiguating the path dot from the
// statement terminator (a terminator dot is never directly followed by an
// identifier or digit belonging to the same variable reference, because
// attribute access requires no intervening whitespace).
func (lx *lexer) scanWord(mk func(tokenKind, string) token) (token, error) {
	var b strings.Builder
	first := lx.advance()
	b.WriteRune(first)
	for lx.pos < len(lx.src) && isIdentRune(lx.peek()) {
		b.WriteRune(lx.advance())
	}
	isVar := isVarStart(first)
	if isVar {
		for lx.peek() == '.' && (isIdentRune(lx.peekAt(1)) || unicode.IsDigit(lx.peekAt(1))) {
			b.WriteRune(lx.advance()) // '.'
			for lx.pos < len(lx.src) && isIdentRune(lx.peek()) {
				b.WriteRune(lx.advance())
			}
		}
		return mk(tokVar, b.String()), nil
	}
	return mk(tokIdent, b.String()), nil
}
