package lang

import (
	"fmt"
	"strconv"
	"strings"

	"hermes/internal/term"
)

// parser consumes a pre-lexed token stream.
type parser struct {
	toks []token
	pos  int
}

func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	if !p.at(k) {
		t := p.cur()
		return token{}, fmt.Errorf("%d:%d: expected %s, found %s %q", t.line, t.col, k, t.kind, t.text)
	}
	return p.advance(), nil
}

// statementHasImplies looks ahead to the next statement terminator for '=>',
// which distinguishes invariants from rules.
func (p *parser) statementHasImplies() bool {
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].kind {
		case tokImplies:
			return true
		case tokDot, tokEOF:
			return false
		}
	}
	return false
}

// ParseProgram parses a mediator specification: rules and invariants.
// Queries (?- ...) are rejected; use ParseSource to accept mixed input.
func ParseProgram(src string) (*Program, error) {
	prog, queries, err := ParseSource(src)
	if err != nil {
		return nil, err
	}
	if len(queries) > 0 {
		return nil, fmt.Errorf("unexpected query in program: %s", queries[0])
	}
	return prog, nil
}

// ParseSource parses mixed input: rules, invariants and queries.
func ParseSource(src string) (*Program, []*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	var queries []*Query
	for !p.at(tokEOF) {
		switch {
		case p.at(tokQuery):
			q, err := p.parseQuery()
			if err != nil {
				return nil, nil, err
			}
			queries = append(queries, q)
		case p.statementHasImplies():
			inv, err := p.parseInvariant()
			if err != nil {
				return nil, nil, err
			}
			prog.Invariants = append(prog.Invariants, inv)
		default:
			r, err := p.parseRule()
			if err != nil {
				return nil, nil, err
			}
			prog.Rules = append(prog.Rules, r)
		}
	}
	return prog, queries, nil
}

// ParseQuery parses a single query, with or without the leading "?-".
func ParseQuery(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if p.at(tokQuery) {
		p.advance()
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if p.at(tokDot) {
		p.advance()
	}
	if !p.at(tokEOF) {
		t := p.cur()
		return nil, fmt.Errorf("%d:%d: trailing input after query", t.line, t.col)
	}
	return &Query{Body: body}, nil
}

// ParseInvariant parses a single invariant statement.
func ParseInvariant(src string) (*Invariant, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	inv, err := p.parseInvariant()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		t := p.cur()
		return nil, fmt.Errorf("%d:%d: trailing input after invariant", t.line, t.col)
	}
	return inv, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokQuery); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return &Query{Body: body}, nil
}

func (p *parser) parseRule() (*Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	r := &Rule{Head: *head}
	if p.at(tokIf) {
		p.advance()
		body, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		r.Body = body
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseInvariant() (*Invariant, error) {
	inv := &Invariant{}
	// Condition: "true" or a conjunction of comparisons.
	if p.at(tokIdent) && p.cur().text == "true" {
		p.advance()
	} else if !p.at(tokImplies) {
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			inv.Cond = append(inv.Cond, *cmp)
			if p.at(tokComma) || p.at(tokAmp) {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokImplies); err != nil {
		return nil, err
	}
	left, err := p.parseCallTemplate()
	if err != nil {
		return nil, err
	}
	inv.Left = *left
	op, err := p.expect(tokRelOp)
	if err != nil {
		return nil, err
	}
	switch op.text {
	case "=", "==":
		inv.Rel = RelEqual
	case ">=":
		inv.Rel = RelSuperset
	default:
		return nil, fmt.Errorf("%d:%d: invariant relation must be '=' or '>=', found %q", op.line, op.col, op.text)
	}
	right, err := p.parseCallTemplate()
	if err != nil {
		return nil, err
	}
	inv.Right = *right
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return inv, nil
}

func (p *parser) parseBody() ([]Literal, error) {
	var body []Literal
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		body = append(body, lit)
		if p.at(tokComma) || p.at(tokAmp) {
			p.advance()
			continue
		}
		return body, nil
	}
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch t.kind {
	case tokRelOp:
		// Prefix form: ==(P.name, Actor).
		p.advance()
		op, ok := term.ParseRelOp(t.text)
		if !ok {
			return nil, fmt.Errorf("%d:%d: unknown operator %q", t.line, t.col, t.text)
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		left, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &Comparison{Op: op, Left: left, Right: right}, nil
	case tokIdent:
		if t.text == "in" && p.toks[p.pos+1].kind == tokLParen {
			return p.parseInCall()
		}
		// Atom, or a comparison with a symbolic-constant left side.
		if p.toks[p.pos+1].kind == tokRelOp {
			return p.parseComparison()
		}
		return p.parseAtom()
	case tokVar, tokString, tokInt, tokFloat:
		return p.parseComparison()
	}
	return nil, fmt.Errorf("%d:%d: expected a literal, found %s %q", t.line, t.col, t.kind, t.text)
}

func (p *parser) parseInCall() (*InCall, error) {
	if _, err := p.expect(tokIdent); err != nil { // "in"
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	out, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	call, err := p.parseCallTemplate()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &InCall{Out: out, Call: *call}, nil
}

func (p *parser) parseComparison() (*Comparison, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokRelOp)
	if err != nil {
		return nil, err
	}
	op, ok := term.ParseRelOp(opTok.text)
	if !ok {
		return nil, fmt.Errorf("%d:%d: unknown operator %q", opTok.line, opTok.col, opTok.text)
	}
	right, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &Comparison{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseAtom() (*Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	a := &Atom{Pred: name.text}
	if !p.at(tokLParen) {
		return a, nil
	}
	p.advance()
	if p.at(tokRParen) {
		p.advance()
		return a, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, t)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return a, nil
}

// parseCallTemplate parses domain:function(args...).
func (p *parser) parseCallTemplate() (*CallTemplate, error) {
	dom, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	fn, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	ct := &CallTemplate{Domain: dom.text, Function: fn.text}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.at(tokRParen) {
		p.advance()
		return ct, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		ct.Args = append(ct.Args, t)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseTerm() (term.Term, error) {
	t := p.advance()
	switch t.kind {
	case tokVar:
		parts := strings.Split(t.text, ".")
		return term.V(parts[0], parts[1:]...), nil
	case tokString:
		return term.C(term.Str(t.text)), nil
	case tokInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return term.Term{}, fmt.Errorf("%d:%d: bad integer %q: %v", t.line, t.col, t.text, err)
		}
		return term.C(term.Int(n)), nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return term.Term{}, fmt.Errorf("%d:%d: bad float %q: %v", t.line, t.col, t.text, err)
		}
		return term.C(term.Float(f)), nil
	case tokIdent:
		switch t.text {
		case "true":
			return term.C(term.Bool(true)), nil
		case "false":
			return term.C(term.Bool(false)), nil
		}
		// Lower-case identifiers in term position are symbolic constants.
		return term.C(term.Str(t.text)), nil
	}
	return term.Term{}, fmt.Errorf("%d:%d: expected a term, found %s %q", t.line, t.col, t.kind, t.text)
}
