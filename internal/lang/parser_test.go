package lang

import (
	"strings"
	"testing"

	"hermes/internal/term"
)

func mustProgram(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram(%q): %v", src, err)
	}
	return p
}

func TestParseFact(t *testing.T) {
	p := mustProgram(t, "access_equivalent('p', 2).")
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Head.Pred != "access_equivalent" || len(r.Body) != 0 {
		t.Errorf("bad fact: %s", r)
	}
	if !term.Equal(r.Head.Args[0].Const, term.Str("p")) {
		t.Errorf("arg0 = %v", r.Head.Args[0])
	}
	if !term.Equal(r.Head.Args[1].Const, term.Int(2)) {
		t.Errorf("arg1 = %v", r.Head.Args[1])
	}
}

func TestParsePaperMediatorM1(t *testing.T) {
	src := `
		% The paper's (M1), with variables capitalized.
		m(A, C) :- p(A, B), q(B, C).
		p(A, B) :- in($ans, d1:p_ff()), =($ans.1, A), =($ans.2, B).
		p(A, B) :- in(A, d1:p_fb(B)).
		q(B, C) :- in($ans, d2:q_ff()), =($ans.1, B), =($ans.2, C).
		q(B, C) :- in(C, d2:q_bf(B)).
	`
	p := mustProgram(t, src)
	if len(p.Rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(p.Rules))
	}
	// Rule 2: body shape.
	r := p.Rules[1]
	if len(r.Body) != 3 {
		t.Fatalf("p rule body = %d literals, want 3", len(r.Body))
	}
	in, ok := r.Body[0].(*InCall)
	if !ok {
		t.Fatalf("first literal is %T, want *InCall", r.Body[0])
	}
	if in.Call.Domain != "d1" || in.Call.Function != "p_ff" || len(in.Call.Args) != 0 {
		t.Errorf("call = %s", in.Call.String())
	}
	if in.Out.Var != "$ans" {
		t.Errorf("out var = %q", in.Out.Var)
	}
	cmp, ok := r.Body[1].(*Comparison)
	if !ok {
		t.Fatalf("second literal is %T", r.Body[1])
	}
	if cmp.Op != term.OpEQ || cmp.Left.Var != "$ans" || len(cmp.Left.Path) != 1 || cmp.Left.Path[0] != "1" {
		t.Errorf("comparison = %s", cmp)
	}
}

func TestParseRouteToSupplies(t *testing.T) {
	src := `
		routetosupplies(From, Sup, To, R) :-
		    in(Tuple, ingres:select_eq('inventory', 'item', Sup)) &
		    Tuple.loc = To &
		    in(R, terraindb:findrte(From, To)).
	`
	p := mustProgram(t, src)
	r := p.Rules[0]
	if r.Head.Pred != "routetosupplies" || len(r.Head.Args) != 4 {
		t.Fatalf("head = %s", r.Head.String())
	}
	if len(r.Body) != 3 {
		t.Fatalf("body = %d literals", len(r.Body))
	}
	cmp := r.Body[1].(*Comparison)
	if cmp.Left.Var != "Tuple" || cmp.Left.Path[0] != "loc" || cmp.Right.Var != "To" {
		t.Errorf("comparison = %s", cmp)
	}
}

func TestParseInvariantEquality(t *testing.T) {
	inv, err := ParseInvariant(
		"Dist > 142 => spatial:range('map1', X, Y, Dist) = spatial:range('points', X, Y, 142).")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Rel != RelEqual {
		t.Errorf("rel = %v, want =", inv.Rel)
	}
	if len(inv.Cond) != 1 || inv.Cond[0].Op != term.OpGT {
		t.Errorf("cond = %v", inv.Cond)
	}
	if inv.Left.Domain != "spatial" || inv.Left.Function != "range" || len(inv.Left.Args) != 4 {
		t.Errorf("left = %s", inv.Left.String())
	}
	if !term.Equal(inv.Right.Args[3].Const, term.Int(142)) {
		t.Errorf("right arg4 = %v", inv.Right.Args[3])
	}
}

func TestParseInvariantSuperset(t *testing.T) {
	inv, err := ParseInvariant(
		"V1 <= V2 => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1).")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Rel != RelSuperset {
		t.Errorf("rel = %v, want >=", inv.Rel)
	}
	if inv.Cond[0].Left.Var != "V1" || inv.Cond[0].Right.Var != "V2" {
		t.Errorf("cond = %v", inv.Cond[0].String())
	}
}

func TestParseInvariantTrueCondition(t *testing.T) {
	inv, err := ParseInvariant("true => d:f(X) = d:g(X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Cond) != 0 {
		t.Errorf("cond = %v, want empty", inv.Cond)
	}
}

func TestParseProgramWithInvariants(t *testing.T) {
	src := `
		p(A) :- in(A, d:f()).
		X > 1 => d:g(X) = d:g(1).
	`
	p := mustProgram(t, src)
	if len(p.Rules) != 1 || len(p.Invariants) != 1 {
		t.Fatalf("rules=%d invariants=%d", len(p.Rules), len(p.Invariants))
	}
}

func TestParseQueryForms(t *testing.T) {
	q, err := ParseQuery("?- m('a', C).")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 1 {
		t.Fatalf("body = %d", len(q.Body))
	}
	a := q.Body[0].(*Atom)
	if a.Pred != "m" || !term.Equal(a.Args[0].Const, term.Str("a")) || a.Args[1].Var != "C" {
		t.Errorf("query atom = %s", a)
	}
	// Without ?- and trailing dot.
	q2, err := ParseQuery("m('a', C)")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Body[0].(*Atom).Pred != "m" {
		t.Error("bare query parse failed")
	}
	// Conjunctive query with a domain call.
	q3, err := ParseQuery("?- in(X, avis:objects('rope')) & X != 'chest'.")
	if err != nil {
		t.Fatal(err)
	}
	if len(q3.Body) != 2 {
		t.Fatalf("conjunctive body = %d", len(q3.Body))
	}
}

func TestParseSourceMixed(t *testing.T) {
	prog, queries, err := ParseSource(`
		p(A) :- in(A, d:f()).
		?- p(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 || len(queries) != 1 {
		t.Errorf("rules=%d queries=%d", len(prog.Rules), len(queries))
	}
}

func TestParseNumericLiterals(t *testing.T) {
	q, err := ParseQuery("?- in(X, avis:frames_to_objects('rope', 4, 47)) & X.w > 2.5 & Y = -3.")
	if err != nil {
		t.Fatal(err)
	}
	in := q.Body[0].(*InCall)
	if !term.Equal(in.Call.Args[1].Const, term.Int(4)) {
		t.Errorf("arg = %v", in.Call.Args[1])
	}
	gt := q.Body[1].(*Comparison)
	if !term.Equal(gt.Right.Const, term.Float(2.5)) {
		t.Errorf("float literal = %v", gt.Right)
	}
	eq := q.Body[2].(*Comparison)
	if !term.Equal(eq.Right.Const, term.Int(-3)) {
		t.Errorf("negative literal = %v", eq.Right)
	}
}

func TestParseStatementDotVsPathDot(t *testing.T) {
	// "q(142)." — the dot ends the statement, 142 stays an int.
	p := mustProgram(t, "q(142).")
	if !term.Equal(p.Rules[0].Head.Args[0].Const, term.Int(142)) {
		t.Errorf("arg = %v", p.Rules[0].Head.Args[0])
	}
	// "P.name" — the dot is an attribute path.
	q, err := ParseQuery("?- in(P, rel:all('cast')) & P.name = Actor.")
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Body[1].(*Comparison)
	if cmp.Left.Var != "P" || cmp.Left.Path[0] != "name" {
		t.Errorf("path term = %s", cmp.Left)
	}
}

func TestParseComments(t *testing.T) {
	p := mustProgram(t, `
		% a comment
		# another comment
		// and a third
		p(A) :- in(A, d:f()). % trailing
	`)
	if len(p.Rules) != 1 {
		t.Errorf("rules = %d", len(p.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(A :- q(A).",             // unbalanced paren
		"p(A) :- .",                // empty body
		"p(A).extra",               // trailing garbage handled as new stmt -> parse error
		"X > => d:f(X) = d:f(1).",  // malformed condition
		"true => d:f(X) < d:f(1).", // bad invariant relation
		"p('unterminated.",         // unterminated string
		"?- p(X)",                  // query inside ParseProgram
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestRoundTripStrings(t *testing.T) {
	src := `m(A, C) :- p(A, B) & q(B, C).`
	p := mustProgram(t, src)
	s := p.Rules[0].String()
	if !strings.Contains(s, "m(A, C) :- p(A, B) & q(B, C).") {
		t.Errorf("rule string = %q", s)
	}
	// Reparse the rendering.
	if _, err := ParseProgram(s); err != nil {
		t.Errorf("reparse of %q: %v", s, err)
	}
	inv, err := ParseInvariant("V1 <= V2 => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseInvariant(inv.String()); err != nil {
		t.Errorf("reparse invariant %q: %v", inv.String(), err)
	}
}

func TestProgramRulesFor(t *testing.T) {
	p := mustProgram(t, `
		p(A) :- in(A, d:f()).
		p(A) :- in(A, d:g()).
		q(A) :- p(A).
	`)
	if n := len(p.RulesFor("p")); n != 2 {
		t.Errorf("RulesFor(p) = %d", n)
	}
	if n := len(p.RulesFor("zzz")); n != 0 {
		t.Errorf("RulesFor(zzz) = %d", n)
	}
}

func TestPrefixComparisonForms(t *testing.T) {
	q, err := ParseQuery("?- in(P, rel:all('cast')) & ==(P.role, Object) & <=(P.age, 50).")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 3 {
		t.Fatalf("body = %d", len(q.Body))
	}
	c1 := q.Body[1].(*Comparison)
	if c1.Op != term.OpEQ {
		t.Errorf("op1 = %v", c1.Op)
	}
	c2 := q.Body[2].(*Comparison)
	if c2.Op != term.OpLE {
		t.Errorf("op2 = %v", c2.Op)
	}
}
