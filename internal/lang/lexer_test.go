package lang

import (
	"testing"
)

// lexKinds tokenizes src and returns the token kinds (minus EOF).
func lexKinds(t *testing.T, src string) []tokenKind {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	var out []tokenKind
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		out = append(out, tk.kind)
	}
	return out
}

// lexTexts returns the token texts.
func lexTexts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	var out []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		out = append(out, tk.text)
	}
	return out
}

func TestLexAttributePathFolding(t *testing.T) {
	texts := lexTexts(t, "P.name")
	if len(texts) != 1 || texts[0] != "P.name" {
		t.Errorf("P.name lexed as %v", texts)
	}
	texts = lexTexts(t, "$ans.1.x")
	if len(texts) != 1 || texts[0] != "$ans.1.x" {
		t.Errorf("$ans.1.x lexed as %v", texts)
	}
	// Statement terminator after a variable: not part of the path.
	texts = lexTexts(t, "p(X).")
	want := []string{"p", "(", "X", ")", "."}
	if len(texts) != len(want) {
		t.Fatalf("p(X). lexed as %v", texts)
	}
	// Lower-case identifiers never take paths.
	texts = lexTexts(t, "abc.def")
	if len(texts) != 3 {
		t.Errorf("abc.def lexed as %v (dot must separate)", texts)
	}
}

func TestLexNumberDotDisambiguation(t *testing.T) {
	kinds := lexKinds(t, "q(142).")
	// ident ( int ) dot
	if kinds[2] != tokInt || kinds[4] != tokDot {
		t.Errorf("q(142). kinds = %v", kinds)
	}
	kinds = lexKinds(t, "q(1.5).")
	if kinds[2] != tokFloat {
		t.Errorf("q(1.5). kinds = %v", kinds)
	}
	texts := lexTexts(t, "1.5e3")
	if len(texts) != 1 || texts[0] != "1.5e3" {
		t.Errorf("scientific notation lexed as %v", texts)
	}
	texts = lexTexts(t, "-42")
	if len(texts) != 1 || texts[0] != "-42" {
		t.Errorf("negative int lexed as %v", texts)
	}
	// Exponents without a decimal point (the %g rendering of large floats,
	// e.g. term.Float(1e6).String() == "1e+06") must lex as one float.
	for _, src := range []string{"1e+06", "1e6", "2E-3", "1.5e3", "-4e+2"} {
		kinds := lexKinds(t, src)
		if len(kinds) != 1 || kinds[0] != tokFloat {
			t.Errorf("%q lexed as %v, want one float", src, kinds)
		}
	}
	// 'e' not followed by a digit stays an identifier boundary.
	if texts := lexTexts(t, "1east"); len(texts) != 2 || texts[0] != "1" {
		t.Errorf("1east lexed as %v", texts)
	}
}

func TestLexOperators(t *testing.T) {
	for src, kind := range map[string]tokenKind{
		"=":  tokRelOp,
		"==": tokRelOp,
		"!=": tokRelOp,
		"<>": tokRelOp,
		"<=": tokRelOp,
		">=": tokRelOp,
		"=<": tokRelOp,
		"<":  tokRelOp,
		">":  tokRelOp,
		"=>": tokImplies,
		":-": tokIf,
		"?-": tokQuery,
		":":  tokColon,
		"&":  tokAmp,
	} {
		kinds := lexKinds(t, src)
		if len(kinds) != 1 || kinds[0] != kind {
			t.Errorf("%q lexed as %v, want %v", src, kinds, kind)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	texts := lexTexts(t, `'it\'s' "tab\there"`)
	if texts[0] != "it's" {
		t.Errorf("escaped quote: %q", texts[0])
	}
	if texts[1] != "tab\there" {
		t.Errorf("escaped tab: %q", texts[1])
	}
	if _, err := lexAll("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexComments(t *testing.T) {
	kinds := lexKinds(t, "% whole line\np(X). # trailing\n// also this\nq(Y).")
	count := 0
	for _, k := range kinds {
		if k == tokIdent {
			count++
		}
	}
	if count != 2 {
		t.Errorf("comments leaked tokens: %v", kinds)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("p(X).\nbad?")
	if err != nil {
		// '?' alone on line 2 is an error at next() time only when reached;
		// lexAll stops at the error.
		return
	}
	_ = toks
}

func TestLexErrorPosition(t *testing.T) {
	_, err := lexAll("p(X).\n  @")
	if err == nil {
		t.Fatal("@ should fail")
	}
	if got := err.Error(); got[:4] != "2:3:" {
		t.Errorf("error position = %q, want 2:3 prefix", got)
	}
}

func TestLexUnicodeIdentifiers(t *testing.T) {
	texts := lexTexts(t, "café(Ärger)")
	if texts[0] != "café" || texts[2] != "Ärger" {
		t.Errorf("unicode lexing: %v", texts)
	}
	// Uppercase unicode starts a variable.
	kinds := lexKinds(t, "Ärger")
	if kinds[0] != tokVar {
		t.Errorf("Ärger kind = %v, want var", kinds[0])
	}
}
