package lang

import (
	"fmt"
	"math/rand"
	"testing"

	"hermes/internal/term"
)

// genTerm produces a random term.
func genTerm(rng *rand.Rand) term.Term {
	switch rng.Intn(5) {
	case 0:
		return term.C(term.Str(fmt.Sprintf("c%d", rng.Intn(10))))
	case 1:
		return term.C(term.Int(int64(rng.Intn(200) - 100)))
	case 2:
		return term.C(term.Float(float64(rng.Intn(100)) + 0.5))
	case 3:
		return term.V(fmt.Sprintf("V%d", rng.Intn(6)))
	default:
		return term.V(fmt.Sprintf("R%d", rng.Intn(3)), fmt.Sprintf("attr%d", rng.Intn(3)))
	}
}

func genCall(rng *rand.Rand) CallTemplate {
	n := rng.Intn(4)
	ct := CallTemplate{
		Domain:   fmt.Sprintf("dom%d", rng.Intn(3)),
		Function: fmt.Sprintf("fn%d", rng.Intn(4)),
	}
	for i := 0; i < n; i++ {
		ct.Args = append(ct.Args, genTerm(rng))
	}
	return ct
}

func genLiteral(rng *rand.Rand) Literal {
	switch rng.Intn(3) {
	case 0:
		a := &Atom{Pred: fmt.Sprintf("p%d", rng.Intn(4))}
		for i := rng.Intn(4); i > 0; i-- {
			a.Args = append(a.Args, genTerm(rng))
		}
		return a
	case 1:
		out := term.V(fmt.Sprintf("V%d", rng.Intn(6)))
		return &InCall{Out: out, Call: genCall(rng)}
	default:
		ops := []term.RelOp{term.OpEQ, term.OpNE, term.OpLT, term.OpLE, term.OpGT, term.OpGE}
		return &Comparison{Op: ops[rng.Intn(len(ops))], Left: genTerm(rng), Right: genTerm(rng)}
	}
}

func genRule(rng *rand.Rand) *Rule {
	head := Atom{Pred: fmt.Sprintf("h%d", rng.Intn(4))}
	for i := rng.Intn(4); i > 0; i-- {
		head.Args = append(head.Args, genTerm(rng))
	}
	r := &Rule{Head: head}
	for i := 1 + rng.Intn(4); i > 0; i-- {
		r.Body = append(r.Body, genLiteral(rng))
	}
	return r
}

// TestRuleRoundTripProperty: the String rendering of any generated rule
// reparses to a rule with the identical rendering. This pins the printer
// and parser to each other over a large random corpus.
func TestRuleRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		r := genRule(rng)
		src := r.String()
		prog, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("case %d: reparse %q: %v", i, src, err)
		}
		if len(prog.Rules) != 1 {
			t.Fatalf("case %d: %q parsed to %d rules", i, src, len(prog.Rules))
		}
		if got := prog.Rules[0].String(); got != src {
			t.Fatalf("case %d: round trip changed rendering:\n  %q\n  %q", i, src, got)
		}
	}
}

// TestInvariantRoundTripProperty: same for invariants over random calls
// and conditions whose variables are drawn from the calls.
func TestInvariantRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		inv := &Invariant{Left: genCall(rng), Right: genCall(rng)}
		if rng.Intn(2) == 0 {
			inv.Rel = RelSuperset
		}
		vars := append(inv.Left.Vars(nil), inv.Right.Vars(nil)...)
		for k := rng.Intn(3); k > 0 && len(vars) > 0; k-- {
			ops := []term.RelOp{term.OpLT, term.OpLE, term.OpGT, term.OpGE, term.OpEQ, term.OpNE}
			inv.Cond = append(inv.Cond, Comparison{
				Op:    ops[rng.Intn(len(ops))],
				Left:  term.V(vars[rng.Intn(len(vars))]),
				Right: term.C(term.Int(int64(rng.Intn(100)))),
			})
		}
		src := inv.String()
		got, err := ParseInvariant(src)
		if err != nil {
			t.Fatalf("case %d: reparse %q: %v", i, src, err)
		}
		if got.String() != src {
			t.Fatalf("case %d: round trip changed rendering:\n  %q\n  %q", i, src, got.String())
		}
	}
}

// TestQueryRoundTripProperty: queries round-trip too.
func TestQueryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		q := &Query{}
		for k := 1 + rng.Intn(3); k > 0; k-- {
			q.Body = append(q.Body, genLiteral(rng))
		}
		src := q.String()
		got, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("case %d: reparse %q: %v", i, src, err)
		}
		if got.String() != src {
			t.Fatalf("case %d: %q -> %q", i, src, got.String())
		}
	}
}
