// Package lang defines the mediator rule language of the HERMES system and
// its parser: datalog-style rules whose bodies mix ordinary predicates,
// domain calls in(X, domain:function(args...)), and comparisons; queries;
// and the invariants used by the cache and invariant manager.
//
// Syntax summary (statements end with '.'):
//
//	routetosupplies(From, Sup, To, R) :-
//	    in(T, ingres:select_eq('inventory', 'item', Sup)) &
//	    T.loc = To &
//	    in(R, terrain:findrte(From, To)).
//
//	?- routetosupplies('place1', 'h-22 fuel', To, R).
//
//	Dist > 142 => spatial:range('map1', X, Y, Dist) = spatial:range('points', X, Y, 142).
//	V1 <= V2  => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1).
//
// Variables begin with an upper-case letter, '_' or '$'; everything else in
// term position is a constant. '&' and ',' both separate body literals.
// '%' and '#' start line comments.
package lang

import (
	"fmt"
	"strings"

	"hermes/internal/term"
)

// Atom is an ordinary (IDB) predicate occurrence: pred(t1, ..., tn).
type Atom struct {
	Pred string
	Args []term.Term
}

// String renders the atom.
func (a *Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Vars appends the variables of the atom to dst.
func (a *Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		dst = t.Vars(dst)
	}
	return dst
}

// CallTemplate is a (possibly non-ground) domain call: domain:function(args).
type CallTemplate struct {
	Domain   string
	Function string
	Args     []term.Term
}

// String renders the call template.
func (c *CallTemplate) String() string {
	parts := make([]string, len(c.Args))
	for i, t := range c.Args {
		parts[i] = t.String()
	}
	return c.Domain + ":" + c.Function + "(" + strings.Join(parts, ", ") + ")"
}

// Vars appends the variables of the call arguments to dst.
func (c *CallTemplate) Vars(dst []string) []string {
	for _, t := range c.Args {
		dst = t.Vars(dst)
	}
	return dst
}

// Clone returns a deep copy of the template.
func (c *CallTemplate) Clone() *CallTemplate {
	args := make([]term.Term, len(c.Args))
	copy(args, c.Args)
	return &CallTemplate{Domain: c.Domain, Function: c.Function, Args: args}
}

// InCall is the literal in(X, domain:function(args...)): X ranges over the
// answer set of the call. Per the paper, the call arguments must be ground
// when the literal is executed; X may be bound (membership test, pruning
// the rest of the query) or free (enumeration).
type InCall struct {
	Out  term.Term
	Call CallTemplate
}

// String renders the literal.
func (l *InCall) String() string {
	return "in(" + l.Out.String() + ", " + l.Call.String() + ")"
}

// Vars appends the variables of the literal to dst.
func (l *InCall) Vars(dst []string) []string {
	dst = l.Out.Vars(dst)
	return l.Call.Vars(dst)
}

// Comparison is a relop literal: Left op Right, or relop(Left, Right).
type Comparison struct {
	Op    term.RelOp
	Left  term.Term
	Right term.Term
}

// String renders the comparison infix.
func (c *Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Vars appends the variables of the comparison to dst.
func (c *Comparison) Vars(dst []string) []string {
	dst = c.Left.Vars(dst)
	return c.Right.Vars(dst)
}

// Holds evaluates the comparison under a substitution. Both sides must be
// ground.
func (c *Comparison) Holds(s term.Subst) (bool, error) {
	l, err := s.Eval(c.Left)
	if err != nil {
		return false, err
	}
	r, err := s.Eval(c.Right)
	if err != nil {
		return false, err
	}
	return c.Op.Holds(l, r)
}

// Literal is one conjunct of a rule body: an Atom, an InCall, or a
// Comparison.
type Literal interface {
	String() string
	Vars(dst []string) []string
	literal()
}

func (a *Atom) literal()       {}
func (l *InCall) literal()     {}
func (c *Comparison) literal() {}

// Rule is a mediator rule Head :- Body. A fact is a rule with empty body.
type Rule struct {
	Head Atom
	Body []Literal
}

// String renders the rule.
func (r *Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, " & ") + "."
}

// Clone returns a deep copy of the rule (sharing terms, which are
// immutable, but with fresh slices so bodies can be reordered).
func (r *Rule) Clone() *Rule {
	head := Atom{Pred: r.Head.Pred, Args: append([]term.Term(nil), r.Head.Args...)}
	body := make([]Literal, len(r.Body))
	copy(body, r.Body)
	return &Rule{Head: head, Body: body}
}

// InvRel is the relationship asserted by an invariant between the answer
// sets of its two domain calls.
type InvRel int

// Invariant relationships: equality of answer sets, or Left ⊇ Right.
const (
	RelEqual InvRel = iota
	RelSuperset
)

func (r InvRel) String() string {
	if r == RelEqual {
		return "="
	}
	return ">="
}

// Invariant is semantic knowledge about a source:
//
//	Condition => Left Rel Right
//
// meaning that whenever Condition holds, answers(Left) Rel answers(Right).
// Invariants are sound but not necessarily complete rewrite rules (§4).
type Invariant struct {
	Cond  []Comparison
	Left  CallTemplate
	Right CallTemplate
	Rel   InvRel
}

// Validate checks the paper's well-formedness conditions on invariants:
// no free variables (every condition variable appears in one of the two
// calls), and conditions restricted to comparisons (guaranteed by the
// type). It returns a descriptive error for the first violation.
func (inv *Invariant) Validate() error {
	inCalls := map[string]bool{}
	for _, v := range inv.Left.Vars(nil) {
		inCalls[v] = true
	}
	for _, v := range inv.Right.Vars(nil) {
		inCalls[v] = true
	}
	for i := range inv.Cond {
		for _, v := range inv.Cond[i].Vars(nil) {
			if !inCalls[v] {
				return fmt.Errorf("invariant %s: condition variable %s appears in neither domain call", inv, v)
			}
		}
	}
	return nil
}

// String renders the invariant.
func (inv *Invariant) String() string {
	var cond string
	if len(inv.Cond) == 0 {
		cond = "true"
	} else {
		parts := make([]string, len(inv.Cond))
		for i := range inv.Cond {
			parts[i] = inv.Cond[i].String()
		}
		cond = strings.Join(parts, " & ")
	}
	return cond + " => " + inv.Left.String() + " " + inv.Rel.String() + " " + inv.Right.String() + "."
}

// Query is a conjunctive query against the mediator.
type Query struct {
	Body []Literal
}

// String renders the query.
func (q *Query) String() string {
	parts := make([]string, len(q.Body))
	for i, l := range q.Body {
		parts[i] = l.String()
	}
	return "?- " + strings.Join(parts, " & ") + "."
}

// Program is a parsed mediator specification: rules plus invariants.
type Program struct {
	Rules      []*Rule
	Invariants []*Invariant
}

// RulesFor returns the rules whose head predicate is pred.
func (p *Program) RulesFor(pred string) []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, inv := range p.Invariants {
		b.WriteString(inv.String())
		b.WriteByte('\n')
	}
	return b.String()
}
