package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// Window is a clock interval [From, To) during which every call fails
// with domain.ErrUnavailable, modelling a site outage.
type Window struct {
	From, To time.Duration
}

// Config tunes the injector. All rates are probabilities in [0, 1],
// evaluated independently per call occurrence.
type Config struct {
	// Seed drives every deterministic pseudo-random decision.
	Seed uint64
	// ErrorRate is the per-attempt probability that a call fails at setup
	// with a retryable error.
	ErrorRate float64
	// FailLatency is charged to the clock on an injected setup failure
	// (a connection that errors still costs a round trip).
	FailLatency time.Duration
	// SpikeRate is the probability a call's setup suffers SpikeLatency of
	// extra delay.
	SpikeRate    float64
	SpikeLatency time.Duration
	// TruncateRate is the probability the answer stream is cut mid-way:
	// after a deterministic prefix, Next returns a retryable error.
	TruncateRate float64
	// Windows schedules unavailability on the execution clock.
	Windows []Window
}

// Event is one injected fault, for determinism assertions.
type Event struct {
	// Seq orders events; Occurrence is the per-key call counter the
	// decision was drawn from.
	Seq        int
	Occurrence int
	Key        string
	// Kind is "error", "spike", "truncate", or "window".
	Kind string
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s[%d] %s", e.Seq, e.Key, e.Occurrence, e.Kind)
}

// Injector is a fault-injecting domain wrapper. It is safe for
// concurrent use.
type Injector struct {
	inner domain.Domain
	cfg   Config

	mu     sync.Mutex
	counts map[string]int
	events []Event
	seq    int
}

// Wrap places d behind the fault injector.
func Wrap(d domain.Domain, cfg Config) *Injector {
	return &Injector{inner: d, cfg: cfg, counts: make(map[string]int)}
}

// Name is transparent, like netsim.Host.
func (i *Injector) Name() string { return i.inner.Name() }

// Functions forwards to the wrapped domain.
func (i *Injector) Functions() []domain.FuncSpec { return i.inner.Functions() }

// Inner returns the wrapped domain.
func (i *Injector) Inner() domain.Domain { return i.inner }

// Events returns the injected-fault log in order.
func (i *Injector) Events() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.events...)
}

// EventLog renders the event log one line per fault, for cross-run
// comparison.
func (i *Injector) EventLog() []string {
	evs := i.Events()
	out := make([]string, len(evs))
	for j, e := range evs {
		out[j] = e.String()
	}
	return out
}

// Reset clears the occurrence counters and the event log (not the seed),
// so a repeated run observes the identical schedule.
func (i *Injector) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts = make(map[string]int)
	i.events = nil
	i.seq = 0
}

// unit returns the deterministic u ∈ [0,1) for one decision.
func (i *Injector) unit(key string, occurrence int, tag string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%s", i.cfg.Seed, key, occurrence, tag)
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

func (i *Injector) record(key string, occurrence int, kind string) {
	i.seq++
	i.events = append(i.events, Event{Seq: i.seq, Occurrence: occurrence, Key: key, Kind: kind})
}

// Call injects scheduled and per-occurrence faults around the wrapped
// domain's call.
func (i *Injector) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	call := domain.Call{Domain: i.inner.Name(), Function: fn, Args: args}
	key := call.Key()
	now := ctx.Clock.Now()

	i.mu.Lock()
	n := i.counts[key]
	i.counts[key]++
	inWindow := false
	for _, w := range i.cfg.Windows {
		if now >= w.From && now < w.To {
			inWindow = true
			break
		}
	}
	if inWindow {
		i.record(key, n, "window")
		i.mu.Unlock()
		ctx.Clock.Sleep(i.cfg.FailLatency)
		return nil, fmt.Errorf("%w: injected outage window at %s", domain.ErrUnavailable, now)
	}
	if i.cfg.ErrorRate > 0 && i.unit(key, n, "error") < i.cfg.ErrorRate {
		i.record(key, n, "error")
		i.mu.Unlock()
		ctx.Clock.Sleep(i.cfg.FailLatency)
		return nil, fmt.Errorf("%w: injected transient error (occurrence %d)", domain.ErrUnavailable, n)
	}
	spike := i.cfg.SpikeRate > 0 && i.unit(key, n, "spike") < i.cfg.SpikeRate
	truncate := i.cfg.TruncateRate > 0 && i.unit(key, n, "truncate") < i.cfg.TruncateRate
	truncAfter := 0
	if spike {
		i.record(key, n, "spike")
	}
	if truncate {
		truncAfter = 1 + int(i.unit(key, n, "truncate-len")*4)
		i.record(key, n, "truncate")
	}
	i.mu.Unlock()

	if spike {
		ctx.Clock.Sleep(i.cfg.SpikeLatency)
	}
	s, err := i.inner.Call(ctx, fn, args)
	if err != nil {
		return nil, err
	}
	if truncate {
		return &truncatedStream{inner: s, remaining: truncAfter, occurrence: n}, nil
	}
	return s, nil
}

// truncatedStream delivers a prefix of the real answers, then fails with
// a retryable error — a connection dropped mid-transfer. The delivered
// prefix consists of true answers, so soundness is preserved; the error
// keeps the truncation from being mistaken for end-of-stream.
type truncatedStream struct {
	inner      domain.Stream
	remaining  int
	occurrence int
}

func (s *truncatedStream) Next() (term.Value, bool, error) {
	if s.remaining <= 0 {
		return nil, false, fmt.Errorf("%w: injected mid-stream truncation (occurrence %d)",
			domain.ErrUnavailable, s.occurrence)
	}
	v, ok, err := s.inner.Next()
	if err != nil || !ok {
		return v, ok, err
	}
	s.remaining--
	return v, true, nil
}

func (s *truncatedStream) Close() error { return s.inner.Close() }
