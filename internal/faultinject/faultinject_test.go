package faultinject

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func tenValues() *domaintest.Domain {
	d := domaintest.New("src")
	d.Define("gen", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			out := make([]term.Value, 10)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	return d
}

// drive runs n calls through an injector, collecting outcome signatures.
func drive(inj *Injector, n int) []string {
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	var out []string
	for i := 0; i < n; i++ {
		s, err := inj.Call(ctx, "gen", nil)
		if err != nil {
			out = append(out, "err:"+err.Error())
			continue
		}
		vals, err := domain.Collect(s)
		if err != nil {
			out = append(out, "trunc:"+err.Error())
			continue
		}
		out = append(out, "ok")
		_ = vals
	}
	return out
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.3, TruncateRate: 0.3, SpikeRate: 0.2, SpikeLatency: time.Second}

	i1 := Wrap(tenValues(), cfg)
	out1 := drive(i1, 20)
	log1 := i1.EventLog()

	i2 := Wrap(tenValues(), cfg)
	out2 := drive(i2, 20)
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("same seed, different outcomes:\n%v\n%v", out1, out2)
	}
	if !reflect.DeepEqual(log1, i2.EventLog()) {
		t.Errorf("same seed, different event logs:\n%v\n%v", log1, i2.EventLog())
	}
	if len(log1) == 0 {
		t.Fatal("no faults injected at 30% rates over 20 calls; schedule is vacuous")
	}

	// Reset replays the identical schedule on the same injector.
	i1.Reset()
	out3 := drive(i1, 20)
	if !reflect.DeepEqual(out1, out3) {
		t.Errorf("Reset did not reproduce the schedule:\n%v\n%v", out1, out3)
	}

	// A different seed must change the schedule.
	i4 := Wrap(tenValues(), Config{Seed: 43, ErrorRate: 0.3, TruncateRate: 0.3, SpikeRate: 0.2, SpikeLatency: time.Second})
	drive(i4, 20)
	if reflect.DeepEqual(log1, i4.EventLog()) {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestInjectorWindow(t *testing.T) {
	inj := Wrap(tenValues(), Config{
		Seed:        1,
		FailLatency: 100 * time.Millisecond,
		Windows:     []Window{{From: time.Second, To: 2 * time.Second}},
	})
	clk := vclock.NewVirtual(0)
	ctx := domain.NewCtx(clk)

	// Before the window: clean.
	if _, err := inj.Call(ctx, "gen", nil); err != nil {
		t.Fatalf("call before window: %v", err)
	}

	// Inside the window: typed unavailable, and the failed dial costs
	// FailLatency.
	clk.Sleep(time.Second - clk.Now() + time.Millisecond)
	before := clk.Now()
	_, err := inj.Call(ctx, "gen", nil)
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Fatalf("call inside window = %v, want ErrUnavailable", err)
	}
	if got := clk.Now() - before; got != 100*time.Millisecond {
		t.Errorf("window failure charged %v, want FailLatency", got)
	}

	// After the window: clean again (To is exclusive).
	clk.Sleep(2*time.Second - clk.Now())
	if _, err := inj.Call(ctx, "gen", nil); err != nil {
		t.Fatalf("call after window: %v", err)
	}

	evs := inj.Events()
	if len(evs) != 1 || evs[0].Kind != "window" {
		t.Errorf("events = %v, want exactly one window event", evs)
	}
}

func TestInjectorTruncationIsPrefix(t *testing.T) {
	inj := Wrap(tenValues(), Config{Seed: 5, TruncateRate: 1})
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	s, err := inj.Call(ctx, "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []term.Value
	var streamErr error
	for {
		v, ok, err := s.Next()
		if err != nil {
			streamErr = err
			break
		}
		if !ok {
			break
		}
		got = append(got, v)
	}
	if !errors.Is(streamErr, domain.ErrUnavailable) {
		t.Fatalf("truncation error = %v, want retryable ErrUnavailable", streamErr)
	}
	if len(got) == 0 || len(got) >= 10 {
		t.Fatalf("truncated stream delivered %d of 10 answers, want a proper prefix", len(got))
	}
	// The prefix consists of true answers in order (soundness).
	for i, v := range got {
		if !term.Equal(v, term.Int(int64(i))) {
			t.Errorf("answer %d = %v, want %v", i, v, term.Int(int64(i)))
		}
	}
}

func TestInjectorTransparent(t *testing.T) {
	src := tenValues()
	inj := Wrap(src, Config{})
	if inj.Name() != "src" {
		t.Errorf("Name = %q", inj.Name())
	}
	if len(inj.Functions()) != 1 {
		t.Errorf("Functions = %v", inj.Functions())
	}
	if inj.Inner() != domain.Domain(src) {
		t.Error("Inner does not return the wrapped domain")
	}
	// Zero config injects nothing.
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	s, err := inj.Call(ctx, "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 10 {
		t.Errorf("passthrough = %d answers, %v", len(vals), err)
	}
	if evs := inj.Events(); len(evs) != 0 {
		t.Errorf("zero config injected %v", evs)
	}
}
