// Package faultinject wraps a domain.Domain with seeded, deterministic
// fault injection: per-call transient errors, latency spikes, mid-stream
// truncation, and scheduled unavailability windows. It is the test
// harness counterpart of internal/resilience — chaos and soak tests wrap
// a source with an Injector and assert that the resilience layer and the
// CIM's cache fallback keep queries sound and live.
//
// Every decision is a pure function of (seed, call key, per-key
// occurrence number), so the same seed and workload produce an identical
// fault schedule on every run; the Injector records an event log that
// tests can compare across runs to prove it.
package faultinject
