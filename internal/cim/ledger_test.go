package cim

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// ledgerFixture: one domain with two functions joined by an equality
// invariant, plus a superset invariant over ranges.
func ledgerFixture(t *testing.T) (*Manager, *domaintest.Domain, *obs.Observer) {
	t.Helper()
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 200 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("x", "y"), nil }})
	d.Define("g", domaintest.Func{Arity: 1, PerCall: 150 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("x", "y"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	o := obs.NewObserver()
	m.SetObserver(o)
	inv, err := lang.ParseInvariant("true => d:f(A) = d:g(A).")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(inv); err != nil {
		t.Fatal(err)
	}
	return m, d, o
}

func TestLedgerExactAndEqualityHits(t *testing.T) {
	m, d, o := ledgerFixture(t)
	a := term.Str("a")

	// Miss (no credit), then an exact hit and an equality hit.
	drain(t, mustCall(t, m, call("d", "f", a)))
	drain(t, mustCall(t, m, call("d", "f", a)))
	drain(t, mustCall(t, m, call("d", "g", a)))
	if n := d.CallCount("f") + d.CallCount("g"); n != 1 {
		t.Fatalf("source calls = %d, want 1", n)
	}

	led := m.Ledger()
	if led.Total <= 0 {
		t.Fatal("no savings recorded")
	}
	rows := map[string]LedgerRow{}
	for _, r := range led.Invariants {
		rows[r.Key] = r
	}
	exact, ok := rows[ExactKey]
	if !ok || exact.Hits != 1 || exact.Saved <= 0 {
		t.Errorf("exact row = %+v", exact)
	}
	invKey := "true => d:f(A) = d:g(A)."
	eq, ok := rows[invKey]
	if !ok || eq.Hits != 1 || eq.Saved <= 0 {
		t.Errorf("equality row = %+v (rows %v)", eq, rows)
	}
	// Per-invariant savings sum to the total, as do per-entry savings.
	var invSum, entSum time.Duration
	for _, r := range led.Invariants {
		invSum += r.Saved
	}
	for _, r := range led.Entries {
		entSum += r.Saved
	}
	if invSum != led.Total || entSum != led.Total {
		t.Errorf("sums: invariants %v, entries %v, total %v", invSum, entSum, led.Total)
	}
	// Both hits served from the same cached entry.
	if len(led.Entries) != 1 || led.Entries[0].Hits != 2 {
		t.Errorf("entry rows = %+v", led.Entries)
	}

	// No cost model installed: avoided cost falls back to the entry's
	// observed source cost, so each hit saves at least the 200ms PerCall.
	if exact.Saved < 200*time.Millisecond {
		t.Errorf("exact saved %v, want >= 200ms (observed source cost)", exact.Saved)
	}

	// Metrics: saved-ms counter and the per-invariant hit counter.
	if v := o.Metrics.Counter("hermes_cim_saved_ms_total").Value(); v < 400 {
		t.Errorf("hermes_cim_saved_ms_total = %d, want >= 400", v)
	}
	if v := o.Metrics.Counter("hermes_cim_invariant_hits_total", "invariant", invKey).Value(); v != 1 {
		t.Errorf("hermes_cim_invariant_hits_total = %d, want 1", v)
	}
}

func TestLedgerUsesCostModel(t *testing.T) {
	m, _, _ := ledgerFixture(t)
	m.SetCostModel(func(p domain.Pattern) (domain.CostVector, bool) {
		return domain.CostVector{TAll: 5 * time.Second, Card: 2}, true
	})
	a := term.Str("a")
	drain(t, mustCall(t, m, call("d", "f", a)))
	drain(t, mustCall(t, m, call("d", "f", a)))
	led := m.Ledger()
	if led.Total != 5*time.Second {
		t.Errorf("total = %v, want the cost model's 5s", led.Total)
	}
}

func TestLedgerPartialAndDegradedCountHitsOnly(t *testing.T) {
	d := domaintest.New("avis")
	d.Define("frames_to_objects", domaintest.Func{Arity: 3, PerCall: 100 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("o1", "o2"), nil }})
	src := &downable{Domain: d}
	reg := domain.NewRegistry()
	reg.Register(src)
	m := New(reg, testCfg())
	inv, err := lang.ParseInvariant(
		"F1 <= G1 & G2 <= F2 => avis:frames_to_objects(F1, F2, O) >= avis:frames_to_objects(G1, G2, O).")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(inv); err != nil {
		t.Fatal(err)
	}

	// Prime a narrow range, then hit a wider one: partial hit, actual
	// call still runs, so hits are counted but nothing is "saved".
	drain(t, mustCall(t, m, call("avis", "frames_to_objects", term.Int(10), term.Int(20), term.Str("v"))))
	resp := mustCall(t, m, call("avis", "frames_to_objects", term.Int(0), term.Int(90), term.Str("v")))
	if resp.Source != SourceCachePartial {
		t.Fatalf("source = %v, want partial", resp.Source)
	}
	drain(t, resp)
	led := m.Ledger()
	if led.Total != 0 {
		t.Errorf("partial hit credited savings: %v", led.Total)
	}
	if len(led.Invariants) != 1 || led.Invariants[0].Hits != 1 || led.Invariants[0].Key != inv.String() {
		t.Errorf("invariant rows = %+v", led.Invariants)
	}

	// Source down: a degraded serve (cache-only, no working source to
	// avoid) counts a hit, still no savings.
	drain(t, mustCall(t, m, call("avis", "frames_to_objects", term.Int(30), term.Int(40), term.Str("v"))))
	src.down = true
	resp2, ok := m.Degrade(newCtx(), call("avis", "frames_to_objects", term.Int(30), term.Int(40), term.Str("v")))
	if !ok || resp2.Source != SourceCacheDegraded {
		t.Fatalf("degrade = %v, ok=%v", resp2, ok)
	}
	drain(t, resp2)
	led = m.Ledger()
	if led.Total != 0 {
		t.Errorf("degraded serve credited savings: %v", led.Total)
	}
	var hits int64
	for _, r := range led.Invariants {
		hits += r.Hits
	}
	if hits != 2 {
		t.Errorf("credited hits = %d, want 2 (one partial, one degraded)", hits)
	}
}

func TestLedgerDebugHandler(t *testing.T) {
	m, _, _ := ledgerFixture(t)
	a := term.Str("a")
	drain(t, mustCall(t, m, call("d", "f", a)))
	drain(t, mustCall(t, m, call("d", "g", a)))

	rr := httptest.NewRecorder()
	m.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cim", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"CIM savings ledger",
		"top invariants by avoided cost:",
		"true => d:f(A) = d:g(A).",
		"top cache entries by avoided cost:",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/cim missing %q:\n%s", want, body)
		}
	}
}

// TestLedgerNilObserver: crediting with no observer installed must not
// panic and still maintain the ledger (metrics off, accounting on).
func TestLedgerNilObserver(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 50 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("x"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	a := term.Str("a")
	drain(t, mustCall(t, m, call("d", "f", a)))
	drain(t, mustCall(t, m, call("d", "f", a)))
	if led := m.Ledger(); led.Total <= 0 || len(led.Invariants) != 1 {
		t.Errorf("ledger without observer = %+v", led)
	}
}

func mustCall(t *testing.T, m *Manager, c domain.Call) *Response {
	t.Helper()
	resp, err := m.CallThrough(newCtx(), c)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
