package cim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/term"
)

// gateDomain blocks every source call on a release channel so the test
// controls exactly when the in-flight call completes.
type gateDomain struct {
	name    string
	started chan struct{} // signalled when a call reaches the source
	release chan struct{} // closed to let blocked calls return
	calls   atomic.Int64
}

func (g *gateDomain) Name() string { return g.name }

func (g *gateDomain) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{{Name: "slow", Arity: 1}, {Name: "slow2", Arity: 1}}
}

func (g *gateDomain) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	g.calls.Add(1)
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.release
	return domain.NewSliceStream(strs("x", "y", "z")), nil
}

// waitReaders polls until the flight for key has at least n attached
// readers (leader included).
func waitReaders(t *testing.T, m *Manager, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.flightMu.Lock()
		r := 0
		if f := m.flights[key]; f != nil {
			f.mu.Lock()
			r = f.readers
			f.mu.Unlock()
		}
		m.flightMu.Unlock()
		if r >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight %q has %d readers, want >= %d", key, r, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSingleFlightConcurrentIdenticalCalls(t *testing.T) {
	g := &gateDomain{name: "g", started: make(chan struct{}, 1), release: make(chan struct{})}
	reg := domain.NewRegistry()
	reg.Register(g)
	m := New(reg, testCfg())

	const n = 8
	c := call("g", "slow", term.Str("a"))
	type result struct {
		vals []term.Value
		err  error
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := m.CallThrough(newCtx(), c)
			if err != nil {
				results <- result{err: err}
				return
			}
			vals, err := domain.Collect(resp.Stream)
			results <- result{vals: vals, err: err}
		}()
	}

	<-g.started // the leader reached the source
	// Wait for all n callers to attach to the one flight, then let the
	// source answer.
	waitReaders(t, m, c.Key(), n)
	close(g.release)
	wg.Wait()
	close(results)

	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.vals) != 3 {
			t.Fatalf("answers = %v, want 3 values", r.vals)
		}
		for i, want := range []string{"x", "y", "z"} {
			if r.vals[i].Key() != term.Str(want).Key() {
				t.Fatalf("answers = %v, want [x y z]", r.vals)
			}
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("source called %d times, want 1", got)
	}
	if st := m.Stats(); st.SingleFlightShares != n-1 {
		t.Errorf("SingleFlightShares = %d, want %d", st.SingleFlightShares, n-1)
	}
	// The one measured call was cached; a later identical call is an exact
	// hit.
	resp, err := m.CallThrough(newCtx(), c)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceCacheExact {
		t.Errorf("post-flight call source = %v, want exact hit", resp.Source)
	}
	if got := drain(t, resp); len(got) != 3 {
		t.Fatalf("cached answers = %v", got)
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("source called %d times after cache hit, want 1", got)
	}
}

func TestSingleFlightEqualityEquivalentCalls(t *testing.T) {
	g := &gateDomain{name: "g", started: make(chan struct{}, 1), release: make(chan struct{})}
	reg := domain.NewRegistry()
	reg.Register(g)
	m := New(reg, testCfg())
	inv, err := lang.ParseInvariant("true => g:slow(V) = g:slow2(V).")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(inv); err != nil {
		t.Fatal(err)
	}

	leaderCall := call("g", "slow", term.Str("a"))
	joinerCall := call("g", "slow2", term.Str("a"))

	type result struct {
		vals []term.Value
		err  error
	}
	results := make(chan result, 2)
	run := func(c domain.Call) {
		resp, err := m.CallThrough(newCtx(), c)
		if err != nil {
			results <- result{err: err}
			return
		}
		vals, err := domain.Collect(resp.Stream)
		results <- result{vals: vals, err: err}
	}
	go run(leaderCall)
	<-g.started // slow('a') is in flight
	go run(joinerCall)
	// The joiner attaches to the slow('a') flight via the equality
	// invariant: its key never appears in the flight index.
	waitReaders(t, m, leaderCall.Key(), 2)
	close(g.release)

	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.vals) != 3 {
			t.Fatalf("answers = %v, want 3 values", r.vals)
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("source called %d times, want 1", got)
	}
	if st := m.Stats(); st.SingleFlightShares != 1 {
		t.Errorf("SingleFlightShares = %d, want 1", st.SingleFlightShares)
	}
}
