package cim

import (
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// testCfg has zero serve costs so timing assertions are about source costs
// only, except where a test overrides it.
func testCfg() Config {
	return Config{ParallelActual: true, FallbackOnUnavailable: true}
}

func newCtx() *domain.Ctx { return domain.NewCtx(vclock.NewVirtual(0)) }

func call(dom, fn string, args ...term.Value) domain.Call {
	return domain.Call{Domain: dom, Function: fn, Args: args}
}

func drain(t *testing.T, resp *Response) []term.Value {
	t.Helper()
	vals, err := domain.Collect(resp.Stream)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return vals
}

func strs(ss ...string) []term.Value {
	out := make([]term.Value, len(ss))
	for i, s := range ss {
		out[i] = term.Str(s)
	}
	return out
}

func TestMissThenExactHit(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 100 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("x", "y"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())

	ctx := newCtx()
	resp, err := m.CallThrough(ctx, call("d", "f", term.Str("a")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceActual {
		t.Errorf("first call source = %v", resp.Source)
	}
	if got := drain(t, resp); len(got) != 2 {
		t.Fatalf("answers = %v", got)
	}
	// Second call: exact hit, no source invocation.
	resp2, err := m.CallThrough(newCtx(), call("d", "f", term.Str("a")))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Source != SourceCacheExact {
		t.Errorf("second call source = %v", resp2.Source)
	}
	if got := drain(t, resp2); len(got) != 2 {
		t.Fatalf("cached answers = %v", got)
	}
	if n := d.CallCount("f"); n != 1 {
		t.Errorf("source called %d times, want 1", n)
	}
	st := m.Stats()
	if st.Misses != 1 || st.ExactHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSpatialEqualityInvariant reproduces the paper's §4 example: all
// points lie within a 100x100 square, so any range query wider than 142 is
// equivalent to the clamped query with distance 142.
func TestSpatialEqualityInvariant(t *testing.T) {
	d := domaintest.New("spatial")
	d.Define("range", domaintest.Func{Arity: 4, PerCall: 50 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			// Pretend the clamped query returns these points.
			return strs("p1", "p2", "p3"), nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	inv, err := lang.ParseInvariant(
		"Dist > 142 => spatial:range('map1', X, Y, Dist) = spatial:range('map1', X, Y, 142).")
	if err != nil {
		t.Fatal(err)
	}
	m.AddInvariant(inv)

	// Prime the cache with the clamped call.
	resp, err := m.CallThrough(newCtx(), call("spatial", "range",
		term.Str("map1"), term.Int(10), term.Int(20), term.Int(142)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)

	// A much wider query is served from cache via the equality invariant.
	resp2, err := m.CallThrough(newCtx(), call("spatial", "range",
		term.Str("map1"), term.Int(10), term.Int(20), term.Int(500)))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Source != SourceCacheEquality {
		t.Fatalf("source = %v, want equality hit", resp2.Source)
	}
	if got := drain(t, resp2); len(got) != 3 {
		t.Errorf("answers = %v", got)
	}
	if n := d.CallCount("range"); n != 1 {
		t.Errorf("source called %d times, want 1", n)
	}
	// The condition guards soundness: distance 100 (not > 142) must not
	// reuse the cached call.
	resp3, err := m.CallThrough(newCtx(), call("spatial", "range",
		term.Str("map1"), term.Int(10), term.Int(20), term.Int(100)))
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Source != SourceActual {
		t.Errorf("condition violation: source = %v, want actual", resp3.Source)
	}
	drain(t, resp3)
}

// TestSelectLtSupersetInvariant reproduces the paper's §4 subset example:
// select_lt with a smaller bound is contained in select_lt with a larger
// one, so cached answers of the smaller call are a fast partial answer.
func TestSelectLtSupersetInvariant(t *testing.T) {
	full := strs("r1", "r2", "r3", "r4", "r5")
	d := domaintest.New("relation")
	d.Define("select_lt", domaintest.Func{Arity: 3, PerCall: 200 * time.Millisecond, PerAnswer: 10 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			bound, _ := term.Numeric(args[2])
			if bound <= 10 {
				return full[:2], nil
			}
			return full, nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	inv, err := lang.ParseInvariant(
		"V1 <= V2 => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1).")
	if err != nil {
		t.Fatal(err)
	}
	m.AddInvariant(inv)

	// Prime with the narrow call (bound 10: 2 answers).
	resp, err := m.CallThrough(newCtx(), call("relation", "select_lt",
		term.Str("emp"), term.Str("age"), term.Int(10)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)

	// The wide call (bound 50) gets the cached 2 answers first, then the
	// actual call's remaining answers, deduplicated.
	resp2, err := m.CallThrough(newCtx(), call("relation", "select_lt",
		term.Str("emp"), term.Str("age"), term.Int(50)))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Source != SourceCachePartial {
		t.Fatalf("source = %v, want partial hit", resp2.Source)
	}
	if resp2.CachedAnswers != 2 {
		t.Errorf("cached answers = %d, want 2", resp2.CachedAnswers)
	}
	got := drain(t, resp2)
	if len(got) != 5 {
		t.Fatalf("merged answers = %d (%v), want 5 without duplicates", len(got), got)
	}
	seen := map[string]bool{}
	for _, v := range got {
		if seen[v.Key()] {
			t.Errorf("duplicate answer %v", v)
		}
		seen[v.Key()] = true
	}
	// The reverse direction is unsound and must not fire: a narrow call
	// must not be served from a cached wide call.
	m.Clear()
	resp3, err := m.CallThrough(newCtx(), call("relation", "select_lt",
		term.Str("emp"), term.Str("age"), term.Int(50)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp3)
	resp4, err := m.CallThrough(newCtx(), call("relation", "select_lt",
		term.Str("emp"), term.Str("age"), term.Int(10)))
	if err != nil {
		t.Fatal(err)
	}
	if resp4.Source == SourceCachePartial || resp4.Source == SourceCacheEquality {
		t.Errorf("unsound reuse: narrow call served from wide cache (%v)", resp4.Source)
	}
	drain(t, resp4)
}

// TestPartialLazyActualCall verifies §4.1's interactive behaviour: if the
// consumer stops within the cached partial answers, the actual source call
// is never issued.
func TestPartialLazyActualCall(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			n, _ := term.Numeric(args[0])
			if n <= 1 {
				return strs("a"), nil
			}
			return strs("a", "b", "c"), nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	inv, _ := lang.ParseInvariant("V1 <= V2 => d:f(V2) >= d:f(V1).")
	m.AddInvariant(inv)

	resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)
	if n := d.CallCount("f"); n != 1 {
		t.Fatalf("prime calls = %d", n)
	}

	resp2, err := m.CallThrough(newCtx(), call("d", "f", term.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Source != SourceCachePartial {
		t.Fatalf("source = %v", resp2.Source)
	}
	// Pull only the first (cached) answer, then close.
	v, ok, err := resp2.Stream.Next()
	if err != nil || !ok || !term.Equal(v, term.Str("a")) {
		t.Fatalf("first partial answer = %v %v %v", v, ok, err)
	}
	resp2.Stream.Close()
	if n := d.CallCount("f"); n != 1 {
		t.Errorf("actual call was issued despite early stop: calls = %d", n)
	}
}

// TestParallelActualOverlapsCachedServe checks the clock accounting of the
// parallel strategy: total time is max(cached serve, actual call), not the
// sum.
func TestParallelActualOverlapsCachedServe(t *testing.T) {
	mkManager := func(parallel bool) (*Manager, *domain.Ctx) {
		d := domaintest.New("d")
		d.Define("f", domaintest.Func{Arity: 1, PerCall: 1000 * time.Millisecond,
			Fn: func(args []term.Value) ([]term.Value, error) {
				n, _ := term.Numeric(args[0])
				if n <= 1 {
					return strs("a", "b"), nil
				}
				return strs("a", "b", "c"), nil
			}})
		reg := domain.NewRegistry()
		reg.Register(d)
		cfg := testCfg()
		cfg.PerAnswer = 300 * time.Millisecond
		cfg.ParallelActual = parallel
		m := New(reg, cfg)
		inv, _ := lang.ParseInvariant("V1 <= V2 => d:f(V2) >= d:f(V1).")
		m.AddInvariant(inv)
		// Prime.
		resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
		if err != nil {
			t.Fatal(err)
		}
		domain.Collect(resp.Stream)
		return m, newCtx()
	}

	m1, ctx1 := mkManager(true)
	resp, err := m1.CallThrough(ctx1, call("d", "f", term.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	domain.Collect(resp.Stream)
	parallelTime := ctx1.Clock.Now()

	m2, ctx2 := mkManager(false)
	resp, err = m2.CallThrough(ctx2, call("d", "f", term.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	domain.Collect(resp.Stream)
	serialTime := ctx2.Clock.Now()

	if parallelTime >= serialTime {
		t.Errorf("parallel (%v) should beat serial (%v)", parallelTime, serialTime)
	}
	// Parallel: cached serve (2x300ms) overlaps the 1s actual call; total
	// should be close to the actual call cost, well under the serial sum.
	if parallelTime > 1500*time.Millisecond {
		t.Errorf("parallel time = %v, want ≈1s", parallelTime)
	}
}

func TestUnavailableFallbackServesPartial(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			n, _ := term.Numeric(args[0])
			if n <= 1 {
				return strs("a"), nil
			}
			return nil, domain.ErrUnavailable
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	inv, _ := lang.ParseInvariant("V1 <= V2 => d:f(V2) >= d:f(V1).")
	m.AddInvariant(inv)
	resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)

	// The wide call's actual execution is unavailable: cached partial
	// answers are served and the stream ends cleanly.
	resp2, err := m.CallThrough(newCtx(), call("d", "f", term.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := domain.Collect(resp2.Stream)
	if err != nil {
		t.Fatalf("fallback should not error: %v", err)
	}
	if len(got) != 1 || !term.Equal(got[0], term.Str("a")) {
		t.Errorf("fallback answers = %v", got)
	}
	if st := m.Stats(); st.UnavailableFallbacks != 1 {
		t.Errorf("stats = %+v", st)
	}

	// With fallback disabled, the error propagates.
	cfg := testCfg()
	cfg.FallbackOnUnavailable = false
	m2 := New(reg, cfg)
	m2.AddInvariant(inv)
	resp, err = m2.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)
	resp3, err := m2.CallThrough(newCtx(), call("d", "f", term.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := domain.Collect(resp3.Stream); err == nil {
		t.Error("expected unavailability error with fallback disabled")
	}
}

func TestEvictionLRU(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("v"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	cfg := testCfg()
	cfg.MaxEntries = 2
	m := New(reg, cfg)
	for i := 0; i < 3; i++ {
		resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
	}
	if m.Len() != 2 {
		t.Fatalf("entries = %d, want 2", m.Len())
	}
	if _, ok := m.Lookup(call("d", "f", term.Int(0))); ok {
		t.Error("oldest entry should have been evicted")
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestEvictionCostWeightedKeepsExpensive(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("v"), nil },
	})
	d.Define("slow", domaintest.Func{Arity: 1, PerCall: 10 * time.Second,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("v"), nil },
	})
	reg := domain.NewRegistry()
	reg.Register(d)
	cfg := testCfg()
	cfg.MaxEntries = 2
	cfg.Policy = EvictCostWeighted
	m := New(reg, cfg)
	// Expensive entry first, then two cheap ones.
	resp, _ := m.CallThrough(newCtx(), call("d", "slow", term.Int(0)))
	drain(t, resp)
	resp, _ = m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	drain(t, resp)
	resp, _ = m.CallThrough(newCtx(), call("d", "f", term.Int(2)))
	drain(t, resp)
	if _, ok := m.Lookup(call("d", "slow", term.Int(0))); !ok {
		t.Error("cost-weighted policy should keep the expensive entry")
	}
}

func TestEvictionByBytes(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return strs("0123456789"), nil // 10 bytes per entry
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	cfg := testCfg()
	cfg.MaxBytes = 25
	m := New(reg, cfg)
	for i := 0; i < 4; i++ {
		resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
	}
	if m.Bytes() > 25 {
		t.Errorf("cache bytes = %d, over budget 25", m.Bytes())
	}
}

func TestServeCostsChargeClock(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("a", "b", "c"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	cfg := Config{LookupCost: 40 * time.Millisecond, PerAnswer: 90 * time.Millisecond, ParallelActual: true}
	m := New(reg, cfg)
	resp, _ := m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	drain(t, resp)

	ctx := newCtx()
	resp2, err := m.CallThrough(ctx, call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp2)
	want := 40*time.Millisecond + 3*90*time.Millisecond
	if got := ctx.Clock.Now(); got != want {
		t.Errorf("cache serve time = %v, want %v", got, want)
	}
}

func TestProbe(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("a", "b"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	inv, _ := lang.ParseInvariant("V1 <= V2 => d:f(V2) >= d:f(V1).")
	m.AddInvariant(inv)

	if src, _ := m.Probe(call("d", "f", term.Int(1))); src != SourceActual {
		t.Errorf("cold probe = %v", src)
	}
	resp, _ := m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	drain(t, resp)
	if src, n := m.Probe(call("d", "f", term.Int(1))); src != SourceCacheExact || n != 2 {
		t.Errorf("probe after store = %v %d", src, n)
	}
	if src, n := m.Probe(call("d", "f", term.Int(5))); src != SourceCachePartial || n != 2 {
		t.Errorf("partial probe = %v %d", src, n)
	}
	// Probe must not mutate stats or issue calls.
	if st := m.Stats(); st.ExactHits != 0 {
		t.Errorf("probe mutated stats: %+v", st)
	}
	if n := d.CallCount("f"); n != 1 {
		t.Errorf("probe issued source calls: %d", n)
	}
}

func TestCIMAsDomainDecoding(t *testing.T) {
	d := domaintest.New("avis")
	d.Define("objects", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("rope", "chest"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	fn := EncodeFunction("avis", "objects")
	if fn != "avis__objects" {
		t.Errorf("encoded = %q", fn)
	}
	s, err := m.Call(newCtx(), fn, []term.Value{term.Str("rope")})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 2 {
		t.Errorf("vals = %v, %v", vals, err)
	}
	if _, err := m.Call(newCtx(), "badname", nil); err == nil {
		t.Error("undecodable function should error")
	}
	if m.Name() != "cim" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestIncompleteEntryServesAsPartial(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("a", "b", "c"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	// First call: pull one answer then close -> incomplete entry stored.
	resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Stream.Next()
	resp.Stream.Close()
	e, ok := m.Lookup(call("d", "f", term.Int(1)))
	if !ok || e.Complete {
		t.Fatalf("expected incomplete cached entry, got %+v ok=%v", e, ok)
	}
	// Second call: incomplete entry serves as partial; full answers arrive.
	resp2, err := m.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Source != SourceCachePartial {
		t.Fatalf("source = %v", resp2.Source)
	}
	got := drain(t, resp2)
	if len(got) != 3 {
		t.Errorf("answers = %v, want 3", got)
	}
	// And now the entry is complete.
	if e, _ := m.Lookup(call("d", "f", term.Int(1))); !e.Complete {
		t.Error("entry should be complete after full drain")
	}
}

// TestInvariantConditionOnRecordAttribute: conditions may select into
// record-valued call arguments (V.attr comparisons).
func TestInvariantConditionOnRecordAttribute(t *testing.T) {
	d := domaintest.New("d")
	d.Define("q", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) { return strs("r1", "r2"), nil }})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	// Query descriptors are records; two queries are equivalent when their
	// limit field exceeds 100 (both saturate).
	inv, err := lang.ParseInvariant("Q1.limit > 100 & Q2.limit > 100 => d:q(Q1) = d:q(Q2).")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(inv); err != nil {
		t.Fatal(err)
	}
	desc := func(limit int64) term.Value {
		return term.NewRecord(
			term.Field{Name: "kind", Val: term.Str("scan")},
			term.Field{Name: "limit", Val: term.Int(limit)},
		)
	}
	resp, err := m.CallThrough(newCtx(), call("d", "q", desc(150)))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)
	// A different saturating descriptor is served via the invariant.
	resp2, err := m.CallThrough(newCtx(), call("d", "q", desc(999)))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Source != SourceCacheEquality {
		t.Errorf("source = %v, want equality via record-path condition", resp2.Source)
	}
	drain(t, resp2)
	// A non-saturating descriptor must not reuse.
	resp3, err := m.CallThrough(newCtx(), call("d", "q", desc(10)))
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Source != SourceActual {
		t.Errorf("source = %v, want actual", resp3.Source)
	}
	drain(t, resp3)
}

func TestStoreAndClear(t *testing.T) {
	reg := domain.NewRegistry()
	m := New(reg, testCfg())
	m.Store(call("d", "f", term.Int(1)), strs("a"), true, domain.CostVector{})
	if m.Len() != 1 || m.Bytes() != 1 {
		t.Errorf("len=%d bytes=%d", m.Len(), m.Bytes())
	}
	m.Clear()
	if m.Len() != 0 || m.Bytes() != 0 {
		t.Errorf("after clear: len=%d bytes=%d", m.Len(), m.Bytes())
	}
}
