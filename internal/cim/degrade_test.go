package cim

import (
	"errors"
	"fmt"
	"testing"

	"hermes/internal/domain"
	"hermes/internal/domains/avis"
	"hermes/internal/lang"
	"hermes/internal/term"
	"hermes/internal/workload"
)

// downable is a domain whose availability the test toggles: while down,
// every call fails with the retryable domain.ErrUnavailable — the shape
// the resilience wrapper presents to the CIM when a source is out.
type downable struct {
	domain.Domain
	down bool
}

func (d *downable) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	if d.down {
		// Mimic the resilience layer's multi-wrapped chains: ErrUnavailable
		// buried under other wrapping, as errors.Is (not ==) must find it.
		return nil, fmt.Errorf("retries exhausted: %w",
			fmt.Errorf("%w: source offline", domain.ErrUnavailable))
	}
	return d.Domain.Call(ctx, fn, args)
}

// TestDegradedAnswersAreSoundSubset is the degradation counterpart of
// TestSoundnessOverRandomStream: over a random call stream with the
// source flapping, every cache-degraded response must be a subset of the
// source's true answer set — stale/partial is allowed, wrong is not.
func TestDegradedAnswersAreSoundSubset(t *testing.T) {
	store := avis.New("avis")
	avis.LoadRope(store)

	// Twin registry over the raw store supplies ground truth even while
	// the mediated source is down.
	truthReg := domain.NewRegistry()
	truthReg.Register(store)

	src := &downable{Domain: store}
	reg := domain.NewRegistry()
	reg.Register(src)

	m := New(reg, testCfg())
	for _, isrc := range []string{
		"true => avis:frames_to_objects(V, F, L) = avis:objects_in_range(V, F, L).",
		"F1 <= G1 & G2 <= F2 => avis:frames_to_objects(V, F1, F2) >= avis:frames_to_objects(V, G1, G2).",
	} {
		inv, err := lang.ParseInvariant(isrc)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddInvariant(inv); err != nil {
			t.Fatal(err)
		}
	}

	asSet := func(vals []term.Value) map[string]bool {
		out := make(map[string]bool, len(vals))
		for _, v := range vals {
			out[v.Key()] = true
		}
		return out
	}

	stream := workload.FrameRanges(workload.DefaultFrameRanges(200))
	degraded := 0
	for i, c := range stream {
		// The source flaps: down for the second quarter and the last fifth
		// of the stream.
		src.down = (i >= 50 && i < 100) || i >= 160

		ds, err := truthReg.Call(newCtx(), c)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := domain.Collect(ds)
		if err != nil {
			t.Fatal(err)
		}
		truth := asSet(direct)

		resp, err := m.CallThrough(newCtx(), c)
		if err != nil {
			// Nothing cached to degrade to: the only acceptable failure,
			// and it must stay typed retryable.
			if !src.down || !errors.Is(err, domain.ErrUnavailable) {
				t.Fatalf("call %d (%s): %v", i, c, err)
			}
			continue
		}
		got, err := domain.Collect(resp.Stream)
		if err != nil {
			t.Fatalf("call %d (%s, served by %v): drain: %v", i, c, resp.Source, err)
		}
		have := asSet(got)

		// Soundness: never a tuple outside the true answer set, degraded
		// or not.
		for k := range have {
			if !truth[k] {
				t.Fatalf("call %d (%s, served by %v, degraded=%v): unsound answer %s",
					i, c, resp.Source, resp.Degraded, k)
			}
		}
		if resp.Degraded {
			degraded++
			// Either served wholly from cache, or a partial hit whose
			// completion call fell back mid-stream.
			if resp.Source != SourceCacheDegraded && resp.Source != SourceCachePartial {
				t.Errorf("call %d: Degraded response with source %v", i, resp.Source)
			}
		} else if len(have) != len(truth) {
			// Non-degraded responses keep the original completeness
			// guarantee.
			t.Fatalf("call %d (%s, served by %v): %d answers, source gives %d",
				i, c, resp.Source, len(have), len(truth))
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded serves over a flapping source; property vacuous")
	}
	st := m.Stats()
	if st.DegradedServes == 0 || st.UnavailableFallbacks == 0 {
		t.Errorf("degradation not counted: %+v", st)
	}
}

// TestDegradeServesIncompleteEntrySubset: an entry cut short mid-fill
// (incomplete) may still be served degraded — and stays a sound subset.
func TestDegradeServesIncompleteEntrySubset(t *testing.T) {
	store := avis.New("avis")
	avis.LoadRope(store)
	truthReg := domain.NewRegistry()
	truthReg.Register(store)

	src := &downable{Domain: store}
	reg := domain.NewRegistry()
	reg.Register(src)
	m := New(reg, testCfg())

	c := call("avis", "frames_to_objects", term.Str("rope"), term.Int(0), term.Int(200))

	// Fill the cache partially: pull a few answers, then close early.
	resp, err := m.CallThrough(newCtx(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := resp.Stream.Next(); !ok || err != nil {
			t.Fatalf("prefix pull %d: %v %v", i, ok, err)
		}
	}
	resp.Stream.Close()

	src.down = true
	resp2, err := m.CallThrough(newCtx(), c)
	if err != nil {
		t.Fatalf("expected degraded serve from incomplete entry, got %v", err)
	}
	got, err := domain.Collect(resp2.Stream)
	if err != nil {
		t.Fatal(err)
	}
	// The incomplete entry serves as a partial hit whose completion call
	// fails; by drain time the response must be flagged degraded.
	if !resp2.Degraded {
		t.Fatalf("response = %+v, want degraded cache serve", resp2)
	}
	ds, err := truthReg.Call(newCtx(), c)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := domain.Collect(ds)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]bool{}
	for _, v := range direct {
		truth[v.Key()] = true
	}
	if len(got) == 0 || len(got) >= len(direct) {
		t.Fatalf("degraded serve returned %d of %d answers, want a proper subset", len(got), len(direct))
	}
	for _, v := range got {
		if !truth[v.Key()] {
			t.Fatalf("unsound degraded answer %s", v)
		}
	}
}
