package cim

import (
	"strconv"
	"sync"

	"hermes/internal/domain"
	"hermes/internal/invindex"
	"hermes/internal/lang"
	"hermes/internal/term"
)

// unifyTemplate matches a call template against a ground call, extending
// the substitution. It fails unless domain, function and arity match and
// every argument unifies.
func unifyTemplate(s term.Subst, t *lang.CallTemplate, c domain.Call) (term.Subst, bool) {
	if t.Domain != c.Domain || t.Function != c.Function || len(t.Args) != len(c.Args) {
		return nil, false
	}
	return s.UnifyAll(t.Args, c.Args)
}

// groundTemplate instantiates a call template under a substitution,
// reporting ok=false if any argument remains unbound.
func groundTemplate(t *lang.CallTemplate, s term.Subst) (domain.Call, bool) {
	args := make([]term.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := s.Eval(a)
		if err != nil {
			return domain.Call{}, false
		}
		args[i] = v
	}
	return domain.Call{Domain: t.Domain, Function: t.Function, Args: args}, true
}

// condHolds evaluates an invariant condition under a substitution. A
// condition that cannot be evaluated (unbound variable, incomparable
// values) does not hold: invariants are only applied when their
// applicability is certain, keeping reuse sound.
func condHolds(cond []lang.Comparison, s term.Subst) bool {
	for i := range cond {
		ok, err := cond[i].Holds(s)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// findCandidates finds cache entries that `other` (under θ extending
// the unification of our call with `mine`) matches, with the condition
// holding. If `other` is ground under θ this is a direct probe; otherwise
// the cached calls of the other side's function are scanned (charged per
// entry examined) — by-function via the call index, or over a whole store
// snapshot on the LinearMatching debug path. No shard lock is held while
// the clock is charged. requireComplete restricts to complete entries.
func (m *Manager) findCandidates(ctx *domain.Ctx, theta term.Subst, cond []lang.Comparison, other *lang.CallTemplate, requireComplete bool) []*Entry {
	// Fast path: other side fully determined by our call's bindings.
	if oc, ok := groundTemplate(other, theta); ok {
		if !condHolds(cond, theta) {
			return nil
		}
		ctx.Clock.Sleep(m.cfg.LookupCost)
		if e, found := m.store.get(oc.Key()); found && (e.Complete || !requireComplete) {
			return []*Entry{e}
		}
		return nil
	}
	// Slow path: scan cached calls to the other side's domain:function.
	var out []*Entry
	scan := func(e *Entry) {
		ctx.Clock.Sleep(m.cfg.ScanPerEntry)
		theta2, ok := unifyTemplate(theta, other, e.Call)
		if !ok || !condHolds(cond, theta2) {
			return
		}
		if requireComplete && !e.Complete {
			return
		}
		out = append(out, e)
	}
	if m.cfg.LinearMatching {
		m.linearScans.Add(1)
		for _, e := range m.store.snapshot() {
			if e.Call.Domain != other.Domain || e.Call.Function != other.Function {
				continue
			}
			scan(e)
		}
		return out
	}
	for _, ck := range m.idx.CallKeys(other.Domain, other.Function) {
		e, ok := m.store.get(ck)
		if !ok {
			continue // evicted since the bucket copy; the scan never saw it
		}
		scan(e)
	}
	return out
}

// relevant reports whether a template could match the call at all (same
// domain, function and arity). Irrelevant invariants are skipped by a
// cheap dispatch check, which is why the paper found the overhead of
// checking the cache and invariants without success to be negligible.
// On the indexed path this check is the bucket key: a bucket holds
// exactly the relevant invariants, so per-probe work is O(bucket), not
// O(registered invariants).
func relevant(t *lang.CallTemplate, c domain.Call) bool {
	return t.Domain == c.Domain && t.Function == c.Function && len(t.Args) == len(c.Args)
}

// indexProbe reports one discrimination-index probe: the candidate
// bucket size feeds the obs counters (and the span tag interactive
// EXPLAIN shows), and the invariants the bucket let the probe skip are
// counted as scans avoided.
func (m *Manager) indexProbe(ctx *domain.Ctx, candidates int) {
	o := m.obs()
	if o != nil {
		o.Counter("hermes_invindex_candidates_total").Add(int64(candidates))
		if avoided := m.idx.Len() - candidates; avoided > 0 {
			o.Counter("hermes_invindex_scans_avoided_total").Add(int64(avoided))
		}
	}
	ctx.Span.SetTag("invindex.candidates", strconv.Itoa(candidates))
}

// parallelThreshold resolves the configured equality fan-out threshold.
func (m *Manager) parallelThreshold() int {
	switch {
	case m.cfg.ParallelMatchThreshold > 0:
		return m.cfg.ParallelMatchThreshold
	case m.cfg.ParallelMatchThreshold < 0:
		return int(^uint(0) >> 1) // disabled: no bucket is this large
	default:
		return DefaultParallelMatchThreshold
	}
}

// matchEquality tries one equality invariant against a call: both
// orientations are unified (equality is symmetric) and candidate entries
// are searched for the rewritten side. The caller has already charged
// the per-invariant match cost. On a hit the best candidate by recency
// is returned.
func (m *Manager) matchEquality(ctx *domain.Ctx, inv *lang.Invariant, call domain.Call) (*Entry, bool) {
	sides := [2][2]*lang.CallTemplate{
		{&inv.Left, &inv.Right},
		{&inv.Right, &inv.Left},
	}
	for _, pair := range sides {
		mine, other := pair[0], pair[1]
		theta, ok := unifyTemplate(term.Subst{}, mine, call)
		if !ok {
			continue
		}
		// An equality hit requires a complete cached answer set.
		if cands := m.findCandidates(ctx, theta, inv.Cond, other, true); len(cands) > 0 {
			best := cands[0]
			for _, c := range cands[1:] {
				if c.lastUsed.Load() > best.lastUsed.Load() {
					best = c
				}
			}
			return best, true
		}
	}
	return nil, false
}

// findEquality looks for a cached call that an equality invariant
// proves has the identical answer set (§4.1, case 2). Candidates come
// from the discrimination index — exactly the invariants whose dispatch
// check the linear scan would have passed — and large buckets fan the
// match attempts out across the query's scheduler lanes. The matched
// invariant is returned alongside the entry for savings attribution.
func (m *Manager) findEquality(ctx *domain.Ctx, call domain.Call) (*Entry, *lang.Invariant) {
	if m.cfg.LinearMatching {
		return m.findEqualityLinear(ctx, call)
	}
	cands := m.idx.Equalities(invindex.KeyOfCall(call))
	m.indexProbe(ctx, len(cands))
	if len(cands) >= m.parallelThreshold() {
		if e, inv, ok := m.findEqualityParallel(ctx, call, cands); ok {
			return e, inv
		}
	}
	for _, inv := range cands {
		ctx.Clock.Sleep(m.cfg.InvariantMatch)
		if e, ok := m.matchEquality(ctx, inv, call); ok {
			return e, inv
		}
	}
	return nil, nil
}

// findEqualityParallel fans equality matching over a large candidate
// bucket across the per-query scheduler: each extra lane granted by
// ctx.Sched works a contiguous chunk on a forked clock, stopping at its
// chunk's first hit; all forks join back into the caller's clock
// (virtual time = the slowest chunk, so the fan-out is what shortens the
// probe), and the winner is the hit with the lowest bucket position —
// exactly the invariant sequential matching would have chosen, making
// results and answer streams identical at any parallelism. ok=false
// when no extra lanes were granted (caller falls back to sequential).
func (m *Manager) findEqualityParallel(ctx *domain.Ctx, call domain.Call, cands []*lang.Invariant) (*Entry, *lang.Invariant, bool) {
	extra := ctx.Sched.TryAcquire(len(cands) / m.parallelThreshold())
	if extra <= 0 {
		return nil, nil, false
	}
	defer ctx.Sched.Release(extra)
	m.obs().Counter("hermes_invindex_parallel_matches_total").Inc()

	workers := extra + 1
	chunk := (len(cands) + workers - 1) / workers
	type hit struct {
		pos int
		e   *Entry
	}
	hits := make([]hit, workers)
	forks := make([]*domain.Ctx, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		fctx := ctx.Fork()
		forks[w] = fctx
		hits[w] = hit{pos: -1}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int, fctx *domain.Ctx) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fctx.Clock.Sleep(m.cfg.InvariantMatch)
				if e, ok := m.matchEquality(fctx, cands[i], call); ok {
					hits[w] = hit{pos: i, e: e}
					return
				}
			}
		}(w, lo, hi, fctx)
	}
	wg.Wait()
	for _, f := range forks {
		ctx.Clock.Join(f.Clock)
	}
	best := hit{pos: -1}
	for _, h := range hits {
		if h.pos >= 0 && (best.pos < 0 || h.pos < best.pos) {
			best = h
		}
	}
	if best.pos < 0 {
		return nil, nil, true
	}
	return best.e, cands[best.pos], true
}

// findEqualityLinear is the pre-index full scan, kept as the
// LinearMatching debug oracle: every registered invariant is walked,
// with the cheap relevance dispatch deciding whether a match is charged
// and attempted.
func (m *Manager) findEqualityLinear(ctx *domain.Ctx, call domain.Call) (*Entry, *lang.Invariant) {
	m.linearScans.Add(1)
	for _, inv := range m.idx.All() {
		if inv.Rel != lang.RelEqual {
			continue
		}
		if !relevant(&inv.Left, call) && !relevant(&inv.Right, call) {
			continue
		}
		ctx.Clock.Sleep(m.cfg.InvariantMatch)
		if e, ok := m.matchEquality(ctx, inv, call); ok {
			return e, inv
		}
	}
	return nil, nil
}

// matchPartial tries one superset invariant against a call, feeding
// every sound candidate entry to consider. The caller has already
// charged the per-invariant match cost.
func (m *Manager) matchPartial(ctx *domain.Ctx, inv *lang.Invariant, call domain.Call, consider func(*Entry, *lang.Invariant)) {
	// Our call must be the superset (Left) side; cached entries
	// matching Right provide subsets of our answers.
	theta, ok := unifyTemplate(term.Subst{}, &inv.Left, call)
	if !ok {
		return
	}
	for _, e := range m.findCandidates(ctx, theta, inv.Cond, &inv.Right, false) {
		if len(e.Answers) > 0 {
			consider(e, inv)
		}
	}
}

// findPartial looks for the best sound partial answer for a call
// (§4.1, case 3): a cached call C such that some superset invariant proves
// answers(call) ⊇ answers(C), or an incomplete exact entry for the call
// itself. "Best" is the candidate with the most cached answers. The
// invariant that proved the winning candidate is returned for savings
// attribution (nil when the winner is the call's own incomplete entry).
func (m *Manager) findPartial(ctx *domain.Ctx, call domain.Call) (*Entry, *lang.Invariant) {
	var best *Entry
	var bestInv *lang.Invariant
	consider := func(e *Entry, inv *lang.Invariant) {
		if best == nil || len(e.Answers) > len(best.Answers) {
			best, bestInv = e, inv
		}
	}
	// An incomplete exact entry is itself a sound partial answer.
	if e, ok := m.store.get(call.Key()); ok && !e.Complete {
		consider(e, nil)
	}
	if m.cfg.LinearMatching {
		m.linearScans.Add(1)
		for _, inv := range m.idx.All() {
			if inv.Rel != lang.RelSuperset {
				continue
			}
			if !relevant(&inv.Left, call) {
				continue
			}
			ctx.Clock.Sleep(m.cfg.InvariantMatch)
			m.matchPartial(ctx, inv, call, consider)
		}
		return best, bestInv
	}
	cands := m.idx.Supersets(invindex.KeyOfCall(call))
	m.indexProbe(ctx, len(cands))
	for _, inv := range cands {
		ctx.Clock.Sleep(m.cfg.InvariantMatch)
		m.matchPartial(ctx, inv, call, consider)
	}
	return best, bestInv
}
