package cim

import (
	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/term"
)

// unifyTemplate matches a call template against a ground call, extending
// the substitution. It fails unless domain, function and arity match and
// every argument unifies.
func unifyTemplate(s term.Subst, t *lang.CallTemplate, c domain.Call) (term.Subst, bool) {
	if t.Domain != c.Domain || t.Function != c.Function || len(t.Args) != len(c.Args) {
		return nil, false
	}
	return s.UnifyAll(t.Args, c.Args)
}

// groundTemplate instantiates a call template under a substitution,
// reporting ok=false if any argument remains unbound.
func groundTemplate(t *lang.CallTemplate, s term.Subst) (domain.Call, bool) {
	args := make([]term.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := s.Eval(a)
		if err != nil {
			return domain.Call{}, false
		}
		args[i] = v
	}
	return domain.Call{Domain: t.Domain, Function: t.Function, Args: args}, true
}

// condHolds evaluates an invariant condition under a substitution. A
// condition that cannot be evaluated (unbound variable, incomparable
// values) does not hold: invariants are only applied when their
// applicability is certain, keeping reuse sound.
func condHolds(cond []lang.Comparison, s term.Subst) bool {
	for i := range cond {
		ok, err := cond[i].Holds(s)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// findCandidates finds cache entries that `other` (under θ extending
// the unification of our call with `mine`) matches, with the condition
// holding. If `other` is ground under θ this is a direct probe; otherwise
// a snapshot of the cache is scanned (charged per entry examined) — no
// shard lock is held while the clock is charged. requireComplete
// restricts to complete entries.
func (m *Manager) findCandidates(ctx *domain.Ctx, theta term.Subst, cond []lang.Comparison, other *lang.CallTemplate, requireComplete bool) []*Entry {
	// Fast path: other side fully determined by our call's bindings.
	if oc, ok := groundTemplate(other, theta); ok {
		if !condHolds(cond, theta) {
			return nil
		}
		ctx.Clock.Sleep(m.cfg.LookupCost)
		if e, found := m.store.get(oc.Key()); found && (e.Complete || !requireComplete) {
			return []*Entry{e}
		}
		return nil
	}
	// Slow path: scan cached calls to the other side's domain:function.
	var out []*Entry
	for _, e := range m.store.snapshot() {
		if e.Call.Domain != other.Domain || e.Call.Function != other.Function {
			continue
		}
		ctx.Clock.Sleep(m.cfg.ScanPerEntry)
		theta2, ok := unifyTemplate(theta, other, e.Call)
		if !ok || !condHolds(cond, theta2) {
			continue
		}
		if requireComplete && !e.Complete {
			continue
		}
		out = append(out, e)
	}
	return out
}

// relevant reports whether a template could match the call at all (same
// domain, function and arity). Irrelevant invariants are skipped by a
// cheap dispatch check, which is why the paper found the overhead of
// checking the cache and invariants without success to be negligible.
func relevant(t *lang.CallTemplate, c domain.Call) bool {
	return t.Domain == c.Domain && t.Function == c.Function && len(t.Args) == len(c.Args)
}

// findEquality looks for a cached call that an equality invariant
// proves has the identical answer set (§4.1, case 2). Equality is
// symmetric, so both orientations are tried. The matched invariant is
// returned alongside the entry for savings attribution.
func (m *Manager) findEquality(ctx *domain.Ctx, call domain.Call) (*Entry, *lang.Invariant) {
	for _, inv := range m.invariantList() {
		if inv.Rel != lang.RelEqual {
			continue
		}
		if !relevant(&inv.Left, call) && !relevant(&inv.Right, call) {
			continue
		}
		ctx.Clock.Sleep(m.cfg.InvariantMatch)
		sides := [2][2]*lang.CallTemplate{
			{&inv.Left, &inv.Right},
			{&inv.Right, &inv.Left},
		}
		for _, pair := range sides {
			mine, other := pair[0], pair[1]
			theta, ok := unifyTemplate(term.Subst{}, mine, call)
			if !ok {
				continue
			}
			// An equality hit requires a complete cached answer set.
			if cands := m.findCandidates(ctx, theta, inv.Cond, other, true); len(cands) > 0 {
				best := cands[0]
				for _, c := range cands[1:] {
					if c.lastUsed.Load() > best.lastUsed.Load() {
						best = c
					}
				}
				return best, inv
			}
		}
	}
	return nil, nil
}

// findPartial looks for the best sound partial answer for a call
// (§4.1, case 3): a cached call C such that some superset invariant proves
// answers(call) ⊇ answers(C), or an incomplete exact entry for the call
// itself. "Best" is the candidate with the most cached answers. The
// invariant that proved the winning candidate is returned for savings
// attribution (nil when the winner is the call's own incomplete entry).
func (m *Manager) findPartial(ctx *domain.Ctx, call domain.Call) (*Entry, *lang.Invariant) {
	var best *Entry
	var bestInv *lang.Invariant
	consider := func(e *Entry, inv *lang.Invariant) {
		if best == nil || len(e.Answers) > len(best.Answers) {
			best, bestInv = e, inv
		}
	}
	// An incomplete exact entry is itself a sound partial answer.
	if e, ok := m.store.get(call.Key()); ok && !e.Complete {
		consider(e, nil)
	}
	for _, inv := range m.invariantList() {
		if inv.Rel != lang.RelSuperset {
			continue
		}
		if !relevant(&inv.Left, call) {
			continue
		}
		ctx.Clock.Sleep(m.cfg.InvariantMatch)
		// Our call must be the superset (Left) side; cached entries
		// matching Right provide subsets of our answers.
		theta, ok := unifyTemplate(term.Subst{}, &inv.Left, call)
		if !ok {
			continue
		}
		for _, e := range m.findCandidates(ctx, theta, inv.Cond, &inv.Right, false) {
			if len(e.Answers) > 0 {
				consider(e, inv)
			}
		}
	}
	return best, bestInv
}
