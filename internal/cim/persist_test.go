package cim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/term"
)

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 50 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return strs("x", "y", "z"), nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	for i := 0; i < 3; i++ {
		resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh manager, possibly in a fresh process, loads the snapshot.
	m2 := New(reg, testCfg())
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 3 || m2.Bytes() != m.Bytes() {
		t.Fatalf("after load: len=%d bytes=%d (want %d/%d)", m2.Len(), m2.Bytes(), m.Len(), m.Bytes())
	}
	// Served entirely from the reloaded cache: no source call.
	before := d.CallCount("f")
	resp, err := m2.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceCacheExact {
		t.Errorf("source = %v", resp.Source)
	}
	if got := drain(t, resp); len(got) != 3 {
		t.Errorf("answers = %v", got)
	}
	if d.CallCount("f") != before {
		t.Error("reloaded cache still called the source")
	}
	// The preserved cost vector supports cost-weighted eviction decisions.
	e, ok := m2.Lookup(call("d", "f", term.Int(0)))
	if !ok || e.Cost.TAll < 50*time.Millisecond {
		t.Errorf("entry cost lost: %+v", e)
	}
}

func TestCacheLoadEnforcesBudgets(t *testing.T) {
	reg := domain.NewRegistry()
	m := New(reg, testCfg())
	for i := 0; i < 5; i++ {
		m.Store(call("d", "f", term.Int(int64(i))), strs("0123456789"), true, domain.CostVector{})
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.MaxEntries = 2
	m2 := New(reg, cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 {
		t.Errorf("budget not enforced on load: %d entries", m2.Len())
	}
}

func TestCacheLoadRejectsBadInput(t *testing.T) {
	m := New(domain.NewRegistry(), testCfg())
	if err := m.Load(strings.NewReader("nope")); err == nil {
		t.Error("garbage should fail")
	}
	if err := m.Load(strings.NewReader(`{"version": 9}`)); err == nil {
		t.Error("unknown version should fail")
	}
}

func TestCacheSaveLoadIncompleteEntries(t *testing.T) {
	reg := domain.NewRegistry()
	m := New(reg, testCfg())
	m.Store(call("d", "f", term.Int(1)), strs("partial"), false, domain.CostVector{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(reg, testCfg())
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	e, ok := m2.Lookup(call("d", "f", term.Int(1)))
	if !ok || e.Complete {
		t.Errorf("incomplete flag lost: %+v ok=%v", e, ok)
	}
}
