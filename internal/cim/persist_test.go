package cim

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/term"
)

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 50 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return strs("x", "y", "z"), nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	for i := 0; i < 3; i++ {
		resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh manager, possibly in a fresh process, loads the snapshot.
	m2 := New(reg, testCfg())
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 3 || m2.Bytes() != m.Bytes() {
		t.Fatalf("after load: len=%d bytes=%d (want %d/%d)", m2.Len(), m2.Bytes(), m.Len(), m.Bytes())
	}
	// Served entirely from the reloaded cache: no source call.
	before := d.CallCount("f")
	resp, err := m2.CallThrough(newCtx(), call("d", "f", term.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceCacheExact {
		t.Errorf("source = %v", resp.Source)
	}
	if got := drain(t, resp); len(got) != 3 {
		t.Errorf("answers = %v", got)
	}
	if d.CallCount("f") != before {
		t.Error("reloaded cache still called the source")
	}
	// The preserved cost vector supports cost-weighted eviction decisions.
	e, ok := m2.Lookup(call("d", "f", term.Int(0)))
	if !ok || e.Cost.TAll < 50*time.Millisecond {
		t.Errorf("entry cost lost: %+v", e)
	}
}

func TestCacheLoadEnforcesBudgets(t *testing.T) {
	reg := domain.NewRegistry()
	m := New(reg, testCfg())
	for i := 0; i < 5; i++ {
		m.Store(call("d", "f", term.Int(int64(i))), strs("0123456789"), true, domain.CostVector{})
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.MaxEntries = 2
	m2 := New(reg, cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 {
		t.Errorf("budget not enforced on load: %d entries", m2.Len())
	}
}

func TestCacheLoadRejectsBadInput(t *testing.T) {
	m := New(domain.NewRegistry(), testCfg())
	if err := m.Load(strings.NewReader("nope")); err == nil {
		t.Error("garbage should fail")
	}
	if err := m.Load(strings.NewReader(`{"version": 9}`)); err == nil {
		t.Error("unknown version should fail")
	}
}

func TestCacheSaveLoadIncompleteEntries(t *testing.T) {
	reg := domain.NewRegistry()
	m := New(reg, testCfg())
	m.Store(call("d", "f", term.Int(1)), strs("partial"), false, domain.CostVector{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(reg, testCfg())
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	e, ok := m2.Lookup(call("d", "f", term.Int(1)))
	if !ok || e.Complete {
		t.Errorf("incomplete flag lost: %+v ok=%v", e, ok)
	}
}

func TestCacheSaveLoadLedgerRoundTrip(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 50 * time.Millisecond,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return strs("x", "y"), nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, testCfg())
	// Earn some exact-hit savings: the second call of each pair serves
	// from cache and credits the ledger.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			resp, err := m.CallThrough(newCtx(), call("d", "f", term.Int(int64(j))))
			if err != nil {
				t.Fatal(err)
			}
			drain(t, resp)
		}
	}
	// Memo savings share the ledger under their own bucket.
	m.CreditMemo("p^ff|#2a|v0|v1", 700*time.Millisecond)
	before := m.Ledger()
	if before.Total == 0 || len(before.Invariants) == 0 {
		t.Fatalf("ledger vacuous before save: %+v", before)
	}
	foundMemo := false
	for _, row := range before.Invariants {
		if row.Key == MemoBucket {
			foundMemo = true
		}
	}
	if !foundMemo {
		t.Fatalf("memo bucket missing from ledger: %+v", before.Invariants)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(reg, testCfg())
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	after := m2.Ledger()
	if !reflect.DeepEqual(before, after) {
		t.Errorf("ledger did not round-trip:\nbefore: %+v\nafter:  %+v", before, after)
	}
}

func TestCacheLoadVersion1WithoutLedger(t *testing.T) {
	// A pre-ledger snapshot (version 1, no ledger field) must still load,
	// leaving the ledger empty rather than failing or inventing rows.
	m := New(domain.NewRegistry(), testCfg())
	if err := m.Load(strings.NewReader(`{"version":1,"counter":3,"entries":[]}`)); err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	if led := m.Ledger(); led.Total != 0 || len(led.Invariants) != 0 || len(led.Entries) != 0 {
		t.Errorf("ledger not empty after v1 load: %+v", led)
	}
}

func TestInvalidationHookFires(t *testing.T) {
	reg := domain.NewRegistry()
	m := New(reg, testCfg())
	var fired []string
	m.SetOnInvalidate(func(callKey string) { fired = append(fired, callKey) })

	// A fresh store must NOT invalidate: the miss that produced it is
	// feeding an in-progress memo fill, and killing that entry would
	// invalidate every memo relation the moment it is built.
	c1 := call("d", "f", term.Int(1))
	m.Store(c1, strs("a"), false, domain.CostVector{})
	if len(fired) != 0 {
		t.Fatalf("fresh store fired invalidation: %v", fired)
	}
	// Replacing the entry (refresh) must invalidate: memo relations built
	// from the old answers are stale.
	m.Store(c1, strs("a", "b"), true, domain.CostVector{})
	if !reflect.DeepEqual(fired, []string{c1.Key()}) {
		t.Fatalf("replace: fired = %v, want [%s]", fired, c1.Key())
	}

	// Clear invalidates everything that was cached.
	fired = nil
	c2 := call("d", "f", term.Int(2))
	m.Store(c2, strs("c"), true, domain.CostVector{})
	m.Clear()
	sort.Strings(fired)
	want := []string{c1.Key(), c2.Key()}
	sort.Strings(want)
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("clear: fired = %v, want %v", fired, want)
	}

	// Eviction invalidates the victim.
	cfg := testCfg()
	cfg.MaxEntries = 1
	m2 := New(reg, cfg)
	var evicted []string
	m2.SetOnInvalidate(func(callKey string) { evicted = append(evicted, callKey) })
	m2.Store(c1, strs("a"), true, domain.CostVector{})
	m2.Store(c2, strs("b"), true, domain.CostVector{})
	if len(evicted) != 1 {
		t.Fatalf("evict: fired = %v, want exactly one victim", evicted)
	}

	// Loading a snapshot invalidates the entries it replaces.
	var buf bytes.Buffer
	m3 := New(reg, testCfg())
	if err := m3.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fired = nil
	if err := m.Load(&buf); err != nil {
		t.Fatal(err)
	}
	// m was cleared above, so a load over the (re-stored) empty cache
	// fires nothing; store first, then load.
	m.Store(c1, strs("a"), true, domain.CostVector{})
	fired = nil
	buf.Reset()
	if err := m3.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, []string{c1.Key()}) {
		t.Fatalf("load: fired = %v, want [%s]", fired, c1.Key())
	}
}
