package cim

import (
	"time"

	"hermes/internal/domain"
	"hermes/internal/vclock"
)

// CostModel exposes the CIM serve-cost parameters the rule cost estimator
// needs to price CIM-routed calls.
type CostModel struct {
	Lookup     time.Duration
	PerAnswer  time.Duration
	DedupProbe time.Duration
}

// CostModel returns the manager's serve-cost parameters.
func (m *Manager) CostModel() CostModel {
	return CostModel{
		Lookup:     m.cfg.LookupCost,
		PerAnswer:  m.cfg.PerAnswer,
		DedupProbe: m.cfg.DedupProbe,
	}
}

// Probe reports, without side effects on the cache, stats, or any clock,
// how a ground call would be served right now: the source kind and the
// number of answers the cache would contribute. It backs the estimator's
// CIM-aware costing. Probes are read-only and run concurrently with
// lookups and stores (shard read-locks only).
func (m *Manager) Probe(call domain.Call) (Source, int) {
	scratch := domain.NewCtx(vclock.NewVirtual(0)) // absorbs matching costs
	if e, ok := m.store.get(call.Key()); ok && e.Complete {
		return SourceCacheExact, len(e.Answers)
	}
	if e, _ := m.findEquality(scratch, call); e != nil {
		return SourceCacheEquality, len(e.Answers)
	}
	if e, _ := m.findPartial(scratch, call); e != nil {
		return SourceCachePartial, len(e.Answers)
	}
	return SourceActual, 0
}
