package cim

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// Cache persistence lets a restarted mediator keep answering from prior
// results — including through source outages, which is the availability
// story of §1. Invariants are program text and are not persisted here;
// reload them with the program.

// cacheSnapshotVersion is the current snapshot format. Version 2 added
// the savings ledger; version 1 snapshots (no ledger) still load.
const cacheSnapshotVersion = 2

type cacheEntrySnapshot struct {
	Domain   string           `json:"domain"`
	Function string           `json:"function"`
	Args     []term.JSONValue `json:"args"`
	Answers  []term.JSONValue `json:"answers"`
	Complete bool             `json:"complete"`
	TfNs     int64            `json:"tf"`
	TaNs     int64            `json:"ta"`
	Card     float64          `json:"card"`
	LastUsed int64            `json:"lastUsed"`
}

type cacheSnapshot struct {
	Version int                  `json:"version"`
	Counter int64                `json:"counter"`
	Entries []cacheEntrySnapshot `json:"entries"`
	// Ledger is the savings ledger at save time (version >= 2; absent in
	// version 1 snapshots).
	Ledger *LedgerSnapshot `json:"ledger,omitempty"`
}

// Save writes the cache contents as JSON.
func (m *Manager) Save(w io.Writer) error {
	snap := cacheSnapshot{Version: cacheSnapshotVersion, Counter: m.counter.Load()}
	ledger := m.ledger.snapshot()
	snap.Ledger = &ledger
	for _, e := range m.store.snapshot() {
		args, err := term.EncodeJSONs(e.Call.Args)
		if err != nil {
			return fmt.Errorf("cim: save: %w", err)
		}
		answers, err := term.EncodeJSONs(e.Answers)
		if err != nil {
			return fmt.Errorf("cim: save: %w", err)
		}
		snap.Entries = append(snap.Entries, cacheEntrySnapshot{
			Domain: e.Call.Domain, Function: e.Call.Function, Args: args,
			Answers: answers, Complete: e.Complete,
			TfNs: int64(e.Cost.TFirst), TaNs: int64(e.Cost.TAll), Card: e.Cost.Card,
			LastUsed: e.lastUsed.Load(),
		})
	}
	return json.NewEncoder(w).Encode(&snap)
}

// Load replaces the cache contents with a snapshot previously written by
// Save. Budgets are enforced after loading.
func (m *Manager) Load(r io.Reader) error {
	var snap cacheSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("cim: load: %w", err)
	}
	if snap.Version < 1 || snap.Version > cacheSnapshotVersion {
		return fmt.Errorf("cim: load: unsupported snapshot version %d", snap.Version)
	}
	entries := make(map[string]*Entry, len(snap.Entries))
	for _, es := range snap.Entries {
		args, err := term.DecodeJSONs(es.Args)
		if err != nil {
			return fmt.Errorf("cim: load: %w", err)
		}
		answers, err := term.DecodeJSONs(es.Answers)
		if err != nil {
			return fmt.Errorf("cim: load: %w", err)
		}
		bytes := 0
		for _, v := range answers {
			bytes += term.SizeBytes(v)
		}
		e := &Entry{
			Call:     domain.Call{Domain: es.Domain, Function: es.Function, Args: args},
			Answers:  answers,
			Complete: es.Complete,
			Cost: domain.CostVector{
				TFirst: time.Duration(es.TfNs), TAll: time.Duration(es.TaNs), Card: es.Card,
			},
			Bytes: bytes,
		}
		e.lastUsed.Store(es.LastUsed)
		entries[e.Call.Key()] = e
	}
	// The load replaces whatever was cached: memo relations built from the
	// previous contents are stale, and the call index is rebuilt to match.
	prior := m.store.snapshot()
	m.store.replace(entries)
	calls := make([]domain.Call, 0, len(entries))
	for _, e := range entries {
		calls = append(calls, e.Call)
	}
	m.idx.ResetCalls(calls)
	for _, e := range prior {
		m.invalidate(e.Call.Key())
	}
	if snap.Ledger != nil {
		m.ledger.restore(*snap.Ledger)
	}
	for {
		cur := m.counter.Load()
		if snap.Counter <= cur || m.counter.CompareAndSwap(cur, snap.Counter) {
			break
		}
	}
	m.evict()
	m.occupancy()
	return nil
}
