package cim

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// invariantTestbed builds a manager over one source domain with an
// equality and a superset invariant, primed so that equality, partial
// and miss probes all occur.
func invariantTestbed(t *testing.T, cfg Config) (*Manager, *domaintest.Domain) {
	t.Helper()
	d := domaintest.New("d")
	fn := func(args []term.Value) ([]term.Value, error) { return strs("x", "y"), nil }
	d.Define("f", domaintest.Func{Arity: 1, PerCall: 50 * time.Millisecond, Fn: fn})
	d.Define("g", domaintest.Func{Arity: 1, PerCall: 50 * time.Millisecond, Fn: fn})
	reg := domain.NewRegistry()
	reg.Register(d)
	m := New(reg, cfg)
	for _, src := range []string{
		"true => d:f(X) = d:g(X).",
		"V1 <= V2 => d:f(V2) >= d:f(V1).",
	} {
		inv, err := lang.ParseInvariant(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddInvariant(inv); err != nil {
			t.Fatal(err)
		}
	}
	return m, d
}

// runInvariantWorkload drives the three invariant-serving paths and
// returns the observed sources in order.
func runInvariantWorkload(t *testing.T, m *Manager) []Source {
	t.Helper()
	var sources []Source
	for _, c := range []domain.Call{
		call("d", "g", term.Str("a")), // miss: primes the cache
		call("d", "f", term.Str("a")), // equality hit via d:f = d:g
		call("d", "f", term.Int(10)),  // miss: primes the superset
		call("d", "f", term.Int(99)),  // partial hit via the range superset
	} {
		resp, err := m.CallThrough(newCtx(), c)
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
		sources = append(sources, resp.Source)
	}
	return sources
}

// TestServePathNeverScansLinearly is the scan-counter gate: with the
// index active, equality probes, partial probes, flight attachment and
// cache scans must complete without one full linear scan; the
// LinearMatching oracle must take them (and agree on every serving
// decision).
func TestServePathNeverScansLinearly(t *testing.T) {
	indexed, _ := invariantTestbed(t, testCfg())
	idxSources := runInvariantWorkload(t, indexed)
	if n := indexed.LinearScans(); n != 0 {
		t.Fatalf("indexed serve path performed %d linear scans, want 0", n)
	}

	linCfg := testCfg()
	linCfg.LinearMatching = true
	linear, _ := invariantTestbed(t, linCfg)
	linSources := runInvariantWorkload(t, linear)
	if n := linear.LinearScans(); n == 0 {
		t.Fatal("LinearMatching oracle performed no linear scans")
	}
	for i := range idxSources {
		if idxSources[i] != linSources[i] {
			t.Fatalf("serving decisions diverged at call %d: indexed %v, linear %v", i, idxSources[i], linSources[i])
		}
	}
	want := []Source{SourceActual, SourceCacheEquality, SourceActual, SourceCachePartial}
	for i, w := range want {
		if idxSources[i] != w {
			t.Fatalf("call %d served from %v, want %v", i, idxSources[i], w)
		}
	}
}

// TestParallelEqualityMatchDeterministic pins the fan-out contract:
// when a bucket reaches the threshold and the scheduler grants lanes,
// matching fans out, but the winner is the invariant the sequential
// scan would have chosen (lowest bucket position), regardless of which
// worker finished first.
func TestParallelEqualityMatchDeterministic(t *testing.T) {
	d := domaintest.New("d")
	ans := func(vals ...string) func([]term.Value) ([]term.Value, error) {
		return func([]term.Value) ([]term.Value, error) { return strs(vals...), nil }
	}
	d.Define("f", domaintest.Func{Arity: 1, Fn: ans("unused")})
	d.Define("g", domaintest.Func{Arity: 1, Fn: ans("from-g")})
	d.Define("h", domaintest.Func{Arity: 1, Fn: ans("from-h", "extra")})

	for _, threshold := range []int{2, -1} {
		cfg := testCfg()
		cfg.ParallelMatchThreshold = threshold
		reg := domain.NewRegistry()
		reg.Register(d)
		m := New(reg, cfg)
		// Registration order decides the sequential winner: g before h.
		for _, src := range []string{
			"true => d:f(X) = d:g(X).",
			"true => d:f(X) = d:h(X).",
		} {
			inv, err := lang.ParseInvariant(src)
			if err != nil {
				t.Fatal(err)
			}
			m.AddInvariant(inv)
		}
		// Both equality targets are cached and complete.
		m.Store(call("d", "g", term.Str("a")), strs("from-g"), true, domain.CostVector{})
		m.Store(call("d", "h", term.Str("a")), strs("from-h", "extra"), true, domain.CostVector{})

		for i := 0; i < 25; i++ {
			ctx := domain.NewCtx(vclock.NewVirtual(0))
			ctx.Sched = domain.NewSched(4)
			resp, err := m.CallThrough(ctx, call("d", "f", term.Str("a")))
			if err != nil {
				t.Fatal(err)
			}
			if resp.Source != SourceCacheEquality {
				t.Fatalf("threshold=%d: source = %v, want equality hit", threshold, resp.Source)
			}
			if got := resp.ServingCall.Function; got != "g" {
				t.Fatalf("threshold=%d run %d: served by d:%s, want the first-registered invariant's d:g", threshold, i, got)
			}
			if got := drain(t, resp); len(got) != 1 || got[0].Key() != term.Str("from-g").Key() {
				t.Fatalf("threshold=%d: answers = %v", threshold, got)
			}
		}
		if n := m.LinearScans(); n != 0 {
			t.Fatalf("threshold=%d: parallel path fell back to %d linear scans", threshold, n)
		}
	}
}

// TestInvariantsHandler pins the /debug/invariants text view: buckets
// with their invariant rows, joined with the savings ledger once an
// invariant has earned a hit.
func TestInvariantsHandler(t *testing.T) {
	m, _ := invariantTestbed(t, testCfg())
	runInvariantWorkload(t, m)

	rr := httptest.NewRecorder()
	m.InvariantsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/invariants", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"invariant index: 2 invariants",
		"d:f/1:",
		"d:g/1:",
		"true => d:f(X) = d:g(X).",
		"hits=1",
		"linear scans 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/invariants missing %q in:\n%s", want, body)
		}
	}
}
