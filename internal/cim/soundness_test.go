package cim

import (
	"testing"

	"hermes/internal/domain"
	"hermes/internal/domains/avis"
	"hermes/internal/lang"
	"hermes/internal/term"
	"hermes/internal/workload"
)

// TestSoundnessOverRandomStream is the central safety property of the CIM:
// for any call sequence, whatever mixture of exact hits, equality-invariant
// hits and partial-invariant completions serves a call, the drained answer
// set must equal the set the source itself returns. (Invariants are "sound,
// but not necessarily complete rewrite rules" — §4; the CIM must never
// trade soundness for reuse.)
func TestSoundnessOverRandomStream(t *testing.T) {
	store := avis.New("avis")
	avis.LoadRope(store)
	reg := domain.NewRegistry()
	reg.Register(store)

	m := New(reg, testCfg())
	for _, src := range []string{
		"true => avis:frames_to_objects(V, F, L) = avis:objects_in_range(V, F, L).",
		"F1 <= G1 & G2 <= F2 => avis:frames_to_objects(V, F1, F2) >= avis:frames_to_objects(V, G1, G2).",
		"true => avis:objects(V) >= avis:frames_to_objects(V, G1, G2).",
	} {
		inv, err := lang.ParseInvariant(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddInvariant(inv); err != nil {
			t.Fatal(err)
		}
	}

	stream := workload.FrameRanges(workload.DefaultFrameRanges(250))
	// Mix in alias calls so equality invariants fire in both directions.
	for i := range stream {
		if i%5 == 3 {
			stream[i].Function = "objects_in_range"
		}
	}

	asSet := func(vals []term.Value) map[string]bool {
		out := make(map[string]bool, len(vals))
		for _, v := range vals {
			out[v.Key()] = true
		}
		return out
	}
	hadHit := false
	for i, c := range stream {
		// Ground truth straight from the source.
		ds, err := reg.Call(newCtx(), c)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := domain.Collect(ds)
		if err != nil {
			t.Fatal(err)
		}
		// Through the CIM.
		resp, err := m.CallThrough(newCtx(), c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := domain.Collect(resp.Stream)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != SourceActual {
			hadHit = true
		}
		want := asSet(direct)
		have := asSet(got)
		if len(want) != len(have) {
			t.Fatalf("call %d (%s, served by %v): %d answers, source gives %d",
				i, c, resp.Source, len(have), len(want))
		}
		for k := range want {
			if !have[k] {
				t.Fatalf("call %d (%s, served by %v): missing answer %s", i, c, resp.Source, k)
			}
		}
	}
	if !hadHit {
		t.Fatal("stream produced no cache hits; property vacuous")
	}
	st := m.Stats()
	if st.PartialHits == 0 || st.ExactHits == 0 || st.EqualityHits == 0 {
		t.Errorf("want all hit kinds exercised: %+v", st)
	}
}

// TestNoDuplicatesOverRandomStream: merged partial+actual answers never
// contain duplicates (the dedup guarantee of §4.1's completion phase).
func TestNoDuplicatesOverRandomStream(t *testing.T) {
	store := avis.New("avis")
	avis.LoadRope(store)
	reg := domain.NewRegistry()
	reg.Register(store)
	m := New(reg, testCfg())
	inv, err := lang.ParseInvariant(
		"F1 <= G1 & G2 <= F2 => avis:frames_to_objects(V, F1, F2) >= avis:frames_to_objects(V, G1, G2).")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(inv); err != nil {
		t.Fatal(err)
	}
	for i, c := range workload.FrameRanges(workload.DefaultFrameRanges(150)) {
		resp, err := m.CallThrough(newCtx(), c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := domain.Collect(resp.Stream)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, v := range got {
			if seen[v.Key()] {
				t.Fatalf("call %d (%s, served by %v): duplicate answer %s", i, c, resp.Source, v)
			}
			seen[v.Key()] = true
		}
	}
}
