package cim

// This file is the savings ledger: per-invariant and per-cache-entry
// attribution of what the CIM actually earned. Every serve that skips a
// source call is credited with the avoided cost — the DCSM's estimate
// for the call the hit replaced, falling back to the serving entry's
// observed source cost — so operators can ask "which invariant is
// earning its keep?" the same way the paper's CIM experiments compare
// cached vs actual execution times.

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/lang"
)

// ExactKey is the ledger attribution key for exact cache hits (hits
// that needed no invariant).
const ExactKey = "(exact)"

// MemoBucket is the ledger attribution key under which rule-level memo
// hits are credited in the per-invariant view: the memo sits above the
// CIM, so its savings share the ledger but get their own bucket instead
// of masquerading as an invariant.
const MemoBucket = "(memo)"

// LedgerRow is one attribution bucket: an invariant (or ExactKey) in
// the per-invariant view, a cached call in the per-entry view.
type LedgerRow struct {
	Key   string        `json:"key"`
	Hits  int64         `json:"hits"`
	Saved time.Duration `json:"saved"`
}

// LedgerSnapshot is the savings ledger at a point in time. Rows are
// sorted by avoided cost (descending), then hits, then key.
type LedgerSnapshot struct {
	Total      time.Duration `json:"total"`
	Invariants []LedgerRow   `json:"invariants"`
	Entries    []LedgerRow   `json:"entries"`
}

// ledger accumulates the attribution buckets. Rows survive cache
// eviction: this is a ledger of what already happened, not an index of
// what is cached now.
type ledger struct {
	mu          sync.Mutex
	total       time.Duration
	byInvariant map[string]*LedgerRow
	byEntry     map[string]*LedgerRow
}

func (l *ledger) credit(invKey, entryKey string, saved time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.byInvariant == nil {
		l.byInvariant = make(map[string]*LedgerRow)
		l.byEntry = make(map[string]*LedgerRow)
	}
	bump := func(m map[string]*LedgerRow, key string) {
		r := m[key]
		if r == nil {
			r = &LedgerRow{Key: key}
			m[key] = r
		}
		r.Hits++
		r.Saved += saved
	}
	bump(l.byInvariant, invKey)
	bump(l.byEntry, entryKey)
	l.total += saved
}

func sortRows(m map[string]*LedgerRow) []LedgerRow {
	rows := make([]LedgerRow, 0, len(m))
	for _, r := range m {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Saved != rows[j].Saved {
			return rows[i].Saved > rows[j].Saved
		}
		if rows[i].Hits != rows[j].Hits {
			return rows[i].Hits > rows[j].Hits
		}
		return rows[i].Key < rows[j].Key
	})
	return rows
}

// restore replaces the ledger contents with a persisted snapshot, so
// savings attribution survives a mediator restart alongside the cache.
func (l *ledger) restore(s LedgerSnapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total = s.Total
	l.byInvariant = make(map[string]*LedgerRow, len(s.Invariants))
	l.byEntry = make(map[string]*LedgerRow, len(s.Entries))
	for _, r := range s.Invariants {
		row := r
		l.byInvariant[r.Key] = &row
	}
	for _, r := range s.Entries {
		row := r
		l.byEntry[r.Key] = &row
	}
}

func (l *ledger) snapshot() LedgerSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerSnapshot{
		Total:      l.total,
		Invariants: sortRows(l.byInvariant),
		Entries:    sortRows(l.byEntry),
	}
}

// SetCostModel installs the estimator used to price the source call a
// cache hit avoided; the mediator wires it to the DCSM. Without one (or
// when the model has no estimate) the serving entry's observed source
// cost is used instead.
func (m *Manager) SetCostModel(fn func(domain.Pattern) (domain.CostVector, bool)) {
	m.hookMu.Lock()
	defer m.hookMu.Unlock()
	m.costModel = fn
}

func (m *Manager) costModelHook() func(domain.Pattern) (domain.CostVector, bool) {
	m.hookMu.RLock()
	defer m.hookMu.RUnlock()
	return m.costModel
}

// avoidedCost prices the source call a hit skipped: the DCSM estimate
// for the requested call when available, else the serving entry's
// observed cost.
func (m *Manager) avoidedCost(call domain.Call, e *Entry) time.Duration {
	if model := m.costModelHook(); model != nil {
		if cv, ok := model(domain.PatternOf(call)); ok && cv.TAll > 0 {
			return cv.TAll
		}
	}
	return e.Cost.TAll
}

// credit records one cache serve in the ledger. withSavings is true
// when the serve genuinely replaced a source call (exact and equality
// hits); partial and degraded serves count hits only — a partial hit
// still issues the actual call, and a degraded serve had no working
// source to avoid. Invariant hits bump the per-invariant counter and
// tag the span; savings additionally tag cim.saved_ms so a trace's
// per-span avoided costs sum to the ledger total.
func (m *Manager) credit(ctx *domain.Ctx, call domain.Call, e *Entry, inv *lang.Invariant, withSavings bool) {
	invKey := ExactKey
	if inv != nil {
		invKey = inv.String()
		m.obs().Counter("hermes_cim_invariant_hits_total", "invariant", invKey).Inc()
		ctx.Span.SetTag("invariant", invKey)
	}
	var saved time.Duration
	if withSavings {
		saved = m.avoidedCost(call, e)
		m.obs().Counter("hermes_cim_saved_ms_total").Add(saved.Milliseconds())
		ctx.Span.SetTag("cim.saved_ms", fmt.Sprintf("%.1f", float64(saved)/float64(time.Millisecond)))
	}
	m.ledger.credit(invKey, e.Call.Key(), saved)
}

// CreditMemo records one rule-level memo hit in the savings ledger under
// the MemoBucket invariant bucket, attributed to the memo entry's key in
// the per-entry view. The memo's own hermes_memo_saved_ms_total counter
// tracks the metric side; this keeps the unified "what did caching earn"
// ledger complete.
func (m *Manager) CreditMemo(entryKey string, saved time.Duration) {
	m.ledger.credit(MemoBucket, entryKey, saved)
}

// Ledger returns the savings ledger snapshot.
func (m *Manager) Ledger() LedgerSnapshot { return m.ledger.snapshot() }

// FormatLedger renders the /debug/cim top-K table.
func FormatLedger(s LedgerSnapshot, k int) string {
	out := fmt.Sprintf("CIM savings ledger: %.1f ms avoided in total\n",
		float64(s.Total)/float64(time.Millisecond))
	table := func(title string, rows []LedgerRow) {
		out += "\n" + title + "\n"
		if len(rows) == 0 {
			out += "  (none)\n"
			return
		}
		out += fmt.Sprintf("  %10s %8s  %s\n", "saved_ms", "hits", "key")
		for i, r := range rows {
			if k > 0 && i >= k {
				out += fmt.Sprintf("  ... %d more\n", len(rows)-k)
				break
			}
			out += fmt.Sprintf("  %10.1f %8d  %s\n",
				float64(r.Saved)/float64(time.Millisecond), r.Hits, r.Key)
		}
	}
	table("top invariants by avoided cost:", s.Invariants)
	table("top cache entries by avoided cost:", s.Entries)
	return out
}

// DebugHandler serves the ledger as the /debug/cim text view, including
// the activity counters.
func (m *Manager) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := m.Stats()
		fmt.Fprintf(w, "CIM: %d entries, %d bytes; hits exact=%d equality=%d partial=%d, misses=%d, degraded=%d, evictions=%d\n\n",
			m.Len(), m.Bytes(), st.ExactHits, st.EqualityHits, st.PartialHits,
			st.Misses, st.DegradedServes, st.Evictions)
		fmt.Fprint(w, FormatLedger(m.Ledger(), 20))
	})
}
