package cim

import (
	"sync"
	"sync/atomic"
)

// numShards is the cache store's lock-shard count. 16 keeps contention
// negligible at the parallelism the engine runs (bounded by
// core.Options.Parallelism, default GOMAXPROCS) without bloating the
// zero-entry footprint.
const numShards = 16

// store is the sharded cache map: each shard has its own RWMutex, so
// concurrent lookups from parallel branches proceed without serializing
// behind one global lock. Entries are immutable once stored (replacement
// swaps the pointer; recency is a per-entry atomic), which keeps readers
// lock-free beyond the shard read-lock.
type store struct {
	shards [numShards]storeShard
	count  atomic.Int64
	bytes  atomic.Int64
}

type storeShard struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

func newStore() *store {
	s := &store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Entry)
	}
	return s
}

// shardIdx hashes a call key to its shard (FNV-1a).
func shardIdx(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % numShards)
}

func (s *store) get(key string) (*Entry, bool) {
	sh := &s.shards[shardIdx(key)]
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	return e, ok
}

// put inserts or replaces the entry for key, maintaining the global
// count/byte tallies. It returns the replaced entry (nil on fresh insert)
// so the manager can tell refreshes from first stores — refreshing an
// entry invalidates memo relations built from the old answers.
func (s *store) put(key string, e *Entry) *Entry {
	sh := &s.shards[shardIdx(key)]
	sh.mu.Lock()
	old := sh.m[key]
	sh.m[key] = e
	sh.mu.Unlock()
	if old != nil {
		s.bytes.Add(int64(-old.Bytes))
	} else {
		s.count.Add(1)
	}
	s.bytes.Add(int64(e.Bytes))
	return old
}

// removeIf deletes key only while it still maps to e (eviction races with
// replacement), reporting whether it removed anything.
func (s *store) removeIf(key string, e *Entry) bool {
	sh := &s.shards[shardIdx(key)]
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if !ok || cur != e {
		sh.mu.Unlock()
		return false
	}
	delete(sh.m, key)
	sh.mu.Unlock()
	s.count.Add(-1)
	s.bytes.Add(int64(-e.Bytes))
	return true
}

// snapshot returns the current entries. Scans (invariant matching,
// eviction victim selection, persistence) work on the snapshot so no
// shard lock is held while per-entry costs are charged to the clock.
func (s *store) snapshot() []*Entry {
	var out []*Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	return out
}

// replace swaps in a whole new entry set (cache load).
func (s *store) replace(entries map[string]*Entry) {
	var count, bytes int64
	byShard := make([]map[string]*Entry, numShards)
	for i := range byShard {
		byShard[i] = make(map[string]*Entry)
	}
	for k, e := range entries {
		byShard[shardIdx(k)][k] = e
		count++
		bytes += int64(e.Bytes)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = byShard[i]
		sh.mu.Unlock()
	}
	s.count.Store(count)
	s.bytes.Store(bytes)
}

func (s *store) clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string]*Entry)
		sh.mu.Unlock()
	}
	s.count.Store(0)
	s.bytes.Store(0)
}
