package cim

// Single-flight source calls. N concurrent identical (or
// invariant-equivalent) cache misses stampeding the same slow source is
// exactly the failure mode a mediator cache exists to prevent, so the CIM
// coalesces them: the first caller becomes the flight leader and issues
// the one actual call; every later caller attaches to the in-flight fetch,
// replays the answers already received, then co-consumes the remainder.
// Whoever needs the next answer first pulls the shared source stream (the
// pull advances the leader's clock, which meters the call); everyone else
// is woken by the broadcast. The flight's answers are stored in the cache
// once, with the same measurement semantics as an unshared call.

import (
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/invindex"
	"hermes/internal/lang"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// flightItem is one shared answer with its availability reading on the
// leader's clock.
type flightItem struct {
	v  term.Value
	at time.Duration
}

// flight is one in-flight actual source call with its attached readers.
type flight struct {
	m    *Manager
	call domain.Call
	key  string

	// ready is closed once setup finished (src usable or setupErr set).
	ready    chan struct{}
	setupErr error

	mu       sync.Mutex
	wake     chan struct{} // closed and replaced on every state change
	src      domain.Stream // the measured actual stream; pulled under the pulling flag
	srcClock vclock.Clock  // the leader's clock, advanced by whoever pulls
	items    []flightItem
	done     bool
	err      error
	endAt    time.Duration
	readers  int
	pulling  bool
	// closeOnIdle defers the last reader's early close while a pull is in
	// progress (the stream must not be closed under a concurrent Next).
	closeOnIdle bool
	// abandoned marks a flight ended by an early close rather than source
	// exhaustion: its item list may be incomplete, so late joiners must
	// start their own call instead of attaching.
	abandoned bool
}

func newFlight(m *Manager, call domain.Call) *flight {
	return &flight{
		m: m, call: call, key: call.Key(),
		ready: make(chan struct{}),
		wake:  make(chan struct{}),
	}
}

func (f *flight) broadcastLocked() {
	close(f.wake)
	f.wake = make(chan struct{})
}

// lead issues the actual call as the flight's one source fetch. On setup
// failure the flight is dissolved so a later caller may retry.
func (f *flight) lead(ctx *domain.Ctx) (domain.Stream, error) {
	start := ctx.Clock.Now()
	inner, err := f.m.caller.Call(ctx, f.call)
	if err != nil {
		f.setupErr = err
		close(f.ready)
		f.m.removeFlight(f)
		return nil, err
	}
	f.mu.Lock()
	f.srcClock = ctx.Clock
	f.src = domain.NewMeasuredStreamAt(inner, ctx.Clock, f.call, start, f.onMeasured)
	f.mu.Unlock()
	close(f.ready)
	return &flightReader{f: f, ctx: ctx}, nil
}

// onMeasured stores the flight's collected answers and forwards the
// measurement (DCSM). Called from inside src.Next/src.Close, so f.mu is
// never held here.
func (f *flight) onMeasured(meas domain.Measurement) {
	f.mu.Lock()
	vals := make([]term.Value, len(f.items))
	for i, it := range f.items {
		vals[i] = it.v
	}
	f.mu.Unlock()
	f.m.storeEntry(f.call, vals, meas.Complete, meas.Cost)
	if hook := f.m.measureHook(); hook != nil {
		hook(meas)
	}
}

// detach drops a reader that never consumed (context cancelled while
// waiting for setup, or a failed join).
func (f *flight) detach() {
	f.mu.Lock()
	f.readers--
	f.mu.Unlock()
}

// flightReader is one consumer's view of a flight: it replays the shared
// answer list from its own cursor, advancing its clock to each answer's
// availability time, and co-consumes the source past the end of the list.
type flightReader struct {
	f      *flight
	ctx    *domain.Ctx
	idx    int
	closed bool
}

func (r *flightReader) Next() (term.Value, bool, error) {
	f := r.f
	f.mu.Lock()
	for {
		if r.idx < len(f.items) {
			it := f.items[r.idx]
			r.idx++
			f.mu.Unlock()
			vclock.AdvanceTo(r.ctx.Clock, it.at)
			return it.v, true, nil
		}
		if f.done {
			err := f.err
			end := f.endAt
			f.mu.Unlock()
			if err != nil {
				return nil, false, err
			}
			vclock.AdvanceTo(r.ctx.Clock, end)
			return nil, false, nil
		}
		if !f.pulling {
			// This reader is the most caught-up: pull the source on behalf
			// of everyone. The pull advances the leader's clock.
			f.pulling = true
			src := f.src
			f.mu.Unlock()
			v, ok, err := src.Next()
			at := f.srcClock.Now()
			f.mu.Lock()
			f.pulling = false
			switch {
			case err != nil:
				f.done, f.err, f.endAt = true, err, at
			case !ok:
				f.done, f.endAt = true, at
			default:
				f.items = append(f.items, flightItem{v: v, at: at})
			}
			if !f.done && f.closeOnIdle && f.readers == 0 {
				f.done, f.abandoned, f.endAt = true, true, at
			}
			finished := f.done
			needClose := f.done && f.abandoned && err == nil
			f.broadcastLocked()
			f.mu.Unlock()
			if finished {
				f.m.removeFlight(f)
				if needClose {
					src.Close()
				}
			}
			f.mu.Lock()
			continue
		}
		// Someone else is pulling: wait for the broadcast (or our own
		// cancellation — a parallel branch being torn down must not hang
		// on a flight other branches keep feeding).
		wake := f.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-doneCh(r.ctx):
			return nil, false, r.ctx.Err()
		}
		f.mu.Lock()
	}
}

func (r *flightReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	f := r.f
	f.mu.Lock()
	f.readers--
	if f.readers > 0 || f.done {
		f.mu.Unlock()
		return nil
	}
	if f.pulling {
		// A pull we cannot interrupt is in progress; the puller finishes
		// the close when it returns.
		f.closeOnIdle = true
		f.mu.Unlock()
		return nil
	}
	// Last reader leaving an unfinished flight: close the source. The
	// measured stream records an incomplete entry, exactly like an
	// unshared early close (interactive pruning).
	f.done = true
	f.abandoned = true
	f.endAt = f.srcClock.Now()
	src := f.src
	f.broadcastLocked()
	f.mu.Unlock()
	f.m.removeFlight(f)
	return src.Close()
}

// doneCh returns the Ctx's cancellation channel (nil blocks forever in a
// select, which is the desired behavior for uncancellable contexts).
func doneCh(ctx *domain.Ctx) <-chan struct{} {
	if ctx.Context != nil {
		return ctx.Context.Done()
	}
	return nil
}

// actualStream issues the real source call with single-flight semantics:
// if an identical (or equality-invariant-equivalent) call is already in
// flight, attach to it instead of stampeding the source.
func (m *Manager) actualStream(ctx *domain.Ctx, call domain.Call) (domain.Stream, error) {
	key := call.Key()
	for {
		m.flightMu.Lock()
		f := m.flights[key]
		shared := "shared"
		if f == nil {
			f = m.equivalentFlightLocked(ctx, call)
			shared = "shared-equality"
		}
		if f != nil {
			f.mu.Lock()
			if f.abandoned {
				// The flight ended with an early close while we were looking
				// it up: its answers may be partial. Clear the dead index
				// entry ourselves (we hold flightMu) and start fresh.
				f.mu.Unlock()
				if cur, ok := m.flights[f.key]; ok && cur == f {
					delete(m.flights, f.key)
					m.obs().Gauge("hermes_cim_inflight_calls").Add(-1)
				}
				m.flightMu.Unlock()
				continue
			}
			f.readers++
			f.mu.Unlock()
			m.flightMu.Unlock()
			select {
			case <-f.ready:
			case <-doneCh(ctx):
				f.detach()
				return nil, ctx.Err()
			}
			if f.setupErr != nil {
				// The leader's call died at setup; retry as leader (the
				// failed flight was removed).
				f.detach()
				continue
			}
			m.obs().Counter("hermes_cim_singleflight_shares_total").Inc()
			ctx.Span.SetTag("singleflight", shared)
			if shared == "shared-equality" {
				ctx.Span.SetTag("serving", f.call.String())
			}
			m.bumpStats(func(st *Stats) { st.SingleFlightShares++ })
			return &flightReader{f: f, ctx: ctx}, nil
		}
		f = newFlight(m, call)
		f.readers = 1
		m.flights[key] = f
		m.obs().Gauge("hermes_cim_inflight_calls").Add(1)
		m.flightMu.Unlock()
		return f.lead(ctx)
	}
}

// equivalentFlightLocked scans the (small) in-flight set for a call an
// equality invariant proves has the identical answer set. Caller holds
// m.flightMu.
func (m *Manager) equivalentFlightLocked(ctx *domain.Ctx, call domain.Call) *flight {
	if len(m.flights) == 0 {
		return nil
	}
	for _, f := range m.flights {
		if m.provesEqual(ctx, call, f.call) {
			return f
		}
	}
	return nil
}

// provesEqual reports whether some equality invariant proves
// answers(a) = answers(b). Candidates come from the discrimination
// index (the linear walk over all registered invariants remains only as
// the LinearMatching debug oracle); the caller holds m.flightMu, so
// matching stays sequential regardless of bucket size.
func (m *Manager) provesEqual(ctx *domain.Ctx, a, b domain.Call) bool {
	cands := m.idx.Equalities(invindex.KeyOfCall(a))
	if m.cfg.LinearMatching {
		m.linearScans.Add(1)
		cands = nil
		for _, inv := range m.idx.All() {
			if inv.Rel != lang.RelEqual {
				continue
			}
			if !relevant(&inv.Left, a) && !relevant(&inv.Right, a) {
				continue
			}
			cands = append(cands, inv)
		}
	} else {
		m.indexProbe(ctx, len(cands))
	}
	for _, inv := range cands {
		ctx.Clock.Sleep(m.cfg.InvariantMatch)
		sides := [2][2]*lang.CallTemplate{
			{&inv.Left, &inv.Right},
			{&inv.Right, &inv.Left},
		}
		for _, pair := range sides {
			mine, other := pair[0], pair[1]
			theta, ok := unifyTemplate(term.Subst{}, mine, a)
			if !ok {
				continue
			}
			oc, ok := groundTemplate(other, theta)
			if !ok || !condHolds(inv.Cond, theta) {
				continue
			}
			if oc.Key() == b.Key() {
				return true
			}
		}
	}
	return false
}

// removeFlight detaches a flight from the index once it completed,
// failed, or was abandoned, so later identical calls hit the cache (or
// start a fresh fetch) instead of a dead flight.
func (m *Manager) removeFlight(f *flight) {
	m.flightMu.Lock()
	if cur, ok := m.flights[f.key]; ok && cur == f {
		delete(m.flights, f.key)
		m.obs().Gauge("hermes_cim_inflight_calls").Add(-1)
	}
	m.flightMu.Unlock()
}
