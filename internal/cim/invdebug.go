package cim

import (
	"fmt"
	"net/http"
	"time"

	"hermes/internal/lang"
)

// InvariantsHandler serves the /debug/invariants text view: the
// discrimination index's buckets (what a probe for each call shape would
// consider) joined with the savings ledger's per-invariant earnings, so
// an operator can see both how selective the index is and which
// invariants actually pay for themselves.
func (m *Manager) InvariantsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		buckets := m.idx.Buckets()
		earned := make(map[string]LedgerRow)
		for _, row := range m.Ledger().Invariants {
			earned[row.Key] = row
		}
		fmt.Fprintf(w, "invariant index: %d invariants in %d buckets (parallel match threshold %d, linear scans %d)\n",
			m.idx.Len(), len(buckets), m.parallelThreshold(), m.LinearScans())
		line := func(kind string, inv *lang.Invariant) {
			key := inv.String()
			if row, ok := earned[key]; ok {
				fmt.Fprintf(w, "  %s %s  [hits=%d saved_ms=%.1f]\n", kind, key,
					row.Hits, float64(row.Saved)/float64(time.Millisecond))
				return
			}
			fmt.Fprintf(w, "  %s %s\n", kind, key)
		}
		for _, b := range buckets {
			fmt.Fprintf(w, "\n%s: %d equalities, %d supersets, %d shapes, %d cached calls\n",
				b.Key, len(b.Equalities), len(b.Supersets), b.Shapes, b.CachedCalls)
			for _, inv := range b.Equalities {
				line("=", inv)
			}
			for _, inv := range b.Supersets {
				line(">=", inv)
			}
		}
	})
}
