// Package cim implements the Cache and Invariant Manager of the paper
// (§4): a result cache of ground domain calls and their answer sets, plus
// invariant-driven reuse. At run time the CIM behaves like any other
// domain: the rewriter redirects selected calls to it, and the CIM serves
// them from cache (exact match), from a different cached call that an
// equality invariant proves equivalent, or as a fast partial answer from a
// cached subset call — optionally overlapping the actual source call in
// parallel and deduplicating its answers against those already served.
//
// The CIM also realizes the paper's availability story: when the source is
// temporarily unreachable, cached (possibly partial) results are served
// instead of failing the query.
package cim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// Source says where a CIM response came from.
type Source int

// Response sources.
const (
	SourceActual Source = iota
	SourceCacheExact
	SourceCacheEquality
	SourceCachePartial
	// SourceCacheDegraded marks answers served purely from cache because
	// the source was unreachable (or its circuit breaker open): sound but
	// possibly stale/partial.
	SourceCacheDegraded
)

func (s Source) String() string {
	switch s {
	case SourceActual:
		return "actual"
	case SourceCacheExact:
		return "cache-exact"
	case SourceCacheEquality:
		return "cache-equality"
	case SourceCachePartial:
		return "cache-partial"
	case SourceCacheDegraded:
		return "cache-degraded"
	}
	return "?"
}

// EvictionPolicy selects which entries are evicted when the cache exceeds
// its budget.
type EvictionPolicy int

// Eviction policies: least-recently-used, or least observed source-call
// cost (keep what is most expensive to recompute).
const (
	EvictLRU EvictionPolicy = iota
	EvictCostWeighted
)

// Config tunes the CIM. Time parameters model the real costs the paper
// observed for cache operation (Figure 5's cache-only rows are not free:
// ≈300 ms to first answer including query initialization and display).
type Config struct {
	// LookupCost is charged per cache probe.
	LookupCost time.Duration
	// PerAnswer is charged per answer served from cache.
	PerAnswer time.Duration
	// InvariantMatch is charged per invariant tried against a call.
	InvariantMatch time.Duration
	// ScanPerEntry is charged per cache entry examined when an invariant
	// match requires scanning the cache (non-ground other side).
	ScanPerEntry time.Duration
	// DedupProbe is charged per actual-call answer compared against the
	// already-served partial answers ("CIM must keep the answers from the
	// cache in memory and compare them with the answers from the actual
	// call").
	DedupProbe time.Duration
	// ParallelActual launches the actual source call concurrently with
	// serving cached partial answers (the paper's recommended strategy);
	// when false the actual call starts only after the cache is drained.
	ParallelActual bool
	// FallbackOnUnavailable serves whatever the cache has (even partial)
	// when the actual source reports domain.ErrUnavailable.
	FallbackOnUnavailable bool
	// MaxEntries bounds the number of cached calls (0 = unlimited).
	MaxEntries int
	// MaxBytes bounds the total cached answer bytes (0 = unlimited).
	MaxBytes int
	// Policy selects the eviction policy.
	Policy EvictionPolicy
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		LookupCost:            1200 * time.Microsecond,
		PerAnswer:             800 * time.Microsecond,
		InvariantMatch:        900 * time.Microsecond,
		ScanPerEntry:          350 * time.Microsecond,
		DedupProbe:            500 * time.Microsecond,
		ParallelActual:        true,
		FallbackOnUnavailable: true,
	}
}

// Stats count CIM activity.
type Stats struct {
	ExactHits            int
	EqualityHits         int
	PartialHits          int
	Misses               int
	UnavailableFallbacks int
	// DegradedServes counts responses served purely from cache because
	// the source was down (subset of UnavailableFallbacks that produced a
	// degraded-tagged response).
	DegradedServes  int
	Evictions       int
	StoredEntries   int
	ServedFromCache int // answers served out of the cache
}

// Entry is one cached call with its answer set.
type Entry struct {
	Call    domain.Call
	Answers []term.Value
	// Complete is false when the answers are a known-sound but possibly
	// partial set (e.g. stored from a stream closed early). Incomplete
	// entries still serve as partial answers.
	Complete bool
	// Cost is the observed cost of the source call that produced the
	// answers; the cost-weighted eviction policy keeps expensive entries.
	Cost  domain.CostVector
	Bytes int

	lastUsed int64
}

// Caller executes actual source calls; satisfied by *domain.Registry.
type Caller interface {
	Call(ctx *domain.Ctx, c domain.Call) (domain.Stream, error)
}

// Manager is the cache and invariant manager.
type Manager struct {
	caller Caller
	cfg    Config

	mu         sync.Mutex
	entries    map[string]*Entry
	invariants []*lang.Invariant
	counter    int64
	totalBytes int
	stats      Stats
	// onMeasure observes completed actual calls (wired to the DCSM).
	onMeasure func(domain.Measurement)
	// ob receives CIM metrics and per-call span tags (nil = off).
	ob *obs.Observer
}

// New creates a manager that issues actual calls through caller.
func New(caller Caller, cfg Config) *Manager {
	return &Manager{caller: caller, cfg: cfg, entries: make(map[string]*Entry)}
}

// SetObserver installs the observability sink: lookup outcome counters,
// cache occupancy gauges, and outcome tags (cim=exact|equality|partial|miss,
// degraded, serving) on the span each call's Ctx carries.
func (m *Manager) SetObserver(o *obs.Observer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ob = o
}

// lookupLocked counts one cache probe outcome and tags the call's span
// with it. Caller holds m.mu (the span has its own lock).
func (m *Manager) lookupLocked(ctx *domain.Ctx, outcome string) {
	m.ob.Counter("hermes_cim_lookups_total", "outcome", outcome).Inc()
	ctx.Span.SetTag("cim", outcome)
}

// occupancyLocked refreshes the cache-size gauges. Caller holds m.mu.
func (m *Manager) occupancyLocked() {
	m.ob.Gauge("hermes_cim_entries").Set(float64(len(m.entries)))
	m.ob.Gauge("hermes_cim_bytes").Set(float64(m.totalBytes))
}

// degradedLocked counts a degraded (cache-only, source down) serve and
// marks the call's span. Caller holds m.mu.
func (m *Manager) degradedLocked(ctx *domain.Ctx) {
	m.ob.Counter("hermes_cim_degraded_total").Inc()
	ctx.Span.SetTag("degraded", "true")
}

// SetMeasurementObserver installs a hook that receives the measurement of
// every actual source call the CIM issues; the mediator wires this to the
// DCSM statistics cache.
func (m *Manager) SetMeasurementObserver(fn func(domain.Measurement)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onMeasure = fn
}

// AddInvariant validates and registers an invariant. Ill-formed invariants
// (free condition variables) are rejected: applying one could never be
// proven sound.
func (m *Manager) AddInvariant(inv *lang.Invariant) error {
	if err := inv.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.invariants = append(m.invariants, inv)
	return nil
}

// Invariants returns the registered invariants.
func (m *Manager) Invariants() []*lang.Invariant {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*lang.Invariant(nil), m.invariants...)
}

// Stats returns a snapshot of the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Len returns the number of cached entries.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Bytes returns the total cached answer bytes.
func (m *Manager) Bytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalBytes
}

// Clear drops all cached entries (invariants are kept).
func (m *Manager) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = make(map[string]*Entry)
	m.totalBytes = 0
	m.occupancyLocked()
}

// Lookup returns the cached entry for a call, if any, without charging any
// clock cost (introspection for tests and tools).
func (m *Manager) Lookup(c domain.Call) (*Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[c.Key()]
	return e, ok
}

// Store inserts (or replaces) a cache entry for a call.
func (m *Manager) Store(c domain.Call, answers []term.Value, complete bool, cost domain.CostVector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeLocked(c, answers, complete, cost)
}

func (m *Manager) storeLocked(c domain.Call, answers []term.Value, complete bool, cost domain.CostVector) {
	key := c.Key()
	if old, ok := m.entries[key]; ok {
		m.totalBytes -= old.Bytes
	}
	bytes := 0
	for _, v := range answers {
		bytes += term.SizeBytes(v)
	}
	m.counter++
	e := &Entry{Call: c, Answers: answers, Complete: complete, Cost: cost, Bytes: bytes, lastUsed: m.counter}
	m.entries[key] = e
	m.totalBytes += bytes
	m.stats.StoredEntries++
	m.evictLocked()
	m.occupancyLocked()
}

// evictLocked enforces the entry/byte budgets.
func (m *Manager) evictLocked() {
	over := func() bool {
		if m.cfg.MaxEntries > 0 && len(m.entries) > m.cfg.MaxEntries {
			return true
		}
		if m.cfg.MaxBytes > 0 && m.totalBytes > m.cfg.MaxBytes {
			return true
		}
		return false
	}
	for over() && len(m.entries) > 0 {
		var victim string
		var victimEntry *Entry
		for k, e := range m.entries {
			if victimEntry == nil || m.evictBefore(e, victimEntry) {
				victim, victimEntry = k, e
			}
		}
		m.totalBytes -= victimEntry.Bytes
		delete(m.entries, victim)
		m.stats.Evictions++
		m.ob.Counter("hermes_cim_evictions_total").Inc()
	}
}

// evictBefore reports whether a should be evicted before b under the
// configured policy.
func (m *Manager) evictBefore(a, b *Entry) bool {
	switch m.cfg.Policy {
	case EvictCostWeighted:
		if a.Cost.TAll != b.Cost.TAll {
			return a.Cost.TAll < b.Cost.TAll
		}
		return a.lastUsed < b.lastUsed
	default: // EvictLRU
		return a.lastUsed < b.lastUsed
	}
}

func (m *Manager) touchLocked(e *Entry) {
	m.counter++
	e.lastUsed = m.counter
}

// Response is the result of routing a call through the CIM.
type Response struct {
	Stream domain.Stream
	Source Source
	// CachedAnswers is how many answers the cache contributed (all of them
	// for exact/equality hits; the partial prefix for subset hits).
	CachedAnswers int
	// ServingCall is the cached call whose answers were used (differs from
	// the requested call on invariant hits).
	ServingCall domain.Call
	// Degraded marks a response that fell back to cache because the source
	// was unreachable — either entirely (SourceCacheDegraded) or part-way
	// through completing a partial hit. The answers are sound (every tuple
	// is a true answer) but may be a strict subset of the full answer set.
	// For partial hits the flag is set lazily, when the completion call
	// fails: it is authoritative once the stream is drained.
	Degraded bool
}

// cacheStream serves a materialized answer slice, charging PerAnswer per
// value.
func (m *Manager) cacheStream(ctx *domain.Ctx, answers []term.Value) domain.Stream {
	return domain.NewTimedSliceStream(answers, ctx.Clock, func(term.Value) time.Duration {
		return m.cfg.PerAnswer
	})
}

// actualStream issues the real source call, measured; the measurement is
// stored in the cache and forwarded to the observer.
func (m *Manager) actualStream(ctx *domain.Ctx, call domain.Call) (domain.Stream, error) {
	start := ctx.Clock.Now()
	inner, err := m.caller.Call(ctx, call)
	if err != nil {
		return nil, err
	}
	var collected []term.Value
	tap := domain.NewFuncStream(func() (term.Value, bool, error) {
		v, ok, err := inner.Next()
		if ok {
			collected = append(collected, v)
		}
		return v, ok, err
	}, inner.Close)
	return domain.NewMeasuredStreamAt(tap, ctx.Clock, call, start, func(meas domain.Measurement) {
		m.mu.Lock()
		m.storeLocked(call, collected, meas.Complete, meas.Cost)
		obs := m.onMeasure
		m.mu.Unlock()
		if obs != nil {
			obs(meas)
		}
	}), nil
}

// CallThrough routes a ground call through the cache. The returned stream
// is lazy: for partial hits the actual source call starts only if the
// consumer drains past the cached answers, so interactive queries that stop
// early never pay for it (§4.1).
func (m *Manager) CallThrough(ctx *domain.Ctx, call domain.Call) (*Response, error) {
	m.mu.Lock()
	ctx.Clock.Sleep(m.cfg.LookupCost)

	// 1. Exact hit on a complete entry.
	if e, ok := m.entries[call.Key()]; ok && e.Complete {
		m.touchLocked(e)
		m.stats.ExactHits++
		m.stats.ServedFromCache += len(e.Answers)
		m.lookupLocked(ctx, "exact")
		answers := e.Answers
		m.mu.Unlock()
		return &Response{
			Stream:        m.cacheStream(ctx, answers),
			Source:        SourceCacheExact,
			CachedAnswers: len(answers),
			ServingCall:   call,
		}, nil
	}

	// 2. Equality invariants: a different cached call with a provably
	// identical answer set.
	if e := m.findEqualityLocked(ctx, call); e != nil {
		m.touchLocked(e)
		m.stats.EqualityHits++
		m.stats.ServedFromCache += len(e.Answers)
		m.lookupLocked(ctx, "equality")
		ctx.Span.SetTag("serving", e.Call.String())
		answers := e.Answers
		serving := e.Call
		m.mu.Unlock()
		return &Response{
			Stream:        m.cacheStream(ctx, answers),
			Source:        SourceCacheEquality,
			CachedAnswers: len(answers),
			ServingCall:   serving,
		}, nil
	}

	// 3. Subset invariants (or an incomplete exact entry): a cached call
	// whose answers are a sound partial answer for ours.
	if e := m.findPartialLocked(ctx, call); e != nil {
		m.touchLocked(e)
		m.stats.PartialHits++
		m.stats.ServedFromCache += len(e.Answers)
		m.lookupLocked(ctx, "partial")
		ctx.Span.SetTag("serving", e.Call.String())
		resp := m.servePartialThenActual(ctx, call, e)
		m.mu.Unlock()
		return resp, nil
	}

	// 4. Miss: actual call. When the source is unreachable (including an
	// open circuit breaker, which wraps domain.ErrUnavailable), degrade
	// to whatever sound answers the cache holds instead of failing.
	m.stats.Misses++
	m.lookupLocked(ctx, "miss")
	m.mu.Unlock()
	stream, err := m.actualStream(ctx, call)
	if err != nil {
		if m.cfg.FallbackOnUnavailable && isUnavailable(err) {
			if resp, ok := m.Degrade(ctx, call); ok {
				return resp, nil
			}
		}
		return nil, err
	}
	return &Response{Stream: stream, Source: SourceActual, ServingCall: call}, nil
}

// Degrade serves the best sound cached answer for a call without touching
// the source: an exact entry (complete or partial), an equality-invariant
// match, or a subset-invariant partial answer. ok=false when the cache
// holds nothing sound for the call. The response is tagged Degraded; its
// answers are always a subset of the true answer set.
func (m *Manager) Degrade(ctx *domain.Ctx, call domain.Call) (*Response, bool) {
	m.mu.Lock()
	ctx.Clock.Sleep(m.cfg.LookupCost)
	var e *Entry
	if ex, ok := m.entries[call.Key()]; ok {
		e = ex
	} else if eq := m.findEqualityLocked(ctx, call); eq != nil {
		e = eq
	} else if pe := m.findPartialLocked(ctx, call); pe != nil {
		e = pe
	}
	if e == nil {
		m.mu.Unlock()
		return nil, false
	}
	m.touchLocked(e)
	m.stats.UnavailableFallbacks++
	m.stats.DegradedServes++
	m.stats.ServedFromCache += len(e.Answers)
	m.lookupLocked(ctx, "degraded")
	m.degradedLocked(ctx)
	ctx.Span.SetTag("serving", e.Call.String())
	answers := e.Answers
	serving := e.Call
	m.mu.Unlock()
	return &Response{
		Stream:        m.cacheStream(ctx, answers),
		Source:        SourceCacheDegraded,
		CachedAnswers: len(answers),
		ServingCall:   serving,
		Degraded:      true,
	}, true
}

// servePartialThenActual builds the two-phase stream: cached answers first
// (fast first answers), then the actual call's remaining answers
// deduplicated against them. With ParallelActual the actual call is
// accounted on a clock forked at request time, so its latency overlaps the
// cached phase.
func (m *Manager) servePartialThenActual(ctx *domain.Ctx, call domain.Call, e *Entry) *Response {
	cached := e.Answers
	seed := make(map[string]struct{}, len(cached))
	var fork *domain.Ctx
	if m.cfg.ParallelActual {
		fork = ctx.Fork() // forked now == "launched in parallel at request time"
	}
	idx := 0
	var actual domain.Stream
	var actualErr error
	started := false
	unavailableOK := m.cfg.FallbackOnUnavailable
	resp := &Response{Source: SourceCachePartial, CachedAnswers: len(cached), ServingCall: e.Call}

	next := func() (term.Value, bool, error) {
		if idx < len(cached) {
			v := cached[idx]
			idx++
			ctx.Clock.Sleep(m.cfg.PerAnswer)
			seed[v.Key()] = struct{}{}
			return v, true, nil
		}
		if !started {
			started = true
			actx := ctx
			if fork != nil {
				actx = fork
			}
			var s domain.Stream
			s, actualErr = m.actualStream(actx, call)
			if actualErr == nil {
				s = domain.NewDedupStream(s, seed).WithProbeCost(ctx.Clock, m.cfg.DedupProbe)
				actual = s
			}
		}
		if actualErr != nil {
			if unavailableOK && isUnavailable(actualErr) {
				m.mu.Lock()
				m.stats.UnavailableFallbacks++
				m.stats.DegradedServes++
				m.degradedLocked(ctx)
				m.mu.Unlock()
				resp.Degraded = true
				return nil, false, nil // partial answers are the best we can do
			}
			return nil, false, actualErr
		}
		v, ok, err := actual.Next()
		if fork != nil {
			ctx.Clock.Join(fork.Clock) // wait for the parallel call to catch up
		}
		if err != nil && unavailableOK && isUnavailable(err) {
			// The source died mid-completion: everything emitted so far
			// (cached prefix + actual answers) is sound, so degrade to a
			// partial result instead of failing the query.
			m.mu.Lock()
			m.stats.UnavailableFallbacks++
			m.stats.DegradedServes++
			m.degradedLocked(ctx)
			m.mu.Unlock()
			resp.Degraded = true
			return nil, false, nil
		}
		return v, ok, err
	}
	closer := func() error {
		if actual != nil {
			return actual.Close()
		}
		return nil
	}
	resp.Stream = domain.NewFuncStream(next, closer)
	return resp
}

// isUnavailable walks the full wrap tree (errors.Is handles the
// multi-error chains the resilience layer builds).
func isUnavailable(err error) bool {
	return errors.Is(err, domain.ErrUnavailable)
}

// Call implements domain.Domain using the paper's decoding scheme: a call
// to CIM of the form cim:domain&function(args) is translated into a call to
// function in domain, routed through the cache. The separator is '&'
// written as "__" in function names since '&' is not an identifier
// character ("cim:avis__frames_to_objects(...)").
func (m *Manager) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	call, err := DecodeFunction(fn, args)
	if err != nil {
		return nil, err
	}
	resp, err := m.CallThrough(ctx, call)
	if err != nil {
		return nil, err
	}
	return resp.Stream, nil
}

// Name implements domain.Domain.
func (m *Manager) Name() string { return "cim" }

// Functions implements domain.Domain. The CIM accepts any encoded
// domain&function name, so it advertises no fixed specs.
func (m *Manager) Functions() []domain.FuncSpec { return nil }

// EncodeFunction builds the CIM-routed function name for a domain call.
func EncodeFunction(dom, fn string) string { return dom + "__" + fn }

// DecodeFunction splits a CIM-routed function name back into the original
// call.
func DecodeFunction(fn string, args []term.Value) (domain.Call, error) {
	for i := 0; i+1 < len(fn); i++ {
		if fn[i] == '_' && fn[i+1] == '_' {
			return domain.Call{Domain: fn[:i], Function: fn[i+2:], Args: args}, nil
		}
	}
	return domain.Call{}, fmt.Errorf("cim: function %q is not of the form domain__function", fn)
}
