// Package cim implements the Cache and Invariant Manager of the paper
// (§4): a result cache of ground domain calls and their answer sets, plus
// invariant-driven reuse. At run time the CIM behaves like any other
// domain: the rewriter redirects selected calls to it, and the CIM serves
// them from cache (exact match), from a different cached call that an
// equality invariant proves equivalent, or as a fast partial answer from a
// cached subset call — optionally overlapping the actual source call in
// parallel and deduplicating its answers against those already served.
//
// The CIM also realizes the paper's availability story: when the source is
// temporarily unreachable, cached (possibly partial) results are served
// instead of failing the query.
//
// The manager is safe for concurrent use by parallel query branches. The
// cache map is sharded (shard.go) so lookups from different branches do
// not serialize behind one lock, and concurrent misses on the same call
// coalesce into a single source fetch (flight.go). Locks are split by
// concern — stats, invariants, hooks, eviction, flights — and none is held
// while clock time is charged or a source is called.
package cim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/domain"
	"hermes/internal/invindex"
	"hermes/internal/lang"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// Source says where a CIM response came from.
type Source int

// Response sources.
const (
	SourceActual Source = iota
	SourceCacheExact
	SourceCacheEquality
	SourceCachePartial
	// SourceCacheDegraded marks answers served purely from cache because
	// the source was unreachable (or its circuit breaker open): sound but
	// possibly stale/partial.
	SourceCacheDegraded
)

func (s Source) String() string {
	switch s {
	case SourceActual:
		return "actual"
	case SourceCacheExact:
		return "cache-exact"
	case SourceCacheEquality:
		return "cache-equality"
	case SourceCachePartial:
		return "cache-partial"
	case SourceCacheDegraded:
		return "cache-degraded"
	}
	return "?"
}

// EvictionPolicy selects which entries are evicted when the cache exceeds
// its budget.
type EvictionPolicy int

// Eviction policies: least-recently-used, or least observed source-call
// cost (keep what is most expensive to recompute).
const (
	EvictLRU EvictionPolicy = iota
	EvictCostWeighted
)

// Config tunes the CIM. Time parameters model the real costs the paper
// observed for cache operation (Figure 5's cache-only rows are not free:
// ≈300 ms to first answer including query initialization and display).
type Config struct {
	// LookupCost is charged per cache probe.
	LookupCost time.Duration
	// PerAnswer is charged per answer served from cache.
	PerAnswer time.Duration
	// InvariantMatch is charged per invariant tried against a call.
	InvariantMatch time.Duration
	// ScanPerEntry is charged per cache entry examined when an invariant
	// match requires scanning the cache (non-ground other side).
	ScanPerEntry time.Duration
	// DedupProbe is charged per actual-call answer compared against the
	// already-served partial answers ("CIM must keep the answers from the
	// cache in memory and compare them with the answers from the actual
	// call").
	DedupProbe time.Duration
	// ParallelActual launches the actual source call concurrently with
	// serving cached partial answers (the paper's recommended strategy);
	// when false the actual call starts only after the cache is drained.
	ParallelActual bool
	// FallbackOnUnavailable serves whatever the cache has (even partial)
	// when the actual source reports domain.ErrUnavailable.
	FallbackOnUnavailable bool
	// MaxEntries bounds the number of cached calls (0 = unlimited).
	MaxEntries int
	// MaxBytes bounds the total cached answer bytes (0 = unlimited).
	MaxBytes int
	// Policy selects the eviction policy.
	Policy EvictionPolicy
	// ParallelMatchThreshold is the equality-candidate bucket size at
	// which invariant matching fans out across the query's scheduler
	// lanes (0 = DefaultParallelMatchThreshold; negative disables
	// fan-out). Small buckets stay sequential: forking clocks costs more
	// than the handful of match attempts it would overlap.
	ParallelMatchThreshold int
	// LinearMatching restores the pre-index full-scan matching paths
	// (every registered invariant tried per probe, cache scans walking a
	// whole store snapshot). It exists as the differential oracle for the
	// indexed path and for debugging; every linear scan bumps the
	// manager's LinearScans counter, which tests assert stays zero on the
	// serve path when the index is active.
	LinearMatching bool
}

// DefaultParallelMatchThreshold is the equality-candidate bucket size at
// which matching fans out when Config.ParallelMatchThreshold is zero.
const DefaultParallelMatchThreshold = 64

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		LookupCost:            1200 * time.Microsecond,
		PerAnswer:             800 * time.Microsecond,
		InvariantMatch:        900 * time.Microsecond,
		ScanPerEntry:          350 * time.Microsecond,
		DedupProbe:            500 * time.Microsecond,
		ParallelActual:        true,
		FallbackOnUnavailable: true,
	}
}

// Stats count CIM activity.
type Stats struct {
	ExactHits            int
	EqualityHits         int
	PartialHits          int
	Misses               int
	UnavailableFallbacks int
	// DegradedServes counts responses served purely from cache because
	// the source was down (subset of UnavailableFallbacks that produced a
	// degraded-tagged response).
	DegradedServes  int
	Evictions       int
	StoredEntries   int
	ServedFromCache int // answers served out of the cache
	// SingleFlightShares counts calls that attached to an identical (or
	// invariant-equivalent) call already in flight instead of issuing
	// their own source fetch.
	SingleFlightShares int
}

// Entry is one cached call with its answer set. Entries are immutable
// once stored (replacement swaps the whole entry) except for the recency
// stamp, which is atomic.
type Entry struct {
	Call    domain.Call
	Answers []term.Value
	// Complete is false when the answers are a known-sound but possibly
	// partial set (e.g. stored from a stream closed early). Incomplete
	// entries still serve as partial answers.
	Complete bool
	// Cost is the observed cost of the source call that produced the
	// answers; the cost-weighted eviction policy keeps expensive entries.
	Cost  domain.CostVector
	Bytes int

	lastUsed atomic.Int64
}

// Caller executes actual source calls; satisfied by *domain.Registry.
type Caller interface {
	Call(ctx *domain.Ctx, c domain.Call) (domain.Stream, error)
}

// Manager is the cache and invariant manager.
type Manager struct {
	caller Caller
	cfg    Config

	// store is the sharded cache map; counter stamps recency.
	store   *store
	counter atomic.Int64

	statsMu sync.Mutex
	stats   Stats

	// idx is the shared invariant + cached-call discrimination index:
	// equality/partial probes, flight attachment and cache scans consult
	// it instead of walking the invariant list or a store snapshot.
	idx *invindex.Index
	// linearScans counts full linear scans taken by the debug-only
	// LinearMatching paths. Zero whenever the index serves the query path.
	linearScans atomic.Int64

	// hookMu guards the optional hooks, set once at wiring time.
	hookMu sync.RWMutex
	// onMeasure observes completed actual calls (wired to the DCSM).
	onMeasure func(domain.Measurement)
	// ob receives CIM metrics and per-call span tags (nil = off).
	ob *obs.Observer
	// costModel prices the source call a cache hit avoided (wired to the
	// DCSM estimator; nil = use the serving entry's observed cost).
	costModel func(domain.Pattern) (domain.CostVector, bool)
	// onInvalidate observes call keys whose cached answers stopped being
	// current: entry refreshed, evicted, cleared, replaced by a snapshot
	// load, or served degraded. The memo cache wires it to drop
	// intermediate relations built from those answers.
	onInvalidate func(callKey string)

	// ledger attributes hits and avoided cost per invariant and per
	// cache entry (ledger.go).
	ledger ledger

	// evictMu serializes budget enforcement (one evictor at a time).
	evictMu sync.Mutex

	// flightMu guards the in-flight call index (flight.go).
	flightMu sync.Mutex
	flights  map[string]*flight
}

// New creates a manager that issues actual calls through caller.
func New(caller Caller, cfg Config) *Manager {
	return &Manager{
		caller:  caller,
		cfg:     cfg,
		store:   newStore(),
		idx:     invindex.New(),
		flights: make(map[string]*flight),
	}
}

// SetObserver installs the observability sink: lookup outcome counters,
// cache occupancy gauges, and outcome tags (cim=exact|equality|partial|miss,
// degraded, serving) on the span each call's Ctx carries.
func (m *Manager) SetObserver(o *obs.Observer) {
	m.hookMu.Lock()
	defer m.hookMu.Unlock()
	m.ob = o
}

// obs returns the installed observer (nil-safe: a nil Observer's methods
// are no-ops).
func (m *Manager) obs() *obs.Observer {
	m.hookMu.RLock()
	defer m.hookMu.RUnlock()
	return m.ob
}

// SetOnInvalidate installs the invalidation observer: fn is called with a
// call key whenever the cached answers for that call stop being current —
// the entry was refreshed with new answers, evicted, cleared, replaced by
// a snapshot load, or the call was served degraded (cached-while-down).
// The memo cache subscribes to drop dependent intermediate relations. fn
// must be safe for concurrent calls.
func (m *Manager) SetOnInvalidate(fn func(callKey string)) {
	m.hookMu.Lock()
	defer m.hookMu.Unlock()
	m.onInvalidate = fn
}

// invalidate reports a no-longer-current call key to the subscriber.
func (m *Manager) invalidate(callKey string) {
	m.hookMu.RLock()
	fn := m.onInvalidate
	m.hookMu.RUnlock()
	if fn != nil {
		fn(callKey)
	}
}

// measureHook returns the installed measurement observer.
func (m *Manager) measureHook() func(domain.Measurement) {
	m.hookMu.RLock()
	defer m.hookMu.RUnlock()
	return m.onMeasure
}

// bumpStats applies one update to the activity counters.
func (m *Manager) bumpStats(fn func(*Stats)) {
	m.statsMu.Lock()
	fn(&m.stats)
	m.statsMu.Unlock()
}

// lookup counts one cache probe outcome and tags the call's span with it.
func (m *Manager) lookup(ctx *domain.Ctx, outcome string) {
	m.obs().Counter("hermes_cim_lookups_total", "outcome", outcome).Inc()
	ctx.Span.SetTag("cim", outcome)
}

// occupancy refreshes the cache-size gauges.
func (m *Manager) occupancy() {
	o := m.obs()
	o.Gauge("hermes_cim_entries").Set(float64(m.store.count.Load()))
	o.Gauge("hermes_cim_bytes").Set(float64(m.store.bytes.Load()))
}

// degraded counts a degraded (cache-only, source down) serve and marks the
// call's span.
func (m *Manager) degraded(ctx *domain.Ctx) {
	m.obs().Counter("hermes_cim_degraded_total").Inc()
	ctx.Span.SetTag("degraded", "true")
}

// SetMeasurementObserver installs a hook that receives the measurement of
// every actual source call the CIM issues; the mediator wires this to the
// DCSM statistics cache.
func (m *Manager) SetMeasurementObserver(fn func(domain.Measurement)) {
	m.hookMu.Lock()
	defer m.hookMu.Unlock()
	m.onMeasure = fn
}

// AddInvariant validates and registers an invariant into the shared
// discrimination index. Ill-formed invariants (free condition variables)
// are rejected: applying one could never be proven sound.
func (m *Manager) AddInvariant(inv *lang.Invariant) error {
	if err := inv.Validate(); err != nil {
		return err
	}
	m.idx.AddInvariant(inv)
	return nil
}

// Invariants returns the registered invariants.
func (m *Manager) Invariants() []*lang.Invariant {
	return append([]*lang.Invariant(nil), m.idx.All()...)
}

// Index exposes the invariant discrimination index (introspection and
// cross-layer wiring: the rewriter's routing enumeration consults it).
func (m *Manager) Index() *invindex.Index { return m.idx }

// InvariantCoverage reports whether any registered invariant could apply
// to calls of (dom, fn, arity). It is the rewriter's
// Config.InvariantCoverage hook.
func (m *Manager) InvariantCoverage(dom, fn string, arity int) bool {
	return m.idx.Covered(dom, fn, arity)
}

// LinearScans returns how many debug-only full linear scans the manager
// has performed. On the indexed serve path this stays zero; the
// differential harness runs with Config.LinearMatching to exercise the
// pre-index oracle.
func (m *Manager) LinearScans() int64 { return m.linearScans.Load() }

// Stats returns a snapshot of the activity counters.
func (m *Manager) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats
}

// Len returns the number of cached entries.
func (m *Manager) Len() int { return int(m.store.count.Load()) }

// Bytes returns the total cached answer bytes.
func (m *Manager) Bytes() int { return int(m.store.bytes.Load()) }

// Clear drops all cached entries (invariants are kept). Every dropped
// call key is reported to the invalidation subscriber.
func (m *Manager) Clear() {
	dropped := m.store.snapshot()
	m.store.clear()
	m.idx.ResetCalls(nil)
	for _, e := range dropped {
		m.invalidate(e.Call.Key())
	}
	m.occupancy()
}

// Lookup returns the cached entry for a call, if any, without charging any
// clock cost (introspection for tests and tools).
func (m *Manager) Lookup(c domain.Call) (*Entry, bool) {
	return m.store.get(c.Key())
}

// Store inserts (or replaces) a cache entry for a call.
func (m *Manager) Store(c domain.Call, answers []term.Value, complete bool, cost domain.CostVector) {
	m.storeEntry(c, answers, complete, cost)
}

func (m *Manager) storeEntry(c domain.Call, answers []term.Value, complete bool, cost domain.CostVector) {
	bytes := 0
	for _, v := range answers {
		bytes += term.SizeBytes(v)
	}
	e := &Entry{Call: c, Answers: answers, Complete: complete, Cost: cost, Bytes: bytes}
	e.lastUsed.Store(m.counter.Add(1))
	m.idx.AddCall(c)
	if old := m.store.put(c.Key(), e); old != nil {
		// A refresh replaced previously served answers: memo relations
		// built from the old entry are stale. A fresh store fires nothing —
		// the miss that produced it is itself feeding an in-progress fill.
		m.invalidate(c.Key())
	}
	m.bumpStats(func(st *Stats) { st.StoredEntries++ })
	m.evict()
	m.occupancy()
}

// evict enforces the entry/byte budgets. Victim selection scans a
// snapshot, so no shard lock is held across the scan; removal re-checks
// the entry is still current.
func (m *Manager) evict() {
	over := func() bool {
		if m.cfg.MaxEntries > 0 && int(m.store.count.Load()) > m.cfg.MaxEntries {
			return true
		}
		if m.cfg.MaxBytes > 0 && int(m.store.bytes.Load()) > m.cfg.MaxBytes {
			return true
		}
		return false
	}
	if !over() {
		return
	}
	m.evictMu.Lock()
	defer m.evictMu.Unlock()
	for over() {
		var victim *Entry
		for _, e := range m.store.snapshot() {
			if victim == nil || m.evictBefore(e, victim) {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		if m.store.removeIf(victim.Call.Key(), victim) {
			m.idx.RemoveCall(victim.Call)
			m.invalidate(victim.Call.Key())
			m.bumpStats(func(st *Stats) { st.Evictions++ })
			m.obs().Counter("hermes_cim_evictions_total").Inc()
		}
	}
}

// evictBefore reports whether a should be evicted before b under the
// configured policy.
func (m *Manager) evictBefore(a, b *Entry) bool {
	switch m.cfg.Policy {
	case EvictCostWeighted:
		if a.Cost.TAll != b.Cost.TAll {
			return a.Cost.TAll < b.Cost.TAll
		}
		return a.lastUsed.Load() < b.lastUsed.Load()
	default: // EvictLRU
		return a.lastUsed.Load() < b.lastUsed.Load()
	}
}

func (m *Manager) touch(e *Entry) {
	e.lastUsed.Store(m.counter.Add(1))
}

// Response is the result of routing a call through the CIM.
type Response struct {
	Stream domain.Stream
	Source Source
	// CachedAnswers is how many answers the cache contributed (all of them
	// for exact/equality hits; the partial prefix for subset hits).
	CachedAnswers int
	// ServingCall is the cached call whose answers were used (differs from
	// the requested call on invariant hits).
	ServingCall domain.Call
	// Degraded marks a response that fell back to cache because the source
	// was unreachable — either entirely (SourceCacheDegraded) or part-way
	// through completing a partial hit. The answers are sound (every tuple
	// is a true answer) but may be a strict subset of the full answer set.
	// For partial hits the flag is set lazily, when the completion call
	// fails: it is authoritative once the stream is drained.
	Degraded bool
}

// cacheStream serves a materialized answer slice, charging PerAnswer per
// value.
func (m *Manager) cacheStream(ctx *domain.Ctx, answers []term.Value) domain.Stream {
	return domain.NewTimedSliceStream(answers, ctx.Clock, func(term.Value) time.Duration {
		return m.cfg.PerAnswer
	})
}

// CallThrough routes a ground call through the cache. The returned stream
// is lazy: for partial hits the actual source call starts only if the
// consumer drains past the cached answers, so interactive queries that stop
// early never pay for it (§4.1).
func (m *Manager) CallThrough(ctx *domain.Ctx, call domain.Call) (*Response, error) {
	ctx.Clock.Sleep(m.cfg.LookupCost)

	// 1. Exact hit on a complete entry.
	if e, ok := m.store.get(call.Key()); ok && e.Complete {
		m.touch(e)
		m.bumpStats(func(st *Stats) {
			st.ExactHits++
			st.ServedFromCache += len(e.Answers)
		})
		m.lookup(ctx, "exact")
		m.credit(ctx, call, e, nil, true)
		return &Response{
			Stream:        m.cacheStream(ctx, e.Answers),
			Source:        SourceCacheExact,
			CachedAnswers: len(e.Answers),
			ServingCall:   call,
		}, nil
	}

	// 2. Equality invariants: a different cached call with a provably
	// identical answer set.
	if e, inv := m.findEquality(ctx, call); e != nil {
		m.touch(e)
		m.bumpStats(func(st *Stats) {
			st.EqualityHits++
			st.ServedFromCache += len(e.Answers)
		})
		m.lookup(ctx, "equality")
		ctx.Span.SetTag("serving", e.Call.String())
		m.credit(ctx, call, e, inv, true)
		return &Response{
			Stream:        m.cacheStream(ctx, e.Answers),
			Source:        SourceCacheEquality,
			CachedAnswers: len(e.Answers),
			ServingCall:   e.Call,
		}, nil
	}

	// 3. Subset invariants (or an incomplete exact entry): a cached call
	// whose answers are a sound partial answer for ours.
	if e, inv := m.findPartial(ctx, call); e != nil {
		m.touch(e)
		m.bumpStats(func(st *Stats) {
			st.PartialHits++
			st.ServedFromCache += len(e.Answers)
		})
		m.lookup(ctx, "partial")
		ctx.Span.SetTag("serving", e.Call.String())
		// Hits only, no savings: the actual call still runs to complete
		// the partial answer.
		m.credit(ctx, call, e, inv, false)
		return m.servePartialThenActual(ctx, call, e), nil
	}

	// 4. Miss: actual call. When the source is unreachable (including an
	// open circuit breaker, which wraps domain.ErrUnavailable), degrade
	// to whatever sound answers the cache holds instead of failing.
	m.bumpStats(func(st *Stats) { st.Misses++ })
	m.lookup(ctx, "miss")
	stream, err := m.actualStream(ctx, call)
	if err != nil {
		if m.cfg.FallbackOnUnavailable && isUnavailable(err) {
			if resp, ok := m.Degrade(ctx, call); ok {
				return resp, nil
			}
		}
		return nil, err
	}
	return &Response{Stream: stream, Source: SourceActual, ServingCall: call}, nil
}

// Degrade serves the best sound cached answer for a call without touching
// the source: an exact entry (complete or partial), an equality-invariant
// match, or a subset-invariant partial answer. ok=false when the cache
// holds nothing sound for the call. The response is tagged Degraded; its
// answers are always a subset of the true answer set.
func (m *Manager) Degrade(ctx *domain.Ctx, call domain.Call) (*Response, bool) {
	ctx.Clock.Sleep(m.cfg.LookupCost)
	var e *Entry
	var inv *lang.Invariant
	if ex, ok := m.store.get(call.Key()); ok {
		e = ex
	} else if eq, eqInv := m.findEquality(ctx, call); eq != nil {
		e, inv = eq, eqInv
	} else if pe, peInv := m.findPartial(ctx, call); pe != nil {
		e, inv = pe, peInv
	}
	if e == nil {
		return nil, false
	}
	m.touch(e)
	m.bumpStats(func(st *Stats) {
		st.UnavailableFallbacks++
		st.DegradedServes++
		st.ServedFromCache += len(e.Answers)
	})
	m.lookup(ctx, "degraded")
	m.degraded(ctx)
	ctx.Span.SetTag("serving", e.Call.String())
	// Hits only, no savings: with the source down there was no working
	// call to avoid.
	m.credit(ctx, call, e, inv, false)
	// The serve is degraded: memo relations previously built from this
	// call's answers must not outlive the outage as exact.
	m.invalidate(call.Key())
	return &Response{
		Stream:        m.cacheStream(ctx, e.Answers),
		Source:        SourceCacheDegraded,
		CachedAnswers: len(e.Answers),
		ServingCall:   e.Call,
		Degraded:      true,
	}, true
}

// servePartialThenActual builds the two-phase stream: cached answers first
// (fast first answers), then the actual call's remaining answers
// deduplicated against them. With ParallelActual the actual call is
// accounted on a clock forked at request time, so its latency overlaps the
// cached phase. No manager lock is held anywhere in the stream path — the
// stats counters have their own mutex.
func (m *Manager) servePartialThenActual(ctx *domain.Ctx, call domain.Call, e *Entry) *Response {
	cached := e.Answers
	seed := make(map[string]struct{}, len(cached))
	var fork *domain.Ctx
	if m.cfg.ParallelActual {
		fork = ctx.Fork() // forked now == "launched in parallel at request time"
	}
	idx := 0
	var actual domain.Stream
	var actualErr error
	started := false
	unavailableOK := m.cfg.FallbackOnUnavailable
	resp := &Response{Source: SourceCachePartial, CachedAnswers: len(cached), ServingCall: e.Call}

	next := func() (term.Value, bool, error) {
		if idx < len(cached) {
			v := cached[idx]
			idx++
			ctx.Clock.Sleep(m.cfg.PerAnswer)
			seed[v.Key()] = struct{}{}
			return v, true, nil
		}
		if !started {
			started = true
			actx := ctx
			if fork != nil {
				actx = fork
			}
			var s domain.Stream
			s, actualErr = m.actualStream(actx, call)
			if actualErr == nil {
				s = domain.NewDedupStream(s, seed).WithProbeCost(ctx.Clock, m.cfg.DedupProbe)
				actual = s
			}
		}
		if actualErr != nil {
			if unavailableOK && isUnavailable(actualErr) {
				m.bumpStats(func(st *Stats) {
					st.UnavailableFallbacks++
					st.DegradedServes++
				})
				m.degraded(ctx)
				resp.Degraded = true
				m.invalidate(call.Key())
				return nil, false, nil // partial answers are the best we can do
			}
			return nil, false, actualErr
		}
		v, ok, err := actual.Next()
		if fork != nil {
			ctx.Clock.Join(fork.Clock) // wait for the parallel call to catch up
		}
		if err != nil && unavailableOK && isUnavailable(err) {
			// The source died mid-completion: everything emitted so far
			// (cached prefix + actual answers) is sound, so degrade to a
			// partial result instead of failing the query.
			m.bumpStats(func(st *Stats) {
				st.UnavailableFallbacks++
				st.DegradedServes++
			})
			m.degraded(ctx)
			resp.Degraded = true
			m.invalidate(call.Key())
			return nil, false, nil
		}
		return v, ok, err
	}
	closer := func() error {
		if actual != nil {
			return actual.Close()
		}
		return nil
	}
	resp.Stream = domain.NewFuncStream(next, closer)
	return resp
}

// isUnavailable walks the full wrap tree (errors.Is handles the
// multi-error chains the resilience layer builds).
func isUnavailable(err error) bool {
	return errors.Is(err, domain.ErrUnavailable)
}

// Call implements domain.Domain using the paper's decoding scheme: a call
// to CIM of the form cim:domain&function(args) is translated into a call to
// function in domain, routed through the cache. The separator is '&'
// written as "__" in function names since '&' is not an identifier
// character ("cim:avis__frames_to_objects(...)").
func (m *Manager) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	call, err := DecodeFunction(fn, args)
	if err != nil {
		return nil, err
	}
	resp, err := m.CallThrough(ctx, call)
	if err != nil {
		return nil, err
	}
	return resp.Stream, nil
}

// Name implements domain.Domain.
func (m *Manager) Name() string { return "cim" }

// Functions implements domain.Domain. The CIM accepts any encoded
// domain&function name, so it advertises no fixed specs.
func (m *Manager) Functions() []domain.FuncSpec { return nil }

// EncodeFunction builds the CIM-routed function name for a domain call.
func EncodeFunction(dom, fn string) string { return dom + "__" + fn }

// DecodeFunction splits a CIM-routed function name back into the original
// call.
func DecodeFunction(fn string, args []term.Value) (domain.Call, error) {
	for i := 0; i+1 < len(fn); i++ {
		if fn[i] == '_' && fn[i+1] == '_' {
			return domain.Call{Domain: fn[:i], Function: fn[i+2:], Args: args}, nil
		}
	}
	return domain.Call{}, fmt.Errorf("cim: function %q is not of the form domain__function", fn)
}
