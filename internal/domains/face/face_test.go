package face

import (
	"testing"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func newCtx() *domain.Ctx { return domain.NewCtx(vclock.NewVirtual(0)) }

func testGallery(t *testing.T) *Gallery {
	t.Helper()
	g := New("faces")
	g.Populate(200, 7)
	return g
}

func TestCount(t *testing.T) {
	g := testGallery(t)
	st, _ := g.Call(newCtx(), "count", nil)
	vals, _ := domain.Collect(st)
	if !term.Equal(vals[0], term.Int(200)) {
		t.Errorf("count = %v", vals)
	}
}

func TestMatchThresholdMonotone(t *testing.T) {
	g := testGallery(t)
	run := func(thr float64) []term.Value {
		st, err := g.Call(newCtx(), "match", []term.Value{term.Str("person0001"), term.Float(thr)})
		if err != nil {
			t.Fatal(err)
		}
		vals, _ := domain.Collect(st)
		return vals
	}
	narrow := run(3)
	wide := run(6)
	if len(wide) < len(narrow) {
		t.Errorf("wider threshold fewer matches: %d vs %d", len(wide), len(narrow))
	}
	keys := map[string]bool{}
	for _, v := range wide {
		p, _ := v.(term.Record).Get("person")
		keys[p.Key()] = true
	}
	for _, v := range narrow {
		p, _ := v.(term.Record).Get("person")
		if !keys[p.Key()] {
			t.Errorf("narrow match %v missing from wide", p)
		}
	}
	// Results sorted by distance.
	prev := -1.0
	for _, v := range wide {
		d, _ := v.(term.Record).Get("distance")
		f := float64(d.(term.Float))
		if f < prev {
			t.Error("matches not sorted by distance")
		}
		prev = f
	}
}

func TestMatchExcludesSelf(t *testing.T) {
	g := testGallery(t)
	st, _ := g.Call(newCtx(), "match", []term.Value{term.Str("person0001"), term.Float(100)})
	vals, _ := domain.Collect(st)
	for _, v := range vals {
		p, _ := v.(term.Record).Get("person")
		if term.Equal(p, term.Str("person0001")) {
			t.Error("self match returned")
		}
	}
	if len(vals) != 199 {
		t.Errorf("huge threshold matches = %d, want 199", len(vals))
	}
}

func TestIdentifyDeterministic(t *testing.T) {
	g := testGallery(t)
	run := func() term.Value {
		st, _ := g.Call(newCtx(), "identify", []term.Value{term.Str("person0002")})
		vals, _ := domain.Collect(st)
		if len(vals) != 1 {
			t.Fatalf("identify = %v", vals)
		}
		return vals[0]
	}
	if !term.Equal(run(), run()) {
		t.Error("identify not deterministic")
	}
}

func TestFeaturesOf(t *testing.T) {
	g := testGallery(t)
	if _, ok := g.FeaturesOf("person0000"); !ok {
		t.Error("enrolled person missing")
	}
	if _, ok := g.FeaturesOf("nobody"); ok {
		t.Error("unknown person found")
	}
}

func TestMatchCostScalesWithCandidates(t *testing.T) {
	g := testGallery(t)
	cost := func(thr float64) int64 {
		ctx := newCtx()
		st, _ := g.Call(ctx, "match", []term.Value{term.Str("person0001"), term.Float(thr)})
		domain.Collect(st)
		return int64(ctx.Clock.Now())
	}
	if cost(100) <= cost(1) {
		t.Error("many-candidate match should cost more (refinement passes)")
	}
}

func TestErrors(t *testing.T) {
	g := testGallery(t)
	if _, err := g.Call(newCtx(), "match", []term.Value{term.Str("nobody"), term.Float(1)}); err == nil {
		t.Error("unknown probe")
	}
	if _, err := g.Call(newCtx(), "match", []term.Value{term.Str("person0001"), term.Str("x")}); err == nil {
		t.Error("non-numeric threshold")
	}
	if _, err := g.Call(newCtx(), "nosuch", nil); err == nil {
		t.Error("unknown function")
	}
	if err := g.Add(Entry{Person: "person0001"}); err == nil {
		t.Error("duplicate enrollment")
	}
	if _, err := g.Call(newCtx(), "identify", []term.Value{term.Int(1)}); err == nil {
		t.Error("non-string probe")
	}
}

func TestSingletonGalleryIdentify(t *testing.T) {
	g := New("faces")
	g.Populate(1, 1)
	st, err := g.Call(newCtx(), "identify", []term.Value{term.Str("person0000")})
	if err != nil {
		t.Fatal(err)
	}
	if vals, _ := domain.Collect(st); len(vals) != 0 {
		t.Errorf("identify with no other faces = %v", vals)
	}
}
