// Package face implements the face-recognition source domain standing in
// for the face recognition package integrated by HERMES. It performs
// feature-vector similarity search with an early-terminating scan whose
// cost depends on the gallery's similarity structure around the probe —
// another domain "for which it is extremely difficult to develop a
// reasonable cost model".
package face

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// FeatureDim is the dimensionality of face feature vectors.
const FeatureDim = 16

// Entry is one gallery face: a person and their feature vector.
type Entry struct {
	Person   string
	Features [FeatureDim]float64
}

// CostParams model the recognizer's compute cost.
type CostParams struct {
	PerCall    time.Duration
	PerCompare time.Duration // per gallery comparison
	PerRefine  time.Duration // per refinement pass over candidates
}

// DefaultCostParams make a probe cost tens of milliseconds on a
// thousand-face gallery.
var DefaultCostParams = CostParams{
	PerCall:    12 * time.Millisecond,
	PerCompare: 30 * time.Microsecond,
	PerRefine:  200 * time.Microsecond,
}

// Gallery is the face domain.
type Gallery struct {
	name   string
	params CostParams

	mu      sync.RWMutex
	entries []Entry
	byName  map[string]int
}

// New creates an empty gallery.
func New(name string) *Gallery {
	return &Gallery{name: name, params: DefaultCostParams, byName: make(map[string]int)}
}

// SetCostParams overrides the compute cost model.
func (g *Gallery) SetCostParams(p CostParams) { g.params = p }

// Add registers a face.
func (g *Gallery) Add(e Entry) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.byName[e.Person]; dup {
		return fmt.Errorf("person %q already enrolled", e.Person)
	}
	g.byName[e.Person] = len(g.entries)
	g.entries = append(g.entries, e)
	return nil
}

// Populate enrolls n synthetic faces deterministically from seed.
func (g *Gallery) Populate(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		var e Entry
		e.Person = fmt.Sprintf("person%04d", i)
		for d := range e.Features {
			e.Features[d] = rng.NormFloat64()
		}
		if err := g.Add(e); err != nil {
			panic(err)
		}
	}
}

// FeaturesOf returns an enrolled person's feature vector, for constructing
// probe arguments in tests and workloads.
func (g *Gallery) FeaturesOf(person string) ([FeatureDim]float64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.byName[person]
	if !ok {
		return [FeatureDim]float64{}, false
	}
	return g.entries[i].Features, true
}

// Name implements domain.Domain.
func (g *Gallery) Name() string { return g.name }

// Functions implements domain.Domain.
func (g *Gallery) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{
		{Name: "match", Arity: 2, Doc: "match(person, threshold): gallery entries within distance threshold of person's features"},
		{Name: "identify", Arity: 1, Doc: "identify(person): best non-self match"},
		{Name: "count", Arity: 0, Doc: "count(): gallery size"},
	}
}

func dist(a, b [FeatureDim]float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Call implements domain.Domain.
func (g *Gallery) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ctx.Clock.Sleep(g.params.PerCall)
	probeOf := func(i int) ([FeatureDim]float64, string, error) {
		name, ok := args[i].(term.Str)
		if !ok {
			return [FeatureDim]float64{}, "", fmt.Errorf("argument %d must be a person name, got %s", i+1, args[i])
		}
		idx, ok := g.byName[string(name)]
		if !ok {
			return [FeatureDim]float64{}, "", fmt.Errorf("person %q not enrolled", string(name))
		}
		return g.entries[idx].Features, string(name), nil
	}
	switch fn {
	case "count":
		if len(args) != 0 {
			return nil, fmt.Errorf("count/0 called with %d args", len(args))
		}
		return domain.NewSliceStream([]term.Value{term.Int(len(g.entries))}), nil

	case "match":
		if len(args) != 2 {
			return nil, fmt.Errorf("match/2 called with %d args", len(args))
		}
		probe, self, err := probeOf(0)
		if err != nil {
			return nil, err
		}
		thr, ok := term.Numeric(args[1])
		if !ok {
			return nil, fmt.Errorf("argument 2 must be a numeric threshold, got %s", args[1])
		}
		type hit struct {
			person string
			d      float64
		}
		var hits []hit
		compares := 0
		for _, e := range g.entries {
			compares++
			if e.Person == self {
				continue
			}
			if d := dist(probe, e.Features); d <= thr {
				hits = append(hits, hit{e.Person, d})
			}
		}
		// Refinement pass per candidate: the data-dependent cost term.
		ctx.Clock.Sleep(time.Duration(compares)*g.params.PerCompare +
			time.Duration(len(hits))*g.params.PerRefine)
		sort.Slice(hits, func(a, b int) bool {
			if hits[a].d != hits[b].d {
				return hits[a].d < hits[b].d
			}
			return hits[a].person < hits[b].person
		})
		out := make([]term.Value, len(hits))
		for i, h := range hits {
			out[i] = term.NewRecord(
				term.Field{Name: "person", Val: term.Str(h.person)},
				term.Field{Name: "distance", Val: term.Float(h.d)},
			)
		}
		return domain.NewSliceStream(out), nil

	case "identify":
		if len(args) != 1 {
			return nil, fmt.Errorf("identify/1 called with %d args", len(args))
		}
		probe, self, err := probeOf(0)
		if err != nil {
			return nil, err
		}
		best, bestD := "", math.Inf(1)
		for _, e := range g.entries {
			if e.Person == self {
				continue
			}
			if d := dist(probe, e.Features); d < bestD {
				best, bestD = e.Person, d
			}
		}
		ctx.Clock.Sleep(time.Duration(len(g.entries)) * g.params.PerCompare)
		if best == "" {
			return domain.NewSliceStream(nil), nil
		}
		return domain.NewSliceStream([]term.Value{term.Str(best)}), nil
	}
	return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, g.name, fn)
}
