// Package spatial implements the spatial-data source domain: named 2-D
// point files with range queries. It exists chiefly to support the paper's
// motivating invariant example —
//
//	Dist > 142 => spatial:range('map1', X, Y, Dist) = spatial:range('points', X, Y, 142).
//
// — where knowledge that all points lie within a 100×100 square lets the
// CIM clamp an over-wide range query to the smallest admissible one.
package spatial

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// Point is a named 2-D point.
type Point struct {
	ID   string
	X, Y float64
}

// CostParams model the index compute cost.
type CostParams struct {
	PerCall   time.Duration
	PerCell   time.Duration // per grid cell visited
	PerPoint  time.Duration // per candidate point tested
	PerResult time.Duration
}

// DefaultCostParams are index-like constants.
var DefaultCostParams = CostParams{
	PerCall:   3 * time.Millisecond,
	PerCell:   20 * time.Microsecond,
	PerPoint:  5 * time.Microsecond,
	PerResult: 3 * time.Microsecond,
}

const gridCells = 16

// file is one named point set with a uniform grid index.
type file struct {
	points                 []Point
	minX, minY, maxX, maxY float64
	cellW, cellH           float64
	grid                   [][]int // cell -> point indices
}

// Store is the spatial domain: a set of named point files.
type Store struct {
	name   string
	params CostParams

	mu    sync.RWMutex
	files map[string]*file
}

// New creates an empty spatial store.
func New(name string) *Store {
	return &Store{name: name, params: DefaultCostParams, files: make(map[string]*file)}
}

// SetCostParams overrides the compute cost model.
func (s *Store) SetCostParams(p CostParams) { s.params = p }

// AddFile registers a point file and builds its grid index.
func (s *Store) AddFile(name string, pts []Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.files[name]; dup {
		return fmt.Errorf("spatial file %q already exists", name)
	}
	f := &file{points: append([]Point(nil), pts...)}
	if len(pts) > 0 {
		f.minX, f.minY = math.Inf(1), math.Inf(1)
		f.maxX, f.maxY = math.Inf(-1), math.Inf(-1)
		for _, p := range pts {
			f.minX = math.Min(f.minX, p.X)
			f.minY = math.Min(f.minY, p.Y)
			f.maxX = math.Max(f.maxX, p.X)
			f.maxY = math.Max(f.maxY, p.Y)
		}
	}
	f.cellW = (f.maxX - f.minX) / gridCells
	f.cellH = (f.maxY - f.minY) / gridCells
	if f.cellW <= 0 {
		f.cellW = 1
	}
	if f.cellH <= 0 {
		f.cellH = 1
	}
	f.grid = make([][]int, gridCells*gridCells)
	for i, p := range f.points {
		c := f.cellOf(p.X, p.Y)
		f.grid[c] = append(f.grid[c], i)
	}
	s.files[name] = f
	return nil
}

// MustAddFile adds a file or panics.
func (s *Store) MustAddFile(name string, pts []Point) {
	if err := s.AddFile(name, pts); err != nil {
		panic(err)
	}
}

func (f *file) cellOf(x, y float64) int {
	cx := int((x - f.minX) / f.cellW)
	cy := int((y - f.minY) / f.cellH)
	if cx < 0 {
		cx = 0
	}
	if cx >= gridCells {
		cx = gridCells - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= gridCells {
		cy = gridCells - 1
	}
	return cy*gridCells + cx
}

// Extent returns the bounding box of a file; the diagonal gives the
// smallest admissible clamp distance for the equality invariant.
func (s *Store) Extent(name string) (minX, minY, maxX, maxY float64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, found := s.files[name]
	if !found || len(f.points) == 0 {
		return 0, 0, 0, 0, false
	}
	return f.minX, f.minY, f.maxX, f.maxY, true
}

// Name implements domain.Domain.
func (s *Store) Name() string { return s.name }

// Functions implements domain.Domain.
func (s *Store) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{
		{Name: "range", Arity: 4, Doc: "range(file, x, y, dist): points within dist of (x,y)"},
		{Name: "nearest", Arity: 3, Doc: "nearest(file, x, y): closest point"},
		{Name: "count", Arity: 1, Doc: "count(file): number of points"},
	}
}

func numArg(args []term.Value, i int) (float64, error) {
	f, ok := term.Numeric(args[i])
	if !ok {
		return 0, fmt.Errorf("argument %d must be numeric, got %s", i+1, args[i])
	}
	return f, nil
}

// Call implements domain.Domain.
func (s *Store) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ctx.Clock.Sleep(s.params.PerCall)
	fileArg := func() (*file, error) {
		name, ok := args[0].(term.Str)
		if !ok {
			return nil, fmt.Errorf("argument 1 must be a file name, got %s", args[0])
		}
		f, found := s.files[string(name)]
		if !found {
			return nil, fmt.Errorf("no spatial file %q in %s", string(name), s.name)
		}
		return f, nil
	}
	switch fn {
	case "count":
		if len(args) != 1 {
			return nil, fmt.Errorf("count/1 called with %d args", len(args))
		}
		f, err := fileArg()
		if err != nil {
			return nil, err
		}
		return domain.NewSliceStream([]term.Value{term.Int(len(f.points))}), nil

	case "range":
		if len(args) != 4 {
			return nil, fmt.Errorf("range/4 called with %d args", len(args))
		}
		f, err := fileArg()
		if err != nil {
			return nil, err
		}
		x, err := numArg(args, 1)
		if err != nil {
			return nil, err
		}
		y, err := numArg(args, 2)
		if err != nil {
			return nil, err
		}
		dist, err := numArg(args, 3)
		if err != nil {
			return nil, err
		}
		cells, tested, out := f.rangeQuery(x, y, dist)
		ctx.Clock.Sleep(time.Duration(cells)*s.params.PerCell +
			time.Duration(tested)*s.params.PerPoint +
			time.Duration(len(out))*s.params.PerResult)
		return domain.NewSliceStream(out), nil

	case "nearest":
		if len(args) != 3 {
			return nil, fmt.Errorf("nearest/3 called with %d args", len(args))
		}
		f, err := fileArg()
		if err != nil {
			return nil, err
		}
		x, err := numArg(args, 1)
		if err != nil {
			return nil, err
		}
		y, err := numArg(args, 2)
		if err != nil {
			return nil, err
		}
		if len(f.points) == 0 {
			return domain.NewSliceStream(nil), nil
		}
		best, bestD := 0, math.Inf(1)
		for i, p := range f.points {
			d := math.Hypot(p.X-x, p.Y-y)
			if d < bestD {
				best, bestD = i, d
			}
		}
		ctx.Clock.Sleep(time.Duration(len(f.points)) * s.params.PerPoint)
		p := f.points[best]
		return domain.NewSliceStream([]term.Value{pointRecord(p)}), nil
	}
	return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, s.name, fn)
}

func pointRecord(p Point) term.Value {
	return term.NewRecord(
		term.Field{Name: "id", Val: term.Str(p.ID)},
		term.Field{Name: "x", Val: term.Float(p.X)},
		term.Field{Name: "y", Val: term.Float(p.Y)},
	)
}

// rangeQuery runs a grid-pruned circular range query, returning the number
// of cells visited, points tested, and the matching point records ordered
// by id for determinism.
func (f *file) rangeQuery(x, y, dist float64) (cells, tested int, out []term.Value) {
	if len(f.points) == 0 {
		return 0, 0, nil
	}
	loC := f.cellOf(x-dist, y-dist)
	hiC := f.cellOf(x+dist, y+dist)
	loX, loY := loC%gridCells, loC/gridCells
	hiX, hiY := hiC%gridCells, hiC/gridCells
	var hits []Point
	for cy := loY; cy <= hiY; cy++ {
		for cx := loX; cx <= hiX; cx++ {
			cells++
			for _, pi := range f.grid[cy*gridCells+cx] {
				tested++
				p := f.points[pi]
				if math.Hypot(p.X-x, p.Y-y) <= dist {
					hits = append(hits, p)
				}
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].ID < hits[b].ID })
	out = make([]term.Value, len(hits))
	for i, p := range hits {
		out[i] = pointRecord(p)
	}
	return cells, tested, out
}
