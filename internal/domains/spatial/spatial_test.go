package spatial

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func newCtx() *domain.Ctx { return domain.NewCtx(vclock.NewVirtual(0)) }

// gridStore builds the paper's setting: all points of file "points" lie in
// a 100x100 square.
func gridStore(t *testing.T) *Store {
	t.Helper()
	s := New("spatial")
	var pts []Point
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			pts = append(pts, Point{ID: fmt.Sprintf("p%02d%02d", i, j), X: float64(i * 11), Y: float64(j * 11)})
		}
	}
	s.MustAddFile("points", pts)
	return s
}

func rangeQuery(t *testing.T, s *Store, file string, x, y, d float64) []term.Value {
	t.Helper()
	st, err := s.Call(newCtx(), "range", []term.Value{term.Str(file), term.Float(x), term.Float(y), term.Float(d)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestRangeCorrectness(t *testing.T) {
	s := gridStore(t)
	got := rangeQuery(t, s, "points", 0, 0, 12)
	// Points within 12 of origin: (0,0), (11,0), (0,11).
	if len(got) != 3 {
		t.Fatalf("range(0,0,12) = %d points: %v", len(got), got)
	}
}

// TestPaperClampInvariantSemantics verifies the fact that the §4 invariant
// encodes: a range query wider than the diagonal returns exactly the whole
// file, so range(X,Y,D) = range(X,Y,142) for D > 142 when querying from
// within the square.
func TestPaperClampInvariantSemantics(t *testing.T) {
	s := gridStore(t)
	all := rangeQuery(t, s, "points", 50, 50, 142)
	if len(all) != 100 {
		t.Fatalf("clamped query = %d points, want all 100", len(all))
	}
	wider := rangeQuery(t, s, "points", 50, 50, 5000)
	if len(wider) != len(all) {
		t.Errorf("wider query = %d, clamp = %d; invariant premise broken", len(wider), len(all))
	}
}

// Property: range results match a brute-force scan.
func TestRangeMatchesBruteForce(t *testing.T) {
	s := gridStore(t)
	f := func(xi, yi, di uint8) bool {
		x := float64(xi) / 2
		y := float64(yi) / 2
		d := float64(di) / 2
		got := rangeQuery(t, s, "points", x, y, d)
		want := 0
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				if math.Hypot(float64(i*11)-x, float64(j*11)-y) <= d {
					want++
				}
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNearest(t *testing.T) {
	s := gridStore(t)
	st, err := s.Call(newCtx(), "nearest", []term.Value{term.Str("points"), term.Float(12), term.Float(1)})
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := domain.Collect(st)
	if len(vals) != 1 {
		t.Fatalf("nearest = %v", vals)
	}
	id, _ := vals[0].(term.Record).Get("id")
	if !term.Equal(id, term.Str("p0100")) { // (11, 0)
		t.Errorf("nearest = %v", vals[0])
	}
}

func TestCountAndExtent(t *testing.T) {
	s := gridStore(t)
	st, _ := s.Call(newCtx(), "count", []term.Value{term.Str("points")})
	vals, _ := domain.Collect(st)
	if !term.Equal(vals[0], term.Int(100)) {
		t.Errorf("count = %v", vals)
	}
	minX, minY, maxX, maxY, ok := s.Extent("points")
	if !ok || minX != 0 || minY != 0 || maxX != 99 || maxY != 99 {
		t.Errorf("extent = %v %v %v %v %v", minX, minY, maxX, maxY, ok)
	}
	if _, _, _, _, ok := s.Extent("nosuch"); ok {
		t.Error("extent of unknown file")
	}
}

func TestErrors(t *testing.T) {
	s := gridStore(t)
	if _, err := s.Call(newCtx(), "range", []term.Value{term.Str("nosuch"), term.Float(0), term.Float(0), term.Float(1)}); err == nil {
		t.Error("unknown file")
	}
	if _, err := s.Call(newCtx(), "range", []term.Value{term.Str("points"), term.Str("x"), term.Float(0), term.Float(1)}); err == nil {
		t.Error("non-numeric coordinate")
	}
	if _, err := s.Call(newCtx(), "nosuch", nil); err == nil {
		t.Error("unknown function")
	}
	if err := s.AddFile("points", nil); err == nil {
		t.Error("duplicate file")
	}
}

func TestIntArgsAccepted(t *testing.T) {
	s := gridStore(t)
	st, err := s.Call(newCtx(), "range", []term.Value{term.Str("points"), term.Int(0), term.Int(0), term.Int(12)})
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := domain.Collect(st)
	if len(vals) != 3 {
		t.Errorf("int-arg range = %d", len(vals))
	}
}

func TestEmptyFile(t *testing.T) {
	s := New("spatial")
	s.MustAddFile("empty", nil)
	st, err := s.Call(newCtx(), "range", []term.Value{term.Str("empty"), term.Float(0), term.Float(0), term.Float(10)})
	if err != nil {
		t.Fatal(err)
	}
	if vals, _ := domain.Collect(st); len(vals) != 0 {
		t.Errorf("empty file range = %v", vals)
	}
	st, err = s.Call(newCtx(), "nearest", []term.Value{term.Str("empty"), term.Float(0), term.Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	if vals, _ := domain.Collect(st); len(vals) != 0 {
		t.Errorf("empty file nearest = %v", vals)
	}
}
