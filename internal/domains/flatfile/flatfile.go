// Package flatfile implements the flat-file source domain: delimited record
// files scanned sequentially, one of the "standard" external domains of the
// HERMES federation. Files may be backed by the filesystem or registered
// in-memory; every access is a full scan (no indexes), which gives the
// optimizer a usefully different cost profile from the relational source.
package flatfile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// CostParams model scan costs.
type CostParams struct {
	PerOpen   time.Duration // file open / seek overhead
	PerRecord time.Duration // per record scanned
}

// DefaultCostParams make flat files cheap to open and linear to scan.
var DefaultCostParams = CostParams{
	PerOpen:   1500 * time.Microsecond,
	PerRecord: 9 * time.Microsecond,
}

// Store is the flat-file domain. Field separator is '|'; the first line of
// each file names the fields.
type Store struct {
	name   string
	params CostParams

	mu    sync.RWMutex
	files map[string]fileSource
}

type fileSource struct {
	path    string   // non-empty for filesystem files
	content []string // lines for in-memory files
}

// New creates an empty flat-file store.
func New(name string) *Store {
	return &Store{name: name, params: DefaultCostParams, files: make(map[string]fileSource)}
}

// SetCostParams overrides the compute cost model.
func (s *Store) SetCostParams(p CostParams) { s.params = p }

// RegisterFile maps a logical name to a filesystem path.
func (s *Store) RegisterFile(name, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = fileSource{path: path}
}

// RegisterContent maps a logical name to in-memory content: a header line
// naming fields, then one record per line, '|'-separated.
func (s *Store) RegisterContent(name string, lines []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = fileSource{content: append([]string(nil), lines...)}
}

// Name implements domain.Domain.
func (s *Store) Name() string { return s.name }

// Functions implements domain.Domain.
func (s *Store) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{
		{Name: "scan", Arity: 1, Doc: "scan(file): every record"},
		{Name: "grep", Arity: 3, Doc: "grep(file, field, value): records whose field equals value"},
		{Name: "grep_sub", Arity: 3, Doc: "grep_sub(file, field, substr): records whose field contains substr"},
	}
}

// lines opens the file's line iterator.
func (s *Store) lines(name string) ([]string, error) {
	src, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("no flat file %q in %s", name, s.name)
	}
	if src.path == "" {
		return src.content, nil
	}
	f, err := os.Open(src.path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", src.path, err)
	}
	defer f.Close()
	var out []string
	r := bufio.NewScanner(f)
	for r.Scan() {
		out = append(out, r.Text())
	}
	if err := r.Err(); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}

// parseField converts a raw field to the most specific value kind.
func parseField(raw string) term.Value {
	raw = strings.TrimSpace(raw)
	if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return term.Int(n)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return term.Float(f)
	}
	return term.Str(raw)
}

// Call implements domain.Domain.
func (s *Store) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	wantArgs := map[string]int{"scan": 1, "grep": 3, "grep_sub": 3}
	n, known := wantArgs[fn]
	if !known {
		return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, s.name, fn)
	}
	if len(args) != n {
		return nil, fmt.Errorf("%s/%d called with %d args", fn, n, len(args))
	}
	fname, ok := args[0].(term.Str)
	if !ok {
		return nil, fmt.Errorf("argument 1 must be a file name, got %s", args[0])
	}
	ctx.Clock.Sleep(s.params.PerOpen)
	lines, err := s.lines(string(fname))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return domain.NewSliceStream(nil), nil
	}
	header := strings.Split(lines[0], "|")
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
	}
	fieldIdx := -1
	var match func(v term.Value) bool
	switch fn {
	case "grep", "grep_sub":
		fieldName, ok := args[1].(term.Str)
		if !ok {
			return nil, fmt.Errorf("argument 2 must be a field name, got %s", args[1])
		}
		for i, h := range header {
			if h == string(fieldName) {
				fieldIdx = i
				break
			}
		}
		if fieldIdx < 0 {
			return nil, fmt.Errorf("file %q has no field %q", string(fname), string(fieldName))
		}
		want := args[2]
		if fn == "grep" {
			match = func(v term.Value) bool {
				eq, err := term.OpEQ.Holds(v, want)
				return err == nil && eq
			}
		} else {
			sub, ok := want.(term.Str)
			if !ok {
				return nil, fmt.Errorf("argument 3 must be a string, got %s", want)
			}
			match = func(v term.Value) bool {
				sv, ok := v.(term.Str)
				return ok && strings.Contains(string(sv), string(sub))
			}
		}
	}
	var out []term.Value
	for _, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, "|")
		fields := make([]term.Field, len(header))
		for i := range header {
			var v term.Value = term.Str("")
			if i < len(parts) {
				v = parseField(parts[i])
			}
			fields[i] = term.Field{Name: header[i], Val: v}
		}
		if match != nil {
			fv := fields[fieldIdx].Val
			if !match(fv) {
				continue
			}
		}
		out = append(out, term.NewRecord(fields...))
	}
	ctx.Clock.Sleep(time.Duration(len(lines)) * s.params.PerRecord)
	return domain.NewSliceStream(out), nil
}
