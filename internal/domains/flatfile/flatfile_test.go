package flatfile

import (
	"os"
	"path/filepath"
	"testing"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func newCtx() *domain.Ctx { return domain.NewCtx(vclock.NewVirtual(0)) }

var newsLines = []string{
	"date|source|headline",
	"1995-03-01|usa today|market rallies on rate cut hopes",
	"1995-03-02|usa today|floods hit the midwest",
	"1995-03-02|ap|senate passes budget bill",
	"",
	"1995-03-03|usa today|local team wins championship",
}

func memStore() *Store {
	s := New("files")
	s.RegisterContent("news", newsLines)
	return s
}

func callVals(t *testing.T, s *Store, fn string, args ...term.Value) []term.Value {
	t.Helper()
	st, err := s.Call(newCtx(), fn, args)
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	vals, err := domain.Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestScan(t *testing.T) {
	s := memStore()
	vals := callVals(t, s, "scan", term.Str("news"))
	if len(vals) != 4 { // blank line skipped
		t.Fatalf("scan = %d records", len(vals))
	}
	rec := vals[0].(term.Record)
	src, _ := rec.Get("source")
	if !term.Equal(src, term.Str("usa today")) {
		t.Errorf("record = %v", rec)
	}
}

func TestGrep(t *testing.T) {
	s := memStore()
	vals := callVals(t, s, "grep", term.Str("news"), term.Str("source"), term.Str("usa today"))
	if len(vals) != 3 {
		t.Errorf("grep = %d, want 3", len(vals))
	}
	vals = callVals(t, s, "grep", term.Str("news"), term.Str("source"), term.Str("nosuch"))
	if len(vals) != 0 {
		t.Errorf("no-match grep = %v", vals)
	}
}

func TestGrepSub(t *testing.T) {
	s := memStore()
	vals := callVals(t, s, "grep_sub", term.Str("news"), term.Str("headline"), term.Str("budget"))
	if len(vals) != 1 {
		t.Errorf("grep_sub = %d, want 1", len(vals))
	}
}

func TestNumericFieldParsing(t *testing.T) {
	s := New("files")
	s.RegisterContent("nums", []string{"name|qty|price", "widget|5|2.5"})
	vals := callVals(t, s, "scan", term.Str("nums"))
	rec := vals[0].(term.Record)
	qty, _ := rec.Get("qty")
	if !term.Equal(qty, term.Int(5)) {
		t.Errorf("qty = %v (%T)", qty, qty)
	}
	price, _ := rec.Get("price")
	if !term.Equal(price, term.Float(2.5)) {
		t.Errorf("price = %v", price)
	}
	// grep with numeric value.
	hits := callVals(t, s, "grep", term.Str("nums"), term.Str("qty"), term.Int(5))
	if len(hits) != 1 {
		t.Errorf("numeric grep = %d", len(hits))
	}
}

func TestFilesystemBackedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	if err := os.WriteFile(path, []byte("k|v\na|1\nb|2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New("files")
	s.RegisterFile("data", path)
	vals := callVals(t, s, "scan", term.Str("data"))
	if len(vals) != 2 {
		t.Errorf("file scan = %d", len(vals))
	}
}

func TestShortRecordPadding(t *testing.T) {
	s := New("files")
	s.RegisterContent("ragged", []string{"a|b|c", "1|2"})
	vals := callVals(t, s, "scan", term.Str("ragged"))
	rec := vals[0].(term.Record)
	cv, ok := rec.Get("c")
	if !ok || !term.Equal(cv, term.Str("")) {
		t.Errorf("missing field = %v", cv)
	}
}

func TestErrors(t *testing.T) {
	s := memStore()
	if _, err := s.Call(newCtx(), "scan", []term.Value{term.Str("nosuch")}); err == nil {
		t.Error("unknown file")
	}
	if _, err := s.Call(newCtx(), "grep", []term.Value{term.Str("news"), term.Str("nosuch"), term.Str("x")}); err == nil {
		t.Error("unknown field")
	}
	if _, err := s.Call(newCtx(), "nosuch", nil); err == nil {
		t.Error("unknown function")
	}
	if _, err := s.Call(newCtx(), "scan", nil); err == nil {
		t.Error("arity mismatch")
	}
	if _, err := s.Call(newCtx(), "grep_sub", []term.Value{term.Str("news"), term.Str("headline"), term.Int(3)}); err == nil {
		t.Error("non-string substring")
	}
	if _, err := s.Call(newCtx(), "scan", []term.Value{term.Int(1)}); err == nil {
		t.Error("non-string filename")
	}
	s.RegisterFile("missing", "/nonexistent/path/xyz")
	if _, err := s.Call(newCtx(), "scan", []term.Value{term.Str("missing")}); err == nil {
		t.Error("unreadable file")
	}
}

func TestEmptyFile(t *testing.T) {
	s := New("files")
	s.RegisterContent("empty", nil)
	vals := callVals(t, s, "scan", term.Str("empty"))
	if len(vals) != 0 {
		t.Errorf("empty scan = %v", vals)
	}
}

func TestScanCostCharged(t *testing.T) {
	s := memStore()
	ctx := newCtx()
	st, _ := s.Call(ctx, "scan", []term.Value{term.Str("news")})
	domain.Collect(st)
	if ctx.Clock.Now() < DefaultCostParams.PerOpen {
		t.Errorf("clock = %v", ctx.Clock.Now())
	}
}
