package relation

import (
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// EstimateCost implements domain.Estimator using catalog statistics
// (cardinalities and distinct counts), the way a conventional relational
// optimizer would. This is the paper's "domains with good cost-estimation
// functions" case: when connected, the DCSM directs estimates for this
// domain here instead of (or in addition to) its statistics cache.
//
// The estimator needs the table name to be a known constant; patterns whose
// table argument is $b return ok=false and fall back to cached statistics.
func (db *DB) EstimateCost(p domain.Pattern) (domain.CostVector, []string, bool) {
	if p.Domain != db.name || len(p.Args) == 0 || !p.Args[0].Known {
		return domain.CostVector{}, nil, false
	}
	tname, isStr := p.Args[0].Val.(term.Str)
	if !isStr {
		return domain.CostVector{}, nil, false
	}
	t, ok := db.Table(string(tname))
	if !ok {
		return domain.CostVector{}, nil, false
	}
	n := float64(t.Len())
	scan := func(rows float64) time.Duration {
		return db.params.PerCall + time.Duration(rows)*(db.params.PerRowScan+db.params.PerRowResult)
	}
	colDistinct := func(argIdx int) (float64, bool) {
		if argIdx >= len(p.Args) || !p.Args[argIdx].Known {
			return 0, false
		}
		cname, isStr := p.Args[argIdx].Val.(term.Str)
		if !isStr {
			return 0, false
		}
		col, ok := t.schema.Col(string(cname))
		if !ok {
			return 0, false
		}
		d := float64(t.distinctCount(col))
		if d < 1 {
			d = 1
		}
		return d, true
	}
	var card float64
	switch p.Function {
	case "all":
		card = n
	case "equal", "select_eq":
		if d, ok := colDistinct(1); ok {
			card = n / d // classic 1/V(A) selectivity
		} else {
			card = n / 10
		}
	case "select_lt", "select_le", "select_gt", "select_ge":
		card = n / 3 // textbook inequality selectivity
	case "range_":
		card = n / 4
	case "project":
		if d, ok := colDistinct(1); ok {
			card = d
		} else {
			card = n / 2
		}
	case "count":
		card = 1
	default:
		return domain.CostVector{}, nil, false
	}
	ta := scan(card)
	tf := db.params.PerCall + db.params.IndexProbe
	return domain.CostVector{TFirst: tf, TAll: ta, Card: card}, nil, true
}
