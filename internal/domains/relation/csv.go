package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hermes/internal/term"
)

// LoadCSV creates a table from CSV data and fills it. The first CSV record
// is the header; column types come from the schema columns, which must
// match the header names (order may differ — columns are matched by name).
// Values are parsed per the column type; empty cells load as zero values.
func (db *DB) LoadCSV(name string, cols []Column, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: load %s: read header: %w", name, err)
	}
	byName := map[string]Column{}
	for _, c := range cols {
		byName[c.Name] = c
	}
	schema := Schema{Name: name}
	colIdx := make([]int, 0, len(header))
	for i, h := range header {
		h = strings.TrimSpace(h)
		c, ok := byName[h]
		if !ok {
			return nil, fmt.Errorf("relation: load %s: header column %q not in schema", name, h)
		}
		schema.Cols = append(schema.Cols, c)
		colIdx = append(colIdx, i)
	}
	if len(schema.Cols) != len(cols) {
		return nil, fmt.Errorf("relation: load %s: header has %d of %d schema columns", name, len(schema.Cols), len(cols))
	}
	t, err := db.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: load %s: line %d: %w", name, line, err)
		}
		line++
		vals := make([]term.Value, len(schema.Cols))
		for i := range schema.Cols {
			raw := ""
			if colIdx[i] < len(rec) {
				raw = strings.TrimSpace(rec[colIdx[i]])
			}
			v, err := parseCell(schema.Cols[i].Type, raw)
			if err != nil {
				return nil, fmt.Errorf("relation: load %s: line %d column %s: %w", name, line, schema.Cols[i].Name, err)
			}
			vals[i] = v
		}
		if err := t.Insert(vals...); err != nil {
			return nil, fmt.Errorf("relation: load %s: line %d: %w", name, line, err)
		}
	}
}

// parseCell converts one CSV cell per the column type.
func parseCell(ct ColType, raw string) (term.Value, error) {
	switch ct {
	case TString:
		return term.Str(raw), nil
	case TInt:
		if raw == "" {
			return term.Int(0), nil
		}
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", raw)
		}
		return term.Int(n), nil
	case TFloat:
		if raw == "" {
			return term.Float(0), nil
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", raw)
		}
		return term.Float(f), nil
	case TBool:
		if raw == "" {
			return term.Bool(false), nil
		}
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, fmt.Errorf("bad bool %q", raw)
		}
		return term.Bool(b), nil
	}
	return nil, fmt.Errorf("unknown column type %v", ct)
}
