// Package relation implements an in-memory relational source domain: the
// stand-in for the INGRES / Paradox / DBase databases integrated by HERMES.
// It exposes the source functions the paper's mediators call (all, equal /
// select_eq, select_lt, select_le, select_gt, select_ge, range_, count,
// project) over typed tables with hash and ordered indexes, charges
// realistic per-row compute time against the execution clock, and ships a
// native catalog-based cost estimator to demonstrate the DCSM's
// extensibility hook ("if a domain already provides a cost estimation
// module, the DCSM can be connected to [it]").
package relation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// ColType is a column type.
type ColType int

// Column types.
const (
	TString ColType = iota
	TInt
	TFloat
	TBool
)

func (t ColType) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	}
	return "?"
}

// accepts reports whether a value may be stored in a column of this type.
func (t ColType) accepts(v term.Value) bool {
	switch t {
	case TString:
		return v.Kind() == term.KindString
	case TInt:
		return v.Kind() == term.KindInt
	case TFloat:
		return v.Kind() == term.KindFloat || v.Kind() == term.KindInt
	case TBool:
		return v.Kind() == term.KindBool
	}
	return false
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table.
type Schema struct {
	Name string
	Cols []Column
}

// Col returns the index of the named column.
func (s Schema) Col(name string) (int, bool) {
	for i, c := range s.Cols {
		if c.Name == name {
			return i, true
		}
	}
	return -1, false
}

// Row is one tuple of a table, positionally matching the schema.
type Row []term.Value

// Table is a heap of rows plus lazily built indexes.
type Table struct {
	schema Schema
	rows   []Row
	// idxMu guards the lazily built indexes: index construction happens
	// inside Call, which holds only the DB's read lock, so parallel query
	// branches probing the same cold column would otherwise race.
	idxMu sync.Mutex
	// hashIdx[col][valueKey] lists row indices with that column value.
	hashIdx map[int]map[string][]int
	// sortedIdx[col] lists row indices ordered by column value.
	sortedIdx map[int][]int
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the row count.
func (t *Table) Len() int { return len(t.rows) }

// Insert appends a row after type-checking it against the schema. Indexes
// are invalidated and rebuilt lazily.
func (t *Table) Insert(vals ...term.Value) error {
	if len(vals) != len(t.schema.Cols) {
		return fmt.Errorf("table %s: inserted %d values, schema has %d columns",
			t.schema.Name, len(vals), len(t.schema.Cols))
	}
	for i, v := range vals {
		if !t.schema.Cols[i].Type.accepts(v) {
			return fmt.Errorf("table %s: column %s is %s, got %s value %s",
				t.schema.Name, t.schema.Cols[i].Name, t.schema.Cols[i].Type, v.Kind(), v)
		}
	}
	t.rows = append(t.rows, Row(vals))
	t.idxMu.Lock()
	t.hashIdx = nil
	t.sortedIdx = nil
	t.idxMu.Unlock()
	return nil
}

// MustInsert inserts or panics; a convenience for dataset construction.
func (t *Table) MustInsert(vals ...term.Value) {
	if err := t.Insert(vals...); err != nil {
		panic(err)
	}
}

// record converts a row into a term.Record keyed by column names.
func (t *Table) record(r Row) term.Record {
	fields := make([]term.Field, len(r))
	for i, v := range r {
		fields[i] = term.Field{Name: t.schema.Cols[i].Name, Val: v}
	}
	return term.NewRecord(fields...)
}

func (t *Table) ensureHashIdx(col int) map[string][]int {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.hashIdx == nil {
		t.hashIdx = make(map[int]map[string][]int)
	}
	if idx, ok := t.hashIdx[col]; ok {
		return idx
	}
	idx := make(map[string][]int)
	for i, r := range t.rows {
		k := r[col].Key()
		idx[k] = append(idx[k], i)
	}
	t.hashIdx[col] = idx
	return idx
}

func (t *Table) ensureSortedIdx(col int) []int {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.sortedIdx == nil {
		t.sortedIdx = make(map[int][]int)
	}
	if idx, ok := t.sortedIdx[col]; ok {
		return idx
	}
	idx := make([]int, len(t.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c, err := term.Compare(t.rows[idx[a]][col], t.rows[idx[b]][col])
		return err == nil && c < 0
	})
	t.sortedIdx[col] = idx
	return idx
}

// distinctCount returns the number of distinct values of a column (catalog
// statistic for the native estimator).
func (t *Table) distinctCount(col int) int {
	return len(t.ensureHashIdx(col))
}

// CostParams model the source's local compute costs.
type CostParams struct {
	// PerCall is the fixed per-query overhead (parse, plan).
	PerCall time.Duration
	// PerRowScan is charged per row touched by a scan.
	PerRowScan time.Duration
	// PerRowResult is charged per row produced.
	PerRowResult time.Duration
	// IndexProbe is charged per index lookup.
	IndexProbe time.Duration
}

// DefaultCostParams are small, database-like constants; network cost
// dominates for remote sites.
var DefaultCostParams = CostParams{
	PerCall:      2 * time.Millisecond,
	PerRowScan:   4 * time.Microsecond,
	PerRowResult: 2 * time.Microsecond,
	IndexProbe:   8 * time.Microsecond,
}

// DB is a relational source domain holding named tables.
type DB struct {
	name   string
	params CostParams

	mu     sync.RWMutex
	tables map[string]*Table
}

// New creates an empty relational domain with the given mediator-visible
// name (e.g. "ingres", "relation").
func New(name string) *DB {
	return &DB{name: name, params: DefaultCostParams, tables: make(map[string]*Table)}
}

// SetCostParams overrides the compute cost model.
func (db *DB) SetCostParams(p CostParams) { db.params = p }

// CreateTable registers a new table.
func (db *DB) CreateTable(s Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[s.Name]; dup {
		return nil, fmt.Errorf("table %q already exists", s.Name)
	}
	if len(s.Cols) == 0 {
		return nil, fmt.Errorf("table %q has no columns", s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("table %q: duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	t := &Table{schema: s}
	db.tables[s.Name] = t
	return t, nil
}

// MustCreateTable creates a table or panics; for dataset construction.
func (db *DB) MustCreateTable(s Schema) *Table {
	t, err := db.CreateTable(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns a registered table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Name implements domain.Domain.
func (db *DB) Name() string { return db.name }

// Functions implements domain.Domain.
func (db *DB) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{
		{Name: "all", Arity: 1, Doc: "all(table): every row as a record"},
		{Name: "equal", Arity: 3, Doc: "equal(table, attr, v): rows with attr = v"},
		{Name: "select_eq", Arity: 3, Doc: "alias of equal"},
		{Name: "select_lt", Arity: 3, Doc: "select_lt(table, attr, v): rows with attr < v"},
		{Name: "select_le", Arity: 3, Doc: "rows with attr <= v"},
		{Name: "select_gt", Arity: 3, Doc: "rows with attr > v"},
		{Name: "select_ge", Arity: 3, Doc: "rows with attr >= v"},
		{Name: "range_", Arity: 4, Doc: "range_(table, attr, lo, hi): rows with lo <= attr <= hi"},
		{Name: "count", Arity: 1, Doc: "count(table): row count"},
		{Name: "project", Arity: 2, Doc: "project(table, attr): distinct attr values"},
	}
}

func argString(args []term.Value, i int) (string, error) {
	s, ok := args[i].(term.Str)
	if !ok {
		return "", fmt.Errorf("argument %d must be a string, got %s", i+1, args[i])
	}
	return string(s), nil
}

// resolve finds the table and column named by args[0], args[1].
func (db *DB) resolve(args []term.Value) (*Table, int, error) {
	tname, err := argString(args, 0)
	if err != nil {
		return nil, 0, err
	}
	t, ok := db.Table(tname)
	if !ok {
		return nil, 0, fmt.Errorf("no table %q in domain %s", tname, db.name)
	}
	cname, err := argString(args, 1)
	if err != nil {
		return nil, 0, err
	}
	col, ok := t.schema.Col(cname)
	if !ok {
		return nil, 0, fmt.Errorf("table %q has no column %q", tname, cname)
	}
	return t, col, nil
}

// Call implements domain.Domain.
func (db *DB) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ctx.Clock.Sleep(db.params.PerCall)
	switch fn {
	case "all":
		if len(args) != 1 {
			return nil, fmt.Errorf("all/1 called with %d args", len(args))
		}
		tname, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		t, ok := db.tables[tname]
		if !ok {
			return nil, fmt.Errorf("no table %q in domain %s", tname, db.name)
		}
		out := make([]term.Value, len(t.rows))
		for i, r := range t.rows {
			out[i] = t.record(r)
		}
		ctx.Clock.Sleep(time.Duration(len(t.rows)) * (db.params.PerRowScan + db.params.PerRowResult))
		return domain.NewSliceStream(out), nil

	case "equal", "select_eq":
		if len(args) != 3 {
			return nil, fmt.Errorf("%s/3 called with %d args", fn, len(args))
		}
		t, col, err := db.resolve(args)
		if err != nil {
			return nil, err
		}
		idx := t.ensureHashIdx(col)
		ctx.Clock.Sleep(db.params.IndexProbe)
		hits := idx[args[2].Key()]
		out := make([]term.Value, len(hits))
		for i, ri := range hits {
			out[i] = t.record(t.rows[ri])
		}
		ctx.Clock.Sleep(time.Duration(len(hits)) * db.params.PerRowResult)
		return domain.NewSliceStream(out), nil

	case "select_lt", "select_le", "select_gt", "select_ge":
		if len(args) != 3 {
			return nil, fmt.Errorf("%s/3 called with %d args", fn, len(args))
		}
		t, col, err := db.resolve(args)
		if err != nil {
			return nil, err
		}
		return db.rangeScan(ctx, t, col, fn, args[2], nil)

	case "range_":
		if len(args) != 4 {
			return nil, fmt.Errorf("range_/4 called with %d args", len(args))
		}
		t, col, err := db.resolve(args)
		if err != nil {
			return nil, err
		}
		return db.rangeScan(ctx, t, col, fn, args[2], args[3])

	case "count":
		if len(args) != 1 {
			return nil, fmt.Errorf("count/1 called with %d args", len(args))
		}
		tname, err := argString(args, 0)
		if err != nil {
			return nil, err
		}
		t, ok := db.tables[tname]
		if !ok {
			return nil, fmt.Errorf("no table %q in domain %s", tname, db.name)
		}
		return domain.NewSliceStream([]term.Value{term.Int(len(t.rows))}), nil

	case "project":
		if len(args) != 2 {
			return nil, fmt.Errorf("project/2 called with %d args", len(args))
		}
		t, col, err := db.resolve(args)
		if err != nil {
			return nil, err
		}
		idx := t.ensureSortedIdx(col)
		ctx.Clock.Sleep(time.Duration(len(t.rows)) * db.params.PerRowScan)
		var out []term.Value
		var lastKey string
		for _, ri := range idx {
			v := t.rows[ri][col]
			if k := v.Key(); k != lastKey || len(out) == 0 {
				out = append(out, v)
				lastKey = k
			}
		}
		ctx.Clock.Sleep(time.Duration(len(out)) * db.params.PerRowResult)
		return domain.NewSliceStream(out), nil
	}
	return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, db.name, fn)
}

// rangeScan serves the inequality selects via the ordered index.
func (db *DB) rangeScan(ctx *domain.Ctx, t *Table, col int, fn string, bound, hi term.Value) (domain.Stream, error) {
	idx := t.ensureSortedIdx(col)
	ctx.Clock.Sleep(db.params.IndexProbe)
	matches := func(v term.Value) (bool, error) {
		switch fn {
		case "select_lt":
			return term.OpLT.Holds(v, bound)
		case "select_le":
			return term.OpLE.Holds(v, bound)
		case "select_gt":
			return term.OpGT.Holds(v, bound)
		case "select_ge":
			return term.OpGE.Holds(v, bound)
		case "range_":
			ge, err := term.OpGE.Holds(v, bound)
			if err != nil || !ge {
				return false, err
			}
			return term.OpLE.Holds(v, hi)
		}
		return false, fmt.Errorf("bad range function %q", fn)
	}
	var out []term.Value
	scanned := 0
	for _, ri := range idx {
		scanned++
		ok, err := matches(t.rows[ri][col])
		if err != nil {
			return nil, fmt.Errorf("%s on table %s: %w", fn, t.schema.Name, err)
		}
		if ok {
			out = append(out, t.record(t.rows[ri]))
		}
	}
	ctx.Clock.Sleep(time.Duration(scanned)*db.params.PerRowScan +
		time.Duration(len(out))*db.params.PerRowResult)
	return domain.NewSliceStream(out), nil
}
