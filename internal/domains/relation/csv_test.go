package relation

import (
	"strings"
	"testing"

	"hermes/internal/term"
)

var invCols = []Column{
	{Name: "item", Type: TString},
	{Name: "loc", Type: TString},
	{Name: "qty", Type: TInt},
	{Name: "price", Type: TFloat},
	{Name: "critical", Type: TBool},
}

func TestLoadCSV(t *testing.T) {
	db := New("r")
	csvData := `item,loc,qty,price,critical
h-22 fuel,depot1,40,12.5,true
rations,depot2,220,1.25,false
ammo,depot3,90,,true
`
	tbl, err := db.LoadCSV("inventory", invCols, strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	vals := callVals(t, db, "equal", term.Str("inventory"), term.Str("item"), term.Str("ammo"))
	if len(vals) != 1 {
		t.Fatalf("equal = %v", vals)
	}
	rec := vals[0].(term.Record)
	price, _ := rec.Get("price")
	if !term.Equal(price, term.Float(0)) {
		t.Errorf("empty float cell = %v, want 0", price)
	}
	crit, _ := rec.Get("critical")
	if !term.Equal(crit, term.Bool(true)) {
		t.Errorf("bool cell = %v", crit)
	}
}

func TestLoadCSVColumnReorder(t *testing.T) {
	db := New("r")
	// Header order differs from the schema slice order.
	csvData := "qty,item,loc,price,critical\n5,x,d,1.0,false\n"
	tbl, err := db.LoadCSV("t", invCols, strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Schema().Cols[0].Name; got != "qty" {
		t.Errorf("first column = %q (header order should win)", got)
	}
	vals := callVals(t, db, "all", term.Str("t"))
	qty, _ := vals[0].(term.Record).Get("qty")
	if !term.Equal(qty, term.Int(5)) {
		t.Errorf("qty = %v", qty)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"unknown header", "item,bogus\nx,y\n"},
		{"missing schema column", "item\nx\n"},
		{"bad int", "item,loc,qty,price,critical\nx,d,notanint,1,true\n"},
		{"bad float", "item,loc,qty,price,critical\nx,d,1,zz,true\n"},
		{"bad bool", "item,loc,qty,price,critical\nx,d,1,1,maybe\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		db := New("r")
		if _, err := db.LoadCSV("t", invCols, strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadCSVDuplicateTable(t *testing.T) {
	db := New("r")
	data := "item,loc,qty,price,critical\nx,d,1,1,true\n"
	if _, err := db.LoadCSV("t", invCols, strings.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSV("t", invCols, strings.NewReader(data)); err == nil {
		t.Error("duplicate table name should fail")
	}
}
