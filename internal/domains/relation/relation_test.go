package relation

import (
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func newCtx() *domain.Ctx { return domain.NewCtx(vclock.NewVirtual(0)) }

func testDB(t *testing.T) *DB {
	t.Helper()
	db := New("ingres")
	inv := db.MustCreateTable(Schema{Name: "inventory", Cols: []Column{
		{Name: "item", Type: TString},
		{Name: "loc", Type: TString},
		{Name: "qty", Type: TInt},
	}})
	inv.MustInsert(term.Str("h-22 fuel"), term.Str("depot1"), term.Int(40))
	inv.MustInsert(term.Str("h-22 fuel"), term.Str("depot3"), term.Int(15))
	inv.MustInsert(term.Str("rations"), term.Str("depot1"), term.Int(500))
	inv.MustInsert(term.Str("rations"), term.Str("depot2"), term.Int(220))
	inv.MustInsert(term.Str("ammo"), term.Str("depot3"), term.Int(90))
	return db
}

func callVals(t *testing.T, db *DB, fn string, args ...term.Value) []term.Value {
	t.Helper()
	s, err := db.Call(newCtx(), fn, args)
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	vals, err := domain.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestAll(t *testing.T) {
	db := testDB(t)
	vals := callVals(t, db, "all", term.Str("inventory"))
	if len(vals) != 5 {
		t.Fatalf("all = %d rows", len(vals))
	}
	rec := vals[0].(term.Record)
	if v, _ := rec.Get("item"); !term.Equal(v, term.Str("h-22 fuel")) {
		t.Errorf("first row = %v", rec)
	}
}

func TestEqualSelect(t *testing.T) {
	db := testDB(t)
	vals := callVals(t, db, "equal", term.Str("inventory"), term.Str("item"), term.Str("h-22 fuel"))
	if len(vals) != 2 {
		t.Fatalf("equal = %d rows, want 2", len(vals))
	}
	for _, v := range vals {
		item, _ := v.(term.Record).Get("item")
		if !term.Equal(item, term.Str("h-22 fuel")) {
			t.Errorf("wrong row %v", v)
		}
	}
	// Alias.
	vals2 := callVals(t, db, "select_eq", term.Str("inventory"), term.Str("item"), term.Str("h-22 fuel"))
	if len(vals2) != len(vals) {
		t.Error("select_eq differs from equal")
	}
	// No match.
	if vals := callVals(t, db, "equal", term.Str("inventory"), term.Str("item"), term.Str("nothing")); len(vals) != 0 {
		t.Errorf("no-match equal = %v", vals)
	}
}

func TestInequalitySelects(t *testing.T) {
	db := testDB(t)
	lt := callVals(t, db, "select_lt", term.Str("inventory"), term.Str("qty"), term.Int(90))
	if len(lt) != 2 { // 40, 15
		t.Errorf("select_lt(90) = %d rows, want 2", len(lt))
	}
	le := callVals(t, db, "select_le", term.Str("inventory"), term.Str("qty"), term.Int(90))
	if len(le) != 3 {
		t.Errorf("select_le(90) = %d rows, want 3", len(le))
	}
	gt := callVals(t, db, "select_gt", term.Str("inventory"), term.Str("qty"), term.Int(90))
	if len(gt) != 2 { // 500, 220
		t.Errorf("select_gt(90) = %d rows, want 2", len(gt))
	}
	ge := callVals(t, db, "select_ge", term.Str("inventory"), term.Str("qty"), term.Int(90))
	if len(ge) != 3 {
		t.Errorf("select_ge(90) = %d rows, want 3", len(ge))
	}
	// select_lt results come back ordered by the indexed column.
	prev := int64(-1)
	for _, v := range lt {
		q, _ := v.(term.Record).Get("qty")
		if int64(q.(term.Int)) < prev {
			t.Errorf("select_lt not ordered: %v", lt)
		}
		prev = int64(q.(term.Int))
	}
}

// Property: select_lt(v) ⊆ select_lt(w) for v <= w — the paper's subset
// invariant holds on the source itself.
func TestSelectLtMonotoneProperty(t *testing.T) {
	db := testDB(t)
	f := func(a, b uint8) bool {
		v, w := int64(a), int64(b)
		if v > w {
			v, w = w, v
		}
		small := callVals(t, db, "select_lt", term.Str("inventory"), term.Str("qty"), term.Int(v))
		large := callVals(t, db, "select_lt", term.Str("inventory"), term.Str("qty"), term.Int(w))
		keys := map[string]bool{}
		for _, r := range large {
			keys[r.Key()] = true
		}
		for _, r := range small {
			if !keys[r.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRangeSelect(t *testing.T) {
	db := testDB(t)
	vals := callVals(t, db, "range_", term.Str("inventory"), term.Str("qty"), term.Int(40), term.Int(220))
	if len(vals) != 3 { // 40, 90, 220
		t.Errorf("range_(40,220) = %d rows, want 3", len(vals))
	}
}

func TestCountAndProject(t *testing.T) {
	db := testDB(t)
	vals := callVals(t, db, "count", term.Str("inventory"))
	if len(vals) != 1 || !term.Equal(vals[0], term.Int(5)) {
		t.Errorf("count = %v", vals)
	}
	items := callVals(t, db, "project", term.Str("inventory"), term.Str("item"))
	if len(items) != 3 {
		t.Errorf("project item = %v, want 3 distinct", items)
	}
}

func TestTypeChecking(t *testing.T) {
	db := New("r")
	tab := db.MustCreateTable(Schema{Name: "t", Cols: []Column{
		{Name: "s", Type: TString}, {Name: "n", Type: TInt}, {Name: "f", Type: TFloat},
	}})
	if err := tab.Insert(term.Str("a"), term.Int(1), term.Float(1.5)); err != nil {
		t.Errorf("valid insert: %v", err)
	}
	// Int promotes into float columns.
	if err := tab.Insert(term.Str("a"), term.Int(1), term.Int(2)); err != nil {
		t.Errorf("int into float column: %v", err)
	}
	if err := tab.Insert(term.Int(1), term.Int(1), term.Float(0)); err == nil {
		t.Error("int into string column should fail")
	}
	if err := tab.Insert(term.Str("a"), term.Int(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestSchemaErrors(t *testing.T) {
	db := New("r")
	if _, err := db.CreateTable(Schema{Name: "t"}); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := db.CreateTable(Schema{Name: "t", Cols: []Column{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Error("duplicate column should fail")
	}
	db.MustCreateTable(Schema{Name: "t", Cols: []Column{{Name: "a"}}})
	if _, err := db.CreateTable(Schema{Name: "t", Cols: []Column{{Name: "a"}}}); err == nil {
		t.Error("duplicate table should fail")
	}
}

func TestCallErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Call(newCtx(), "nosuch", nil); err == nil {
		t.Error("unknown function should fail")
	}
	if _, err := db.Call(newCtx(), "all", []term.Value{term.Str("nosuch")}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Call(newCtx(), "equal", []term.Value{term.Str("inventory"), term.Str("nosuch"), term.Int(1)}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Call(newCtx(), "equal", []term.Value{term.Int(3), term.Str("item"), term.Int(1)}); err == nil {
		t.Error("non-string table arg should fail")
	}
	if _, err := db.Call(newCtx(), "all", nil); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestInsertInvalidatesIndexes(t *testing.T) {
	db := testDB(t)
	before := callVals(t, db, "equal", term.Str("inventory"), term.Str("item"), term.Str("ammo"))
	tab, _ := db.Table("inventory")
	tab.MustInsert(term.Str("ammo"), term.Str("depot9"), term.Int(1))
	after := callVals(t, db, "equal", term.Str("inventory"), term.Str("item"), term.Str("ammo"))
	if len(after) != len(before)+1 {
		t.Errorf("index stale after insert: %d -> %d", len(before), len(after))
	}
}

func TestComputeCostCharged(t *testing.T) {
	db := testDB(t)
	ctx := newCtx()
	s, err := db.Call(ctx, "all", []term.Value{term.Str("inventory")})
	if err != nil {
		t.Fatal(err)
	}
	domain.Collect(s)
	if ctx.Clock.Now() < DefaultCostParams.PerCall {
		t.Errorf("clock not charged: %v", ctx.Clock.Now())
	}
}

func TestNativeEstimator(t *testing.T) {
	db := testDB(t)
	cv, missing, ok := db.EstimateCost(domain.Pattern{
		Domain: "ingres", Function: "equal",
		Args: []domain.PatternArg{
			domain.Const(term.Str("inventory")),
			domain.Const(term.Str("item")),
			domain.Bound,
		}})
	if !ok || len(missing) != 0 {
		t.Fatalf("estimate declined: ok=%v missing=%v", ok, missing)
	}
	// 5 rows, 3 distinct items -> card 5/3.
	if cv.Card < 1.5 || cv.Card > 1.8 {
		t.Errorf("card = %v, want ≈1.67", cv.Card)
	}
	if cv.TAll <= 0 || cv.TFirst <= 0 {
		t.Errorf("times = %v", cv)
	}
	// Unknown table: decline.
	if _, _, ok := db.EstimateCost(domain.Pattern{Domain: "ingres", Function: "all",
		Args: []domain.PatternArg{domain.Const(term.Str("nosuch"))}}); ok {
		t.Error("unknown table should decline")
	}
	// $b table argument: decline.
	if _, _, ok := db.EstimateCost(domain.Pattern{Domain: "ingres", Function: "all",
		Args: []domain.PatternArg{domain.Bound}}); ok {
		t.Error("$b table should decline")
	}
	// Wrong domain: decline.
	if _, _, ok := db.EstimateCost(domain.Pattern{Domain: "other", Function: "all",
		Args: []domain.PatternArg{domain.Const(term.Str("inventory"))}}); ok {
		t.Error("other domain should decline")
	}
}

func TestFunctionsSpec(t *testing.T) {
	db := New("r")
	specs := db.Functions()
	want := map[string]int{"all": 1, "equal": 3, "select_eq": 3, "select_lt": 3,
		"select_le": 3, "select_gt": 3, "select_ge": 3, "range_": 4, "count": 1, "project": 2}
	if len(specs) != len(want) {
		t.Fatalf("specs = %d, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		if want[s.Name] != s.Arity {
			t.Errorf("%s arity = %d, want %d", s.Name, s.Arity, want[s.Name])
		}
	}
}

func TestCostParamsOverride(t *testing.T) {
	db := testDB(t)
	db.SetCostParams(CostParams{PerCall: time.Second})
	ctx := newCtx()
	s, _ := db.Call(ctx, "count", []term.Value{term.Str("inventory")})
	domain.Collect(s)
	if ctx.Clock.Now() != time.Second {
		t.Errorf("override not applied: %v", ctx.Clock.Now())
	}
}
