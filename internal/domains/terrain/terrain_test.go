package terrain

import (
	"strings"
	"testing"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func newCtx() *domain.Ctx { return domain.NewCtx(vclock.NewVirtual(0)) }

func testGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid([]string{
		"..........",
		".####.####",
		".#........",
		".#.######.",
		"...#....#.",
		"####.##.#.",
		"....#...#.",
		".##...#.#.",
		".#..###.#.",
		"..........",
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, at := range map[string][2]int{
		"place1": {0, 0},
		"depot1": {9, 9},
		"depot3": {2, 2},
	} {
		if err := g.AddLocation(name, at[0], at[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestFindRoute(t *testing.T) {
	p := New("terraindb", testGrid(t))
	st, err := p.Call(newCtx(), "findrte", []term.Value{term.Str("place1"), term.Str("depot1")})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("routes = %v", vals)
	}
	rec := vals[0].(term.Record)
	length, _ := rec.Get("len")
	if int64(length.(term.Int)) < 18 { // manhattan distance lower bound
		t.Errorf("route length = %v, impossible (< manhattan distance)", length)
	}
	wps, _ := rec.Get("waypoints")
	if !strings.HasPrefix(string(wps.(term.Str)), "0,0;") {
		t.Errorf("route must start at origin: %v", wps)
	}
}

func TestDistMatchesRoute(t *testing.T) {
	p := New("terraindb", testGrid(t))
	st, _ := p.Call(newCtx(), "dist", []term.Value{term.Str("place1"), term.Str("depot3")})
	vals, _ := domain.Collect(st)
	if len(vals) != 1 {
		t.Fatalf("dist = %v", vals)
	}
	st2, _ := p.Call(newCtx(), "findrte", []term.Value{term.Str("place1"), term.Str("depot3")})
	routes, _ := domain.Collect(st2)
	length, _ := routes[0].(term.Record).Get("len")
	if !term.Equal(vals[0], length) {
		t.Errorf("dist %v != route len %v", vals[0], length)
	}
}

func TestRouteToSelf(t *testing.T) {
	p := New("terraindb", testGrid(t))
	st, _ := p.Call(newCtx(), "dist", []term.Value{term.Str("place1"), term.Str("place1")})
	vals, _ := domain.Collect(st)
	if len(vals) != 1 || !term.Equal(vals[0], term.Int(0)) {
		t.Errorf("self distance = %v", vals)
	}
}

func TestNoRouteEmptyAnswerSet(t *testing.T) {
	g, err := NewGrid([]string{
		".#.",
		".#.",
		".#.",
	})
	if err != nil {
		t.Fatal(err)
	}
	g.AddLocation("west", 0, 0)
	g.AddLocation("east", 2, 0)
	p := New("t", g)
	st, err := p.Call(newCtx(), "findrte", []term.Value{term.Str("west"), term.Str("east")})
	if err != nil {
		t.Fatal(err)
	}
	if vals, _ := domain.Collect(st); len(vals) != 0 {
		t.Errorf("blocked route returned %v", vals)
	}
}

func TestLocations(t *testing.T) {
	p := New("terraindb", testGrid(t))
	st, _ := p.Call(newCtx(), "locations", nil)
	vals, _ := domain.Collect(st)
	if len(vals) != 3 {
		t.Fatalf("locations = %v", vals)
	}
	// Sorted.
	if !term.Equal(vals[0], term.Str("depot1")) {
		t.Errorf("locations not sorted: %v", vals)
	}
}

func TestPlanningCostScalesWithDistance(t *testing.T) {
	p := New("terraindb", testGrid(t))
	ctx1 := newCtx()
	st, _ := p.Call(ctx1, "findrte", []term.Value{term.Str("place1"), term.Str("depot3")})
	domain.Collect(st)
	near := ctx1.Clock.Now()
	ctx2 := newCtx()
	st, _ = p.Call(ctx2, "findrte", []term.Value{term.Str("place1"), term.Str("depot1")})
	domain.Collect(st)
	far := ctx2.Clock.Now()
	if far <= near {
		t.Errorf("far route (%v) should cost more than near (%v)", far, near)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(nil); err == nil {
		t.Error("empty grid")
	}
	if _, err := NewGrid([]string{"..", "..."}); err == nil {
		t.Error("ragged grid")
	}
	if _, err := NewGrid([]string{".x"}); err == nil {
		t.Error("bad cell")
	}
	g, _ := NewGrid([]string{".#"})
	if err := g.AddLocation("a", 5, 0); err == nil {
		t.Error("out-of-bounds location")
	}
	if err := g.AddLocation("a", 1, 0); err == nil {
		t.Error("blocked location")
	}
}

func TestCallErrors(t *testing.T) {
	p := New("terraindb", testGrid(t))
	if _, err := p.Call(newCtx(), "findrte", []term.Value{term.Str("nosuch"), term.Str("depot1")}); err == nil {
		t.Error("unknown from location")
	}
	if _, err := p.Call(newCtx(), "findrte", []term.Value{term.Str("place1"), term.Str("nosuch")}); err == nil {
		t.Error("unknown to location")
	}
	if _, err := p.Call(newCtx(), "findrte", []term.Value{term.Int(1), term.Str("depot1")}); err == nil {
		t.Error("non-string location")
	}
	if _, err := p.Call(newCtx(), "nosuch", nil); err == nil {
		t.Error("unknown function")
	}
	if _, err := p.Call(newCtx(), "findrte", []term.Value{term.Str("place1")}); err == nil {
		t.Error("arity mismatch")
	}
}
