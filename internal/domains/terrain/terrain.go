// Package terrain implements the terrain-reasoning / path-planning source
// domain standing in for the US Army path planner integrated by HERMES
// (the findrte function of the motivating routetosupplies mediator). Routes
// are planned with A* over obstacle grids; planning cost is strongly
// data-dependent (expanded-node count), which makes the domain another
// "no reasonable cost model" source.
package terrain

import (
	"container/heap"
	"fmt"
	"strings"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// Grid is an obstacle grid: '.' passable, '#' blocked. Named locations map
// to cells.
type Grid struct {
	W, H      int
	blocked   []bool
	locations map[string][2]int
}

// NewGrid builds a grid from rows of '.'/'#' characters.
func NewGrid(rows []string) (*Grid, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty grid")
	}
	w := len(rows[0])
	g := &Grid{W: w, H: len(rows), blocked: make([]bool, w*len(rows)), locations: map[string][2]int{}}
	for y, r := range rows {
		if len(r) != w {
			return nil, fmt.Errorf("row %d has width %d, want %d", y, len(r), w)
		}
		for x, c := range r {
			switch c {
			case '#':
				g.blocked[y*w+x] = true
			case '.':
			default:
				return nil, fmt.Errorf("bad cell %q at (%d,%d)", c, x, y)
			}
		}
	}
	return g, nil
}

// AddLocation names a passable cell.
func (g *Grid) AddLocation(name string, x, y int) error {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return fmt.Errorf("location %q at (%d,%d) outside grid", name, x, y)
	}
	if g.blocked[y*g.W+x] {
		return fmt.Errorf("location %q at (%d,%d) is blocked", name, x, y)
	}
	g.locations[name] = [2]int{x, y}
	return nil
}

// CostParams model the planner's compute cost.
type CostParams struct {
	PerCall time.Duration
	PerNode time.Duration // per A* node expansion
}

// DefaultCostParams make long plans visibly expensive.
var DefaultCostParams = CostParams{
	PerCall: 25 * time.Millisecond,
	PerNode: 40 * time.Microsecond,
}

// Planner is the terrain domain.
type Planner struct {
	name   string
	params CostParams

	mu   sync.RWMutex
	grid *Grid
}

// New creates the planner over a grid.
func New(name string, g *Grid) *Planner {
	return &Planner{name: name, params: DefaultCostParams, grid: g}
}

// SetCostParams overrides the compute cost model.
func (p *Planner) SetCostParams(c CostParams) { p.params = c }

// Name implements domain.Domain.
func (p *Planner) Name() string { return p.name }

// Functions implements domain.Domain.
func (p *Planner) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{
		{Name: "findrte", Arity: 2, Doc: "findrte(from, to): a route between named locations"},
		{Name: "dist", Arity: 2, Doc: "dist(from, to): route length in cells"},
		{Name: "locations", Arity: 0, Doc: "locations(): known location names"},
	}
}

// Call implements domain.Domain.
func (p *Planner) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ctx.Clock.Sleep(p.params.PerCall)
	switch fn {
	case "locations":
		if len(args) != 0 {
			return nil, fmt.Errorf("locations/0 called with %d args", len(args))
		}
		var out []term.Value
		for n := range p.grid.locations {
			out = append(out, term.Str(n))
		}
		sortValues(out)
		return domain.NewSliceStream(out), nil
	case "findrte", "dist":
		if len(args) != 2 {
			return nil, fmt.Errorf("%s/2 called with %d args", fn, len(args))
		}
		from, ok1 := args[0].(term.Str)
		to, ok2 := args[1].(term.Str)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%s expects location names, got %s, %s", fn, args[0], args[1])
		}
		src, ok := p.grid.locations[string(from)]
		if !ok {
			return nil, fmt.Errorf("unknown location %q", string(from))
		}
		dst, ok := p.grid.locations[string(to)]
		if !ok {
			return nil, fmt.Errorf("unknown location %q", string(to))
		}
		path, expanded := p.grid.astar(src, dst)
		ctx.Clock.Sleep(time.Duration(expanded) * p.params.PerNode)
		if path == nil {
			return domain.NewSliceStream(nil), nil // no route: empty answer set
		}
		if fn == "dist" {
			return domain.NewSliceStream([]term.Value{term.Int(len(path) - 1)}), nil
		}
		return domain.NewSliceStream([]term.Value{routeValue(path)}), nil
	}
	return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, p.name, fn)
}

func sortValues(vs []term.Value) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Key() < vs[j-1].Key(); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// routeValue encodes a path as a record {len, waypoints}.
func routeValue(path [][2]int) term.Value {
	var b strings.Builder
	for i, c := range path {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d,%d", c[0], c[1])
	}
	return term.NewRecord(
		term.Field{Name: "len", Val: term.Int(int64(len(path) - 1))},
		term.Field{Name: "waypoints", Val: term.Str(b.String())},
	)
}

// pqItem is an A* frontier entry.
type pqItem struct {
	cell int
	f    int
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(a, b int) bool { return q[a].f < q[b].f }
func (q pq) Swap(a, b int)      { q[a], q[b] = q[b], q[a] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// astar plans a 4-connected shortest path, returning the path (or nil) and
// the number of expanded nodes (the compute-cost driver).
func (g *Grid) astar(src, dst [2]int) (path [][2]int, expanded int) {
	start := src[1]*g.W + src[0]
	goal := dst[1]*g.W + dst[0]
	h := func(c int) int {
		x, y := c%g.W, c/g.W
		return abs(x-dst[0]) + abs(y-dst[1])
	}
	dist := make(map[int]int, 64)
	prev := make(map[int]int, 64)
	dist[start] = 0
	frontier := &pq{{cell: start, f: h(start)}}
	for frontier.Len() > 0 {
		it := heap.Pop(frontier).(pqItem)
		d, seen := dist[it.cell]
		if !seen || it.f > d+h(it.cell) {
			continue
		}
		expanded++
		if it.cell == goal {
			// Reconstruct.
			for c := goal; ; {
				path = append([][2]int{{c % g.W, c / g.W}}, path...)
				if c == start {
					return path, expanded
				}
				c = prev[c]
			}
		}
		x, y := it.cell%g.W, it.cell/g.W
		for _, nb := range [][2]int{{x + 1, y}, {x - 1, y}, {x, y + 1}, {x, y - 1}} {
			if nb[0] < 0 || nb[0] >= g.W || nb[1] < 0 || nb[1] >= g.H {
				continue
			}
			nc := nb[1]*g.W + nb[0]
			if g.blocked[nc] {
				continue
			}
			nd := dist[it.cell] + 1
			if old, ok := dist[nc]; !ok || nd < old {
				dist[nc] = nd
				prev[nc] = it.cell
				heap.Push(frontier, pqItem{cell: nc, f: nd + h(nc)})
			}
		}
	}
	return nil, expanded
}
