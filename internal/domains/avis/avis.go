// Package avis implements a content-based video information source modelled
// on the AVIS package used in the paper's experiments: videos with objects
// (characters, actors' roles) occurring over frame intervals, queried with
// functions such as frames_to_objects and object_to_frames.
//
// AVIS is the paper's canonical example of a domain with "no well-understood
// cost estimation policies": the cost of a content query here depends on the
// video's internal scene structure (number of segments intersecting the
// requested frame range), which is opaque to the mediator. That makes
// closed-form cost models and curve fitting impractical — exactly the case
// the DCSM's statistics cache targets.
package avis

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

// Interval is an inclusive frame interval.
type Interval struct {
	From int
	To   int
}

// overlaps reports whether two intervals intersect.
func (iv Interval) overlaps(o Interval) bool {
	return iv.From <= o.To && o.From <= iv.To
}

// Occurrence records that an object appears in a video over a frame
// interval.
type Occurrence struct {
	Object   string
	Interval Interval
}

// CastEntry maps an actor to the role (object) they play in a video.
type CastEntry struct {
	Actor string
	Role  string
}

// Video is one entry of the store.
type Video struct {
	Name   string
	Frames int
	// SizeKB is the stored media size, returned by video_size.
	SizeKB int
	// occurrences, sorted by Interval.From, indexed by segment.
	occs []Occurrence
	// objects in first-appearance order.
	objects []string
	// cast lists the video's actors and their roles.
	cast []CastEntry
}

// CostParams model the content-analysis compute cost of the store.
type CostParams struct {
	// PerCall is the fixed query overhead.
	PerCall time.Duration
	// PerSegment is charged per occurrence segment examined.
	PerSegment time.Duration
	// PerFrame is charged per frame of the requested range that must be
	// content-scanned (the data-dependent, hard-to-model component).
	PerFrame time.Duration
	// PerResult is charged per answer produced.
	PerResult time.Duration
}

// DefaultCostParams give content queries compute costs in the tens to
// hundreds of milliseconds, comparable to the local share of the paper's
// AVIS timings.
var DefaultCostParams = CostParams{
	PerCall:    18 * time.Millisecond,
	PerSegment: 350 * time.Microsecond,
	PerFrame:   900 * time.Microsecond,
	PerResult:  500 * time.Microsecond,
}

// Store is the AVIS domain: a set of videos.
type Store struct {
	name   string
	params CostParams

	mu     sync.RWMutex
	videos map[string]*Video
}

// New creates an empty AVIS store with the given mediator-visible name
// (typically "avis" or "video").
func New(name string) *Store {
	return &Store{name: name, params: DefaultCostParams, videos: make(map[string]*Video)}
}

// SetCostParams overrides the compute cost model.
func (s *Store) SetCostParams(p CostParams) { s.params = p }

// AddVideo registers a video with its object occurrences.
func (s *Store) AddVideo(name string, frames, sizeKB int, occs []Occurrence) (*Video, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.videos[name]; dup {
		return nil, fmt.Errorf("video %q already exists", name)
	}
	v := &Video{Name: name, Frames: frames, SizeKB: sizeKB}
	v.occs = append(v.occs, occs...)
	sort.SliceStable(v.occs, func(a, b int) bool { return v.occs[a].Interval.From < v.occs[b].Interval.From })
	seen := map[string]bool{}
	for _, o := range v.occs {
		if o.Interval.From < 0 || o.Interval.To < o.Interval.From || o.Interval.To >= frames {
			return nil, fmt.Errorf("video %q: occurrence %v out of frame range [0,%d)", name, o, frames)
		}
		if !seen[o.Object] {
			seen[o.Object] = true
			v.objects = append(v.objects, o.Object)
		}
	}
	s.videos[name] = v
	return v, nil
}

// MustAddVideo adds a video or panics; for dataset construction.
func (s *Store) MustAddVideo(name string, frames, sizeKB int, occs []Occurrence) *Video {
	v, err := s.AddVideo(name, frames, sizeKB, occs)
	if err != nil {
		panic(err)
	}
	return v
}

// Objects returns the video's objects in first-appearance order.
func (v *Video) Objects() []string { return append([]string(nil), v.objects...) }

// SetCast attaches cast information to a video.
func (s *Store) SetCast(name string, cast []CastEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[name]
	if !ok {
		return fmt.Errorf("no video %q in store %s", name, s.name)
	}
	v.cast = append([]CastEntry(nil), cast...)
	return nil
}

// Video returns a registered video.
func (s *Store) Video(name string) (*Video, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.videos[name]
	return v, ok
}

// Name implements domain.Domain.
func (s *Store) Name() string { return s.name }

// Functions implements domain.Domain.
func (s *Store) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{
		{Name: "videos", Arity: 0, Doc: "videos(): names of stored videos"},
		{Name: "video_size", Arity: 1, Doc: "video_size(v): stored size in KB"},
		{Name: "frames_to_objects", Arity: 3, Doc: "frames_to_objects(v, first, last): objects appearing in [first,last]"},
		{Name: "objects_in_range", Arity: 3, Doc: "alias of frames_to_objects exposed by AVIS's range API; the equality-invariant experiments exploit their equivalence"},
		{Name: "object_to_frames", Arity: 2, Doc: "object_to_frames(v, obj): <from,to> intervals where obj appears"},
		{Name: "objects", Arity: 1, Doc: "objects(v): all objects of the video"},
		{Name: "actors", Arity: 1, Doc: "actors(v): the video's actors"},
		{Name: "cast_members", Arity: 1, Doc: "alias of actors exposed by AVIS's cast API"},
		{Name: "actors_in_range", Arity: 3, Doc: "actors_in_range(v, first, last): actors whose role appears in [first,last]"},
	}
}

func (s *Store) video(args []term.Value, i int) (*Video, error) {
	name, ok := args[i].(term.Str)
	if !ok {
		return nil, fmt.Errorf("argument %d must be a video name, got %s", i+1, args[i])
	}
	v, ok := s.videos[string(name)]
	if !ok {
		return nil, fmt.Errorf("no video %q in store %s", string(name), s.name)
	}
	return v, nil
}

func frameArg(args []term.Value, i int) (int, error) {
	n, ok := args[i].(term.Int)
	if !ok {
		return 0, fmt.Errorf("argument %d must be a frame number, got %s", i+1, args[i])
	}
	return int(n), nil
}

// Call implements domain.Domain.
func (s *Store) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ctx.Clock.Sleep(s.params.PerCall)
	switch fn {
	case "videos":
		if len(args) != 0 {
			return nil, fmt.Errorf("videos/0 called with %d args", len(args))
		}
		names := make([]string, 0, len(s.videos))
		for n := range s.videos {
			names = append(names, n)
		}
		sort.Strings(names)
		out := make([]term.Value, len(names))
		for i, n := range names {
			out[i] = term.Str(n)
		}
		return domain.NewSliceStream(out), nil

	case "video_size":
		if len(args) != 1 {
			return nil, fmt.Errorf("video_size/1 called with %d args", len(args))
		}
		v, err := s.video(args, 0)
		if err != nil {
			return nil, err
		}
		return domain.NewSliceStream([]term.Value{term.Int(v.SizeKB)}), nil

	case "objects":
		if len(args) != 1 {
			return nil, fmt.Errorf("objects/1 called with %d args", len(args))
		}
		v, err := s.video(args, 0)
		if err != nil {
			return nil, err
		}
		ctx.Clock.Sleep(time.Duration(len(v.occs)) * s.params.PerSegment)
		out := make([]term.Value, len(v.objects))
		for i, o := range v.objects {
			out[i] = term.Str(o)
		}
		ctx.Clock.Sleep(time.Duration(len(out)) * s.params.PerResult)
		return domain.NewSliceStream(out), nil

	case "frames_to_objects", "objects_in_range":
		if len(args) != 3 {
			return nil, fmt.Errorf("%s/3 called with %d args", fn, len(args))
		}
		v, err := s.video(args, 0)
		if err != nil {
			return nil, err
		}
		first, err := frameArg(args, 1)
		if err != nil {
			return nil, err
		}
		last, err := frameArg(args, 2)
		if err != nil {
			return nil, err
		}
		if last < first {
			first, last = last, first
		}
		q := Interval{From: first, To: last}
		// Content scan: cost grows with the number of segments intersecting
		// the range and with the frames each intersecting segment
		// contributes — the opaque, data-dependent behaviour the paper
		// ascribes to AVIS.
		var out []term.Value
		seen := map[string]bool{}
		segs, frames := 0, 0
		for _, o := range v.occs {
			segs++
			if o.Interval.From > last {
				break
			}
			if !o.Interval.overlaps(q) {
				continue
			}
			lo, hi := o.Interval.From, o.Interval.To
			if lo < first {
				lo = first
			}
			if hi > last {
				hi = last
			}
			frames += hi - lo + 1
			if !seen[o.Object] {
				seen[o.Object] = true
				out = append(out, term.Str(o.Object))
			}
		}
		ctx.Clock.Sleep(time.Duration(segs)*s.params.PerSegment +
			time.Duration(frames)*s.params.PerFrame +
			time.Duration(len(out))*s.params.PerResult)
		return domain.NewSliceStream(out), nil

	case "actors", "cast_members":
		if len(args) != 1 {
			return nil, fmt.Errorf("%s/1 called with %d args", fn, len(args))
		}
		v, err := s.video(args, 0)
		if err != nil {
			return nil, err
		}
		out := make([]term.Value, len(v.cast))
		for i, c := range v.cast {
			out[i] = term.Str(c.Actor)
		}
		ctx.Clock.Sleep(time.Duration(len(out)) * s.params.PerResult)
		return domain.NewSliceStream(out), nil

	case "actors_in_range":
		if len(args) != 3 {
			return nil, fmt.Errorf("actors_in_range/3 called with %d args", len(args))
		}
		v, err := s.video(args, 0)
		if err != nil {
			return nil, err
		}
		first, err := frameArg(args, 1)
		if err != nil {
			return nil, err
		}
		last, err := frameArg(args, 2)
		if err != nil {
			return nil, err
		}
		if last < first {
			first, last = last, first
		}
		q := Interval{From: first, To: last}
		present := map[string]bool{}
		for _, o := range v.occs {
			if o.Interval.overlaps(q) {
				present[o.Object] = true
			}
		}
		var out []term.Value
		for _, c := range v.cast {
			if present[c.Role] {
				out = append(out, term.Str(c.Actor))
			}
		}
		ctx.Clock.Sleep(time.Duration(len(v.occs))*s.params.PerSegment +
			time.Duration(len(out))*s.params.PerResult)
		return domain.NewSliceStream(out), nil

	case "object_to_frames":
		if len(args) != 2 {
			return nil, fmt.Errorf("object_to_frames/2 called with %d args", len(args))
		}
		v, err := s.video(args, 0)
		if err != nil {
			return nil, err
		}
		obj, ok := args[1].(term.Str)
		if !ok {
			return nil, fmt.Errorf("argument 2 must be an object name, got %s", args[1])
		}
		var out []term.Value
		frames := 0
		for _, o := range v.occs {
			if o.Object != string(obj) {
				continue
			}
			frames += o.Interval.To - o.Interval.From + 1
			out = append(out, term.Tuple{term.Int(o.Interval.From), term.Int(o.Interval.To)})
		}
		ctx.Clock.Sleep(time.Duration(len(v.occs))*s.params.PerSegment +
			time.Duration(frames/4)*s.params.PerFrame +
			time.Duration(len(out))*s.params.PerResult)
		return domain.NewSliceStream(out), nil
	}
	return nil, fmt.Errorf("%w: %s:%s", domain.ErrUnknownFunction, s.name, fn)
}
