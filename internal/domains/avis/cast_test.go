package avis

import (
	"testing"

	"hermes/internal/term"
)

func TestActorsAndAlias(t *testing.T) {
	s := ropeStore(t)
	actors := callVals(t, s, "actors", term.Str("rope"))
	if len(actors) != len(RopeCast) {
		t.Fatalf("actors = %d, want %d", len(actors), len(RopeCast))
	}
	if !term.Equal(actors[0], term.Str("james stewart")) {
		t.Errorf("first actor = %v", actors[0])
	}
	alias := callVals(t, s, "cast_members", term.Str("rope"))
	if len(alias) != len(actors) {
		t.Fatalf("cast_members = %d", len(alias))
	}
	for i := range actors {
		if !term.Equal(actors[i], alias[i]) {
			t.Errorf("alias diverges at %d: %v vs %v", i, actors[i], alias[i])
		}
	}
}

func TestActorsInRange(t *testing.T) {
	s := ropeStore(t)
	// Early frames: David Kentley (0-6) is on screen; Rupert (40-) is not.
	early := callVals(t, s, "actors_in_range", term.Str("rope"), term.Int(0), term.Int(10))
	keys := map[string]bool{}
	for _, a := range early {
		keys[a.Key()] = true
	}
	if !keys[term.Str("dick hogan").Key()] { // plays david kentley
		t.Errorf("david kentley's actor missing from early range: %v", early)
	}
	if keys[term.Str("james stewart").Key()] { // plays rupert cadell (40..)
		t.Errorf("rupert's actor wrongly present in early range: %v", early)
	}
	// Whole movie equals the full cast (every role occurs somewhere).
	all := callVals(t, s, "actors_in_range", term.Str("rope"), term.Int(0), term.Int(159))
	if len(all) != len(RopeCast) {
		t.Errorf("whole-range actors = %d, want %d", len(all), len(RopeCast))
	}
	// Swapped bounds normalize.
	swapped := callVals(t, s, "actors_in_range", term.Str("rope"), term.Int(10), term.Int(0))
	if len(swapped) != len(early) {
		t.Errorf("swapped bounds differ: %d vs %d", len(swapped), len(early))
	}
}

func TestActorsInRangeSubsetProperty(t *testing.T) {
	// The invariant the experiments rely on: actors(v) ⊇ actors_in_range.
	s := ropeStore(t)
	all := callVals(t, s, "actors", term.Str("rope"))
	keys := map[string]bool{}
	for _, a := range all {
		keys[a.Key()] = true
	}
	for f := 0; f < 160; f += 37 {
		for _, a := range callVals(t, s, "actors_in_range", term.Str("rope"), term.Int(int64(f)), term.Int(int64(f+20))) {
			if !keys[a.Key()] {
				t.Fatalf("range actor %v not in full cast", a)
			}
		}
	}
}

func TestCastErrors(t *testing.T) {
	s := ropeStore(t)
	if _, err := s.Call(newCtx(), "actors", nil); err == nil {
		t.Error("arity mismatch")
	}
	if _, err := s.Call(newCtx(), "actors", []term.Value{term.Str("nosuch")}); err == nil {
		t.Error("unknown video")
	}
	if _, err := s.Call(newCtx(), "actors_in_range", []term.Value{term.Str("rope"), term.Str("x"), term.Int(5)}); err == nil {
		t.Error("non-int frame")
	}
	if err := s.SetCast("nosuch", nil); err == nil {
		t.Error("SetCast on unknown video")
	}
}

func TestVideoWithoutCast(t *testing.T) {
	s := New("avis")
	Generate(s, "v", 100, 5, 1)
	if got := callVals(t, s, "actors", term.Str("v")); len(got) != 0 {
		t.Errorf("cast-less video actors = %v", got)
	}
}
