package avis

import (
	"fmt"
	"math/rand"
)

// RopeCast lists the principal roles of "The Rope" with the actors playing
// them; the experiment harness loads this into the relational "cast" table
// that the appendix queries join against.
var RopeCast = []struct {
	Actor string
	Role  string
}{
	{"james stewart", "rupert cadell"},
	{"john dall", "brandon shaw"},
	{"farley granger", "phillip morgan"},
	{"joan chandler", "janet walker"},
	{"cedric hardwicke", "mr. kentley"},
	{"constance collier", "mrs. atwater"},
	{"douglas dick", "kenneth lawrence"},
	{"edith evanson", "mrs. wilson"},
	{"dick hogan", "david kentley"},
}

// LoadRope installs the "rope" video used throughout the paper's
// experiments: 160 frames (scene-level granularity), with the principal
// characters plus props occurring over deterministic intervals dense enough
// that frames_to_objects(rope, 4, 47) returns ≈19 objects and
// frames_to_objects(rope, 4, 127) returns ≈24, matching the result
// cardinalities reported in Figure 5.
func LoadRope(s *Store) *Video {
	occ := func(obj string, from, to int) Occurrence {
		return Occurrence{Object: obj, Interval: Interval{From: from, To: to}}
	}
	occs := []Occurrence{
		// Props and set objects first: AVIS indexes scene objects before
		// characters, so range queries emit them first. Queries that join
		// against the cast must backtrack through them before producing a
		// first answer — the effect behind the paper's under-predicted
		// first-answer times.
		occ("chest", 0, 159),
		occ("rope", 0, 58),
		occ("manhattan skyline", 0, 159),
		occ("books", 5, 140),
		occ("piano", 8, 145),
		occ("dinner table", 12, 69),
		occ("champagne", 14, 70),
		occ("kitchen door", 18, 47),
		occ("candlesticks", 20, 90),
		occ("cigarette case", 41, 75),
		occ("first edition", 60, 110),
		occ("metronome", 95, 115),
		occ("hat", 100, 126),
		occ("murder weapon", 131, 152),
		occ("gun", 139, 154),
		occ("balcony", 124, 159),
		// Principal characters.
		occ("brandon shaw", 0, 155),
		occ("phillip morgan", 0, 150),
		occ("david kentley", 0, 6),
		occ("mrs. wilson", 10, 130),
		occ("janet walker", 30, 120),
		occ("kenneth lawrence", 32, 118),
		occ("mr. kentley", 35, 125),
		occ("mrs. atwater", 36, 122),
		occ("rupert cadell", 40, 159),
	}
	v := s.MustAddVideo("rope", 160, 10240, occs)
	cast := make([]CastEntry, len(RopeCast))
	for i, c := range RopeCast {
		cast[i] = CastEntry{Actor: c.Actor, Role: c.Role}
	}
	if err := s.SetCast("rope", cast); err != nil {
		panic(err)
	}
	return v
}

// Generate builds a synthetic video with the given number of frames and
// objects. Occurrence segmentation is drawn from the seeded generator;
// objects receive 1–4 segments each. Used by workload generators and the
// DCSM training experiments.
func Generate(s *Store, name string, frames, objects int, seed int64) *Video {
	rng := rand.New(rand.NewSource(seed))
	var occs []Occurrence
	for i := 0; i < objects; i++ {
		obj := fmt.Sprintf("obj%03d", i)
		segments := 1 + rng.Intn(4)
		for k := 0; k < segments; k++ {
			from := rng.Intn(frames)
			span := 1 + rng.Intn(frames/4+1)
			to := from + span
			if to >= frames {
				to = frames - 1
			}
			occs = append(occs, Occurrence{Object: obj, Interval: Interval{From: from, To: to}})
		}
	}
	return s.MustAddVideo(name, frames, 2048+rng.Intn(16384), occs)
}
