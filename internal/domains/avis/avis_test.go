package avis

import (
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func newCtx() *domain.Ctx { return domain.NewCtx(vclock.NewVirtual(0)) }

func callVals(t *testing.T, s *Store, fn string, args ...term.Value) []term.Value {
	t.Helper()
	st, err := s.Call(newCtx(), fn, args)
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	vals, err := domain.Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func ropeStore(t *testing.T) *Store {
	t.Helper()
	s := New("avis")
	LoadRope(s)
	return s
}

func TestRopeDatasetShape(t *testing.T) {
	s := ropeStore(t)
	v, ok := s.Video("rope")
	if !ok {
		t.Fatal("rope not loaded")
	}
	if v.Frames != 160 {
		t.Errorf("frames = %d", v.Frames)
	}
	// The paper's Figure 5 result cardinalities.
	mid := callVals(t, s, "frames_to_objects", term.Str("rope"), term.Int(4), term.Int(47))
	if len(mid) < 17 || len(mid) > 21 {
		t.Errorf("frames_to_objects(4,47) = %d objects, want ≈19", len(mid))
	}
	wide := callVals(t, s, "frames_to_objects", term.Str("rope"), term.Int(4), term.Int(127))
	if len(wide) < 22 || len(wide) > 26 {
		t.Errorf("frames_to_objects(4,127) = %d objects, want ≈24", len(wide))
	}
	if len(wide) <= len(mid) {
		t.Error("wider range should find more objects")
	}
}

func TestVideoSize(t *testing.T) {
	s := ropeStore(t)
	vals := callVals(t, s, "video_size", term.Str("rope"))
	if len(vals) != 1 || !term.Equal(vals[0], term.Int(10240)) {
		t.Errorf("video_size = %v", vals)
	}
}

func TestObjects(t *testing.T) {
	s := ropeStore(t)
	objs := callVals(t, s, "objects", term.Str("rope"))
	if len(objs) != 25 {
		t.Errorf("objects = %d", len(objs))
	}
}

func TestObjectToFrames(t *testing.T) {
	s := ropeStore(t)
	ivs := callVals(t, s, "object_to_frames", term.Str("rope"), term.Str("rupert cadell"))
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v", ivs)
	}
	iv := ivs[0].(term.Tuple)
	if !term.Equal(iv[0], term.Int(40)) || !term.Equal(iv[1], term.Int(159)) {
		t.Errorf("interval = %v", iv)
	}
	if got := callVals(t, s, "object_to_frames", term.Str("rope"), term.Str("nobody")); len(got) != 0 {
		t.Errorf("unknown object = %v", got)
	}
}

func TestVideosListing(t *testing.T) {
	s := ropeStore(t)
	Generate(s, "zsynth", 100, 5, 1)
	vals := callVals(t, s, "videos")
	if len(vals) != 2 || !term.Equal(vals[0], term.Str("rope")) {
		t.Errorf("videos = %v", vals)
	}
}

func TestFrameRangeSwapped(t *testing.T) {
	s := ropeStore(t)
	a := callVals(t, s, "frames_to_objects", term.Str("rope"), term.Int(4), term.Int(47))
	b := callVals(t, s, "frames_to_objects", term.Str("rope"), term.Int(47), term.Int(4))
	if len(a) != len(b) {
		t.Errorf("swapped bounds differ: %d vs %d", len(a), len(b))
	}
}

// Property: frames_to_objects is monotone in range width (superset
// invariant of the Figure 5 partial-invariant configuration).
func TestFramesToObjectsMonotoneProperty(t *testing.T) {
	s := ropeStore(t)
	f := func(a, b, c uint8) bool {
		lo := int64(a) % 160
		mid := lo + int64(b)%40
		hi := mid + int64(c)%40
		if mid > 159 {
			mid = 159
		}
		if hi > 159 {
			hi = 159
		}
		narrow := callVals(t, s, "frames_to_objects", term.Str("rope"), term.Int(lo), term.Int(mid))
		wide := callVals(t, s, "frames_to_objects", term.Str("rope"), term.Int(lo), term.Int(hi))
		keys := map[string]bool{}
		for _, v := range wide {
			keys[v.Key()] = true
		}
		for _, v := range narrow {
			if !keys[v.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCostDependsOnRangeWidth(t *testing.T) {
	s := ropeStore(t)
	t1 := timedCall(t, s, "frames_to_objects", term.Str("rope"), term.Int(4), term.Int(10))
	t2 := timedCall(t, s, "frames_to_objects", term.Str("rope"), term.Int(4), term.Int(127))
	if t2 <= t1 {
		t.Errorf("wide range not more expensive: %v vs %v", t1, t2)
	}
}

func timedCall(t *testing.T, s *Store, fn string, args ...term.Value) time.Duration {
	t.Helper()
	ctx := newCtx()
	st, err := s.Call(ctx, fn, args)
	if err != nil {
		t.Fatal(err)
	}
	domain.Collect(st)
	return ctx.Clock.Now()
}

func TestErrors(t *testing.T) {
	s := ropeStore(t)
	if _, err := s.Call(newCtx(), "nosuch", nil); err == nil {
		t.Error("unknown function")
	}
	if _, err := s.Call(newCtx(), "video_size", []term.Value{term.Str("nosuch")}); err == nil {
		t.Error("unknown video")
	}
	if _, err := s.Call(newCtx(), "frames_to_objects", []term.Value{term.Str("rope"), term.Str("x"), term.Int(2)}); err == nil {
		t.Error("non-int frame")
	}
	if _, err := s.Call(newCtx(), "objects", nil); err == nil {
		t.Error("arity mismatch")
	}
	if _, err := s.AddVideo("rope", 10, 1, nil); err == nil {
		t.Error("duplicate video")
	}
	if _, err := s.AddVideo("bad", 10, 1, []Occurrence{{Object: "x", Interval: Interval{From: 5, To: 20}}}); err == nil {
		t.Error("out-of-range occurrence")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s1 := New("a")
	s2 := New("a")
	v1 := Generate(s1, "v", 500, 20, 42)
	v2 := Generate(s2, "v", 500, 20, 42)
	if len(v1.occs) != len(v2.occs) {
		t.Fatal("generation not deterministic")
	}
	for i := range v1.occs {
		if v1.occs[i] != v2.occs[i] {
			t.Fatalf("occurrence %d differs", i)
		}
	}
}

func TestRopeCastJoinsWithObjects(t *testing.T) {
	// Every cast role occurs in the video, so the appendix's cast join is
	// non-empty.
	s := ropeStore(t)
	objs := callVals(t, s, "objects", term.Str("rope"))
	keys := map[string]bool{}
	for _, o := range objs {
		keys[o.Key()] = true
	}
	for _, c := range RopeCast {
		if !keys[term.Str(c.Role).Key()] {
			t.Errorf("cast role %q missing from video objects", c.Role)
		}
	}
}
