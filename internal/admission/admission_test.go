package admission

import (
	"sync"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
)

// fixedNow returns a now func pinned at t.
func fixedNow(t time.Duration) func() time.Duration {
	return func() time.Duration { return t }
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("wait"); err != nil || p != PolicyWait {
		t.Fatalf("ParsePolicy(wait) = %v, %v", p, err)
	}
	if p, err := ParsePolicy("shed"); err != nil || p != PolicyShed {
		t.Fatalf("ParsePolicy(shed) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("drop"); err == nil {
		t.Fatal("ParsePolicy(drop) should fail")
	}
	if PolicyWait.String() != "wait" || PolicyShed.String() != "shed" {
		t.Fatal("Policy.String mismatch")
	}
}

func TestPoolCapacityBound(t *testing.T) {
	p := NewPool(Config{MaxInflight: 3, Policy: PolicyShed})
	now := fixedNow(0)
	var leases []*Lease
	for i := 0; i < 3; i++ {
		l, err := p.Admit(1, now, nil)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		leases = append(leases, l)
	}
	if _, err := p.Admit(1, now, nil); !domain.IsOverloaded(err) {
		t.Fatalf("4th admit on full pool: err = %v, want ErrOverloaded", err)
	}
	// The shed error must also look unavailable so a CIM can degrade to
	// cache, and must be retryable-classified consistently.
	if _, err := p.Admit(1, now, nil); !domain.IsRetryable(err) {
		t.Fatal("shed error must wrap ErrUnavailable")
	}
	st := p.Stats()
	if st.Occupancy != 3 || st.Peak != 3 || st.Shed != 2 || st.Granted != 3 {
		t.Fatalf("stats = %+v", st)
	}
	leases[0].Close()
	if got := p.Stats().Occupancy; got != 2 {
		t.Fatalf("occupancy after close = %d, want 2", got)
	}
	l, err := p.Admit(1, now, nil)
	if err != nil {
		t.Fatalf("admit after close: %v", err)
	}
	l.Close()
	leases[1].Close()
	leases[2].Close()
	if got := p.Stats().Occupancy; got != 0 {
		t.Fatalf("final occupancy = %d, want 0", got)
	}
}

func TestSingleSessionGetsFullCapacity(t *testing.T) {
	p := NewPool(Config{MaxInflight: 8})
	l, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.TryLease(10); got != 7 {
		t.Fatalf("single session TryLease(10) = %d, want 7 (capacity-1)", got)
	}
	if l.Held() != 8 {
		t.Fatalf("held = %d, want 8", l.Held())
	}
	l.Close()
	if got := p.Stats().Occupancy; got != 0 {
		t.Fatalf("occupancy after close = %d, want 0", got)
	}
}

func TestWeightedFairShare(t *testing.T) {
	// Capacity 8, two sessions with weights 3 and 1: shares 6 and 2.
	p := NewPool(Config{MaxInflight: 8})
	now := fixedNow(0)
	heavy, err := p.Admit(3, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	light, err := p.Admit(1, now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := heavy.TryLease(10); got != 5 {
		t.Fatalf("heavy TryLease(10) = %d, want 5 (share 6 incl. implicit)", got)
	}
	if got := light.TryLease(10); got != 1 {
		t.Fatalf("light TryLease(10) = %d, want 1 (share 2 incl. implicit)", got)
	}
	// Pool now holds 8: nothing left even within share.
	if got := heavy.TryLease(1); got != 0 {
		t.Fatalf("heavy over-share TryLease = %d, want 0", got)
	}
	// Light returns its extra; heavy is at its share of 6 and may not take
	// the freed lane, but light may take it back within its own share.
	light.Return(1)
	if got := heavy.TryLease(5); got != 0 {
		t.Fatalf("heavy TryLease(5) past share = %d, want 0 (share cap)", got)
	}
	if got := light.TryLease(5); got != 1 {
		t.Fatalf("light TryLease(5) within share = %d, want 1", got)
	}
	heavy.Close()
	light.Close()
}

func TestFairShareNeverBelowOne(t *testing.T) {
	// 16 equal sessions on a 4-lane pool would compute share 0; the floor
	// of 1 keeps every admitted session runnable.
	p := NewPool(Config{MaxInflight: 4})
	now := fixedNow(0)
	var leases []*Lease
	for i := 0; i < 4; i++ {
		l, err := p.Admit(1, now, nil)
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	for i, l := range leases {
		if got := l.TryLease(3); got != 0 {
			t.Fatalf("session %d leased %d extras on a full pool", i, got)
		}
	}
	for _, l := range leases {
		l.Close()
	}
}

func TestWaitPolicyFIFOAndVtime(t *testing.T) {
	p := NewPool(Config{MaxInflight: 1, Policy: PolicyWait})
	first, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		lease *Lease
		err   error
		order int
	}
	results := make(chan result, 2)
	var admitted sync.WaitGroup
	admitted.Add(2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			// Poll until this goroutine is queued, then signal.
			l, err := p.Admit(1, fixedNow(time.Duration(i)*time.Millisecond), nil)
			results <- result{l, err, i}
			admitted.Done()
		}()
		// Wait for the waiter to be queued before launching the next, so
		// FIFO order is deterministic.
		waitFor(t, func() bool { return p.Stats().Waiting == i+1 })
	}

	// Release the held lane at vtime 100ms: exactly one waiter wakes.
	first.Close()
	r1 := <-results
	if r1.err != nil {
		t.Fatalf("first waiter: %v", r1.err)
	}
	if r1.order != 0 {
		t.Fatalf("FIFO violated: waiter %d admitted first", r1.order)
	}
	if p.Stats().Waiting != 1 {
		t.Fatalf("waiting = %d, want 1", p.Stats().Waiting)
	}
	r1.lease.Close()
	r2 := <-results
	if r2.err != nil || r2.order != 1 {
		t.Fatalf("second waiter: %+v", r2)
	}
	r2.lease.Close()
	admitted.Wait()

	st := p.Stats()
	if st.Queued != 2 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want Queued=2 Shed=0", st)
	}
}

func TestWaitGrantCarriesVtime(t *testing.T) {
	p := NewPool(Config{MaxInflight: 1, Policy: PolicyWait})
	holder, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Lease, 1)
	go func() {
		l, err := p.Admit(1, fixedNow(5*time.Millisecond), nil)
		if err != nil {
			panic(err)
		}
		got <- l
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 })
	// The holder's session clock has advanced to 80ms when it finishes:
	// the waiter's grant must be stamped with that reading, not its own
	// arrival time, so its clock advances past the contention.
	holder.now = fixedNow(80 * time.Millisecond)
	holder.Close()
	l := <-got
	if l.GrantedAt() != 80*time.Millisecond {
		t.Fatalf("GrantedAt = %s, want 80ms", l.GrantedAt())
	}
	if l.Waited() != 75*time.Millisecond {
		t.Fatalf("Waited = %s, want 75ms", l.Waited())
	}
	l.Close()
}

func TestWaitAbandonedByCancel(t *testing.T) {
	p := NewPool(Config{MaxInflight: 1, Policy: PolicyWait})
	holder, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := p.Admit(1, fixedNow(0), cancel)
		errc <- err
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 })
	close(cancel)
	if err := <-errc; !domain.IsOverloaded(err) {
		t.Fatalf("abandoned wait: err = %v, want ErrOverloaded", err)
	}
	// The abandoned waiter must not consume the lane when it frees.
	holder.Close()
	if got := p.Stats().Occupancy; got != 0 {
		t.Fatalf("occupancy = %d, want 0 (gone waiter must be skipped)", got)
	}
	l, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatalf("pool wedged after abandoned wait: %v", err)
	}
	l.Close()
}

func TestMaxQueueShedsUnderWait(t *testing.T) {
	p := NewPool(Config{MaxInflight: 1, Policy: PolicyWait, MaxQueue: 1})
	holder, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		l, err := p.Admit(1, fixedNow(0), nil)
		if l != nil {
			l.Close()
		}
		errc <- err
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 })
	if _, err := p.Admit(1, fixedNow(0), nil); !domain.IsOverloaded(err) {
		t.Fatalf("over-queue admit: err = %v, want ErrOverloaded", err)
	}
	holder.Close()
	if err := <-errc; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestReturnClampedAndCloseIdempotent(t *testing.T) {
	p := NewPool(Config{MaxInflight: 4})
	l, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.TryLease(2); got != 2 {
		t.Fatalf("TryLease(2) = %d", got)
	}
	l.Return(50) // clamps to the 2 extras; the implicit lane stays held
	if l.Held() != 1 {
		t.Fatalf("held after over-return = %d, want 1", l.Held())
	}
	if got := p.Stats().Occupancy; got != 1 {
		t.Fatalf("occupancy = %d, want 1", got)
	}
	l.Close()
	l.Close() // idempotent
	l.Return(3)
	if got := l.TryLease(2); got != 0 {
		t.Fatalf("closed lease granted %d lanes", got)
	}
	if got := p.Stats().Occupancy; got != 0 {
		t.Fatalf("final occupancy = %d, want 0", got)
	}
	if p.Capacity() != 4 {
		t.Fatalf("capacity = %d", p.Capacity())
	}
}

func TestWaitersBlockExtraLeases(t *testing.T) {
	p := NewPool(Config{MaxInflight: 2, Policy: PolicyWait})
	a, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Admit(1, fixedNow(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Lease, 1)
	go func() {
		l, err := p.Admit(1, fixedNow(0), nil)
		if err != nil {
			panic(err)
		}
		admitted <- l
	}()
	waitFor(t, func() bool { return p.Stats().Waiting == 1 })
	// b finishes; the freed lane must go to the queued session, and a must
	// not be able to snatch it as an extra even within its fair share.
	b.Close()
	c := <-admitted
	if got := a.TryLease(1); got != 0 {
		t.Fatalf("running session leased %d while pool full", got)
	}
	a.Close()
	c.Close()
}

func TestObserverMetrics(t *testing.T) {
	p := NewPool(Config{MaxInflight: 2, Policy: PolicyShed})
	o := obs.NewObserver()
	p.SetObserver(o)
	a, _ := p.Admit(1, fixedNow(0), nil)
	b, _ := p.Admit(1, fixedNow(0), nil)
	if _, err := p.Admit(1, fixedNow(0), nil); err == nil {
		t.Fatal("expected shed")
	}
	if got := o.Counter("hermes_admission_granted_total").Value(); got != 2 {
		t.Fatalf("granted = %d, want 2", got)
	}
	if got := o.Counter("hermes_admission_shed_total").Value(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if got := o.Gauge("hermes_admission_inflight_lanes").Value(); got != 2 {
		t.Fatalf("inflight gauge = %v, want 2", got)
	}
	if got := o.Gauge("hermes_admission_peak_lanes").Value(); got != 2 {
		t.Fatalf("peak gauge = %v, want 2", got)
	}
	a.Close()
	b.Close()
	if got := o.Gauge("hermes_admission_inflight_lanes").Value(); got != 0 {
		t.Fatalf("inflight gauge after close = %v, want 0", got)
	}
	if got := o.Gauge("hermes_admission_peak_lanes").Value(); got != 2 {
		t.Fatalf("peak gauge after close = %v, want 2 (high-water)", got)
	}
}

func TestNilSafety(t *testing.T) {
	var p *Pool
	p.SetObserver(nil)
	var l *Lease
	if l.TryLease(3) != 0 || l.Held() != 0 || l.GrantedAt() != 0 || l.Waited() != 0 {
		t.Fatal("nil lease must be inert")
	}
	l.Return(2)
	l.Close()
}

func TestConcurrentChurn(t *testing.T) {
	p := NewPool(Config{MaxInflight: 6, Policy: PolicyShed})
	o := obs.NewObserver()
	p.SetObserver(o)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l, err := p.Admit(1, fixedNow(0), nil)
				if err != nil {
					continue
				}
				if got := l.TryLease(2); got > 0 {
					l.Return(got)
				}
				l.Close()
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Occupancy != 0 || st.Waiting != 0 {
		t.Fatalf("post-churn stats = %+v", st)
	}
	if st.Peak > 6 {
		t.Fatalf("peak %d exceeded capacity 6", st.Peak)
	}
	if got := o.Gauge("hermes_admission_peak_lanes").Value(); got > 6 {
		t.Fatalf("peak gauge %v exceeded capacity", got)
	}
}

// waitFor polls cond with a short sleep until it holds or the test times
// out. The admission pool has no hooks for test synchronization by design
// (no test-only channels in production paths), so queue-entry is observed
// through Stats.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
