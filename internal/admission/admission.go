// Package admission implements the mediator's server-level scheduler
// tier: one token pool per core.System bounding how many evaluation lanes
// — and therefore how many in-flight source calls — exist across every
// concurrent query session, regardless of how many sessions the server is
// holding open.
//
// The per-query tier (domain.Sched) caps parallel branches *within* one
// query; without a shared pool, a server running K concurrent sessions
// multiplies that budget K-fold and floods the very sources the paper's
// cost model assumes it measured at their unloaded latencies. The pool
// restores the invariant the DCSM's [Tf, Ta, Card] vectors depend on:
// total source-facing concurrency never exceeds MaxInflight, no matter
// how many clients connect.
//
// Lanes are leased in two steps:
//
//   - Admit grants a session its one implicit lane (the query's own
//     thread). Under PolicyWait the session queues FIFO until a lane
//     frees; under PolicyShed a saturated pool rejects the session
//     immediately with a fast error wrapping domain.ErrOverloaded and
//     domain.ErrUnavailable, so a fronting server can answer 503 and an
//     upstream CIM can degrade to cache.
//   - Lease.TryLease grants extra lanes for the session's parallel
//     operators, bounded by weighted fair sharing: under contention a
//     session may hold at most max(1, MaxInflight·w/Σw) lanes, so no
//     session can starve its neighbours. TryLease never blocks —
//     a refused lease means the operator runs sequentially, exactly the
//     degradation contract domain.Sched already has.
//
// Time is supplied by the caller as execution-clock readings, so the pool
// is deterministic under the virtual clock: a queued session's clock is
// advanced to the reading at which its lane was actually freed.
package admission

import (
	"fmt"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
)

// Policy selects what happens to a session arriving at a saturated pool.
type Policy int

const (
	// PolicyWait queues the session FIFO until a lane frees (the default).
	PolicyWait Policy = iota
	// PolicyShed rejects the session immediately with ErrOverloaded.
	PolicyShed
)

func (p Policy) String() string {
	switch p {
	case PolicyShed:
		return "shed"
	default:
		return "wait"
	}
}

// ParsePolicy parses a -shed-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "wait":
		return PolicyWait, nil
	case "shed":
		return PolicyShed, nil
	}
	return 0, fmt.Errorf("admission: unknown shed policy %q (want wait or shed)", s)
}

// Config tunes a Pool.
type Config struct {
	// MaxInflight is the pool capacity: the server-wide bound on
	// concurrently held evaluation lanes (≤ 0 is normalized to 1 — a pool
	// exists to bound, an unbounded server simply builds no pool).
	MaxInflight int
	// Policy is the saturation behaviour for new sessions.
	Policy Policy
	// MaxQueue bounds how many sessions may wait under PolicyWait; arrivals
	// beyond it are shed even under PolicyWait. 0 means unbounded.
	MaxQueue int
}

// Stats is a snapshot of the pool's activity, for tests and reports that
// run without an observer.
type Stats struct {
	// Granted counts lanes handed out (implicit admissions and extra
	// leases). Queued counts sessions that had to wait; Shed counts
	// sessions rejected with ErrOverloaded.
	Granted, Queued, Shed int64
	// Occupancy is the number of lanes currently held; Peak its high-water
	// mark over the pool's lifetime.
	Occupancy, Peak int
	// Waiting is the current queue length.
	Waiting int
}

// waiter is one queued session under PolicyWait.
type waiter struct {
	lease   *Lease
	ready   chan struct{} // closed on grant
	grantAt time.Duration // lane availability reading, set before close
	gone    bool          // abandoned by cancellation; skip on grant
}

// Pool is the shared lane pool. All methods are safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	cfg      Config
	free     int
	sessions map[*Lease]struct{}
	queue    []*waiter
	stats    Stats

	// lastFree is the latest execution-clock reading at which a lane was
	// returned, used to stamp grants to queued sessions so waiting costs
	// virtual time.
	lastFree time.Duration

	granted, queued, shed *obs.Counter
	occupancy, peak       *obs.Gauge
	waitMS                *obs.Histogram
}

// NewPool builds a pool of cfg.MaxInflight lanes.
func NewPool(cfg Config) *Pool {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 1
	}
	return &Pool{
		cfg:      cfg,
		free:     cfg.MaxInflight,
		sessions: make(map[*Lease]struct{}),
	}
}

// SetObserver wires the pool's metrics into an observer: the occupancy and
// peak gauges and the granted/queued/shed counters all pre-register at
// zero so a scrape before traffic already reports them. Nil-safe.
func (p *Pool) SetObserver(o *obs.Observer) {
	if p == nil || o == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.granted = o.Counter("hermes_admission_granted_total")
	p.queued = o.Counter("hermes_admission_queued_total")
	p.shed = o.Counter("hermes_admission_shed_total")
	p.occupancy = o.Gauge("hermes_admission_inflight_lanes")
	p.peak = o.Gauge("hermes_admission_peak_lanes")
	p.waitMS = o.Histogram("hermes_admission_wait_ms")
	o.Metrics.SetHelp("hermes_admission_granted_total", "evaluation lanes granted by the server-wide admission pool")
	o.Metrics.SetHelp("hermes_admission_queued_total", "query sessions that waited for an admission lane")
	o.Metrics.SetHelp("hermes_admission_shed_total", "query sessions shed with ErrOverloaded at a saturated pool")
	o.Metrics.SetHelp("hermes_admission_inflight_lanes", "evaluation lanes currently held across all sessions")
	o.Metrics.SetHelp("hermes_admission_peak_lanes", "high-water mark of concurrently held lanes")
	o.Metrics.SetHelp("hermes_admission_wait_ms", "execution-clock time sessions spent queued for admission")
	p.granted.Add(0)
	p.occupancy.Set(float64(p.cfg.MaxInflight - p.free))
	p.peak.Set(float64(p.stats.Peak))
}

// Capacity returns the pool's lane bound.
func (p *Pool) Capacity() int { return p.cfg.MaxInflight }

// Policy returns the configured saturation behaviour.
func (p *Pool) Policy() Policy { return p.cfg.Policy }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Occupancy = p.cfg.MaxInflight - p.free
	s.Waiting = len(p.queue)
	return s
}

// takeLocked moves n lanes from free to held and maintains the gauges.
func (p *Pool) takeLocked(n int) {
	p.free -= n
	p.stats.Granted += int64(n)
	p.granted.Add(int64(n))
	occ := p.cfg.MaxInflight - p.free
	if occ > p.stats.Peak {
		p.stats.Peak = occ
		p.peak.Set(float64(occ))
	}
	p.occupancy.Set(float64(occ))
}

// returnLocked gives n lanes back at clock reading now and hands as many
// as possible straight to queued sessions, FIFO.
func (p *Pool) returnLocked(n int, now time.Duration) {
	if n <= 0 {
		return
	}
	p.free += n
	if p.free > p.cfg.MaxInflight {
		p.free = p.cfg.MaxInflight // defensive: never exceed capacity
	}
	if now > p.lastFree {
		p.lastFree = now
	}
	p.occupancy.Set(float64(p.cfg.MaxInflight - p.free))
	for p.free > 0 && len(p.queue) > 0 {
		w := p.queue[0]
		p.queue = p.queue[1:]
		if w.gone {
			continue
		}
		p.takeLocked(1)
		w.lease.held = 1
		w.grantAt = p.lastFree
		close(w.ready)
	}
}

// overloadErr builds the shed error: fast, wrapping both ErrOverloaded
// (so the resilience layer fails fast instead of retrying) and
// ErrUnavailable (so a CIM above a shedding source degrades to cache).
func (p *Pool) overloadErr() error {
	return fmt.Errorf("admission: pool saturated (%d lanes held, %d queued): %w (%w)",
		p.cfg.MaxInflight, len(p.queue), domain.ErrOverloaded, domain.ErrUnavailable)
}

// Admit registers a query session of the given weight (≤ 0 is normalized
// to 1) and grants its implicit lane. now supplies execution-clock
// readings; cancel, when non-nil, abandons a queued wait (the session
// gives up its place and Admit returns the cancellation cause, or
// ErrOverloaded when no cause applies).
//
// The returned lease holds one lane. Waiting is accounted in virtual
// time: Lease.GrantedAt is the clock reading at which the lane actually
// freed, and callers advance the session clock to it.
func (p *Pool) Admit(weight int, now func() time.Duration, cancel <-chan struct{}) (*Lease, error) {
	if weight <= 0 {
		weight = 1
	}
	at := now()
	l := &Lease{pool: p, weight: weight, now: now, admittedAt: at, grantAt: at}
	p.mu.Lock()
	if p.free > 0 {
		p.takeLocked(1)
		l.held = 1
		p.sessions[l] = struct{}{}
		p.mu.Unlock()
		return l, nil
	}
	if p.cfg.Policy == PolicyShed || (p.cfg.MaxQueue > 0 && len(p.queue) >= p.cfg.MaxQueue) {
		p.stats.Shed++
		p.shed.Inc()
		err := p.overloadErr()
		p.mu.Unlock()
		return nil, err
	}
	w := &waiter{lease: l, ready: make(chan struct{})}
	p.queue = append(p.queue, w)
	p.sessions[l] = struct{}{} // waiters count toward fair shares
	p.stats.Queued++
	p.queued.Inc()
	p.mu.Unlock()

	select {
	case <-w.ready:
		p.mu.Lock()
		if w.grantAt > l.grantAt {
			l.grantAt = w.grantAt
		}
		p.waitMS.Observe(float64(l.grantAt-l.admittedAt) / float64(time.Millisecond))
		p.mu.Unlock()
		return l, nil
	case <-cancel:
		p.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: the lane is ours, give it
			// straight back before abandoning.
			delete(p.sessions, l)
			l.closed = true
			p.returnLocked(l.held, now())
			l.held = 0
		default:
			w.gone = true
			delete(p.sessions, l)
			l.closed = true
		}
		p.mu.Unlock()
		return nil, fmt.Errorf("admission: wait abandoned: %w (%w)", domain.ErrOverloaded, domain.ErrUnavailable)
	}
}

// Lease is one admitted session's claim on the pool: its implicit lane
// plus any extra lanes leased for parallel operators. It implements
// domain.LaneLease, so a domain.Sched built with NewLeasedSched draws
// extra lanes through it.
type Lease struct {
	pool   *Pool
	weight int
	now    func() time.Duration

	held       int // lanes currently held, implicit included
	admittedAt time.Duration
	grantAt    time.Duration
	closed     bool
}

// allowanceLocked computes the session's weighted fair share:
// max(1, capacity·w/Σw) over all live sessions. With a single session the
// share is the full capacity — fairness only bites under contention.
// Called with pool.mu held.
func (l *Lease) allowanceLocked() int {
	p := l.pool
	if len(p.sessions) <= 1 {
		return p.cfg.MaxInflight
	}
	total := 0
	for s := range p.sessions {
		total += s.weight
	}
	share := p.cfg.MaxInflight * l.weight / total
	if share < 1 {
		share = 1
	}
	return share
}

// TryLease grants up to n extra lanes without blocking, implementing
// domain.LaneLease. Grants are bounded by three limits at once: pool
// capacity, the session's weighted fair share, and — when sessions are
// queued waiting for their implicit lane — zero, so free lanes go to
// admitting starved sessions before widening already-running ones.
func (l *Lease) TryLease(n int) int {
	if l == nil || n <= 0 {
		return 0
	}
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if l.closed {
		return 0
	}
	if len(p.queue) > 0 {
		return 0 // waiters have first claim on freed lanes
	}
	take := n
	if take > p.free {
		take = p.free
	}
	if room := l.allowanceLocked() - l.held; take > room {
		take = room
	}
	if take <= 0 {
		return 0
	}
	p.takeLocked(take)
	l.held += take
	return take
}

// Return gives n extra lanes back to the pool, implementing
// domain.LaneLease. Returns are clamped so the session never hands back
// more than it holds beyond its implicit lane.
func (l *Lease) Return(n int) {
	if l == nil || n <= 0 {
		return
	}
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if l.closed {
		return
	}
	if max := l.held - 1; n > max {
		n = max
	}
	if n <= 0 {
		return
	}
	l.held -= n
	p.returnLocked(n, l.now())
}

// Close ends the session: the implicit lane and any extras still held
// return to the pool, and the session stops counting toward fair shares.
// Close is idempotent.
func (l *Lease) Close() {
	if l == nil {
		return
	}
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	delete(p.sessions, l)
	give := l.held
	l.held = 0
	p.returnLocked(give, l.now())
}

// Held returns how many lanes the session currently holds (implicit
// included).
func (l *Lease) Held() int {
	if l == nil {
		return 0
	}
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return l.held
}

// GrantedAt returns the execution-clock reading at which the implicit
// lane was granted; a session that waited advances its clock to it.
func (l *Lease) GrantedAt() time.Duration {
	if l == nil {
		return 0
	}
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return l.grantAt
}

// Waited returns how long the session queued before admission, in
// execution-clock time.
func (l *Lease) Waited() time.Duration {
	if l == nil {
		return 0
	}
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return l.grantAt - l.admittedAt
}
