package remote

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// tracedCtx returns a wall-clock call context carrying a live call span,
// the shape the engine hands the remote client for a traced query.
func tracedCtx(name string) (*domain.Ctx, *obs.Span) {
	root := obs.NewTracer(1).StartQuery("?- q.", 0)
	call := root.Child(name, 0)
	ctx := domain.NewCtx(vclock.NewWall())
	ctx.Span = call
	return ctx, call
}

// findSpan walks a snapshot looking for a node whose tags carry k=v.
func findSpan(d obs.SpanData, k, v string) *obs.SpanData {
	if d.Tags[k] == v {
		return &d
	}
	for i := range d.Children {
		if hit := findSpan(d.Children[i], k, v); hit != nil {
			return hit
		}
	}
	return nil
}

// TestFederatedTraceStitching is the single-hop contract: a traced call
// against a CapTrace server comes back with the server's serve subtree
// stitched under the local call span — per-hop node tag, remote actual
// with full cardinality, wire time split out — and the remote actual
// reaches the caller's actuals hook.
func TestFederatedTraceStitching(t *testing.T) {
	_, addr := startServerCfg(t, func(s *Server) { s.NodeName = "node-b" }, echoDomain())
	ob := obs.NewObserver()
	c := NewClient(addr, "echo")
	defer c.Close()
	c.SetObserver(ob)
	var hooked []obs.Cost
	var hookedCalls []domain.Call
	c.SetActualsHook(func(call domain.Call, actual obs.Cost) {
		hookedCalls = append(hookedCalls, call)
		hooked = append(hooked, actual)
	})

	ctx, call := tracedCtx("call echo:gen(5)")
	st, err := c.Call(ctx, "gen", []term.Value{term.Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Fatalf("answers = %d, want 5", len(vals))
	}
	call.End(ctx.Clock.Now())

	snap := call.Snapshot()
	if snap.Tags["remote.proto"] != "v2" {
		t.Errorf("remote.proto = %q, want v2", snap.Tags["remote.proto"])
	}
	if snap.Tags["remote.wire_ms"] == "" {
		t.Error("remote.wire_ms tag missing: wire time not split from remote compute")
	}
	if len(snap.Children) != 1 {
		t.Fatalf("call span has %d children, want 1 stitched serve subtree:\n%s",
			len(snap.Children), obs.Explain(snap))
	}
	serve := snap.Children[0]
	if serve.Name != "serve echo:gen" {
		t.Errorf("stitched subtree root = %q", serve.Name)
	}
	if serve.Tags["node"] != "node-b" {
		t.Errorf("serve span node tag = %q, want node-b", serve.Tags["node"])
	}
	if serve.Actual == nil || serve.Actual.Card != 5 {
		t.Errorf("serve span actual = %+v, want Card=5", serve.Actual)
	}
	if serve.Start < snap.Start || serve.End > snap.End {
		t.Errorf("foreign subtree not rebased inside the call span: serve [%v,%v], call [%v,%v]",
			serve.Start, serve.End, snap.Start, snap.End)
	}

	m := ob.Metrics.Snapshot()
	if m["hermes_trace_propagated_total"] != 1 || m["hermes_trace_stitched_total"] != 1 {
		t.Errorf("propagated=%v stitched=%v, want 1/1",
			m["hermes_trace_propagated_total"], m["hermes_trace_stitched_total"])
	}
	if m["hermes_trace_foreign_subtree_bytes_total"] <= 0 {
		t.Error("foreign subtree bytes not counted")
	}

	if len(hooked) != 1 {
		t.Fatalf("actuals hook fired %d times, want 1", len(hooked))
	}
	if hookedCalls[0].Domain != "echo" || hookedCalls[0].Function != "gen" {
		t.Errorf("hook call = %+v", hookedCalls[0])
	}
	if hooked[0].Card != 5 {
		t.Errorf("hook actual Card = %v, want 5 (the remote-reported cardinality)", hooked[0].Card)
	}
}

// TestFederatedTraceTwoHop chains A → B → C: B mounts C's domain through
// a remote client of its own, so the subtree B ships to A must already
// contain C's serve span nested inside. One trace, three nodes.
func TestFederatedTraceTwoHop(t *testing.T) {
	_, addrC := startServerCfg(t, func(s *Server) { s.NodeName = "node-c" }, echoDomain())
	mountC := NewClient(addrC, "echo")
	defer mountC.Close()
	_, addrB := startServerCfg(t, func(s *Server) { s.NodeName = "node-b" }, mountC)

	c := NewClient(addrB, "echo")
	defer c.Close()
	c.SetObserver(obs.NewObserver())

	ctx, call := tracedCtx("call echo:gen(3)")
	st, err := c.Call(ctx, "gen", []term.Value{term.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("answers = %d, want 3", len(vals))
	}
	call.End(ctx.Clock.Now())

	snap := call.Snapshot()
	serveB := findSpan(snap, "node", "node-b")
	if serveB == nil {
		t.Fatalf("no node-b serve span stitched:\n%s", obs.Explain(snap))
	}
	serveC := findSpan(*serveB, "node", "node-c")
	if serveC == nil {
		t.Fatalf("node-c's serve span not nested under node-b's:\n%s", obs.Explain(snap))
	}
	if serveC.Actual == nil || serveC.Actual.Card != 3 {
		t.Errorf("innermost hop actual = %+v, want Card=3", serveC.Actual)
	}
	// B's serve span carries the B→C hop's client-side tags: the middle
	// hop is diagnosable from the stitched tree alone.
	if serveB.Tags["remote.proto"] != "v2" {
		t.Errorf("node-b serve span remote.proto = %q, want v2", serveB.Tags["remote.proto"])
	}
}

// deepServeDomain builds a wide span subtree under the serving context, so
// a tight server-side byte budget must prune and tag the shipped tree.
type deepServeDomain struct{}

func (deepServeDomain) Name() string { return "deep" }
func (deepServeDomain) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{{Name: "go", Arity: 0}}
}
func (deepServeDomain) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	for i := 0; i < 64; i++ {
		ch := ctx.Span.Child(fmt.Sprintf("step %d", i), ctx.Clock.Now())
		ch.SetTag("detail", strings.Repeat("x", 40))
		ch.End(ctx.Clock.Now())
	}
	return domain.NewSliceStream([]term.Value{term.Int(1)}), nil
}

// TestFederatedTraceTruncation: a serve subtree over the server's byte
// budget arrives pruned, tagged truncated=1, and still stitches — the
// budget bounds trace frames, it never drops tracing entirely.
func TestFederatedTraceTruncation(t *testing.T) {
	ob := obs.NewObserver()
	srv, addr := startServerCfg(t, func(s *Server) {
		s.NodeName = "node-b"
		s.TraceMaxSubtreeBytes = 512
		s.SetObserver(ob)
	}, deepServeDomain{})
	_ = srv

	c := NewClient(addr, "deep")
	defer c.Close()
	c.SetObserver(obs.NewObserver())
	ctx, call := tracedCtx("call deep:go()")
	st, err := c.Call(ctx, "go", nil)
	if err != nil {
		t.Fatal(err)
	}
	if vals, err := domain.Collect(st); err != nil || len(vals) != 1 {
		t.Fatalf("vals=%d err=%v", len(vals), err)
	}
	call.End(ctx.Clock.Now())

	snap := call.Snapshot()
	if len(snap.Children) != 1 {
		t.Fatalf("no stitched subtree after truncation:\n%s", obs.Explain(snap))
	}
	serve := snap.Children[0]
	if serve.Tags[obs.TruncatedTag] != "1" {
		t.Errorf("pruned subtree not tagged %s=1: %v", obs.TruncatedTag, serve.Tags)
	}
	if len(serve.Children) == 64 {
		t.Error("subtree arrived unpruned despite the 512-byte budget")
	}
	if ob.Metrics.Snapshot()["hermes_trace_truncated_total"] != 1 {
		t.Error("server did not count the truncation")
	}
}

// TestDebugSnapshot covers the rollup op: a configured node answers with
// its payload, an unconfigured node answers with a typed error (degraded,
// not fatal), and a v1 peer is refused client-side without a round trip.
func TestDebugSnapshot(t *testing.T) {
	payload := []byte(`{"node":"node-b","metrics":{}}`)
	_, addr := startServerCfg(t, func(s *Server) {
		s.SetDebugInfo(func() ([]byte, error) { return payload, nil })
	}, echoDomain())
	c := NewClient(addr, "echo")
	defer c.Close()
	got, err := c.DebugSnapshot(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %s", got)
	}

	_, bare := startServer(t, echoDomain())
	cb := NewClient(bare, "echo")
	defer cb.Close()
	if _, err := cb.DebugSnapshot(2 * time.Second); err == nil ||
		!strings.Contains(err.Error(), "not configured") {
		t.Errorf("unconfigured node: err = %v", err)
	}

	cv1 := NewClient(addr, "echo")
	defer cv1.Close()
	cv1.ForceV1()
	if _, err := cv1.DebugSnapshot(time.Second); err == nil ||
		!strings.Contains(err.Error(), "protocol v1") {
		t.Errorf("v1 peer: err = %v", err)
	}
}
