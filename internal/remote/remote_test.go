package remote

import (
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []term.Value{
		term.Str("hello"),
		term.Str(""),
		term.Int(0),
		term.Int(-9007199254740993), // beyond float64 exactness
		term.Float(2.5),
		term.Bool(true),
		term.Bool(false),
		term.Tuple{term.Int(1), term.Str("a")},
		term.Tuple{},
		term.NewRecord(
			term.Field{Name: "name", Val: term.Str("x")},
			term.Field{Name: "pos", Val: term.Tuple{term.Float(1), term.Float(2)}},
		),
	}
	for _, v := range vals {
		w, err := encodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, err := decodeValue(w)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !term.Equal(v, got) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueCodecIntExactProperty(t *testing.T) {
	f := func(n int64) bool {
		w, err := encodeValue(term.Int(n))
		if err != nil {
			return false
		}
		got, err := decodeValue(w)
		return err == nil && term.Equal(got, term.Int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := decodeValue(wireValue{T: "zz"}); err == nil {
		t.Error("unknown tag should fail")
	}
	if _, err := decodeValue(wireValue{T: "i", S: "notanint"}); err == nil {
		t.Error("bad int payload should fail")
	}
}

// startServer spins a server over the given domains on an ephemeral port.
func startServer(t *testing.T, doms ...domain.Domain) (*Server, string) {
	return startServerCfg(t, nil, doms...)
}

// startServerCfg is startServer with a configuration hook that runs before
// the server starts serving (mutating Server fields afterwards races with
// the handler goroutines).
func startServerCfg(t *testing.T, cfg func(*Server), doms ...domain.Domain) (*Server, string) {
	t.Helper()
	reg := domain.NewRegistry()
	for _, d := range doms {
		reg.Register(d)
	}
	srv := NewServer(reg)
	srv.Logf = func(string, ...any) {}
	if cfg != nil {
		cfg(srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

func echoDomain() *domaintest.Domain {
	d := domaintest.New("echo")
	d.Define("gen", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			n := int64(args[0].(term.Int))
			out := make([]term.Value, n)
			for i := range out {
				out[i] = term.NewRecord(
					term.Field{Name: "i", Val: term.Int(int64(i))},
					term.Field{Name: "tag", Val: term.Str("remote")},
				)
			}
			return out, nil
		}})
	d.Define("fail", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			return nil, errors.New("source exploded")
		}})
	d.Define("down", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			return nil, domain.ErrUnavailable
		}})
	return d
}

func TestEndToEndCall(t *testing.T) {
	_, addr := startServer(t, echoDomain())
	c := NewClient(addr, "echo")
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	s, err := c.Call(ctx, "gen", []term.Value{term.Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Fatalf("vals = %d", len(vals))
	}
	rec := vals[3].(term.Record)
	i, _ := rec.Get("i")
	if !term.Equal(i, term.Int(3)) {
		t.Errorf("vals[3] = %v", rec)
	}
}

func TestChunkedStreaming(t *testing.T) {
	_, addr := startServerCfg(t, func(s *Server) { s.ChunkSize = 3 }, echoDomain()) // force multiple frames for 10 answers
	c := NewClient(addr, "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 10 {
		t.Errorf("vals = %d", len(vals))
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	_, addr := startServer(t, echoDomain())
	c := NewClient(addr, "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := domain.Collect(s); err == nil {
		t.Error("source error should propagate")
	}
}

func TestRemoteUnavailableIsTyped(t *testing.T) {
	_, addr := startServer(t, echoDomain())
	c := NewClient(addr, "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "down", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = domain.Collect(s)
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
}

func TestDialFailureIsUnavailable(t *testing.T) {
	c := NewClient("127.0.0.1:1", "echo") // nothing listens on port 1
	c.SetDialTimeout(200 * time.Millisecond)
	_, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(1)})
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
}

func TestFunctionsListing(t *testing.T) {
	_, addr := startServer(t, echoDomain())
	c := NewClient(addr, "echo")
	specs := c.Functions()
	if len(specs) != 3 {
		t.Fatalf("specs = %v", specs)
	}
	// Cached on second use.
	if len(c.Functions()) != 3 {
		t.Error("cached listing lost")
	}
	// Unknown domain gives empty listing.
	c2 := NewClient(addr, "nosuch")
	if len(c2.Functions()) != 0 {
		t.Error("unknown domain should list no functions")
	}
}

// Regression: Functions() used to swallow dial failures and return an
// empty listing, which made the registry's validation misclassify an
// unreachable server as "unknown function" — a permanent, non-retryable
// verdict for a transient outage. FunctionsErr must surface the typed
// ErrUnavailable, nothing may be cached on failure, and a recovered
// server must serve the listing on the next probe.
func TestFunctionsUnreachableSurfacesUnavailable(t *testing.T) {
	c := NewClient("127.0.0.1:1", "echo") // nothing listens on port 1
	c.SetDialTimeout(200 * time.Millisecond)
	specs, err := c.FunctionsErr()
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Fatalf("FunctionsErr = (%v, %v), want ErrUnavailable", specs, err)
	}
	if !domain.IsRetryable(err) {
		t.Errorf("listing failure should be retryable, got %v", err)
	}
	if specs != nil {
		t.Errorf("failed listing returned specs %v, want nil", specs)
	}

	// The registry must not translate the outage into ErrUnknownFunction.
	reg := domain.NewRegistry()
	reg.Register(c)
	call := domain.Call{Domain: "echo", Function: "gen", Args: []term.Value{term.Int(1)}}
	err = reg.CheckCall(call)
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("CheckCall = %v, want ErrUnavailable", err)
	}
	if errors.Is(err, domain.ErrUnknownFunction) {
		t.Errorf("CheckCall misreported outage as unknown function: %v", err)
	}
	if reg.HasFunction("echo", "gen", 1) {
		t.Error("HasFunction must not confirm a function it could not list")
	}

	// Nothing was cached, so once the server is up the same client works.
	_, addr := startServer(t, echoDomain())
	c.addr = addr
	if err := reg.CheckCall(call); err != nil {
		t.Errorf("CheckCall after recovery: %v", err)
	}
	if len(c.Functions()) != 3 {
		t.Errorf("recovered listing = %v", c.Functions())
	}
}

func TestUnknownRemoteDomainErrors(t *testing.T) {
	_, addr := startServer(t, echoDomain())
	c := NewClient(addr, "nosuch")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(1)})
	if err != nil {
		return // dial-level error acceptable
	}
	if _, err := domain.Collect(s); err == nil {
		t.Error("unknown domain should error")
	}
}

func TestEarlyCloseAbortsServer(t *testing.T) {
	_, addr := startServerCfg(t, func(s *Server) { s.ChunkSize = 1 }, echoDomain())
	c := NewClient(addr, "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(10000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first answer: %v %v", ok, err)
	}
	s.Close()
	// Server notices the closed connection on its next write and stops; we
	// only verify the client side is clean and the server stays healthy for
	// the next call.
	s2, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s2)
	if err != nil || len(vals) != 2 {
		t.Errorf("follow-up call = %v, %v", vals, err)
	}
}

func TestClientAsRegistryDomain(t *testing.T) {
	// The client composes with everything that consumes domain.Domain.
	_, addr := startServer(t, echoDomain())
	reg := domain.NewRegistry()
	reg.Register(NewClient(addr, "echo"))
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	s, err := reg.Call(ctx, domain.Call{Domain: "echo", Function: "gen", Args: []term.Value{term.Int(3)}})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 3 {
		t.Errorf("vals = %v, %v", vals, err)
	}
}
