package remote

import (
	"fmt"
	"sync"
	"testing"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// TestConcurrentClients hammers one server with parallel calls from many
// goroutines; every call must return its own correct answer set.
func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, echoDomain())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient(addr, "echo")
			for i := 0; i < 4; i++ {
				n := int64(1 + (g+i)%7)
				s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(n)})
				if err != nil {
					errs <- err
					return
				}
				vals, err := domain.Collect(s)
				if err != nil {
					errs <- err
					return
				}
				if int64(len(vals)) != n {
					errs <- fmt.Errorf("goroutine %d: got %d answers, want %d", g, len(vals), n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLargePayload streams a result set far larger than one chunk.
func TestLargePayload(t *testing.T) {
	_, addr := startServerCfg(t, func(s *Server) { s.ChunkSize = 16 }, echoDomain())
	c := NewClient(addr, "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(5000)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5000 {
		t.Fatalf("vals = %d", len(vals))
	}
	// Spot check ordering integrity.
	last := vals[4999].(term.Record)
	i, _ := last.Get("i")
	if !term.Equal(i, term.Int(4999)) {
		t.Errorf("last value = %v", last)
	}
}

// TestServerCloseDuringStream: closing the server mid-stream surfaces an
// error on the client rather than hanging.
func TestServerCloseDuringStream(t *testing.T) {
	srv, addr := startServerCfg(t, func(s *Server) { s.ChunkSize = 1 }, echoDomain())
	c := NewClient(addr, "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(100000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first answer: %v %v", ok, err)
	}
	srv.Close()
	// Eventually the stream errors or ends; it must not deliver forever.
	seen := 1
	for {
		_, ok, err := s.Next()
		if err != nil || !ok {
			break
		}
		seen++
		if seen > 200000 {
			t.Fatal("stream never terminated after server close")
		}
	}
}
