package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"hermes/internal/domain"
	"hermes/internal/vclock"
)

// Server hosts source domains over TCP: the hermesd side of the protocol.
type Server struct {
	reg *domain.Registry
	// ChunkSize is how many answers travel per response frame.
	ChunkSize int
	// Logf receives connection-level diagnostics (default: log.Printf; set
	// to a no-op in tests).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer creates a server over a registry of domains.
func NewServer(reg *domain.Registry) *Server {
	return &Server{reg: reg, ChunkSize: 64, Logf: log.Printf, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on l until Close. It always returns a non-nil
// error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener and all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// handle serves one connection: exactly one request.
func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var req request
	if err := dec.Decode(&req); err != nil {
		s.Logf("remote: bad request from %s: %v", conn.RemoteAddr(), err)
		return
	}
	switch req.Op {
	case "functions":
		s.serveFunctions(enc)
	case "call":
		s.serveCall(enc, req)
	default:
		enc.Encode(response{Err: fmt.Sprintf("unknown op %q", req.Op), Done: true})
	}
}

func (s *Server) serveFunctions(enc *json.Encoder) {
	out := map[string][]fnSpec{}
	for _, name := range s.reg.Names() {
		d, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		var specs []fnSpec
		for _, f := range d.Functions() {
			specs = append(specs, fnSpec{Name: f.Name, Arity: f.Arity, Doc: f.Doc})
		}
		out[name] = specs
	}
	enc.Encode(response{Functions: out, Done: true})
}

func (s *Server) serveCall(enc *json.Encoder, req request) {
	args, err := decodeValues(req.Args)
	if err != nil {
		enc.Encode(response{Err: err.Error(), Done: true})
		return
	}
	// Server-side execution runs under wall-clock time: simulated compute
	// costs become real delays, which is what a genuinely remote source
	// looks like to the mediator.
	ctx := domain.NewCtx(vclock.NewWall())
	stream, err := s.reg.Call(ctx, domain.Call{Domain: req.Domain, Function: req.Function, Args: args})
	if err != nil {
		enc.Encode(response{Err: err.Error(), Unavailable: errors.Is(err, domain.ErrUnavailable), Done: true})
		return
	}
	defer stream.Close()
	chunk := make([]wireValue, 0, s.ChunkSize)
	flush := func(done bool) bool {
		err := enc.Encode(response{Values: chunk, Done: done})
		chunk = chunk[:0]
		return err == nil
	}
	for {
		v, ok, err := stream.Next()
		if err != nil {
			enc.Encode(response{Err: err.Error(), Unavailable: errors.Is(err, domain.ErrUnavailable), Done: true})
			return
		}
		if !ok {
			flush(true)
			return
		}
		wv, err := encodeValue(v)
		if err != nil {
			enc.Encode(response{Err: err.Error(), Done: true})
			return
		}
		chunk = append(chunk, wv)
		if len(chunk) >= s.ChunkSize {
			if !flush(false) {
				// Client went away (stream closed / pruning): stop the call.
				return
			}
		}
	}
}
