package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
	"hermes/internal/vclock"
)

// Server hosts source domains over TCP: the hermesd side of the protocol.
// It speaks both wire versions — the first line of a connection selects the
// v2 multiplexed session loop (op "hello") or the legacy one-shot v1 path
// (op "call"/"functions").
type Server struct {
	reg *domain.Registry
	// ChunkSize is how many answers travel per response frame. The first
	// answer of a v2 call is always flushed immediately, regardless of
	// chunking, so time-to-first-answer does not wait for a full chunk.
	ChunkSize int
	// HeaderTimeout bounds how long a fresh connection may take to send
	// its first line (the v2 hello or the v1 request). Without it a
	// connection that sends nothing pins a handler goroutine and a conns
	// entry forever (slowloris). 0 disables the deadline.
	HeaderTimeout time.Duration
	// Logf receives connection-level diagnostics (default: log.Printf; set
	// to a no-op in tests).
	Logf func(format string, args ...any)
	// NodeName tags every serve span this node ships to callers (the
	// per-hop node= tag in stitched traces).
	NodeName string
	// TraceMaxDepth is the hop-depth limit for federated tracing: a call
	// frame deeper than this is served normally but gets no trace frame
	// (the cycle guard for mutually mounted nodes). 0 disables tracing.
	TraceMaxDepth int
	// TraceMaxSubtreeBytes bounds the encoded span subtree shipped per
	// call; deeper levels are pruned to fit and the root is tagged
	// truncated=1. 0 means unlimited.
	TraceMaxSubtreeBytes int

	mu        sync.Mutex
	listener  net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	ob        *obs.Observer
	debugInfo func() ([]byte, error)
}

// DefaultHeaderTimeout is how long a new connection gets to send its first
// line before the server drops it.
const DefaultHeaderTimeout = 10 * time.Second

// Federated-tracing defaults: hop-depth cycle guard and per-call subtree
// byte budget.
const (
	DefaultTraceMaxDepth        = 8
	DefaultTraceMaxSubtreeBytes = 1 << 20
)

// NewServer creates a server over a registry of domains.
func NewServer(reg *domain.Registry) *Server {
	return &Server{
		reg:                  reg,
		ChunkSize:            64,
		HeaderTimeout:        DefaultHeaderTimeout,
		Logf:                 log.Printf,
		NodeName:             "hermesd",
		TraceMaxDepth:        DefaultTraceMaxDepth,
		TraceMaxSubtreeBytes: DefaultTraceMaxSubtreeBytes,
		conns:                map[net.Conn]struct{}{},
	}
}

// SetDebugInfo installs the producer of this node's debug rollup payload
// (metrics snapshot, savings ledger, slow queries), served to peers on
// OpDebug requests for their /debug/cluster views. Without one, debug
// requests get an error frame.
func (s *Server) SetDebugInfo(fn func() ([]byte, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.debugInfo = fn
}

func (s *Server) debugFn() func() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.debugInfo
}

// SetObserver installs the observability sink: per-frame send-error
// accounting (hermes_remote_send_errors_total), served-call counters by
// protocol version, and cancel/resume/heartbeat counters.
func (s *Server) SetObserver(o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ob = o
}

func (s *Server) obsv() *obs.Observer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ob
}

// noteSendError routes a failed frame write through the connection log and
// the hermes_remote_send_errors_total metric. Encode errors used to be
// silently discarded, which hid both dead clients and real serialization
// bugs from every dashboard.
func (s *Server) noteSendError(what string, to net.Addr, err error) {
	s.Logf("remote: send %s to %s: %v", what, to, err)
	s.obsv().Counter("hermes_remote_send_errors_total", "frame", what).Inc()
}

// Serve accepts connections on l until Close. It always returns a non-nil
// error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener and all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// OpenConns reports how many connections the server currently tracks.
// The interop harness asserts it returns to zero after fault scenarios.
func (s *Server) OpenConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// handle serves one connection: the first line selects the protocol. A v2
// hello enters the multiplexed session loop; a v1 call or functions request
// is served one-shot by the legacy path.
func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	if s.HeaderTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.HeaderTimeout))
	}
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var first Frame
	if err := dec.Decode(&first); err != nil {
		s.Logf("remote: bad request from %s: %v", conn.RemoteAddr(), err)
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch first.Op {
	case OpHello:
		s.serveSession(conn, dec, enc, first)
	case "functions":
		sn := &v1Sender{s: s, conn: conn, enc: enc}
		s.serveFunctions(sn)
	case "call":
		s.serveV1Call(conn, enc, request{
			Op: first.Op, Domain: first.Domain, Function: first.Function, Args: first.Args,
		})
	default:
		sn := &v1Sender{s: s, conn: conn, enc: enc}
		sn.send("error", response{Err: fmt.Sprintf("unknown op %q", first.Op), Done: true})
	}
}

// v1Sender writes legacy response frames with send-error accounting.
type v1Sender struct {
	s    *Server
	conn net.Conn
	enc  *json.Encoder
}

func (sn *v1Sender) send(what string, resp response) bool {
	if err := sn.enc.Encode(resp); err != nil {
		sn.s.noteSendError(what, sn.conn.RemoteAddr(), err)
		return false
	}
	return true
}

func (s *Server) serveFunctions(sn *v1Sender) {
	sn.send("functions", response{Functions: s.functionListing(), Done: true})
}

func (s *Server) functionListing() map[string][]FnSpec {
	out := map[string][]FnSpec{}
	for _, name := range s.reg.Names() {
		d, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		// Prefer the fallible listing: a mounted remote domain
		// (mediator-of-mediators) reports reachability errors there. An
		// unreachable mount is omitted rather than listed as empty.
		fns := d.Functions()
		if fl, isLister := d.(domain.FunctionLister); isLister {
			var err error
			if fns, err = fl.FunctionsErr(); err != nil {
				s.Logf("remote: listing functions of %q: %v", name, err)
				continue
			}
		}
		var specs []FnSpec
		for _, f := range fns {
			specs = append(specs, FnSpec{Name: f.Name, Arity: f.Arity, Doc: f.Doc})
		}
		out[name] = specs
	}
	return out
}

// serveV1Call runs one legacy call. A peer-monitor goroutine watches the
// connection for the client going away: the v1 client sends nothing after
// its request, so any read result means the peer closed (or broke), and
// the call context is cancelled. serveCall checks that context between
// answers, so a trickling source stops promptly instead of executing until
// the next full-chunk flush happens to fail.
func (s *Server) serveV1Call(conn net.Conn, enc *json.Encoder, req request) {
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				cancel()
				return
			}
		}
	}()
	s.obsv().Counter("hermes_remote_calls_total", "proto", "v1").Inc()
	sn := &v1Sender{s: s, conn: conn, enc: enc}
	s.serveCall(sn, req, cctx)
}

func (s *Server) serveCall(sn *v1Sender, req request, cctx context.Context) {
	args, err := decodeValues(req.Args)
	if err != nil {
		sn.send("error", response{Err: err.Error(), Done: true})
		return
	}
	// Server-side execution runs under wall-clock time: simulated compute
	// costs become real delays, which is what a genuinely remote source
	// looks like to the mediator.
	ctx := domain.NewCtx(vclock.NewWall())
	ctx.Context = cctx
	stream, err := s.reg.Call(ctx, domain.Call{Domain: req.Domain, Function: req.Function, Args: args})
	if err != nil {
		sn.send("error", response{Err: err.Error(), Unavailable: errors.Is(err, domain.ErrUnavailable), Done: true})
		return
	}
	defer stream.Close()
	chunk := make([]wireValue, 0, s.ChunkSize)
	flush := func(done bool) bool {
		ok := sn.send("answers", response{Values: chunk, Done: done})
		chunk = chunk[:0]
		return ok
	}
	for {
		if cctx.Err() != nil {
			// Client went away: abort the domain stream (closed by the
			// deferred Close) without draining the source.
			return
		}
		v, ok, err := stream.Next()
		if err != nil {
			sn.send("error", response{Err: err.Error(), Unavailable: errors.Is(err, domain.ErrUnavailable), Done: true})
			return
		}
		if !ok {
			flush(true)
			return
		}
		wv, err := encodeValue(v)
		if err != nil {
			sn.send("error", response{Err: err.Error(), Done: true})
			return
		}
		chunk = append(chunk, wv)
		if len(chunk) >= s.ChunkSize {
			if !flush(false) {
				// Client went away (stream closed / pruning): stop the call.
				return
			}
		}
	}
}

// serverSession is one v2 multiplexed connection: a reader goroutine (the
// handler itself) dispatches incoming frames, per-call goroutines stream
// answers back through a write-mutexed encoder, and dropping the
// connection — for any reason — cancels every in-flight call.
type serverSession struct {
	srv  *Server
	conn net.Conn
	enc  *json.Encoder
	wmu  sync.Mutex
	// peerTrace records whether the client's hello advertised CapTrace:
	// only then do calls grow serve spans and final trace frames.
	peerTrace bool

	mu    sync.Mutex
	calls map[uint64]context.CancelFunc
}

// send writes one frame, routing failures through the send-error
// accounting. Concurrent per-call streams serialize on the write mutex.
func (ss *serverSession) send(what string, f Frame) bool {
	ss.wmu.Lock()
	err := ss.enc.Encode(f)
	ss.wmu.Unlock()
	if err != nil {
		ss.srv.noteSendError(what, ss.conn.RemoteAddr(), err)
		return false
	}
	return true
}

// register creates the cancellation context of call id. ok=false reports a
// duplicate in-flight id (a protocol violation by the client).
func (ss *serverSession) register(id uint64) (context.Context, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, dup := ss.calls[id]; dup {
		return nil, false
	}
	cctx, cancel := context.WithCancel(context.Background())
	ss.calls[id] = cancel
	return cctx, true
}

// finish forgets call id, releasing its context.
func (ss *serverSession) finish(id uint64) {
	ss.mu.Lock()
	cancel := ss.calls[id]
	delete(ss.calls, id)
	ss.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// cancel aborts call id if it is in flight (unknown ids are ignored: the
// call may have finished while the cancel frame was in transit).
func (ss *serverSession) cancel(id uint64) {
	ss.mu.Lock()
	cancel := ss.calls[id]
	ss.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// cancelAll aborts every in-flight call: the connection died.
func (ss *serverSession) cancelAll() {
	ss.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(ss.calls))
	for _, c := range ss.calls {
		cancels = append(cancels, c)
	}
	ss.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// serveSession negotiates the version and runs the v2 session loop. The
// loop goroutine doubles as the per-connection reader the protocol
// requires: a dead or misbehaving client surfaces here as a read error
// immediately — not at the next flush boundary — and cancels every
// in-flight call.
func (s *Server) serveSession(conn net.Conn, dec *json.Decoder, enc *json.Encoder, hello Frame) {
	ss := &serverSession{srv: s, conn: conn, enc: enc, calls: map[uint64]context.CancelFunc{}}
	if !versionSupported(hello.Versions) {
		ss.send("hello", Frame{
			Op:  OpHello,
			Err: fmt.Sprintf("unsupported protocol versions %v (server speaks %d)", hello.Versions, ProtocolVersion),
		})
		return
	}
	ss.peerTrace = capSupported(hello.Caps, CapTrace)
	if !ss.send("hello", Frame{Op: OpHello, Version: ProtocolVersion, Caps: []string{CapTrace, CapDebug}}) {
		return
	}
	s.obsv().Counter("hermes_remote_sessions_total", "proto", "v2").Inc()
	// The client announced its heartbeat period: a connection silent for
	// several periods is dead, not idle. Clients that do not heartbeat get
	// no idle deadline (their reads may legitimately pause forever).
	var idle time.Duration
	if hello.HeartbeatMS > 0 {
		idle = 4 * time.Duration(hello.HeartbeatMS) * time.Millisecond
		if idle < time.Second {
			idle = time.Second
		}
	}
	defer ss.cancelAll()
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		var f Frame
		if err := dec.Decode(&f); err != nil {
			// EOF is the client hanging up; anything else (reset, idle
			// deadline, malformed frame) also ends the session — JSON
			// framing cannot resynchronize after garbage.
			if !errors.Is(err, net.ErrClosed) && err.Error() != "EOF" {
				s.Logf("remote: session %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch f.Op {
		case OpCall, OpResume:
			cctx, ok := ss.register(f.ID)
			if !ok {
				ss.send("error", Frame{Op: OpError, ID: f.ID, Err: fmt.Sprintf("call id %d already in flight", f.ID)})
				continue
			}
			if f.Op == OpResume {
				s.obsv().Counter("hermes_remote_resumes_total", "side", "server").Inc()
			}
			s.obsv().Counter("hermes_remote_calls_total", "proto", "v2").Inc()
			go s.serveCallV2(ss, f, cctx)
		case OpCancel:
			s.obsv().Counter("hermes_remote_cancels_total").Inc()
			ss.cancel(f.ID)
		case OpHeartbeat:
			s.obsv().Counter("hermes_remote_heartbeats_total").Inc()
			ss.send("heartbeat", Frame{Op: OpHeartbeat, ID: f.ID})
		case OpFunctions:
			go ss.send("functions", Frame{Op: OpFunctions, ID: f.ID, Functions: s.functionListing(), Done: true})
		case OpDebug:
			go s.serveDebug(ss, f.ID)
		default:
			ss.send("error", Frame{Op: OpError, ID: f.ID, Err: fmt.Sprintf("unknown op %q", f.Op)})
		}
	}
}

// serveCallV2 runs one multiplexed call. The first answer is flushed in
// its own frame immediately (first-answer-before-last-answer); later
// answers travel in ChunkSize frames. A resume skips the Offset answers
// the client already delivered. Cancellation — an explicit cancel frame or
// the whole connection dropping — is checked between answers, aborting the
// domain stream promptly even for trickling sources.
func (s *Server) serveCallV2(ss *serverSession, f Frame, cctx context.Context) {
	defer ss.finish(f.ID)
	args, err := decodeValues(f.Args)
	if err != nil {
		ss.send("error", Frame{Op: OpError, ID: f.ID, Err: err.Error()})
		return
	}
	ctx := domain.NewCtx(vclock.NewWall())
	ctx.Context = cctx
	// Federated tracing: when the peer negotiated CapTrace and sent trace
	// context, serve under a standalone span (outside this node's own query
	// ring) that travels back in a trace frame. Past the depth limit the
	// call is served normally, just without a subtree — the cycle guard for
	// mutually mounted nodes.
	var span *obs.Span
	if ss.peerTrace && f.TraceID != "" && s.TraceMaxDepth > 0 {
		if f.Depth > s.TraceMaxDepth {
			s.obsv().Counter("hermes_trace_dropped_depth_total").Inc()
		} else {
			span = obs.NewSpan(fmt.Sprintf("serve %s:%s", f.Domain, f.Function), ctx.Clock.Now())
			span.SetTag("node", s.NodeName)
			ctx.Span = span
			ctx.TraceID = f.TraceID
			ctx.TraceDepth = f.Depth
		}
	}
	serveStart := ctx.Clock.Now()
	stream, err := s.reg.Call(ctx, domain.Call{Domain: f.Domain, Function: f.Function, Args: args})
	if err != nil {
		ss.send("error", Frame{Op: OpError, ID: f.ID, Err: err.Error(), Unavailable: errors.Is(err, domain.ErrUnavailable)})
		return
	}
	defer stream.Close()
	skip := f.Offset
	sentFirst := false
	produced := 0
	var tFirst time.Duration
	chunk := make([]wireValue, 0, s.ChunkSize)
	flush := func(done bool) bool {
		ok := ss.send("answers", Frame{Op: OpAnswers, ID: f.ID, Values: chunk, Done: done})
		chunk = chunk[:0]
		return ok
	}
	for {
		if cctx.Err() != nil {
			return // cancelled: abort the domain stream, send nothing
		}
		v, ok, err := stream.Next()
		if err != nil {
			ss.send("error", Frame{Op: OpError, ID: f.ID, Err: err.Error(), Unavailable: errors.Is(err, domain.ErrUnavailable)})
			return
		}
		if !ok {
			// Complete stream: close the serve span with its measured
			// [Tf,Ta,Card] actual and ship the subtree before the done
			// frame, so the caller stitches before the call resolves.
			if span != nil {
				now := ctx.Clock.Now()
				span.SetActual(obs.Cost{TFirst: tFirst, TAll: now - serveStart, Card: float64(produced)})
				span.End(now)
				s.sendTrace(ss, f.ID, span)
			}
			flush(true)
			return
		}
		if produced == 0 {
			tFirst = ctx.Clock.Now() - serveStart
		}
		produced++
		if skip > 0 {
			skip--
			continue
		}
		wv, err := encodeValue(v)
		if err != nil {
			ss.send("error", Frame{Op: OpError, ID: f.ID, Err: err.Error()})
			return
		}
		chunk = append(chunk, wv)
		if !sentFirst || len(chunk) >= s.ChunkSize {
			sentFirst = true
			if !flush(false) {
				return
			}
		}
	}
}

// sendTrace encodes the serve span subtree within the configured byte
// budget (pruning depth-first, tagging truncation) and ships it as the
// call's trace frame.
func (s *Server) sendTrace(ss *serverSession, id uint64, span *obs.Span) {
	payload, truncated, ok := obs.TruncateSpanJSON(span.Snapshot(), s.TraceMaxSubtreeBytes)
	if !ok {
		return
	}
	if truncated {
		s.obsv().Counter("hermes_trace_truncated_total").Inc()
	}
	ss.send("trace", Frame{Op: OpTrace, ID: id, Trace: payload})
}

// serveDebug answers an OpDebug rollup request from the configured debug
// producer; nodes without one (or with a failing one) reply with an error
// frame, which the requesting peer reports as a degraded entry.
func (s *Server) serveDebug(ss *serverSession, id uint64) {
	fn := s.debugFn()
	if fn == nil {
		ss.send("debug", Frame{Op: OpDebug, ID: id, Err: "debug rollup not configured on this node", Done: true})
		return
	}
	payload, err := fn()
	if err != nil {
		ss.send("debug", Frame{Op: OpDebug, ID: id, Err: err.Error(), Done: true})
		return
	}
	ss.send("debug", Frame{Op: OpDebug, ID: id, Debug: payload, Done: true})
}
