// Package remote implements genuine distribution for the mediator: a TCP
// server (cmd/hermesd) that hosts source domains, and a client that makes a
// remote domain look like any local domain.Domain. The wire protocol is
// newline-delimited JSON with one connection per call (answers stream back
// in chunks); closing the client stream aborts the server-side call, which
// is how the engine's pruning and interactive stops propagate across the
// network.
//
// The simulated-network experiments do not use this package — they wrap
// local domains with internal/netsim so that WAN latencies are virtual and
// deterministic. This package exists to run the system for real across
// machines, under wall-clock time.
package remote

import (
	"hermes/internal/term"
)

// wireValue is the JSON encoding of a term.Value, shared with the
// persistence formats.
type wireValue = term.JSONValue

func encodeValue(v term.Value) (wireValue, error)       { return term.EncodeJSON(v) }
func decodeValue(w wireValue) (term.Value, error)       { return term.DecodeJSON(w) }
func encodeValues(vs []term.Value) ([]wireValue, error) { return term.EncodeJSONs(vs) }
func decodeValues(ws []wireValue) ([]term.Value, error) { return term.DecodeJSONs(ws) }

// request opens every connection: one call, or a functions listing.
type request struct {
	Op       string      `json:"op"` // "call" or "functions"
	Domain   string      `json:"domain,omitempty"`
	Function string      `json:"function,omitempty"`
	Args     []wireValue `json:"args,omitempty"`
}

// response frames stream back from the server. For a call, zero or more
// frames carry Values with Done=false, then a final frame has Done=true
// (possibly with trailing values). Err aborts the stream.
type response struct {
	Values      []wireValue         `json:"values,omitempty"`
	Done        bool                `json:"done,omitempty"`
	Err         string              `json:"err,omitempty"`
	Unavailable bool                `json:"unavailable,omitempty"`
	Functions   map[string][]fnSpec `json:"functions,omitempty"`
}

type fnSpec struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
	Doc   string `json:"doc,omitempty"`
}
