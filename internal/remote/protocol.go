// Package remote implements genuine distribution for the mediator: a TCP
// server (cmd/hermesd) that hosts source domains, and a client that makes a
// remote domain look like any local domain.Domain.
//
// Two wire protocols share every listener, selected by version negotiation
// on the first line a client sends:
//
//   - v1 (legacy) is one-shot newline-delimited JSON: one TCP connection
//     per call, a single request object, then response frames streaming
//     back. Closing the client connection aborts the server-side call.
//   - v2 (streaming) multiplexes many calls over one persistent
//     connection. Every message is a single JSON object on its own line
//     (a Frame) carrying an op and a per-call ID: `hello` negotiates the
//     version, `call` starts a call, `answers` frames stream back with
//     first-answer-before-last-answer semantics, `cancel` aborts one call
//     without dropping the connection, `resume` re-issues a call with an
//     answers-delivered offset after a transport failure, and `heartbeat`
//     keeps idle connections verifiably alive in both directions.
//
// A v2 client opens with `{"op":"hello","versions":[2],...}`. A v2 server
// answers `{"op":"hello","version":2}` and enters the multiplexed session
// loop; a v1 server instead answers with an unknown-op error, which the
// client takes as "speak v1" and falls back to one connection per call. A
// first line whose op is `call` or `functions` is a v1 client and is served
// by the legacy path, so old clients keep working against new servers.
//
// The simulated-network experiments do not use this package — they wrap
// local domains with internal/netsim so that WAN latencies are virtual and
// deterministic. This package exists to run the system for real across
// machines, under wall-clock time. The socket-level fault/interop harness
// lives in internal/remote/interop.
package remote

import (
	"encoding/json"

	"hermes/internal/term"
)

// ProtocolVersion is the streaming protocol version this package speaks.
const ProtocolVersion = 2

// v2 frame ops. OpHello doubles as the version-negotiation request and
// reply; OpAnswers carries answer chunks; OpError aborts one call.
const (
	OpHello     = "hello"
	OpCall      = "call"
	OpAnswers   = "answers"
	OpError     = "error"
	OpCancel    = "cancel"
	OpResume    = "resume"
	OpHeartbeat = "heartbeat"
	OpFunctions = "functions"
	// OpTrace is the server's final per-call trace frame: the serialized
	// span subtree it built while serving the call, sent just before the
	// done answers frame when both sides negotiated CapTrace.
	OpTrace = "trace"
	// OpDebug requests (client) and carries (server) a node's debug
	// rollup payload for /debug/cluster.
	OpDebug = "debug"
)

// Capabilities negotiated on hello frames: the client lists what it
// understands, the server replies with what it will use. A peer that
// advertises nothing is a plain-v2 speaker and is served without the
// optional frames, so capability growth never breaks interop.
const (
	// CapTrace: the peer understands federated trace context on call
	// frames and OpTrace subtree frames.
	CapTrace = "trace"
	// CapDebug: the peer answers OpDebug rollup requests.
	CapDebug = "debug"
)

// capSupported reports whether a hello's capability list names cap.
func capSupported(caps []string, cap string) bool {
	for _, c := range caps {
		if c == cap {
			return true
		}
	}
	return false
}

// wireValue is the JSON encoding of a term.Value, shared with the
// persistence formats.
type wireValue = term.JSONValue

func encodeValue(v term.Value) (wireValue, error)       { return term.EncodeJSON(v) }
func decodeValue(w wireValue) (term.Value, error)       { return term.DecodeJSON(w) }
func encodeValues(vs []term.Value) ([]wireValue, error) { return term.EncodeJSONs(vs) }
func decodeValues(ws []wireValue) ([]term.Value, error) { return term.DecodeJSONs(ws) }

// Frame is one v2 wire message: a single JSON object on its own line. The
// op selects which fields are meaningful; unknown fields are ignored on
// decode, so the vocabulary can grow compatibly. It is exported for the
// interop harness (internal/remote/interop), whose driver/responder
// simulators speak raw frames over real sockets.
type Frame struct {
	// Op is the frame type (OpHello, OpCall, ...).
	Op string `json:"op"`
	// ID is the client-assigned call identifier multiplexing frames of
	// concurrent calls over one connection. 0 on connection-scoped frames
	// (hello, heartbeat).
	ID uint64 `json:"id,omitempty"`

	// Versions (client hello) lists the protocol versions the client
	// speaks; Version (server hello) is the one the server picked.
	Versions []int `json:"versions,omitempty"`
	Version  int   `json:"version,omitempty"`
	// HeartbeatMS (client hello) announces the client's heartbeat period,
	// letting the server arm an idle deadline that distinguishes a
	// silently dead peer from a quiet one. 0 means no heartbeats.
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`
	// Caps (both hellos) lists optional protocol capabilities (CapTrace,
	// CapDebug). Absent means plain v2; unknown names are ignored.
	Caps []string `json:"caps,omitempty"`

	// Call fields (OpCall, OpResume). Offset on a resume is how many
	// answers the client already delivered: the server re-executes the
	// call and skips that prefix (answer streams are deterministic per
	// source, the same property PR 1's mid-stream resume relies on).
	Domain   string      `json:"domain,omitempty"`
	Function string      `json:"function,omitempty"`
	Args     []wireValue `json:"args,omitempty"`
	Offset   int         `json:"offset,omitempty"`
	// Trace context (OpCall, OpResume, when CapTrace was negotiated).
	// TraceID names the federated trace this call belongs to; Depth counts
	// mount hops from the origin, so a server can refuse to trace past its
	// depth limit (the cycle guard for mutually mounted nodes).
	TraceID string `json:"trace_id,omitempty"`
	Depth   int    `json:"depth,omitempty"`

	// Answer fields (OpAnswers). Done marks the last frame of a call; a
	// Done frame may itself carry trailing values.
	Values []wireValue `json:"values,omitempty"`
	Done   bool        `json:"done,omitempty"`

	// Error fields (OpError, and hello rejections). Unavailable marks
	// retryable transport/source outages (domain.ErrUnavailable).
	Err         string `json:"err,omitempty"`
	Unavailable bool   `json:"unavailable,omitempty"`

	// Functions is the listing reply (OpFunctions).
	Functions map[string][]FnSpec `json:"functions,omitempty"`

	// Trace (OpTrace) is the obs.SpanData JSON of the span subtree the
	// server built serving this call, possibly truncated to the server's
	// subtree byte budget (root tagged truncated=1). Debug (OpDebug reply)
	// is the node's debug rollup JSON.
	Trace json.RawMessage `json:"trace,omitempty"`
	Debug json.RawMessage `json:"debug,omitempty"`
}

// versionSupported reports whether the server can speak any of the
// versions a client hello offered.
func versionSupported(versions []int) bool {
	for _, v := range versions {
		if v == ProtocolVersion {
			return true
		}
	}
	return false
}

// request opens every v1 connection: one call, or a functions listing.
type request struct {
	Op       string      `json:"op"` // "call" or "functions"
	Domain   string      `json:"domain,omitempty"`
	Function string      `json:"function,omitempty"`
	Args     []wireValue `json:"args,omitempty"`
}

// response frames stream back from the v1 server. For a call, zero or more
// frames carry Values with Done=false, then a final frame has Done=true
// (possibly with trailing values). Err aborts the stream.
type response struct {
	Values      []wireValue         `json:"values,omitempty"`
	Done        bool                `json:"done,omitempty"`
	Err         string              `json:"err,omitempty"`
	Unavailable bool                `json:"unavailable,omitempty"`
	Functions   map[string][]FnSpec `json:"functions,omitempty"`
}

// FnSpec describes one function in a wire function listing (shared by the
// v1 response and the v2 OpFunctions frame).
type FnSpec struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
	Doc   string `json:"doc,omitempty"`
}
