package remote

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// Client exposes one domain hosted by a remote server as a local
// domain.Domain. Each call dials its own connection; closing the answer
// stream closes the connection, which the server notices and aborts the
// call (pruning across the network).
type Client struct {
	addr   string
	name   string
	dialTO time.Duration

	mu    sync.Mutex
	specs []domain.FuncSpec
	ob    *obs.Observer
}

// NewClient creates a client for the domain `name` served at addr.
func NewClient(addr, name string) *Client {
	return &Client{addr: addr, name: name, dialTO: 5 * time.Second}
}

// SetDialTimeout overrides the default 5 s dial timeout.
func (c *Client) SetDialTimeout(d time.Duration) { c.dialTO = d }

// SetObserver installs the observability sink: per-domain dial counters
// (hermes_remote_dials_total) and the remote=<addr> span tag on calls.
func (c *Client) SetObserver(o *obs.Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ob = o
}

func (c *Client) obsv() *obs.Observer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ob
}

// Name implements domain.Domain.
func (c *Client) Name() string { return c.name }

// Functions implements domain.Domain. The interface cannot report errors;
// callers that must distinguish "no functions" from "server unreachable"
// (the registry's validation does) use FunctionsErr instead.
func (c *Client) Functions() []domain.FuncSpec {
	specs, _ := c.FunctionsErr()
	return specs
}

// FunctionsErr implements domain.FunctionLister, fetching (and caching)
// the remote listing. An unreachable server surfaces domain.ErrUnavailable
// — a retryable condition — rather than masquerading as a function-less
// domain; nothing is cached on failure, so a later probe retries.
func (c *Client) FunctionsErr() ([]domain.FuncSpec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.specs != nil {
		return c.specs, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTO)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(request{Op: "functions"}); err != nil {
		return nil, fmt.Errorf("%w: send functions request to %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("%w: read functions listing from %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	specs := make([]domain.FuncSpec, 0, len(resp.Functions[c.name]))
	for _, spec := range resp.Functions[c.name] {
		specs = append(specs, domain.FuncSpec{Name: spec.Name, Arity: spec.Arity, Doc: spec.Doc})
	}
	c.specs = specs
	return c.specs, nil
}

// Call implements domain.Domain. The dial honours the ctx's cancellation
// context, so an aborted query does not leave a dial in flight.
func (c *Client) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wargs, err := encodeValues(args)
	if err != nil {
		return nil, err
	}
	ctx.Span.SetTag("remote", c.addr)
	dialer := net.Dialer{Timeout: c.dialTO}
	var conn net.Conn
	if ctx.Context != nil {
		conn, err = dialer.DialContext(ctx.Context, "tcp", c.addr)
	} else {
		conn, err = dialer.Dial("tcp", c.addr)
	}
	if err != nil {
		c.obsv().Counter("hermes_remote_dials_total", "domain", c.name, "outcome", "error").Inc()
		return nil, fmt.Errorf("%w: dial %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	c.obsv().Counter("hermes_remote_dials_total", "domain", c.name, "outcome", "ok").Inc()
	if err := json.NewEncoder(conn).Encode(request{
		Op: "call", Domain: c.name, Function: fn, Args: wargs,
	}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: send request: %w", err)
	}
	return &remoteStream{conn: conn, dec: json.NewDecoder(conn)}, nil
}

// DiscoverDomains asks a server which domains it hosts.
func DiscoverDomains(addr string, timeout time.Duration) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", domain.ErrUnavailable, addr, err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(request{Op: "functions"}); err != nil {
		return nil, err
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(resp.Functions))
	for name := range resp.Functions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// remoteStream pulls answer chunks off the connection.
type remoteStream struct {
	conn    net.Conn
	dec     *json.Decoder
	pending []term.Value
	done    bool
}

func (s *remoteStream) Next() (term.Value, bool, error) {
	for {
		if len(s.pending) > 0 {
			v := s.pending[0]
			s.pending = s.pending[1:]
			return v, true, nil
		}
		if s.done {
			return nil, false, nil
		}
		var resp response
		if err := s.dec.Decode(&resp); err != nil {
			s.done = true
			return nil, false, fmt.Errorf("remote: read answers: %w", err)
		}
		if resp.Err != "" {
			s.done = true
			if resp.Unavailable {
				return nil, false, fmt.Errorf("%w: %s", domain.ErrUnavailable, resp.Err)
			}
			return nil, false, fmt.Errorf("remote: %s", resp.Err)
		}
		vals, err := decodeValues(resp.Values)
		if err != nil {
			s.done = true
			return nil, false, err
		}
		s.pending = vals
		if resp.Done {
			s.done = true
		}
	}
}

func (s *remoteStream) Close() error {
	s.done = true
	s.pending = nil
	return s.conn.Close()
}
