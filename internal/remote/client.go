package remote

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// errSpeakV1 is the internal signal that the server answered the v2 hello
// with an unknown-op error: it is a v1 server, so calls fall back to one
// connection per call.
var errSpeakV1 = errors.New("remote: server speaks protocol v1")

// Client exposes one domain hosted by a remote server as a local
// domain.Domain. Against a v2 server it multiplexes every call over one
// persistent heartbeat-kept connection and can resume a broken answer
// stream on a fresh connection; against a v1 server (detected by version
// negotiation on first contact) each call dials its own connection.
// Closing an answer stream cancels the server-side call either way
// (pruning across the network).
type Client struct {
	addr       string
	name       string
	dialTO     time.Duration
	frameTO    time.Duration
	hbEvery    time.Duration
	maxResumes int

	mu         sync.Mutex
	specs      []domain.FuncSpec
	ob         *obs.Observer
	sess       *session
	forceV1    bool
	nextID     uint64
	actuals    func(domain.Call, obs.Cost)
	maxForeign int
}

// NewClient creates a client for the domain `name` served at addr.
func NewClient(addr, name string) *Client {
	return &Client{
		addr:       addr,
		name:       name,
		dialTO:     5 * time.Second,
		frameTO:    30 * time.Second,
		hbEvery:    10 * time.Second,
		maxResumes: 2,
		maxForeign: DefaultTraceMaxSubtreeBytes,
	}
}

// SetDialTimeout overrides the default 5 s dial timeout.
func (c *Client) SetDialTimeout(d time.Duration) { c.dialTO = d }

// SetFrameTimeout overrides the default 30 s per-frame read deadline: how
// long a stream read may go without any frame arriving before the server
// counts as wedged and the call surfaces domain.ErrUnavailable. On a v2
// session heartbeat echoes refresh the deadline, so it must exceed the
// heartbeat interval. 0 disables the deadline.
func (c *Client) SetFrameTimeout(d time.Duration) { c.frameTO = d }

// SetHeartbeatInterval overrides the default 10 s v2 heartbeat period.
// 0 disables heartbeats (and the server's idle deadline for this client).
func (c *Client) SetHeartbeatInterval(d time.Duration) { c.hbEvery = d }

// SetMaxResumes overrides how many times a broken v2 answer stream is
// resumed on a fresh connection (default 2) before the call surfaces
// domain.ErrUnavailable to the resilience layer.
func (c *Client) SetMaxResumes(n int) { c.maxResumes = n }

// ForceV1 pins the client to the legacy one-connection-per-call protocol,
// skipping version negotiation. Used by tests and differential harnesses.
func (c *Client) ForceV1() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.forceV1 = true
}

// SetObserver installs the observability sink: per-domain dial counters
// (hermes_remote_dials_total), resume counters, and the remote=<addr> span
// tag on calls.
func (c *Client) SetObserver(o *obs.Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ob = o
}

func (c *Client) obsv() *obs.Observer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ob
}

// SetActualsHook installs fn, called with the remote-reported [Tf,Ta,Card]
// actual of every complete stitched call subtree. core.System wires it to
// the caller-side calibration so adaptive planning prices mounted domains
// from observed cross-hop cost, not just local wire timings.
func (c *Client) SetActualsHook(fn func(domain.Call, obs.Cost)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.actuals = fn
}

func (c *Client) actualsHook() func(domain.Call, obs.Cost) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.actuals
}

// SetMaxForeignSubtreeBytes overrides how large a peer's trace-frame span
// subtree may be before it is dropped as oversized (default 1 MiB; <= 0
// means unlimited). A guard against misbehaving peers, independent of the
// server-side truncation budget.
func (c *Client) SetMaxForeignSubtreeBytes(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxForeign = n
}

func (c *Client) maxForeignBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxForeign
}

// Close tears down the persistent v2 session, if any. The client remains
// usable: the next call re-establishes a session.
func (c *Client) Close() error {
	c.mu.Lock()
	s := c.sess
	c.mu.Unlock()
	if s != nil {
		s.fail(fmt.Errorf("%w: client closed", domain.ErrUnavailable))
	}
	return nil
}

// Name implements domain.Domain.
func (c *Client) Name() string { return c.name }

// Addr returns the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// Functions implements domain.Domain. The interface cannot report errors;
// callers that must distinguish "no functions" from "server unreachable"
// (the registry's validation does) use FunctionsErr instead.
func (c *Client) Functions() []domain.FuncSpec {
	specs, _ := c.FunctionsErr()
	return specs
}

// FunctionsErr implements domain.FunctionLister, fetching (and caching)
// the remote listing. An unreachable server surfaces domain.ErrUnavailable
// — a retryable condition — rather than masquerading as a function-less
// domain; nothing is cached on failure, so a later probe retries.
func (c *Client) FunctionsErr() ([]domain.FuncSpec, error) {
	c.mu.Lock()
	if c.specs != nil {
		specs := c.specs
		c.mu.Unlock()
		return specs, nil
	}
	c.mu.Unlock()
	specs, err := c.fetchFunctions()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.specs = specs
	c.mu.Unlock()
	return specs, nil
}

func (c *Client) fetchFunctions() ([]domain.FuncSpec, error) {
	sess, err := c.getSession()
	if err == nil {
		return c.functionsV2(sess)
	}
	if !errors.Is(err, errSpeakV1) {
		return nil, err
	}
	return c.functionsV1()
}

func (c *Client) functionsV2(sess *session) ([]domain.FuncSpec, error) {
	id := c.newID()
	entry := sess.registerCall(id)
	defer sess.forget(id)
	if !sess.send("functions", Frame{Op: OpFunctions, ID: id}) {
		return nil, sess.failure()
	}
	var timeout <-chan time.Time
	if c.frameTO > 0 {
		t := time.NewTimer(c.frameTO)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case f := <-entry.ch:
		if f.Err != "" {
			return nil, fmt.Errorf("remote: %s", f.Err)
		}
		return toFuncSpecs(f.Functions[c.name]), nil
	case <-sess.done:
		return nil, sess.failure()
	case <-timeout:
		sess.fail(fmt.Errorf("%w: functions listing from %s timed out", domain.ErrUnavailable, c.addr))
		return nil, sess.failure()
	}
}

func (c *Client) functionsV1() ([]domain.FuncSpec, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTO)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	defer conn.Close()
	if c.frameTO > 0 {
		conn.SetDeadline(time.Now().Add(c.frameTO))
	}
	if err := json.NewEncoder(conn).Encode(request{Op: "functions"}); err != nil {
		return nil, fmt.Errorf("%w: send functions request to %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("%w: read functions listing from %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	return toFuncSpecs(resp.Functions[c.name]), nil
}

func toFuncSpecs(specs []FnSpec) []domain.FuncSpec {
	out := make([]domain.FuncSpec, 0, len(specs))
	for _, spec := range specs {
		out = append(out, domain.FuncSpec{Name: spec.Name, Arity: spec.Arity, Doc: spec.Doc})
	}
	return out
}

// Call implements domain.Domain, preferring a multiplexed v2 call and
// falling back to the legacy per-call connection when negotiation reported
// a v1 server.
func (c *Client) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wargs, err := encodeValues(args)
	if err != nil {
		return nil, err
	}
	ctx.Span.SetTag("remote", c.addr)
	st, err := c.v2Call(ctx, fn, args, wargs)
	if err == nil {
		return st, nil
	}
	if !errors.Is(err, errSpeakV1) {
		return nil, err
	}
	ctx.Span.SetTag("remote.proto", "v1")
	return c.v1Call(ctx, fn, wargs)
}

func (c *Client) v2Call(ctx *domain.Ctx, fn string, args []term.Value, wargs []wireValue) (domain.Stream, error) {
	sess, err := c.getSession()
	if err != nil {
		return nil, err
	}
	id := c.newID()
	f := Frame{Op: OpCall, ID: id, Domain: c.name, Function: fn, Args: wargs}
	st := &muxStream{c: c, sess: sess, id: id, fn: fn, args: wargs}
	if ctx != nil {
		st.cctx = ctx.Context
		st.span = ctx.Span
		if ctx.Clock != nil {
			st.clock = ctx.Clock
			st.issuedAt = ctx.Clock.Now()
		}
		ctx.Span.SetTag("remote.proto", "v2")
		// Federated tracing: when the server negotiated CapTrace and this
		// call is traced locally, propagate the trace context — minting a
		// trace ID at the origin hop — so the server's serve subtree comes
		// back in a trace frame and stitches under this call span.
		if sess.traceOK && ctx.Span != nil {
			st.traceID = ctx.TraceID
			if st.traceID == "" {
				st.traceID = newTraceID()
			}
			st.depth = ctx.TraceDepth + 1
			f.TraceID = st.traceID
			f.Depth = st.depth
			st.call = &domain.Call{Domain: c.name, Function: fn, Args: args}
			c.obsv().Counter("hermes_trace_propagated_total").Inc()
		}
	}
	entry := sess.registerCall(id)
	if !sess.send("call", f) {
		sess.forget(id)
		return nil, sess.failure()
	}
	st.entry = entry
	return st, nil
}

// newTraceID mints a federated trace identifier at the origin hop.
func newTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// newID allocates a call ID. IDs are client-scoped (not session-scoped) so
// a resumed call on a fresh session can never collide with a stale one.
func (c *Client) newID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// getSession returns the live v2 session, dialing and negotiating one if
// needed. errSpeakV1 reports a v1 server (remembered for the client's
// lifetime); other errors are retryable transport failures.
func (c *Client) getSession() (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.forceV1 {
		return nil, errSpeakV1
	}
	if c.sess != nil && c.sess.alive() {
		return c.sess, nil
	}
	c.sess = nil
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTO)
	if err != nil {
		c.ob.Counter("hermes_remote_dials_total", "domain", c.name, "outcome", "error").Inc()
		return nil, fmt.Errorf("%w: dial %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	c.ob.Counter("hermes_remote_dials_total", "domain", c.name, "outcome", "ok").Inc()
	// Bound the whole hello exchange: a server that accepts but never
	// answers must not wedge call setup.
	helloTO := c.frameTO
	if helloTO <= 0 {
		helloTO = c.dialTO
	}
	conn.SetDeadline(time.Now().Add(helloTO))
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	hello := Frame{Op: OpHello, Versions: []int{ProtocolVersion}, Caps: []string{CapTrace, CapDebug}}
	if c.hbEvery > 0 {
		hello.HeartbeatMS = int(c.hbEvery / time.Millisecond)
	}
	if err := enc.Encode(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: send hello to %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	var reply Frame
	if err := dec.Decode(&reply); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: read hello reply from %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	conn.SetDeadline(time.Time{})
	switch {
	case reply.Op == OpHello && reply.Err != "":
		// The server understood the hello and rejected every version we
		// offered: a hard protocol mismatch, not a retryable outage.
		conn.Close()
		return nil, fmt.Errorf("remote: %s: %s", c.addr, reply.Err)
	case reply.Op == OpHello && reply.Version != ProtocolVersion:
		// The server picked a version we never offered: a protocol bug or
		// an incompatible future server. Hard error, not a v1 fallback.
		conn.Close()
		return nil, fmt.Errorf("remote: %s chose unsupported protocol version %d", c.addr, reply.Version)
	case reply.Op == OpHello:
		s := &session{
			c:       c,
			conn:    conn,
			enc:     enc,
			dec:     dec,
			traceOK: capSupported(reply.Caps, CapTrace),
			debugOK: capSupported(reply.Caps, CapDebug),
			done:    make(chan struct{}),
			calls:   map[uint64]*callEntry{},
		}
		c.sess = s
		go s.readLoop()
		if c.hbEvery > 0 {
			go s.heartbeatLoop(c.hbEvery)
		}
		return s, nil
	default:
		// A v1 server answers the hello with an unknown-op error frame
		// (no "op" field): remember to speak v1 from now on.
		conn.Close()
		c.forceV1 = true
		return nil, errSpeakV1
	}
}

// dropSession clears the cached session if it is still s (a newer session
// must not be evicted by a stale failure).
func (c *Client) dropSession(s *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess == s {
		c.sess = nil
	}
}

// session is one live v2 connection: a reader goroutine routes frames to
// per-call channels, a heartbeat goroutine keeps the connection verifiably
// alive, and any failure cancels everything at once.
type session struct {
	c    *Client
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	// Capabilities the server's hello granted: trace subtree frames and
	// debug rollup requests. Immutable after negotiation.
	traceOK bool
	debugOK bool

	wmu sync.Mutex

	done     chan struct{}
	failOnce sync.Once
	errMu    sync.Mutex
	err      error

	mu    sync.Mutex
	calls map[uint64]*callEntry
}

// callEntry is the routing slot of one in-flight call.
type callEntry struct {
	ch   chan Frame    // frames for this call, routed by the reader
	gone chan struct{} // closed when the call deregisters
}

func (s *session) alive() bool {
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// fail terminates the session exactly once: records the error, wakes every
// waiter, closes the connection, and uncaches the session.
func (s *session) fail(err error) {
	s.failOnce.Do(func() {
		s.errMu.Lock()
		s.err = err
		s.errMu.Unlock()
		close(s.done)
		s.conn.Close()
		s.c.dropSession(s)
	})
}

func (s *session) failure() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil {
		return fmt.Errorf("%w: session to %s failed", domain.ErrUnavailable, s.c.addr)
	}
	return s.err
}

// send writes one frame. Concurrent calls serialize on the write mutex; a
// write failure kills the whole session (the connection is broken).
func (s *session) send(what string, f Frame) bool {
	s.wmu.Lock()
	err := s.enc.Encode(f)
	s.wmu.Unlock()
	if err != nil {
		s.fail(fmt.Errorf("%w: send %s to %s: %v", domain.ErrUnavailable, what, s.c.addr, err))
		return false
	}
	return true
}

func (s *session) registerCall(id uint64) *callEntry {
	e := &callEntry{ch: make(chan Frame, 32), gone: make(chan struct{})}
	s.mu.Lock()
	s.calls[id] = e
	s.mu.Unlock()
	return e
}

func (s *session) forget(id uint64) {
	s.mu.Lock()
	e := s.calls[id]
	delete(s.calls, id)
	s.mu.Unlock()
	if e != nil {
		close(e.gone)
	}
}

// readLoop is the session's reader goroutine: it routes every incoming
// frame to its call's channel. The per-read deadline is the wedged-server
// detector — heartbeat echoes arrive at least every hbEvery, so a
// connection silent for frameTO is dead, and every in-flight call learns
// it immediately via s.done rather than blocking forever.
func (s *session) readLoop() {
	for {
		if s.c.frameTO > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.c.frameTO))
		}
		var f Frame
		if err := s.dec.Decode(&f); err != nil {
			s.fail(fmt.Errorf("%w: session read from %s: %v", domain.ErrUnavailable, s.c.addr, err))
			return
		}
		if f.Op == OpHeartbeat && f.ID == 0 {
			continue // echo of our keepalive; the read refreshed the deadline
		}
		s.mu.Lock()
		e := s.calls[f.ID]
		s.mu.Unlock()
		if e == nil {
			continue // call finished while the frame was in transit
		}
		select {
		case e.ch <- f:
		case <-e.gone:
		case <-s.done:
			return
		}
	}
}

func (s *session) heartbeatLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !s.send("heartbeat", Frame{Op: OpHeartbeat}) {
				return
			}
		case <-s.done:
			return
		}
	}
}

// muxStream is one v2 call's answer stream. On session failure it resumes
// the call on a fresh session with an answers-delivered offset (the same
// deterministic-stream property PR 1's resilience resume relies on); when
// resumes are exhausted the error surfaces as domain.ErrUnavailable so the
// resilience layer's retries and breakers engage.
type muxStream struct {
	c     *Client
	sess  *session
	id    uint64
	entry *callEntry
	cctx  context.Context
	fn    string
	args  []wireValue

	// Federated-tracing state: the local call span foreign subtrees stitch
	// under, the propagated trace context, the decoded call (for the
	// actuals hook), and the local clock reading when the call was issued
	// (the rebase point for the peer's subtree).
	span     *obs.Span
	clock    vclock.Clock
	issuedAt time.Duration
	traceID  string
	depth    int
	call     *domain.Call

	pending   []term.Value
	delivered int
	resumes   int
	retries   int
	srvDone   bool
	finished  bool
}

func (s *muxStream) Next() (term.Value, bool, error) {
	for {
		if len(s.pending) > 0 {
			v := s.pending[0]
			s.pending = s.pending[1:]
			s.delivered++
			return v, true, nil
		}
		if s.finished {
			return nil, false, nil
		}
		if s.srvDone {
			s.finish(false)
			return nil, false, nil
		}
		var ctxDone <-chan struct{}
		if s.cctx != nil {
			ctxDone = s.cctx.Done()
		}
		select {
		case f := <-s.entry.ch:
			if err := s.handle(f); err != nil {
				return nil, false, err
			}
		case <-s.sess.done:
			// Frames routed before the failure may still sit buffered;
			// deliver them before deciding the stream is broken.
			select {
			case f := <-s.entry.ch:
				if err := s.handle(f); err != nil {
					return nil, false, err
				}
				continue
			default:
			}
			if err := s.resume(); err != nil {
				s.finish(false)
				return nil, false, err
			}
		case <-ctxDone:
			s.finish(true)
			return nil, false, s.cctx.Err()
		}
	}
}

// handle folds one routed frame into the stream state.
func (s *muxStream) handle(f Frame) error {
	switch f.Op {
	case OpTrace:
		s.acceptTrace(f.Trace)
		return nil
	case OpAnswers:
		vals, err := decodeValues(f.Values)
		if err != nil {
			s.finish(true)
			return err
		}
		s.pending = vals
		if f.Done {
			s.srvDone = true
		}
		return nil
	case OpError:
		s.finish(false) // the server already ended this call
		if f.Unavailable {
			return fmt.Errorf("%w: %s", domain.ErrUnavailable, f.Err)
		}
		return fmt.Errorf("remote: %s", f.Err)
	default:
		s.finish(true)
		return fmt.Errorf("remote: unexpected frame op %q on call %d", f.Op, f.ID)
	}
}

// acceptTrace stitches the server's serve subtree under the local call
// span: validate, rebase onto this call's clock at issue time, split wire
// time from remote compute, and feed the remote actual to the calibration
// hook. Every failure mode (oversize, malformed) drops the subtree and
// counts it — the call itself always succeeds with a local-only trace.
func (s *muxStream) acceptTrace(raw []byte) {
	if s.span == nil || s.traceID == "" || len(raw) == 0 {
		return
	}
	ob := s.c.obsv()
	ob.Counter("hermes_trace_foreign_subtree_bytes_total").Add(int64(len(raw)))
	if max := s.c.maxForeignBytes(); max > 0 && len(raw) > max {
		ob.Counter("hermes_trace_malformed_total", "reason", "oversize").Inc()
		s.span.SetTag("remote.trace", "oversize")
		return
	}
	d, err := obs.DecodeSpanJSON(raw)
	if err != nil {
		ob.Counter("hermes_trace_malformed_total", "reason", "decode").Inc()
		s.span.SetTag("remote.trace", "malformed")
		return
	}
	stitched := d
	if s.clock != nil {
		elapsed := s.clock.Now() - s.issuedAt
		if wire := elapsed - d.Duration(); wire > 0 {
			s.span.SetTag("remote.wire_ms", fmt.Sprintf("%.1f", float64(wire)/float64(time.Millisecond)))
		} else {
			s.span.SetTag("remote.wire_ms", "0.0")
		}
		stitched = obs.RebaseSpan(d, s.issuedAt)
	}
	s.span.AttachForeign(stitched)
	ob.Counter("hermes_trace_stitched_total").Inc()
	if d.Actual != nil && s.call != nil {
		if hook := s.c.actualsHook(); hook != nil {
			hook(*s.call, *d.Actual)
		}
	}
}

// resume re-issues the call on a fresh session, telling the server to skip
// the prefix already delivered to the consumer plus what is still pending
// locally.
func (s *muxStream) resume() error {
	last := s.sess.failure()
	for s.resumes < s.c.maxResumes {
		s.resumes++
		s.c.obsv().Counter("hermes_remote_resumes_total", "side", "client").Inc()
		// A flaky mount must be diagnosable from EXPLAIN alone: record how
		// many times this stream resumed and how many attempts failed.
		s.span.SetTag("remote.resumes", fmt.Sprintf("%d", s.resumes))
		sess, err := s.c.getSession()
		if err != nil {
			if errors.Is(err, errSpeakV1) {
				return fmt.Errorf("%w: server at %s downgraded to v1 mid-call", domain.ErrUnavailable, s.c.addr)
			}
			last = err
			s.noteRetry()
			continue
		}
		id := s.c.newID()
		entry := sess.registerCall(id)
		offset := s.delivered + len(s.pending)
		f := Frame{Op: OpResume, ID: id, Domain: s.c.name, Function: s.fn, Args: s.args, Offset: offset}
		if sess.traceOK && s.traceID != "" {
			f.TraceID = s.traceID
			f.Depth = s.depth
		}
		if !sess.send("resume", f) {
			sess.forget(id)
			last = sess.failure()
			s.noteRetry()
			continue
		}
		s.sess, s.id, s.entry = sess, id, entry
		return nil
	}
	if errors.Is(last, domain.ErrUnavailable) {
		return last
	}
	return fmt.Errorf("%w: %v", domain.ErrUnavailable, last)
}

// noteRetry counts a failed resume attempt (dial or re-send) on the span.
func (s *muxStream) noteRetry() {
	s.retries++
	s.span.SetTag("remote.retries", fmt.Sprintf("%d", s.retries))
}

// finish deregisters the call; sendCancel additionally tells the server to
// stop a call that is still producing (pruning across the network).
func (s *muxStream) finish(sendCancel bool) {
	if s.finished {
		return
	}
	s.finished = true
	s.sess.forget(s.id)
	if sendCancel && !s.srvDone && s.sess.alive() {
		s.sess.send("cancel", Frame{Op: OpCancel, ID: s.id})
	}
}

func (s *muxStream) Close() error {
	s.finish(true)
	s.pending = nil
	return nil
}

// v1Call is the legacy path: one connection per call.
func (c *Client) v1Call(ctx *domain.Ctx, fn string, wargs []wireValue) (domain.Stream, error) {
	dialer := net.Dialer{Timeout: c.dialTO}
	var conn net.Conn
	var err error
	if ctx.Context != nil {
		conn, err = dialer.DialContext(ctx.Context, "tcp", c.addr)
	} else {
		conn, err = dialer.Dial("tcp", c.addr)
	}
	if err != nil {
		c.obsv().Counter("hermes_remote_dials_total", "domain", c.name, "outcome", "error").Inc()
		return nil, fmt.Errorf("%w: dial %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	c.obsv().Counter("hermes_remote_dials_total", "domain", c.name, "outcome", "ok").Inc()
	if err := json.NewEncoder(conn).Encode(request{
		Op: "call", Domain: c.name, Function: fn, Args: wargs,
	}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: send request to %s: %v", domain.ErrUnavailable, c.addr, err)
	}
	s := &remoteStream{
		conn:    conn,
		dec:     json.NewDecoder(conn),
		addr:    c.addr,
		frameTO: c.frameTO,
		cctx:    ctx.Context,
		stopped: make(chan struct{}),
	}
	if s.cctx != nil {
		go s.watchCtx()
	}
	return s, nil
}

// DebugSnapshot asks the peer for its debug rollup payload (the
// /debug/cluster contribution) over the v2 session. v1 peers, v2 peers
// that did not grant CapDebug, and peers without a configured rollup all
// return an error; the caller marks them degraded rather than failing the
// whole cluster view. timeout bounds the round trip (0 falls back to the
// frame timeout).
func (c *Client) DebugSnapshot(timeout time.Duration) ([]byte, error) {
	sess, err := c.getSession()
	if err != nil {
		if errors.Is(err, errSpeakV1) {
			return nil, fmt.Errorf("remote: %s speaks protocol v1 (no debug capability)", c.addr)
		}
		return nil, err
	}
	if !sess.debugOK {
		return nil, fmt.Errorf("remote: %s did not grant the debug capability", c.addr)
	}
	id := c.newID()
	entry := sess.registerCall(id)
	defer sess.forget(id)
	if !sess.send("debug", Frame{Op: OpDebug, ID: id}) {
		return nil, sess.failure()
	}
	if timeout <= 0 {
		timeout = c.frameTO
	}
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case f := <-entry.ch:
		if f.Err != "" {
			return nil, fmt.Errorf("remote: %s", f.Err)
		}
		return f.Debug, nil
	case <-sess.done:
		return nil, sess.failure()
	case <-tc:
		// Unlike a wedged session read, a slow debug reply should not kill
		// the shared session: calls may be healthy while the rollup fn is
		// slow. The pending entry is forgotten; a late reply is dropped.
		return nil, fmt.Errorf("%w: debug rollup from %s timed out", domain.ErrUnavailable, c.addr)
	}
}

// DiscoverDomains asks a server which domains it hosts. It speaks v1 (the
// one-shot functions listing), which every server version serves.
func DiscoverDomains(addr string, timeout time.Duration) ([]string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", domain.ErrUnavailable, addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := json.NewEncoder(conn).Encode(request{Op: "functions"}); err != nil {
		return nil, err
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(resp.Functions))
	for name := range resp.Functions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// remoteStream pulls answer chunks off a v1 per-call connection. A
// per-frame read deadline keeps a wedged server from blocking Next
// forever, and a watchdog goroutine aborts the read the moment the call's
// context is cancelled; transport failures surface domain.ErrUnavailable
// so the resilience layer retries or breaks.
type remoteStream struct {
	conn    net.Conn
	dec     *json.Decoder
	addr    string
	frameTO time.Duration
	cctx    context.Context

	stopped   chan struct{}
	closeOnce sync.Once

	pending []term.Value
	done    bool
}

// watchCtx unblocks an in-flight read when the call context ends. The
// past-deadline trick (rather than Close) keeps the connection valid for
// the error path to report on.
func (s *remoteStream) watchCtx() {
	select {
	case <-s.cctx.Done():
		s.conn.SetReadDeadline(time.Now())
	case <-s.stopped:
	}
}

func (s *remoteStream) Next() (term.Value, bool, error) {
	for {
		if len(s.pending) > 0 {
			v := s.pending[0]
			s.pending = s.pending[1:]
			return v, true, nil
		}
		if s.done {
			return nil, false, nil
		}
		if s.cctx != nil && s.cctx.Err() != nil {
			s.done = true
			return nil, false, s.cctx.Err()
		}
		if s.frameTO > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.frameTO))
		}
		var resp response
		if err := s.dec.Decode(&resp); err != nil {
			s.done = true
			if s.cctx != nil && s.cctx.Err() != nil {
				return nil, false, s.cctx.Err()
			}
			return nil, false, fmt.Errorf("%w: read answers from %s: %v", domain.ErrUnavailable, s.addr, err)
		}
		if resp.Err != "" {
			s.done = true
			if resp.Unavailable {
				return nil, false, fmt.Errorf("%w: %s", domain.ErrUnavailable, resp.Err)
			}
			return nil, false, fmt.Errorf("remote: %s", resp.Err)
		}
		vals, err := decodeValues(resp.Values)
		if err != nil {
			s.done = true
			return nil, false, err
		}
		s.pending = vals
		if resp.Done {
			s.done = true
		}
	}
}

func (s *remoteStream) Close() error {
	s.done = true
	s.pending = nil
	s.closeOnce.Do(func() { close(s.stopped) })
	return s.conn.Close()
}
