package interop

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
	"hermes/internal/remote"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// acceptHelloWithCaps answers the client hello at the current version,
// granting the trace and debug capabilities like a real current server.
func acceptHelloWithCaps(dec *json.Decoder, enc *json.Encoder) error {
	var hello remote.Frame
	if err := dec.Decode(&hello); err != nil {
		return err
	}
	if hello.Op != remote.OpHello {
		return fmt.Errorf("expected hello, got %q", hello.Op)
	}
	return enc.Encode(remote.Frame{
		Op: remote.OpHello, Version: remote.ProtocolVersion,
		Caps: []string{remote.CapTrace, remote.CapDebug},
	})
}

// tracedHarnessCtx builds a call context carrying a live span, the shape
// a traced query hands the remote client.
func tracedHarnessCtx() (*domain.Ctx, *obs.Span) {
	root := obs.NewTracer(1).StartQuery("?- q.", 0)
	call := root.Child("call src:gen()", 0)
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	ctx.Span = call
	return ctx, call
}

func sendAnswers(enc *json.Encoder, id uint64, n int, done bool) {
	var vals []term.JSONValue
	for i := 0; i < n; i++ {
		w, _ := term.EncodeJSON(term.Int(int64(i)))
		vals = append(vals, w)
	}
	enc.Encode(remote.Frame{Op: remote.OpAnswers, ID: id, Values: vals, Done: done})
}

// A v2 peer that never advertised the trace capability (an older build):
// the client must not send trace context, and the call succeeds with a
// local-only span — interop with plain-v2 peers is untouched.
func TestScenarioV2PeerWithoutTraceCap(t *testing.T) {
	NoLeakCheck(t)
	sawTraceCtx := make(chan bool, 1)
	script := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if AcceptHello(dec, enc, remote.ProtocolVersion) != nil { // no caps granted
			return
		}
		f, err := ReadCall(dec)
		if err != nil {
			return
		}
		sawTraceCtx <- f.TraceID != "" || f.Depth != 0
		sendAnswers(enc, f.ID, 3, true)
		Wedge(conn)
	}
	addr := NewResponder(t, script)
	c := NewHarnessClient(addr, "src")
	defer c.Close()
	ob := obs.NewObserver()
	c.SetObserver(ob)

	ctx, call := tracedHarnessCtx()
	s, err := c.Call(ctx, "gen", nil)
	if err != nil {
		t.Fatalf("call setup: %v", err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 3 {
		t.Fatalf("vals=%d err=%v, want 3 answers", len(vals), err)
	}
	if <-sawTraceCtx {
		t.Error("client sent trace context to a peer that never granted the trace cap")
	}
	call.End(0)
	snap := call.Snapshot()
	if len(snap.Children) != 0 {
		t.Errorf("local-only span grew children: %+v", snap.Children)
	}
	m := ob.Metrics.Snapshot()
	if m["hermes_trace_propagated_total"] != 0 || m["hermes_trace_stitched_total"] != 0 {
		t.Errorf("trace counters moved against a no-cap peer: %v / %v",
			m["hermes_trace_propagated_total"], m["hermes_trace_stitched_total"])
	}
}

// A buggy peer that ships its trace frame after the done frame: the call
// must already have resolved cleanly, and the late subtree is dropped —
// never stitched into a finished span.
func TestScenarioTraceFrameAfterDone(t *testing.T) {
	NoLeakCheck(t)
	script := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if acceptHelloWithCaps(dec, enc) != nil {
			return
		}
		f, err := ReadCall(dec)
		if err != nil {
			return
		}
		sendAnswers(enc, f.ID, 3, true)
		payload, _ := obs.EncodeSpanJSON(obs.SpanData{Name: "serve src:gen", End: time.Millisecond})
		enc.Encode(remote.Frame{Op: remote.OpTrace, ID: f.ID, Trace: payload})
		Wedge(conn)
	}
	addr := NewResponder(t, script)
	c := NewHarnessClient(addr, "src")
	defer c.Close()
	ob := obs.NewObserver()
	c.SetObserver(ob)

	ctx, call := tracedHarnessCtx()
	s, err := c.Call(ctx, "gen", nil)
	if err != nil {
		t.Fatalf("call setup: %v", err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 3 {
		t.Fatalf("vals=%d err=%v, want 3 answers despite the late trace", len(vals), err)
	}
	call.End(0)
	if n := len(call.Snapshot().Children); n != 0 {
		t.Errorf("late trace frame stitched anyway: %d children", n)
	}
	if got := ob.Metrics.Snapshot()["hermes_trace_stitched_total"]; got != 0 {
		t.Errorf("stitched counter = %v, want 0", got)
	}
}

// A peer shipping a trace subtree over the client's own byte cap: the
// subtree is dropped as oversize (counted, tagged) and the call still
// delivers every answer.
func TestScenarioOversizedTraceSubtree(t *testing.T) {
	NoLeakCheck(t)
	script := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if acceptHelloWithCaps(dec, enc) != nil {
			return
		}
		f, err := ReadCall(dec)
		if err != nil {
			return
		}
		big := obs.SpanData{
			Name: "serve src:gen", End: time.Millisecond,
			Tags: map[string]string{"padding": strings.Repeat("x", 2048)},
		}
		payload, _ := obs.EncodeSpanJSON(big)
		enc.Encode(remote.Frame{Op: remote.OpTrace, ID: f.ID, Trace: payload})
		sendAnswers(enc, f.ID, 3, true)
		Wedge(conn)
	}
	addr := NewResponder(t, script)
	c := NewHarnessClient(addr, "src")
	defer c.Close()
	c.SetMaxForeignSubtreeBytes(256)
	ob := obs.NewObserver()
	c.SetObserver(ob)

	ctx, call := tracedHarnessCtx()
	s, err := c.Call(ctx, "gen", nil)
	if err != nil {
		t.Fatalf("call setup: %v", err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 3 {
		t.Fatalf("vals=%d err=%v, want 3 answers despite the dropped subtree", len(vals), err)
	}
	call.End(0)
	snap := call.Snapshot()
	if len(snap.Children) != 0 {
		t.Error("oversized subtree was stitched")
	}
	if snap.Tags["remote.trace"] != "oversize" {
		t.Errorf("remote.trace tag = %q, want oversize", snap.Tags["remote.trace"])
	}
	m := ob.Metrics.Snapshot()
	if m[`hermes_trace_malformed_total{reason="oversize"}`] != 1 {
		t.Errorf("oversize drop not counted: %v", m)
	}
	if m["hermes_trace_stitched_total"] != 0 {
		t.Error("stitched counter moved for a dropped subtree")
	}
}

// Depth limit against the real server: a call arriving above
// -trace-max-depth is served normally — full answers — but no trace
// frame comes back, and the drop is counted. The cycle guard degrades
// tracing, never correctness.
func TestScenarioDepthLimitExceeded(t *testing.T) {
	NoLeakCheck(t)
	ob := obs.NewObserver()
	srv, addr := startServer(t, func(s *remote.Server) {
		s.TraceMaxDepth = 2
		s.SetObserver(ob)
	}, rangeDomain(3, 0))
	_ = srv

	d := DialDriver(t, addr)
	d.Send(remote.Frame{
		Op: remote.OpHello, Versions: []int{remote.ProtocolVersion},
		Caps: []string{remote.CapTrace},
	})
	reply := d.MustRecv(2 * time.Second)
	if reply.Op != remote.OpHello || reply.Version != remote.ProtocolVersion {
		t.Fatalf("hello reply %+v", reply)
	}
	d.Send(remote.Frame{
		Op: remote.OpCall, ID: 1, Domain: "src", Function: "gen",
		TraceID: "cafe0123cafe0123", Depth: 3,
	})
	answers, sawTrace := 0, false
	for {
		f := d.MustRecv(2 * time.Second)
		switch f.Op {
		case remote.OpTrace:
			sawTrace = true
		case remote.OpAnswers:
			answers += len(f.Values)
			if f.Done {
				goto drained
			}
		case remote.OpError:
			t.Fatalf("server errored: %s", f.Err)
		}
	}
drained:
	if answers != 3 {
		t.Errorf("answers = %d, want 3: the depth guard must not affect serving", answers)
	}
	if sawTrace {
		t.Error("server shipped a trace frame past its depth limit")
	}
	if got := ob.Metrics.Snapshot()["hermes_trace_dropped_depth_total"]; got != 1 {
		t.Errorf("hermes_trace_dropped_depth_total = %v, want 1", got)
	}
}
