package interop

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/remote"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// startServer spins a real remote.Server over the given domains.
func startServer(t *testing.T, cfg func(*remote.Server), doms ...domain.Domain) (*remote.Server, string) {
	t.Helper()
	reg := domain.NewRegistry()
	for _, d := range doms {
		reg.Register(d)
	}
	srv := remote.NewServer(reg)
	srv.Logf = func(string, ...any) {}
	if cfg != nil {
		cfg(srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

func rangeDomain(n int, perAnswer time.Duration) *domaintest.Domain {
	d := domaintest.New("src")
	d.Define("gen", domaintest.Func{Arity: 0, PerAnswer: perAnswer,
		Fn: func([]term.Value) ([]term.Value, error) {
			out := make([]term.Value, n)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	return d
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- Scenarios driving the real client with a scripted responder ---

// Timeout: a server that accepts the session but never answers anything.
// The client's frame deadline must bound the call (including the resume
// attempts against the equally wedged server) and surface the typed
// retryable error.
func TestScenarioTimeout(t *testing.T) {
	NoLeakCheck(t)
	wedgeAfterHello := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if AcceptHello(dec, enc, remote.ProtocolVersion) != nil {
			return
		}
		Wedge(conn)
	}
	// Initial session + one conn per resume attempt, all wedged.
	addr := NewResponder(t, wedgeAfterHello, wedgeAfterHello, wedgeAfterHello)
	c := NewHarnessClient(addr, "src")
	defer c.Close()
	start := time.Now()
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatalf("call setup: %v", err)
	}
	defer s.Close()
	_, _, err = s.Next()
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("Next = %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("wedged call took %v, deadlines did not bound it", elapsed)
	}
}

// NewHarnessClient builds a client with deadlines short enough for fault
// scenarios.
func NewHarnessClient(addr, name string) *remote.Client {
	c := remote.NewClient(addr, name)
	c.SetDialTimeout(500 * time.Millisecond)
	c.SetFrameTimeout(150 * time.Millisecond)
	c.SetHeartbeatInterval(40 * time.Millisecond)
	return c
}

// Malformed frame: the responder answers the call with bytes that are not
// a frame. The client must fail the session, not trust the stream.
func TestScenarioMalformedFrameFromServer(t *testing.T) {
	NoLeakCheck(t)
	garbageAfterCall := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if AcceptHello(dec, enc, remote.ProtocolVersion) != nil {
			return
		}
		if _, err := ReadCall(dec); err != nil {
			return
		}
		conn.Write([]byte("{{{ this is not a frame\n"))
		Wedge(conn)
	}
	addr := NewResponder(t, garbageAfterCall, garbageAfterCall, garbageAfterCall)
	c := NewHarnessClient(addr, "src")
	defer c.Close()
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatalf("call setup: %v", err)
	}
	defer s.Close()
	if _, _, err = s.Next(); !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("Next = %v, want ErrUnavailable", err)
	}
}

// Truncated frame: the responder dies mid-frame. The partial JSON must not
// be delivered as data.
func TestScenarioTruncatedFrameFromServer(t *testing.T) {
	NoLeakCheck(t)
	truncate := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if AcceptHello(dec, enc, remote.ProtocolVersion) != nil {
			return
		}
		f, err := ReadCall(dec)
		if err != nil {
			return
		}
		conn.Write([]byte(`{"op":"answers","id":` + itoa(f.ID) + `,"values":[{"t":"i","s":"0"}`))
		// Connection closes on return: the frame never completes.
	}
	addr := NewResponder(t, truncate, truncate, truncate)
	c := NewHarnessClient(addr, "src")
	defer c.Close()
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatalf("call setup: %v", err)
	}
	defer s.Close()
	if _, _, err = s.Next(); !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("Next = %v, want ErrUnavailable", err)
	}
}

func itoa(n uint64) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// Mid-stream drop: the responder streams three answers and kills the
// connection. The client must resume on a fresh connection carrying an
// answers-delivered offset of exactly three, and the consumer sees every
// answer exactly once.
func TestScenarioMidStreamDropResumesWithOffset(t *testing.T) {
	NoLeakCheck(t)
	gotResume := make(chan remote.Frame, 1)
	first := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if AcceptHello(dec, enc, remote.ProtocolVersion) != nil {
			return
		}
		f, err := ReadCall(dec)
		if err != nil {
			return
		}
		for i := 0; i < 3; i++ {
			w, _ := term.EncodeJSON(term.Int(int64(i)))
			enc.Encode(remote.Frame{Op: remote.OpAnswers, ID: f.ID, Values: []term.JSONValue{w}})
		}
		// Drop the connection mid-stream (script return closes it).
	}
	second := func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if AcceptHello(dec, enc, remote.ProtocolVersion) != nil {
			return
		}
		f, err := ReadCall(dec)
		if err != nil {
			return
		}
		gotResume <- f
		var vals []term.JSONValue
		for i := f.Offset; i < 5; i++ {
			w, _ := term.EncodeJSON(term.Int(int64(i)))
			vals = append(vals, w)
		}
		enc.Encode(remote.Frame{Op: remote.OpAnswers, ID: f.ID, Values: vals, Done: true})
		Wedge(conn)
	}
	addr := NewResponder(t, first, second)
	c := NewHarnessClient(addr, "src")
	defer c.Close()
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatalf("call setup: %v", err)
	}
	vals, err := domain.Collect(s)
	if err != nil {
		t.Fatalf("collect across drop: %v", err)
	}
	if len(vals) != 5 {
		t.Fatalf("answers = %d, want 5 exactly once each", len(vals))
	}
	for i, v := range vals {
		if !term.Equal(v, term.Int(int64(i))) {
			t.Errorf("answer %d = %v, want %d", i, v, i)
		}
	}
	select {
	case f := <-gotResume:
		if f.Op != remote.OpResume {
			t.Errorf("second connection got op %q, want resume", f.Op)
		}
		if f.Offset != 3 {
			t.Errorf("resume offset = %d, want 3 (answers already delivered)", f.Offset)
		}
	default:
		t.Error("responder never saw the resume")
	}
}

// --- Scenarios driving the real server with a raw driver ---

// Stale version: a client offering only versions the server does not speak
// is rejected on the hello with a hard error frame, and the connection is
// released.
func TestScenarioStaleVersionAgainstServer(t *testing.T) {
	NoLeakCheck(t)
	srv, addr := startServer(t, nil, rangeDomain(3, 0))
	d := DialDriver(t, addr)
	reply := d.Hello(99)
	if reply.Op != remote.OpHello || reply.Err == "" || reply.Version != 0 {
		t.Errorf("stale-version reply = %+v, want hello rejection", reply)
	}
	waitFor(t, "server to release the rejected connection", func() bool {
		return srv.OpenConns() == 0
	})
}

// Malformed frame mid-session: after a clean handshake the driver sends
// garbage. The server must drop the session, cancel the in-flight call,
// and stay healthy for other clients.
func TestScenarioMalformedFrameAgainstServer(t *testing.T) {
	NoLeakCheck(t)
	meter := domaintest.Metered(rangeDomain(100000, 5*time.Millisecond))
	srv, addr := startServer(t, nil, meter)
	d := DialDriver(t, addr)
	if reply := d.Hello(remote.ProtocolVersion); reply.Version != remote.ProtocolVersion {
		t.Fatalf("hello reply = %+v", reply)
	}
	d.Send(remote.Frame{Op: remote.OpCall, ID: 1, Domain: "src", Function: "gen"})
	if f := d.MustRecv(2 * time.Second); f.Op != remote.OpAnswers {
		t.Fatalf("first frame = %+v, want answers", f)
	}
	d.SendRaw("certainly not json\n")
	waitFor(t, "server to cancel the call after garbage", func() bool {
		return meter.Current() == 0
	})
	waitFor(t, "server to drop the session", func() bool {
		return srv.OpenConns() == 0
	})
	// The server survives for a well-behaved client.
	c := remote.NewClient(addr, "src")
	defer c.Close()
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("follow-up call: %v %v", ok, err)
	}
	s.Close()
}

// Truncated frame: the driver dies mid-frame. Same cleanup obligations.
func TestScenarioTruncatedFrameAgainstServer(t *testing.T) {
	NoLeakCheck(t)
	meter := domaintest.Metered(rangeDomain(100000, 5*time.Millisecond))
	srv, addr := startServer(t, nil, meter)
	d := DialDriver(t, addr)
	if reply := d.Hello(remote.ProtocolVersion); reply.Version != remote.ProtocolVersion {
		t.Fatalf("hello reply = %+v", reply)
	}
	d.Send(remote.Frame{Op: remote.OpCall, ID: 1, Domain: "src", Function: "gen"})
	if f := d.MustRecv(2 * time.Second); f.Op != remote.OpAnswers {
		t.Fatalf("first frame = %+v, want answers", f)
	}
	d.SendRaw(`{"op":"cancel","id`) // cut mid-key
	d.Close()
	waitFor(t, "server to cancel the call after truncation", func() bool {
		return meter.Current() == 0
	})
	waitFor(t, "server to drop the session", func() bool {
		return srv.OpenConns() == 0
	})
}

// Mid-stream drop: the driver vanishes without a cancel frame while a
// trickling call streams. The per-connection reader must notice
// immediately — not at a flush boundary — and abort the domain stream.
func TestScenarioMidStreamDropAgainstServer(t *testing.T) {
	NoLeakCheck(t)
	meter := domaintest.Metered(rangeDomain(100000, 10*time.Millisecond))
	srv, addr := startServer(t, nil, meter)
	d := DialDriver(t, addr)
	if reply := d.Hello(remote.ProtocolVersion); reply.Version != remote.ProtocolVersion {
		t.Fatalf("hello reply = %+v", reply)
	}
	d.Send(remote.Frame{Op: remote.OpCall, ID: 7, Domain: "src", Function: "gen"})
	if f := d.MustRecv(2 * time.Second); f.Op != remote.OpAnswers || f.ID != 7 {
		t.Fatalf("first frame = %+v, want answers for call 7", f)
	}
	d.Close()
	waitFor(t, "server to abort the trickling call after peer drop", func() bool {
		return meter.Current() == 0
	})
	waitFor(t, "server to drop the session", func() bool {
		return srv.OpenConns() == 0
	})
}

// Slowloris: a connection that never sends its first line is dropped at
// the header deadline.
func TestScenarioSlowlorisAgainstServer(t *testing.T) {
	NoLeakCheck(t)
	srv, addr := startServer(t, func(s *remote.Server) {
		s.HeaderTimeout = 60 * time.Millisecond
	}, rangeDomain(1, 0))
	d := DialDriver(t, addr)
	_ = d
	waitFor(t, "server to shed the silent connection", func() bool {
		return srv.OpenConns() == 0
	})
}

// Cancel frame: cancelling one call must not disturb a second call
// multiplexed on the same connection.
func TestScenarioCancelIsPerCall(t *testing.T) {
	NoLeakCheck(t)
	meter := domaintest.Metered(rangeDomain(100000, 5*time.Millisecond))
	fast := domaintest.New("fast")
	fast.Define("gen", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Int(42)}, nil
		}})
	_, addr := startServer(t, nil, meter, fast)
	d := DialDriver(t, addr)
	if reply := d.Hello(remote.ProtocolVersion); reply.Version != remote.ProtocolVersion {
		t.Fatalf("hello reply = %+v", reply)
	}
	d.Send(remote.Frame{Op: remote.OpCall, ID: 1, Domain: "src", Function: "gen"})
	if f := d.MustRecv(2 * time.Second); f.Op != remote.OpAnswers || f.ID != 1 {
		t.Fatalf("first frame = %+v", f)
	}
	d.Send(remote.Frame{Op: remote.OpCancel, ID: 1})
	waitFor(t, "call 1 to abort", func() bool { return meter.Current() == 0 })
	// Call 2 on the same connection still works end to end.
	d.Send(remote.Frame{Op: remote.OpCall, ID: 2, Domain: "fast", Function: "gen"})
	deadline := time.Now().Add(2 * time.Second)
	var got []term.Value
	for {
		if time.Now().After(deadline) {
			t.Fatal("never saw call 2 complete")
		}
		f, err := d.Recv(2 * time.Second)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if f.ID != 2 {
			continue // residual frames of the cancelled call are permitted
		}
		if f.Op != remote.OpAnswers {
			t.Fatalf("call 2 frame = %+v", f)
		}
		for _, w := range f.Values {
			v, err := term.DecodeJSON(w)
			if err != nil {
				t.Fatalf("decode call 2 value: %v", err)
			}
			got = append(got, v)
		}
		if f.Done {
			break
		}
	}
	if len(got) != 1 || !term.Equal(got[0], term.Int(42)) {
		t.Fatalf("call 2 answers = %v, want [42]", got)
	}
}
