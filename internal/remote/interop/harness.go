// Package interop verifies the remote wire protocol against real TCP
// sockets, the way a conformance suite would: a Driver (a raw-frame client
// simulator) drives the real *remote.Server, and a Responder (a scripted
// server simulator) drives the real *remote.Client. Neither side trusts
// the other's implementation — the scripts speak frames byte-for-byte, so
// they can inject what a correct peer never sends: wedged silences,
// malformed frames, truncated frames, mid-stream connection drops, and
// stale protocol versions.
package interop

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"hermes/internal/remote"
)

// NoLeakCheck snapshots the goroutine count and registers a cleanup that
// fails the test if, after everything else shut down, the count does not
// return near the baseline. Register it before the harness pieces so its
// cleanup runs last.
func NoLeakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base+2 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d at baseline, %d after cleanup", base, n)
	})
}

// Driver is a raw v2-frame client simulator for driving a real server. It
// performs no negotiation or bookkeeping on its own: tests send exactly
// the frames (or bytes) they mean to.
type Driver struct {
	t    *testing.T
	conn net.Conn
	dec  *json.Decoder
}

// DialDriver connects a driver to addr.
func DialDriver(t *testing.T, addr string) *Driver {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("driver dial %s: %v", addr, err)
	}
	d := &Driver{t: t, conn: conn, dec: json.NewDecoder(conn)}
	t.Cleanup(func() { conn.Close() })
	return d
}

// Send writes one frame.
func (d *Driver) Send(f remote.Frame) {
	d.t.Helper()
	if err := json.NewEncoder(d.conn).Encode(f); err != nil {
		d.t.Fatalf("driver send %+v: %v", f, err)
	}
}

// SendRaw writes bytes verbatim — the tool for malformed and truncated
// frames.
func (d *Driver) SendRaw(s string) {
	d.t.Helper()
	if _, err := io.WriteString(d.conn, s); err != nil {
		d.t.Fatalf("driver send raw %q: %v", s, err)
	}
}

// Recv reads the next frame within the timeout.
func (d *Driver) Recv(timeout time.Duration) (remote.Frame, error) {
	d.conn.SetReadDeadline(time.Now().Add(timeout))
	var f remote.Frame
	err := d.dec.Decode(&f)
	return f, err
}

// MustRecv reads the next frame or fails the test.
func (d *Driver) MustRecv(timeout time.Duration) remote.Frame {
	d.t.Helper()
	f, err := d.Recv(timeout)
	if err != nil {
		d.t.Fatalf("driver recv: %v", err)
	}
	return f
}

// Hello negotiates, offering the given versions, and returns the server's
// reply.
func (d *Driver) Hello(versions ...int) remote.Frame {
	d.t.Helper()
	d.Send(remote.Frame{Op: remote.OpHello, Versions: versions})
	return d.MustRecv(2 * time.Second)
}

// Close drops the connection abruptly.
func (d *Driver) Close() { d.conn.Close() }

// ConnScript plays one scripted connection on a Responder. When the
// script returns the connection closes — mid-script returns ARE the
// mid-stream-drop injection.
type ConnScript func(conn net.Conn, dec *json.Decoder, enc *json.Encoder)

// Responder is a scripted TCP server simulator: connection i plays
// scripts[i]; connections beyond the script list are closed immediately.
type Responder struct {
	l net.Listener
}

// NewResponder starts a responder and returns its address.
func NewResponder(t *testing.T, scripts ...ConnScript) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if i >= len(scripts) {
				conn.Close()
				continue
			}
			script := scripts[i]
			go func() {
				defer conn.Close()
				script(conn, json.NewDecoder(conn), json.NewEncoder(conn))
			}()
		}
	}()
	return l.Addr().String()
}

// AcceptHello reads the client hello and answers it with version v.
func AcceptHello(dec *json.Decoder, enc *json.Encoder, v int) error {
	var hello remote.Frame
	if err := dec.Decode(&hello); err != nil {
		return err
	}
	if hello.Op != remote.OpHello {
		return fmt.Errorf("expected hello, got %q", hello.Op)
	}
	return enc.Encode(remote.Frame{Op: remote.OpHello, Version: v})
}

// ReadCall reads frames until a call or resume arrives, skipping the
// client's heartbeats.
func ReadCall(dec *json.Decoder) (remote.Frame, error) {
	for {
		var f remote.Frame
		if err := dec.Decode(&f); err != nil {
			return f, err
		}
		if f.Op == remote.OpHeartbeat {
			continue
		}
		return f, nil
	}
}

// Wedge absorbs everything the peer sends without ever replying, until
// the connection closes — the shape of a wedged server.
func Wedge(conn net.Conn) {
	io.Copy(io.Discard, conn)
}
