package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/obs"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// trickleDomain emits answers slowly (wall time on the server), so a
// client that stops listening mid-stream gives the server a long window
// in which it must notice and abort.
func trickleDomain(n int, perAnswer time.Duration) *domaintest.Domain {
	d := domaintest.New("trickle")
	d.Define("gen", domaintest.Func{Arity: 0, PerAnswer: perAnswer,
		Fn: func([]term.Value) ([]term.Value, error) {
			out := make([]term.Value, n)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	return d
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestV2SingleConnectionMultiplexes: many concurrent calls through one
// client share one TCP connection against a v2 server.
func TestV2SingleConnectionMultiplexes(t *testing.T) {
	srv, addr := startServer(t, echoDomain())
	c := NewClient(addr, "echo")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(n)})
			if err != nil {
				errs <- err
				return
			}
			vals, err := domain.Collect(s)
			if err != nil {
				errs <- err
				return
			}
			if int64(len(vals)) != n {
				errs <- errors.New("wrong answer count")
			}
		}(int64(2 + g%5))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.OpenConns(); got != 1 {
		t.Errorf("OpenConns = %d, want 1 (multiplexed session)", got)
	}
}

// TestV2FirstAnswerBeforeLastAnswer: with a large chunk size a v2 stream
// still delivers the first answer immediately, while the source is still
// trickling out the rest.
func TestV2FirstAnswerBeforeLastAnswer(t *testing.T) {
	d := trickleDomain(64, 30*time.Millisecond)
	// One chunk would cover the whole answer set.
	_, addr := startServerCfg(t, func(s *Server) { s.ChunkSize = 64 }, d)
	c := NewClient(addr, "trickle")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first answer: %v %v", ok, err)
	}
	// The full set takes ~1.9s to produce; the first answer must not wait
	// for it.
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("first answer took %v, want immediate flush", waited)
	}
}

// TestV2CloseCancelsServerCall: closing a v2 answer stream sends a cancel
// frame, and the server aborts the domain stream promptly — even though
// the source trickles and no flush would fail for many answers.
func TestV2CloseCancelsServerCall(t *testing.T) {
	meter := domaintest.Metered(trickleDomain(10000, 10*time.Millisecond))
	_, addr := startServer(t, meter)
	c := NewClient(addr, "trickle")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first answer: %v %v", ok, err)
	}
	s.Close()
	waitFor(t, "server call abort after cancel frame", func() bool {
		return meter.Current() == 0
	})
}

// Regression (prompt client-drop detection): the v1 server used to notice
// a dead client only at a full-chunk flush (ChunkSize=64) or Done, so a
// trickling source kept executing — and its goroutine kept running — long
// after the client disconnected. The per-connection monitor must cancel
// the call as soon as the peer closes.
func TestV1ClientDropAbortsTricklingCall(t *testing.T) {
	meter := domaintest.Metered(trickleDomain(10000, 10*time.Millisecond))
	_, addr := startServer(t, meter)
	before := runtime.NumGoroutine()
	c := NewClient(addr, "trickle")
	c.ForceV1()
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first answer: %v %v", ok, err)
	}
	s.Close() // drops the per-call connection
	// Under the old flush-boundary detection this took ChunkSize answers
	// x 10ms = 640ms+; the monitor makes it immediate.
	waitFor(t, "server call abort after peer close", func() bool {
		return meter.Current() == 0
	})
	waitFor(t, "server goroutines drain", func() bool {
		return runtime.NumGoroutine() <= before+1
	})
}

// Regression (slowloris): a connection that sends nothing used to pin a
// handler goroutine and a conns entry forever. The header deadline drops
// it.
func TestSlowlorisHeaderDeadline(t *testing.T) {
	srv, addr := startServerCfg(t, func(s *Server) { s.HeaderTimeout = 50 * time.Millisecond }, echoDomain())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitFor(t, "server to drop the silent connection", func() bool {
		return srv.OpenConns() == 0
	})
	// The server closed its side: our read sees EOF/reset rather than
	// blocking.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("read on dropped connection should fail")
	}
}

// wedgedListener accepts connections and reads forever without replying —
// the shape of a wedged or half-dead server.
func wedgedListener(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					select {
					case <-done:
						return
					default:
					}
					conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
					conn.Read(buf)
				}
			}()
		}
	}()
	return l.Addr().String()
}

// Regression (wedged server, v1): remoteStream.Next used to block forever
// when the server stopped responding. The per-frame read deadline surfaces
// a typed, retryable ErrUnavailable.
func TestV1WedgedServerSurfacesUnavailable(t *testing.T) {
	addr := wedgedListener(t)
	c := NewClient(addr, "echo")
	c.ForceV1()
	c.SetFrameTimeout(100 * time.Millisecond)
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	_, _, err = s.Next()
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("Next = %v, want ErrUnavailable", err)
	}
	if time.Since(start) > time.Second {
		t.Error("read deadline did not bound the wedged read")
	}
}

// A wedged server must also bound v2 call setup: the hello exchange reads
// under a deadline and surfaces ErrUnavailable.
func TestV2WedgedServerHelloTimesOut(t *testing.T) {
	addr := wedgedListener(t)
	c := NewClient(addr, "echo")
	c.SetFrameTimeout(100 * time.Millisecond)
	_, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(1)})
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Errorf("Call = %v, want ErrUnavailable", err)
	}
}

// Regression (ctx ignored mid-stream, v1): cancelling the call context
// used to leave Next blocked until the server said something. The watchdog
// unblocks the read immediately and Next reports the ctx error.
func TestV1CtxCancelUnblocksNext(t *testing.T) {
	addr := wedgedListener(t)
	c := NewClient(addr, "echo")
	c.ForceV1()
	c.SetFrameTimeout(10 * time.Second) // deadline alone must not be the rescuer
	cctx, cancel := context.WithCancel(context.Background())
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	ctx.Context = cctx
	s, err := c.Call(ctx, "gen", []term.Value{term.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = s.Next()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Next = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("ctx cancellation did not unblock the in-flight read")
	}
}

// Cancelling the call context mid-stream on a v2 session unblocks Next and
// tells the server to stop, without killing the shared session.
func TestV2CtxCancelMidStream(t *testing.T) {
	meter := domaintest.Metered(trickleDomain(10000, 10*time.Millisecond))
	srv, addr := startServer(t, meter)
	c := NewClient(addr, "trickle")
	cctx, cancel := context.WithCancel(context.Background())
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	ctx.Context = cctx
	s, err := c.Call(ctx, "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first answer: %v %v", ok, err)
	}
	cancel()
	if _, _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Errorf("Next = %v, want context.Canceled", err)
	}
	waitFor(t, "server call abort", func() bool { return meter.Current() == 0 })
	// The session survived: a fresh call on the same client still works.
	s2, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Next(); !ok || err != nil {
		t.Fatalf("post-cancel call: %v %v", ok, err)
	}
	s2.Close()
	if got := srv.OpenConns(); got != 1 {
		t.Errorf("OpenConns = %d, want the one persistent session", got)
	}
}

// TestV2ResumeAfterSessionDrop: killing the session connection mid-stream
// resumes the call on a fresh connection with an answers-delivered offset;
// the consumer sees every answer exactly once, in order.
func TestV2ResumeAfterSessionDrop(t *testing.T) {
	_, addr := startServerCfg(t, func(s *Server) { s.ChunkSize = 1 }, echoDomain())
	c := NewClient(addr, "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(50)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got []int64
	for i := 0; i < 10; i++ {
		v, ok, err := s.Next()
		if !ok || err != nil {
			t.Fatalf("answer %d: %v %v", i, ok, err)
		}
		rec := v.(term.Record)
		n, _ := rec.Get("i")
		got = append(got, int64(n.(term.Int)))
	}
	// Kill the transport under the stream.
	c.mu.Lock()
	sess := c.sess
	c.mu.Unlock()
	sess.conn.Close()
	for {
		v, ok, err := s.Next()
		if err != nil {
			t.Fatalf("after drop: %v", err)
		}
		if !ok {
			break
		}
		rec := v.(term.Record)
		n, _ := rec.Get("i")
		got = append(got, int64(n.(term.Int)))
	}
	if len(got) != 50 {
		t.Fatalf("answers = %d, want 50 (no loss, no duplicates)", len(got))
	}
	for i, n := range got {
		if n != int64(i) {
			t.Fatalf("answer %d = %d, want %d (resume offset wrong)", i, n, i)
		}
	}
}

// TestV2ResumeExhaustionSurfacesUnavailable: when the server stays down,
// bounded resumes give up with the retryable error the resilience layer
// expects.
func TestV2ResumeExhaustionSurfacesUnavailable(t *testing.T) {
	srv, addr := startServerCfg(t, func(s *Server) { s.ChunkSize = 1 }, echoDomain())
	c := NewClient(addr, "echo")
	c.SetDialTimeout(200 * time.Millisecond)
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", []term.Value{term.Int(100000)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first answer: %v %v", ok, err)
	}
	srv.Close() // server gone for good
	for {
		_, ok, err := s.Next()
		if err != nil {
			if !errors.Is(err, domain.ErrUnavailable) {
				t.Errorf("err = %v, want ErrUnavailable", err)
			}
			return
		}
		if !ok {
			t.Fatal("stream ended cleanly despite dead server")
		}
	}
}

// TestV1FallbackNegotiation: against a server that only speaks v1 (it
// answers the hello with an unknown-op error), the client transparently
// falls back to one connection per call.
func TestV1FallbackNegotiation(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := json.NewDecoder(conn)
				enc := json.NewEncoder(conn)
				var req request
				if dec.Decode(&req) != nil {
					return
				}
				switch req.Op {
				case "call":
					enc.Encode(response{Values: []wireValue{{T: "i", S: "7"}}, Done: true})
				default:
					enc.Encode(response{Err: "unknown op \"" + req.Op + "\"", Done: true})
				}
			}()
		}
	}()
	c := NewClient(l.Addr().String(), "echo")
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 1 || !term.Equal(vals[0], term.Int(7)) {
		t.Fatalf("fallback call = %v, %v", vals, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.forceV1 {
		t.Error("client should remember the server speaks v1")
	}
}

// TestV2HeartbeatKeepsQuietSessionAlive: a call whose source is slower
// than the frame timeout survives because heartbeat echoes keep refreshing
// the session's read deadline.
func TestV2HeartbeatKeepsQuietSessionAlive(t *testing.T) {
	d := domaintest.New("slow")
	d.Define("one", domaintest.Func{Arity: 0, PerCall: 400 * time.Millisecond,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Int(1)}, nil
		}})
	srv, addr := startServer(t, d)
	ob := obs.NewObserver()
	srv.SetObserver(ob)
	c := NewClient(addr, "slow")
	c.SetFrameTimeout(150 * time.Millisecond)
	c.SetHeartbeatInterval(30 * time.Millisecond)
	s, err := c.Call(domain.NewCtx(vclock.NewVirtual(0)), "one", nil)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := domain.Collect(s)
	if err != nil || len(vals) != 1 {
		t.Fatalf("slow call = %v, %v (session must outlive quiet spells)", vals, err)
	}
	if ob.Counter("hermes_remote_heartbeats_total").Value() == 0 {
		t.Error("server echoed no heartbeats")
	}
}

// failingWriter always fails, standing in for a peer whose receive side is
// gone.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// Regression (silent Encode errors): failed frame writes used to vanish.
// They must hit the log and the hermes_remote_send_errors_total counter.
func TestSendErrorsLoggedAndCounted(t *testing.T) {
	reg := domain.NewRegistry()
	reg.Register(echoDomain())
	srv := NewServer(reg)
	var logged int
	srv.Logf = func(string, ...any) { logged++ }
	ob := obs.NewObserver()
	srv.SetObserver(ob)
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	sn := &v1Sender{s: srv, conn: server, enc: json.NewEncoder(failingWriter{})}
	if sn.send("answers", response{Done: true}) {
		t.Fatal("send on a broken writer should report failure")
	}
	if logged != 1 {
		t.Errorf("Logf calls = %d, want 1", logged)
	}
	if got := ob.Counter("hermes_remote_send_errors_total", "frame", "answers").Value(); got != 1 {
		t.Errorf("send_errors_total = %d, want 1", got)
	}
	// The v2 session path shares the accounting.
	ss := &serverSession{srv: srv, conn: server, enc: json.NewEncoder(failingWriter{}), calls: map[uint64]context.CancelFunc{}}
	if ss.send("error", Frame{Op: OpError, ID: 1, Err: "x"}) {
		t.Fatal("session send on a broken writer should report failure")
	}
	if got := ob.Counter("hermes_remote_send_errors_total", "frame", "error").Value(); got != 1 {
		t.Errorf("v2 send_errors_total = %d, want 1", got)
	}
}

// TestV2StaleVersionRejected: a client offering only versions the server
// does not speak gets a hard rejection on the hello, not a retryable
// error.
func TestV2StaleVersionRejected(t *testing.T) {
	_, addr := startServer(t, echoDomain())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(Frame{Op: OpHello, Versions: []int{99}}); err != nil {
		t.Fatal(err)
	}
	var reply Frame
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if err := json.NewDecoder(conn).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Op != OpHello || reply.Err == "" || reply.Version != 0 {
		t.Errorf("stale-version reply = %+v, want hello rejection", reply)
	}
}
