package resilience

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// ErrCallTimeout reports that one call attempt exceeded the per-call
// budget. It surfaces wrapped in domain.ErrUnavailable (retryable).
var ErrCallTimeout = errors.New("per-call timeout exceeded")

// Policy is the resilience policy applied to every call through a Wrapper.
type Policy struct {
	// MaxAttempts bounds call attempts, the first try included (≤1 means
	// no retry).
	MaxAttempts int
	// CallTimeout bounds one attempt's setup time (call issue through
	// stream creation) on the execution clock; 0 disables. An attempt
	// that overruns charges exactly CallTimeout — the caller gave up
	// waiting at that point — and counts as a retryable failure.
	CallTimeout time.Duration
	// BackoffBase and BackoffCap bound the decorrelated-jitter retry
	// delays.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed uint64
	// Breaker configures the per-domain circuit breaker.
	Breaker BreakerConfig
	// ResumeStream re-issues the call after a mid-stream retryable
	// failure and resumes the answer stream, suppressing answers already
	// delivered (answer sets are sets, so this is sound).
	ResumeStream bool
	// MaxResumes bounds mid-stream re-issues per call (default 2 when
	// ResumeStream is set).
	MaxResumes int
}

// DefaultPolicy returns a policy tuned for the paper's WAN sources:
// a few retries with sub-second backoff, and a breaker that trips after
// five straight failures and probes again after 30 s of execution time.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:  4,
		BackoffBase:  50 * time.Millisecond,
		BackoffCap:   2 * time.Second,
		Seed:         1,
		ResumeStream: true,
		MaxResumes:   2,
		Breaker: BreakerConfig{
			FailureThreshold:  5,
			OpenTimeout:       30 * time.Second,
			HalfOpenSuccesses: 1,
		},
	}
}

// Metrics count the wrapper's activity.
type Metrics struct {
	// Calls is how many calls entered the wrapper.
	Calls int
	// Attempts is how many attempts reached the wrapped domain.
	Attempts int
	// Retries is how many attempts were repeats after a failure.
	Retries int
	// Successes and Failures count calls by final outcome.
	Successes int
	Failures  int
	// Timeouts counts attempts abandoned at the per-call timeout.
	Timeouts int
	// BreakerRejections counts calls the breaker refused outright.
	BreakerRejections int
	// StreamResumes counts mid-stream re-issues after truncation.
	StreamResumes int
	// BackoffTotal is the execution-clock time spent backing off.
	BackoffTotal time.Duration
}

// Wrapper places a resilience policy in front of a domain. It composes
// like netsim.Host: the mediator registers Wrap(host, policy) and the
// policy is transparent to rules and plans.
type Wrapper struct {
	inner   domain.Domain
	policy  Policy
	breaker *Breaker

	mu      sync.Mutex
	metrics Metrics
	ob      *obs.Observer
}

// Wrap builds a resilient front for d.
func Wrap(d domain.Domain, p Policy) *Wrapper {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.ResumeStream && p.MaxResumes <= 0 {
		p.MaxResumes = 2
	}
	return &Wrapper{inner: d, policy: p, breaker: NewBreaker(p.Breaker)}
}

// Name is transparent: the wrapper answers for the wrapped domain.
func (w *Wrapper) Name() string { return w.inner.Name() }

// Functions forwards to the wrapped domain.
func (w *Wrapper) Functions() []domain.FuncSpec { return w.inner.Functions() }

// FunctionsErr forwards the fallible listing when the wrapped domain
// provides one (remote sources).
func (w *Wrapper) FunctionsErr() ([]domain.FuncSpec, error) {
	if fl, ok := w.inner.(domain.FunctionLister); ok {
		return fl.FunctionsErr()
	}
	return w.inner.Functions(), nil
}

// Inner returns the wrapped domain.
func (w *Wrapper) Inner() domain.Domain { return w.inner }

// Breaker returns the wrapper's circuit breaker (for metrics assertions).
func (w *Wrapper) Breaker() *Breaker { return w.breaker }

// Policy returns the active policy.
func (w *Wrapper) Policy() Policy { return w.policy }

// Metrics returns a snapshot of the wrapper's counters.
func (w *Wrapper) Metrics() Metrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.metrics
}

func (w *Wrapper) note(f func(*Metrics)) {
	w.mu.Lock()
	f(&w.metrics)
	w.mu.Unlock()
}

// breakerStateValue maps states onto the hermes_breaker_state gauge:
// 0 closed, 1 open, 2 half-open.
func breakerStateValue(s BreakerState) float64 {
	switch s {
	case StateOpen:
		return 1
	case StateHalfOpen:
		return 2
	default:
		return 0
	}
}

// SetObserver installs the observability sink: retry/rejection/timeout
// counters and the per-domain breaker-state gauge, kept current by a
// breaker transition hook.
func (w *Wrapper) SetObserver(o *obs.Observer) {
	w.mu.Lock()
	w.ob = o
	w.mu.Unlock()
	name := w.inner.Name()
	gauge := o.Gauge("hermes_breaker_state", "domain", name)
	gauge.Set(breakerStateValue(w.breaker.State(0)))
	w.breaker.SetTransitionHook(func(at time.Duration, from, to BreakerState) {
		gauge.Set(breakerStateValue(to))
		o.Counter("hermes_breaker_transitions_total", "domain", name, "to", to.String()).Inc()
	})
}

// obsv returns the installed observer (nil-safe to use).
func (w *Wrapper) obsv() *obs.Observer {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ob
}

// attempt runs one call attempt, enforcing the per-call timeout. The
// returned ctx is the one the stream charges (a clock fork when a timeout
// is armed); the caller joins it back after every pull.
func (w *Wrapper) attempt(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, *domain.Ctx, error) {
	if w.policy.CallTimeout <= 0 {
		s, err := w.inner.Call(ctx, fn, args)
		return s, ctx, err
	}
	fork := ctx.Fork()
	start := fork.Clock.Now()
	s, err := w.inner.Call(fork, fn, args)
	elapsed := fork.Clock.Now() - start
	if elapsed > w.policy.CallTimeout {
		if s != nil {
			s.Close()
		}
		// The caller stopped waiting at the timeout: charge exactly that.
		ctx.Clock.Sleep(w.policy.CallTimeout)
		w.note(func(m *Metrics) { m.Timeouts++ })
		w.obsv().Counter("hermes_call_timeouts_total", "domain", w.inner.Name()).Inc()
		return nil, ctx, fmt.Errorf("%w: %w: %s:%s setup took %s (budget %s)",
			domain.ErrUnavailable, ErrCallTimeout, w.inner.Name(), fn, elapsed, w.policy.CallTimeout)
	}
	ctx.Clock.Join(fork.Clock)
	if err != nil {
		return nil, ctx, err
	}
	return s, fork, nil
}

// Call implements domain.Domain: breaker gate, bounded deadline-aware
// retries with deterministic backoff, and a resumable answer stream.
func (w *Wrapper) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	call := domain.Call{Domain: w.inner.Name(), Function: fn, Args: args}
	w.note(func(m *Metrics) { m.Calls++ })
	s, sctx, err := w.callRaw(ctx, call, fn, args)
	if err != nil {
		return nil, err
	}
	return w.newStream(ctx, sctx, call, s), nil
}

// callRaw runs the breaker/retry loop and returns the raw attempt stream
// (not resume-wrapped) with the ctx it charges. Both Call and mid-stream
// resume go through here; only Call adds the resuming wrapper, so one
// call has exactly one resume budget no matter how often it is re-issued.
func (w *Wrapper) callRaw(ctx *domain.Ctx, call domain.Call, fn string, args []term.Value) (domain.Stream, *domain.Ctx, error) {
	bo := Backoff{Base: w.policy.BackoffBase, Cap: w.policy.BackoffCap, Seed: w.policy.Seed, Key: call.Key()}
	var prev time.Duration
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if err := w.breaker.Allow(ctx.Clock.Now()); err != nil {
			w.note(func(m *Metrics) { m.BreakerRejections++ })
			w.obsv().Counter("hermes_breaker_rejections_total", "domain", call.Domain).Inc()
			return nil, nil, fmt.Errorf("%w: domain %s: %w", domain.ErrUnavailable, call.Domain, err)
		}
		w.note(func(m *Metrics) {
			m.Attempts++
			if attempt > 1 {
				m.Retries++
			}
		})
		s, sctx, err := w.attempt(ctx, fn, args)
		if err == nil {
			w.breaker.Record(ctx.Clock.Now(), true)
			w.note(func(m *Metrics) { m.Successes++ })
			if attempt > 1 {
				w.obsv().Counter("hermes_call_retries_total", "domain", call.Domain).Add(int64(attempt - 1))
				ctx.Span.SetTag("retries", strconv.Itoa(attempt-1))
			}
			return s, sctx, nil
		}
		if ctx.Err() != nil {
			// The attempt ended because the caller's context was cancelled
			// or the query deadline passed mid-call: the source never gave a
			// verdict, so neither success nor failure is recorded — a
			// half-open probe abandoned this way must free its slot rather
			// than wedge the breaker.
			w.breaker.Abandon(ctx.Clock.Now())
			w.note(func(m *Metrics) { m.Failures++ })
			return nil, nil, err
		}
		if domain.IsOverloaded(err) {
			// Admission shed: mediator state, not a source outcome. Fail
			// fast — retrying into an overloaded server only deepens the
			// overload — and don't charge the breaker either way.
			w.breaker.Abandon(ctx.Clock.Now())
			w.note(func(m *Metrics) { m.Failures++ })
			return nil, nil, err
		}
		retryable := domain.IsRetryable(err)
		// A non-retryable error means the source answered (wrong
		// function, type error, ...): not a breaker failure.
		w.breaker.Record(ctx.Clock.Now(), !retryable)
		if !retryable || attempt >= w.policy.MaxAttempts {
			w.note(func(m *Metrics) { m.Failures++ })
			return nil, nil, err
		}
		d := bo.Delay(attempt, prev)
		prev = d
		if left, bounded := ctx.Remaining(); bounded && d >= left {
			// Backing off would blow the query deadline: give up now so
			// the layer above can degrade to cache instead.
			w.note(func(m *Metrics) { m.Failures++ })
			return nil, nil, fmt.Errorf("retry abandoned (backoff %s exceeds deadline budget %s): %w", d, left, err)
		}
		ctx.Clock.Sleep(d)
		w.note(func(m *Metrics) { m.BackoffTotal += d })
	}
}

// newStream wraps a successful attempt's stream with clock joining and
// mid-stream resume.
func (w *Wrapper) newStream(parent, streamCtx *domain.Ctx, call domain.Call, s domain.Stream) domain.Stream {
	rs := &resilientStream{w: w, parent: parent, cur: s, curCtx: streamCtx, call: call}
	if w.policy.ResumeStream {
		rs.seen = make(map[string]struct{})
	}
	return rs
}

// resilientStream joins forked attempt clocks back into the caller's and
// resumes after mid-stream retryable failures by re-issuing the call and
// suppressing already-delivered answers.
type resilientStream struct {
	w       *Wrapper
	parent  *domain.Ctx
	cur     domain.Stream
	curCtx  *domain.Ctx
	call    domain.Call
	seen    map[string]struct{}
	resumes int
	done    bool
}

func (s *resilientStream) join() {
	if s.curCtx != s.parent {
		s.parent.Clock.Join(s.curCtx.Clock)
	}
}

func (s *resilientStream) Next() (term.Value, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		v, ok, err := s.cur.Next()
		s.join()
		if err == nil {
			if !ok {
				s.done = true
				return nil, false, nil
			}
			if s.seen != nil {
				k := v.Key()
				if _, dup := s.seen[k]; dup && s.resumes > 0 {
					continue // already delivered before the truncation
				}
				s.seen[k] = struct{}{}
			}
			return v, true, nil
		}
		if s.parent.Err() != nil || domain.IsOverloaded(err) {
			// Cancelled mid-stream or shed by admission: no source verdict.
			s.w.breaker.Abandon(s.parent.Clock.Now())
			s.done = true
			return nil, false, err
		}
		retryable := domain.IsRetryable(err)
		s.w.breaker.Record(s.parent.Clock.Now(), !retryable)
		if !retryable || !s.w.policy.ResumeStream || s.resumes >= s.w.policy.MaxResumes {
			s.done = true
			return nil, false, err
		}
		s.resumes++
		s.w.note(func(m *Metrics) { m.StreamResumes++ })
		s.w.obsv().Counter("hermes_stream_resumes_total", "domain", s.call.Domain).Inc()
		s.parent.Span.SetTag("resumed", strconv.Itoa(s.resumes))
		s.cur.Close()
		// Re-issue through the full breaker/retry path. callRaw keeps the
		// resume accounting here, at the top level: the fresh stream
		// replays the whole answer set, the seen-filter drops the prefix
		// already delivered, and this loop (bounded by MaxResumes) handles
		// any further truncation.
		ns, nctx, rerr := s.w.callRaw(s.parent, s.call, s.call.Function, s.call.Args)
		if rerr != nil {
			s.done = true
			return nil, false, rerr
		}
		s.cur, s.curCtx = ns, nctx
	}
}

func (s *resilientStream) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	err := s.cur.Close()
	s.join()
	return err
}
