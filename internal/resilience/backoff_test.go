package resilience

import (
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	tests := []struct {
		name string
		b    Backoff
		// runs attempts 1..n threading prev, checking every delay stays in
		// [lo, hi].
		n      int
		lo, hi time.Duration
	}{
		{
			name: "base and cap respected",
			b:    Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Seed: 1, Key: "avis|f|x"},
			n:    10, lo: 50 * time.Millisecond, hi: 2 * time.Second,
		},
		{
			name: "zero base defaults to 1ms",
			b:    Backoff{Cap: time.Second, Seed: 2, Key: "k"},
			n:    5, lo: time.Millisecond, hi: time.Second,
		},
		{
			name: "no cap still bounded by 3x growth",
			b:    Backoff{Base: 10 * time.Millisecond, Seed: 3, Key: "k"},
			n:    6, lo: 10 * time.Millisecond, hi: 10 * time.Millisecond * 3 * 3 * 3 * 3 * 3 * 3,
		},
		{
			name: "cap below base clamps to base",
			b:    Backoff{Base: 100 * time.Millisecond, Cap: 10 * time.Millisecond, Seed: 4, Key: "k"},
			n:    4, lo: 10 * time.Millisecond, hi: 100 * time.Millisecond,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			prev := time.Duration(0)
			for a := 1; a <= tc.n; a++ {
				d := tc.b.Delay(a, prev)
				if d < tc.lo || d > tc.hi {
					t.Errorf("attempt %d: delay %v outside [%v, %v]", a, d, tc.lo, tc.hi)
				}
				prev = d
			}
		})
	}
}

func TestBackoffDecorrelatedRange(t *testing.T) {
	// Each delay must lie in [Base, 3·prev] (capped): the decorrelated
	// jitter recurrence.
	b := Backoff{Base: 20 * time.Millisecond, Cap: 5 * time.Second, Seed: 9, Key: "call"}
	prev := time.Duration(0)
	for a := 1; a <= 12; a++ {
		d := b.Delay(a, prev)
		lo := b.Base
		// The recurrence clamps prev up to Base before tripling.
		p := prev
		if p < b.Base {
			p = b.Base
		}
		hi := 3 * p
		if hi > b.Cap {
			hi = b.Cap
		}
		if d < lo || d > hi {
			t.Errorf("attempt %d: delay %v outside decorrelated range [%v, %v] (prev %v)", a, d, lo, hi, prev)
		}
		prev = d
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	schedule := func(seed uint64, key string) []time.Duration {
		b := Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Seed: seed, Key: key}
		var out []time.Duration
		prev := time.Duration(0)
		for a := 1; a <= 8; a++ {
			d := b.Delay(a, prev)
			out = append(out, d)
			prev = d
		}
		return out
	}

	s1 := schedule(7, "avis|frames_to_objects|rope,0,110")
	s2 := schedule(7, "avis|frames_to_objects|rope,0,110")
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed+key diverged at retry %d: %v vs %v", i+1, s1[i], s2[i])
		}
	}

	// Different seeds and different keys must (for these inputs) give
	// different schedules — the jitter is live, not constant.
	if same(s1, schedule(8, "avis|frames_to_objects|rope,0,110")) {
		t.Error("different seeds produced identical schedules")
	}
	if same(s1, schedule(7, "avis|frames_to_objects|rope,3,117")) {
		t.Error("different call keys produced identical schedules")
	}
}

func same(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
