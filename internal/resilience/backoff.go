package resilience

import (
	"hash/fnv"
	"time"
)

// Backoff computes retry delays with decorrelated jitter: each delay is
// drawn uniformly from [Base, 3·prev], capped at Cap. Unlike plain
// exponential backoff with full jitter, decorrelated jitter spreads
// concurrent retriers apart even when they fail in lockstep, while the
// hash-seeded draw keeps every schedule reproducible.
type Backoff struct {
	// Base is the minimum delay (and the nominal first delay).
	Base time.Duration
	// Cap bounds every delay.
	Cap time.Duration
	// Seed drives the deterministic jitter.
	Seed uint64
	// Key scopes the jitter stream, typically the call key: two different
	// calls retry on different schedules.
	Key string
}

// unit returns a deterministic pseudo-random u ∈ [0,1) for one attempt.
func (b Backoff) unit(attempt int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(b.Seed >> (8 * i))
		buf[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(b.Key))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// Delay returns the backoff before retry number attempt (1-based), given
// the previous delay (pass 0 before the first retry).
func (b Backoff) Delay(attempt int, prev time.Duration) time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	if prev < base {
		prev = base
	}
	hi := 3 * prev
	if b.Cap > 0 && hi > b.Cap {
		hi = b.Cap
	}
	if hi < base {
		hi = base
	}
	d := base + time.Duration(b.unit(attempt)*float64(hi-base))
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	return d
}
