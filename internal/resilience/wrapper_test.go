package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// flaky is a scriptable domain for the wrapper tests: it fails the first
// failSetup calls with a retryable error, then serves vals; the first
// truncateCalls successful streams cut off after truncAt answers with a
// retryable mid-stream error.
type flaky struct {
	vals          []term.Value
	failSetup     int
	truncateCalls int
	truncAt       int
	perCall       time.Duration

	calls int
}

func (f *flaky) Name() string { return "flaky" }
func (f *flaky) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{{Name: "get", Arity: 0}}
}

func (f *flaky) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	f.calls++
	ctx.Clock.Sleep(f.perCall)
	if f.calls <= f.failSetup {
		return nil, fmt.Errorf("%w: flaky setup failure %d", domain.ErrUnavailable, f.calls)
	}
	s := domain.NewSliceStream(f.vals)
	if f.calls <= f.failSetup+f.truncateCalls {
		return &cutStream{inner: s, after: f.truncAt}, nil
	}
	return s, nil
}

type cutStream struct {
	inner domain.Stream
	after int
}

func (s *cutStream) Next() (term.Value, bool, error) {
	if s.after <= 0 {
		return nil, false, fmt.Errorf("%w: connection dropped", domain.ErrUnavailable)
	}
	s.after--
	return s.inner.Next()
}
func (s *cutStream) Close() error { return s.inner.Close() }

func vals(n int) []term.Value {
	out := make([]term.Value, n)
	for i := range out {
		out[i] = term.Int(int64(i))
	}
	return out
}

func testPolicy() Policy {
	return Policy{
		MaxAttempts: 4,
		BackoffBase: 50 * time.Millisecond,
		BackoffCap:  time.Second,
		Seed:        1,
		Breaker:     BreakerConfig{FailureThreshold: 5, OpenTimeout: 30 * time.Second},
	}
}

func TestWrapperRetriesTransientFailures(t *testing.T) {
	src := &flaky{vals: vals(3), failSetup: 2}
	w := Wrap(src, testPolicy())
	ctx := domain.NewCtx(vclock.NewVirtual(0))

	s, err := w.Call(ctx, "get", nil)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	got, err := domain.Collect(s)
	if err != nil || len(got) != 3 {
		t.Fatalf("collect = %v, %v", got, err)
	}
	m := w.Metrics()
	if m.Attempts != 3 || m.Retries != 2 || m.Successes != 1 || m.Failures != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.BackoffTotal <= 0 {
		t.Errorf("no backoff charged: %+v", m)
	}
	if ctx.Clock.Now() < m.BackoffTotal {
		t.Errorf("backoff %v not charged to the execution clock (now %v)", m.BackoffTotal, ctx.Clock.Now())
	}
}

func TestWrapperDoesNotRetryNonRetryable(t *testing.T) {
	src := domainFunc{name: "strict", err: errors.New("type error: arg must be int")}
	w := Wrap(src, testPolicy())
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	_, err := w.Call(ctx, "get", nil)
	if err == nil || domain.IsRetryable(err) {
		t.Fatalf("err = %v", err)
	}
	m := w.Metrics()
	if m.Attempts != 1 || m.Retries != 0 {
		t.Errorf("non-retryable error was retried: %+v", m)
	}
	// The source answered; the breaker must not count it as a failure.
	if w.Breaker().State(ctx.Clock.Now()) != StateClosed {
		t.Error("non-retryable error affected the breaker")
	}
}

// domainFunc is a single-function domain that always errors.
type domainFunc struct {
	name string
	err  error
}

func (d domainFunc) Name() string                 { return d.name }
func (d domainFunc) Functions() []domain.FuncSpec { return []domain.FuncSpec{{Name: "get"}} }
func (d domainFunc) Call(*domain.Ctx, string, []term.Value) (domain.Stream, error) {
	return nil, d.err
}

func TestWrapperBreakerTripsAndFastRejects(t *testing.T) {
	p := testPolicy()
	p.MaxAttempts = 1
	p.Breaker = BreakerConfig{FailureThreshold: 3, OpenTimeout: 10 * time.Second}
	src := &flaky{vals: vals(1), failSetup: 1 << 30} // never recovers
	w := Wrap(src, p)
	ctx := domain.NewCtx(vclock.NewVirtual(0))

	for i := 0; i < 3; i++ {
		if _, err := w.Call(ctx, "get", nil); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if w.Breaker().State(ctx.Clock.Now()) != StateOpen {
		t.Fatalf("breaker not open after %d failures", 3)
	}

	// Open breaker: rejected without reaching the source, still typed
	// retryable so the CIM can degrade.
	before := src.calls
	at := ctx.Clock.Now()
	_, err := w.Call(ctx, "get", nil)
	if !errors.Is(err, domain.ErrUnavailable) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker error = %v, want ErrUnavailable wrapping ErrBreakerOpen", err)
	}
	if src.calls != before {
		t.Error("rejected call reached the source")
	}
	if ctx.Clock.Now() != at {
		t.Errorf("fast rejection charged %v of clock", ctx.Clock.Now()-at)
	}
	if m := w.Metrics(); m.BreakerRejections != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestWrapperRespectsQueryDeadline(t *testing.T) {
	p := testPolicy()
	p.BackoffBase = 500 * time.Millisecond
	src := &flaky{vals: vals(1), failSetup: 1 << 30, perCall: 100 * time.Millisecond}
	w := Wrap(src, p)
	ctx := domain.NewCtx(vclock.NewVirtual(0)).WithDeadline(300 * time.Millisecond)

	_, err := w.Call(ctx, "get", nil)
	if err == nil {
		t.Fatal("expected failure")
	}
	// The wrapper must give up rather than back off past the deadline: the
	// clock stays within the budget so the caller can still degrade.
	if now, dl := ctx.Clock.Now(), 300*time.Millisecond; now > dl {
		t.Errorf("retry loop ran to %v, past the %v deadline", now, dl)
	}
	if m := w.Metrics(); m.Attempts != 1 {
		t.Errorf("expected a single attempt within the budget, got %+v", m)
	}
}

func TestWrapperPerCallTimeout(t *testing.T) {
	p := testPolicy()
	p.MaxAttempts = 2
	p.CallTimeout = time.Second
	src := &flaky{vals: vals(1), perCall: 10 * time.Second} // pathologically slow
	w := Wrap(src, p)
	ctx := domain.NewCtx(vclock.NewVirtual(0))

	_, err := w.Call(ctx, "get", nil)
	if !errors.Is(err, ErrCallTimeout) || !errors.Is(err, domain.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrCallTimeout wrapped in ErrUnavailable", err)
	}
	m := w.Metrics()
	if m.Timeouts != 2 {
		t.Errorf("timeouts = %d, want 2", m.Timeouts)
	}
	// Each abandoned attempt charges exactly the timeout, not the
	// source's 10 s: total = 2 timeouts + one backoff.
	max := 2*time.Second + p.BackoffCap
	if now := ctx.Clock.Now(); now > max {
		t.Errorf("clock = %v, want at most %v (timeout charged, not source latency)", now, max)
	}
}

func TestWrapperResumesTruncatedStream(t *testing.T) {
	src := &flaky{vals: vals(5), truncateCalls: 1, truncAt: 2}
	w := Wrap(src, Policy{MaxAttempts: 2, BackoffBase: 10 * time.Millisecond, Seed: 3,
		ResumeStream: true, MaxResumes: 2})
	ctx := domain.NewCtx(vclock.NewVirtual(0))

	s, err := w.Call(ctx, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := domain.Collect(s)
	if err != nil {
		t.Fatalf("resumed stream failed: %v", err)
	}
	// The full answer set, exactly once: the resume replays the source
	// stream and the seen-filter drops the prefix delivered before the cut.
	if len(got) != 5 {
		t.Fatalf("got %d answers, want 5: %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, v := range got {
		k := v.Key()
		if seen[k] {
			t.Errorf("duplicate answer %v after resume", v)
		}
		seen[k] = true
	}
	if m := w.Metrics(); m.StreamResumes != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestWrapperResumeExhaustionSurfacesError(t *testing.T) {
	// Every stream truncates; MaxResumes=1 means the second cut surfaces.
	src := &flaky{vals: vals(5), truncateCalls: 1 << 30, truncAt: 2}
	w := Wrap(src, Policy{MaxAttempts: 1, ResumeStream: true, MaxResumes: 1, Seed: 3})
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	s, err := w.Call(ctx, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = domain.Collect(s)
	if !errors.Is(err, domain.ErrUnavailable) {
		t.Fatalf("exhausted resume = %v, want retryable error", err)
	}
	if m := w.Metrics(); m.StreamResumes != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestWrapperTransparency(t *testing.T) {
	src := &flaky{vals: vals(1)}
	w := Wrap(src, DefaultPolicy())
	if w.Name() != "flaky" {
		t.Errorf("Name = %q", w.Name())
	}
	if len(w.Functions()) != 1 {
		t.Errorf("Functions = %v", w.Functions())
	}
	if w.Inner() != domain.Domain(src) {
		t.Error("Inner does not return the wrapped domain")
	}
	specs, err := w.FunctionsErr()
	if err != nil || len(specs) != 1 {
		t.Errorf("FunctionsErr = %v, %v", specs, err)
	}
}

// moodyDomain fails, succeeds, or cancels the caller's context depending
// on its mode, so a test can walk the breaker through trip → probe →
// verdict with full control of each call's outcome.
type moodyDomain struct {
	mode   string // "fail", "ok", "cancel", "overload"
	cancel context.CancelFunc
	calls  int
}

func (d *moodyDomain) Name() string { return "moody" }
func (d *moodyDomain) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{{Name: "get", Arity: 0}}
}

func (d *moodyDomain) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	d.calls++
	switch d.mode {
	case "fail":
		return nil, fmt.Errorf("%w: moody outage", domain.ErrUnavailable)
	case "cancel":
		// The caller hangs up mid-call: cancel the context and surface its
		// error, exactly what a remote dial aborted by cancellation does.
		d.cancel()
		return nil, ctx.Context.Err()
	case "overload":
		return nil, fmt.Errorf("admission shed: %w (%w)", domain.ErrOverloaded, domain.ErrUnavailable)
	default:
		return domain.NewSliceStream(vals(1)), nil
	}
}

// TestWrapperAbandonedProbeDoesNotWedgeBreaker is the vclock regression
// test for the half-open wedge: a probe call abandoned by context
// cancellation must neither close the breaker (the old behaviour — the
// cancellation error is non-retryable, so it was recorded as a success)
// nor leave the probe slot taken forever. The breaker stays half-open
// with a free slot, and the next call probes normally.
func TestWrapperAbandonedProbeDoesNotWedgeBreaker(t *testing.T) {
	src := &moodyDomain{mode: "fail"}
	p := Policy{
		MaxAttempts: 1,
		Breaker:     BreakerConfig{FailureThreshold: 1, OpenTimeout: 5 * time.Second},
	}
	w := Wrap(src, p)
	clk := vclock.NewVirtual(0)

	// Trip the breaker.
	if _, err := w.Call(domain.NewCtx(clk), "get", nil); err == nil {
		t.Fatal("tripping call should fail")
	}
	if got := w.Breaker().State(clk.Now()); got != StateOpen {
		t.Fatalf("state = %s, want open", got)
	}

	// Past the open timeout, issue the probe — and cancel it mid-call.
	clk.Sleep(6 * time.Second)
	gc, cancel := context.WithCancel(context.Background())
	src.mode, src.cancel = "cancel", cancel
	if _, err := w.Call(domain.NewCtx(clk).WithContext(gc), "get", nil); err == nil {
		t.Fatal("cancelled probe should fail")
	}

	// Old bug #1: the cancellation was recorded as success, closing the
	// breaker off a probe that never reached the source.
	if got := w.Breaker().State(clk.Now()); got != StateHalfOpen {
		t.Fatalf("state after abandoned probe = %s, want half-open", got)
	}
	// Old bug #2 (the wedge): probing stayed true, so every later call
	// was rejected. A fresh caller must be admitted as the new probe.
	src.mode = "ok"
	s, err := w.Call(domain.NewCtx(clk), "get", nil)
	if err != nil {
		t.Fatalf("breaker wedged half-open: %v", err)
	}
	if _, err := domain.Collect(s); err != nil {
		t.Fatal(err)
	}
	if got := w.Breaker().State(clk.Now()); got != StateClosed {
		t.Fatalf("state after successful fresh probe = %s, want closed", got)
	}
	if m := w.Breaker().Metrics(); m.AbandonedProbes != 1 {
		t.Errorf("AbandonedProbes = %d, want 1", m.AbandonedProbes)
	}
}

// TestWrapperOverloadFailsFast: an admission shed (ErrOverloaded) must
// not be retried — retrying into an overloaded server deepens the
// overload — and must not charge the breaker, even though the error also
// wraps ErrUnavailable for the CIM's degrade-to-cache path.
func TestWrapperOverloadFailsFast(t *testing.T) {
	src := &moodyDomain{mode: "overload"}
	p := testPolicy()
	w := Wrap(src, p)
	ctx := domain.NewCtx(vclock.NewVirtual(0))

	start := ctx.Clock.Now()
	_, err := w.Call(ctx, "get", nil)
	if !domain.IsOverloaded(err) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if src.calls != 1 {
		t.Fatalf("overloaded call attempted %d times, want 1 (no retry)", src.calls)
	}
	if ctx.Clock.Now() != start {
		t.Fatalf("overload charged %s of backoff, want none", ctx.Clock.Now()-start)
	}
	if got := w.Breaker().State(ctx.Clock.Now()); got != StateClosed {
		t.Fatalf("overload affected the breaker: %s", got)
	}
	m := w.Metrics()
	if m.Attempts != 1 || m.Retries != 0 || m.Failures != 1 {
		t.Errorf("metrics = %+v", m)
	}
}
