package resilience

import (
	"errors"
	"testing"
	"time"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

// TestBreakerLifecycle drives the full closed→open→half-open→closed cycle
// and checks every transition and counter along the way.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: sec(10), HalfOpenSuccesses: 1})

	// Closed: failures below the threshold keep it closed; a success
	// resets the consecutive count.
	steps := []struct {
		at   time.Duration
		ok   bool
		want BreakerState
	}{
		{sec(1), false, StateClosed},
		{sec(2), false, StateClosed},
		{sec(3), true, StateClosed}, // resets the streak
		{sec(4), false, StateClosed},
		{sec(5), false, StateClosed},
		{sec(6), false, StateOpen}, // third consecutive failure trips
	}
	for _, s := range steps {
		if err := b.Allow(s.at); err != nil {
			t.Fatalf("Allow(%v) rejected while closed: %v", s.at, err)
		}
		b.Record(s.at, s.ok)
		if got := b.State(s.at); got != s.want {
			t.Fatalf("after Record(%v, %v): state %s, want %s", s.at, s.ok, got, s.want)
		}
	}

	// Open: rejects without calling.
	if err := b.Allow(sec(7)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}

	// Open timeout elapses → half-open; the probe succeeds → closed.
	if got := b.State(sec(16)); got != StateHalfOpen {
		t.Fatalf("state after timeout = %s, want half-open", got)
	}
	if err := b.Allow(sec(16)); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(sec(16), true)
	if got := b.State(sec(16)); got != StateClosed {
		t.Fatalf("state after probe success = %s, want closed", got)
	}

	m := b.Metrics()
	if m.Trips != 1 || m.Probes != 1 || m.ProbeFailures != 0 || m.Rejections != 1 {
		t.Errorf("metrics = %+v", m)
	}
	wantTransitions := []Transition{
		{At: sec(6), From: StateClosed, To: StateOpen},
		{At: sec(16), From: StateOpen, To: StateHalfOpen},
		{At: sec(16), From: StateHalfOpen, To: StateClosed},
	}
	if len(m.Transitions) != len(wantTransitions) {
		t.Fatalf("transitions = %v, want %v", m.Transitions, wantTransitions)
	}
	for i, tr := range m.Transitions {
		if tr != wantTransitions[i] {
			t.Errorf("transition %d = %v, want %v", i, tr, wantTransitions[i])
		}
	}
}

// TestBreakerHalfOpenSingleProbe pins the half-open invariant: exactly
// one probe in flight; everyone else is rejected until it reports.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: sec(5)})
	if err := b.Allow(0); err != nil {
		t.Fatal(err)
	}
	b.Record(0, false) // trips immediately
	if got := b.State(sec(6)); got != StateHalfOpen {
		t.Fatalf("state = %s, want half-open", got)
	}

	if err := b.Allow(sec(6)); err != nil {
		t.Fatalf("first half-open caller must be admitted as probe: %v", err)
	}
	// While the probe is in flight, every other caller is rejected.
	for i := 0; i < 3; i++ {
		if err := b.Allow(sec(6)); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("concurrent half-open caller %d admitted alongside probe", i)
		}
	}
	m := b.Metrics()
	if m.Probes != 1 {
		t.Errorf("probes = %d, want exactly 1", m.Probes)
	}
	if m.Rejections != 3 {
		t.Errorf("rejections = %d, want 3", m.Rejections)
	}

	// Probe failure re-opens; the next timeout admits exactly one new probe.
	b.Record(sec(7), false)
	if got := b.State(sec(7)); got != StateOpen {
		t.Fatalf("state after probe failure = %s, want open", got)
	}
	m = b.Metrics()
	if m.ProbeFailures != 1 || m.Trips != 2 {
		t.Errorf("metrics after failed probe = %+v", m)
	}
	if err := b.Allow(sec(13)); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(sec(13), true)
	if got := b.State(sec(13)); got != StateClosed {
		t.Fatalf("state after second probe success = %s, want closed", got)
	}
}

// TestBreakerHalfOpenSuccessQuota checks HalfOpenSuccesses > 1: the
// breaker closes only after the configured number of consecutive
// successful probes.
func TestBreakerHalfOpenSuccessQuota(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: sec(1), HalfOpenSuccesses: 2})
	b.Allow(0)
	b.Record(0, false)

	if err := b.Allow(sec(2)); err != nil {
		t.Fatal(err)
	}
	b.Record(sec(2), true)
	if got := b.State(sec(2)); got != StateHalfOpen {
		t.Fatalf("one of two successes should keep it half-open, got %s", got)
	}
	if err := b.Allow(sec(3)); err != nil {
		t.Fatal(err)
	}
	b.Record(sec(3), true)
	if got := b.State(sec(3)); got != StateClosed {
		t.Fatalf("second success should close, got %s", got)
	}
}

// TestBreakerDisabled: FailureThreshold 0 turns the breaker off entirely.
func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 100; i++ {
		if err := b.Allow(sec(i)); err != nil {
			t.Fatalf("disabled breaker rejected call %d", i)
		}
		b.Record(sec(i), false)
	}
	if got := b.State(sec(100)); got != StateClosed {
		t.Errorf("disabled breaker left closed state: %s", got)
	}
	if m := b.Metrics(); m.Trips != 0 || len(m.Transitions) != 0 {
		t.Errorf("disabled breaker recorded activity: %+v", m)
	}
}

// TestBreakerStragglerAfterTrip: a Record arriving for a call admitted
// before the trip must not corrupt the open state.
func TestBreakerStragglerAfterTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: sec(10)})
	b.Allow(0)
	b.Allow(0) // hypothetical concurrent call admitted while closed
	b.Record(0, false)
	if got := b.State(sec(1)); got != StateOpen {
		t.Fatalf("state = %s", got)
	}
	b.Record(sec(1), true) // straggler success must not close an open breaker
	if got := b.State(sec(1)); got != StateOpen {
		t.Errorf("straggler Record changed open state to %s", got)
	}
}

// TestBreakerAbandonFreesProbeSlot is the regression test for the
// half-open wedge: a probe whose caller gave up (context cancellation,
// query deadline, admission shed) used to leave probing=true forever,
// rejecting every subsequent call. Abandon must free the slot without
// recording a verdict either way.
func TestBreakerAbandonFreesProbeSlot(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: sec(5)})
	b.Allow(0)
	b.Record(0, false) // trip

	if err := b.Allow(sec(6)); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Abandon(sec(6)) // probe cancelled before the source answered
	if got := b.State(sec(6)); got != StateHalfOpen {
		t.Fatalf("state after abandoned probe = %s, want half-open", got)
	}
	// The slot must be free: the next caller is admitted as a fresh probe
	// instead of being rejected forever.
	if err := b.Allow(sec(7)); err != nil {
		t.Fatalf("breaker wedged: post-abandon probe rejected: %v", err)
	}
	b.Record(sec(7), true)
	if got := b.State(sec(7)); got != StateClosed {
		t.Fatalf("state after successful fresh probe = %s, want closed", got)
	}
	m := b.Metrics()
	if m.AbandonedProbes != 1 || m.Probes != 2 || m.ProbeFailures != 0 {
		t.Errorf("metrics = %+v, want 1 abandoned of 2 probes, 0 failures", m)
	}
}

// TestBreakerStaleVerdictAfterAbandon: once a probe is abandoned, a
// straggling Record for it (or for a call admitted while closed, arriving
// after the open→half-open advance) must not move the state machine —
// only an admitted, un-abandoned probe's verdict counts.
func TestBreakerStaleVerdictAfterAbandon(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: sec(5)})
	b.Allow(0)
	b.Record(0, false)

	if err := b.Allow(sec(6)); err != nil {
		t.Fatal(err)
	}
	b.Abandon(sec(6))
	b.Record(sec(6), true) // stale success: must not close the breaker
	if got := b.State(sec(6)); got != StateHalfOpen {
		t.Fatalf("stale success closed the breaker: %s", got)
	}
	b.Record(sec(6), false) // stale failure: must not re-open either
	if got := b.State(sec(6)); got != StateHalfOpen {
		t.Fatalf("stale failure moved the breaker: %s", got)
	}
	// Abandon outside half-open (closed breaker) is a no-op.
	b2 := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: sec(5)})
	b2.Abandon(0)
	if got := b2.State(0); got != StateClosed {
		t.Fatalf("abandon on closed breaker moved it: %s", got)
	}
}
