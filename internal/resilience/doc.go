// Package resilience hardens the mediator's call path against the
// failure modes the paper's live-Internet sources exhibit: >10× latency
// variance, transient errors, and temporary unreachability. It provides a
// policy-driven wrapper around any domain.Domain that adds per-call
// deadlines, bounded retry with decorrelated exponential backoff, a
// per-domain circuit breaker with half-open probing, and mid-stream resume
// after truncated answer streams. Cache degradation — serving stale or
// partial answers when a source stays down — lives above this layer, in
// the CIM: the wrapper's job is to fail fast and predictably so the CIM's
// fallback can take over.
//
// All randomness is derived by hashing a seed with the call key, so a
// given workload observes an identical retry schedule on every run; the
// deterministic virtual clock does the rest.
//
// When an obs.Observer is installed (SetObserver, done by core.System
// for every registered domain), the wrapper reports per-domain breaker
// state and transitions, rejections, retries, timeouts, and stream
// resumes, and tags the active call span.
package resilience
