package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports that the circuit breaker rejected a call without
// attempting it. Callers see it wrapped in domain.ErrUnavailable, so the
// CIM's cache fallback treats an open breaker exactly like a down source.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerState is the circuit breaker's state machine position.
type BreakerState int

// Breaker states: closed (calls flow), open (calls rejected), half-open
// (exactly one probe call allowed through).
const (
	StateClosed BreakerState = iota
	StateOpen
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "?"
}

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive retryable failures trip
	// the breaker (0 disables the breaker entirely).
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before allowing a
	// half-open probe, measured on the execution clock.
	OpenTimeout time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close the
	// breaker again (default 1).
	HalfOpenSuccesses int
}

// Transition is one recorded state change, for tests and dashboards.
type Transition struct {
	At       time.Duration
	From, To BreakerState
}

// BreakerMetrics counts breaker activity.
type BreakerMetrics struct {
	// Trips counts closed→open (and half-open→open) transitions.
	Trips int
	// Probes counts half-open probe calls allowed through.
	Probes int
	// ProbeFailures counts probes that failed and re-opened the breaker.
	ProbeFailures int
	// Rejections counts calls rejected while open (or while another
	// half-open probe was in flight).
	Rejections int
	// AbandonedProbes counts half-open probes that ended without a source
	// verdict (context cancellation, query deadline, admission shed) and
	// freed the probe slot without closing or re-opening the breaker.
	AbandonedProbes int
	// Transitions is the full state-change history in clock order.
	Transitions []Transition
}

// Breaker is a per-domain circuit breaker. Time is supplied by the caller
// (execution-clock readings), keeping the state machine deterministic
// under the virtual clock. The half-open state admits exactly one probe
// at a time: concurrent calls are rejected until the probe reports.
type Breaker struct {
	mu        sync.Mutex
	cfg       BreakerConfig
	state     BreakerState
	failures  int // consecutive retryable failures while closed
	successes int // consecutive probe successes while half-open
	openedAt  time.Duration
	probing   bool // a half-open probe is in flight
	metrics   BreakerMetrics
	// onTransition, when set, observes every state change. It runs with
	// the breaker's lock held, so it must not call back into the breaker.
	onTransition func(at time.Duration, from, to BreakerState)
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.HalfOpenSuccesses <= 0 {
		cfg.HalfOpenSuccesses = 1
	}
	return &Breaker{cfg: cfg}
}

// State returns the current state, advancing open→half-open if the open
// timeout has elapsed at clock reading now.
func (b *Breaker) State(now time.Duration) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	return b.state
}

// Metrics returns a snapshot of the activity counters.
func (b *Breaker) Metrics() BreakerMetrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.metrics
	out.Transitions = append([]Transition(nil), b.metrics.Transitions...)
	return out
}

// SetTransitionHook installs a state-change observer (the mediator wires
// it to the breaker-state gauge). The hook runs with the breaker's lock
// held and must not call back into the breaker; lock-free sinks (atomic
// gauges, counters) are safe.
func (b *Breaker) SetTransitionHook(fn func(at time.Duration, from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onTransition = fn
}

func (b *Breaker) transitionLocked(now time.Duration, to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.metrics.Transitions = append(b.metrics.Transitions, Transition{At: now, From: from, To: to})
	b.state = to
	if b.onTransition != nil {
		b.onTransition(now, from, to)
	}
}

// advanceLocked moves open→half-open once the open timeout elapses.
func (b *Breaker) advanceLocked(now time.Duration) {
	if b.state == StateOpen && now >= b.openedAt+b.cfg.OpenTimeout {
		b.transitionLocked(now, StateHalfOpen)
		b.successes = 0
		b.probing = false
	}
}

// Allow asks whether a call may proceed at clock reading now. It returns
// ErrBreakerOpen when the breaker rejects the call. In the half-open
// state the first caller is admitted as the probe; concurrent callers are
// rejected until the probe's Record.
func (b *Breaker) Allow(now time.Duration) error {
	if b.cfg.FailureThreshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	switch b.state {
	case StateClosed:
		return nil
	case StateHalfOpen:
		if b.probing {
			b.metrics.Rejections++
			return ErrBreakerOpen
		}
		b.probing = true
		b.metrics.Probes++
		return nil
	default: // StateOpen
		b.metrics.Rejections++
		return ErrBreakerOpen
	}
}

// Record reports the outcome of a call previously admitted by Allow.
// ok=true is a success; ok=false a retryable failure (non-retryable
// errors should be recorded as successes: the source answered).
func (b *Breaker) Record(now time.Duration, ok bool) {
	if b.cfg.FailureThreshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	switch b.state {
	case StateClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.transitionLocked(now, StateOpen)
			b.openedAt = now
			b.failures = 0
			b.metrics.Trips++
		}
	case StateHalfOpen:
		if !b.probing {
			return // the probe was abandoned; this verdict is stale
		}
		b.probing = false
		if ok {
			b.successes++
			if b.successes >= b.cfg.HalfOpenSuccesses {
				b.transitionLocked(now, StateClosed)
				b.failures = 0
			}
			return
		}
		b.successes = 0
		b.transitionLocked(now, StateOpen)
		b.openedAt = now
		b.metrics.Trips++
		b.metrics.ProbeFailures++
	default: // StateOpen: a straggler from before the trip; ignore.
	}
}

// Abandon reports that a call admitted by Allow ended without a source
// verdict: cancelled by its context, cut off by the query deadline, or
// shed by admission control before any source was contacted. Nothing is
// recorded as success or failure — the source never answered — but in the
// half-open state the probe slot is freed so the next caller may probe.
// Without Abandon, a probe abandoned by cancellation would leave
// probing=true forever, wedging the breaker half-open and rejecting every
// subsequent call.
func (b *Breaker) Abandon(now time.Duration) {
	if b.cfg.FailureThreshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked(now)
	if b.state == StateHalfOpen && b.probing {
		b.probing = false
		b.metrics.AbandonedProbes++
	}
}
