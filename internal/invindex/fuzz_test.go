package invindex

import (
	"strconv"
	"strings"
	"testing"

	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/term"
)

// parseArgSpec turns a comma-separated argument spec into template terms
// (mirror of the memo fuzz test's classifier): a token in single quotes
// is a bound string, a token of digits a bound integer, and anything
// else a variable — with dots after the first character read as an
// attribute path (X.name).
func parseArgSpec(spec string) []term.Term {
	if spec == "" {
		return nil
	}
	toks := strings.Split(spec, ",")
	args := make([]term.Term, 0, len(toks))
	for _, tok := range toks {
		if len(tok) >= 2 && tok[0] == '\'' && tok[len(tok)-1] == '\'' {
			args = append(args, term.C(term.Str(tok[1:len(tok)-1])))
			continue
		}
		if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
			args = append(args, term.C(term.Int(n)))
			continue
		}
		parts := strings.Split(tok, ".")
		args = append(args, term.V(parts[0], parts[1:]...))
	}
	return args
}

// renameTerms applies an injective renaming to the variables.
func renameTerms(args []term.Term) []term.Term {
	seen := map[string]string{}
	out := make([]term.Term, len(args))
	for i, a := range args {
		out[i] = a
		if a.IsConst() {
			continue
		}
		fresh, ok := seen[a.Var]
		if !ok {
			fresh = "renamed_" + strconv.Itoa(len(seen)) + "_" + a.Var
			seen[a.Var] = fresh
		}
		out[i].Var = fresh
	}
	return out
}

// groundCall builds a ground call of the template's relevance class.
func groundCall(dom, fn string, args []term.Term) domain.Call {
	vals := make([]term.Value, len(args))
	for i, a := range args {
		if a.IsConst() {
			vals[i] = a.Const
		} else {
			vals[i] = term.Str("g:" + a.Var)
		}
	}
	return domain.Call{Domain: dom, Function: fn, Args: vals}
}

// FuzzIndexKey checks, over arbitrary domain/function names and argument
// specs, (1) the ShapeKey canonicalization invariants — determinism,
// α-equivalence under injective renaming, separation when the equality
// structure or a bound value changes — and (2) the differential oracle
// against the pre-index linear scan: a bucket lookup returns exactly the
// invariants whose cheap dispatch check (Relevant) the linear scan would
// have passed, so indexing can never miss a candidate the scan would
// have unified.
func FuzzIndexKey(f *testing.F) {
	f.Add("avis", "frames_to_objects", "V,F,L")
	f.Add("avis", "objects", "'rope'")
	f.Add("avis", "frames_to_objects", "'rope',0,159")
	f.Add("d", "f", "X,X,Y")
	f.Add("ingres", "equal", "'cast','role',P.name")
	f.Add("d", "f", "")
	f.Add("syn3", "lookup41", "X")
	f.Fuzz(func(t *testing.T, dom, fn, spec string) {
		args := parseArgSpec(spec)
		tp := lang.CallTemplate{Domain: dom, Function: fn, Args: args}
		key := ShapeKey(&tp)

		// Determinism.
		if again := ShapeKey(&tp); again != key {
			t.Fatalf("ShapeKey not deterministic: %q vs %q", key, again)
		}
		// α-equivalence: injective renaming preserves the key.
		renamed := lang.CallTemplate{Domain: dom, Function: fn, Args: renameTerms(args)}
		if rk := ShapeKey(&renamed); rk != key {
			t.Errorf("injective renaming changed the shape key:\n  %q\n  %q", key, rk)
		}
		// Merging two distinct variables changes the equality structure.
		varIdx := map[string][]int{}
		var order []string
		for i, a := range args {
			if a.IsConst() {
				continue
			}
			if _, ok := varIdx[a.Var]; !ok {
				order = append(order, a.Var)
			}
			varIdx[a.Var] = append(varIdx[a.Var], i)
		}
		if len(order) >= 2 {
			merged := make([]term.Term, len(args))
			copy(merged, args)
			for _, i := range varIdx[order[1]] {
				merged[i].Var = order[0]
				merged[i].Path = args[varIdx[order[0]][0]].Path
			}
			mt := lang.CallTemplate{Domain: dom, Function: fn, Args: merged}
			if ShapeKey(&mt) == key {
				t.Errorf("merging vars %q and %q did not change the shape key %q", order[0], order[1], key)
			}
		}
		// Mutating any bound value changes the key.
		for i, a := range args {
			if !a.IsConst() {
				continue
			}
			mutated := make([]term.Term, len(args))
			copy(mutated, args)
			mutated[i] = term.C(term.Str("mutated:" + a.Const.Key()))
			mt := lang.CallTemplate{Domain: dom, Function: fn, Args: mutated}
			if ShapeKey(&mt) == key {
				t.Errorf("mutating bound arg %d did not change the shape key %q", i, key)
			}
		}

		// Differential oracle vs the linear scan. Register the fuzz
		// template in several invariants plus noise of shifted arity and
		// name, then check every bucket lookup returns exactly the
		// relevant invariants, in registration order.
		ix := New()
		alt := lang.CallTemplate{Domain: dom, Function: fn + "_alt", Args: args}
		wider := lang.CallTemplate{Domain: dom, Function: fn, Args: append(append([]term.Term(nil), args...), term.V("Extra"))}
		invs := []*lang.Invariant{
			{Rel: lang.RelEqual, Left: tp, Right: alt},
			{Rel: lang.RelEqual, Left: tp, Right: renamed},
			{Rel: lang.RelEqual, Left: wider, Right: alt},
			{Rel: lang.RelSuperset, Left: tp, Right: wider},
			{Rel: lang.RelSuperset, Left: wider, Right: tp},
			{Rel: lang.RelEqual, Left: alt, Right: alt},
		}
		for _, inv := range invs {
			ix.AddInvariant(inv)
		}
		c := groundCall(dom, fn, args)
		var wantEq, wantSup []*lang.Invariant
		for _, inv := range invs {
			switch inv.Rel {
			case lang.RelEqual:
				if Relevant(&inv.Left, c) || Relevant(&inv.Right, c) {
					wantEq = append(wantEq, inv)
				}
			case lang.RelSuperset:
				if Relevant(&inv.Left, c) {
					wantSup = append(wantSup, inv)
				}
			}
		}
		gotEq := ix.Equalities(KeyOfCall(c))
		gotSup := ix.Supersets(KeyOfCall(c))
		same := func(got, want []*lang.Invariant) bool {
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if !same(gotEq, wantEq) {
			t.Fatalf("equality bucket diverged from the linear scan for %s:\n  got  %d invariants\n  want %d", c, len(gotEq), len(wantEq))
		}
		if !same(gotSup, wantSup) {
			t.Fatalf("superset bucket diverged from the linear scan for %s:\n  got  %d invariants\n  want %d", c, len(gotSup), len(wantSup))
		}
	})
}
