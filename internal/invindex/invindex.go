// Package invindex is the shared invariant discrimination index: a
// by-function index over the registered invariants and over the cached
// calls of the CIM, consulted by every layer that previously scanned
// linearly — the CIM's equality/partial probes and single-flight
// attachment, the rewriter's invariant-aware routing, and the cache-scan
// slow path of candidate search.
//
// The index is keyed on (domain, function, arity), exactly the cheap
// relevance dispatch the matching paths already apply (a template can
// only unify with a call of the same domain, function and arity), so a
// bucket holds precisely the invariants the linear scan would have spent
// a match attempt on and nothing else: consulting the index never
// changes which invariants are tried, only skips the O(N) walk that
// found them. Each registered side additionally carries an
// α-canonicalized argument-shape key (ShapeKey, mirroring the memo's
// key canonicalization) used for bucket introspection and the fuzz
// oracle that proves index lookups never miss a linear-scan candidate.
//
// The index is safe for concurrent use; registration order is preserved
// inside every bucket so matching stays deterministic under the virtual
// clock.
package invindex

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"hermes/internal/domain"
	"hermes/internal/lang"
)

// Key identifies an invariant-side bucket: the relevance class of the
// cheap dispatch check (same domain, function and arity unify or nothing
// does).
type Key struct {
	Domain   string
	Function string
	Arity    int
}

// String renders the bucket key like avis:frames_to_objects/3.
func (k Key) String() string {
	return k.Domain + ":" + k.Function + "/" + strconv.Itoa(k.Arity)
}

// KeyOfCall returns the bucket key of a ground call.
func KeyOfCall(c domain.Call) Key {
	return Key{Domain: c.Domain, Function: c.Function, Arity: len(c.Args)}
}

// KeyOfTemplate returns the bucket key of a call template.
func KeyOfTemplate(t *lang.CallTemplate) Key {
	return Key{Domain: t.Domain, Function: t.Function, Arity: len(t.Args)}
}

// fnKey identifies a cached-call bucket. Cache scans discriminate on
// domain and function only (the historical scan charged per same-function
// entry regardless of arity, with unification rejecting arity mismatches),
// so the entry index must too — it exists to skip the walk over the whole
// store, not to skip entries the scan would have examined.
type fnKey struct {
	domain   string
	function string
}

// ShapeKey is the α-canonicalized argument-structure key of a call
// template: the domain, function and arity followed by one segment per
// argument — the canonical value key for constants, v<i> for bare
// variables numbered in first-occurrence order (so the key captures
// exactly which positions must agree, like memo.KeyOf), and v<i>.path
// for attribute-path terms. Two sides with the same ShapeKey are
// structurally interchangeable up to variable naming.
func ShapeKey(t *lang.CallTemplate) string {
	var b strings.Builder
	b.WriteString(t.Domain)
	b.WriteByte(':')
	b.WriteString(t.Function)
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(len(t.Args)))
	var ids map[string]int
	for _, a := range t.Args {
		b.WriteByte('|')
		if a.IsConst() {
			b.WriteString(a.Const.Key())
			continue
		}
		if ids == nil {
			ids = make(map[string]int)
		}
		id, ok := ids[a.Var]
		if !ok {
			id = len(ids)
			ids[a.Var] = id
		}
		b.WriteByte('v')
		b.WriteString(strconv.Itoa(id))
		for _, p := range a.Path {
			b.WriteByte('.')
			b.WriteString(p)
		}
	}
	return b.String()
}

// callBucket is the insertion-ordered cached-call key list of one
// (domain, function). Removal tombstones in place to keep insertion
// order without O(n) deletes; buckets compact once tombstones dominate.
type callBucket struct {
	keys []string       // insertion order; "" marks a removed slot
	pos  map[string]int // live call key -> index in keys
	dead int
}

func (b *callBucket) add(key string) {
	if _, ok := b.pos[key]; ok {
		return
	}
	b.pos[key] = len(b.keys)
	b.keys = append(b.keys, key)
}

func (b *callBucket) remove(key string) {
	i, ok := b.pos[key]
	if !ok {
		return
	}
	delete(b.pos, key)
	b.keys[i] = ""
	b.dead++
	if b.dead > 16 && b.dead*2 > len(b.keys) {
		live := b.keys[:0]
		for _, k := range b.keys {
			if k != "" {
				b.pos[k] = len(live)
				live = append(live, k)
			}
		}
		b.keys = live
		b.dead = 0
	}
}

// Index is the shared invariant + cached-call discrimination index.
type Index struct {
	invMu sync.RWMutex
	all   []*lang.Invariant         // registration order
	equal map[Key][]*lang.Invariant // RelEqual invariants by either side's key
	super map[Key][]*lang.Invariant // RelSuperset invariants by Left (superset) key
	// shapes holds, per bucket, the ShapeKey of every side registered
	// there (introspection only; the probe path never touches it).
	shapes map[Key][]string

	callMu sync.RWMutex
	calls  map[fnKey]*callBucket
}

// New returns an empty index.
func New() *Index {
	return &Index{
		equal:  make(map[Key][]*lang.Invariant),
		super:  make(map[Key][]*lang.Invariant),
		shapes: make(map[Key][]string),
		calls:  make(map[fnKey]*callBucket),
	}
}

// AddInvariant registers an invariant. Equality invariants are indexed
// under both sides' keys (equality is matched symmetrically); superset
// invariants under the Left (superset) side only, since a call can only
// be served partial answers when it unifies with the superset side. An
// equality invariant whose sides share a bucket key is registered once
// in that bucket, mirroring the linear scan's one match attempt per
// invariant.
func (ix *Index) AddInvariant(inv *lang.Invariant) {
	ix.invMu.Lock()
	defer ix.invMu.Unlock()
	ix.all = append(ix.all, inv)
	switch inv.Rel {
	case lang.RelEqual:
		lk, rk := KeyOfTemplate(&inv.Left), KeyOfTemplate(&inv.Right)
		ix.equal[lk] = append(ix.equal[lk], inv)
		ix.shapes[lk] = append(ix.shapes[lk], ShapeKey(&inv.Left))
		if rk != lk {
			ix.equal[rk] = append(ix.equal[rk], inv)
			ix.shapes[rk] = append(ix.shapes[rk], ShapeKey(&inv.Right))
		}
	case lang.RelSuperset:
		lk := KeyOfTemplate(&inv.Left)
		ix.super[lk] = append(ix.super[lk], inv)
		ix.shapes[lk] = append(ix.shapes[lk], ShapeKey(&inv.Left))
	}
}

// Equalities returns the equality invariants relevant to a call — every
// RelEqual invariant either of whose sides shares the call's (domain,
// function, arity) — in registration order, each exactly once. The
// returned slice header is shared (buckets are append-only), so a probe
// allocates nothing; callers must not mutate it.
func (ix *Index) Equalities(k Key) []*lang.Invariant {
	ix.invMu.RLock()
	bucket := ix.equal[k]
	ix.invMu.RUnlock()
	return bucket
}

// Supersets returns the superset invariants whose superset (Left) side is
// relevant to a call, in registration order. Like Equalities, the slice
// header is shared and must not be mutated.
func (ix *Index) Supersets(k Key) []*lang.Invariant {
	ix.invMu.RLock()
	bucket := ix.super[k]
	ix.invMu.RUnlock()
	return bucket
}

// All returns the registered invariants in registration order. The slice
// is append-only and shared; callers must not mutate it.
func (ix *Index) All() []*lang.Invariant {
	ix.invMu.RLock()
	defer ix.invMu.RUnlock()
	return ix.all
}

// Len returns the number of registered invariants.
func (ix *Index) Len() int {
	ix.invMu.RLock()
	defer ix.invMu.RUnlock()
	return len(ix.all)
}

// Covered reports whether any invariant could apply to calls of the
// given (domain, function, arity): the rewriter's routing enumeration
// uses it to branch CIM-vs-direct only where an invariant could make the
// cache route serve a different call's answers.
func (ix *Index) Covered(dom, fn string, arity int) bool {
	k := Key{Domain: dom, Function: fn, Arity: arity}
	ix.invMu.RLock()
	defer ix.invMu.RUnlock()
	return len(ix.equal[k]) > 0 || len(ix.super[k]) > 0
}

// AddCall records a cached call in the entry index (CIM store).
func (ix *Index) AddCall(c domain.Call) {
	k := fnKey{domain: c.Domain, function: c.Function}
	ix.callMu.Lock()
	b := ix.calls[k]
	if b == nil {
		b = &callBucket{pos: make(map[string]int)}
		ix.calls[k] = b
	}
	b.add(c.Key())
	ix.callMu.Unlock()
}

// RemoveCall drops a cached call from the entry index (CIM eviction).
func (ix *Index) RemoveCall(c domain.Call) {
	k := fnKey{domain: c.Domain, function: c.Function}
	ix.callMu.Lock()
	if b := ix.calls[k]; b != nil {
		b.remove(c.Key())
		if len(b.pos) == 0 {
			delete(ix.calls, k)
		}
	}
	ix.callMu.Unlock()
}

// ResetCalls replaces the whole entry index (CIM clear or snapshot load).
func (ix *Index) ResetCalls(calls []domain.Call) {
	fresh := make(map[fnKey]*callBucket)
	for _, c := range calls {
		k := fnKey{domain: c.Domain, function: c.Function}
		b := fresh[k]
		if b == nil {
			b = &callBucket{pos: make(map[string]int)}
			fresh[k] = b
		}
		b.add(c.Key())
	}
	ix.callMu.Lock()
	ix.calls = fresh
	ix.callMu.Unlock()
}

// CallKeys returns the cached call keys of one (domain, function) in
// insertion order — the candidate set a cache scan for a non-ground
// invariant side must examine. The copy is taken under the read lock so
// no lock is held while the caller charges per-entry scan costs.
func (ix *Index) CallKeys(dom, fn string) []string {
	k := fnKey{domain: dom, function: fn}
	ix.callMu.RLock()
	b := ix.calls[k]
	if b == nil || len(b.pos) == 0 {
		ix.callMu.RUnlock()
		return nil
	}
	out := make([]string, 0, len(b.pos))
	for _, key := range b.keys {
		if key != "" {
			out = append(out, key)
		}
	}
	ix.callMu.RUnlock()
	return out
}

// BucketInfo is one invariant bucket's introspection row for the debug
// endpoint: the relevance key, the invariants registered under it per
// relation, the distinct argument shapes among them, and how many calls
// of the bucket's function the cache currently holds.
type BucketInfo struct {
	Key         Key
	Equalities  []*lang.Invariant
	Supersets   []*lang.Invariant
	Shapes      int
	CachedCalls int
}

// Buckets returns every invariant bucket, sorted by key.
func (ix *Index) Buckets() []BucketInfo {
	ix.invMu.RLock()
	keys := make(map[Key]bool, len(ix.equal)+len(ix.super))
	for k := range ix.equal {
		keys[k] = true
	}
	for k := range ix.super {
		keys[k] = true
	}
	out := make([]BucketInfo, 0, len(keys))
	for k := range keys {
		info := BucketInfo{
			Key:        k,
			Equalities: append([]*lang.Invariant(nil), ix.equal[k]...),
			Supersets:  append([]*lang.Invariant(nil), ix.super[k]...),
		}
		shapes := map[string]bool{}
		for _, s := range ix.shapes[k] {
			shapes[s] = true
		}
		info.Shapes = len(shapes)
		out = append(out, info)
	}
	ix.invMu.RUnlock()

	ix.callMu.RLock()
	for i := range out {
		if b := ix.calls[fnKey{domain: out[i].Key.Domain, function: out[i].Key.Function}]; b != nil {
			out[i].CachedCalls = len(b.pos)
		}
	}
	ix.callMu.RUnlock()

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		return a.Arity < b.Arity
	})
	return out
}

// Relevant reports whether a template passes the cheap dispatch check
// against a call: same domain, function and arity. It is the linear
// scan's filter, exported so differential tests can state the index
// oracle ("a bucket holds exactly the relevant invariants") in one
// place.
func Relevant(t *lang.CallTemplate, c domain.Call) bool {
	return t.Domain == c.Domain && t.Function == c.Function && len(t.Args) == len(c.Args)
}
