package invindex

import (
	"testing"

	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/term"
)

func tmpl(dom, fn string, args ...term.Term) lang.CallTemplate {
	return lang.CallTemplate{Domain: dom, Function: fn, Args: args}
}

func eq(l, r lang.CallTemplate) *lang.Invariant {
	return &lang.Invariant{Rel: lang.RelEqual, Left: l, Right: r}
}

func sup(l, r lang.CallTemplate) *lang.Invariant {
	return &lang.Invariant{Rel: lang.RelSuperset, Left: l, Right: r}
}

func TestInvariantBuckets(t *testing.T) {
	ix := New()
	// Equality across two functions: registered under both sides' keys.
	cross := eq(tmpl("avis", "actors", term.V("V")), tmpl("avis", "cast_members", term.V("V")))
	// Equality whose sides share a key: registered once in that bucket.
	same := eq(
		tmpl("avis", "frames_to_objects", term.V("V"), term.C(term.Int(0)), term.C(term.Int(159))),
		tmpl("avis", "frames_to_objects", term.V("V"), term.C(term.Int(0)), term.C(term.Int(200))),
	)
	// Superset: Left key only.
	wide := sup(
		tmpl("avis", "objects", term.V("V")),
		tmpl("avis", "frames_to_objects", term.V("V"), term.V("F"), term.V("L")),
	)
	for _, inv := range []*lang.Invariant{cross, same, wide} {
		ix.AddInvariant(inv)
	}

	if got := ix.Equalities(Key{"avis", "actors", 1}); len(got) != 1 || got[0] != cross {
		t.Fatalf("actors bucket = %v, want [cross]", got)
	}
	if got := ix.Equalities(Key{"avis", "cast_members", 1}); len(got) != 1 || got[0] != cross {
		t.Fatalf("cast_members bucket = %v, want [cross]", got)
	}
	if got := ix.Equalities(Key{"avis", "frames_to_objects", 3}); len(got) != 1 || got[0] != same {
		t.Fatalf("shared-key equality registered %d times, want once", len(got))
	}
	if got := ix.Supersets(Key{"avis", "objects", 1}); len(got) != 1 || got[0] != wide {
		t.Fatalf("objects superset bucket = %v, want [wide]", got)
	}
	if got := ix.Supersets(Key{"avis", "frames_to_objects", 3}); len(got) != 0 {
		t.Fatalf("superset indexed under its subset side: %v", got)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	if !ix.Covered("avis", "cast_members", 1) || ix.Covered("avis", "cast_members", 2) || ix.Covered("ingres", "all", 1) {
		t.Fatal("Covered does not match the registered buckets")
	}
}

func TestProbesAllocateNothing(t *testing.T) {
	ix := New()
	ix.AddInvariant(eq(tmpl("avis", "actors", term.V("V")), tmpl("avis", "cast_members", term.V("V"))))
	ix.AddInvariant(sup(tmpl("avis", "objects", term.V("V")), tmpl("avis", "frames_to_objects", term.V("V"), term.V("F"), term.V("L"))))
	k := Key{"avis", "actors", 1}
	sk := Key{"avis", "objects", 1}
	if n := testing.AllocsPerRun(100, func() {
		if len(ix.Equalities(k)) != 1 || len(ix.Supersets(sk)) != 1 {
			t.Fatal("probe missed its bucket")
		}
	}); n != 0 {
		t.Fatalf("bucket probes allocated %.1f times per run, want 0", n)
	}
}

func call(dom, fn string, n int) domain.Call {
	args := make([]term.Value, n)
	for i := range args {
		args[i] = term.Int(int64(i))
	}
	return domain.Call{Domain: dom, Function: fn, Args: args}
}

func TestCallIndex(t *testing.T) {
	ix := New()
	var keys []string
	for i := 0; i < 5; i++ {
		c := call("avis", "frames_to_objects", i)
		ix.AddCall(c)
		keys = append(keys, c.Key())
	}
	ix.AddCall(call("ingres", "all", 1))

	got := ix.CallKeys("avis", "frames_to_objects")
	if len(got) != 5 {
		t.Fatalf("CallKeys returned %d keys, want 5", len(got))
	}
	for i, k := range got {
		if k != keys[i] {
			t.Fatalf("CallKeys[%d] = %q, want %q (insertion order)", i, k, keys[i])
		}
	}
	// Re-adding is idempotent.
	ix.AddCall(call("avis", "frames_to_objects", 2))
	if n := len(ix.CallKeys("avis", "frames_to_objects")); n != 5 {
		t.Fatalf("re-add grew the bucket to %d", n)
	}
	ix.RemoveCall(call("avis", "frames_to_objects", 2))
	got = ix.CallKeys("avis", "frames_to_objects")
	if len(got) != 4 {
		t.Fatalf("after remove: %d keys, want 4", len(got))
	}
	ix.ResetCalls([]domain.Call{call("spatial", "near", 2)})
	if ix.CallKeys("avis", "frames_to_objects") != nil {
		t.Fatal("ResetCalls kept stale buckets")
	}
	if n := len(ix.CallKeys("spatial", "near")); n != 1 {
		t.Fatalf("ResetCalls lost the fresh call: %d keys", n)
	}
}

func TestCallBucketCompaction(t *testing.T) {
	ix := New()
	for i := 0; i < 100; i++ {
		ix.AddCall(call("d", "f", i))
	}
	for i := 0; i < 80; i++ {
		ix.RemoveCall(call("d", "f", i))
	}
	got := ix.CallKeys("d", "f")
	if len(got) != 20 {
		t.Fatalf("after removals: %d keys, want 20", len(got))
	}
	for i, k := range got {
		if want := call("d", "f", 80+i).Key(); k != want {
			t.Fatalf("compaction broke insertion order: [%d] = %q, want %q", i, k, want)
		}
	}
	// Removing every call deletes the bucket.
	for i := 80; i < 100; i++ {
		ix.RemoveCall(call("d", "f", i))
	}
	if ix.CallKeys("d", "f") != nil {
		t.Fatal("empty bucket survived")
	}
}

func TestBuckets(t *testing.T) {
	ix := New()
	ix.AddInvariant(eq(tmpl("avis", "actors", term.V("V")), tmpl("avis", "cast_members", term.V("V"))))
	ix.AddInvariant(eq(tmpl("avis", "actors", term.C(term.Str("rope"))), tmpl("avis", "cast_members", term.C(term.Str("rope")))))
	ix.AddInvariant(sup(tmpl("avis", "objects", term.V("V")), tmpl("avis", "frames_to_objects", term.V("V"), term.V("F"), term.V("L"))))
	ix.AddCall(call("avis", "actors", 1))

	bs := ix.Buckets()
	if len(bs) != 3 {
		t.Fatalf("got %d buckets, want 3 (actors, cast_members, objects)", len(bs))
	}
	byKey := map[string]BucketInfo{}
	for _, b := range bs {
		byKey[b.Key.String()] = b
	}
	a := byKey["avis:actors/1"]
	if len(a.Equalities) != 2 || a.Shapes != 2 || a.CachedCalls != 1 {
		t.Fatalf("actors bucket = %+v, want 2 equalities, 2 shapes, 1 cached call", a)
	}
	o := byKey["avis:objects/1"]
	if len(o.Supersets) != 1 || o.CachedCalls != 0 {
		t.Fatalf("objects bucket = %+v, want 1 superset, 0 cached calls", o)
	}
	// Sorted by key.
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Key.String() >= bs[i].Key.String() {
			t.Fatalf("buckets not sorted: %s before %s", bs[i-1].Key, bs[i].Key)
		}
	}
}

func TestShapeKey(t *testing.T) {
	cases := []struct {
		tmpl lang.CallTemplate
		want string
	}{
		{tmpl("avis", "frames_to_objects", term.V("V"), term.V("F"), term.V("L")), "avis:frames_to_objects/3|v0|v1|v2"},
		{tmpl("avis", "frames_to_objects", term.V("A"), term.V("B"), term.V("A")), "avis:frames_to_objects/3|v0|v1|v0"},
		{tmpl("avis", "objects", term.C(term.Str("rope"))), "avis:objects/1|" + term.Str("rope").Key()},
		{tmpl("ingres", "equal", term.V("P", "name")), "ingres:equal/1|v0.name"},
		{tmpl("d", "f"), "d:f/0"},
	}
	for _, c := range cases {
		if got := ShapeKey(&c.tmpl); got != c.want {
			t.Errorf("ShapeKey(%v) = %q, want %q", c.tmpl, got, c.want)
		}
	}
}

func TestKeyStrings(t *testing.T) {
	c := call("avis", "actors", 2)
	if KeyOfCall(c).String() != "avis:actors/2" {
		t.Fatalf("KeyOfCall = %s", KeyOfCall(c))
	}
	tp := tmpl("avis", "actors", term.V("V"))
	if KeyOfTemplate(&tp) != (Key{"avis", "actors", 1}) {
		t.Fatalf("KeyOfTemplate = %v", KeyOfTemplate(&tp))
	}
	if !Relevant(&tp, call("avis", "actors", 1)) || Relevant(&tp, c) {
		t.Fatal("Relevant dispatch check broken")
	}
}
