package engine

import (
	"testing"

	"hermes/internal/cim"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// cimHarness wires an engine whose "d" domain routes through a CIM.
func cimHarness(t *testing.T) (*Engine, *cim.Manager, *domaintest.Domain, func(string, string) *rewrite.Plan) {
	t.Helper()
	d := domaintest.New("d")
	d.Define("gen", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Int(1), term.Int(2), term.Int(3)}, nil
		}})
	d.Define("members", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			out := make([]term.Value, 50)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	mgr := cim.New(reg, cim.Config{ParallelActual: true})
	eng := New(reg, mgr, Config{MaxDepth: 8}, nil)
	planFn := func(progSrc, querySrc string) *rewrite.Plan {
		prog, err := lang.ParseProgram(progSrc)
		if err != nil {
			t.Fatal(err)
		}
		q, err := lang.ParseQuery(querySrc)
		if err != nil {
			t.Fatal(err)
		}
		rw := rewrite.New(prog, rewrite.Config{CIMDomains: map[string]bool{"d": true}}, reg)
		plans, err := rw.Plans(q)
		if err != nil {
			t.Fatal(err)
		}
		return plans[0]
	}
	return eng, mgr, d, planFn
}

// TestMembershipThroughCIMStoresIncomplete: a membership probe through the
// CIM prunes the stream early; the CIM must record the result as an
// incomplete entry, and a later full query completes it.
func TestMembershipThroughCIMStoresIncomplete(t *testing.T) {
	eng, mgr, d, plan := cimHarness(t)
	// X from gen (1..3) is probed against members (0..49): each probe scans
	// members until a match, pruning the remainder.
	p := plan(`v(X) :- in(X, d:gen()), in(X, d:members()).`, "?- v(X).")
	cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), p)
	if err != nil {
		t.Fatal(err)
	}
	answers, _, err := CollectAll(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("answers = %v", answers)
	}
	e, ok := mgr.Lookup(domain.Call{Domain: "d", Function: "members"})
	if !ok {
		t.Fatal("membership call not cached at all")
	}
	if e.Complete {
		t.Error("pruned membership stream stored as complete")
	}
	// The cached partial answers serve the next probe's prefix; on a probe
	// for a value past the cached prefix, the actual call completes it.
	callsBefore := d.CallCount("members")
	p2 := plan(`w(X) :- in(X, d:members()).`, "?- w(X).")
	cur2, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), p2)
	if err != nil {
		t.Fatal(err)
	}
	answers2, _, err := CollectAll(cur2)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers2) != 50 {
		t.Fatalf("full query = %d answers (duplicates or loss in partial merge?)", len(answers2))
	}
	if d.CallCount("members") != callsBefore+1 {
		t.Errorf("full query should have issued exactly one completing call")
	}
	if e2, _ := mgr.Lookup(domain.Call{Domain: "d", Function: "members"}); !e2.Complete {
		t.Error("entry still incomplete after full drain")
	}
}

// TestCIMPartialOrderingPreserved: the merged stream first yields the
// cached prefix, then the remaining actual answers, with no reordering
// glitches visible to the join above it.
func TestCIMPartialOrderingPreserved(t *testing.T) {
	eng, mgr, _, plan := cimHarness(t)
	// Seed an incomplete entry holding the first 5 values.
	var prefix []term.Value
	for i := 0; i < 5; i++ {
		prefix = append(prefix, term.Int(int64(i)))
	}
	mgr.Store(domain.Call{Domain: "d", Function: "members"}, prefix, false, domain.CostVector{})
	p := plan(`w(X) :- in(X, d:members()).`, "?- w(X).")
	cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), p)
	if err != nil {
		t.Fatal(err)
	}
	answers, _, err := CollectAll(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 50 {
		t.Fatalf("answers = %d", len(answers))
	}
	for i := 0; i < 5; i++ {
		if !term.Equal(answers[i].Vals[0], term.Int(int64(i))) {
			t.Errorf("cached prefix reordered at %d: %v", i, answers[i])
		}
	}
}
