package engine

import (
	"testing"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func sessionHarness(t *testing.T, n int) (*Session, *domaintest.Domain) {
	t.Helper()
	d := domaintest.New("d")
	d.Define("gen", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			out := make([]term.Value, n)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	h := newHarness(t, d)
	plan := h.plan(`v(X) :- in(X, d:gen()).`, "?- v(X).")
	cur, err := h.eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plan)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(cur, 3), d
}

func TestSessionBatches(t *testing.T) {
	s, _ := sessionHarness(t, 7)
	b1, ok, err := s.More()
	if err != nil || !ok || len(b1) != 3 {
		t.Fatalf("batch1 = %v ok=%v err=%v", b1, ok, err)
	}
	b2, ok, err := s.More()
	if err != nil || !ok || len(b2) != 3 {
		t.Fatalf("batch2 = %v ok=%v err=%v", b2, ok, err)
	}
	// Final partial batch: exhausted.
	b3, ok, err := s.More()
	if err != nil || ok || len(b3) != 1 {
		t.Fatalf("batch3 = %v ok=%v err=%v", b3, ok, err)
	}
	// Further requests yield nothing.
	b4, ok, _ := s.More()
	if ok || len(b4) != 0 {
		t.Fatalf("batch4 = %v ok=%v", b4, ok)
	}
	if !term.Equal(b1[0].Vals[0], term.Int(0)) || !term.Equal(b3[0].Vals[0], term.Int(6)) {
		t.Errorf("batch contents wrong: %v ... %v", b1, b3)
	}
}

func TestSessionRest(t *testing.T) {
	s, _ := sessionHarness(t, 10)
	if _, ok, err := s.More(); !ok || err != nil {
		t.Fatal("first batch failed")
	}
	rest, err := s.Rest()
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 7 {
		t.Fatalf("rest = %d answers, want 7", len(rest))
	}
	if more, ok, _ := s.More(); ok || len(more) != 0 {
		t.Error("session should be exhausted after Rest")
	}
	if !s.Metrics().Complete {
		t.Error("drained session should be complete")
	}
}

func TestSessionStop(t *testing.T) {
	s, _ := sessionHarness(t, 100)
	if _, _, err := s.More(); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if s.Metrics().Complete {
		t.Error("stopped session should be incomplete")
	}
	if rest, err := s.Rest(); err != nil || len(rest) != 0 {
		t.Errorf("Rest after Stop = %v, %v", rest, err)
	}
}

func TestSessionBatchSizeFloor(t *testing.T) {
	s, _ := sessionHarness(t, 2)
	s.batch = 1 // already ≥1 via constructor; exercise minimum directly
	b, _, err := s.More()
	if err != nil || len(b) != 1 {
		t.Fatalf("batch = %v, %v", b, err)
	}
}
