package engine

// Session wraps a cursor in the paper's interactive mode of operation
// (§3): the mediator computes a first set of answers and presents them;
// the user may ask for the next batch, request all remaining answers at
// any time, or stop — stopping cancels the running source calls.
type Session struct {
	cur   *Cursor
	batch int
	done  bool
}

// NewSession starts an interactive session delivering batchSize answers
// per request (minimum 1).
func NewSession(cur *Cursor, batchSize int) *Session {
	if batchSize < 1 {
		batchSize = 1
	}
	return &Session{cur: cur, batch: batchSize}
}

// More returns the next batch. ok=false means the query is exhausted (the
// returned batch may still be non-empty when the last answers did not fill
// a batch).
func (s *Session) More() (batch []Answer, ok bool, err error) {
	if s.done {
		return nil, false, nil
	}
	for len(batch) < s.batch {
		a, cont, err := s.cur.Next()
		if err != nil {
			s.done = true
			s.cur.Close()
			return batch, false, err
		}
		if !cont {
			s.done = true
			return batch, false, nil
		}
		batch = append(batch, a)
	}
	return batch, true, nil
}

// Rest drains all remaining answers ("the user has the choice of
// requesting all the remaining answers at any time").
func (s *Session) Rest() ([]Answer, error) {
	if s.done {
		return nil, nil
	}
	var out []Answer
	for {
		a, cont, err := s.cur.Next()
		if err != nil {
			s.done = true
			s.cur.Close()
			return out, err
		}
		if !cont {
			s.done = true
			return out, nil
		}
		out = append(out, a)
	}
}

// Stop ends the session, cancelling running source calls.
func (s *Session) Stop() error {
	if s.done {
		return nil
	}
	s.done = true
	return s.cur.Close()
}

// Metrics exposes the underlying cursor's timings.
func (s *Session) Metrics() Metrics { return s.cur.Metrics() }
