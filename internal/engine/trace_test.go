package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hermes/internal/cim"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/obs"
	"hermes/internal/resilience"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func TestTraceObserverDirectCalls(t *testing.T) {
	d := seqDomain()
	reg := domain.NewRegistry()
	reg.Register(d)
	var events []TraceEvent
	cfg := Config{MaxDepth: 8, Trace: func(ev TraceEvent) { events = append(events, ev) }}
	eng := New(reg, nil, cfg, nil)
	prog, _ := lang.ParseProgram(`v(X, Y) :- in(X, d:nums()), in(Y, d:double(X)).`)
	q, _ := lang.ParseQuery("?- v(X, Y).")
	rw := rewrite.New(prog, rewrite.Config{}, reg)
	plans, err := rw.Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CollectAll(cur); err != nil {
		t.Fatal(err)
	}
	// 1 nums + 4 double calls, all direct, in issue order.
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	if events[0].Call.Function != "nums" || events[0].Source != "direct" {
		t.Errorf("first event = %+v", events[0])
	}
	for i := 1; i < len(events); i++ {
		if events[i].Call.Function != "double" {
			t.Errorf("event %d = %+v", i, events[i])
		}
		if events[i].At < events[i-1].At {
			t.Errorf("trace out of order at %d", i)
		}
	}
}

func TestTraceObserverCIMSources(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return []term.Value{term.Str("a")}, nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	mgr := cim.New(reg, cim.Config{ParallelActual: true})
	var events []TraceEvent
	cfg := Config{MaxDepth: 8, Trace: func(ev TraceEvent) { events = append(events, ev) }}
	eng := New(reg, mgr, cfg, nil)
	prog, _ := lang.ParseProgram(`v(X) :- in(X, d:f(1)).`)
	q, _ := lang.ParseQuery("?- v(X).")
	rw := rewrite.New(prog, rewrite.Config{CIMDomains: map[string]bool{"d": true}}, reg)
	plans, err := rw.Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plans[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := CollectAll(cur); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Source != "actual" {
		t.Errorf("first run source = %q, want actual (miss)", events[0].Source)
	}
	if events[1].Source != "cache-exact" {
		t.Errorf("second run source = %q, want cache-exact", events[1].Source)
	}
	if events[0].Route != rewrite.RouteCIM {
		t.Errorf("route = %v", events[0].Route)
	}
}

// downDomain always fails with a retryable error, so a wrapping breaker
// trips on the first call.
type downDomain struct{}

func (downDomain) Name() string { return "down" }
func (downDomain) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{{Name: "get", Arity: 0}}
}
func (downDomain) Call(*domain.Ctx, string, []term.Value) (domain.Stream, error) {
	return nil, fmt.Errorf("%w: host down", domain.ErrUnavailable)
}

// TestTraceObserverBreakerOpen covers the previously-silent path: a call
// short-circuited by an open circuit breaker must surface as a TraceEvent
// with Source "breaker-open" and tag its span breaker=open, not vanish.
func TestTraceObserverBreakerOpen(t *testing.T) {
	w := resilience.Wrap(downDomain{}, resilience.Policy{
		MaxAttempts: 1,
		Breaker:     resilience.BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour},
	})
	reg := domain.NewRegistry()
	reg.Register(w)
	var events []TraceEvent
	o := obs.NewObserver()
	cfg := Config{MaxDepth: 8, Obs: o, Trace: func(ev TraceEvent) { events = append(events, ev) }}
	eng := New(reg, nil, cfg, nil)
	prog, _ := lang.ParseProgram(`v(X) :- in(X, down:get()).`)
	q, _ := lang.ParseQuery("?- v(X).")
	rw := rewrite.New(prog, rewrite.Config{}, reg)
	plans, err := rw.Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	run := func() error {
		cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plans[0])
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = CollectAll(cur)
		return err
	}
	if err := run(); err == nil {
		t.Fatal("first query should fail (source down)")
	}
	if err := run(); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("second query error = %v, want ErrBreakerOpen", err)
	}

	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Source != "error" || events[0].Err == nil {
		t.Errorf("first event = %+v, want Source error with Err set", events[0])
	}
	if events[1].Source != "breaker-open" {
		t.Errorf("second event source = %q, want breaker-open", events[1].Source)
	}
	if !errors.Is(events[1].Err, resilience.ErrBreakerOpen) {
		t.Errorf("second event Err = %v, want ErrBreakerOpen", events[1].Err)
	}
	if v := o.Counter("hermes_engine_call_errors_total", "reason", "breaker-open").Value(); v != 1 {
		t.Errorf("breaker-open error counter = %d, want 1", v)
	}

	// The span tree of the rejected query (newest first) records the
	// short-circuit on its call span and an incomplete root.
	recent := o.Tracer.Recent()
	if len(recent) != 2 {
		t.Fatalf("retained spans = %d, want 2", len(recent))
	}
	root := recent[0]
	if root.Tags["complete"] != "false" {
		t.Errorf("root tags = %v, want complete=false", root.Tags)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1 call span", len(root.Children))
	}
	call := root.Children[0]
	if call.Tags["breaker"] != "open" {
		t.Errorf("call span tags = %v, want breaker=open", call.Tags)
	}
	if call.Tags["error"] == "" {
		t.Errorf("call span tags = %v, want error tag", call.Tags)
	}
}
