package engine

import (
	"testing"

	"hermes/internal/cim"
	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

func TestTraceObserverDirectCalls(t *testing.T) {
	d := seqDomain()
	reg := domain.NewRegistry()
	reg.Register(d)
	var events []TraceEvent
	cfg := Config{MaxDepth: 8, Trace: func(ev TraceEvent) { events = append(events, ev) }}
	eng := New(reg, nil, cfg, nil)
	prog, _ := lang.ParseProgram(`v(X, Y) :- in(X, d:nums()), in(Y, d:double(X)).`)
	q, _ := lang.ParseQuery("?- v(X, Y).")
	rw := rewrite.New(prog, rewrite.Config{}, reg)
	plans, err := rw.Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plans[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CollectAll(cur); err != nil {
		t.Fatal(err)
	}
	// 1 nums + 4 double calls, all direct, in issue order.
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	if events[0].Call.Function != "nums" || events[0].Source != "direct" {
		t.Errorf("first event = %+v", events[0])
	}
	for i := 1; i < len(events); i++ {
		if events[i].Call.Function != "double" {
			t.Errorf("event %d = %+v", i, events[i])
		}
		if events[i].At < events[i-1].At {
			t.Errorf("trace out of order at %d", i)
		}
	}
}

func TestTraceObserverCIMSources(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			return []term.Value{term.Str("a")}, nil
		}})
	reg := domain.NewRegistry()
	reg.Register(d)
	mgr := cim.New(reg, cim.Config{ParallelActual: true})
	var events []TraceEvent
	cfg := Config{MaxDepth: 8, Trace: func(ev TraceEvent) { events = append(events, ev) }}
	eng := New(reg, mgr, cfg, nil)
	prog, _ := lang.ParseProgram(`v(X) :- in(X, d:f(1)).`)
	q, _ := lang.ParseQuery("?- v(X).")
	rw := rewrite.New(prog, rewrite.Config{CIMDomains: map[string]bool{"d": true}}, reg)
	plans, err := rw.Plans(q)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		cur, err := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plans[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := CollectAll(cur); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Source != "actual" {
		t.Errorf("first run source = %q, want actual (miss)", events[0].Source)
	}
	if events[1].Source != "cache-exact" {
		t.Errorf("second run source = %q, want cache-exact", events[1].Source)
	}
	if events[0].Route != rewrite.RouteCIM {
		t.Errorf("route = %v", events[0].Route)
	}
}
