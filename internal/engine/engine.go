// Package engine implements the HERMES run-time query processor assumed by
// the paper's cost model: pipelined nested-loop evaluation of plan rule
// bodies, left to right, with backtracking, no duplicate elimination, and
// streaming answers. Domain calls execute when reached (their arguments are
// then ground); an in() literal whose output is already bound is a
// membership test that prunes as soon as a match is found.
//
// The engine supports the paper's two modes of operation through its
// cursor: all-answers mode drains the cursor; interactive mode pulls
// batches and may close early, which stops running source calls (and, via
// the CIM's lazy partial streams, can avoid issuing actual calls at all).
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"hermes/internal/cim"
	"hermes/internal/domain"
	"hermes/internal/memo"
	"hermes/internal/obs"
	"hermes/internal/rewrite"
	"hermes/internal/term"
)

// TraceEvent records one domain call the engine issued, with how it was
// served. Wire a collector through Config.Trace to see exactly which calls
// a plan made and which the cache absorbed.
type TraceEvent struct {
	Call  domain.Call
	Route rewrite.Route
	// Source is the CIM's serving source for CIM-routed calls
	// ("cache-exact", "cache-partial", ...); "direct" otherwise. A call
	// that failed at setup reports "error", or "breaker-open" when an open
	// circuit breaker short-circuited it before it reached the source.
	Source string
	// At is the clock reading when the call was issued.
	At time.Duration
	// Degraded marks a call answered purely from cache because its source
	// was down: the answers are sound but possibly partial.
	Degraded bool
	// Err is the setup error for "error"/"breaker-open" events, nil
	// otherwise.
	Err error
}

// Config tunes the engine.
type Config struct {
	// QueryInit is the fixed per-query setup cost; the paper's reported
	// times include "query initialization + wait for response + display".
	QueryInit time.Duration
	// PerDisplay is charged per answer delivered to the user.
	PerDisplay time.Duration
	// MaxDepth bounds IDB recursion during evaluation.
	MaxDepth int
	// Trace, when set, observes every domain call the engine issues,
	// including calls that fail at setup (an open breaker reports
	// Source "breaker-open" rather than being skipped silently).
	Trace func(TraceEvent)
	// Obs, when set, receives query/call spans and engine metrics. The
	// legacy Trace hook is independent of it and keeps working; Obs is
	// its generalization (span trees instead of flat events).
	Obs *obs.Observer
	// EstimateCall, when set, prices a domain call as it is issued (the
	// mediator wires it to the DCSM). The estimate lands on the call's
	// span so EXPLAIN can show estimated versus actual [Tf, Ta, Card].
	EstimateCall func(c domain.Call, route rewrite.Route) (domain.CostVector, bool)
	// EstimateRule, when set, prices one plan rule body given its
	// head-bound variables (the mediator wires it to the rule cost
	// estimator over the DCSM). The parallel union uses it to launch a
	// union predicate's alternatives cheapest-estimated-Tf-first.
	EstimateRule func(plan *rewrite.Plan, pr *rewrite.PlanRule, bound map[string]bool) (domain.CostVector, bool)
	// ReplanFactor arms the mid-query branch watchdog: when a parallel
	// union lane's elapsed cost exceeds ReplanFactor times its estimated
	// all-answers cost, the lane abandons its body order and asks Replan
	// for a cheaper one. Values <= 1, or a nil Replan, disable the
	// watchdog. Re-planning is bounded by the query-wide
	// domain.ReplanBudget on the Ctx (one re-plan per query).
	ReplanFactor float64
	// Replan, when set, re-enters the rewriter for one plan rule: given
	// the variables bound so far, it returns an alternative body order
	// with its estimated cost, or ok=false when no better order exists.
	Replan func(plan *rewrite.Plan, pr *rewrite.PlanRule, bound map[string]bool) (*rewrite.PlanRule, domain.CostVector, bool)
}

// DefaultConfig mirrors the fixed overheads implied by the paper's
// cache-only timings (≈300 ms to a first cached answer).
func DefaultConfig() Config {
	return Config{
		QueryInit:  230 * time.Millisecond,
		PerDisplay: 9 * time.Millisecond,
		MaxDepth:   64,
	}
}

// Engine executes plans.
type Engine struct {
	reg       *domain.Registry
	cim       *cim.Manager // nil when no CIM is deployed
	memo      *memo.Cache  // nil when rule-level memoization is off
	cfg       Config
	onMeasure func(domain.Measurement)
	// traceMu serializes Config.Trace callbacks: under Parallelism > 1
	// several branches issue calls concurrently, and trace collectors
	// (appending to slices, printing) must not need their own locking.
	traceMu sync.Mutex
}

// trace delivers a TraceEvent to the configured collector, serialized
// across parallel branches.
func (e *Engine) trace(ev TraceEvent) {
	if e.cfg.Trace == nil {
		return
	}
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	e.cfg.Trace(ev)
}

// New builds an engine. cimMgr may be nil; onMeasure (may be nil) observes
// the measurement of every direct source call, for the DCSM.
func New(reg *domain.Registry, cimMgr *cim.Manager, cfg Config, onMeasure func(domain.Measurement)) *Engine {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 64
	}
	return &Engine{reg: reg, cim: cimMgr, cfg: cfg, onMeasure: onMeasure}
}

// SetMemo installs the rule-level memo cache the engine consults before
// re-expanding an IDB subgoal (nil disables memoization). Set before the
// engine executes queries.
func (e *Engine) SetMemo(mc *memo.Cache) { e.memo = mc }

// Answer is one query answer: the bindings of the query's variables.
type Answer struct {
	Subst term.Subst
	// Vars lists the query variables in first-occurrence order; Vals their
	// values, aligned.
	Vars []string
	Vals []term.Value
}

// String renders the answer as var=value pairs.
func (a Answer) String() string {
	s := ""
	for i, v := range a.Vars {
		if i > 0 {
			s += ", "
		}
		s += v + "=" + a.Vals[i].String()
	}
	return "{" + s + "}"
}

// Metrics are the observed timings of a query execution.
type Metrics struct {
	TFirst  time.Duration
	TAll    time.Duration
	Answers int
	Bytes   int
	// Complete is false when the cursor was closed before exhaustion.
	Complete bool
}

// Cursor streams query answers. It realizes the interactive mode: pull as
// many answers as needed, then Close to stop all running source calls.
type Cursor struct {
	eng      *Engine
	ctx      *domain.Ctx
	vars     []string
	iter     *bodyIter
	start    time.Duration
	metrics  Metrics
	gotFirst bool
	done     bool
	span     *obs.Span
}

// Next returns the next answer. A cancelled context or an exceeded query
// deadline surfaces as an error (the cursor is closed).
func (c *Cursor) Next() (Answer, bool, error) {
	if c.done {
		return Answer{}, false, nil
	}
	if err := c.ctx.Err(); err != nil {
		c.Close()
		return Answer{}, false, err
	}
	s, ok, err := c.iter.next()
	if err != nil {
		return Answer{}, false, err
	}
	if !ok {
		c.finish(true)
		return Answer{}, false, nil
	}
	c.ctx.Clock.Sleep(c.eng.cfg.PerDisplay)
	now := c.ctx.Clock.Now() - c.start
	if !c.gotFirst {
		c.gotFirst = true
		c.metrics.TFirst = now
	}
	c.metrics.Answers++
	a := Answer{Subst: s, Vars: c.vars, Vals: make([]term.Value, len(c.vars))}
	for i, v := range c.vars {
		val, err := s.Eval(term.V(v))
		if err != nil {
			return Answer{}, false, fmt.Errorf("engine: query variable %s unbound in answer", v)
		}
		a.Vals[i] = val
		c.metrics.Bytes += term.SizeBytes(val)
	}
	return a, true, nil
}

// Close stops the cursor and any running source calls.
func (c *Cursor) Close() error {
	err := c.iter.close()
	c.finish(false)
	return err
}

func (c *Cursor) finish(complete bool) {
	if c.done {
		return
	}
	c.done = true
	c.metrics.TAll = c.ctx.Clock.Now() - c.start
	if !c.gotFirst {
		c.metrics.TFirst = c.metrics.TAll
	}
	c.metrics.Complete = complete
	c.span.SetTag("answers", strconv.Itoa(c.metrics.Answers))
	c.span.SetTag("complete", strconv.FormatBool(complete))
	c.span.SetActual(obs.Cost{
		TFirst: c.metrics.TFirst,
		TAll:   c.metrics.TAll,
		Card:   float64(c.metrics.Answers),
	})
	// Ending is idempotent, so it is safe whether the span was opened here
	// or handed in by the mediator; a root span publishes to the tracer.
	c.span.End(c.ctx.Clock.Now())
	o := c.eng.cfg.Obs
	o.Counter("hermes_query_answers_total").Add(int64(c.metrics.Answers))
	o.Histogram("hermes_query_tfirst_ms").Observe(float64(c.metrics.TFirst) / float64(time.Millisecond))
	o.Histogram("hermes_query_tall_ms").Observe(float64(c.metrics.TAll) / float64(time.Millisecond))
}

// Metrics returns the timings observed so far (final after exhaustion or
// Close).
func (c *Cursor) Metrics() Metrics { return c.metrics }

// Span returns the query span this cursor annotates (nil when tracing is
// off). The span is final after exhaustion or Close.
func (c *Cursor) Span() *obs.Span { return c.span }

// ExecutePlan starts executing a plan, returning a cursor over its
// answers. If ctx already carries a span (the mediator opens the query
// root and hangs rewrite/plan-choice spans off it), call spans attach
// there; otherwise, when Config.Obs is set, the engine opens and later
// ends its own root span.
func (e *Engine) ExecutePlan(ctx *domain.Ctx, plan *rewrite.Plan) (*Cursor, error) {
	start := ctx.Clock.Now()
	span := ctx.Span
	if span == nil && e.cfg.Obs != nil {
		span = e.cfg.Obs.StartQuery(queryLine(plan), start)
		ctx = ctx.WithSpan(span)
	}
	e.cfg.Obs.Counter("hermes_queries_total").Inc()
	if n := ctx.Sched.Limit(); n > 1 {
		span.SetTag("parallel", strconv.Itoa(n))
	}
	if e.cfg.ReplanFactor > 1 && e.cfg.Replan != nil && ctx.Replans == nil {
		armed := *ctx
		armed.Replans = domain.NewReplanBudget(1)
		ctx = &armed
	}
	ctx.Clock.Sleep(e.cfg.QueryInit)
	var vars []string
	seen := map[string]bool{}
	for _, lit := range plan.Query.Rule.Body {
		for _, v := range lit.Vars(nil) {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	iter := e.newBodyIter(ctx, plan, plan.Query, term.Subst{}, 0)
	return &Cursor{eng: e, ctx: ctx, vars: vars, iter: iter, start: start, span: span}, nil
}

// queryLine is the plan's one-line query rendering, used to name
// engine-opened root spans.
func queryLine(p *rewrite.Plan) string {
	s := p.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// CollectAll drains a cursor (all-answers mode).
func CollectAll(c *Cursor) ([]Answer, Metrics, error) {
	var out []Answer
	for {
		a, ok, err := c.Next()
		if err != nil {
			c.Close()
			return out, c.Metrics(), err
		}
		if !ok {
			return out, c.Metrics(), nil
		}
		out = append(out, a)
	}
}

// CollectFirst pulls up to n answers and closes the cursor (interactive
// mode stopping early).
func CollectFirst(c *Cursor, n int) ([]Answer, Metrics, error) {
	var out []Answer
	for len(out) < n {
		a, ok, err := c.Next()
		if err != nil {
			c.Close()
			return out, c.Metrics(), err
		}
		if !ok {
			return out, c.Metrics(), nil
		}
		out = append(out, a)
	}
	c.Close()
	return out, c.Metrics(), nil
}
