package engine

// Rule-level memoization of IDB subgoal occurrences (internal/memo wired
// into evalAtom). The memo serves whole intermediate relations: on a hit
// the engine replays the cached tuples instead of re-expanding the
// subgoal's rules; on a miss it either leads a fill (evaluating normally
// while recording every emitted tuple and every contributing domain call)
// or, when a concurrent occurrence of the same key is already filling,
// follows that flight, replaying tuples as the leader publishes them.
//
// Soundness relies on the memo key (memo.KeyOf) pinning everything that
// could change the answer multiset: the plan's rule section fingerprint,
// the predicate and run-time adornment, the ground values at bound
// positions, and the equality structure among free positions. Replay
// re-unifies each tuple against the occurrence's argument terms, so the
// caller-side filtering that atomStream.mapBack performs happens
// identically for cached answers.

import (
	"fmt"
	"time"

	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/memo"
	"hermes/internal/obs"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// memoKeyArgs classifies an occurrence's argument positions for the memo
// key. ok=false marks an occurrence the memo refuses: a free argument with
// an attribute path cannot be replayed by unification (the enclosing
// record is unknown), and a "ground" argument whose path does not resolve
// would error during evaluation anyway.
func memoKeyArgs(a *lang.Atom, s term.Subst) ([]memo.KeyArg, bool) {
	args := make([]memo.KeyArg, len(a.Args))
	for i, t := range a.Args {
		if s.Ground(t) {
			v, err := s.Eval(t)
			if err != nil {
				return nil, false
			}
			args[i] = memo.KeyArg{Bound: true, ValueKey: v.Key()}
			continue
		}
		if len(t.Path) > 0 {
			return nil, false
		}
		args[i] = memo.KeyArg{Var: t.Var}
	}
	return args, true
}

// newMemoStream consults the memo for an IDB occurrence. ok=false means
// the occurrence is not memoizable here (un-keyable arguments, or
// recursion back into a fill this path is already leading) and the caller
// must evaluate it directly.
func (e *Engine) newMemoStream(ctx *domain.Ctx, plan *rewrite.Plan, a *lang.Atom, s term.Subst, pk rewrite.PredKey, rules []*rewrite.PlanRule, depth int) (substStream, bool) {
	kargs, ok := memoKeyArgs(a, s)
	if !ok {
		return nil, false
	}
	mkey := memo.KeyOf(plan.Fingerprint(), a.Pred, string(pk.Adorn), kargs)
	if ctx.OnMemoPath(mkey) {
		// Recursive re-entry into our own fill: waiting on the flight would
		// deadlock, so the occurrence evaluates directly (and recurses to
		// the depth bound exactly as it would memo-off).
		return nil, false
	}
	ctx.Clock.Sleep(e.memo.LookupCost())
	res := e.memo.Probe(mkey)
	switch {
	case res.Entry != nil:
		now := ctx.Clock.Now()
		span := ctx.Span.Child("memo "+pk.String(), now)
		span.SetTag("memo", "hit")
		span.SetTag("memo.saved_ms", fmt.Sprintf("%.1f", float64(res.Entry.Cost.TAll)/float64(time.Millisecond)))
		// An enclosing fill inherits the entry's inputs: its relation now
		// depends on the same domain calls.
		if note := ctx.CallNote; note != nil {
			for _, in := range res.Entry.Inputs {
				note(in, false)
			}
		}
		return &memoServeStream{eng: e, ctx: ctx, atom: a, s: s, entry: res.Entry, span: span}, true
	case res.Reader != nil:
		span := ctx.Span.Child("memo "+pk.String(), ctx.Clock.Now())
		span.SetTag("memo", "share")
		return &memoFollowStream{
			eng: e, ctx: ctx, atom: a, s: s, reader: res.Reader, span: span,
			fallback: func() substStream {
				return e.buildAtomStream(ctx, plan, a, s, rules, depth)
			},
		}, true
	default:
		// Leader: evaluate normally, recording tuples and domain calls.
		// The CallNote chain keeps any outer fill observing too, and the
		// extended MemoPath lets recursive re-entries bypass this fill.
		rec := res.Rec
		prev := ctx.CallNote
		lctx := ctx.WithCallNote(func(callKey string, degraded bool) {
			rec.Note(callKey, degraded)
			if prev != nil {
				prev(callKey, degraded)
			}
		}).WithMemoPath(mkey)
		inner := e.buildAtomStream(lctx, plan, a, s, rules, depth)
		return &memoRecordStream{
			eng: e, ctx: lctx, atom: a, inner: inner, rec: rec,
			start: ctx.Clock.Now(),
		}, true
	}
}

// memoServeStream replays a committed memo entry, re-unifying each tuple
// against the occurrence's arguments (bound values and repeated variables
// filter exactly as live evaluation would).
type memoServeStream struct {
	eng   *Engine
	ctx   *domain.Ctx
	atom  *lang.Atom
	s     term.Subst
	entry *memo.Entry
	span  *obs.Span
	idx   int
	done  bool
}

func (m *memoServeStream) next() (term.Subst, bool, error) {
	if m.done {
		return nil, false, nil
	}
	for m.idx < len(m.entry.Tuples) {
		tuple := m.entry.Tuples[m.idx]
		m.idx++
		m.ctx.Clock.Sleep(m.eng.memo.PerTupleCost())
		out, ok := m.s.UnifyAll(m.atom.Args, tuple)
		if !ok {
			continue
		}
		return out, true, nil
	}
	m.finish()
	return nil, false, nil
}

func (m *memoServeStream) finish() {
	if m.done {
		return
	}
	m.done = true
	m.span.End(m.ctx.Clock.Now())
}

func (m *memoServeStream) close() error {
	m.finish()
	return nil
}

// memoRecordStream is the leader side: it passes the inner evaluation
// through unchanged while recording each emission's ground argument tuple,
// committing on natural exhaustion and aborting on error or early close.
type memoRecordStream struct {
	eng   *Engine
	ctx   *domain.Ctx
	atom  *lang.Atom
	inner substStream
	rec   *memo.Recording

	start    time.Duration
	firstAt  time.Duration
	gotFirst bool
	n        int
	settled  bool
}

func (m *memoRecordStream) next() (term.Subst, bool, error) {
	out, ok, err := m.inner.next()
	if err != nil {
		m.abort()
		return nil, false, err
	}
	if !ok {
		m.commit()
		return nil, false, nil
	}
	now := m.ctx.Clock.Now()
	if !m.gotFirst {
		m.gotFirst = true
		m.firstAt = now
	}
	m.n++
	if !m.settled {
		tuple := make([]term.Value, len(m.atom.Args))
		record := true
		for i, t := range m.atom.Args {
			v, evalErr := out.Eval(t)
			if evalErr != nil {
				// Cannot represent this emission as a ground tuple: stop
				// recording (followers fall back) but keep answering.
				record = false
				break
			}
			tuple[i] = v
		}
		if record {
			m.rec.Add(tuple, now)
		} else {
			m.abort()
		}
	}
	return out, true, nil
}

func (m *memoRecordStream) commit() {
	if m.settled {
		return
	}
	m.settled = true
	now := m.ctx.Clock.Now()
	tf := now - m.start
	if m.gotFirst {
		tf = m.firstAt - m.start
	}
	m.rec.Commit(now, domain.CostVector{TFirst: tf, TAll: now - m.start, Card: float64(m.n)})
}

func (m *memoRecordStream) abort() {
	if m.settled {
		return
	}
	m.settled = true
	m.rec.Abort(m.ctx.Clock.Now())
}

func (m *memoRecordStream) close() error {
	// Early close means the relation was not drained: nothing to store.
	m.abort()
	return m.inner.close()
}

// memoFollowStream replays an in-progress fill published by a concurrent
// leader. If the leader aborts, the follower falls back to its own
// evaluation, subtracting the multiset of tuples it already replayed
// (substitutions with equal ground argument tuples are interchangeable, so
// subtraction by tuple key is exact).
type memoFollowStream struct {
	eng      *Engine
	ctx      *domain.Ctx
	atom     *lang.Atom
	s        term.Subst
	reader   *memo.FlightReader
	span     *obs.Span
	fallback func() substStream

	emitted map[string]int // tuple key -> count replayed before a fallback
	fb      substStream
	done    bool
}

func (m *memoFollowStream) next() (term.Subst, bool, error) {
	if m.done {
		return nil, false, nil
	}
	if m.fb != nil {
		return m.fbNext()
	}
	for {
		if err := m.ctx.Err(); err != nil {
			m.finish()
			return nil, false, err
		}
		it, state := m.reader.Next(ctxDoneCh(m.ctx))
		switch state {
		case memo.ReadItem:
			vclock.AdvanceTo(m.ctx.Clock, it.At)
			m.ctx.Clock.Sleep(m.eng.memo.PerTupleCost())
			out, ok := m.s.UnifyAll(m.atom.Args, it.Vals)
			if !ok {
				// Cannot happen for a same-key flight (the leader applied
				// the same filters), but skipping is the sound reaction.
				continue
			}
			m.countReplayed(it.Vals)
			return out, true, nil
		case memo.ReadEndCommitted:
			inputs, degraded, endAt := m.reader.Result()
			vclock.AdvanceTo(m.ctx.Clock, endAt)
			if note := m.ctx.CallNote; note != nil {
				for _, in := range inputs {
					note(in, degraded)
				}
			}
			m.finish()
			return nil, false, nil
		case memo.ReadEndAborted:
			m.span.SetTag("memo.fallback", "true")
			m.fb = m.fallback()
			return m.fbNext()
		default: // memo.ReadCancelled
			m.finish()
			return nil, false, m.ctx.Err()
		}
	}
}

// fbNext drains the fallback evaluation, dropping one occurrence of every
// tuple already replayed from the aborted flight.
func (m *memoFollowStream) fbNext() (term.Subst, bool, error) {
	for {
		out, ok, err := m.fb.next()
		if err != nil {
			m.finish()
			return nil, false, err
		}
		if !ok {
			m.finish()
			return nil, false, nil
		}
		if len(m.emitted) > 0 {
			if k, kerr := m.tupleKey(out); kerr == nil {
				if c := m.emitted[k]; c > 0 {
					if c == 1 {
						delete(m.emitted, k)
					} else {
						m.emitted[k] = c - 1
					}
					continue
				}
			}
		}
		return out, true, nil
	}
}

func (m *memoFollowStream) countReplayed(vals []term.Value) {
	if m.emitted == nil {
		m.emitted = make(map[string]int)
	}
	m.emitted[valsKey(vals)]++
}

// tupleKey renders an emission's ground argument tuple as a multiset key.
func (m *memoFollowStream) tupleKey(out term.Subst) (string, error) {
	vals := make([]term.Value, len(m.atom.Args))
	for i, t := range m.atom.Args {
		v, err := out.Eval(t)
		if err != nil {
			return "", err
		}
		vals[i] = v
	}
	return valsKey(vals), nil
}

func valsKey(vals []term.Value) string {
	k := ""
	for i, v := range vals {
		if i > 0 {
			k += "|"
		}
		k += v.Key()
	}
	return k
}

func (m *memoFollowStream) finish() {
	if m.done {
		return
	}
	m.done = true
	m.span.End(m.ctx.Clock.Now())
}

func (m *memoFollowStream) close() error {
	var err error
	if m.fb != nil {
		err = m.fb.close()
	}
	m.finish()
	return err
}
