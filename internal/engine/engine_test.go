package engine

import (
	"strings"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/lang"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// harness bundles an engine over scriptable domains with a plan builder.
type harness struct {
	t   *testing.T
	reg *domain.Registry
	eng *Engine
	rw  rewrite.Config
}

func newHarness(t *testing.T, doms ...domain.Domain) *harness {
	t.Helper()
	reg := domain.NewRegistry()
	for _, d := range doms {
		reg.Register(d)
	}
	cfg := Config{} // zero overheads: assertions about pure source costs
	cfg.MaxDepth = 16
	return &harness{t: t, reg: reg, eng: New(reg, nil, cfg, nil)}
}

func (h *harness) plan(progSrc, querySrc string) *rewrite.Plan {
	h.t.Helper()
	prog, err := lang.ParseProgram(progSrc)
	if err != nil {
		h.t.Fatal(err)
	}
	q, err := lang.ParseQuery(querySrc)
	if err != nil {
		h.t.Fatal(err)
	}
	rw := rewrite.New(prog, h.rw, h.reg)
	plans, err := rw.Plans(q)
	if err != nil {
		h.t.Fatal(err)
	}
	return plans[0]
}

func (h *harness) runAll(plan *rewrite.Plan) ([]Answer, Metrics) {
	h.t.Helper()
	cur, err := h.eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plan)
	if err != nil {
		h.t.Fatal(err)
	}
	answers, m, err := CollectAll(cur)
	if err != nil {
		h.t.Fatal(err)
	}
	return answers, m
}

func seqDomain() *domaintest.Domain {
	d := domaintest.New("d")
	d.Define("nums", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{term.Int(1), term.Int(2), term.Int(3), term.Int(4)}, nil
		}})
	d.Define("double", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			n := args[0].(term.Int)
			return []term.Value{term.Int(2 * n)}, nil
		}})
	return d
}

func TestNestedLoopJoin(t *testing.T) {
	h := newHarness(t, seqDomain())
	plan := h.plan(`v(X, Y) :- in(X, d:nums()), in(Y, d:double(X)).`, "?- v(X, Y).")
	answers, m := h.runAll(plan)
	if len(answers) != 4 {
		t.Fatalf("answers = %d", len(answers))
	}
	// Pipelined order preserved: X ascending.
	for i, a := range answers {
		if !term.Equal(a.Vals[0], term.Int(int64(i+1))) || !term.Equal(a.Vals[1], term.Int(int64(2*(i+1)))) {
			t.Errorf("answer %d = %v", i, a)
		}
	}
	if m.Answers != 4 || !m.Complete {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMembershipPruning(t *testing.T) {
	d := seqDomain()
	served := 0
	d.Define("big", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			served++
			out := make([]term.Value, 100)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	h := newHarness(t, d)
	// X bound to 3 when big() runs: membership check, should prune.
	plan := h.plan(`v(X) :- in(X, d:double(1)), in(X, d:big()).`, "?- v(X).")
	answers, _ := h.runAll(plan)
	if len(answers) != 1 || !term.Equal(answers[0].Vals[0], term.Int(2)) {
		t.Fatalf("answers = %v", answers)
	}
}

func TestComparisonBindingAndFilter(t *testing.T) {
	h := newHarness(t, seqDomain())
	plan := h.plan(`v(X, Y) :- in(X, d:nums()), X > 2, Y = X.`, "?- v(X, Y).")
	answers, _ := h.runAll(plan)
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
	for _, a := range answers {
		if !term.Equal(a.Vals[0], a.Vals[1]) {
			t.Errorf("Y = X binding broken: %v", a)
		}
	}
}

func TestAttributePathInQuery(t *testing.T) {
	d := domaintest.New("d")
	d.Define("recs", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			return []term.Value{
				term.NewRecord(term.Field{Name: "name", Val: term.Str("x")}, term.Field{Name: "n", Val: term.Int(1)}),
				term.NewRecord(term.Field{Name: "name", Val: term.Str("y")}, term.Field{Name: "n", Val: term.Int(2)}),
			}, nil
		}})
	h := newHarness(t, d)
	plan := h.plan(`v(N) :- in(R, d:recs()), R.n = 2, =(R.name, N).`, "?- v(N).")
	answers, _ := h.runAll(plan)
	if len(answers) != 1 || !term.Equal(answers[0].Vals[0], term.Str("y")) {
		t.Fatalf("answers = %v", answers)
	}
}

func TestUnionRulesConcatenate(t *testing.T) {
	d := domaintest.New("d")
	d.Define("a", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) { return []term.Value{term.Int(1)}, nil }})
	d.Define("b", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) { return []term.Value{term.Int(1), term.Int(2)}, nil }})
	h := newHarness(t, d)
	plan := h.plan(`
		v(X) :- in(X, d:a()).
		v(X) :- in(X, d:b()).
	`, "?- v(X).")
	answers, _ := h.runAll(plan)
	// No duplicate elimination: 1 appears twice.
	if len(answers) != 3 {
		t.Fatalf("answers = %v, want 3 (bag semantics)", answers)
	}
}

func TestHeadConstantDispatch(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) { return []term.Value{term.Int(10)}, nil }})
	d.Define("g", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) { return []term.Value{term.Int(20)}, nil }})
	h := newHarness(t, d)
	plan := h.plan(`
		v('fast', X) :- in(X, d:f()).
		v('slow', X) :- in(X, d:g()).
	`, "?- v('fast', X).")
	answers, _ := h.runAll(plan)
	if len(answers) != 1 || !term.Equal(answers[0].Vals[0], term.Int(10)) {
		t.Fatalf("answers = %v", answers)
	}
}

func TestHeadConstantsFlowToCaller(t *testing.T) {
	d := domaintest.New("d")
	d.Define("f", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) { return []term.Value{term.Int(10)}, nil }})
	h := newHarness(t, d)
	plan := h.plan(`v('tag', X) :- in(X, d:f()).`, "?- v(T, X).")
	answers, _ := h.runAll(plan)
	if len(answers) != 1 || !term.Equal(answers[0].Vals[0], term.Str("tag")) {
		t.Fatalf("answers = %v", answers)
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	d := domaintest.New("d")
	d.Define("edge", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			// Every node has a successor: infinite walk.
			n := args[0].(term.Int)
			return []term.Value{term.Int(int64(n) + 1)}, nil
		}})
	h := newHarness(t, d)
	plan := h.plan(`
		walk(X, Y) :- in(Y, d:edge(X)).
		walk(X, Y) :- walk(X, Z), in(Y, d:edge(Z)).
	`, "?- walk(0, Y).")
	cur, err := h.eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plan)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = CollectAll(cur)
	if err == nil || !strings.Contains(err.Error(), "recursion deeper") {
		t.Errorf("err = %v, want depth guard", err)
	}
}

func TestBoundedRecursionWorks(t *testing.T) {
	d := domaintest.New("d")
	d.Define("edge", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			n := int64(args[0].(term.Int))
			if n >= 3 {
				return nil, nil // chain ends
			}
			return []term.Value{term.Int(n + 1)}, nil
		}})
	h := newHarness(t, d)
	// Right recursion terminates under top-down evaluation once the data
	// chain ends (left recursion requires tabling and trips the depth
	// guard instead — see TestRecursionDepthGuard).
	plan := h.plan(`
		walk(X, Y) :- in(Y, d:edge(X)).
		walk(X, Y) :- in(Z, d:edge(X)), walk(Z, Y).
	`, "?- walk(0, Y).")
	answers, _ := h.runAll(plan)
	// Reachable: 1, 2, 3.
	if len(answers) != 3 {
		t.Fatalf("answers = %v", answers)
	}
}

func TestCursorCloseStopsWork(t *testing.T) {
	d := domaintest.New("d")
	calls := 0
	d.Define("gen", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) {
			out := make([]term.Value, 50)
			for i := range out {
				out[i] = term.Int(int64(i))
			}
			return out, nil
		}})
	d.Define("probe", domaintest.Func{Arity: 1,
		Fn: func(args []term.Value) ([]term.Value, error) {
			calls++
			return []term.Value{args[0]}, nil
		}})
	h := newHarness(t, d)
	plan := h.plan(`v(X, Y) :- in(X, d:gen()), in(Y, d:probe(X)).`, "?- v(X, Y).")
	cur, err := h.eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plan)
	if err != nil {
		t.Fatal(err)
	}
	answers, m, err := CollectFirst(cur, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d", len(answers))
	}
	if calls > 3 {
		t.Errorf("probe called %d times after early stop, want ≤3", calls)
	}
	if m.Complete {
		t.Error("early stop should be incomplete")
	}
}

func TestQueryInitAndDisplayCharged(t *testing.T) {
	reg := domain.NewRegistry()
	reg.Register(seqDomain())
	eng := New(reg, nil, Config{QueryInit: 230 * time.Millisecond, PerDisplay: 10 * time.Millisecond, MaxDepth: 8}, nil)
	prog, _ := lang.ParseProgram(`v(X) :- in(X, d:nums()).`)
	q, _ := lang.ParseQuery("?- v(X).")
	rw := rewrite.New(prog, rewrite.Config{}, reg)
	plans, _ := rw.Plans(q)
	ctx := domain.NewCtx(vclock.NewVirtual(0))
	cur, err := eng.ExecutePlan(ctx, plans[0])
	if err != nil {
		t.Fatal(err)
	}
	_, m, _ := CollectAll(cur)
	want := 230*time.Millisecond + 4*10*time.Millisecond
	if m.TAll != want {
		t.Errorf("TAll = %v, want %v", m.TAll, want)
	}
	if m.TFirst != 230*time.Millisecond+10*time.Millisecond {
		t.Errorf("TFirst = %v", m.TFirst)
	}
}

func TestMeasurementObserverSeesDirectCalls(t *testing.T) {
	reg := domain.NewRegistry()
	reg.Register(seqDomain())
	var seen []domain.Measurement
	eng := New(reg, nil, Config{MaxDepth: 8}, func(m domain.Measurement) { seen = append(seen, m) })
	prog, _ := lang.ParseProgram(`v(X, Y) :- in(X, d:nums()), in(Y, d:double(X)).`)
	q, _ := lang.ParseQuery("?- v(X, Y).")
	rw := rewrite.New(prog, rewrite.Config{}, reg)
	plans, _ := rw.Plans(q)
	cur, _ := eng.ExecutePlan(domain.NewCtx(vclock.NewVirtual(0)), plans[0])
	CollectAll(cur)
	// 1 nums call + 4 double calls.
	if len(seen) != 5 {
		t.Fatalf("measurements = %d, want 5", len(seen))
	}
	for _, m := range seen {
		if !m.Complete {
			t.Errorf("drained call measured incomplete: %+v", m)
		}
	}
}

func TestEmptyAnswerSetQuery(t *testing.T) {
	d := domaintest.New("d")
	d.Define("none", domaintest.Func{Arity: 0,
		Fn: func([]term.Value) ([]term.Value, error) { return nil, nil }})
	h := newHarness(t, d)
	plan := h.plan(`v(X) :- in(X, d:none()).`, "?- v(X).")
	answers, m := h.runAll(plan)
	if len(answers) != 0 || !m.Complete {
		t.Errorf("answers=%v metrics=%+v", answers, m)
	}
	if m.TFirst != m.TAll {
		t.Errorf("empty query: Tf (%v) should equal Ta (%v)", m.TFirst, m.TAll)
	}
}

func TestAnswerStringRendering(t *testing.T) {
	h := newHarness(t, seqDomain())
	plan := h.plan(`v(X) :- in(X, d:double(3)).`, "?- v(X).")
	answers, _ := h.runAll(plan)
	if got := answers[0].String(); got != "{X=6}" {
		t.Errorf("answer string = %q", got)
	}
}
