package engine

import (
	"errors"
	"fmt"
	"time"

	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/obs"
	"hermes/internal/resilience"
	"hermes/internal/rewrite"
	"hermes/internal/term"
)

// substStream is a pull stream of substitutions.
type substStream interface {
	next() (term.Subst, bool, error)
	close() error
}

// emptyStream yields nothing.
type emptyStream struct{}

func (emptyStream) next() (term.Subst, bool, error) { return nil, false, nil }
func (emptyStream) close() error                    { return nil }

// singleStream yields one substitution.
type singleStream struct {
	s    term.Subst
	done bool
}

func (s *singleStream) next() (term.Subst, bool, error) {
	if s.done {
		return nil, false, nil
	}
	s.done = true
	return s.s, true, nil
}
func (s *singleStream) close() error { return nil }

// bodyIter evaluates a plan rule body by pipelined nested loops with
// backtracking: level i's stream produces the substitutions after
// executing the first i+1 literals.
type bodyIter struct {
	eng   *Engine
	ctx   *domain.Ctx
	plan  *rewrite.Plan
	pr    *rewrite.PlanRule
	base  term.Subst
	depth int

	streams []substStream
	inited  bool
	done    bool

	// indep lists the execution positions of independent in() literals
	// (nil when none, or when the query runs sequentially); stage holds
	// their spool producers once evaluation reaches the first of them.
	indep []int
	stage *stage
}

func (e *Engine) newBodyIter(ctx *domain.Ctx, plan *rewrite.Plan, pr *rewrite.PlanRule, base term.Subst, depth int) *bodyIter {
	b := &bodyIter{eng: e, ctx: ctx, plan: plan, pr: pr, base: base, depth: depth}
	if ctx.Sched.Limit() > 1 {
		bound := make(map[string]bool, len(base))
		for v := range base {
			bound[v] = true
		}
		b.indep = rewrite.IndependentInCalls(pr, bound)
	}
	return b
}

func (b *bodyIter) next() (term.Subst, bool, error) {
	if b.done {
		return nil, false, nil
	}
	n := len(b.pr.Order)
	if n == 0 {
		b.done = true
		return b.base, true, nil
	}
	i := len(b.streams) - 1
	if !b.inited {
		b.inited = true
		s, err := b.openLevel(0, b.base)
		if err != nil {
			b.done = true
			return nil, false, err
		}
		b.streams = []substStream{s}
		i = 0
	}
	for {
		if err := b.ctx.Err(); err != nil {
			b.shutdown()
			return nil, false, err
		}
		if i < 0 {
			b.shutdown()
			return nil, false, nil
		}
		v, ok, err := b.streams[i].next()
		if err != nil {
			b.shutdown()
			return nil, false, err
		}
		if !ok {
			b.streams[i].close()
			b.streams = b.streams[:i]
			i--
			continue
		}
		if i == n-1 {
			return v, true, nil
		}
		s, err := b.openLevel(i+1, v)
		if err != nil {
			b.shutdown()
			return nil, false, err
		}
		b.streams = append(b.streams, s)
		i++
	}
}

func (b *bodyIter) openLevel(level int, s term.Subst) (substStream, error) {
	bi := b.pr.Order[level]
	if b.indep != nil && level == b.indep[0] && b.stage == nil {
		// First entry into the independent-sibling region: launch the
		// producers that prefetch the later independent literals' streams.
		b.stage = b.eng.newStage(b.ctx, b.pr, b.base, b.indep)
	}
	if b.stage != nil {
		if in, ok := b.pr.Rule.Body[bi].(*lang.InCall); ok {
			if ss, ok := b.stage.open(level, in.Out.Var, s, b.ctx); ok {
				return ss, nil
			}
		}
	}
	return b.eng.evalLiteral(b.ctx, b.plan, b.pr.Rule.Body[bi], b.pr.Routes[bi], s, b.depth)
}

func (b *bodyIter) shutdown() {
	for i := len(b.streams) - 1; i >= 0; i-- {
		b.streams[i].close()
	}
	b.streams = nil
	if b.stage != nil {
		b.stage.close()
	}
	b.done = true
}

func (b *bodyIter) close() error {
	b.shutdown()
	return nil
}

// evalLiteral opens the stream of substitutions extending s that satisfy
// one literal.
func (e *Engine) evalLiteral(ctx *domain.Ctx, plan *rewrite.Plan, lit lang.Literal, route rewrite.Route, s term.Subst, depth int) (substStream, error) {
	switch l := lit.(type) {
	case *lang.Comparison:
		return e.evalComparison(l, s)
	case *lang.InCall:
		return e.evalInCall(ctx, l, route, s)
	case *lang.Atom:
		return e.evalAtom(ctx, plan, l, s, depth)
	}
	return nil, fmt.Errorf("engine: unknown literal %T", lit)
}

// evalComparison filters, or binds for X = ground.
func (e *Engine) evalComparison(c *lang.Comparison, s term.Subst) (substStream, error) {
	lg, rg := s.Ground(c.Left), s.Ground(c.Right)
	if c.Op == term.OpEQ && lg != rg {
		// Binding equality: assign the ground side to the bare-variable
		// side.
		var ground, varSide term.Term
		if lg {
			ground, varSide = c.Left, c.Right
		} else {
			ground, varSide = c.Right, c.Left
		}
		if varSide.IsVar() {
			v, err := s.Eval(ground)
			if err != nil {
				return nil, err
			}
			out := s.Clone()
			out[varSide.Var] = v
			return &singleStream{s: out}, nil
		}
		return nil, fmt.Errorf("engine: comparison %s has unbound non-variable side", c)
	}
	ok, err := c.Holds(s)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", c, err)
	}
	if ok {
		return &singleStream{s: s}, nil
	}
	return emptyStream{}, nil
}

// evalInCall executes a domain call (direct or through the CIM) and binds
// or tests the output term.
func (e *Engine) evalInCall(ctx *domain.Ctx, l *lang.InCall, route rewrite.Route, s term.Subst) (substStream, error) {
	stream, err := e.openCallStream(ctx, l, route, s)
	if err != nil {
		return nil, err
	}
	// Membership test: the output is already ground; find one match then
	// prune (answer sets are sets).
	if s.Ground(l.Out) {
		want, err := s.Eval(l.Out)
		if err != nil {
			stream.Close()
			return nil, err
		}
		return &membershipStream{inner: stream, want: want, s: s}, nil
	}
	if !l.Out.IsVar() {
		stream.Close()
		return nil, fmt.Errorf("engine: in() output %s cannot be bound (attribute path on unbound variable)", l.Out)
	}
	return &bindStream{inner: stream, v: l.Out.Var, s: s}, nil
}

// openCallStream grounds an in() literal's arguments under s and issues
// the domain call (direct or through the CIM), returning the raw answer
// stream metered onto a fresh call span. It is the shared lower half of
// evalInCall and the parallel stage's spool producers.
func (e *Engine) openCallStream(ctx *domain.Ctx, l *lang.InCall, route rewrite.Route, s term.Subst) (domain.Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	args := make([]term.Value, len(l.Call.Args))
	for i, t := range l.Call.Args {
		v, err := s.Eval(t)
		if err != nil {
			return nil, fmt.Errorf("engine: domain call %s argument %d not ground: %w", l.Call.String(), i+1, err)
		}
		args[i] = v
	}
	call := domain.Call{Domain: l.Call.Domain, Function: l.Call.Function, Args: args}
	issuedAt := ctx.Clock.Now()
	span := ctx.Span.Child("call "+call.String(), issuedAt)
	span.SetTag("route", route.String())
	if e.cfg.EstimateCall != nil {
		if cv, ok := e.cfg.EstimateCall(call, route); ok {
			span.SetEstimate(obs.Cost{TFirst: cv.TFirst, TAll: cv.TAll, Card: cv.Card})
		}
	}
	e.cfg.Obs.Counter("hermes_engine_calls_total", "route", route.String()).Inc()
	cctx := ctx.WithSpan(span)
	var stream domain.Stream
	var onFinish func()
	if route == rewrite.RouteCIM && e.cim != nil {
		resp, err := e.cim.CallThrough(cctx, call)
		if err != nil {
			return nil, e.callFailed(ctx, span, call, route, issuedAt, err)
		}
		stream = resp.Stream
		e.trace(TraceEvent{Call: call, Route: route, Source: resp.Source.String(), At: issuedAt, Degraded: resp.Degraded})
		if note := ctx.CallNote; note != nil {
			note(call.Key(), resp.Degraded)
			// A partial hit turns degraded lazily, mid-drain, when the
			// source dies under the actual call: re-note at stream finish
			// so memo fills in progress learn about it.
			onFinish = func() {
				if resp.Degraded {
					note(call.Key(), true)
				}
			}
		}
	} else {
		inner, err := e.reg.Call(cctx, call)
		if err != nil {
			return nil, e.callFailed(ctx, span, call, route, issuedAt, err)
		}
		stream = domain.NewMeasuredStreamAt(inner, ctx.Clock, call, issuedAt, e.onMeasure)
		e.trace(TraceEvent{Call: call, Route: route, Source: "direct", At: issuedAt})
		if note := ctx.CallNote; note != nil {
			note(call.Key(), false)
		}
	}
	return &spanStream{inner: stream, ctx: ctx, span: span, issuedAt: issuedAt, onFinish: onFinish}, nil
}

// callFailed records a domain call that died at setup: it tags and ends
// the call span, counts the failure, and — crucially for operators — emits
// a TraceEvent even though no answers flowed. An open circuit breaker used
// to skip the call silently; it now reports Source "breaker-open".
func (e *Engine) callFailed(ctx *domain.Ctx, span *obs.Span, call domain.Call, route rewrite.Route, issuedAt time.Duration, err error) error {
	source := "error"
	if errors.Is(err, resilience.ErrBreakerOpen) {
		source = "breaker-open"
		span.SetTag("breaker", "open")
	}
	span.SetTag("error", err.Error())
	span.End(ctx.Clock.Now())
	e.cfg.Obs.Counter("hermes_engine_call_errors_total", "reason", source).Inc()
	e.trace(TraceEvent{Call: call, Route: route, Source: source, At: issuedAt, Err: err})
	return err
}

// spanStream meters a call's answer stream onto its span: measured
// [Tf, Ta, Card] (covering cache-served streams, which produce no
// domain.Measurement) and the span's end time. The span ends when the
// stream is exhausted, errors, or is closed early (pruning). Note the
// span's actual includes consumer-side stall time between pulls; the
// source-side cost that calibrates the DCSM travels separately, as a
// domain.Measurement through the measurement hook.
type spanStream struct {
	inner    domain.Stream
	ctx      *domain.Ctx
	span     *obs.Span
	issuedAt time.Duration
	first    time.Duration
	n        int
	gotFirst bool
	finished bool
	// onFinish, when set, runs once at stream finish (exhaustion, error or
	// early close); the CIM path uses it to report laziness-discovered
	// degradation to the memo recorder.
	onFinish func()
}

func (ss *spanStream) Next() (term.Value, bool, error) {
	v, ok, err := ss.inner.Next()
	if err != nil {
		ss.span.SetTag("error", err.Error())
		ss.finish()
		return v, ok, err
	}
	if !ok {
		ss.finish()
		return v, ok, nil
	}
	ss.n++
	if !ss.gotFirst {
		ss.gotFirst = true
		ss.first = ss.ctx.Clock.Now() - ss.issuedAt
	}
	return v, true, nil
}

func (ss *spanStream) Close() error {
	err := ss.inner.Close()
	ss.finish()
	return err
}

func (ss *spanStream) finish() {
	if ss.finished {
		return
	}
	ss.finished = true
	now := ss.ctx.Clock.Now()
	all := now - ss.issuedAt
	tf := ss.first
	if !ss.gotFirst {
		tf = all
	}
	actual := obs.Cost{TFirst: tf, TAll: all, Card: float64(ss.n)}
	ss.span.SetActual(actual)
	ss.span.End(now)
	if ss.onFinish != nil {
		ss.onFinish()
	}
}

// bindStream binds each answer to a fresh variable.
type bindStream struct {
	inner domain.Stream
	v     string
	s     term.Subst
}

func (b *bindStream) next() (term.Subst, bool, error) {
	v, ok, err := b.inner.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := b.s.Clone()
	out[b.v] = v
	return out, true, nil
}

func (b *bindStream) close() error { return b.inner.Close() }

// membershipStream scans for the wanted value, emits once, and closes the
// source (pruning).
type membershipStream struct {
	inner domain.Stream
	want  term.Value
	s     term.Subst
	done  bool
}

func (m *membershipStream) next() (term.Subst, bool, error) {
	if m.done {
		return nil, false, nil
	}
	for {
		v, ok, err := m.inner.Next()
		if err != nil {
			m.done = true
			return nil, false, err
		}
		if !ok {
			m.done = true
			return nil, false, nil
		}
		if term.Equal(v, m.want) {
			m.done = true
			m.inner.Close() // prune the rest of the stream
			return m.s, true, nil
		}
	}
}

func (m *membershipStream) close() error {
	m.done = true
	return m.inner.Close()
}

// evalAtom evaluates an IDB predicate occurrence through the plan's rules
// for its run-time adornment, concatenating the rules' answers (union, no
// duplicate elimination).
func (e *Engine) evalAtom(ctx *domain.Ctx, plan *rewrite.Plan, a *lang.Atom, s term.Subst, depth int) (substStream, error) {
	if depth >= e.cfg.MaxDepth {
		return nil, fmt.Errorf("engine: recursion deeper than %d evaluating %s", e.cfg.MaxDepth, a.Pred)
	}
	adorn := runtimeAdornment(a, s)
	key := rewrite.PredKey{Pred: a.Pred, Adorn: adorn}
	rules, ok := plan.Rules[key]
	if !ok || len(rules) == 0 {
		return nil, fmt.Errorf("engine: plan has no rules for %s", key)
	}
	if e.memo != nil {
		if ms, ok := e.newMemoStream(ctx, plan, a, s, key, rules, depth); ok {
			return ms, nil
		}
	}
	return e.buildAtomStream(ctx, plan, a, s, rules, depth), nil
}

// buildAtomStream opens the actual evaluation of an IDB occurrence: a
// parallel union of the alternatives when the scheduler grants lanes, the
// sequential union otherwise. It is the memo-free lower half of evalAtom,
// shared with the memo leader and fallback paths.
func (e *Engine) buildAtomStream(ctx *domain.Ctx, plan *rewrite.Plan, a *lang.Atom, s term.Subst, rules []*rewrite.PlanRule, depth int) substStream {
	if len(rules) >= 2 {
		if pu := e.newParallelUnion(ctx, plan, a, s, rules, depth); pu != nil {
			return pu
		}
	}
	return &atomStream{eng: e, ctx: ctx, plan: plan, atom: a, s: s, rules: rules, depth: depth}
}

func runtimeAdornment(a *lang.Atom, s term.Subst) rewrite.Adornment {
	b := make([]byte, len(a.Args))
	for i, t := range a.Args {
		if s.Ground(t) {
			b[i] = 'b'
		} else {
			b[i] = 'f'
		}
	}
	return rewrite.Adornment(b)
}

// atomStream unions the plan rules for an atom, mapping head bindings back
// into the caller's substitution.
type atomStream struct {
	eng   *Engine
	ctx   *domain.Ctx
	plan  *rewrite.Plan
	atom  *lang.Atom
	s     term.Subst
	rules []*rewrite.PlanRule
	depth int

	ruleIdx int
	current *bodyIter
	headSub term.Subst // caller-side partial bindings for the current rule
	rule    *rewrite.PlanRule
}

func (as *atomStream) next() (term.Subst, bool, error) {
	for {
		if as.current == nil {
			if as.ruleIdx >= len(as.rules) {
				return nil, false, nil
			}
			as.rule = as.rules[as.ruleIdx]
			as.ruleIdx++
			headEnv, ok, err := bindHead(as.atom, as.rule.Rule, as.s)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue // head constants conflict with the call
			}
			as.current = as.eng.newBodyIter(as.ctx, as.plan, as.rule, headEnv, as.depth+1)
		}
		env, ok, err := as.current.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			as.current.close()
			as.current = nil
			continue
		}
		out, ok, err := mapBack(as.atom, as.rule.Rule, as.s, env)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		return out, true, nil
	}
}

func (as *atomStream) close() error {
	if as.current != nil {
		return as.current.close()
	}
	return nil
}

// bindHead builds the rule-local environment from the atom occurrence: for
// each head position, ground caller arguments flow into head terms
// (unification); unbound caller variables leave the head variable free for
// the body to bind.
func bindHead(a *lang.Atom, r *lang.Rule, s term.Subst) (term.Subst, bool, error) {
	if len(a.Args) != len(r.Head.Args) {
		return nil, false, fmt.Errorf("engine: %s called with %d args, rule head has %d", a.Pred, len(a.Args), len(r.Head.Args))
	}
	env := term.Subst{}
	for i, arg := range a.Args {
		h := r.Head.Args[i]
		if !s.Ground(arg) {
			continue
		}
		v, err := s.Eval(arg)
		if err != nil {
			return nil, false, err
		}
		var ok bool
		env, ok = env.Unify(h, v)
		if !ok {
			return nil, false, nil
		}
	}
	return env, true, nil
}

// mapBack projects a rule-body solution onto the caller's substitution:
// head terms are evaluated in the rule environment and unified with the
// caller's argument terms.
func mapBack(a *lang.Atom, r *lang.Rule, s term.Subst, env term.Subst) (term.Subst, bool, error) {
	out := s
	for i, arg := range a.Args {
		h := r.Head.Args[i]
		v, err := env.Eval(h)
		if err != nil {
			return nil, false, fmt.Errorf("engine: head term %s of %s unbound after body: %w", h, a.Pred, err)
		}
		var ok bool
		out, ok = out.Unify(arg, v)
		if !ok {
			return nil, false, nil
		}
	}
	return out, true, nil
}
