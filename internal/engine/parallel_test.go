package engine

import (
	"context"
	"runtime"
	"sort"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/domain/domaintest"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// unionDomain scripts four sources with distinct latencies for union
// tests.
func unionDomain() *domaintest.Domain {
	d := domaintest.New("d")
	for _, f := range []struct {
		name  string
		delay time.Duration
		vals  []term.Value
	}{
		{"a", 400 * time.Millisecond, []term.Value{term.Int(1), term.Int(2)}},
		{"b", 300 * time.Millisecond, []term.Value{term.Int(3)}},
		{"c", 200 * time.Millisecond, []term.Value{term.Int(4), term.Int(5)}},
		{"e", 100 * time.Millisecond, []term.Value{term.Int(6)}},
	} {
		vals := f.vals
		d.Define(f.name, domaintest.Func{Arity: 0, PerCall: f.delay,
			Fn: func([]term.Value) ([]term.Value, error) { return vals, nil }})
	}
	return d
}

const unionProg = `
	u(X) :- in(X, d:a()).
	u(X) :- in(X, d:b()).
	u(X) :- in(X, d:c()).
	u(X) :- in(X, d:e()).
`

func answerInts(t *testing.T, answers []Answer) []int {
	t.Helper()
	var out []int
	for _, a := range answers {
		n, ok := a.Vals[0].(term.Int)
		if !ok {
			t.Fatalf("answer %v is not an int", a)
		}
		out = append(out, int(n))
	}
	return out
}

func TestParallelUnionSameAnswersFasterClock(t *testing.T) {
	h := newHarness(t, unionDomain())
	plan := h.plan(unionProg, "?- u(X).")

	seq, seqM := h.runAll(plan) // nil Sched: sequential reference

	ctx := domain.NewCtx(vclock.NewVirtual(0))
	ctx.Sched = domain.NewSched(4)
	cur, err := h.eng.ExecutePlan(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	par, parM, err := CollectAll(cur)
	if err != nil {
		t.Fatal(err)
	}

	want := answerInts(t, seq)
	got := answerInts(t, par)
	sort.Ints(want)
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("parallel answers = %v, want set %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parallel answers = %v, want set %v", got, want)
		}
	}
	// Sequential pays the four per-call delays serially (1s total);
	// parallel overlaps them, so the slowest branch dominates.
	if parM.TAll >= seqM.TAll {
		t.Errorf("parallel TAll = %v, want < sequential %v", parM.TAll, seqM.TAll)
	}
	if parM.TAll > 600*time.Millisecond {
		t.Errorf("parallel TAll = %v, want ~max branch latency (<= 600ms)", parM.TAll)
	}

	// Determinism: the virtual clock makes the merged order reproducible.
	ctx2 := domain.NewCtx(vclock.NewVirtual(0))
	ctx2.Sched = domain.NewSched(4)
	cur2, err := h.eng.ExecutePlan(ctx2, plan)
	if err != nil {
		t.Fatal(err)
	}
	par2, parM2, err := CollectAll(cur2)
	if err != nil {
		t.Fatal(err)
	}
	if parM2.TAll != parM.TAll {
		t.Errorf("second run TAll = %v, want %v (nondeterministic)", parM2.TAll, parM.TAll)
	}
	a1, a2 := answerInts(t, par), answerInts(t, par2)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("second run order %v, want %v (nondeterministic)", a2, a1)
		}
	}
}

func TestIndependentSiblingsPrefetchedOnce(t *testing.T) {
	d := domaintest.New("d")
	for _, f := range []struct {
		name  string
		delay time.Duration
		vals  []term.Value
	}{
		{"one", 300 * time.Millisecond, []term.Value{term.Int(1), term.Int(2)}},
		{"two", 300 * time.Millisecond, []term.Value{term.Int(10), term.Int(20)}},
		{"three", 300 * time.Millisecond, []term.Value{term.Int(100)}},
	} {
		vals := f.vals
		d.Define(f.name, domaintest.Func{Arity: 0, PerCall: f.delay,
			Fn: func([]term.Value) ([]term.Value, error) { return vals, nil }})
	}
	h := newHarness(t, d)
	prog := `q(A, B, C) :- in(A, d:one()) & in(B, d:two()) & in(C, d:three()).`
	plan := h.plan(prog, "?- q(A, B, C).")

	seq, seqM := h.runAll(plan)
	seqCalls := len(d.Calls)

	ctx := domain.NewCtx(vclock.NewVirtual(0))
	ctx.Sched = domain.NewSched(4)
	cur, err := h.eng.ExecutePlan(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	par, parM, err := CollectAll(cur)
	if err != nil {
		t.Fatal(err)
	}
	// Spool replay preserves the exact sequential answer order.
	if len(par) != len(seq) {
		t.Fatalf("parallel answers = %d, want %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i].String() != seq[i].String() {
			t.Errorf("answer %d = %v, want %v", i, par[i], seq[i])
		}
	}
	// Each spooled source is called once in total — the replays for the
	// outer bindings reuse the spool instead of re-calling. (The sequential
	// run re-calls the inner literals per outer binding: 1 + 2 + 4 calls.)
	if seqCalls != 7 {
		t.Errorf("sequential run made %d calls, want 7", seqCalls)
	}
	if parCalls := len(d.Calls) - seqCalls; parCalls != 3 {
		t.Errorf("parallel run made %d calls, want 3 (one per spooled source)", parCalls)
	}
	// The three 300ms calls overlap: the parallel pipeline finishes well
	// under the sequential time.
	if parM.TAll >= seqM.TAll {
		t.Errorf("parallel TAll = %v, want < sequential %v", parM.TAll, seqM.TAll)
	}
}

// blocker is a domain whose streams block until the call context is
// cancelled — branches stuck mid-source-call for leak tests.
type blocker struct {
	name    string
	started chan struct{} // one token per stream that began blocking
}

func (b *blocker) Name() string { return b.name }
func (b *blocker) Functions() []domain.FuncSpec {
	return []domain.FuncSpec{{Name: "fast", Arity: 0}, {Name: "hang", Arity: 0}}
}
func (b *blocker) Call(ctx *domain.Ctx, fn string, args []term.Value) (domain.Stream, error) {
	if fn == "fast" {
		return domain.NewSliceStream([]term.Value{term.Int(1)}), nil
	}
	sent := false
	return domain.NewFuncStream(func() (term.Value, bool, error) {
		if !sent {
			sent = true
			select {
			case b.started <- struct{}{}:
			default:
			}
		}
		<-ctx.Context.Done()
		return nil, false, ctx.Context.Err()
	}, func() error { return nil }), nil
}

// expectGoroutines waits for the goroutine count to drop back to the
// baseline (small slack for runtime bookkeeping).
func expectGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines = %d, want <= %d; stacks:\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const blockerUnionProg = `
	u(X) :- in(X, blk:fast()).
	u(X) :- in(X, blk:hang()).
	u(X) :- in(X, blk:hang()).
	u(X) :- in(X, blk:hang()).
`

func TestSessionStopDrainsParallelBranches(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		blk := &blocker{name: "blk", started: make(chan struct{}, 8)}
		h := newHarness(t, blk)
		plan := h.plan(blockerUnionProg, "?- u(X).")

		// Wall clock: the merge is by arrival, so the fast branch's answer
		// comes through while the other branches are still blocked.
		cctx, cancel := context.WithCancel(context.Background())
		ctx := domain.NewCtx(vclock.NewWall()).WithContext(cctx)
		ctx.Sched = domain.NewSched(4)
		cur, err := h.eng.ExecutePlan(ctx, plan)
		if err != nil {
			t.Fatal(err)
		}
		sess := NewSession(cur, 1)
		batch, _, err := sess.More()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != 1 {
			t.Fatalf("first batch = %d answers, want 1", len(batch))
		}
		<-blk.started // at least one branch is blocked mid-call
		if err := sess.Stop(); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
	expectGoroutines(t, base+2)
}

func TestContextCancelDrainsParallelBranches(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		blk := &blocker{name: "blk", started: make(chan struct{}, 8)}
		h := newHarness(t, blk)
		plan := h.plan(blockerUnionProg, "?- u(X).")

		cctx, cancel := context.WithCancel(context.Background())
		ctx := domain.NewCtx(vclock.NewWall()).WithContext(cctx)
		ctx.Sched = domain.NewSched(4)
		cur, err := h.eng.ExecutePlan(ctx, plan)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			CollectAll(cur)
		}()
		<-blk.started // branches are blocked mid-call
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("CollectAll did not return after context cancellation")
		}
		cur.Close()
	}
	expectGoroutines(t, base+2)
}
