package engine

// Parallel operators. The engine's evaluation is a pull-based pipeline
// over a simulated (or wall) clock, so "parallelism" has two components
// that must stay separable:
//
//   - Real concurrency: branches run on their own goroutines, bounded by
//     the per-query scheduler (domain.Sched) threaded through the Ctx.
//   - Time accounting: each branch runs on a clock forked at launch, and
//     emissions carry the fork's reading; the consumer advances its clock
//     to an emission's timestamp before yielding it. On a virtual clock
//     the merge is by smallest timestamp, which makes parallel runs
//     deterministic — same inputs, same interleaving, same metrics. On a
//     wall clock timestamps are real time, arrival order is already
//     meaningful, and the merge is by arrival.
//
// Two operators use this machinery:
//
//   - parallelUnion evaluates the alternative rules of a union predicate
//     concurrently (cheapest-estimated-Tf-first), merging their answers.
//   - stage spools the answer streams of independent sibling in() calls
//     (proved independent by rewrite.IndependentInCalls) on producer
//     goroutines launched when the body first reaches them, and replays
//     the spool for every outer binding — the next binding's source data
//     is prefetched while the current stream drains.
//
// Operators acquire lanes with Sched.TryAcquire, which never blocks:
// under lane starvation (including any nesting depth) evaluation falls
// back to the sequential code path, so there is no deadlock by
// construction. Close/cancel paths cancel a per-operator context and
// wg.Wait for every branch, so no goroutine outlives its operator.

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"

	"hermes/internal/domain"
	"hermes/internal/lang"
	"hermes/internal/obs"
	"hermes/internal/rewrite"
	"hermes/internal/term"
	"hermes/internal/vclock"
)

// unionQueueBound caps per-branch buffered emissions; a producer that runs
// far ahead of the merge blocks until the consumer drains.
const unionQueueBound = 64

// parentContext returns the cancellation context to derive branch
// contexts from.
func parentContext(ctx *domain.Ctx) context.Context {
	if ctx.Context != nil {
		return ctx.Context
	}
	return context.Background()
}

// ctxDoneCh returns the Ctx's cancellation channel (nil — blocking
// forever in a select — when it has none).
func ctxDoneCh(ctx *domain.Ctx) <-chan struct{} {
	if ctx.Context != nil {
		return ctx.Context.Done()
	}
	return nil
}

// unionItem is one merged emission: a caller-level substitution and the
// producing branch's clock reading when it became available.
type unionItem struct {
	s  term.Subst
	at time.Duration
}

// unionBranch is the merge-side state of one rule alternative.
type unionBranch struct {
	queue []unionItem
	done  bool
	err   error
	endAt time.Duration
}

// headAt returns the timestamp of the branch's next event (an answer, or
// its terminal error). ok=false when the branch has nothing (left).
func (br *unionBranch) headAt() (at time.Duration, ok, isErr bool) {
	if len(br.queue) > 0 {
		return br.queue[0].at, true, false
	}
	if br.done && br.err != nil {
		return br.endAt, true, true
	}
	return 0, false, false
}

// parallelUnion evaluates a union predicate's alternative rules
// concurrently and merges their answers. It implements substStream.
type parallelUnion struct {
	eng  *Engine
	ctx  *domain.Ctx // consumer context
	plan *rewrite.Plan
	atom *lang.Atom
	s    term.Subst
	span *obs.Span

	mu       sync.Mutex
	cond     *sync.Cond
	branches []*unionBranch
	closed   bool

	rules []*rewrite.PlanRule // launch order (cheapest Tf first)
	// ests[i]/priced[i] retain rules[i]'s full estimated cost vector
	// (when EstimateRule priced it): the branch watchdog compares a
	// lane's elapsed clock against its estimate to detect blowouts.
	ests    []domain.CostVector
	priced  []bool
	depth   int
	ordered bool
	extra   int
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// newParallelUnion tries to set up a parallel union over the rules; it
// returns nil when the scheduler grants no extra lane (the caller then
// uses the sequential atomStream). rules must have length >= 2.
func (e *Engine) newParallelUnion(ctx *domain.Ctx, plan *rewrite.Plan, a *lang.Atom, s term.Subst, rules []*rewrite.PlanRule, depth int) *parallelUnion {
	extra := ctx.Sched.TryAcquire(len(rules) - 1)
	if extra == 0 {
		return nil
	}
	lanes := extra + 1
	ranked, ests, priced := e.rankRules(plan, a, s, rules)
	now := ctx.Clock.Now()
	span := ctx.Span.Child("union "+a.Pred, now)
	span.SetTag("parallel", strconv.Itoa(lanes))
	u := &parallelUnion{
		eng: e, ctx: ctx, plan: plan, atom: a, s: s, span: span,
		rules: ranked, ests: ests, priced: priced, depth: depth,
		ordered: !vclock.IsReal(ctx.Clock),
		extra:   extra,
	}
	u.cond = sync.NewCond(&u.mu)
	gctx, cancel := context.WithCancel(parentContext(ctx))
	u.cancel = cancel
	u.branches = make([]*unionBranch, len(ranked))
	for i := range u.branches {
		u.branches[i] = &unionBranch{}
	}
	e.cfg.Obs.Counter("hermes_engine_parallel_unions_total").Inc()
	// Static round-robin lane assignment: the cheapest alternatives head
	// each lane's work list, so they launch first.
	for lane := 0; lane < lanes; lane++ {
		var idxs []int
		for i := lane; i < len(ranked); i += lanes {
			idxs = append(idxs, i)
		}
		fork := ctx.Fork().WithContext(gctx).WithSpan(span)
		u.wg.Add(1)
		go u.runLane(fork, idxs)
	}
	return u
}

// rankRules orders the alternatives cheapest-estimated-Tf-first (stable:
// unpriced rules keep their program order, after priced ones). It also
// returns each ranked rule's full estimated cost vector (aligned with
// the returned order) so the branch watchdog can compare elapsed cost
// against the estimate the launch order was based on.
func (e *Engine) rankRules(plan *rewrite.Plan, a *lang.Atom, s term.Subst, rules []*rewrite.PlanRule) ([]*rewrite.PlanRule, []domain.CostVector, []bool) {
	if e.cfg.EstimateRule == nil {
		return rules, nil, nil
	}
	type ranked struct {
		pr     *rewrite.PlanRule
		cv     domain.CostVector
		priced bool
		tf     time.Duration
	}
	rs := make([]ranked, len(rules))
	for i, pr := range rules {
		rs[i] = ranked{pr: pr, tf: time.Duration(1<<63 - 1)}
		bound := map[string]bool{}
		for j, arg := range a.Args {
			if j < len(pr.Rule.Head.Args) && s.Ground(arg) && pr.Rule.Head.Args[j].IsVar() {
				bound[pr.Rule.Head.Args[j].Var] = true
			}
		}
		if cv, ok := e.cfg.EstimateRule(plan, pr, bound); ok {
			rs[i].cv, rs[i].priced, rs[i].tf = cv, true, cv.TFirst
		}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].tf < rs[j].tf })
	out := make([]*rewrite.PlanRule, len(rs))
	ests := make([]domain.CostVector, len(rs))
	priced := make([]bool, len(rs))
	for i, r := range rs {
		out[i], ests[i], priced[i] = r.pr, r.cv, r.priced
	}
	return out, ests, priced
}

// runLane evaluates the lane's assigned alternatives sequentially on one
// forked clock.
func (u *parallelUnion) runLane(fork *domain.Ctx, idxs []int) {
	defer u.wg.Done()
	g := u.eng.cfg.Obs.Gauge("hermes_engine_inflight_branches")
	for _, ri := range idxs {
		g.Add(1)
		ok := u.runBranch(fork, ri)
		g.Add(-1)
		if !ok {
			// Cancelled/closed: mark the lane's remaining branches done so
			// the merge never waits on them.
			u.mu.Lock()
			for _, rest := range idxs {
				if !u.branches[rest].done {
					u.branches[rest].done = true
					u.branches[rest].endAt = fork.Clock.Now()
				}
			}
			u.cond.Broadcast()
			u.mu.Unlock()
			return
		}
	}
}

// runBranch evaluates one alternative to exhaustion, pushing mapped-back
// answers. It returns false when the union was closed or cancelled.
//
// When the watchdog is armed (Config.ReplanFactor > 1, a Replan hook, a
// priced estimate for this rule, and a Ctx re-plan budget), the branch
// checks its elapsed clock against its estimate on every answer. A lane
// whose elapsed cost blows past ReplanFactor x estimate asks the
// rewriter for a cheaper body order under the bindings learned so far,
// and — if one exists and the query-wide budget grants it — abandons
// the losing order and re-evaluates under the new one. Answers already
// pushed are subtracted from the re-evaluation by multiset, so the
// union's output is exactly what a no-replan run would deliver (a
// nested-loop join's answer multiset does not depend on body order).
func (u *parallelUnion) runBranch(fork *domain.Ctx, ri int) bool {
	br := u.branches[ri]
	pr := u.rules[ri]
	settle := func(err error) {
		u.mu.Lock()
		br.done = true
		br.err = err
		br.endAt = fork.Clock.Now()
		u.cond.Broadcast()
		u.mu.Unlock()
	}
	headEnv, ok, err := bindHead(u.atom, pr.Rule, u.s)
	if err != nil {
		settle(err)
		return false
	}
	if !ok {
		settle(nil) // head constants conflict with the call: empty branch
		return true
	}
	cfg := &u.eng.cfg
	armed := cfg.ReplanFactor > 1 && cfg.Replan != nil && fork.Replans != nil &&
		ri < len(u.priced) && u.priced[ri] && u.ests[ri].TAll > 0
	for _, t := range u.atom.Args {
		if len(t.Path) > 0 {
			// Emission keys need every atom argument ground and evaluable;
			// attribute paths make that uncertain, so stay on one order.
			armed = false
			break
		}
	}
	var emitted map[string]int // multiset of pushed answers (armed only)
	replanned := false
	branchStart := fork.Clock.Now()
	it := u.eng.newBodyIter(fork, u.plan, pr, headEnv, u.depth+1)
	defer func() { it.close() }()
	for {
		env, ok, err := it.next()
		if err != nil {
			if fork.Err() != nil {
				settle(nil) // cancellation, not a branch failure
				return false
			}
			settle(err)
			return true
		}
		if !ok {
			settle(nil)
			return true
		}
		out, ok, err := mapBack(u.atom, pr.Rule, u.s, env)
		if err != nil {
			settle(err)
			return true
		}
		if !ok {
			continue
		}
		if armed && !replanned {
			if elapsed := fork.Clock.Now() - branchStart; float64(elapsed) > cfg.ReplanFactor*float64(u.ests[ri].TAll) {
				bound := make(map[string]bool, len(headEnv))
				for v := range headEnv {
					bound[v] = true
				}
				if alt, altCV, found := cfg.Replan(u.plan, pr, bound); found && alt != nil &&
					altCV.TAll < elapsed && fork.Replans.Take() {
					u.span.SetTag("replan", "1")
					cfg.Obs.Counter("hermes_plan_replans_total").Inc()
					replanned = true
					it.close()
					pr = alt
					it = u.eng.newBodyIter(fork, u.plan, pr, headEnv, u.depth+1)
					// The new order regenerates the whole relation; the
					// emitted multiset filters out what this lane already
					// pushed. The in-hand answer was not pushed, so it is
					// not counted — the re-evaluation re-delivers it.
					continue
				}
				// No acceptable alternative (or the budget is spent):
				// stop checking, ride the current order out.
				armed = false
			}
		}
		if replanned && len(emitted) > 0 {
			k := emissionKey(u.atom, out)
			if c := emitted[k]; c > 0 {
				if c == 1 {
					delete(emitted, k)
				} else {
					emitted[k] = c - 1
				}
				continue
			}
		}
		if !u.push(br, out, fork.Clock.Now()) {
			settle(nil)
			return false
		}
		if armed && !replanned {
			if emitted == nil {
				emitted = make(map[string]int)
			}
			emitted[emissionKey(u.atom, out)]++
		}
	}
}

// emissionKey renders an emission's ground atom-argument tuple as a
// multiset key (after a successful mapBack every atom argument is ground
// under out; path arguments disarm the watchdog at setup).
func emissionKey(a *lang.Atom, out term.Subst) string {
	vals := make([]term.Value, len(a.Args))
	for i, t := range a.Args {
		v, err := out.Eval(t)
		if err != nil {
			return "?" // unreachable when the watchdog is armed
		}
		vals[i] = v
	}
	return valsKey(vals)
}

// push enqueues an emission, blocking while the branch's queue is full.
// It returns false when the union was closed.
func (u *parallelUnion) push(br *unionBranch, s term.Subst, at time.Duration) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	for len(br.queue) >= unionQueueBound && !u.closed {
		u.cond.Wait()
	}
	if u.closed {
		return false
	}
	br.queue = append(br.queue, unionItem{s: s, at: at})
	u.cond.Broadcast()
	return true
}

// next merges the branches. On a deterministic clock it emits the event
// with the smallest branch timestamp, waiting until every live branch has
// one; on a real-time clock it emits whatever has arrived.
func (u *parallelUnion) next() (term.Subst, bool, error) {
	u.mu.Lock()
	for {
		if u.closed {
			u.mu.Unlock()
			return nil, false, nil
		}
		best := -1
		var bestAt time.Duration
		bestErr := false
		ready := true
		anyRunning := false
		for i, br := range u.branches {
			at, ok, isErr := br.headAt()
			if !ok {
				if !br.done {
					anyRunning = true
					if u.ordered {
						ready = false
					}
				}
				continue
			}
			if best < 0 || at < bestAt {
				best, bestAt, bestErr = i, at, isErr
			}
		}
		if u.ordered && !ready {
			u.cond.Wait()
			continue
		}
		if best < 0 {
			if anyRunning {
				u.cond.Wait()
				continue
			}
			// Exhausted: the union completes when its slowest branch does.
			var end time.Duration
			for _, br := range u.branches {
				if br.endAt > end {
					end = br.endAt
				}
			}
			u.mu.Unlock()
			u.teardown()
			vclock.AdvanceTo(u.ctx.Clock, end)
			u.span.End(u.ctx.Clock.Now())
			return nil, false, nil
		}
		br := u.branches[best]
		if bestErr {
			err := br.err
			br.err = nil // deliver once
			u.mu.Unlock()
			u.teardown()
			vclock.AdvanceTo(u.ctx.Clock, bestAt)
			u.span.SetTag("error", err.Error())
			u.span.End(u.ctx.Clock.Now())
			return nil, false, err
		}
		it := br.queue[0]
		br.queue = br.queue[1:]
		u.cond.Broadcast() // wake producers waiting on a full queue
		u.mu.Unlock()
		vclock.AdvanceTo(u.ctx.Clock, it.at)
		return it.s, true, nil
	}
}

// teardown cancels and joins every branch goroutine and returns the
// operator's lanes to the scheduler. Idempotent.
func (u *parallelUnion) teardown() {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	u.closed = true
	u.cond.Broadcast()
	u.mu.Unlock()
	u.cancel()
	u.wg.Wait()
	u.ctx.Sched.Release(u.extra)
}

func (u *parallelUnion) close() error {
	u.teardown()
	u.span.End(u.ctx.Clock.Now())
	return nil
}

// spoolItem is one prefetched source answer with its availability time on
// the producer's clock.
type spoolItem struct {
	v  term.Value
	at time.Duration
}

// spool is the materialized, replayable answer stream of one independent
// in() literal, filled eagerly by a producer goroutine.
type spool struct {
	mu    sync.Mutex
	wake  chan struct{} // closed and replaced on every state change
	items []spoolItem
	done  bool
	err   error
	endAt time.Duration
}

func newSpool() *spool {
	return &spool{wake: make(chan struct{})}
}

func (sp *spool) broadcastLocked() {
	close(sp.wake)
	sp.wake = make(chan struct{})
}

func (sp *spool) push(v term.Value, at time.Duration) {
	sp.mu.Lock()
	sp.items = append(sp.items, spoolItem{v: v, at: at})
	sp.broadcastLocked()
	sp.mu.Unlock()
}

func (sp *spool) settle(err error, at time.Duration) {
	sp.mu.Lock()
	sp.done = true
	sp.err = err
	sp.endAt = at
	sp.broadcastLocked()
	sp.mu.Unlock()
}

// get returns the idx-th answer, waiting for the producer when it has not
// arrived yet. ok=false means the spool ended before idx (err reports a
// producer failure, delivered after the answers that preceded it).
func (sp *spool) get(ctx *domain.Ctx, idx int) (spoolItem, bool, error) {
	for {
		sp.mu.Lock()
		if idx < len(sp.items) {
			it := sp.items[idx]
			sp.mu.Unlock()
			return it, true, nil
		}
		if sp.done {
			err := sp.err
			sp.mu.Unlock()
			return spoolItem{}, false, err
		}
		wake := sp.wake
		sp.mu.Unlock()
		select {
		case <-wake:
		case <-ctxDoneCh(ctx):
			return spoolItem{}, false, ctx.Err()
		}
	}
}

// end returns the producer's final clock reading (0 until settled).
func (sp *spool) end() time.Duration {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.endAt
}

// stage runs the producers for a body's independent in() literals. It is
// created when the nested-loop evaluation first reaches one of them; from
// then on those levels open replay streams over the spools instead of
// issuing a source call per outer binding.
type stage struct {
	eng    *Engine
	sched  *domain.Sched
	extra  int
	spools map[int]*spool // execution position -> spool
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed bool
}

// newStage spools as many of the independent levels as the scheduler
// grants lanes for, beyond the first (which the consumer evaluates
// inline). Returns nil when no extra lane is available.
func (e *Engine) newStage(ctx *domain.Ctx, pr *rewrite.PlanRule, base term.Subst, indep []int) *stage {
	extra := ctx.Sched.TryAcquire(len(indep) - 1)
	if extra == 0 {
		return nil
	}
	gctx, cancel := context.WithCancel(parentContext(ctx))
	st := &stage{
		eng: e, sched: ctx.Sched, extra: extra,
		spools: make(map[int]*spool, extra),
		cancel: cancel,
	}
	e.cfg.Obs.Counter("hermes_engine_parallel_stages_total").Inc()
	ctx.Span.SetTag("parallel", strconv.Itoa(extra+1))
	for i := 1; i <= extra; i++ {
		level := indep[i]
		bi := pr.Order[level]
		lit, ok := pr.Rule.Body[bi].(*lang.InCall)
		if !ok {
			continue
		}
		sp := newSpool()
		st.spools[level] = sp
		fork := ctx.Fork().WithContext(gctx)
		st.wg.Add(1)
		go st.run(fork, lit, pr.Routes[bi], base, sp)
	}
	return st
}

// run is the producer: it issues the literal's source call on its own
// forked clock and drains it eagerly into the spool (prefetch).
func (st *stage) run(fork *domain.Ctx, lit *lang.InCall, route rewrite.Route, base term.Subst, sp *spool) {
	defer st.wg.Done()
	g := st.eng.cfg.Obs.Gauge("hermes_engine_inflight_branches")
	g.Add(1)
	defer g.Add(-1)
	stream, err := st.eng.openCallStream(fork, lit, route, base)
	if err != nil {
		sp.settle(err, fork.Clock.Now())
		return
	}
	defer stream.Close()
	for {
		if err := fork.Err(); err != nil {
			sp.settle(err, fork.Clock.Now())
			return
		}
		v, ok, err := stream.Next()
		if err != nil {
			sp.settle(err, fork.Clock.Now())
			return
		}
		if !ok {
			sp.settle(nil, fork.Clock.Now())
			return
		}
		sp.push(v, fork.Clock.Now())
	}
}

// open returns a replay stream when the level is spooled.
func (st *stage) open(level int, out string, s term.Subst, ctx *domain.Ctx) (substStream, bool) {
	sp, ok := st.spools[level]
	if !ok {
		return nil, false
	}
	return &replayStream{sp: sp, ctx: ctx, v: out, s: s}, true
}

// close cancels the producers and joins them. Idempotent.
func (st *stage) close() {
	if st.closed {
		return
	}
	st.closed = true
	st.cancel()
	st.wg.Wait()
	st.sched.Release(st.extra)
}

// replayStream binds spool answers into the current substitution. The
// first pass advances the consumer clock to each answer's availability
// time; replays for later outer bindings find the clock already past and
// cost nothing, like a cache hit.
type replayStream struct {
	sp   *spool
	ctx  *domain.Ctx
	v    string
	s    term.Subst
	idx  int
	done bool
}

func (r *replayStream) next() (term.Subst, bool, error) {
	if r.done {
		return nil, false, nil
	}
	it, ok, err := r.sp.get(r.ctx, r.idx)
	if err != nil {
		r.done = true
		vclock.AdvanceTo(r.ctx.Clock, r.sp.end())
		return nil, false, err
	}
	if !ok {
		r.done = true
		vclock.AdvanceTo(r.ctx.Clock, r.sp.end())
		return nil, false, nil
	}
	r.idx++
	vclock.AdvanceTo(r.ctx.Clock, it.at)
	out := r.s.Clone()
	out[r.v] = it.v
	return out, true, nil
}

func (r *replayStream) close() error { return nil }
