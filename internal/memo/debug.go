package memo

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// entryView is a scored snapshot row for the debug listing.
type entryView struct {
	e     *Entry
	score float64
}

// Format renders the cache state as text: the activity counters followed by
// the top-k entries by decayed benefit score.
func (c *Cache) Format(k int) string {
	st := c.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "memo: %d entries, %d bytes\n", c.Len(), c.Bytes())
	fmt.Fprintf(&b, "hits=%d misses=%d stores=%d rejected=%d evictions=%d invalidations=%d\n",
		st.Hits, st.Misses, st.Stores, st.RejectedStores, st.Evictions, st.Invalidations)
	fmt.Fprintf(&b, "degraded: stores=%d skips=%d  flights: shares=%d fallbacks=%d\n",
		st.DegradedStores, st.DegradedSkips, st.FlightShares, st.FlightFallbacks)
	fmt.Fprintf(&b, "saved=%s\n", st.Saved.Round(time.Millisecond))

	now := c.tick.Load()
	entries := c.store.snapshot()
	views := make([]entryView, 0, len(entries))
	c.scoreMu.Lock()
	for _, e := range entries {
		views = append(views, entryView{e: e, score: c.decayedScoreLocked(e, now)})
	}
	c.scoreMu.Unlock()
	sort.Slice(views, func(i, j int) bool {
		if views[i].score != views[j].score {
			return views[i].score > views[j].score
		}
		return views[i].e.Key < views[j].e.Key
	})
	if k > 0 && len(views) > k {
		views = views[:k]
	}
	if len(views) > 0 {
		fmt.Fprintf(&b, "\ntop entries by decayed benefit:\n")
	}
	for _, v := range views {
		tag := ""
		if v.e.Degraded {
			tag = " DEGRADED"
		}
		fmt.Fprintf(&b, "  %8.1f  %4d tuples  %6dB  cost=%s  inputs=%d%s  %s\n",
			v.score, len(v.e.Tuples), v.e.Bytes,
			v.e.Cost.TAll.Round(time.Millisecond), len(v.e.Inputs), tag, v.e.Key)
	}
	return b.String()
}

// DebugHandler serves the Format listing over HTTP (hermesd's /debug/memo).
func (c *Cache) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, c.Format(20))
	})
}
