package memo

import (
	"sync"
	"sync/atomic"
)

// numShards mirrors the CIM store's lock-shard count: parallel branches
// probe the memo concurrently, and 16 shards keep them from serializing
// behind one lock.
const numShards = 16

// store is the sharded entry map. Entries are immutable once stored apart
// from their benefit-score fields, which the Cache guards separately, so
// readers need only the shard read-lock.
type store struct {
	shards [numShards]storeShard
	count  atomic.Int64
	bytes  atomic.Int64
}

type storeShard struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

func newStore() *store {
	s := &store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Entry)
	}
	return s
}

// shardIdx hashes a memo key to its shard (FNV-1a).
func shardIdx(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % numShards)
}

func (s *store) get(key string) (*Entry, bool) {
	sh := &s.shards[shardIdx(key)]
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	return e, ok
}

// put inserts or replaces the entry for key, maintaining the global
// tallies, and returns the replaced entry (nil on fresh insert) so the
// caller can unhook its invalidation index references.
func (s *store) put(key string, e *Entry) *Entry {
	sh := &s.shards[shardIdx(key)]
	sh.mu.Lock()
	old := sh.m[key]
	sh.m[key] = e
	sh.mu.Unlock()
	if old != nil {
		s.bytes.Add(int64(-old.Bytes))
	} else {
		s.count.Add(1)
	}
	s.bytes.Add(int64(e.Bytes))
	return old
}

// removeIf deletes key only while it still maps to e (eviction and
// invalidation race with replacement), reporting whether it removed
// anything.
func (s *store) removeIf(key string, e *Entry) bool {
	sh := &s.shards[shardIdx(key)]
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if !ok || cur != e {
		sh.mu.Unlock()
		return false
	}
	delete(sh.m, key)
	sh.mu.Unlock()
	s.count.Add(-1)
	s.bytes.Add(int64(-e.Bytes))
	return true
}

// snapshot returns the current entries; scans (eviction victim selection,
// debug views) work on it so no shard lock is held while scoring.
func (s *store) snapshot() []*Entry {
	var out []*Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	return out
}
