package memo

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hermes/internal/domain"
	"hermes/internal/term"
)

func fillKey(i int) string {
	return KeyOf(1, fmt.Sprintf("p%d", i), "f", []KeyArg{{Var: "X"}})
}

// commitEntry drives a full leader fill through the public API.
func commitEntry(t *testing.T, c *Cache, key string, tuples [][]term.Value, inputs []string, degraded bool, cost time.Duration) {
	t.Helper()
	res := c.Probe(key)
	if res.Rec == nil {
		t.Fatalf("Probe(%q) did not make us the fill leader: %+v", key, res)
	}
	for _, in := range inputs {
		res.Rec.Note(in, degraded)
	}
	for i, tu := range tuples {
		res.Rec.Add(tu, time.Duration(i)*time.Millisecond)
	}
	res.Rec.Commit(cost, domain.CostVector{TAll: cost, Card: float64(len(tuples))})
}

func TestStoreAndHit(t *testing.T) {
	c := New(DefaultConfig())
	key := fillKey(0)
	tuples := [][]term.Value{{term.Str("a")}, {term.Str("b")}, {term.Str("a")}}
	commitEntry(t, c, key, tuples, []string{"d:f(s\"x\")"}, false, 120*time.Millisecond)

	res := c.Probe(key)
	if res.Entry == nil {
		t.Fatalf("expected hit after commit, got %+v", res)
	}
	if len(res.Entry.Tuples) != 3 {
		t.Fatalf("entry has %d tuples, want 3 (multiplicity must be preserved)", len(res.Entry.Tuples))
	}
	st := c.Stats()
	if st.Hits != 1 || st.Stores != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 store, 1 miss", st)
	}
	if st.Saved != 120*time.Millisecond {
		t.Errorf("saved = %v, want 120ms", st.Saved)
	}
	if c.Len() != 1 || c.Bytes() == 0 {
		t.Errorf("Len=%d Bytes=%d, want 1 entry with nonzero bytes", c.Len(), c.Bytes())
	}
	// The second leader-probe above (none) must not have created a flight.
	c.flightMu.Lock()
	n := len(c.flights)
	c.flightMu.Unlock()
	if n != 0 {
		t.Errorf("%d flights left open after a hit", n)
	}
}

func TestSavingsHook(t *testing.T) {
	c := New(DefaultConfig())
	var gotKey string
	var gotSaved time.Duration
	c.SetSavingsHook(func(k string, d time.Duration) { gotKey, gotSaved = k, d })
	key := fillKey(0)
	commitEntry(t, c, key, nil, nil, false, 80*time.Millisecond)
	c.Probe(key)
	if gotKey != key || gotSaved != 80*time.Millisecond {
		t.Errorf("savings hook got (%q, %v), want (%q, 80ms)", gotKey, gotSaved, key)
	}
}

func TestDegradedEntryNeverServed(t *testing.T) {
	c := New(DefaultConfig())
	key := fillKey(0)
	commitEntry(t, c, key, [][]term.Value{{term.Int(1)}}, []string{"d:f()"}, true, 50*time.Millisecond)

	if c.Serveable(key) {
		t.Fatal("degraded entry reported serveable")
	}
	res := c.Probe(key)
	if res.Entry != nil {
		t.Fatal("degraded entry was served as a hit")
	}
	if res.Rec == nil {
		t.Fatal("probe over a degraded entry should lead a fresh fill")
	}
	st := c.Stats()
	if st.DegradedStores != 1 || st.DegradedSkips != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 1 degraded store, 1 degraded skip, 0 hits", st)
	}
	// Re-filling with a sound result replaces the degraded entry.
	for _, tu := range [][]term.Value{{term.Int(1)}, {term.Int(2)}} {
		res.Rec.Add(tu, 0)
	}
	res.Rec.Note("d:f()", false)
	res.Rec.Commit(time.Millisecond, domain.CostVector{TAll: 40 * time.Millisecond, Card: 2})
	if !c.Serveable(key) {
		t.Fatal("sound refill not serveable")
	}
}

func TestInvalidateInput(t *testing.T) {
	c := New(DefaultConfig())
	kA, kB := fillKey(0), fillKey(1)
	commitEntry(t, c, kA, nil, []string{"call1", "call2"}, false, 60*time.Millisecond)
	commitEntry(t, c, kB, nil, []string{"call2", "call3"}, false, 60*time.Millisecond)

	c.InvalidateInput("call3")
	if c.Serveable(kA) != true || c.Serveable(kB) != false {
		t.Fatalf("call3 invalidation: A serveable=%v B serveable=%v, want true/false", c.Serveable(kA), c.Serveable(kB))
	}
	c.InvalidateInput("call2")
	if c.Serveable(kA) {
		t.Fatal("call2 invalidation left A serveable")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", st.Invalidations)
	}
	// The reverse index must be fully unhooked.
	c.invMu.Lock()
	n := len(c.inputIdx)
	c.invMu.Unlock()
	if n != 0 {
		t.Errorf("inputIdx has %d stale keys after full invalidation", n)
	}
}

func TestInvalidateUnknownInputIsNoop(t *testing.T) {
	c := New(DefaultConfig())
	commitEntry(t, c, fillKey(0), nil, []string{"call1"}, false, 60*time.Millisecond)
	c.InvalidateInput("no-such-call")
	if !c.Serveable(fillKey(0)) || c.Stats().Invalidations != 0 {
		t.Error("unrelated invalidation touched the entry")
	}
}

func TestAdmissionThresholds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinBenefit = 10 * time.Millisecond
	cfg.MaxEntryBytes = 16
	c := New(cfg)

	// Too cheap to store.
	commitEntry(t, c, fillKey(0), [][]term.Value{{term.Int(1)}}, nil, false, time.Millisecond)
	if c.Serveable(fillKey(0)) {
		t.Error("below-MinBenefit fill was admitted")
	}
	// Too large to store (3 ints = 24 bytes > 16).
	commitEntry(t, c, fillKey(1),
		[][]term.Value{{term.Int(1)}, {term.Int(2)}, {term.Int(3)}}, nil, false, time.Second)
	if c.Serveable(fillKey(1)) {
		t.Error("oversized fill was admitted")
	}
	if st := c.Stats(); st.RejectedStores != 2 || st.Stores != 0 {
		t.Errorf("stats = %+v, want 2 rejected stores, 0 stores", st)
	}
}

func TestEvictionPrefersLowDecayedBenefit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEntries = 2
	cfg.Decay = 0.5
	c := New(cfg)

	commitEntry(t, c, fillKey(0), nil, nil, false, 100*time.Millisecond)
	commitEntry(t, c, fillKey(1), nil, nil, false, 10*time.Millisecond)
	// Repeated hits on the cheap entry outweigh the expensive idle one
	// under decay.
	for i := 0; i < 8; i++ {
		if c.Probe(fillKey(1)).Entry == nil {
			t.Fatal("expected hit on entry 1")
		}
	}
	commitEntry(t, c, fillKey(2), nil, nil, false, 20*time.Millisecond)
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", c.Len())
	}
	if c.Serveable(fillKey(0)) {
		t.Error("idle expensive entry survived; decayed benefit should have evicted it")
	}
	if !c.Serveable(fillKey(1)) || !c.Serveable(fillKey(2)) {
		t.Error("recently valuable entries were evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestSingleFlightFollowerReplay(t *testing.T) {
	c := New(DefaultConfig())
	key := fillKey(0)
	lead := c.Probe(key)
	if lead.Rec == nil {
		t.Fatal("first probe should lead")
	}
	follow := c.Probe(key)
	if follow.Reader == nil {
		t.Fatal("second probe should follow the in-progress fill")
	}

	lead.Rec.Note("call1", false)
	lead.Rec.Add([]term.Value{term.Int(1)}, 5*time.Millisecond)
	lead.Rec.Add([]term.Value{term.Int(2)}, 7*time.Millisecond)

	it, st := follow.Reader.Next(nil)
	if st != ReadItem || !term.Equal(it.Vals[0], term.Int(1)) || it.At != 5*time.Millisecond {
		t.Fatalf("first replay = (%+v, %v)", it, st)
	}
	it, st = follow.Reader.Next(nil)
	if st != ReadItem || !term.Equal(it.Vals[0], term.Int(2)) {
		t.Fatalf("second replay = (%+v, %v)", it, st)
	}

	// Follower catches up, then the leader commits: the wait must resolve
	// to a committed end carrying the inputs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, st := follow.Reader.Next(nil)
		if st != ReadEndCommitted {
			t.Errorf("end state = %v, want ReadEndCommitted", st)
			return
		}
		inputs, degraded, endAt := follow.Reader.Result()
		if len(inputs) != 1 || inputs[0] != "call1" || degraded || endAt != 9*time.Millisecond {
			t.Errorf("Result() = (%v, %v, %v)", inputs, degraded, endAt)
		}
	}()
	lead.Rec.Commit(9*time.Millisecond, domain.CostVector{TAll: 9 * time.Millisecond, Card: 2})
	<-done

	if stats := c.Stats(); stats.FlightShares != 1 {
		t.Errorf("flight shares = %d, want 1", stats.FlightShares)
	}
	if !c.Serveable(key) {
		t.Error("committed fill not serveable")
	}
}

func TestSingleFlightAbortFallsBack(t *testing.T) {
	c := New(DefaultConfig())
	key := fillKey(0)
	lead := c.Probe(key)
	follow := c.Probe(key)
	lead.Rec.Add([]term.Value{term.Int(1)}, time.Millisecond)
	lead.Rec.Abort(2 * time.Millisecond)

	it, st := follow.Reader.Next(nil)
	if st != ReadItem || !term.Equal(it.Vals[0], term.Int(1)) {
		t.Fatalf("replay before abort = (%+v, %v)", it, st)
	}
	if _, st = follow.Reader.Next(nil); st != ReadEndAborted {
		t.Fatalf("end state = %v, want ReadEndAborted", st)
	}
	if c.Serveable(key) {
		t.Error("aborted fill produced a serveable entry")
	}
	if stats := c.Stats(); stats.FlightFallbacks != 1 {
		t.Errorf("flight fallbacks = %d, want 1", stats.FlightFallbacks)
	}
	// The flight slot must be free for the next prober to lead.
	if res := c.Probe(key); res.Rec == nil {
		t.Error("probe after abort should lead a fresh fill")
	}
}

func TestFlightReaderCancel(t *testing.T) {
	c := New(DefaultConfig())
	key := fillKey(0)
	c.Probe(key) // leader, never commits
	follow := c.Probe(key)
	cancel := make(chan struct{})
	close(cancel)
	if _, st := follow.Reader.Next(cancel); st != ReadCancelled {
		t.Fatalf("state = %v, want ReadCancelled", st)
	}
}

func TestConcurrentFillsAndInvalidations(t *testing.T) {
	// Race-detector stress: concurrent leaders, followers, probes and
	// invalidations over a small key space.
	cfg := DefaultConfig()
	cfg.MaxEntries = 8
	c := New(cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				key := fillKey(rng.Intn(4))
				switch res := c.Probe(key); {
				case res.Rec != nil:
					res.Rec.Note(fmt.Sprintf("call%d", rng.Intn(3)), rng.Intn(10) == 0)
					res.Rec.Add([]term.Value{term.Int(int64(i))}, time.Duration(i))
					if rng.Intn(5) == 0 {
						res.Rec.Abort(time.Duration(i))
					} else {
						res.Rec.Commit(time.Duration(i), domain.CostVector{TAll: time.Duration(rng.Intn(100)) * time.Millisecond})
					}
				case res.Reader != nil:
					for {
						if _, st := res.Reader.Next(nil); st != ReadItem {
							break
						}
					}
				}
				if rng.Intn(7) == 0 {
					c.InvalidateInput(fmt.Sprintf("call%d", rng.Intn(3)))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("Len = %d exceeds MaxEntries", c.Len())
	}
}

// TestPropertyInvalidatedInputsNeverServed drives a seeded random schedule
// of fills, hits, evictions and invalidations against a ground-truth
// model, asserting the memo never serves a relation any of whose inputs
// was invalidated after the relation was committed.
func TestPropertyInvalidatedInputsNeverServed(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.MaxEntries = 6
		cfg.Decay = 0.9
		c := New(cfg)
		// live[key] = the input set of the currently valid fill, nil when
		// the key must not be served.
		live := map[string][]string{}
		inputs := []string{"in0", "in1", "in2", "in3"}
		for step := 0; step < 500; step++ {
			switch rng.Intn(4) {
			case 0, 1: // fill or probe
				key := fillKey(rng.Intn(10))
				res := c.Probe(key)
				if res.Entry != nil {
					want, ok := live[key]
					if !ok {
						t.Fatalf("seed %d step %d: served %q, which was invalidated or never committed", seed, step, key)
					}
					if len(res.Entry.Inputs) != len(want) {
						t.Fatalf("seed %d step %d: served %q with stale input set %v (want %v)", seed, step, key, res.Entry.Inputs, want)
					}
				} else if res.Rec != nil {
					var ins []string
					for _, in := range inputs {
						if rng.Intn(2) == 0 {
							ins = append(ins, in)
							res.Rec.Note(in, false)
						}
					}
					res.Rec.Commit(time.Millisecond, domain.CostVector{TAll: time.Duration(1+rng.Intn(50)) * time.Millisecond})
					live[key] = ins
				}
			case 2: // invalidate one input
				in := inputs[rng.Intn(len(inputs))]
				c.InvalidateInput(in)
				for k, ins := range live {
					for _, i2 := range ins {
						if i2 == in {
							delete(live, k)
							break
						}
					}
				}
			case 3: // spot-check Serveable against the model (evictions may
				// have dropped a live entry; that is allowed, the reverse —
				// serving a dead one — is not)
				key := fillKey(rng.Intn(10))
				if _, ok := live[key]; !ok && c.Serveable(key) {
					t.Fatalf("seed %d step %d: %q serveable after invalidation", seed, step, key)
				}
			}
		}
	}
}
