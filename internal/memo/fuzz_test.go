package memo

import (
	"strconv"
	"strings"
	"testing"

	"hermes/internal/term"
)

// parseSpec turns a comma-separated argument spec into key args: a token
// in single quotes is a bound string, a token of digits is a bound
// integer, anything else is a free variable named by the token. It mirrors
// how the engine classifies run-time argument positions.
func parseSpec(spec string) ([]KeyArg, string) {
	if spec == "" {
		return nil, ""
	}
	toks := strings.Split(spec, ",")
	args := make([]KeyArg, 0, len(toks))
	adorn := make([]byte, 0, len(toks))
	for _, tok := range toks {
		if len(tok) >= 2 && tok[0] == '\'' && tok[len(tok)-1] == '\'' {
			args = append(args, KeyArg{Bound: true, ValueKey: term.Str(tok[1 : len(tok)-1]).Key()})
			adorn = append(adorn, 'b')
			continue
		}
		if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
			args = append(args, KeyArg{Bound: true, ValueKey: term.Int(n).Key()})
			adorn = append(adorn, 'b')
			continue
		}
		args = append(args, KeyArg{Var: tok})
		adorn = append(adorn, 'f')
	}
	return args, string(adorn)
}

// renameVars applies an injective renaming to the free variables (suffix
// by first-occurrence index keeps distinct names distinct).
func renameVars(args []KeyArg) []KeyArg {
	seen := map[string]string{}
	out := make([]KeyArg, len(args))
	for i, a := range args {
		out[i] = a
		if a.Bound {
			continue
		}
		fresh, ok := seen[a.Var]
		if !ok {
			fresh = "renamed_" + strconv.Itoa(len(seen)) + "_" + a.Var
			seen[a.Var] = fresh
		}
		out[i].Var = fresh
	}
	return out
}

// FuzzKeyCanonicalization checks the key invariants over arbitrary
// predicate names and argument specs: α-equivalent occurrences always
// share a key, while changing the binding structure, a bound value, or
// the plan fingerprint always separates them.
func FuzzKeyCanonicalization(f *testing.F) {
	f.Add("actors", "X")
	f.Add("query1", "'rope',Frame")
	f.Add("p", "X,X")
	f.Add("p", "X,Y")
	f.Add("q", "12,X,'a',X,Y")
	f.Add("r", "")
	f.Add("rel", "A,B,A,37")
	f.Fuzz(func(t *testing.T, pred string, spec string) {
		args, adorn := parseSpec(spec)
		key := KeyOf(42, pred, adorn, args)

		// Determinism.
		if again := KeyOf(42, pred, adorn, args); again != key {
			t.Fatalf("key not deterministic: %q vs %q", key, again)
		}
		// α-equivalence: injective renaming preserves the key.
		if renamed := KeyOf(42, pred, adorn, renameVars(args)); renamed != key {
			t.Errorf("injective renaming changed the key:\n  %q\n  %q", key, renamed)
		}
		// Fingerprint separates plans.
		if other := KeyOf(43, pred, adorn, args); other == key {
			t.Error("different fingerprints share a key")
		}

		// Merging two distinct free variables changes the equality
		// structure and must change the key.
		varIdx := map[string][]int{}
		order := []string{}
		for i, a := range args {
			if !a.Bound {
				if _, ok := varIdx[a.Var]; !ok {
					order = append(order, a.Var)
				}
				varIdx[a.Var] = append(varIdx[a.Var], i)
			}
		}
		if len(order) >= 2 {
			merged := make([]KeyArg, len(args))
			copy(merged, args)
			for _, i := range varIdx[order[1]] {
				merged[i].Var = order[0]
			}
			if KeyOf(42, pred, adorn, merged) == key {
				t.Errorf("merging free vars %q and %q did not change the key %q", order[0], order[1], key)
			}
		}

		// Changing any bound value changes the key.
		for i, a := range args {
			if !a.Bound {
				continue
			}
			mutated := make([]KeyArg, len(args))
			copy(mutated, args)
			mutated[i].ValueKey = term.Str("mutated:" + a.ValueKey).Key()
			if KeyOf(42, pred, adorn, mutated) == key {
				t.Errorf("mutating bound arg %d did not change the key %q", i, key)
			}
		}
	})
}
