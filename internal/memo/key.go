package memo

import (
	"strconv"
	"strings"
)

// Memo keys canonicalize IDB subgoal occurrences so that two α-equivalent
// occurrences — same predicate, same adornment, same ground values at the
// bound positions, and the same equality structure among the free
// variables — always map to the same cache entry, while any occurrence
// that could evaluate differently maps elsewhere. The free-variable
// structure matters because the engine filters answers caller-side: an
// occurrence p(X, X) keeps only the tuples whose first and second
// components agree, so it must not share an entry with p(X, Y).

// KeyArg describes one argument position of a subgoal occurrence, as seen
// at run time: either bound to a ground value (identified by the value's
// canonical term.Value Key encoding) or a free bare variable.
type KeyArg struct {
	// Bound marks a position that is ground under the caller's
	// substitution.
	Bound bool
	// ValueKey is the canonical encoding of the ground value (Bound only).
	ValueKey string
	// Var is the variable name (free positions only). Names are α-renamed
	// away by KeyOf; only the pattern of repetitions survives.
	Var string
}

// KeyOf builds the canonical memo key for a subgoal occurrence.
//
// fingerprint pins the rule set the occurrence evaluates under (the
// rewriter plan's rendered rules): entries never cross plans whose rules,
// orderings or routings differ, which is conservative but always sound.
// pred and adorn are the paper's p^bf occurrence context. Free variables
// are numbered v0, v1, ... in first-occurrence order, so the key encodes
// exactly which positions must agree and nothing about the names the rule
// author chose.
func KeyOf(fingerprint uint64, pred, adorn string, args []KeyArg) string {
	var b strings.Builder
	b.WriteString(pred)
	b.WriteByte('^')
	b.WriteString(adorn)
	b.WriteString("|#")
	b.WriteString(strconv.FormatUint(fingerprint, 16))
	var ids map[string]int
	for _, a := range args {
		b.WriteByte('|')
		if a.Bound {
			b.WriteString(a.ValueKey)
			continue
		}
		if ids == nil {
			ids = make(map[string]int)
		}
		id, ok := ids[a.Var]
		if !ok {
			id = len(ids)
			ids[a.Var] = id
		}
		b.WriteByte('v')
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}
