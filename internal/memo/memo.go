// Package memo is the rule-level memo cache: where the CIM (internal/cim)
// caches the answers of ground *domain calls*, the memo caches whole
// *intermediate relations* — the answer tuples of an IDB subgoal occurrence
// (predicate + adornment + bound values + free-variable structure, key.go).
// The engine consults it before re-expanding a subgoal, so repeated traffic
// skips not just the source calls but the joins, unions and per-rule
// bookkeeping above them; following "Don't Trash your Intermediate Results,
// Cache 'em" (Roy et al.), admission and eviction are benefit-driven: each
// entry carries an exponentially decayed score of the compute time its hits
// avoided, and the lowest-scoring entries are evicted first.
//
// Soundness machinery:
//
//   - Every entry records the set of domain-call keys that contributed to
//     it (Inputs). The CIM fires Cache.InvalidateInput whenever one of
//     those calls is refreshed, evicted or served degraded, and the memo
//     drops every dependent entry.
//   - Entries built while a source was down (any contributing call served
//     degraded) are stored tagged Degraded and are never served: the next
//     evaluation after recovery replaces them with a fresh entry.
//   - Concurrent identical subgoals coalesce into one fill (a flight): the
//     first occurrence evaluates and publishes tuples as they arrive, the
//     others replay the publication stream; if the leader abandons the fill
//     (error, early close), followers fall back to their own evaluation,
//     subtracting the multiset of tuples they already emitted.
package memo

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/domain"
	"hermes/internal/obs"
	"hermes/internal/term"
)

// Config tunes the memo cache. Zero cost/decay fields take the defaults;
// MaxEntries/MaxBytes zero mean unlimited.
type Config struct {
	// MaxEntries bounds the number of cached relations (0 = unlimited).
	MaxEntries int
	// MaxBytes bounds the total cached tuple bytes (0 = unlimited).
	MaxBytes int
	// Decay is the per-operation multiplicative decay of each entry's
	// benefit score: after n cache operations without a hit an entry's
	// score has shrunk by Decay^n, so eviction tracks recent value rather
	// than lifetime totals. Must be in (0, 1]; 1 disables decay; 0 takes
	// the default.
	Decay float64
	// MinBenefit is the admission threshold: fills whose observed compute
	// time is below it are not stored (the relation is too cheap to be
	// worth a slot). 0 admits everything.
	MinBenefit time.Duration
	// MaxEntryBytes skips storing any single relation larger than this
	// (0 takes the default; negative = unlimited).
	MaxEntryBytes int
	// LookupCost is charged to the query clock per memo probe.
	LookupCost time.Duration
	// PerTuple is charged per tuple replayed from a memo entry or flight.
	PerTuple time.Duration
}

// Defaults; the probe/replay costs are far below the CIM's per-call costs
// because a memo hit replaces whole join pipelines, not one source call.
const (
	defaultMaxEntries    = 512
	defaultMaxBytes      = 8 << 20
	defaultDecay         = 0.98
	defaultMaxEntryBytes = 256 << 10
	defaultLookupCost    = 500 * time.Microsecond
	defaultPerTuple      = 200 * time.Microsecond
)

// DefaultConfig returns the configuration used by hermesd and the
// experiments.
func DefaultConfig() Config {
	return Config{
		MaxEntries:    defaultMaxEntries,
		MaxBytes:      defaultMaxBytes,
		Decay:         defaultDecay,
		MaxEntryBytes: defaultMaxEntryBytes,
		LookupCost:    defaultLookupCost,
		PerTuple:      defaultPerTuple,
	}
}

func (cfg Config) normalized() Config {
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		cfg.Decay = defaultDecay
	}
	if cfg.MaxEntryBytes == 0 {
		cfg.MaxEntryBytes = defaultMaxEntryBytes
	}
	if cfg.LookupCost == 0 {
		cfg.LookupCost = defaultLookupCost
	}
	if cfg.PerTuple == 0 {
		cfg.PerTuple = defaultPerTuple
	}
	return cfg
}

// Stats count memo activity.
type Stats struct {
	// Hits are probes served from a committed, non-degraded entry.
	Hits int
	// Misses are probes that found nothing serveable (including degraded
	// skips) and so either led or followed a fill.
	Misses int
	// Stores counts committed fills admitted into the cache.
	Stores int
	// DegradedStores counts committed fills stored tagged Degraded because
	// a contributing domain call was served degraded (cached-while-down).
	DegradedStores int
	// DegradedSkips counts probes that found only a degraded entry and
	// refused to serve it.
	DegradedSkips int
	// RejectedStores counts fills that completed but failed admission
	// (below MinBenefit, or oversized).
	RejectedStores int
	// Evictions counts budget evictions.
	Evictions int
	// Invalidations counts entries dropped because a contributing domain
	// call was refreshed, evicted or degraded.
	Invalidations int
	// FlightShares counts probes that attached to an in-progress fill
	// instead of evaluating the subgoal themselves.
	FlightShares int
	// FlightFallbacks counts followers whose flight aborted and who fell
	// back to their own evaluation.
	FlightFallbacks int
	// Saved is the total compute time hits avoided (the sum of serving
	// entries' observed fill costs).
	Saved time.Duration
}

// Entry is one cached intermediate relation. Immutable once stored except
// for the benefit-score fields, which the Cache guards.
type Entry struct {
	// Key is the canonical subgoal key (key.go).
	Key string
	// Tuples are the relation's rows — the ground values of the subgoal's
	// argument positions, one row per answer, preserving multiplicity and
	// emission order (the engine does no duplicate elimination).
	Tuples [][]term.Value
	// Inputs are the domain-call keys that contributed answers to the
	// fill; any of them being refreshed, evicted or degraded invalidates
	// the entry.
	Inputs []string
	// Degraded marks a relation built while a contributing source was
	// down. Degraded entries are kept (visible in /debug/memo) but never
	// served.
	Degraded bool
	// Cost is the observed cost of the fill that produced the relation:
	// what a hit on this entry avoids.
	Cost  domain.CostVector
	Bytes int

	// Benefit score, guarded by Cache.scoreMu: score decays by
	// Config.Decay per cache operation and grows by the avoided cost on
	// every hit.
	score     float64
	scoreTick int64
	lastUsed  int64
}

// Cache is the rule-level memo cache. Safe for concurrent use by parallel
// query branches.
type Cache struct {
	cfg Config

	store *store
	// tick is the operation counter that drives score decay and recency.
	tick atomic.Int64

	statsMu sync.Mutex
	stats   Stats

	// scoreMu guards the entries' benefit-score fields.
	scoreMu sync.Mutex

	// invMu guards the reverse index from domain-call keys to the entries
	// that depend on them.
	invMu    sync.Mutex
	inputIdx map[string]map[string]*Entry

	// flightMu guards the in-progress fill index.
	flightMu sync.Mutex
	flights  map[string]*flight

	// evictMu serializes budget enforcement.
	evictMu sync.Mutex

	hookMu sync.RWMutex
	ob     *obs.Observer
	// onSavings credits a hit's avoided cost to an external ledger (the
	// mediator wires it to the CIM savings ledger's "(memo)" bucket).
	onSavings func(entryKey string, saved time.Duration)
}

// New builds a memo cache.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:      cfg.normalized(),
		store:    newStore(),
		inputIdx: make(map[string]map[string]*Entry),
		flights:  make(map[string]*flight),
	}
}

// SetObserver installs the observability sink for the hermes_memo_*
// metrics. Nil-safe like every obs use.
func (c *Cache) SetObserver(o *obs.Observer) {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	c.ob = o
}

// SetSavingsHook installs the external savings ledger credit: called once
// per hit with the serving entry's key and avoided cost.
func (c *Cache) SetSavingsHook(fn func(entryKey string, saved time.Duration)) {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	c.onSavings = fn
}

func (c *Cache) obs() *obs.Observer {
	c.hookMu.RLock()
	defer c.hookMu.RUnlock()
	return c.ob
}

func (c *Cache) savingsHook() func(string, time.Duration) {
	c.hookMu.RLock()
	defer c.hookMu.RUnlock()
	return c.onSavings
}

func (c *Cache) bumpStats(fn func(*Stats)) {
	c.statsMu.Lock()
	fn(&c.stats)
	c.statsMu.Unlock()
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// Len returns the number of cached relations.
func (c *Cache) Len() int { return int(c.store.count.Load()) }

// Bytes returns the total cached tuple bytes.
func (c *Cache) Bytes() int { return int(c.store.bytes.Load()) }

// LookupCost is the clock cost the engine charges per probe.
func (c *Cache) LookupCost() time.Duration { return c.cfg.LookupCost }

// PerTupleCost is the clock cost the engine charges per replayed tuple.
func (c *Cache) PerTupleCost() time.Duration { return c.cfg.PerTuple }

// occupancy refreshes the size gauges.
func (c *Cache) occupancy() {
	o := c.obs()
	o.Gauge("hermes_memo_entries").Set(float64(c.store.count.Load()))
	o.Gauge("hermes_memo_bytes").Set(float64(c.store.bytes.Load()))
}

// ProbeResult is the outcome of consulting the memo for a subgoal
// occurrence: exactly one field is non-nil.
type ProbeResult struct {
	// Entry is a committed, non-degraded relation to replay (hit).
	Entry *Entry
	// Reader follows an in-progress fill of the same key started by a
	// concurrent occurrence.
	Reader *FlightReader
	// Rec means this occurrence leads the fill: evaluate the subgoal,
	// record through Rec, and Commit or Abort.
	Rec *Recording
}

// Probe consults the cache for key. A hit bumps the entry's benefit score
// and credits the savings ledger; a miss either attaches to an in-flight
// fill of the same key or makes the caller the fill's leader.
func (c *Cache) Probe(key string) ProbeResult {
	now := c.tick.Add(1)
	if e, ok := c.store.get(key); ok {
		if !e.Degraded {
			saved := e.Cost.TAll
			c.credit(e, saved, now)
			c.bumpStats(func(st *Stats) {
				st.Hits++
				st.Saved += saved
			})
			o := c.obs()
			o.Counter("hermes_memo_hits_total").Inc()
			o.Counter("hermes_memo_saved_ms_total").Add(saved.Milliseconds())
			if hook := c.savingsHook(); hook != nil {
				hook(key, saved)
			}
			return ProbeResult{Entry: e}
		}
		c.bumpStats(func(st *Stats) { st.DegradedSkips++ })
		c.obs().Counter("hermes_memo_degraded_skips_total").Inc()
	}
	c.bumpStats(func(st *Stats) { st.Misses++ })
	c.obs().Counter("hermes_memo_misses_total").Inc()
	c.flightMu.Lock()
	if f := c.flights[key]; f != nil {
		c.flightMu.Unlock()
		c.bumpStats(func(st *Stats) { st.FlightShares++ })
		c.obs().Counter("hermes_memo_flight_shares_total").Inc()
		return ProbeResult{Reader: &FlightReader{c: c, f: f}}
	}
	f := newFlight()
	c.flights[key] = f
	c.flightMu.Unlock()
	return ProbeResult{Rec: &Recording{c: c, key: key, f: f}}
}

// Serveable reports whether a probe for key would be a hit right now
// (committed, non-degraded entry present), without touching scores or
// stats. Introspection for tests and chaos assertions.
func (c *Cache) Serveable(key string) bool {
	e, ok := c.store.get(key)
	return ok && !e.Degraded
}

// EstimateServe reports whether key is currently serveable and, if so,
// how many tuples a replay would emit. Like Serveable it bypasses the
// probe path entirely — no stats, no score credit, no single-flight —
// because its caller is the *cost estimator*, which must be free to
// price candidate plans without perturbing the cache's benefit
// accounting. Degraded entries report a miss: the engine would not
// serve them either.
func (c *Cache) EstimateServe(key string) (tuples int, ok bool) {
	e, got := c.store.get(key)
	if !got || e.Degraded {
		return 0, false
	}
	return len(e.Tuples), true
}

// SnapshotEntries returns the cached relations for introspection (debug
// views, chaos assertions). The entries are shared; callers must not
// mutate them.
func (c *Cache) SnapshotEntries() []*Entry { return c.store.snapshot() }

// credit bumps an entry's decayed benefit score and recency.
func (c *Cache) credit(e *Entry, saved time.Duration, now int64) {
	c.scoreMu.Lock()
	e.score = c.decayedScoreLocked(e, now) + float64(saved)/float64(time.Millisecond)
	e.scoreTick = now
	e.lastUsed = now
	c.scoreMu.Unlock()
}

// decayedScoreLocked reads an entry's score as of tick now. Callers hold
// scoreMu.
func (c *Cache) decayedScoreLocked(e *Entry, now int64) float64 {
	dt := now - e.scoreTick
	if dt <= 0 || c.cfg.Decay == 1 {
		return e.score
	}
	return e.score * math.Pow(c.cfg.Decay, float64(dt))
}

// InvalidateInput drops every cached relation that recorded callKey as a
// contributing domain call. The CIM fires it when an entry for that call
// is refreshed, evicted or served degraded.
func (c *Cache) InvalidateInput(callKey string) {
	c.invMu.Lock()
	deps := c.inputIdx[callKey]
	if len(deps) == 0 {
		c.invMu.Unlock()
		return
	}
	delete(c.inputIdx, callKey)
	victims := make([]*Entry, 0, len(deps))
	for _, e := range deps {
		victims = append(victims, e)
		// Unhook the entry from its other inputs' dependency sets.
		for _, in := range e.Inputs {
			if in == callKey {
				continue
			}
			if m := c.inputIdx[in]; m != nil {
				delete(m, e.Key)
				if len(m) == 0 {
					delete(c.inputIdx, in)
				}
			}
		}
	}
	c.invMu.Unlock()
	n := 0
	for _, e := range victims {
		if c.store.removeIf(e.Key, e) {
			n++
		}
	}
	if n > 0 {
		c.bumpStats(func(st *Stats) { st.Invalidations += n })
		c.obs().Counter("hermes_memo_invalidations_total").Add(int64(n))
		c.occupancy()
	}
}

// admit stores a committed fill's entry, indexes its inputs, and enforces
// the budgets.
func (c *Cache) admit(e *Entry) {
	now := c.tick.Add(1)
	c.scoreMu.Lock()
	// Seed the score with the fill's own cost so a fresh expensive entry
	// is not the first eviction victim.
	e.score = float64(e.Cost.TAll) / float64(time.Millisecond)
	e.scoreTick = now
	e.lastUsed = now
	c.scoreMu.Unlock()
	old := c.store.put(e.Key, e)
	c.invMu.Lock()
	if old != nil {
		for _, in := range old.Inputs {
			if m := c.inputIdx[in]; m != nil {
				if m[old.Key] == old {
					delete(m, old.Key)
				}
				if len(m) == 0 {
					delete(c.inputIdx, in)
				}
			}
		}
	}
	for _, in := range e.Inputs {
		m := c.inputIdx[in]
		if m == nil {
			m = make(map[string]*Entry)
			c.inputIdx[in] = m
		}
		m[e.Key] = e
	}
	c.invMu.Unlock()
	c.bumpStats(func(st *Stats) {
		st.Stores++
		if e.Degraded {
			st.DegradedStores++
		}
	})
	o := c.obs()
	o.Counter("hermes_memo_stores_total").Inc()
	if e.Degraded {
		o.Counter("hermes_memo_degraded_stores_total").Inc()
	}
	c.evict()
	c.occupancy()
}

// deindex removes an evicted entry's reverse-index references.
func (c *Cache) deindex(e *Entry) {
	c.invMu.Lock()
	for _, in := range e.Inputs {
		if m := c.inputIdx[in]; m != nil {
			if m[e.Key] == e {
				delete(m, e.Key)
			}
			if len(m) == 0 {
				delete(c.inputIdx, in)
			}
		}
	}
	c.invMu.Unlock()
}

// evict enforces the budgets, dropping the entries with the lowest decayed
// benefit score first (ties broken least-recently-used).
func (c *Cache) evict() {
	over := func() bool {
		if c.cfg.MaxEntries > 0 && int(c.store.count.Load()) > c.cfg.MaxEntries {
			return true
		}
		if c.cfg.MaxBytes > 0 && int(c.store.bytes.Load()) > c.cfg.MaxBytes {
			return true
		}
		return false
	}
	if !over() {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	for over() {
		now := c.tick.Load()
		var victim *Entry
		var victimScore float64
		c.scoreMu.Lock()
		for _, e := range c.store.snapshot() {
			s := c.decayedScoreLocked(e, now)
			if victim == nil || s < victimScore ||
				(s == victimScore && e.lastUsed < victim.lastUsed) {
				victim, victimScore = e, s
			}
		}
		c.scoreMu.Unlock()
		if victim == nil {
			return
		}
		if c.store.removeIf(victim.Key, victim) {
			c.deindex(victim)
			c.bumpStats(func(st *Stats) { st.Evictions++ })
			c.obs().Counter("hermes_memo_evictions_total").Inc()
		}
	}
}

// Item is one published tuple of an in-progress fill, stamped with the
// leader clock's reading when it was recorded.
type Item struct {
	Vals []term.Value
	At   time.Duration
}

// ReadState is the outcome of FlightReader.Next.
type ReadState int

// Flight read outcomes.
const (
	// ReadItem delivered a tuple.
	ReadItem ReadState = iota
	// ReadEndCommitted means the fill completed; Result carries its inputs.
	ReadEndCommitted
	// ReadEndAborted means the leader abandoned the fill (error or early
	// close); the follower must evaluate the remainder itself.
	ReadEndAborted
	// ReadCancelled means the follower's own context was cancelled.
	ReadCancelled
)

// flight is one in-progress fill: the leader publishes tuples as it
// records them, followers replay the publication stream. The wake channel
// is closed and replaced on every state change (the spool pattern).
type flight struct {
	mu        sync.Mutex
	wake      chan struct{}
	items     []Item
	done      bool
	committed bool
	inputs    []string
	degraded  bool
	endAt     time.Duration
}

func newFlight() *flight {
	return &flight{wake: make(chan struct{})}
}

func (f *flight) publish(it Item) {
	f.mu.Lock()
	f.items = append(f.items, it)
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

func (f *flight) settle(committed bool, inputs []string, degraded bool, endAt time.Duration) {
	f.mu.Lock()
	f.done = true
	f.committed = committed
	f.inputs = inputs
	f.degraded = degraded
	f.endAt = endAt
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

// FlightReader replays an in-progress fill for a follower occurrence.
type FlightReader struct {
	c        *Cache
	f        *flight
	idx      int
	fellBack bool
}

// Next returns the reader's next event, waiting for the leader to publish
// when the follower has caught up. cancel, when non-nil, aborts the wait
// (ReadCancelled). The leader never waits on followers, so progress only
// depends on the leader's own consumer.
func (r *FlightReader) Next(cancel <-chan struct{}) (Item, ReadState) {
	for {
		r.f.mu.Lock()
		if r.idx < len(r.f.items) {
			it := r.f.items[r.idx]
			r.f.mu.Unlock()
			r.idx++
			return it, ReadItem
		}
		if r.f.done {
			committed := r.f.committed
			r.f.mu.Unlock()
			if committed {
				return Item{}, ReadEndCommitted
			}
			if !r.fellBack {
				r.fellBack = true
				r.c.bumpStats(func(st *Stats) { st.FlightFallbacks++ })
				r.c.obs().Counter("hermes_memo_flight_fallbacks_total").Inc()
			}
			return Item{}, ReadEndAborted
		}
		wake := r.f.wake
		r.f.mu.Unlock()
		select {
		case <-wake:
		case <-cancel:
			return Item{}, ReadCancelled
		}
	}
}

// Result returns the committed fill's inputs, degraded flag and end time.
// Valid after Next returned ReadEndCommitted.
func (r *FlightReader) Result() (inputs []string, degraded bool, endAt time.Duration) {
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	return r.f.inputs, r.f.degraded, r.f.endAt
}

// Recording is the leader side of a fill: the engine records every tuple
// the subgoal emits and every domain call it issues, then commits on
// natural exhaustion or aborts on error/early close.
type Recording struct {
	c   *Cache
	key string
	f   *flight

	mu       sync.Mutex
	inputs   []string
	inputSet map[string]bool
	degraded bool
	bytes    int
	done     bool
}

// Note records a contributing domain call (thread-safe: parallel branches
// under the subgoal note concurrently). degraded marks a call served from
// cache because its source was down.
func (rec *Recording) Note(callKey string, degraded bool) {
	rec.mu.Lock()
	if rec.inputSet == nil {
		rec.inputSet = make(map[string]bool)
	}
	if !rec.inputSet[callKey] {
		rec.inputSet[callKey] = true
		rec.inputs = append(rec.inputs, callKey)
	}
	if degraded {
		rec.degraded = true
	}
	rec.mu.Unlock()
}

// Add records one emitted tuple and publishes it to any followers. at is
// the leader clock's reading.
func (rec *Recording) Add(vals []term.Value, at time.Duration) {
	rec.mu.Lock()
	for _, v := range vals {
		rec.bytes += term.SizeBytes(v)
	}
	rec.mu.Unlock()
	rec.f.publish(Item{Vals: vals, At: at})
}

// Commit finishes the fill at natural exhaustion: the published tuples
// become a cache entry (when admitted) and followers see a committed end.
func (rec *Recording) Commit(at time.Duration, cost domain.CostVector) {
	rec.mu.Lock()
	if rec.done {
		rec.mu.Unlock()
		return
	}
	rec.done = true
	inputs := rec.inputs
	degraded := rec.degraded
	bytes := rec.bytes
	rec.mu.Unlock()

	rec.c.flightMu.Lock()
	if rec.c.flights[rec.key] == rec.f {
		delete(rec.c.flights, rec.key)
	}
	rec.c.flightMu.Unlock()

	rec.f.mu.Lock()
	tuples := make([][]term.Value, len(rec.f.items))
	for i, it := range rec.f.items {
		tuples[i] = it.Vals
	}
	rec.f.mu.Unlock()
	// Settle after snapshotting so followers never see a half-built state.
	rec.f.settle(true, inputs, degraded, at)

	if cost.TAll < rec.c.cfg.MinBenefit ||
		(rec.c.cfg.MaxEntryBytes > 0 && bytes > rec.c.cfg.MaxEntryBytes) {
		rec.c.bumpStats(func(st *Stats) { st.RejectedStores++ })
		return
	}
	rec.c.admit(&Entry{
		Key:      rec.key,
		Tuples:   tuples,
		Inputs:   inputs,
		Degraded: degraded,
		Cost:     cost,
		Bytes:    bytes,
	})
}

// Abort abandons the fill (subgoal error, or the consumer closed the
// stream before exhaustion): nothing is stored, and followers fall back to
// their own evaluation.
func (rec *Recording) Abort(at time.Duration) {
	rec.mu.Lock()
	if rec.done {
		rec.mu.Unlock()
		return
	}
	rec.done = true
	rec.mu.Unlock()
	rec.c.flightMu.Lock()
	if rec.c.flights[rec.key] == rec.f {
		delete(rec.c.flights, rec.key)
	}
	rec.c.flightMu.Unlock()
	rec.f.settle(false, nil, false, at)
}
