package memo

import (
	"testing"
)

func TestKeyAlphaEquivalence(t *testing.T) {
	// p(X, Y) and p(A, B) are the same occurrence up to renaming.
	k1 := KeyOf(7, "p", "ff", []KeyArg{{Var: "X"}, {Var: "Y"}})
	k2 := KeyOf(7, "p", "ff", []KeyArg{{Var: "A"}, {Var: "B"}})
	if k1 != k2 {
		t.Errorf("α-equivalent occurrences keyed differently:\n  %q\n  %q", k1, k2)
	}
}

func TestKeyRepeatedVariableStructure(t *testing.T) {
	// p(X, X) filters caller-side on first==second; it must not share an
	// entry with p(X, Y).
	same := KeyOf(7, "p", "ff", []KeyArg{{Var: "X"}, {Var: "X"}})
	diff := KeyOf(7, "p", "ff", []KeyArg{{Var: "X"}, {Var: "Y"}})
	if same == diff {
		t.Errorf("p(X,X) and p(X,Y) share key %q", same)
	}
	// ...but p(X, X) and p(Z, Z) do share.
	same2 := KeyOf(7, "p", "ff", []KeyArg{{Var: "Z"}, {Var: "Z"}})
	if same != same2 {
		t.Errorf("p(X,X) and p(Z,Z) keyed differently:\n  %q\n  %q", same, same2)
	}
}

func TestKeyBoundValues(t *testing.T) {
	k1 := KeyOf(7, "p", "bf", []KeyArg{{Bound: true, ValueKey: `s"a"`}, {Var: "X"}})
	k2 := KeyOf(7, "p", "bf", []KeyArg{{Bound: true, ValueKey: `s"b"`}, {Var: "X"}})
	if k1 == k2 {
		t.Error("different bound values share a key")
	}
}

func TestKeyDiscriminators(t *testing.T) {
	base := KeyOf(7, "p", "ff", []KeyArg{{Var: "X"}, {Var: "Y"}})
	if other := KeyOf(8, "p", "ff", []KeyArg{{Var: "X"}, {Var: "Y"}}); other == base {
		t.Error("different plan fingerprints share a key")
	}
	if other := KeyOf(7, "q", "ff", []KeyArg{{Var: "X"}, {Var: "Y"}}); other == base {
		t.Error("different predicates share a key")
	}
	if other := KeyOf(7, "p", "fb", []KeyArg{{Var: "X"}, {Var: "Y"}}); other == base {
		t.Error("different adornments share a key")
	}
}
