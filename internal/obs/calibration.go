package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Calibration thresholds shared by the tracker and the planner-facing
// grade: a function is graded once it has CalMinSamples q-error
// observations, and a plan counts as ranked on trustworthy numbers when
// every graded function's median Ta q-error is at most CalTrustedQErr.
const (
	CalMinSamples  = 3
	CalTrustedQErr = 2.0
)

// qErrFloorMs saturates q-errors for sub-millisecond durations (and
// sub-row cardinalities): being "wrong" about a 30µs call is planning
// noise, not miscalibration, so both sides of the ratio are floored at
// one millisecond / one row before dividing.
const qErrFloorMs = 1.0

// QErr is the q-error of an estimate against a measurement: the factor
// by which the estimate is off, max(est/actual, actual/est), always
// >= 1. Both inputs are floored at 1 (one millisecond for durations,
// one row for cardinalities) so near-zero quantities don't explode the
// ratio.
func QErr(est, actual float64) float64 {
	if est < qErrFloorMs {
		est = qErrFloorMs
	}
	if actual < qErrFloorMs {
		actual = qErrFloorMs
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// QErrs returns the per-component q-errors [Tf, Ta, Card] of an
// estimated cost vector against the measured one.
func QErrs(est, actual Cost) (qtf, qta, qcard float64) {
	const ms = float64(time.Millisecond)
	qtf = QErr(float64(est.TFirst)/ms, float64(actual.TFirst)/ms)
	qta = QErr(float64(est.TAll)/ms, float64(actual.TAll)/ms)
	qcard = QErr(est.Card, actual.Card)
	return
}

// calEntry holds one (domain, function)'s q-error windows.
type calEntry struct {
	domain, function string
	qtf, qta, qcard  *Histogram
}

// Calibration aggregates est-vs-actual q-errors per (domain, function)
// so operators can see how wrong the DCSM's cost model is and the
// planner can tell whether a plan was ranked on trustworthy numbers.
// It keeps a bounded sample window per function (the same windowed
// histogram the registry uses) and is safe for concurrent use; a nil
// *Calibration disables tracking.
type Calibration struct {
	mu      sync.Mutex
	entries map[string]*calEntry // keyed "domain:function"
}

// NewCalibration returns an empty calibration table.
func NewCalibration() *Calibration {
	return &Calibration{entries: make(map[string]*calEntry)}
}

func (c *Calibration) entry(dom, fn string) *calEntry {
	key := dom + ":" + fn
	e := c.entries[key]
	if e == nil {
		e = &calEntry{
			domain: dom, function: fn,
			qtf: &Histogram{}, qta: &Histogram{}, qcard: &Histogram{},
		}
		c.entries[key] = e
	}
	return e
}

// Observe feeds one completed call's estimate and measured actual into
// the function's q-error windows.
func (c *Calibration) Observe(dom, fn string, est, actual Cost) {
	if c == nil {
		return
	}
	qtf, qta, qcard := QErrs(est, actual)
	c.mu.Lock()
	e := c.entry(dom, fn)
	c.mu.Unlock()
	e.qtf.Observe(qtf)
	e.qta.Observe(qta)
	e.qcard.Observe(qcard)
}

// Grade reports a function's median Ta q-error and how many samples
// back it. n < CalMinSamples means the function is effectively
// ungraded (cold).
func (c *Calibration) Grade(dom, fn string) (medianQTa float64, n int64) {
	return c.QErrQuantile(dom, fn, 0.5)
}

// QErrQuantile reports a chosen quantile of a function's Ta q-error
// window and how many samples back it. The planner's calibration-
// inflated costing reads a pessimistic quantile (p90 by default) here:
// inflating by the median would under-correct half the time, while the
// upper tail is exactly the "how wrong could this estimate plausibly
// be" factor a robust plan ranking wants. n == 0 means the function
// has never been observed.
func (c *Calibration) QErrQuantile(dom, fn string, q float64) (qerr float64, n int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	e := c.entries[dom+":"+fn]
	c.mu.Unlock()
	if e == nil {
		return 0, 0
	}
	return e.qta.Quantile(q), e.qta.Count()
}

// PlanGrade grades a plan by the (domain, function) pairs of the calls
// it would issue:
//
//   - "cold": no function has any q-error samples at all.
//   - "thin": some functions have samples, but none has reached
//     CalMinSamples. The numbers are real observations — just few —
//     so cold-start inflation must not apply; worstQ is the worst
//     observed median among the thinly-sampled functions.
//   - "trusted": every function with >= CalMinSamples samples has a
//     median Ta q-error at most CalTrustedQErr.
//   - "rough": otherwise.
//
// It also returns the worst graded median q-error (0 when cold).
// Distinguishing cold from thin matters because Grade floors q-errors
// at 1ms/1row: a function with two accurate observations already
// carries more signal than no observations, and treating it as cold
// would slap cold-start inflation on an estimate that has evidence
// behind it.
func (c *Calibration) PlanGrade(fns [][2]string) (grade string, worstQ float64) {
	graded, sampled := 0, 0
	var thinWorst float64
	for _, df := range fns {
		q, n := c.Grade(df[0], df[1])
		if n == 0 {
			continue
		}
		sampled++
		if n < CalMinSamples {
			if q > thinWorst {
				thinWorst = q
			}
			continue
		}
		graded++
		if q > worstQ {
			worstQ = q
		}
	}
	switch {
	case sampled == 0:
		return "cold", 0
	case graded == 0:
		return "thin", thinWorst
	case worstQ <= CalTrustedQErr:
		return "trusted", worstQ
	default:
		return "rough", worstQ
	}
}

// CalibrationRow is one function's aggregated calibration error, for
// the /debug/calibration ranking.
type CalibrationRow struct {
	Domain     string  `json:"domain"`
	Function   string  `json:"function"`
	Samples    int64   `json:"samples"`
	MedianQTf  float64 `json:"median_qerr_tf"`
	MedianQTa  float64 `json:"median_qerr_ta"`
	MedianQCrd float64 `json:"median_qerr_card"`
	P95QTa     float64 `json:"p95_qerr_ta"`
}

// Summary returns one row per tracked function, worst-calibrated first
// (by median Ta q-error, then by p95, then by name for determinism).
func (c *Calibration) Summary() []CalibrationRow {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	entries := make([]*calEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	rows := make([]CalibrationRow, 0, len(entries))
	for _, e := range entries {
		rows = append(rows, CalibrationRow{
			Domain:     e.domain,
			Function:   e.function,
			Samples:    e.qta.Count(),
			MedianQTf:  e.qtf.Quantile(0.5),
			MedianQTa:  e.qta.Quantile(0.5),
			MedianQCrd: e.qcard.Quantile(0.5),
			P95QTa:     e.qta.Quantile(0.95),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MedianQTa != rows[j].MedianQTa {
			return rows[i].MedianQTa > rows[j].MedianQTa
		}
		if rows[i].P95QTa != rows[j].P95QTa {
			return rows[i].P95QTa > rows[j].P95QTa
		}
		if rows[i].Domain != rows[j].Domain {
			return rows[i].Domain < rows[j].Domain
		}
		return rows[i].Function < rows[j].Function
	})
	return rows
}

// FormatCalibrationRows renders the worst-calibrated-first table shown
// at /debug/calibration.
func FormatCalibrationRows(rows []CalibrationRow) string {
	if len(rows) == 0 {
		return "no calibration samples yet\n"
	}
	out := fmt.Sprintf("%-28s %8s %10s %10s %10s %10s\n",
		"function", "samples", "med(qTf)", "med(qTa)", "med(qCard)", "p95(qTa)")
	for _, r := range rows {
		out += fmt.Sprintf("%-28s %8d %10.2f %10.2f %10.2f %10.2f\n",
			r.Domain+":"+r.Function, r.Samples,
			r.MedianQTf, r.MedianQTa, r.MedianQCrd, r.P95QTa)
	}
	return out
}
