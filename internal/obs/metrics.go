package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// HistogramWindow is how many of the most recent observations a Histogram
// retains for quantile estimation. Count and Sum cover every observation;
// quantiles are computed over this sliding window.
const HistogramWindow = 1024

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. All methods are nil-receiver safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are nil-receiver
// safe.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations and answers quantile queries over a
// bounded window of the most recent HistogramWindow samples. Count and Sum
// are exact over all observations. All methods are nil-receiver safe.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	samples []float64
	next    int // overwrite cursor once the window is full
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if len(h.samples) < HistogramWindow {
		h.samples = append(h.samples, v)
		return
	}
	h.samples[h.next] = v
	h.next = (h.next + 1) % HistogramWindow
}

// Count returns how many samples were observed in total.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) over the retained window,
// using the nearest-rank method; it returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// metricKind discriminates the stored metric types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		// Histograms expose quantiles, so they render as Prometheus
		// summaries.
		return "summary"
	}
}

// family groups every labeled instance of one metric name.
type family struct {
	name    string
	kind    metricKind
	help    string
	byLabel map[string]any // rendered label string -> *Counter | *Gauge | *Histogram
}

// Registry holds named metrics. It is safe for concurrent use; lookups
// return the same instance for the same (name, labels), so callers may
// either cache the returned metric or re-fetch it on every update.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders label pairs canonically ({} sorted by key), e.g.
// `{domain="avis",route="cim"}`; empty for no labels. labels are k1, v1,
// k2, v2, ...; an odd count panics (programmer error).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// metric returns (creating on first use) the instance for (name, labels),
// checking that the name is not reused with a different kind.
func (r *Registry) metric(name string, kind metricKind, labels []string) any {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, byLabel: make(map[string]any)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	m, ok := f.byLabel[ls]
	if !ok {
		switch kind {
		case kindCounter:
			m = &Counter{}
		case kindGauge:
			m = &Gauge{}
		default:
			m = &Histogram{}
		}
		f.byLabel[ls] = m
	}
	return m
}

// Counter returns the counter for (name, labels), creating it at zero on
// first use. Labels are alternating key, value strings. Nil-receiver safe:
// a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	m, _ := r.metric(name, kindCounter, labels).(*Counter)
	return m
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	m, _ := r.metric(name, kindGauge, labels).(*Gauge)
	return m
}

// Histogram returns the histogram for (name, labels).
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	m, _ := r.metric(name, kindHistogram, labels).(*Histogram)
	return m
}

// SetHelp attaches a help string rendered as the metric's # HELP line.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, byLabel: make(map[string]any)}
		r.families[name] = f
	}
	f.help = help
}

// summaryQuantiles are the quantiles every histogram exports.
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, families and label sets in sorted order so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	// Snapshot instance pointers under the lock; values are read via their
	// own synchronization below.
	type inst struct {
		labels string
		m      any
	}
	snap := make(map[string][]inst, len(names))
	metas := make(map[string]*family, len(names))
	for n, f := range r.families {
		metas[n] = f
		for ls, m := range f.byLabel {
			snap[n] = append(snap[n], inst{ls, m})
		}
	}
	r.mu.Unlock()

	sort.Strings(names)
	for _, n := range names {
		f := metas[n]
		insts := snap[n]
		sort.Slice(insts, func(i, j int) bool { return insts[i].labels < insts[j].labels })
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.kind); err != nil {
			return err
		}
		for _, in := range insts {
			var err error
			switch m := in.m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", n, in.labels, m.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", n, in.labels, formatFloat(m.Value()))
			case *Histogram:
				for _, sq := range summaryQuantiles {
					ls := mergeLabel(in.labels, "quantile", sq.label)
					if _, err = fmt.Fprintf(w, "%s%s %s\n", n, ls, formatFloat(m.Quantile(sq.q))); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", n, in.labels, formatFloat(m.Sum())); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", n, in.labels, m.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns every metric's current reading keyed by name plus
// rendered labels: counters and gauges by value, histograms as name_count
// and name_sum entries. The /debug/cluster rollup ships these maps between
// nodes instead of re-parsing Prometheus text. Nil-receiver safe.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type inst struct {
		key string
		m   any
	}
	insts := make([]inst, 0, len(r.families))
	for n, f := range r.families {
		for ls, m := range f.byLabel {
			insts = append(insts, inst{n + ls, m})
		}
	}
	r.mu.Unlock()

	out := make(map[string]float64, len(insts))
	for _, in := range insts {
		switch m := in.m.(type) {
		case *Counter:
			out[in.key] = float64(m.Value())
		case *Gauge:
			out[in.key] = m.Value()
		case *Histogram:
			name, labels := in.key, ""
			if i := strings.IndexByte(in.key, '{'); i >= 0 {
				name, labels = in.key[:i], in.key[i:]
			}
			out[name+"_count"+labels] = float64(m.Count())
			out[name+"_sum"+labels] = m.Sum()
		}
	}
	return out
}

// mergeLabel splices an extra label pair into an already-rendered label
// string.
func mergeLabel(ls, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if ls == "" {
		return "{" + extra + "}"
	}
	return ls[:len(ls)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
