package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleSubtree() SpanData {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return SpanData{
		Name:   "serve avis:actors",
		Start:  ms(10),
		End:    ms(250),
		Tags:   map[string]string{"node": "node-b"},
		Actual: &Cost{TFirst: ms(40), TAll: ms(240), Card: 9},
		Children: []SpanData{
			{
				Name:  "call avis:actors('rope')",
				Start: ms(12),
				End:   ms(248),
				Tags:  map[string]string{"route": "cim", "cim": "exact"},
				Est:   &Cost{TFirst: ms(1800), TAll: ms(2000), Card: 9},
				Children: []SpanData{
					{Name: "fetch", Start: ms(13), End: ms(247)},
				},
			},
		},
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	want := sampleSubtree()
	b, err := EncodeSpanJSON(want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSpanJSON(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeSpanJSONRejections(t *testing.T) {
	deep := SpanData{Name: "root"}
	node := &deep
	for i := 0; i <= MaxSpanDepth; i++ {
		node.Children = []SpanData{{Name: "child"}}
		node = &node.Children[0]
	}
	wide := SpanData{Name: "root"}
	for i := 0; i < MaxSpanNodes; i++ {
		wide.Children = append(wide.Children, SpanData{Name: "c"})
	}
	mustJSON := func(d SpanData) []byte {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"garbage", []byte("{not json"), "span subtree"},
		{"wrong shape", []byte(`[1, 2, 3]`), "span subtree"},
		{"unnamed root", []byte(`{"start": 0, "end": 5}`), "unnamed"},
		{"unnamed child", []byte(`{"name": "r", "children": [{"start": 0}]}`), "unnamed"},
		{"negative extent", []byte(`{"name": "r", "start": 10, "end": 3}`), "ends before it starts"},
		{"too deep", mustJSON(deep), "deeper than"},
		{"too many nodes", mustJSON(wide), "larger than"},
	}
	for _, tc := range cases {
		d, err := DecodeSpanJSON(tc.in)
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !reflect.DeepEqual(d, SpanData{}) {
			t.Errorf("%s: rejected decode returned non-zero SpanData %+v", tc.name, d)
		}
	}
}

func TestTruncateSpanJSON(t *testing.T) {
	d := sampleSubtree()
	full, err := EncodeSpanJSON(d)
	if err != nil {
		t.Fatal(err)
	}

	// A generous (and an unlimited) budget ships the tree untouched.
	for _, budget := range []int{len(full), len(full) * 2, 0, -1} {
		b, truncated, ok := TruncateSpanJSON(d, budget)
		if !ok || truncated {
			t.Fatalf("budget %d: ok=%v truncated=%v, want untouched", budget, ok, truncated)
		}
		if string(b) != string(full) {
			t.Fatalf("budget %d rewrote the encoding", budget)
		}
	}

	// A tight budget prunes deepest-first and tags the shipped root.
	b, truncated, ok := TruncateSpanJSON(d, len(full)-1)
	if !ok || !truncated {
		t.Fatalf("tight budget: ok=%v truncated=%v, want pruned", ok, truncated)
	}
	if len(b) >= len(full) {
		t.Fatalf("pruned encoding (%d bytes) not smaller than full (%d)", len(b), len(full))
	}
	got, err := DecodeSpanJSON(b)
	if err != nil {
		t.Fatalf("pruned output does not decode: %v", err)
	}
	if got.Tags[TruncatedTag] != "1" {
		t.Errorf("pruned root not tagged %s=1: %v", TruncatedTag, got.Tags)
	}
	if got.Name != d.Name || got.Actual == nil {
		t.Errorf("pruning damaged the root: %+v", got)
	}
	// The original is untouched: pruning copies before tagging.
	if _, tagged := d.Tags[TruncatedTag]; tagged {
		t.Error("TruncateSpanJSON mutated its input's tags")
	}

	// Even the root alone over budget: ok=false, nothing to ship.
	if _, _, ok := TruncateSpanJSON(d, 10); ok {
		t.Error("10-byte budget reported ok")
	}
}

func TestRebaseSpan(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	d := sampleSubtree()
	got := RebaseSpan(d, ms(1000))
	if got.Start != ms(1000) {
		t.Fatalf("root start %v, want 1s", got.Start)
	}
	if got.Duration() != d.Duration() {
		t.Errorf("rebasing changed the root extent: %v vs %v", got.Duration(), d.Duration())
	}
	// Children shift by the same offset, preserving relative position.
	wantChildStart := d.Children[0].Start + (ms(1000) - d.Start)
	if got.Children[0].Start != wantChildStart {
		t.Errorf("child start %v, want %v", got.Children[0].Start, wantChildStart)
	}
	if got.Children[0].Children[0].End-got.Children[0].Children[0].Start !=
		d.Children[0].Children[0].End-d.Children[0].Children[0].Start {
		t.Error("grandchild extent changed under rebase")
	}
	// The input is not mutated.
	if d.Start != ms(10) {
		t.Error("RebaseSpan mutated its input")
	}
}

// FuzzDecodeSpanJSON asserts the decoder's contract on arbitrary bytes:
// never panic, never accept a subtree that violates the documented
// bounds, and round-trip anything it does accept.
func FuzzDecodeSpanJSON(f *testing.F) {
	seed := sampleSubtree()
	if b, err := EncodeSpanJSON(seed); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"name": "root", "start": 0, "end": 1}`))
	f.Add([]byte(`{"name": "r", "children": [{"name": "c", "tags": {"truncated": "1"}}]}`))
	f.Add([]byte(`{"start": 5}`))
	f.Add([]byte(`{"name": "r", "start": 9, "end": 2}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeSpanJSON(data)
		if err != nil {
			if !reflect.DeepEqual(d, SpanData{}) {
				t.Fatalf("error path returned non-zero SpanData: %+v", d)
			}
			return
		}
		nodes := 0
		if verr := validateSpan(d, 0, &nodes); verr != nil {
			t.Fatalf("accepted subtree fails its own validation: %v", verr)
		}
		b, err := EncodeSpanJSON(d)
		if err != nil {
			t.Fatalf("accepted subtree does not re-encode: %v", err)
		}
		if _, err := DecodeSpanJSON(b); err != nil {
			t.Fatalf("re-encoded subtree does not decode: %v", err)
		}
	})
}
