package obs

import (
	"sort"
	"sync"
	"time"
)

// Cost is the paper's [Tf, Ta, Card] cost vector: time to first answer,
// time to all answers, and answer-set cardinality. Spans carry one as the
// planner's estimate and one as the measured actual, so EXPLAIN can show
// estimation error per node.
type Cost struct {
	TFirst time.Duration
	TAll   time.Duration
	Card   float64
}

// Span is one node of a query trace: a named, clock-stamped interval with
// string outcome tags (cim=exact, breaker=open, ...), optional estimated
// and actual cost vectors, and child spans. Spans are safe for concurrent
// use and every method is nil-receiver safe, so instrumented code can
// thread a possibly-nil span without conditionals.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Duration
	end      time.Duration
	ended    bool
	tags     map[string]string
	est      *Cost
	actual   *Cost
	children []*Span
	foreign  []SpanData  // stitched remote subtrees, rendered after children
	onEnd    func(*Span) // set on roots by the Tracer
}

// NewSpan opens a standalone root span outside any tracer: ending it
// publishes nothing. The remote server uses it for per-call serve spans
// that travel back to the caller in a trace frame rather than entering the
// server's own /debug/queries ring.
func NewSpan(name string, at time.Duration) *Span {
	return &Span{name: name, start: at}
}

// Child opens a sub-span starting at execution-clock reading at. On a nil
// span it returns nil (tracing off).
func (s *Span) Child(name string, at time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: at}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetTag records an outcome tag. Later values overwrite earlier ones.
func (s *Span) SetTag(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.tags == nil {
		s.tags = make(map[string]string)
	}
	s.tags[k] = v
	s.mu.Unlock()
}

// Tag returns a tag's value (for tests and renderers).
func (s *Span) Tag(k string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.tags[k]
	return v, ok
}

// SetEstimate attaches the planner's estimated cost vector.
func (s *Span) SetEstimate(c Cost) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.est = &c
	s.mu.Unlock()
}

// SetActual attaches the measured cost vector.
func (s *Span) SetActual(c Cost) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.actual = &c
	s.mu.Unlock()
}

// AttachForeign grafts an already-snapshotted subtree — a remote peer's
// serve span, rebased onto this clock — under s. Snapshot renders foreign
// subtrees after the locally opened children. Nil-receiver safe.
func (s *Span) AttachForeign(d SpanData) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.foreign = append(s.foreign, d)
	s.mu.Unlock()
}

// End closes the span at execution-clock reading at. Ending a span twice
// is a no-op; ending a root span publishes its snapshot to the Tracer.
func (s *Span) End(at time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = at
	onEnd := s.onEnd
	s.mu.Unlock()
	if onEnd != nil {
		onEnd(s)
	}
}

// Snapshot returns a deep, immutable copy of the span tree for rendering.
// A still-open span snapshots with End == Start.
func (s *Span) Snapshot() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	d := SpanData{
		Name:  s.name,
		Start: s.start,
		End:   s.end,
	}
	if !s.ended {
		d.End = s.start
	}
	if s.est != nil {
		c := *s.est
		d.Est = &c
	}
	if s.actual != nil {
		c := *s.actual
		d.Actual = &c
	}
	if len(s.tags) > 0 {
		d.Tags = make(map[string]string, len(s.tags))
		for k, v := range s.tags {
			d.Tags[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	foreign := append([]SpanData(nil), s.foreign...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Snapshot())
	}
	d.Children = append(d.Children, foreign...)
	return d
}

// SpanData is an immutable span-tree snapshot.
type SpanData struct {
	Name     string            `json:"name"`
	Start    time.Duration     `json:"start"`
	End      time.Duration     `json:"end"`
	Tags     map[string]string `json:"tags,omitempty"`
	Est      *Cost             `json:"est,omitempty"`
	Actual   *Cost             `json:"actual,omitempty"`
	Children []SpanData        `json:"children,omitempty"`
}

// Duration is the span's clock extent.
func (d SpanData) Duration() time.Duration { return d.End - d.Start }

// sortedTags returns "k=v" strings in key order.
func (d SpanData) sortedTags() []string {
	if len(d.Tags) == 0 {
		return nil
	}
	keys := make([]string, 0, len(d.Tags))
	for k := range d.Tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k + "=" + d.Tags[k]
	}
	return out
}

// Tracer creates root query spans and retains the most recent finished
// span trees in a bounded ring buffer (the /debug/queries feed). It is
// safe for concurrent use; a nil Tracer disables tracing.
type Tracer struct {
	mu        sync.Mutex
	recent    []SpanData // oldest first
	capacity  int
	started   int64
	finished  int64
	onPublish func(SpanData) // e.g. the flight recorder
}

// NewTracer returns a tracer retaining the last capacity finished query
// spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity}
}

// StartQuery opens a root span for one query at execution-clock reading
// at. Ending the returned span publishes its snapshot to the ring buffer.
// On a nil tracer it returns nil.
func (t *Tracer) StartQuery(name string, at time.Duration) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.started++
	t.mu.Unlock()
	s := &Span{name: name, start: at}
	s.onEnd = t.publish
	return s
}

func (t *Tracer) publish(s *Span) {
	d := s.Snapshot()
	t.mu.Lock()
	t.finished++
	t.recent = append(t.recent, d)
	if len(t.recent) > t.capacity {
		t.recent = t.recent[len(t.recent)-t.capacity:]
	}
	hook := t.onPublish
	t.mu.Unlock()
	if hook != nil {
		hook(d)
	}
}

// SetOnPublish installs a hook called with every finished root-span
// snapshot after it enters the ring (used to feed the flight recorder).
func (t *Tracer) SetOnPublish(fn func(SpanData)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onPublish = fn
	t.mu.Unlock()
}

// Recent returns the retained finished query spans, newest first.
func (t *Tracer) Recent() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.recent))
	for i, d := range t.recent {
		out[len(t.recent)-1-i] = d
	}
	return out
}

// Counts returns how many query spans were started and finished.
func (t *Tracer) Counts() (started, finished int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started, t.finished
}

// Observer bundles the observability facilities the system threads
// through its layers: a metrics registry, a query tracer, a cost-model
// calibration table, and a flight recorder. A nil Observer (or nil
// fields) disables the corresponding facility; every method is
// nil-receiver safe.
type Observer struct {
	Metrics     *Registry
	Tracer      *Tracer
	Calibration *Calibration
	Flight      *FlightRecorder
}

// NewObserver returns an observer with a fresh registry, a tracer
// retaining the last 64 queries, an empty calibration table, and a
// flight recorder fed by the tracer (keep-everything threshold).
func NewObserver() *Observer {
	o := &Observer{
		Metrics:     NewRegistry(),
		Tracer:      NewTracer(64),
		Calibration: NewCalibration(),
		Flight:      NewFlightRecorder(DefaultFlightCapacity, 0),
	}
	o.Tracer.SetOnPublish(o.Flight.Record)
	return o
}

// StartQuery forwards to the tracer (nil-safe).
func (o *Observer) StartQuery(name string, at time.Duration) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.StartQuery(name, at)
}

// Counter forwards to the registry (nil-safe; returns a no-op counter).
func (o *Observer) Counter(name string, labels ...string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, labels...)
}

// Gauge forwards to the registry (nil-safe).
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, labels...)
}

// Histogram forwards to the registry (nil-safe).
func (o *Observer) Histogram(name string, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, labels...)
}

// ObserveCalibration feeds one completed call's estimated and measured
// cost vectors into the calibration table and the per-domain
// hermes_dcsm_qerror_{tf,ta,card} histograms. Callers must only feed
// spans whose actual reflects a real source call (cache-served answers
// would fake enormous "errors"). Nil-safe.
func (o *Observer) ObserveCalibration(dom, fn string, est, actual Cost) {
	if o == nil {
		return
	}
	o.Calibration.Observe(dom, fn, est, actual)
	if o.Metrics != nil {
		qtf, qta, qcard := QErrs(est, actual)
		o.Metrics.Histogram("hermes_dcsm_qerror_tf", "domain", dom).Observe(qtf)
		o.Metrics.Histogram("hermes_dcsm_qerror_ta", "domain", dom).Observe(qta)
		o.Metrics.Histogram("hermes_dcsm_qerror_card", "domain", dom).Observe(qcard)
	}
}
