package obs

import (
	"strings"
	"testing"
	"time"
)

func TestQErr(t *testing.T) {
	cases := []struct {
		est, actual, want float64
	}{
		{10, 10, 1},
		{10, 20, 2},
		{20, 10, 2},
		{0, 100, 100},  // est floored at 1
		{100, 0, 100},  // actual floored at 1
		{0, 0, 1},      // both floored: sub-ms noise is "calibrated"
		{0.5, 0.25, 1}, // sub-floor values saturate
	}
	for _, c := range cases {
		if got := QErr(c.est, c.actual); got != c.want {
			t.Errorf("QErr(%g, %g) = %g, want %g", c.est, c.actual, got, c.want)
		}
	}
}

func TestCalibrationObserveAndSummary(t *testing.T) {
	c := NewCalibration()
	// avis:frames is 4x off on Ta; ingres:roads is spot on.
	for i := 0; i < 4; i++ {
		c.Observe("avis", "frames",
			Cost{TFirst: 10 * time.Millisecond, TAll: 100 * time.Millisecond, Card: 10},
			Cost{TFirst: 10 * time.Millisecond, TAll: 400 * time.Millisecond, Card: 20})
		c.Observe("ingres", "roads",
			Cost{TFirst: 5 * time.Millisecond, TAll: 50 * time.Millisecond, Card: 7},
			Cost{TFirst: 5 * time.Millisecond, TAll: 50 * time.Millisecond, Card: 7})
	}
	rows := c.Summary()
	if len(rows) != 2 {
		t.Fatalf("summary rows = %d, want 2", len(rows))
	}
	if rows[0].Domain != "avis" || rows[0].Function != "frames" {
		t.Errorf("worst-calibrated first: got %s:%s", rows[0].Domain, rows[0].Function)
	}
	if rows[0].MedianQTa != 4 || rows[0].MedianQCrd != 2 || rows[0].MedianQTf != 1 {
		t.Errorf("avis row = %+v", rows[0])
	}
	if rows[1].MedianQTa != 1 || rows[1].Samples != 4 {
		t.Errorf("ingres row = %+v", rows[1])
	}

	if q, n := c.Grade("avis", "frames"); q != 4 || n != 4 {
		t.Errorf("Grade(avis, frames) = %g, %d", q, n)
	}
	if _, n := c.Grade("faces", "unknown"); n != 0 {
		t.Errorf("Grade of untracked function reported %d samples", n)
	}

	text := FormatCalibrationRows(rows)
	if !strings.Contains(text, "avis:frames") || !strings.Contains(text, "ingres:roads") {
		t.Errorf("rendered table missing functions:\n%s", text)
	}
}

func TestCalibrationPlanGrade(t *testing.T) {
	c := NewCalibration()
	good := Cost{TAll: 100 * time.Millisecond, Card: 10}
	for i := 0; i < CalMinSamples; i++ {
		c.Observe("a", "good", good, good)
		c.Observe("a", "bad", good, Cost{TAll: time.Second, Card: 10})
	}
	c.Observe("a", "thin", good, good) // below CalMinSamples

	if g, _ := c.PlanGrade([][2]string{{"a", "nosuch"}}); g != "cold" {
		t.Errorf("never-observed plan = %q, want cold", g)
	}
	// A function with *some* samples (just fewer than CalMinSamples) is
	// thin, not cold: its observations are real evidence and cold-start
	// inflation must not apply to it.
	if g, q := c.PlanGrade([][2]string{{"a", "nosuch"}, {"a", "thin"}}); g != "thin" || q != 1 {
		t.Errorf("thinly-sampled plan = %q, %g, want thin, 1", g, q)
	}
	if g, q := c.PlanGrade([][2]string{{"a", "good"}}); g != "trusted" || q != 1 {
		t.Errorf("good plan = %q, %g", g, q)
	}
	if g, q := c.PlanGrade([][2]string{{"a", "good"}, {"a", "bad"}}); g != "rough" || q != 10 {
		t.Errorf("mixed plan = %q, %g, want rough on worst function", g, q)
	}
	// A graded function outranks thin ones: the thin sample neither
	// promotes nor blocks the trusted grade.
	if g, _ := c.PlanGrade([][2]string{{"a", "good"}, {"a", "thin"}}); g != "trusted" {
		t.Errorf("graded+thin plan = %q, want trusted", g)
	}
}

func TestCalibrationQErrQuantile(t *testing.T) {
	c := NewCalibration()
	// Eight accurate observations and two 16x blowouts: the median stays
	// 1 while p90 surfaces the tail — the divergence the pessimistic
	// inflation quantile exists to capture.
	good := Cost{TAll: 100 * time.Millisecond, Card: 10}
	for i := 0; i < 8; i++ {
		c.Observe("a", "spiky", good, good)
	}
	c.Observe("a", "spiky", good, Cost{TAll: 1600 * time.Millisecond, Card: 10})
	c.Observe("a", "spiky", good, Cost{TAll: 1600 * time.Millisecond, Card: 10})
	med, n := c.QErrQuantile("a", "spiky", 0.5)
	p90, _ := c.QErrQuantile("a", "spiky", 0.9)
	if n != 10 || med != 1 {
		t.Errorf("median = %g n=%d, want 1, 10", med, n)
	}
	if p90 <= med {
		t.Errorf("p90 = %g should exceed median %g", p90, med)
	}
	if _, n := c.QErrQuantile("a", "nosuch", 0.9); n != 0 {
		t.Errorf("untracked function reported %d samples", n)
	}
	var nilCal *Calibration
	if q, n := nilCal.QErrQuantile("a", "b", 0.9); q != 0 || n != 0 {
		t.Error("nil calibration QErrQuantile not a no-op")
	}
}

func TestObserverObserveCalibration(t *testing.T) {
	o := NewObserver()
	o.ObserveCalibration("avis", "frames",
		Cost{TAll: 100 * time.Millisecond, Card: 10},
		Cost{TAll: 300 * time.Millisecond, Card: 10})
	if q, n := o.Calibration.Grade("avis", "frames"); n != 1 || q != 3 {
		t.Errorf("tracker fed q=%g n=%d, want 3, 1", q, n)
	}
	h := o.Metrics.Histogram("hermes_dcsm_qerror_ta", "domain", "avis")
	if h.Count() != 1 || h.Quantile(0.5) != 3 {
		t.Errorf("registry histogram count=%d median=%g", h.Count(), h.Quantile(0.5))
	}
	for _, name := range []string{"hermes_dcsm_qerror_tf", "hermes_dcsm_qerror_card"} {
		if o.Metrics.Histogram(name, "domain", "avis").Count() != 1 {
			t.Errorf("%s not fed", name)
		}
	}
}

// TestCalibrationNilSafety: the new hooks must all be nil-receiver
// no-ops so an obs-disabled system costs only the nil checks.
func TestCalibrationNilSafety(t *testing.T) {
	var o *Observer
	o.ObserveCalibration("d", "f", Cost{}, Cost{})
	var c *Calibration
	c.Observe("d", "f", Cost{}, Cost{})
	if rows := c.Summary(); rows != nil {
		t.Errorf("nil calibration summary = %v", rows)
	}
	if _, n := c.Grade("d", "f"); n != 0 {
		t.Error("nil calibration graded")
	}
	// An observer with a nil Calibration/Metrics still accepts feeds.
	partial := &Observer{}
	partial.ObserveCalibration("d", "f", Cost{}, Cost{})
}
