package obs

import (
	"fmt"
	"net/http"
)

// Handler serves an observer over HTTP:
//
//	GET /metrics               Prometheus text exposition of every metric
//	GET /debug/queries         the recent-query span ring buffer, newest
//	                           first, each query rendered as its EXPLAIN
//	                           tree
//	GET /debug/calibration     per-function cost-model q-error table,
//	                           worst-calibrated first
//	GET /debug/flightrecorder  the flight recorder's retained root-span
//	                           trees as JSONL, oldest first
//
// Mount it on any mux or serve it directly; cmd/hermesd exposes it via
// its -http flag.
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o != nil {
			o.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o == nil {
			fmt.Fprintln(w, "tracing disabled")
			return
		}
		started, finished := o.Tracer.Counts()
		recent := o.Tracer.Recent()
		fmt.Fprintf(w, "%d queries started, %d finished, %d retained\n", started, finished, len(recent))
		for i, d := range recent {
			fmt.Fprintf(w, "\n-- query %d (started at %s, took %s)\n", i+1, millis(d.Start), millis(d.Duration()))
			fmt.Fprint(w, Explain(d))
		}
	})
	mux.HandleFunc("/debug/calibration", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o == nil || o.Calibration == nil {
			fmt.Fprintln(w, "calibration disabled")
			return
		}
		fmt.Fprintln(w, "DCSM calibration: q-error = max(est/actual, actual/est), worst first")
		fmt.Fprint(w, FormatCalibrationRows(o.Calibration.Summary()))
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if o == nil {
			return
		}
		o.Flight.WriteJSONL(w)
	})
	return mux
}
