package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderConcurrentWriteJSONL hammers the recorder with
// concurrent publishers, readers, dumpers, and threshold changes — the
// live-server shape where the tracer's publish hook fires mid-query
// while an operator curls /debug/flightrecorder. Run under -race this
// pins the locking discipline; in any mode it checks every dumped line
// is intact JSON with a positive sequence number.
func TestFlightRecorderConcurrentWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(32, 0)
	const writers, rounds = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d := SpanData{
					Name:  "?- q.",
					Start: 0,
					End:   time.Duration(i) * time.Millisecond,
					Children: []SpanData{
						{Name: "call d:f", Start: 0, End: time.Duration(i) * time.Millisecond},
					},
				}
				f.Record(d)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f.Records()
			f.Stats()
			f.SetThreshold(time.Duration(i%2) * time.Millisecond)
		}
	}()
	var dumpErr error
	var once sync.Once
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds/4; i++ {
				var buf bytes.Buffer
				if err := f.WriteJSONL(&buf); err != nil {
					once.Do(func() { dumpErr = err })
					return
				}
				sc := bufio.NewScanner(&buf)
				for sc.Scan() {
					var rec FlightRecord
					if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
						once.Do(func() { dumpErr = err })
						return
					}
					if rec.Seq <= 0 {
						once.Do(func() { dumpErr = io.ErrUnexpectedEOF })
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if dumpErr != nil {
		t.Fatalf("concurrent dump corrupted: %v", dumpErr)
	}
	if offered, _ := f.Stats(); offered != writers*rounds {
		t.Errorf("offered %d, want %d", offered, writers*rounds)
	}
}

// TestExplainFederatedGolden renders a stitched two-hop tree the way the
// remote client builds it — a local call span with the peer's serve
// subtree rebased and attached beneath it, per-hop node= tags,
// remote.wire_ms split out — alongside a degraded peer whose trace
// subtree timed out (local-only leaf, remote.trace says why), and
// compares against a golden file.
func TestExplainFederatedGolden(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	root := NewTracer(1).StartQuery("?- objects_between(4, 47, O).", 0)
	root.SetTag("node", "node-a")
	root.SetTag("answers", "19")
	root.SetTag("complete", "true")
	root.SetActual(Cost{TFirst: ms(410), TAll: ms(980), Card: 19})

	// Hop A→B: traced, stitched. The peer's serve subtree itself holds a
	// hop B→C child — two mounts deep, one tree.
	c1 := root.Child("call avis:frames_to_objects('rope', 4, 47)", ms(5))
	c1.SetTag("route", "direct")
	c1.SetTag("remote", "node-b:7117")
	c1.SetTag("remote.proto", "v2")
	c1.SetTag("remote.wire_ms", "62.0")
	c1.SetActual(Cost{TFirst: ms(400), TAll: ms(890), Card: 19})
	c1.AttachForeign(SpanData{
		Name:   "serve avis:frames_to_objects",
		Start:  ms(36),
		End:    ms(859),
		Tags:   map[string]string{"node": "node-b"},
		Actual: &Cost{TFirst: ms(310), TAll: ms(823), Card: 19},
		Children: []SpanData{
			{
				Name:  "call avis:frames_to_objects('rope', 4, 47)",
				Start: ms(40),
				End:   ms(850),
				Tags: map[string]string{
					"route": "direct", "remote": "node-c:7117",
					"remote.proto": "v2", "remote.wire_ms": "18.5",
				},
				Children: []SpanData{
					{
						Name:   "serve avis:frames_to_objects",
						Start:  ms(55),
						End:    ms(835),
						Tags:   map[string]string{"node": "node-c", "truncated": "1"},
						Actual: &Cost{TFirst: ms(290), TAll: ms(780), Card: 19},
					},
				},
			},
		},
	})
	c1.End(ms(895))

	// Degraded hop: the peer served answers but its trace subtree never
	// arrived (timeout / malformed) — the call span stays a local-only
	// leaf and remote.trace says why the subtree is missing.
	c2 := root.Child("call terrain:findrte(10, 120)", ms(900))
	c2.SetTag("route", "direct")
	c2.SetTag("remote", "node-d:7117")
	c2.SetTag("remote.proto", "v2")
	c2.SetTag("remote.trace", "malformed")
	c2.SetTag("remote.resumes", "1")
	c2.SetActual(Cost{TFirst: ms(30), TAll: ms(75), Card: 4})
	c2.End(ms(978))

	root.End(ms(980))
	got := Explain(root.Snapshot())

	golden := filepath.Join("testdata", "explain_federated.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("federated EXPLAIN drifted from golden.\n-- got:\n%s\n-- want:\n%s", got, want)
	}
}
