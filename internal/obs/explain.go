package obs

import (
	"fmt"
	"strings"
	"time"
)

// Explain renders a finished query span tree as a text tree, one node per
// line:
//
//	?- actors(A).  answers=9 complete=true  actual=[Tf=231.2ms Ta=243.5ms Card=9]
//	├─ rewrite  plans=2  (0.0ms)
//	├─ plan-choice  chosen=1  est=[Tf=233.6ms Ta=246.1ms Card=9.00]
//	└─ call avis:actors('rope')  cim=exact route=cim  est=[...] actual=[...]
//
// Each node shows its name, its sorted outcome tags, the estimated and
// actual [Tf, Ta, Card] cost vectors when recorded, and otherwise its
// clock extent. The output is deterministic for deterministic runs (tags
// sorted, virtual-clock times).
func Explain(d SpanData) string {
	var b strings.Builder
	writeNode(&b, d, "", "", "")
	return b.String()
}

func writeNode(b *strings.Builder, d SpanData, firstPrefix, restPrefix, childPrefix string) {
	b.WriteString(firstPrefix)
	b.WriteString(d.Name)
	for _, t := range d.sortedTags() {
		b.WriteString("  ")
		b.WriteString(t)
	}
	if d.Est != nil {
		fmt.Fprintf(b, "  est=%s", formatCost(*d.Est))
	}
	if d.Actual != nil {
		fmt.Fprintf(b, "  actual=%s", formatCost(*d.Actual))
	} else if d.Est == nil {
		fmt.Fprintf(b, "  (%s)", millis(d.Duration()))
	}
	b.WriteByte('\n')
	_ = restPrefix
	for i, c := range d.Children {
		last := i == len(d.Children)-1
		connector, indent := "├─ ", "│  "
		if last {
			connector, indent = "└─ ", "   "
		}
		writeNode(b, c, childPrefix+connector, childPrefix+indent, childPrefix+indent)
	}
}

// formatCost renders a cost vector the way the paper's tables report it.
func formatCost(c Cost) string {
	return fmt.Sprintf("[Tf=%s Ta=%s Card=%.2f]", millis(c.TFirst), millis(c.TAll), c.Card)
}

// millis renders a duration in execution-clock milliseconds.
func millis(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
