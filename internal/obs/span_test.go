package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartQuery("?- q(X).", 10*time.Millisecond)
	root.SetTag("answers", "2")
	call := root.Child("call d:f(1)", 12*time.Millisecond)
	call.SetTag("cim", "exact")
	call.SetEstimate(Cost{TFirst: time.Millisecond, TAll: 2 * time.Millisecond, Card: 3})
	call.SetActual(Cost{TFirst: time.Millisecond, TAll: 3 * time.Millisecond, Card: 3})
	call.End(15 * time.Millisecond)

	if got := tr.Recent(); len(got) != 0 {
		t.Fatalf("published before root end: %v", got)
	}
	root.End(20 * time.Millisecond)
	root.End(25 * time.Millisecond) // idempotent

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(recent))
	}
	d := recent[0]
	if d.Name != "?- q(X)." || d.Duration() != 10*time.Millisecond {
		t.Errorf("root snapshot = %+v", d)
	}
	if len(d.Children) != 1 {
		t.Fatalf("children = %d", len(d.Children))
	}
	c := d.Children[0]
	if c.Tags["cim"] != "exact" {
		t.Errorf("child tags = %v", c.Tags)
	}
	if c.Est == nil || c.Actual == nil || c.Est.Card != 3 {
		t.Errorf("child costs = est %+v actual %+v", c.Est, c.Actual)
	}
	// The snapshot is detached: later mutation must not leak in.
	root.SetTag("late", "yes")
	if _, ok := recent[0].Tags["late"]; ok {
		t.Error("snapshot aliased live span")
	}
	started, finished := tr.Counts()
	if started != 1 || finished != 1 {
		t.Errorf("counts = %d, %d", started, finished)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		s := tr.StartQuery(fmt.Sprintf("q%d", i), 0)
		s.End(time.Duration(i))
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("retained = %d, want 3", len(recent))
	}
	// Newest first.
	for i, want := range []string{"q4", "q3", "q2"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].Name, want)
		}
	}
	// Eviction is oldest-first: the two dropped queries must be the two
	// oldest, and the internal ring must hold survivors oldest first.
	for _, d := range recent {
		if d.Name == "q0" || d.Name == "q1" {
			t.Errorf("oldest query %s survived eviction", d.Name)
		}
	}
	tr.mu.Lock()
	internal := append([]SpanData(nil), tr.recent...)
	tr.mu.Unlock()
	for i, want := range []string{"q2", "q3", "q4"} {
		if internal[i].Name != want {
			t.Errorf("ring[%d] = %s, want %s (oldest-first retention)", i, internal[i].Name, want)
		}
	}
}

func TestTracerOnPublishHook(t *testing.T) {
	tr := NewTracer(2)
	var seen []string
	tr.SetOnPublish(func(d SpanData) { seen = append(seen, d.Name) })
	for i := 0; i < 3; i++ {
		s := tr.StartQuery(fmt.Sprintf("q%d", i), 0)
		s.End(time.Duration(i))
	}
	if len(seen) != 3 || seen[0] != "q0" || seen[2] != "q2" {
		t.Errorf("onPublish saw %v, want every finished query in order", seen)
	}
	var nilT *Tracer
	nilT.SetOnPublish(func(SpanData) {}) // must not panic
}

// TestSpanConcurrentTagging runs tag/child/snapshot operations from many
// goroutines; run with -race.
func TestSpanConcurrentTagging(t *testing.T) {
	tr := NewTracer(8)
	root := tr.StartQuery("q", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := root.Child(fmt.Sprintf("c%d", g), time.Duration(i))
				c.SetTag("k", "v")
				c.SetActual(Cost{Card: float64(i)})
				c.End(time.Duration(i + 1))
				root.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	root.End(time.Second)
	d := tr.Recent()[0]
	if len(d.Children) != 8*200 {
		t.Errorf("children = %d, want %d", len(d.Children), 8*200)
	}
}
