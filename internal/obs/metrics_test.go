package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("calls_total", "route", "cim")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if same := r.Counter("calls_total", "route", "cim"); same != c {
		t.Error("same (name, labels) did not return the same counter")
	}
	if other := r.Counter("calls_total", "route", "direct"); other == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("breaker_state", "domain", "avis")
	g.Set(2)
	g.Add(-1.5)
	if got := g.Value(); got != 0.5 {
		t.Errorf("gauge = %g, want 0.5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "b", "2", "a", "1")
	b := r.Counter("x_total", "a", "1", "b", "2")
	if a != b {
		t.Error("label order changed metric identity")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var o *Observer
	o.Counter("x").Inc()
	o.StartQuery("q", 0).SetTag("a", "b")
	var tr *Tracer
	tr.StartQuery("q", 0).End(0)
	if got := tr.Recent(); got != nil {
		t.Errorf("nil tracer Recent = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %g", got)
	}
	// 1..100: nearest-rank p50 = 50, p95 = 95, p99 = 99.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		q, want float64
	}{
		{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("p%g = %g, want %g", tc.q*100, got, tc.want)
		}
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %g", h.Sum())
	}
}

func TestHistogramWindowBounded(t *testing.T) {
	h := &Histogram{}
	// Fill the window with large values, then overwrite it completely with
	// small ones: quantiles must reflect only the retained window while
	// Count/Sum stay exact.
	for i := 0; i < HistogramWindow; i++ {
		h.Observe(1e6)
	}
	for i := 0; i < HistogramWindow; i++ {
		h.Observe(1)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Errorf("p99 after overwrite = %g, want 1", got)
	}
	if got := h.Count(); got != 2*HistogramWindow {
		t.Errorf("count = %d, want %d", got, 2*HistogramWindow)
	}
	if got := h.Sum(); got != float64(HistogramWindow)*1e6+float64(HistogramWindow) {
		t.Errorf("sum = %g", got)
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// run with -race.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c_total", "g", "shared").Inc()
				r.Gauge("g_now").Add(1)
				r.Histogram("h_ms").Observe(float64(i))
				if i%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
					r.Histogram("h_ms").Quantile(0.95)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "g", "shared").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("g_now").Value(); math.Abs(got-goroutines*perG) > 1e-9 {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h_ms").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("cim_hits_total", "CIM cache hits by kind.")
	r.Counter("cim_hits_total", "kind", "exact").Add(3)
	r.Counter("cim_hits_total", "kind", "partial").Add(1)
	r.Gauge("breaker_state", "domain", "avis").Set(2)
	h := r.Histogram("query_ms")
	h.Observe(10)
	h.Observe(20)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP cim_hits_total CIM cache hits by kind.",
		"# TYPE cim_hits_total counter",
		`cim_hits_total{kind="exact"} 3`,
		`cim_hits_total{kind="partial"} 1`,
		"# TYPE breaker_state gauge",
		`breaker_state{domain="avis"} 2`,
		"# TYPE query_ms summary",
		`query_ms{quantile="0.5"} 10`,
		`query_ms{quantile="0.99"} 20`,
		"query_ms_sum 30",
		"query_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in sorted order: breaker_state < cim_hits_total <
	// query_ms.
	if bi, ci := strings.Index(out, "breaker_state"), strings.Index(out, "cim_hits_total"); bi > ci {
		t.Error("families not sorted")
	}
}
