package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExplainGolden renders a representative span tree — plan choice, an
// exact CIM hit, a partial hit completed by an actual call, and a
// breaker-open short circuit — and compares it against the golden file.
func TestExplainGolden(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	root := NewTracer(1).StartQuery("?- objects_between(4, 47, O).", 0)
	root.SetTag("answers", "5")
	root.SetTag("complete", "true")
	root.SetActual(Cost{TFirst: ms(231), TAll: ms(462), Card: 5})

	rw := root.Child("rewrite", 0)
	rw.SetTag("plans", "2")
	rw.End(0)

	pc := root.Child("plan-choice", 0)
	pc.SetTag("chosen", "1")
	pc.SetTag("plan", "?- CIM[in(O, avis:frames_to_objects('rope', 4, 47))].")
	pc.SetEstimate(Cost{TFirst: ms(233), TAll: ms(470), Card: 6})
	pc.End(0)

	c1 := root.Child("call avis:frames_to_objects('rope', 4, 47)", ms(230))
	c1.SetTag("route", "cim")
	c1.SetTag("cim", "partial")
	c1.SetTag("serving", "avis:frames_to_objects('rope', 10, 40)")
	c1.SetEstimate(Cost{TFirst: ms(2), TAll: ms(210), Card: 6})
	c1.SetActual(Cost{TFirst: ms(1), TAll: ms(190), Card: 5})
	c1.End(ms(420))

	c2 := root.Child("call avis:actors('rope')", ms(425))
	c2.SetTag("route", "direct")
	c2.SetTag("breaker", "open")
	c2.SetTag("error", "source temporarily unavailable")
	c2.End(ms(425))

	root.End(ms(462))
	got := Explain(root.Snapshot())

	golden := filepath.Join("testdata", "explain.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN output drifted from golden.\n-- got:\n%s\n-- want:\n%s", got, want)
	}
}

// TestExplainDegradedAndPartial pins down how CIM degraded and partial
// answers render: the cim outcome, the serving entry, the matched
// invariant, and the avoided-cost tag must all be visible on the call
// line so an operator can read the serving decision off the tree.
func TestExplainDegradedAndPartial(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	root := NewTracer(1).StartQuery("?- objects_between(4, 47, O).", 0)
	root.SetTag("complete", "false")

	deg := root.Child("call avis:frames_to_objects('rope', 4, 47)", 0)
	deg.SetTag("route", "cim")
	deg.SetTag("cim", "degraded")
	deg.SetTag("degraded", "true")
	deg.SetTag("serving", "avis:frames_to_objects('rope', 4, 47)")
	deg.End(ms(1))

	part := root.Child("call avis:frames_to_objects('rope', 10, 40)", ms(2))
	part.SetTag("route", "cim")
	part.SetTag("cim", "partial")
	part.SetTag("invariant", "true => avis:frames_to_objects(F1, F2, O) <= avis:frames_to_objects(G1, G2, O).")
	part.SetTag("serving", "avis:frames_to_objects('rope', 4, 47)")
	part.End(ms(120))

	exact := root.Child("call avis:actors('rope')", ms(125))
	exact.SetTag("cim", "exact")
	exact.SetTag("cim.saved_ms", "231.0")
	exact.End(ms(126))

	root.End(ms(130))
	got := Explain(root.Snapshot())

	for _, want := range []string{
		"cim=degraded  degraded=true",
		"serving=avis:frames_to_objects('rope', 4, 47)",
		"cim=partial",
		"invariant=true => avis:frames_to_objects(F1, F2, O) <= avis:frames_to_objects(G1, G2, O).",
		"cim=exact  cim.saved_ms=231.0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, got)
		}
	}
}

func TestExplainNestedIndentation(t *testing.T) {
	root := NewTracer(1).StartQuery("root", 0)
	a := root.Child("a", 0)
	a.Child("a1", 0).End(0)
	a.Child("a2", 0).End(0)
	a.End(0)
	b := root.Child("b", 0)
	b.Child("b1", 0).End(0)
	b.End(0)
	root.End(0)
	got := Explain(root.Snapshot())
	want := "root  (0.0ms)\n" +
		"├─ a  (0.0ms)\n" +
		"│  ├─ a1  (0.0ms)\n" +
		"│  └─ a2  (0.0ms)\n" +
		"└─ b  (0.0ms)\n" +
		"   └─ b1  (0.0ms)\n"
	if got != want {
		t.Errorf("tree layout:\n got:\n%s\nwant:\n%s", got, want)
	}
}
