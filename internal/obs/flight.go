package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultFlightCapacity is how many finished root-span trees the
// observer's flight recorder retains by default.
const DefaultFlightCapacity = 256

// FlightRecord is one retained finished query: its root span tree plus
// enough envelope (sequence number, duration in ms) to scan a JSONL
// dump without walking the tree.
type FlightRecord struct {
	Seq        int64    `json:"seq"`
	Name       string   `json:"name"`
	DurationMS float64  `json:"duration_ms"`
	Root       SpanData `json:"root"`
}

// FlightRecorder is an always-on bounded ring of finished root-span
// trees, so a degraded production query can be explained after the
// fact without re-running it. A slow-query threshold filters what is
// retained: 0 keeps every finished query, otherwise only queries whose
// duration meets the threshold are recorded (the rest are counted as
// skipped). Oldest records are evicted first. Safe for concurrent use;
// a nil recorder is a no-op.
type FlightRecorder struct {
	mu        sync.Mutex
	capacity  int
	threshold time.Duration
	records   []FlightRecord // oldest first
	seq       int64
	skipped   int64
}

// NewFlightRecorder returns a recorder retaining the last capacity
// queries (minimum 1) at or above threshold (0 = keep everything).
func NewFlightRecorder(capacity int, threshold time.Duration) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{capacity: capacity, threshold: threshold}
}

// SetThreshold replaces the slow-query threshold (0 = keep everything).
func (f *FlightRecorder) SetThreshold(d time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.threshold = d
	f.mu.Unlock()
}

// Record offers one finished root-span snapshot to the ring. Snapshots
// faster than the threshold are skipped.
func (f *FlightRecorder) Record(d SpanData) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	if f.threshold > 0 && d.Duration() < f.threshold {
		f.skipped++
		return
	}
	f.records = append(f.records, FlightRecord{
		Seq:        f.seq,
		Name:       d.Name,
		DurationMS: float64(d.Duration()) / float64(time.Millisecond),
		Root:       d,
	})
	if len(f.records) > f.capacity {
		f.records = f.records[len(f.records)-f.capacity:]
	}
}

// Records returns the retained flight records, newest first.
func (f *FlightRecorder) Records() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, len(f.records))
	for i, r := range f.records {
		out[len(f.records)-1-i] = r
	}
	return out
}

// Stats returns how many finished queries were offered and how many
// were skipped for being under the threshold.
func (f *FlightRecorder) Stats() (offered, skipped int64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq, f.skipped
}

// WriteJSONL dumps the retained records oldest first, one JSON object
// per line (the /debug/flightrecorder format, also used for on-disk
// snapshots). A nil recorder writes nothing.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	records := append([]FlightRecord(nil), f.records...)
	f.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
