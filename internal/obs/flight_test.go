package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func span(name string, dur time.Duration) SpanData {
	return SpanData{Name: name, Start: 0, End: dur}
}

func TestFlightRecorderThreshold(t *testing.T) {
	f := NewFlightRecorder(8, 100*time.Millisecond)
	f.Record(span("fast", 10*time.Millisecond))
	f.Record(span("slow", 250*time.Millisecond))
	f.Record(span("exactly", 100*time.Millisecond)) // at-threshold is retained
	recs := f.Records()
	if len(recs) != 2 {
		t.Fatalf("retained = %d, want 2", len(recs))
	}
	if recs[0].Name != "exactly" || recs[1].Name != "slow" {
		t.Errorf("records (newest first) = %v", []string{recs[0].Name, recs[1].Name})
	}
	if recs[1].DurationMS != 250 {
		t.Errorf("duration_ms = %g, want 250", recs[1].DurationMS)
	}
	if offered, skipped := f.Stats(); offered != 3 || skipped != 1 {
		t.Errorf("stats = %d offered, %d skipped", offered, skipped)
	}
	f.SetThreshold(0)
	f.Record(span("fast2", time.Millisecond))
	if len(f.Records()) != 3 {
		t.Error("threshold 0 should keep everything")
	}
}

func TestFlightRecorderEvictionOldestFirst(t *testing.T) {
	f := NewFlightRecorder(3, 0)
	for i := 0; i < 5; i++ {
		f.Record(span(fmt.Sprintf("q%d", i), time.Duration(i+1)*time.Millisecond))
	}
	recs := f.Records()
	if len(recs) != 3 {
		t.Fatalf("retained = %d, want 3", len(recs))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if recs[i].Name != want {
			t.Errorf("records[%d] = %s, want %s", i, recs[i].Name, want)
		}
	}
	// Sequence numbers keep counting across evictions, so a JSONL reader
	// can tell records were dropped.
	if recs[0].Seq != 5 || recs[2].Seq != 3 {
		t.Errorf("seqs = %d..%d, want 5..3", recs[0].Seq, recs[2].Seq)
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	root := span("?- q(X).", 40*time.Millisecond)
	root.Tags = map[string]string{"answers": "2"}
	root.Children = []SpanData{span("call avis:frames(4, 30, F)", 30*time.Millisecond)}
	f.Record(root)
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(lines))
	}
	var rec FlightRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.Name != "?- q(X)." || rec.DurationMS != 40 {
		t.Errorf("record = %+v", rec)
	}
	if len(rec.Root.Children) != 1 || rec.Root.Children[0].Name != "call avis:frames(4, 30, F)" {
		t.Errorf("span tree not round-tripped: %+v", rec.Root)
	}
}

// TestFlightRecorderNilSafety: nil recorder and the observer wiring.
func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(span("q", time.Millisecond))
	f.SetThreshold(time.Second)
	if recs := f.Records(); recs != nil {
		t.Errorf("nil recorder records = %v", recs)
	}
	if err := f.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil recorder WriteJSONL = %v", err)
	}
	if offered, skipped := f.Stats(); offered != 0 || skipped != 0 {
		t.Error("nil recorder has stats")
	}
}

// TestObserverFeedsFlightRecorder: ending a root query span must land
// its snapshot in the observer's flight recorder.
func TestObserverFeedsFlightRecorder(t *testing.T) {
	o := NewObserver()
	s := o.StartQuery("?- q(X).", 0)
	c := s.Child("call d:f(1)", time.Millisecond)
	c.End(5 * time.Millisecond)
	s.End(10 * time.Millisecond)
	recs := o.Flight.Records()
	if len(recs) != 1 || recs[0].Name != "?- q(X)." || len(recs[0].Root.Children) != 1 {
		t.Fatalf("flight records = %+v", recs)
	}
}
