// Package obs is the mediator's observability substrate: a dependency-free
// metrics registry (counters, gauges, bounded histograms with p50/p95/p99
// quantiles, all safe under the race detector) and hierarchical query-span
// tracing with an EXPLAIN renderer.
//
// The paper's evaluation (Figures 5–7) hinges on seeing what the optimizer
// did: which plan the rewriter picked, whether the CIM answered from cache,
// an equality invariant, or a partial subset hit, and what the DCSM
// estimated versus what the call actually cost. This package makes all of
// that first-class:
//
//   - Registry holds named metrics with label sets and renders them in
//     Prometheus text exposition format (WritePrometheus, or the /metrics
//     endpoint from Handler).
//   - Tracer starts one root Span per query; the engine, CIM, DCSM,
//     resilience wrapper and remote client hang child spans and outcome
//     tags off it (cim=exact|equality|partial|miss, degraded=true,
//     breaker=open, ...). Finished span trees land in a bounded ring
//     buffer served at /debug/queries.
//   - Explain renders a finished span tree as a text tree annotating every
//     node with its estimated versus actual [Tf, Ta, Card] cost vector —
//     the paper's cost triple of time-to-first-answer, time-to-all-answers
//     and cardinality.
//
// All timestamps are execution-clock readings (time.Duration since clock
// zero), so traces of simulated runs replay deterministically. The package
// imports only the standard library; every layer of the system can depend
// on it without cycles. All Span and Observer methods are nil-receiver
// safe, so instrumented code needs no "is observability on?" conditionals.
package obs
