package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerMetricsAndQueries(t *testing.T) {
	o := NewObserver()
	o.Counter("cim_hits_total", "kind", "exact").Add(2)
	s := o.StartQuery("?- q(X).", 0)
	s.Child("call d:f(1)", time.Millisecond).End(2 * time.Millisecond)
	s.End(3 * time.Millisecond)

	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, `cim_hits_total{kind="exact"} 2`) {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	queries := get("/debug/queries")
	for _, want := range []string{"1 queries started, 1 finished", "?- q(X).", "call d:f(1)"} {
		if !strings.Contains(queries, want) {
			t.Errorf("/debug/queries missing %q:\n%s", want, queries)
		}
	}
}
