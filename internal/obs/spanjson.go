package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Span-subtree JSON: the wire form a remote hermesd uses to ship the span
// tree it built while serving one call back to the caller, who stitches it
// under the local call span. The format is the SpanData JSON encoding;
// decoding validates structure so a malformed or hostile peer subtree is
// rejected with an error, never a panic or an unbounded allocation.

// Limits enforced by DecodeSpanJSON on peer-supplied subtrees.
const (
	// MaxSpanDepth bounds subtree nesting.
	MaxSpanDepth = 64
	// MaxSpanNodes bounds total node count.
	MaxSpanNodes = 16384
)

// TruncatedTag marks a subtree whose deeper levels were pruned to fit a
// byte budget (value "1"); the caller's EXPLAIN shows the cut instead of
// silently dropping the subtree.
const TruncatedTag = "truncated"

// EncodeSpanJSON renders a span snapshot as its wire JSON.
func EncodeSpanJSON(d SpanData) ([]byte, error) {
	return json.Marshal(d)
}

// DecodeSpanJSON parses a peer-supplied span subtree, validating structure:
// depth and node count are bounded, every span is named, and no span ends
// before it starts. Invalid input returns an error; the zero SpanData is
// returned alongside it.
func DecodeSpanJSON(b []byte) (SpanData, error) {
	var d SpanData
	if err := json.Unmarshal(b, &d); err != nil {
		return SpanData{}, fmt.Errorf("obs: span subtree: %w", err)
	}
	nodes := 0
	if err := validateSpan(d, 0, &nodes); err != nil {
		return SpanData{}, err
	}
	return d, nil
}

func validateSpan(d SpanData, depth int, nodes *int) error {
	if depth > MaxSpanDepth {
		return fmt.Errorf("obs: span subtree deeper than %d", MaxSpanDepth)
	}
	*nodes++
	if *nodes > MaxSpanNodes {
		return fmt.Errorf("obs: span subtree larger than %d nodes", MaxSpanNodes)
	}
	if d.Name == "" {
		return errors.New("obs: span subtree contains an unnamed span")
	}
	if d.End < d.Start {
		return fmt.Errorf("obs: span %q ends before it starts", d.Name)
	}
	for _, c := range d.Children {
		if err := validateSpan(c, depth+1, nodes); err != nil {
			return err
		}
	}
	return nil
}

// TruncateSpanJSON encodes d in at most maxBytes, pruning the deepest
// levels first until the encoding fits and tagging the root TruncatedTag=1
// when anything was pruned. maxBytes <= 0 means unlimited. ok is false when
// even the root alone does not fit.
func TruncateSpanJSON(d SpanData, maxBytes int) (b []byte, truncated, ok bool) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, false, false
	}
	if maxBytes <= 0 || len(b) <= maxBytes {
		return b, false, true
	}
	for depth := spanDepth(d) - 1; depth >= 0; depth-- {
		pruned := pruneSpan(d, depth)
		if pruned.Tags == nil {
			pruned.Tags = map[string]string{}
		} else {
			tags := make(map[string]string, len(pruned.Tags)+1)
			for k, v := range pruned.Tags {
				tags[k] = v
			}
			pruned.Tags = tags
		}
		pruned.Tags[TruncatedTag] = "1"
		b, err = json.Marshal(pruned)
		if err == nil && len(b) <= maxBytes {
			return b, true, true
		}
	}
	return nil, true, false
}

// spanDepth returns the deepest nesting level in d (root = 0).
func spanDepth(d SpanData) int {
	max := 0
	for _, c := range d.Children {
		if n := spanDepth(c) + 1; n > max {
			max = n
		}
	}
	return max
}

// pruneSpan copies d keeping children only down to the given depth
// (0 = root alone).
func pruneSpan(d SpanData, depth int) SpanData {
	out := d
	if depth == 0 {
		out.Children = nil
		return out
	}
	out.Children = make([]SpanData, len(d.Children))
	for i, c := range d.Children {
		out.Children[i] = pruneSpan(c, depth-1)
	}
	return out
}

// RebaseSpan shifts every clock reading in d so the root starts at base.
// Stitching uses it to map a peer's serve subtree (timed on the peer's own
// clock) onto the caller's execution-clock axis at the moment the call was
// issued, so one EXPLAIN tree reads on a single axis.
func RebaseSpan(d SpanData, base time.Duration) SpanData {
	return shiftSpan(d, base-d.Start)
}

func shiftSpan(d SpanData, by time.Duration) SpanData {
	out := d
	out.Start += by
	out.End += by
	if len(d.Children) > 0 {
		out.Children = make([]SpanData, len(d.Children))
		for i, c := range d.Children {
			out.Children[i] = shiftSpan(c, by)
		}
	}
	return out
}
