package term

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeJSON: arbitrary JSON must never panic the value decoder, and
// anything it accepts must re-encode and decode to an equal value.
func FuzzDecodeJSON(f *testing.F) {
	for _, s := range []string{
		`{"t":"s","s":"x"}`,
		`{"t":"i","s":"42"}`,
		`{"t":"f","f":2.5}`,
		`{"t":"b","b":true}`,
		`{"t":"tu","l":[{"t":"i","s":"1"}]}`,
		`{"t":"r","r":[{"n":"a","v":{"t":"s","s":"y"}}]}`,
		`{"t":"zz"}`,
		`{"t":"i","s":"notanint"}`,
		`{}`,
		`{"t":"tu","l":[{"t":"tu","l":[{"t":"tu","l":[]}]}]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var w JSONValue
		if err := json.Unmarshal(raw, &w); err != nil {
			return
		}
		v, err := DecodeJSON(w)
		if err != nil {
			return
		}
		w2, err := EncodeJSON(v)
		if err != nil {
			t.Fatalf("decoded %s but cannot re-encode: %v", raw, err)
		}
		v2, err := DecodeJSON(w2)
		if err != nil {
			t.Fatalf("re-encoded form does not decode: %v", err)
		}
		if !Equal(v, v2) {
			t.Fatalf("round trip changed value: %s -> %s", v, v2)
		}
	})
}
