package term

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func genValue(rng *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Str(string(rune('a' + rng.Intn(26))))
		case 1:
			return Int(rng.Int63() - rng.Int63())
		case 2:
			return Float(rng.NormFloat64())
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	switch rng.Intn(6) {
	case 0:
		n := rng.Intn(4)
		t := make(Tuple, n)
		for i := range t {
			t[i] = genValue(rng, depth-1)
		}
		return t
	case 1:
		n := rng.Intn(4)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{Name: string(rune('a' + i)), Val: genValue(rng, depth-1)}
		}
		return NewRecord(fields...)
	default:
		return genValue(rng, 0)
	}
}

// TestJSONRoundTripRandom: encode/decode preserves every value exactly
// (by canonical key), including through an actual JSON marshal.
func TestJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		v := genValue(rng, 3)
		w, err := EncodeJSON(v)
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		raw, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		var w2 JSONValue
		if err := json.Unmarshal(raw, &w2); err != nil {
			t.Fatalf("case %d unmarshal: %v", i, err)
		}
		got, err := DecodeJSON(w2)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if !Equal(v, got) {
			t.Fatalf("case %d: %s -> %s", i, v, got)
		}
	}
}

// TestJSONIntExactness: int64 values beyond float64 precision survive.
func TestJSONIntExactness(t *testing.T) {
	f := func(n int64) bool {
		w, err := EncodeJSON(Int(n))
		if err != nil {
			return false
		}
		raw, _ := json.Marshal(w)
		var w2 JSONValue
		json.Unmarshal(raw, &w2)
		got, err := DecodeJSON(w2)
		return err == nil && Equal(got, Int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	if _, err := DecodeJSON(JSONValue{T: "nope"}); err == nil {
		t.Error("unknown tag")
	}
	if _, err := DecodeJSON(JSONValue{T: "i", S: "xyz"}); err == nil {
		t.Error("bad int payload")
	}
	if _, err := DecodeJSON(JSONValue{T: "tu", L: []JSONValue{{T: "nope"}}}); err == nil {
		t.Error("nested error must propagate")
	}
	if _, err := DecodeJSON(JSONValue{T: "r", R: []JSONField{{N: "x", V: JSONValue{T: "nope"}}}}); err == nil {
		t.Error("record field error must propagate")
	}
}

func TestJSONSlices(t *testing.T) {
	vals := []Value{Int(1), Str("a"), Bool(true)}
	ws, err := EncodeJSONs(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONs(ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if !Equal(vals[i], got[i]) {
			t.Errorf("slice element %d: %s != %s", i, vals[i], got[i])
		}
	}
	if _, err := DecodeJSONs([]JSONValue{{T: "zz"}}); err == nil {
		t.Error("bad element must fail")
	}
}
