// Package term defines the value and term model of the mediator language:
// ground values exchanged with source domains (constants, records, tuples),
// terms appearing in rules (constants, variables, attribute paths such as
// $ans.1 or P.name), substitutions, and unification.
package term

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the concrete type of a Value.
type Kind int

// Value kinds.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
	KindTuple
	KindRecord
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTuple:
		return "tuple"
	case KindRecord:
		return "record"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Value is a ground value: the arguments and answers of domain calls.
// Implementations are immutable; share them freely.
type Value interface {
	// Kind reports the concrete kind.
	Kind() Kind
	// Key returns a canonical encoding, unique per value, suitable for use
	// as a map key (cache keys, statistics-table dimensions).
	Key() string
	// String renders the value the way the mediator language would print it.
	String() string
}

// Str is a string constant.
type Str string

// Kind reports KindString.
func (s Str) Kind() Kind { return KindString }

// Key returns a canonical quoted encoding.
func (s Str) Key() string { return "s" + strconv.Quote(string(s)) }

func (s Str) String() string { return "'" + string(s) + "'" }

// Int is an integer constant.
type Int int64

// Kind reports KindInt.
func (i Int) Kind() Kind { return KindInt }

// Key returns a canonical decimal encoding.
func (i Int) Key() string { return "i" + strconv.FormatInt(int64(i), 10) }

func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is a floating-point constant.
type Float float64

// Kind reports KindFloat.
func (f Float) Kind() Kind { return KindFloat }

// Key returns a canonical encoding.
func (f Float) Key() string { return "f" + strconv.FormatFloat(float64(f), 'g', -1, 64) }

func (f Float) String() string { return strconv.FormatFloat(float64(f), 'g', -1, 64) }

// Bool is a boolean constant.
type Bool bool

// Kind reports KindBool.
func (b Bool) Kind() Kind { return KindBool }

// Key returns "bt" or "bf".
func (b Bool) Key() string {
	if b {
		return "bt"
	}
	return "bf"
}

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Tuple is a positional composite value. Attribute "1" selects the first
// component, as in the paper's $ans.1 notation.
type Tuple []Value

// Kind reports KindTuple.
func (t Tuple) Kind() Kind { return KindTuple }

// Key returns a canonical encoding of all components.
func (t Tuple) Key() string {
	var b strings.Builder
	b.WriteString("t(")
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.Key())
	}
	b.WriteByte(')')
	return b.String()
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Field is one named component of a Record.
type Field struct {
	Name string
	Val  Value
}

// Record is a composite value with named fields, as returned by sources such
// as relational tables (P.name, P.role).
type Record struct {
	fields []Field
}

// NewRecord builds a record from fields. Field order is preserved for
// display; Key is order-insensitive so that records with the same
// field/value sets compare equal as cache keys.
func NewRecord(fields ...Field) Record {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	return Record{fields: fs}
}

// Kind reports KindRecord.
func (r Record) Kind() Kind { return KindRecord }

// Fields returns the record's fields in declaration order. The returned
// slice must not be modified.
func (r Record) Fields() []Field { return r.fields }

// Get returns the value of the named field.
func (r Record) Get(name string) (Value, bool) {
	for _, f := range r.fields {
		if f.Name == name {
			return f.Val, true
		}
	}
	return nil, false
}

// Key returns a canonical, field-order-insensitive encoding.
func (r Record) Key() string {
	names := make([]string, len(r.fields))
	byName := make(map[string]Value, len(r.fields))
	for i, f := range r.fields {
		names[i] = f.Name
		byName[f.Name] = f.Val
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("r{")
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(n))
		b.WriteByte(':')
		b.WriteString(byName[n].Key())
	}
	b.WriteByte('}')
	return b.String()
}

func (r Record) String() string {
	parts := make([]string, len(r.fields))
	for i, f := range r.fields {
		parts[i] = f.Name + ": " + f.Val.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports whether two values are identical (same canonical key).
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Key() == b.Key()
}

// Numeric reports whether v is an Int or Float, and its float64 reading.
func Numeric(v Value) (float64, bool) {
	switch n := v.(type) {
	case Int:
		return float64(n), true
	case Float:
		return float64(n), true
	}
	return 0, false
}

// Compare orders two values: -1, 0, +1. Int and Float compare numerically
// with each other; otherwise both values must have the same kind. Tuples and
// records compare component-wise. Comparing incompatible kinds is an error.
func Compare(a, b Value) (int, error) {
	if fa, ok := Numeric(a); ok {
		if fb, ok := Numeric(b); ok {
			switch {
			case fa < fb:
				return -1, nil
			case fa > fb:
				return 1, nil
			}
			return 0, nil
		}
	}
	if a.Kind() != b.Kind() {
		return 0, fmt.Errorf("cannot compare %s with %s", a.Kind(), b.Kind())
	}
	switch av := a.(type) {
	case Str:
		return strings.Compare(string(av), string(b.(Str))), nil
	case Bool:
		bv := b.(Bool)
		switch {
		case !bool(av) && bool(bv):
			return -1, nil
		case bool(av) && !bool(bv):
			return 1, nil
		}
		return 0, nil
	case Tuple:
		bv := b.(Tuple)
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			c, err := Compare(av[i], bv[i])
			if err != nil || c != 0 {
				return c, err
			}
		}
		switch {
		case len(av) < len(bv):
			return -1, nil
		case len(av) > len(bv):
			return 1, nil
		}
		return 0, nil
	case Record:
		// Records order by canonical key; a total order is all that is needed.
		return strings.Compare(a.Key(), b.Key()), nil
	}
	return 0, fmt.Errorf("cannot compare values of kind %s", a.Kind())
}

// Select resolves an attribute path against a value: numeric components
// index tuples (1-based, as in $ans.1), names index record fields.
func Select(v Value, path []string) (Value, error) {
	cur := v
	for _, attr := range path {
		switch cv := cur.(type) {
		case Tuple:
			idx, err := strconv.Atoi(attr)
			if err != nil {
				return nil, fmt.Errorf("tuple attribute %q is not an index", attr)
			}
			if idx < 1 || idx > len(cv) {
				return nil, fmt.Errorf("tuple index %d out of range 1..%d", idx, len(cv))
			}
			cur = cv[idx-1]
		case Record:
			fv, ok := cv.Get(attr)
			if !ok {
				return nil, fmt.Errorf("record has no field %q", attr)
			}
			cur = fv
		default:
			return nil, fmt.Errorf("cannot select attribute %q from %s value", attr, cur.Kind())
		}
	}
	return cur, nil
}

// SizeBytes estimates the wire size of a value, used by the network
// simulation to charge transfer time and by the experiments to report
// result sizes the way the paper does ("6 tuples (421 bytes)").
func SizeBytes(v Value) int {
	switch cv := v.(type) {
	case Str:
		return len(cv)
	case Int, Float:
		return 8
	case Bool:
		return 1
	case Tuple:
		n := 2
		for _, e := range cv {
			n += SizeBytes(e)
		}
		return n
	case Record:
		n := 2
		for _, f := range cv.fields {
			n += len(f.Name) + SizeBytes(f.Val)
		}
		return n
	}
	return 8
}
