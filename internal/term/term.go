package term

import (
	"fmt"
	"strings"
)

// Term is a syntactic term appearing in rules, queries and invariants:
// either a ground constant, or a variable optionally followed by an
// attribute path ($ans.1, P.name).
type Term struct {
	// Const is non-nil for constant terms.
	Const Value
	// Var is the variable name for variable terms ("" for constants).
	Var string
	// Path is the attribute path applied to the variable, possibly empty.
	Path []string
}

// C builds a constant term.
func C(v Value) Term { return Term{Const: v} }

// V builds a variable term.
func V(name string, path ...string) Term { return Term{Var: name, Path: path} }

// IsConst reports whether the term is a ground constant.
func (t Term) IsConst() bool { return t.Const != nil }

// IsVar reports whether the term is a bare variable (no attribute path).
func (t Term) IsVar() bool { return t.Const == nil && len(t.Path) == 0 }

// String renders the term in the mediator language syntax.
func (t Term) String() string {
	if t.IsConst() {
		return t.Const.String()
	}
	if len(t.Path) == 0 {
		return t.Var
	}
	return t.Var + "." + strings.Join(t.Path, ".")
}

// Vars appends the variable of t (if any) to dst and returns it.
func (t Term) Vars(dst []string) []string {
	if t.Var != "" {
		dst = append(dst, t.Var)
	}
	return dst
}

// Subst is a substitution: a binding environment mapping variable names to
// ground values.
type Subst map[string]Value

// Clone returns an independent copy of s.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Lookup returns the binding of a variable.
func (s Subst) Lookup(name string) (Value, bool) {
	v, ok := s[name]
	return v, ok
}

// Eval resolves a term to a ground value under the substitution. It fails
// if the term's variable is unbound or the attribute path does not resolve.
func (s Subst) Eval(t Term) (Value, error) {
	if t.IsConst() {
		return t.Const, nil
	}
	v, ok := s[t.Var]
	if !ok {
		return nil, fmt.Errorf("variable %s is unbound", t.Var)
	}
	if len(t.Path) == 0 {
		return v, nil
	}
	sel, err := Select(v, t.Path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", t, err)
	}
	return sel, nil
}

// Ground reports whether t evaluates to a ground value under s.
func (s Subst) Ground(t Term) bool {
	if t.IsConst() {
		return true
	}
	_, ok := s[t.Var]
	return ok
}

// Unify matches a term against a ground value, extending the substitution.
// Constants must equal the value; bound variables must agree with their
// binding; unbound bare variables are bound to the value. Terms with
// attribute paths must already be resolvable and equal to the value (they
// cannot be bound, since the enclosing record is unknown).
func (s Subst) Unify(t Term, v Value) (Subst, bool) {
	if t.IsConst() {
		if Equal(t.Const, v) {
			return s, true
		}
		return nil, false
	}
	if len(t.Path) > 0 {
		cur, err := s.Eval(t)
		if err != nil {
			return nil, false
		}
		if Equal(cur, v) {
			return s, true
		}
		return nil, false
	}
	if bound, ok := s[t.Var]; ok {
		if Equal(bound, v) {
			return s, true
		}
		return nil, false
	}
	out := s.Clone()
	out[t.Var] = v
	return out, true
}

// UnifyAll unifies a list of terms against a list of ground values.
func (s Subst) UnifyAll(ts []Term, vs []Value) (Subst, bool) {
	if len(ts) != len(vs) {
		return nil, false
	}
	cur := s
	for i, t := range ts {
		next, ok := cur.Unify(t, vs[i])
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// RelOp is a comparison operator of the mediator language.
type RelOp int

// Comparison operators.
const (
	OpEQ RelOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// ParseRelOp recognizes a comparison operator token.
func ParseRelOp(s string) (RelOp, bool) {
	switch s {
	case "=", "==":
		return OpEQ, true
	case "!=", "<>":
		return OpNE, true
	case "<":
		return OpLT, true
	case "<=", "=<":
		return OpLE, true
	case ">":
		return OpGT, true
	case ">=", "=>":
		return OpGE, true
	}
	return 0, false
}

func (op RelOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	}
	return "?"
}

// Holds evaluates `a op b` over ground values.
func (op RelOp) Holds(a, b Value) (bool, error) {
	if op == OpEQ || op == OpNE {
		eq := Equal(a, b)
		// Numeric cross-kind equality (2 = 2.0) goes through Compare.
		if !eq {
			if _, aNum := Numeric(a); aNum {
				if _, bNum := Numeric(b); bNum {
					c, err := Compare(a, b)
					if err != nil {
						return false, err
					}
					eq = c == 0
				}
			}
		}
		if op == OpEQ {
			return eq, nil
		}
		return !eq, nil
	}
	c, err := Compare(a, b)
	if err != nil {
		return false, err
	}
	switch op {
	case OpLT:
		return c < 0, nil
	case OpLE:
		return c <= 0, nil
	case OpGT:
		return c > 0, nil
	case OpGE:
		return c >= 0, nil
	}
	return false, fmt.Errorf("unknown operator %v", op)
}
