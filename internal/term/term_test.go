package term

import (
	"testing"
	"testing/quick"
)

func TestSubstEval(t *testing.T) {
	s := Subst{"X": Int(3), "T": NewRecord(Field{Name: "loc", Val: Str("d7")})}
	v, err := s.Eval(C(Str("k")))
	if err != nil || !Equal(v, Str("k")) {
		t.Errorf("Eval(const) = %v, %v", v, err)
	}
	v, err = s.Eval(V("X"))
	if err != nil || !Equal(v, Int(3)) {
		t.Errorf("Eval(X) = %v, %v", v, err)
	}
	v, err = s.Eval(V("T", "loc"))
	if err != nil || !Equal(v, Str("d7")) {
		t.Errorf("Eval(T.loc) = %v, %v", v, err)
	}
	if _, err := s.Eval(V("Y")); err == nil {
		t.Error("Eval(unbound) should error")
	}
	if _, err := s.Eval(V("X", "f")); err == nil {
		t.Error("Eval(path on int) should error")
	}
}

func TestSubstGround(t *testing.T) {
	s := Subst{"X": Int(1)}
	if !s.Ground(C(Int(9))) {
		t.Error("constants are ground")
	}
	if !s.Ground(V("X")) {
		t.Error("bound var is ground")
	}
	if s.Ground(V("Y")) {
		t.Error("unbound var is not ground")
	}
}

func TestUnifyBindsFreshVar(t *testing.T) {
	s := Subst{}
	s2, ok := s.Unify(V("X"), Int(5))
	if !ok || !Equal(s2["X"], Int(5)) {
		t.Fatalf("Unify fresh var failed: %v %v", s2, ok)
	}
	if _, bound := s["X"]; bound {
		t.Error("Unify mutated the original substitution")
	}
}

func TestUnifyBoundVar(t *testing.T) {
	s := Subst{"X": Int(5)}
	if _, ok := s.Unify(V("X"), Int(5)); !ok {
		t.Error("Unify with agreeing binding should succeed")
	}
	if _, ok := s.Unify(V("X"), Int(6)); ok {
		t.Error("Unify with conflicting binding should fail")
	}
}

func TestUnifyConst(t *testing.T) {
	s := Subst{}
	if _, ok := s.Unify(C(Str("a")), Str("a")); !ok {
		t.Error("const unifies with equal value")
	}
	if _, ok := s.Unify(C(Str("a")), Str("b")); ok {
		t.Error("const must not unify with different value")
	}
}

func TestUnifyPathTerm(t *testing.T) {
	rec := NewRecord(Field{Name: "a", Val: Int(1)})
	s := Subst{"R": rec}
	if _, ok := s.Unify(V("R", "a"), Int(1)); !ok {
		t.Error("path term equal to value should unify")
	}
	if _, ok := s.Unify(V("R", "a"), Int(2)); ok {
		t.Error("path term different from value must not unify")
	}
	if _, ok := (Subst{}).Unify(V("R", "a"), Int(1)); ok {
		t.Error("path on unbound var must not unify")
	}
}

func TestUnifyAll(t *testing.T) {
	s, ok := (Subst{}).UnifyAll(
		[]Term{V("X"), C(Int(2)), V("X")},
		[]Value{Int(1), Int(2), Int(1)})
	if !ok || !Equal(s["X"], Int(1)) {
		t.Fatalf("UnifyAll = %v, %v", s, ok)
	}
	if _, ok := (Subst{}).UnifyAll(
		[]Term{V("X"), V("X")},
		[]Value{Int(1), Int(2)}); ok {
		t.Error("UnifyAll with conflicting repeated var should fail")
	}
	if _, ok := (Subst{}).UnifyAll([]Term{V("X")}, []Value{Int(1), Int(2)}); ok {
		t.Error("UnifyAll with arity mismatch should fail")
	}
}

func TestRelOpHolds(t *testing.T) {
	cases := []struct {
		op   RelOp
		a, b Value
		want bool
	}{
		{OpEQ, Int(1), Int(1), true},
		{OpEQ, Int(1), Float(1), true},
		{OpEQ, Str("a"), Str("b"), false},
		{OpNE, Str("a"), Str("b"), true},
		{OpLT, Int(1), Int(2), true},
		{OpLE, Int(2), Int(2), true},
		{OpGT, Float(2.5), Int(2), true},
		{OpGE, Int(1), Int(2), false},
	}
	for _, c := range cases {
		got, err := c.op.Holds(c.a, c.b)
		if err != nil {
			t.Fatalf("%v %v %v: %v", c.a, c.op, c.b, err)
		}
		if got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestRelOpEqIncomparableKinds(t *testing.T) {
	// Equality across incomparable kinds is simply false, not an error.
	ok, err := OpEQ.Holds(Str("a"), Int(1))
	if err != nil || ok {
		t.Errorf("OpEQ('a', 1) = %v, %v; want false, nil", ok, err)
	}
	if _, err := OpLT.Holds(Str("a"), Int(1)); err == nil {
		t.Error("OpLT across kinds should error")
	}
}

func TestParseRelOp(t *testing.T) {
	for s, want := range map[string]RelOp{
		"=": OpEQ, "==": OpEQ, "!=": OpNE, "<>": OpNE,
		"<": OpLT, "<=": OpLE, "=<": OpLE, ">": OpGT, ">=": OpGE, "=>": OpGE,
	} {
		got, ok := ParseRelOp(s)
		if !ok || got != want {
			t.Errorf("ParseRelOp(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseRelOp("<<"); ok {
		t.Error("ParseRelOp(<<) should fail")
	}
}

func TestTermString(t *testing.T) {
	if s := V("X", "loc").String(); s != "X.loc" {
		t.Errorf("term string = %q", s)
	}
	if s := C(Int(4)).String(); s != "4" {
		t.Errorf("const string = %q", s)
	}
}

// Property: Unify(t, v) then Eval(t) returns v.
func TestUnifyEvalRoundTrip(t *testing.T) {
	f := func(name string, val int64) bool {
		if name == "" {
			return true
		}
		v := Int(val)
		s, ok := (Subst{}).Unify(V("V"+name), v)
		if !ok {
			return false
		}
		got, err := s.Eval(V("V" + name))
		return err == nil && Equal(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: op and its dual agree: a < b iff b > a, etc.
func TestRelOpDuality(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		lt, _ := OpLT.Holds(x, y)
		gt, _ := OpGT.Holds(y, x)
		le, _ := OpLE.Holds(x, y)
		ge, _ := OpGE.Holds(y, x)
		return lt == gt && le == ge
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Subst{"X": Int(1)}
	c := s.Clone()
	c["Y"] = Int(2)
	if _, ok := s["Y"]; ok {
		t.Error("Clone shares storage with original")
	}
}
