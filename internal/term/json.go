package term

import (
	"fmt"
	"strconv"
)

// JSONValue is the portable JSON encoding of a Value, shared by the remote
// wire protocol and the cache/statistics persistence formats. Int64
// payloads travel as decimal text so they survive JSON's float64 numbers
// exactly.
type JSONValue struct {
	T string      `json:"t"`           // s, i, f, b, tu, r
	S string      `json:"s,omitempty"` // string payload (also int64 text)
	F float64     `json:"f,omitempty"`
	B bool        `json:"b,omitempty"`
	L []JSONValue `json:"l,omitempty"` // tuple elements
	R []JSONField `json:"r,omitempty"` // record fields
}

// JSONField is one record field in a JSONValue.
type JSONField struct {
	N string    `json:"n"`
	V JSONValue `json:"v"`
}

// EncodeJSON converts a Value to its JSON form.
func EncodeJSON(v Value) (JSONValue, error) {
	switch cv := v.(type) {
	case Str:
		return JSONValue{T: "s", S: string(cv)}, nil
	case Int:
		return JSONValue{T: "i", S: strconv.FormatInt(int64(cv), 10)}, nil
	case Float:
		return JSONValue{T: "f", F: float64(cv)}, nil
	case Bool:
		return JSONValue{T: "b", B: bool(cv)}, nil
	case Tuple:
		out := JSONValue{T: "tu", L: make([]JSONValue, len(cv))}
		for i, e := range cv {
			we, err := EncodeJSON(e)
			if err != nil {
				return JSONValue{}, err
			}
			out.L[i] = we
		}
		return out, nil
	case Record:
		fields := cv.Fields()
		out := JSONValue{T: "r", R: make([]JSONField, len(fields))}
		for i, f := range fields {
			wv, err := EncodeJSON(f.Val)
			if err != nil {
				return JSONValue{}, err
			}
			out.R[i] = JSONField{N: f.Name, V: wv}
		}
		return out, nil
	}
	return JSONValue{}, fmt.Errorf("term: cannot encode value of kind %v", v.Kind())
}

// DecodeJSON converts a JSON form back to a Value.
func DecodeJSON(w JSONValue) (Value, error) {
	switch w.T {
	case "s":
		return Str(w.S), nil
	case "i":
		n, err := strconv.ParseInt(w.S, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("term: bad int payload %q", w.S)
		}
		return Int(n), nil
	case "f":
		return Float(w.F), nil
	case "b":
		return Bool(w.B), nil
	case "tu":
		out := make(Tuple, len(w.L))
		for i, e := range w.L {
			v, err := DecodeJSON(e)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case "r":
		fields := make([]Field, len(w.R))
		for i, f := range w.R {
			v, err := DecodeJSON(f.V)
			if err != nil {
				return nil, err
			}
			fields[i] = Field{Name: f.N, Val: v}
		}
		return NewRecord(fields...), nil
	}
	return nil, fmt.Errorf("term: unknown value tag %q", w.T)
}

// EncodeJSONs encodes a slice of values.
func EncodeJSONs(vs []Value) ([]JSONValue, error) {
	out := make([]JSONValue, len(vs))
	for i, v := range vs {
		w, err := EncodeJSON(v)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// DecodeJSONs decodes a slice of values.
func DecodeJSONs(ws []JSONValue) ([]Value, error) {
	out := make([]Value, len(ws))
	for i, w := range ws {
		v, err := DecodeJSON(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
