package term

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Str("x"), KindString},
		{Int(3), KindInt},
		{Float(2.5), KindFloat},
		{Bool(true), KindBool},
		{Tuple{Int(1)}, KindTuple},
		{NewRecord(Field{Name: "a", Val: Int(1)}), KindRecord},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestKeyUniqueness(t *testing.T) {
	vals := []Value{
		Str("a"), Str("b"), Str("1"), Int(1), Int(-1), Float(1), Bool(true), Bool(false),
		Tuple{}, Tuple{Int(1)}, Tuple{Int(1), Int(2)}, Tuple{Str("1")},
		NewRecord(), NewRecord(Field{Name: "a", Val: Int(1)}),
		NewRecord(Field{Name: "a", Val: Int(2)}),
		NewRecord(Field{Name: "b", Val: Int(1)}),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v both have key %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestRecordKeyFieldOrderInsensitive(t *testing.T) {
	a := NewRecord(Field{Name: "x", Val: Int(1)}, Field{Name: "y", Val: Int(2)})
	b := NewRecord(Field{Name: "y", Val: Int(2)}, Field{Name: "x", Val: Int(1)})
	if a.Key() != b.Key() {
		t.Errorf("record keys differ under field reordering: %q vs %q", a.Key(), b.Key())
	}
	if !Equal(a, b) {
		t.Error("records with same fields in different order are not Equal")
	}
}

func TestStrIntKeyNoCollision(t *testing.T) {
	if Str("1").Key() == Int(1).Key() {
		t.Error("Str(\"1\") and Int(1) share a key")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, err := Compare(Int(2), Float(2.5))
	if err != nil {
		t.Fatalf("Compare(2, 2.5): %v", err)
	}
	if c != -1 {
		t.Errorf("Compare(2, 2.5) = %d, want -1", c)
	}
	c, err = Compare(Float(2.0), Int(2))
	if err != nil || c != 0 {
		t.Errorf("Compare(2.0, 2) = %d, %v; want 0, nil", c, err)
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("Compare(string, int) should error")
	}
	if _, err := Compare(Bool(true), Str("a")); err == nil {
		t.Error("Compare(bool, string) should error")
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{Int(1)}, Tuple{Int(2)}, -1},
		{Tuple{Int(2)}, Tuple{Int(1)}, 1},
		{Tuple{Int(1)}, Tuple{Int(1)}, 0},
		{Tuple{Int(1)}, Tuple{Int(1), Int(2)}, -1},
		{Tuple{Int(1), Int(3)}, Tuple{Int(1), Int(2)}, 1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v, %v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSelectTuple(t *testing.T) {
	tp := Tuple{Str("a"), Str("b")}
	v, err := Select(tp, []string{"1"})
	if err != nil || !Equal(v, Str("a")) {
		t.Errorf("Select(t, 1) = %v, %v; want 'a'", v, err)
	}
	v, err = Select(tp, []string{"2"})
	if err != nil || !Equal(v, Str("b")) {
		t.Errorf("Select(t, 2) = %v, %v; want 'b'", v, err)
	}
	if _, err := Select(tp, []string{"0"}); err == nil {
		t.Error("Select(t, 0) should error (1-based)")
	}
	if _, err := Select(tp, []string{"3"}); err == nil {
		t.Error("Select(t, 3) should error (out of range)")
	}
	if _, err := Select(tp, []string{"x"}); err == nil {
		t.Error("Select(t, x) should error (not an index)")
	}
}

func TestSelectRecordNested(t *testing.T) {
	r := NewRecord(
		Field{Name: "loc", Val: Str("depot7")},
		Field{Name: "pos", Val: NewRecord(Field{Name: "x", Val: Int(4)})},
	)
	v, err := Select(r, []string{"loc"})
	if err != nil || !Equal(v, Str("depot7")) {
		t.Errorf("Select(r, loc) = %v, %v", v, err)
	}
	v, err = Select(r, []string{"pos", "x"})
	if err != nil || !Equal(v, Int(4)) {
		t.Errorf("Select(r, pos.x) = %v, %v", v, err)
	}
	if _, err := Select(r, []string{"nope"}); err == nil {
		t.Error("Select(r, nope) should error")
	}
	if _, err := Select(Int(1), []string{"x"}); err == nil {
		t.Error("Select(int, x) should error")
	}
}

func TestSizeBytes(t *testing.T) {
	if n := SizeBytes(Str("abcd")); n != 4 {
		t.Errorf("SizeBytes(str) = %d, want 4", n)
	}
	if n := SizeBytes(Int(1)); n != 8 {
		t.Errorf("SizeBytes(int) = %d, want 8", n)
	}
	tup := Tuple{Str("ab"), Int(1)}
	if n := SizeBytes(tup); n != 2+2+8 {
		t.Errorf("SizeBytes(tuple) = %d, want 12", n)
	}
}

func TestNumeric(t *testing.T) {
	if f, ok := Numeric(Int(7)); !ok || f != 7 {
		t.Errorf("Numeric(Int(7)) = %v, %v", f, ok)
	}
	if f, ok := Numeric(Float(1.5)); !ok || f != 1.5 {
		t.Errorf("Numeric(Float(1.5)) = %v, %v", f, ok)
	}
	if _, ok := Numeric(Str("7")); ok {
		t.Error("Numeric(Str) should be false")
	}
}

// Property: Compare is a total preorder consistent with Equal on same-kind
// scalar values.
func TestCompareProperties(t *testing.T) {
	antisym := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1, err1 := Compare(x, y)
		c2, err2 := Compare(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2 && (c1 == 0) == Equal(x, y)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	transitive := func(a, b, c int64) bool {
		x, y, z := Int(a), Int(b), Int(c)
		cxy, _ := Compare(x, y)
		cyz, _ := Compare(y, z)
		cxz, _ := Compare(x, z)
		if cxy <= 0 && cyz <= 0 {
			return cxz <= 0
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective over strings (quoting prevents collisions).
func TestStrKeyInjective(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return Str(a).Key() == Str(b).Key()
		}
		return Str(a).Key() != Str(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tuple keys are prefix-safe: <"ab"> vs <"a","b"> differ.
func TestTupleKeyComposition(t *testing.T) {
	a := Tuple{Str("ab")}
	b := Tuple{Str("a"), Str("b")}
	if a.Key() == b.Key() {
		t.Error("tuple keys collide across different splits")
	}
}

func TestStringRendering(t *testing.T) {
	if s := Str("x").String(); s != "'x'" {
		t.Errorf("Str.String() = %q", s)
	}
	if s := (Tuple{Int(1), Str("a")}).String(); s != "<1, 'a'>" {
		t.Errorf("Tuple.String() = %q", s)
	}
	r := NewRecord(Field{Name: "n", Val: Int(2)})
	if !strings.Contains(r.String(), "n: 2") {
		t.Errorf("Record.String() = %q", r.String())
	}
}
